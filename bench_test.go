package spatialtopo

// Benchmarks regenerating the paper's tables and figures; each table or
// figure has a bench family whose relative numbers mirror the published
// series (see EXPERIMENTS.md for paper-vs-measured):
//
//	BenchmarkTable2Build    — APRIL preprocessing cost per polygon
//	BenchmarkTable3Join     — MBR join (filter step) per combination
//	BenchmarkFig7Find       — find-relation per pair, per combo × method
//	BenchmarkFig8Complexity — per-pair cost at complexity levels 1/5/10
//	BenchmarkFig9Pair       — the showcase lake-in-park pair, P+C vs OP2
//	BenchmarkTable5Relate   — find relation vs relate_p per predicate
//	BenchmarkSubstrates     — interval merge-joins, DE-9IM, Hilbert, raster
//	BenchmarkObservedOverhead — plain vs observed pipeline path
//	BenchmarkTraceOverhead  — plain vs disabled/unsampled request tracing
//
// Run: go test -bench=. -benchmem

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/chull"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/de9im"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/hilbert"
	"repro/internal/interval"
	"repro/internal/join"
	"repro/internal/linkset"
	"repro/internal/obs"
	"repro/internal/raster"
	"repro/internal/trace"
)

// benchScale keeps the shared environment's setup time moderate while
// producing thousands of candidate pairs.
const benchScale = 0.25

var (
	benchOnce sync.Once
	benchEnv  *harness.Env
	benchErr  error
)

func sharedEnv(b *testing.B) *harness.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = harness.NewEnv(2026, benchScale, datagen.DefaultOrder)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

func benchPairs(b *testing.B, combo [2]string) []harness.Pair {
	b.Helper()
	pairs, err := sharedEnv(b).CandidatePairs(combo)
	if err != nil {
		b.Fatal(err)
	}
	if len(pairs) == 0 {
		b.Fatal("no candidate pairs")
	}
	return pairs
}

// BenchmarkTable2Build measures the preprocessing step: building the
// APRIL approximation of one park polygon (Table 2's P+C column is the
// size of this output).
func BenchmarkTable2Build(b *testing.B) {
	env := sharedEnv(b)
	polys := env.Suite.Sets["OPE"]
	builder := env.Builder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Build(polys[i%len(polys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Join measures the filter step producing Table 3's
// candidate pairs.
func BenchmarkTable3Join(b *testing.B) {
	env := sharedEnv(b)
	left := env.Datasets["OLE"].MBRs()
	right := env.Datasets["OPE"].MBRs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pairs := join.Pairs(left, right); len(pairs) == 0 {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkFig7Find is Fig. 7(a): per-pair find-relation cost for every
// dataset combination and method. Inverted throughput: pairs/s =
// 1e9/(ns/op).
func BenchmarkFig7Find(b *testing.B) {
	for _, combo := range datagen.Combos {
		pairs := benchPairs(b, combo)
		for _, m := range core.Methods {
			b.Run(datagen.ComboName(combo)+"/"+m.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p := pairs[i%len(pairs)]
					core.FindRelation(m, p.R, p.S)
				}
			})
		}
	}
}

// BenchmarkFig8Complexity is Fig. 8(b): per-pair cost at the lowest,
// middle and highest complexity levels of OLE-OPE, for OP2 and P+C.
func BenchmarkFig8Complexity(b *testing.B) {
	levels, err := sharedEnv(b).Table4(10)
	if err != nil {
		b.Fatal(err)
	}
	for _, idx := range []int{0, 4, 9} {
		if idx >= len(levels) {
			continue
		}
		lv := levels[idx]
		for _, m := range []core.Method{core.OP2, core.PC} {
			b.Run(benchLevelName(lv.Level)+"/"+m.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p := lv.Pairs[i%len(lv.Pairs)]
					core.FindRelation(m, p.R, p.S)
				}
			})
		}
	}
}

func benchLevelName(l int) string {
	if l >= 10 {
		return "L" + string(rune('0'+l/10)) + string(rune('0'+l%10))
	}
	return "L" + string(rune('0'+l))
}

// BenchmarkFig9Pair is the case study: the most complex filter-settled
// inside pair, P+C (no refinement) vs OP2 (full DE-9IM).
func BenchmarkFig9Pair(b *testing.B) {
	pairs := benchPairs(b, harness.ComplexityCombo)
	var best harness.Pair
	found := false
	bestC := -1
	for _, p := range pairs {
		res := core.FindRelation(core.PC, p.R, p.S)
		if res.Refined || res.Relation != de9im.Inside {
			continue
		}
		if c := p.Complexity(); c > bestC {
			best, bestC, found = p, c, true
		}
	}
	if !found {
		b.Fatal("no showcase pair")
	}
	for _, m := range []core.Method{core.PC, core.OP2} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.FindRelation(m, best.R, best.S)
			}
		})
	}
}

// BenchmarkTable5Relate compares find relation against relate_p for the
// Table 5 predicates on OLE-OPE pairs.
func BenchmarkTable5Relate(b *testing.B) {
	pairs := benchPairs(b, harness.ComplexityCombo)
	b.Run("find_relation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			core.FindRelation(core.PC, p.R, p.S)
		}
	})
	for _, pred := range harness.Table5Preds {
		b.Run("relate_"+pred.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				core.RelatePred(core.PC, p.R, p.S, pred)
			}
		})
	}
}

// --- substrate benchmarks ---

func benchLists(n int) (interval.List, interval.List) {
	rng := rand.New(rand.NewSource(9))
	mk := func() interval.List {
		ivs := make([]interval.Interval, n)
		var cur uint64
		for i := range ivs {
			cur += 1 + rng.Uint64()%50
			end := cur + 1 + rng.Uint64()%30
			ivs[i] = interval.Interval{Start: cur, End: end}
			cur = end
		}
		return interval.Normalize(ivs)
	}
	return mk(), mk()
}

func BenchmarkSubstrates(b *testing.B) {
	x, y := benchLists(512)
	b.Run("interval_overlap_512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			interval.Overlap(x, y)
		}
	})
	b.Run("interval_inside_512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			interval.Inside(x, y)
		}
	})

	c := hilbert.New(16)
	b.Run("hilbert_d2xy_xy2d", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x, y := c.XY(uint64(i) % c.NumCells())
			if c.D(x, y) != uint64(i)%c.NumCells() {
				b.Fatal("bijection broken")
			}
		}
	})

	rng := rand.New(rand.NewSource(4))
	small := datagen.Blob(rng, geom.Point{X: 100, Y: 100}, 10, 64)
	big := datagen.Blob(rng, geom.Point{X: 100, Y: 100}, 40, 2048)
	other := datagen.Blob(rng, geom.Point{X: 110, Y: 105}, 35, 1024)
	b.Run("de9im_small_64v", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			de9im.RelatePolygons(small, other)
		}
	})
	b.Run("de9im_large_2048v", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			de9im.RelatePolygons(big, other)
		}
	})

	g := raster.NewGrid(geom.MBR{MinX: 0, MinY: 0, MaxX: 1024, MaxY: 1024}, 11)
	b.Run("rasterize_1024v", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := raster.Rasterize(other, g); err != nil {
				b.Fatal(err)
			}
		}
	})

	loc := geom.NewPolygonLocator(big)
	pts := make([]geom.Point, 256)
	for i := range pts {
		pts[i] = geom.Point{X: 60 + rng.Float64()*80, Y: 60 + rng.Float64()*80}
	}
	b.Run("locator_query_2048v", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loc.Locate(pts[i%len(pts)])
		}
	})
}

// BenchmarkParallel measures the parallel find-relation sweep of the
// OLE-OPE workload (the [39]-style evaluation) at 1 worker vs all cores.
func BenchmarkParallel(b *testing.B) {
	pairs := benchPairs(b, harness.ComplexityCombo)
	for _, workers := range []int{1, 0} {
		name := "workers_1"
		if workers == 0 {
			name = "workers_max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				harness.RunFindRelationParallel(core.PC, pairs, workers)
			}
		})
	}
}

// BenchmarkRelatedWork measures the convex-approximation baseline [6]:
// building the approximations and filtering one pair.
func BenchmarkRelatedWork(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	poly := datagen.Blob(rng, geom.Point{X: 100, Y: 100}, 30, 512)
	other := datagen.Blob(rng, geom.Point{X: 120, Y: 110}, 25, 256)
	b.Run("chull_build_512v", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chull.Build(poly)
		}
	})
	ra, sa := chull.Build(poly), chull.Build(other)
	b.Run("chull_filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chull.IntersectionFilter(ra, sa)
		}
	})
}

// BenchmarkLinkDiscovery measures full geo-spatial interlinking over the
// OLE-OPE datasets: join + find relation + link materialization.
func BenchmarkLinkDiscovery(b *testing.B) {
	env := sharedEnv(b)
	left := env.Datasets["OLE"].Objects
	right := env.Datasets["OPE"].Objects
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := linkset.Discover(left, right, core.PC)
		if len(set.Links) == 0 {
			b.Fatal("no links")
		}
	}
}

// BenchmarkObservedOverhead compares the plain find-relation path
// against FindRelationObserved on the OLE-OPE workload — the guard for
// keeping the pipeline permanently instrumented. With a nil sink the
// observed path short-circuits to the plain one (a single comparison),
// so "nil_sink" must be within 5% of "plain". With a no-op sink the
// path pays its real cost — two to four clock reads per pair — which
// amortizes against the µs-scale average pair cost of a mixed workload
// to well under 5%; measured runs show plain ≈ nil_sink ≈ nop_sink
// within run-to-run noise.
func BenchmarkObservedOverhead(b *testing.B) {
	pairs := benchPairs(b, harness.ComplexityCombo)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			core.FindRelation(core.PC, p.R, p.S)
		}
	})
	b.Run("nil_sink", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			core.FindRelationObserved(core.PC, p.R, p.S, nil)
		}
	})
	b.Run("nop_sink", func(b *testing.B) {
		sink := core.NopSink{}
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			core.FindRelationObserved(core.PC, p.R, p.S, sink)
		}
	})
	b.Run("metrics_sink", func(b *testing.B) {
		sink := core.NewPipelineMetrics(obs.NewRegistry(), "bench")
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			core.FindRelationObserved(core.PC, p.R, p.S, sink)
		}
	})
}

// BenchmarkTraceOverhead is BenchmarkObservedOverhead's counterpart for
// request tracing: the per-pair cost the sweep pays when tracing is off
// ("disabled": nil-span pointer checks only — must stay within 5% of
// "plain") and when a request is traced but the coin said no
// ("unsampled": one context lookup per sweep plus nil-span checks per
// pair). The sampled path materializes spans and is measured in
// internal/trace's BenchmarkSpanOps instead — it is bounded by MaxSpans,
// not by workload size.
func BenchmarkTraceOverhead(b *testing.B) {
	pairs := benchPairs(b, harness.ComplexityCombo)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			core.FindRelation(core.PC, p.R, p.S)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var tr *trace.Tracer
		ctx, root := tr.Start(context.Background(), "req")
		wsp := trace.FromContext(ctx).Child("sweep.worker")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			core.FindRelation(core.PC, p.R, p.S)
			// The exact nil-span operations an instrumented sweep issues
			// per pair when tracing is disabled.
			if wsp.Recording() {
				b.Fatal("nil span recording")
			}
			wsp.ChildAt("pair", time.Time{}, 0)
		}
		root.End()
	})
	b.Run("unsampled", func(b *testing.B) {
		tr := trace.New(trace.Config{Sample: 0, Capacity: 8})
		ctx, root := tr.Start(context.Background(), "req")
		wsp := trace.FromContext(ctx).Child("sweep.worker")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			core.FindRelation(core.PC, p.R, p.S)
			if wsp.Recording() {
				b.Fatal("unsampled span recording")
			}
			wsp.ChildAt("pair", time.Time{}, 0)
		}
		root.End()
	})
}
