# Developer targets; `make check` is the pre-commit gate.
GO ?= go

.PHONY: build test race vet bench bench-json bench-compare check serve difftest faulttest e2e

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with concurrent hot paths: the parallel sweep, the
# metrics substrate, and the query service (admission + batching) —
# plus the refiner and the oracle harness, whose parallel cross-checks
# double as a race probe of the whole pipeline, and the resilience
# layer (snapshot loads race background rebuilds; the fault seam is
# armed from tests while workers run), and the trace ring buffer
# (concurrent span writers racing trace readers), and the sharded
# serving tier (scatter goroutines racing the breaker set and the
# round-robin replica cursors), and the WAL (group-commit leaders
# racing enqueuers, compaction-driven prunes, and health scrapes).
race:
	$(GO) test -race ./internal/harness/ ./internal/obs/ ./internal/server/ ./internal/de9im/ ./internal/oracle/ ./internal/snapshot/ ./internal/fault/ ./internal/trace/ ./internal/shard/ ./internal/shard/router/ ./internal/wal/

# Differential correctness run (see README "Correctness"): a fixed-seed
# sweep of generated lattice pairs through every production path,
# cross-checked against the independent brute-force oracle, plus the
# full shrunk-repro regression corpus. Bounded (~10s) so it can gate CI.
difftest:
	$(GO) test ./internal/oracle/ -count=1 -oracle.pairs=10000 -oracle.seed=1
	$(GO) test ./internal/server/ -count=1 -run 'TestMutationDifferentialOracle|TestMutationCrashReplayOracle'

# Fault-injection suite (see README "Resilience"): every injected
# corruption — torn header, truncated section, bit flip, ENOSPC
# mid-write, panic mid-rebuild, poisoned geometry pair — must end in
# quarantine + degraded serving + background recovery, never a process
# exit or a wrong answer.
faulttest:
	$(GO) test -count=1 ./internal/fault/ ./internal/snapshot/ ./internal/wal/ \
		./internal/server/ -run 'Fault|Corrupt|Truncat|Quarantine|Torn|BitFlip|Panic|Degraded|CrashRecovery|WarmStart|Hostile|ValidName|Retry|Circuit|Temporary|Backoff|Fsync|Floor|SilentlyAcks'
	$(GO) test -count=1 ./internal/harness/ -run 'PanicIsolated'

vet:
	$(GO) vet ./...

# Regression telemetry for the instrumented pipeline (see README
# "Observability"): the observed path and the disabled tracer must each
# stay within 5% of plain. The ZeroAlloc guards pin the hot path —
# interval kernels, scratch refinement, the full observed sweep — to
# zero heap allocations per pair (see README "Performance").
bench:
	$(GO) test -count=1 -run 'ZeroAlloc|AllocFootprint' ./internal/interval/ ./internal/de9im/ ./internal/core/ ./internal/server/
	$(GO) test -run xxx -bench 'BenchmarkObservedOverhead|BenchmarkTraceOverhead' -benchmem .
	$(GO) test -run xxx -bench BenchmarkRouterFanout -benchmem ./internal/shard/router/
	$(GO) test -run xxx -bench 'BenchmarkIngest|BenchmarkCompact' -benchmem ./internal/server/

# One point of the benchmark trajectory (see README "Tracing & benchmark
# trajectory"): a small fixed-seed benchrun suite written as JSON. CI
# runs this as a smoke test of the recording harness; the checked-in
# BENCH_N.json artifacts are produced by the full default suite
# (`go run ./cmd/benchrun -out BENCH_N.json`).
bench-json:
	$(GO) run ./cmd/benchrun -scale 0.05 -pairs 500 -trials 3 -label BENCH_SMOKE -out bench-smoke.json
	head -c 400 bench-smoke.json; echo

# Benchmark comparison smoke (see README "Performance"): re-runs the
# default suite at the checked-in baseline's workload parameters and
# diffs against BENCH_7.json with `-regress 0` — gating on the harness
# completing and the deterministic verdict fingerprints matching, never
# on absolute timings (machines differ). A fingerprint drift means the
# pipelines changed verdicts: a correctness failure, not a perf one.
bench-compare:
	$(GO) run ./cmd/benchrun -trials 1 -warmup 1 -label BENCH_CI -out bench-ci.json -compare BENCH_7.json -regress 0

# Multi-process end-to-end smoke of the sharded serving tier (see
# README "Sharded serving"): builds real topojoind + topojoinrouter
# binaries, runs a 3-shard fleet (one shard replicated) against a
# single-node reference, then SIGKILLs a replica (answers must stay
# complete) and an unreplicated shard (response must be flagged
# partial, healthz degraded — never an error or hang). The ingest
# drill SIGKILLs a real topojoind mid-compaction (fault-delayed
# fsync, torn .tmp on disk) and asserts every restart resumes from
# the last complete index epoch. The WAL drill SIGKILLs a -wal daemon
# with acked-but-uncompacted mutations (they must replay), forces a
# torn append (must 503, never silently ack) and asserts the restart
# truncates the torn tail instead of resurrecting it.
e2e:
	$(GO) test -count=1 -timeout 300s ./cmd/topojoinrouter/ -run TestE2EShardedFleet -v
	$(GO) test -count=1 -timeout 300s ./cmd/topojoind/ -run 'TestE2EIngestCrashRecovery|TestE2EIngestWALCrashDrill' -v

# Run the topology query service over a small generated workload
# (see README "Serving").
serve:
	$(GO) run ./cmd/topojoind -gen OLE,OPE -scale 0.1

check: build vet test race
