# Developer targets; `make check` is the pre-commit gate.
GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with concurrent hot paths: the parallel sweep and the
# metrics substrate.
race:
	$(GO) test -race ./internal/harness/ ./internal/obs/

vet:
	$(GO) vet ./...

# Regression telemetry for the instrumented pipeline (see README
# "Observability"): the observed path must stay within 5% of plain.
bench:
	$(GO) test -run xxx -bench BenchmarkObservedOverhead -benchmem .

check: build vet test race
