# Developer targets; `make check` is the pre-commit gate.
GO ?= go

.PHONY: build test race vet bench check serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with concurrent hot paths: the parallel sweep, the
# metrics substrate, and the query service (admission + batching).
race:
	$(GO) test -race ./internal/harness/ ./internal/obs/ ./internal/server/

vet:
	$(GO) vet ./...

# Regression telemetry for the instrumented pipeline (see README
# "Observability"): the observed path must stay within 5% of plain.
bench:
	$(GO) test -run xxx -bench BenchmarkObservedOverhead -benchmem .

# Run the topology query service over a small generated workload
# (see README "Serving").
serve:
	$(GO) run ./cmd/topojoind -gen OLE,OPE -scale 0.1

check: build vet test race
