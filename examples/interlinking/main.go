// Geo-spatial interlinking: discover all topological links between two
// entity collections (the paper's motivating application, as in RADON and
// Silk). Two synthetic collections — landmarks and water areas — are
// joined with the linkset module, and every non-disjoint pair becomes a
// GeoSPARQL triple suitable for a knowledge graph.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	spatialtopo "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/de9im"
	"repro/internal/geom"
	"repro/internal/linkset"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	space := spatialtopo.MBR{MinX: 0, MinY: 0, MaxX: 300, MaxY: 300}
	builder := spatialtopo.NewBuilder(space, 10)

	// Landmarks: medium blobs scattered over the space.
	var landmarks []*spatialtopo.Object
	for i := 0; i < 60; i++ {
		p := datagen.Blob(rng, geom.Point{X: 20 + rng.Float64()*260, Y: 20 + rng.Float64()*260},
			4+rng.Float64()*10, 12+rng.Intn(48))
		o, err := spatialtopo.NewObject(i, p, builder)
		if err != nil {
			log.Fatal(err)
		}
		landmarks = append(landmarks, o)
	}
	// Water areas: some inside landmarks, a few exact duplicates, rest free.
	var water []*spatialtopo.Object
	for i := 0; i < 120; i++ {
		var p *spatialtopo.Polygon
		switch {
		case i%17 == 0:
			p = landmarks[rng.Intn(len(landmarks))].Poly.Clone()
		case i%5 == 0:
			p = datagen.InsideBlob(rng, landmarks[rng.Intn(len(landmarks))].Poly,
				0.3+rng.Float64()*0.3, 8+rng.Intn(24), 0.6)
		default:
			p = datagen.Blob(rng, geom.Point{X: 15 + rng.Float64()*270, Y: 15 + rng.Float64()*270},
				2+rng.Float64()*8, 8+rng.Intn(40))
		}
		o, err := spatialtopo.NewObject(i, p, builder)
		if err != nil {
			log.Fatal(err)
		}
		water = append(water, o)
	}

	set := linkset.Discover(water, landmarks, core.PC)
	fmt.Printf("%d water areas x %d landmarks -> %d candidates, %d links, %d refined (%.1f%%)\n\n",
		len(water), len(landmarks), set.Candidates, len(set.Links), set.Refined,
		100*float64(set.Refined)/float64(set.Candidates))

	fmt.Println("relation histogram:")
	hist := set.Histogram()
	for rel := de9im.Relation(0); int(rel) < de9im.NumRelations; rel++ {
		if hist[rel] > 0 {
			fmt.Printf("  %-11v %d\n", rel, hist[rel])
		}
	}

	fmt.Println("\nfirst triples:")
	sample := *set
	if len(sample.Links) > 8 {
		sample.Links = sample.Links[:8]
	}
	if err := sample.WriteNTriples(os.Stdout, "http://ex.org/water/", "http://ex.org/landmark/"); err != nil {
		log.Fatal(err)
	}
}
