// Quickstart: determine the topological relation of two polygons given as
// WKT, using the P+C pipeline — MBR filter, interval-list intermediate
// filter, DE-9IM refinement only if needed.
package main

import (
	"fmt"
	"log"

	spatialtopo "repro"
)

func main() {
	// A park with a pond-shaped hole, and a lake inside the park.
	park, err := spatialtopo.ParsePolygon(
		"POLYGON ((0 0, 100 0, 100 80, 0 80, 0 0), (70 50, 90 50, 90 70, 70 70, 70 50))")
	if err != nil {
		log.Fatal(err)
	}
	lake, err := spatialtopo.ParsePolygon(
		"POLYGON ((20 20, 50 20, 50 45, 20 45, 20 20))")
	if err != nil {
		log.Fatal(err)
	}

	// One global grid covers the data space; approximations are built once
	// per object (the preprocessing step).
	space := spatialtopo.MBR{MinX: -10, MinY: -10, MaxX: 110, MaxY: 90}
	builder := spatialtopo.NewBuilder(space, 10)

	lakeObj, err := spatialtopo.NewObject(0, lake, builder)
	if err != nil {
		log.Fatal(err)
	}
	parkObj, err := spatialtopo.NewObject(1, park, builder)
	if err != nil {
		log.Fatal(err)
	}

	// Find the most specific relation.
	res := spatialtopo.FindRelation(spatialtopo.PC, lakeObj, parkObj)
	fmt.Printf("lake vs park: %v (refinement needed: %v)\n", res.Relation, res.Refined)

	// Ask a direct predicate question.
	ans := spatialtopo.RelatePred(spatialtopo.PC, lakeObj, parkObj, spatialtopo.CoveredBy)
	fmt.Printf("lake covered by park? %v\n", ans.Holds)

	// The full DE-9IM matrix is available when the exact entries matter.
	fmt.Printf("DE-9IM(lake, park) = %s\n", spatialtopo.DE9IM(lake, park))
	fmt.Printf("DE-9IM(park, lake) = %s\n", spatialtopo.DE9IM(park, lake))
}
