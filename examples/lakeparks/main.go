// Lakes in parks: the paper's Sec. 4.3 scenario. Generates the OLE-OPE
// synthetic datasets, runs the topology join with all four pipelines, and
// shows how the P+C intermediate filter settles the high-complexity
// containments that make refinement-based pipelines slow.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/de9im"
	"repro/internal/harness"
)

func main() {
	env, err := harness.NewEnv(2026, 0.25, datagen.DefaultOrder)
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := env.CandidatePairs([2]string{"OLE", "OPE"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d lakes x %d parks -> %d candidate pairs\n\n",
		env.Datasets["OLE"].Len(), env.Datasets["OPE"].Len(), len(pairs))

	fmt.Printf("%-6s  %12s  %12s  %10s\n", "method", "time", "pairs/s", "refined")
	for _, m := range core.Methods {
		start := time.Now()
		st := harness.RunFindRelation(m, pairs)
		fmt.Printf("%-6v  %12v  %12.0f  %7d (%.1f%%)\n",
			m, time.Since(start).Round(time.Microsecond), st.Throughput(),
			st.Undetermined, st.UndeterminedPct())
	}

	// Show the lakes proven inside a park without loading geometry.
	settled, insides := 0, 0
	var show []string
	for _, p := range pairs {
		res := core.FindRelation(core.PC, p.R, p.S)
		if res.Relation == de9im.Inside {
			insides++
			if !res.Refined {
				settled++
				if len(show) < 5 {
					show = append(show, fmt.Sprintf(
						"  lake %d (%d vertices, %d C-intervals) inside park %d (%d vertices)",
						p.R.ID, p.R.Poly.NumVertices(), len(p.R.Approx.C),
						p.S.ID, p.S.Poly.NumVertices()))
				}
			}
		}
	}
	fmt.Printf("\n%d lake-inside-park relations, %d settled by the interval filter alone:\n",
		insides, settled)
	for _, s := range show {
		fmt.Println(s)
	}
}
