// Zonal statistics: the environmental-studies application from the
// paper's introduction — for each zone (county), measure how much of it
// is covered by water areas. The topology join prunes the work: pairs the
// P+C filter proves disjoint never reach the exact overlay, and zones a
// water body is inside contribute its full area without clipping.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/de9im"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/overlay"
)

func main() {
	env, err := harness.NewEnv(2026, 0.3, datagen.DefaultOrder)
	if err != nil {
		log.Fatal(err)
	}
	counties := env.Datasets["TC"]
	water := env.Datasets["TW"]
	pairs, err := env.CandidatePairs([2]string{"TC", "TW"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d counties x %d water areas -> %d candidate pairs\n\n",
		counties.Len(), water.Len(), len(pairs))

	waterArea := make([]float64, counties.Len())
	var clipped, skipped, full int
	for _, p := range pairs {
		res := core.FindRelation(core.PC, p.R, p.S)
		switch {
		case res.Relation == de9im.Disjoint || res.Relation == de9im.Meets:
			skipped++ // no area contribution, no overlay needed
		case res.Relation == de9im.Contains || res.Relation == de9im.Covers:
			full++ // the water body is entirely in the county
			waterArea[p.R.ID] += p.S.Poly.Area()
		default:
			clipped++ // exact clipping only for genuine partial overlaps
			waterArea[p.R.ID] += overlay.PolygonIntersectionArea(p.R.Poly, p.S.Poly)
		}
	}
	fmt.Printf("overlay invocations: %d (skipped %d disjoint/meets, %d full-containment shortcuts)\n\n",
		clipped, skipped, full)

	type row struct {
		id   int
		frac float64
	}
	rows := make([]row, 0, counties.Len())
	for i, o := range counties.Objects {
		rows = append(rows, row{id: i, frac: waterArea[i] / o.Poly.Area()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].frac > rows[j].frac })

	fmt.Println("wettest counties (water coverage):")
	for i, r := range rows {
		if i >= 8 {
			break
		}
		c := counties.Objects[r.id]
		fmt.Printf("  county %2d  area %8.1f  water %6.2f%%\n",
			r.id, c.Poly.Area(), 100*r.frac)
	}

	// Aggregate: Jaccard similarity of the wettest county with its water.
	best := rows[0]
	var waterIn []*geom.Polygon
	for _, p := range pairs {
		if p.R.ID == best.id {
			waterIn = append(waterIn, p.S.Poly)
		}
	}
	county := geom.NewMultiPolygon(counties.Objects[best.id].Poly)
	j := overlay.JaccardSimilarity(county, geom.NewMultiPolygon(waterIn...))
	fmt.Printf("\ncounty %d vs its water bodies: jaccard %.4f\n", best.id, j)
}
