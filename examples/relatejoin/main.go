// Relate-predicate join: spatial joins often carry a topological
// predicate ("find every zip code that meets another county"). This
// example builds a county/zip-code tiling and evaluates three predicate
// joins with relate_p, which answers most pairs from the interval lists
// without computing DE-9IM matrices (Sec. 3.3 / Table 5 of the paper).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	spatialtopo "repro"
	"repro/internal/datagen"
	"repro/internal/geom"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	space := geom.MBR{MinX: 0, MinY: 0, MaxX: 400, MaxY: 400}
	builder := spatialtopo.NewBuilder(space, 10)

	// Counties tile the space; zip codes subdivide each county, so zips
	// meet their neighbours and are covered by their county.
	countyRects := datagen.SplitRects(rng, space, 12)
	var counties, zips []*spatialtopo.Object
	for _, cr := range countyRects {
		c, err := spatialtopo.NewObject(len(counties), datagen.DensifiedRect(rng, cr, 80), builder)
		if err != nil {
			log.Fatal(err)
		}
		counties = append(counties, c)
		for _, zr := range datagen.SplitRects(rng, cr, 6) {
			z, err := spatialtopo.NewObject(len(zips), datagen.DensifiedRect(rng, zr, 32), builder)
			if err != nil {
				log.Fatal(err)
			}
			zips = append(zips, z)
		}
	}
	fmt.Printf("%d counties, %d zip codes\n\n", len(counties), len(zips))

	preds := []spatialtopo.Relation{
		spatialtopo.CoveredBy, spatialtopo.Meets, spatialtopo.Intersects,
	}
	pairs := spatialtopo.CandidatePairs(zips, counties)
	fmt.Printf("MBR join: %d candidate (zip, county) pairs\n\n", len(pairs))

	for _, pred := range preds {
		matches, refined := 0, 0
		start := time.Now()
		for _, pr := range pairs {
			res := spatialtopo.RelatePred(spatialtopo.PC, zips[pr[0]], counties[pr[1]], pred)
			if res.Holds {
				matches++
			}
			if res.Refined {
				refined++
			}
		}
		fmt.Printf("zip %-11v county: %5d matches, %4d refined, %v\n",
			pred, matches, refined, time.Since(start).Round(time.Microsecond))
	}

	// Sanity: every zip is covered by exactly one county.
	covered := 0
	for _, pr := range pairs {
		if spatialtopo.RelatePred(spatialtopo.PC, zips[pr[0]], counties[pr[1]], spatialtopo.CoveredBy).Holds {
			covered++
		}
	}
	fmt.Printf("\n%d of %d zip codes covered by their county\n", covered, len(zips))
}
