// Package spatialtopo is a scalable spatial topology join library: it
// determines the topological relation (equals, inside, contains, covered
// by, covers, meets, intersects, disjoint) of polygon pairs at high
// throughput by inserting an interval-list intermediate filter between
// the classic MBR filter and DE-9IM refinement, reproducing "Scalable
// Spatial Topology Joins" (Georgiadis & Mamoulis, EDBT 2026).
//
// Typical use:
//
//	b := spatialtopo.NewBuilder(space, 16)       // one global grid
//	r, _ := spatialtopo.NewObject(0, polyR, b)   // preprocess once
//	s, _ := spatialtopo.NewObject(1, polyS, b)
//	res := spatialtopo.FindRelation(spatialtopo.PC, r, s)
//
// For joins over whole datasets, CandidatePairs produces the
// MBR-intersecting pairs and FindRelation or RelatePred evaluates each.
package spatialtopo

import (
	"context"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/de9im"
	"repro/internal/geojson"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/linkset"
	"repro/internal/overlay"
	"repro/internal/wkt"
)

// Geometry types.
type (
	// Point is a planar location.
	Point = geom.Point
	// Ring is a closed vertex sequence (closing edge implicit).
	Ring = geom.Ring
	// Polygon is a simple polygon with optional holes.
	Polygon = geom.Polygon
	// MultiPolygon is a collection of polygons.
	MultiPolygon = geom.MultiPolygon
	// MBR is an axis-aligned bounding rectangle.
	MBR = geom.MBR
)

// NewPolygon builds a polygon from a shell and optional holes,
// normalizing ring orientation.
func NewPolygon(shell Ring, holes ...Ring) *Polygon { return geom.NewPolygon(shell, holes...) }

// ValidatePolygon checks ring simplicity and hole placement.
func ValidatePolygon(p *Polygon) error { return geom.ValidatePolygon(p) }

// ParsePolygon reads a WKT POLYGON.
func ParsePolygon(s string) (*Polygon, error) { return wkt.ParsePolygon(s) }

// MarshalPolygon renders a polygon as WKT.
func MarshalPolygon(p *Polygon) string { return wkt.MarshalPolygon(p) }

// Relation is a topological relation between an ordered pair of objects.
type Relation = de9im.Relation

// The eight topological relations.
const (
	Disjoint   = de9im.Disjoint
	Intersects = de9im.Intersects
	Meets      = de9im.Meets
	Equals     = de9im.Equals
	Inside     = de9im.Inside
	CoveredBy  = de9im.CoveredBy
	Contains   = de9im.Contains
	Covers     = de9im.Covers
)

// Method selects a find-relation pipeline.
type Method = core.Method

// The evaluated pipelines: ST2 (MBR filter + refinement), OP2 (enhanced
// MBR filter + refinement), APRIL (intersection-only intermediate
// filter), and PC — the paper's contribution and the recommended default.
const (
	ST2   = core.ST2
	OP2   = core.OP2
	APRIL = core.APRIL
	PC    = core.PC
)

// Builder precomputes APRIL approximations over a fixed global grid.
type Builder = april.Builder

// NewBuilder creates a Builder over the given data space with a
// 2^order × 2^order Hilbert-enumerated grid (the paper uses order 16).
func NewBuilder(space MBR, order uint) *Builder { return april.NewBuilder(space, order) }

// Object is a preprocessed spatial object: polygon, MBR and APRIL
// approximation.
type Object = core.Object

// NewObject preprocesses a polygon into an Object.
func NewObject(id int, p *Polygon, b *Builder) (*Object, error) {
	return core.NewObject(id, p, b)
}

// Result is the outcome of a find-relation evaluation.
type Result = core.Result

// FindRelation determines the most specific topological relation of the
// ordered pair (r, s) using pipeline m.
func FindRelation(m Method, r, s *Object) Result { return core.FindRelation(m, r, s) }

// RelateResult is the outcome of a relate-predicate evaluation.
type RelateResult = core.RelateResult

// RelatePred reports whether relation pred holds for the ordered pair
// (r, s); with the PC method a specialized filter answers most pairs
// without refinement.
func RelatePred(m Method, r, s *Object, pred Relation) RelateResult {
	return core.RelatePred(m, r, s, pred)
}

// DE9IM computes the DE-9IM matrix string code of the pair, e.g.
// "212101212".
func DE9IM(r, s *Polygon) string {
	return de9im.RelatePolygons(r, s).String()
}

// Implies reports whether a pair whose most specific relation is rel also
// satisfies pred (the generalization hierarchy of the relations).
func Implies(rel, pred Relation) bool { return core.Implies(rel, pred) }

// CandidatePairs runs the MBR join filter step over two object sets and
// returns index pairs (into left and right) whose MBRs intersect.
func CandidatePairs(left, right []*Object) [][2]int32 {
	lb := make([]MBR, len(left))
	for i, o := range left {
		lb[i] = o.MBR
	}
	rb := make([]MBR, len(right))
	for i, o := range right {
		rb[i] = o.MBR
	}
	return join.Pairs(lb, rb)
}

// CandidatePairsContext is CandidatePairs with cooperative cancellation:
// the partition sweep checks ctx periodically and returns ctx's error
// (with the pairs found so far) once it is done. Long-running services
// use it to bound join candidate generation by a request deadline.
func CandidatePairsContext(ctx context.Context, left, right []*Object) ([][2]int32, error) {
	lb := make([]MBR, len(left))
	for i, o := range left {
		lb[i] = o.MBR
	}
	rb := make([]MBR, len(right))
	for i, o := range right {
		rb[i] = o.MBR
	}
	return join.PairsContext(ctx, lb, rb)
}

// Mask is a DE-9IM pattern such as "T*F**F***" ('T' non-empty, 'F' empty,
// '*' anything, or a specific dimension 0/1/2).
type Mask = de9im.Mask

// ParseMask parses a 9-character DE-9IM mask.
func ParseMask(s string) (Mask, error) { return de9im.ParseMask(s) }

// RelateMask answers an arbitrary DE-9IM mask query (the ST_Relate
// three-argument form); masks of named relations route through the
// relate_p fast path.
func RelateMask(m Method, r, s *Object, mask Mask) RelateResult {
	return core.RelateMask(m, r, s, mask)
}

// SimplifyPolygon reduces a polygon's vertex count with Douglas-Peucker
// at the given tolerance.
func SimplifyPolygon(p *Polygon, tolerance float64) *Polygon {
	return geom.SimplifyPolygon(p, tolerance)
}

// ConvexHull returns the convex hull of a point set as a CCW ring.
func ConvexHull(pts []Point) Ring { return geom.ConvexHull(pts) }

// Link is one discovered topological link between two entities.
type Link = linkset.Link

// LinkSet is a collection of discovered links with discovery statistics.
type LinkSet = linkset.Set

// DiscoverLinks runs geo-spatial interlinking between two collections:
// every non-disjoint candidate pair becomes a typed link. Serialize with
// LinkSet.WriteNTriples.
func DiscoverLinks(left, right []*Object, m Method) *LinkSet {
	return linkset.Discover(left, right, m)
}

// NewMultiPolygon wraps polygons into a multipolygon.
func NewMultiPolygon(polys ...*Polygon) *MultiPolygon { return geom.NewMultiPolygon(polys...) }

// OverlayAreas holds the exact boolean-operation areas of two regions.
type OverlayAreas = overlay.Areas

// Overlay computes the exact areas of A∩B, A∪B, A\B and B\A.
func Overlay(a, b *MultiPolygon) OverlayAreas { return overlay.Of(a, b) }

// IntersectionArea returns the exact overlap area of two polygons.
func IntersectionArea(a, b *Polygon) float64 {
	return overlay.PolygonIntersectionArea(a, b)
}

// JaccardSimilarity returns area(A∩B)/area(A∪B).
func JaccardSimilarity(a, b *MultiPolygon) float64 { return overlay.JaccardSimilarity(a, b) }

// PolygonDistance returns the minimum distance between two polygons
// (0 when they share a point).
func PolygonDistance(a, b *Polygon) float64 { return geom.PolygonDistance(a, b) }

// ParseGeoJSON reads a GeoJSON FeatureCollection, Feature or geometry
// into multipolygons (properties are dropped; use internal/geojson for
// features with attributes).
func ParseGeoJSON(data []byte) ([]*MultiPolygon, error) {
	fs, err := geojson.ParseFeatureCollection(data)
	if err != nil {
		return nil, err
	}
	out := make([]*MultiPolygon, len(fs))
	for i, f := range fs {
		out[i] = f.Geometry
	}
	return out, nil
}

// MarshalGeoJSON writes a multipolygon as a GeoJSON geometry object.
func MarshalGeoJSON(m *MultiPolygon) ([]byte, error) { return geojson.MarshalGeometry(m) }

// NewObjectAdaptive preprocesses a polygon like NewObject, but objects
// whose raster window exceeds the per-object limit are approximated at a
// coarser grid order (lifted into the base id space) instead of failing.
func NewObjectAdaptive(id int, p *Polygon, b *Builder) (*Object, error) {
	return core.NewObjectAdaptive(id, p, b)
}
