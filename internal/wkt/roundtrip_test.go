package wkt

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/geom"
)

// bitsEq compares floats by representation, so -0 ≠ 0 and NaN patterns
// are not special-cased away.
func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// num must be bit-exact under ParseFloat for every float64, including
// scientific notation, negative zero and sub-normals ('g' with
// precision -1 guarantees the shortest uniquely-parsing form).
func TestNumRoundTripBitExact(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.1, 1.0 / 3.0,
		5e-324, -5e-324, 2.2250738585072014e-308, // smallest subnormal and normal
		1e-300, -1e-300, 6.02214076e23, 1e300, -1e300,
		math.MaxFloat64, -math.MaxFloat64,
		123456.78125, -0.015625,
	}
	for _, v := range vals {
		s := num(v)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Errorf("num(%g) = %q does not parse: %v", v, s, err)
			continue
		}
		if !bitsEq(back, v) {
			t.Errorf("num round trip %g -> %q -> %g (bits %x vs %x)",
				v, s, back, math.Float64bits(v), math.Float64bits(back))
		}
	}
}

func TestPointRoundTripExtremes(t *testing.T) {
	pts := []geom.Point{
		{X: 5e-324, Y: -5e-324},
		{X: math.Copysign(0, -1), Y: 0},
		{X: 1.5e300, Y: -2.25e-300},
		{X: 0.1, Y: 1.0 / 3.0},
	}
	for _, p := range pts {
		back, err := ParsePoint(MarshalPoint(p))
		if err != nil {
			t.Fatalf("parse %q: %v", MarshalPoint(p), err)
		}
		if !bitsEq(back.X, p.X) || !bitsEq(back.Y, p.Y) {
			t.Errorf("point round trip %v -> %q -> %v", p, MarshalPoint(p), back)
		}
		if math.Signbit(p.X) != math.Signbit(back.X) {
			t.Errorf("negative zero lost: %q", MarshalPoint(p))
		}
	}
}

// ringVerts collects all shell vertices of a polygon, bit-normalized for
// set comparison.
func vertSet(r geom.Ring) map[[2]uint64]int {
	set := map[[2]uint64]int{}
	for _, v := range r {
		set[[2]uint64{math.Float64bits(v.X), math.Float64bits(v.Y)}]++
	}
	return set
}

func sameVertSet(a, b geom.Ring) bool {
	sa, sb := vertSet(a), vertSet(b)
	if len(sa) != len(sb) {
		return false
	}
	for k, n := range sa {
		if sb[k] != n {
			return false
		}
	}
	return true
}

// Polygons whose coordinates use scientific notation must round-trip
// with every vertex bit-exact. (NewPolygon may reverse ring order to
// normalize orientation, so vertices are compared as a multiset.)
func TestPolygonRoundTripScientific(t *testing.T) {
	cases := []geom.Ring{
		// Tiny but with non-underflowing area.
		{{X: 1e-100, Y: 1e-100}, {X: 3e-100, Y: 1e-100}, {X: 3e-100, Y: 4e-100}, {X: 1e-100, Y: 4e-100}},
		// Huge: area overflows to +Inf, orientation still defined.
		{{X: 1e300, Y: 1e300}, {X: 3e300, Y: 1e300}, {X: 2e300, Y: 2e300}},
		// Mixed magnitudes and negative zero.
		{{X: math.Copysign(0, -1), Y: 0}, {X: 1, Y: 5e-324}, {X: 0.5, Y: 1e3}},
	}
	for _, shell := range cases {
		p := geom.NewPolygon(shell.Clone())
		text := MarshalPolygon(p)
		back, err := ParsePolygon(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		if len(back.Shell) != len(shell) {
			t.Fatalf("vertex count changed: %q -> %d vertices, want %d", text, len(back.Shell), len(shell))
		}
		if !sameVertSet(back.Shell, shell) {
			t.Errorf("vertices changed over round trip of %q: got %v", text, back.Shell)
		}
	}
}

func mustParse(t *testing.T, s string) *geom.Polygon {
	t.Helper()
	p, err := ParsePolygon(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The parser must only drop the closing vertex when it is exactly the
// first vertex. A real vertex within Eps of the start is data, not a
// closer.
func TestParseKeepsNearStartVertex(t *testing.T) {
	p := mustParse(t, "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 1e-13))")
	if len(p.Shell) != 5 {
		t.Fatalf("vertex within Eps of start was swallowed: %d vertices, want 5", len(p.Shell))
	}
}

// Sub-normal-coordinate rings: every vertex is within Eps of every
// other, so an Eps-tolerant closer check destroys the ring. The parser
// must keep all vertices.
func TestParseSubnormalRing(t *testing.T) {
	text := "POLYGON ((0 0, 5e-324 0, 5e-324 5e-324, 0 5e-324))"
	p := mustParse(t, text)
	if len(p.Shell) != 4 {
		t.Fatalf("subnormal ring lost vertices: %d, want 4", len(p.Shell))
	}
	back := mustParse(t, MarshalPolygon(p))
	if !sameVertSet(back.Shell, p.Shell) {
		t.Errorf("subnormal ring changed over round trip: %v vs %v", back.Shell, p.Shell)
	}
}

// An explicitly closed ring still drops exactly one closer.
func TestParseDropsExactCloser(t *testing.T) {
	p := mustParse(t, "POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))")
	if len(p.Shell) != 4 {
		t.Fatalf("explicit closer handling: %d vertices, want 4", len(p.Shell))
	}
}

func TestMultiPolygonRoundTripMixedScales(t *testing.T) {
	a := geom.NewPolygon(
		geom.Ring{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}},
		geom.Ring{{X: 2.5, Y: 2.5}, {X: 7.5, Y: 2.5}, {X: 7.5, Y: 7.5}, {X: 2.5, Y: 7.5}},
	)
	b := geom.NewPolygon(geom.Ring{
		{X: 1.00000000000025e2, Y: -3.0517578125e-5},
		{X: 1.25e2, Y: -3.0517578125e-5},
		{X: 1.25e2, Y: 7},
	})
	m := geom.NewMultiPolygon(a, b)
	text := MarshalMultiPolygon(m)
	back, err := ParseMultiPolygon(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	if MarshalMultiPolygon(back) != text {
		t.Errorf("multipolygon round trip changed text:\n%s\nvs\n%s", text, MarshalMultiPolygon(back))
	}
}
