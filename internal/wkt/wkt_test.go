package wkt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestPointRoundTrip(t *testing.T) {
	p := geom.Point{X: 1.5, Y: -2.25}
	s := MarshalPoint(p)
	if s != "POINT (1.5 -2.25)" {
		t.Errorf("MarshalPoint = %q", s)
	}
	got, err := ParsePoint(s)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Eq(p) {
		t.Errorf("round trip = %v", got)
	}
}

func TestPolygonRoundTrip(t *testing.T) {
	p := geom.NewPolygon(
		geom.Ring{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}},
		geom.Ring{{X: 2, Y: 2}, {X: 4, Y: 2}, {X: 4, Y: 4}, {X: 2, Y: 4}},
	)
	s := MarshalPolygon(p)
	got, err := ParsePolygon(s)
	if err != nil {
		t.Fatalf("%v (input %q)", err, s)
	}
	if got.NumVertices() != p.NumVertices() || len(got.Holes) != 1 {
		t.Errorf("round trip structure: %d vertices, %d holes", got.NumVertices(), len(got.Holes))
	}
	if got.Area() != p.Area() {
		t.Errorf("area %v != %v", got.Area(), p.Area())
	}
}

func TestPolygonRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(30)
		ring := make(geom.Ring, 0, n)
		// Star-shaped construction keeps rings simple.
		for i := 0; i < n; i++ {
			a := float64(i) / float64(n) * 6.283185307
			r := 1 + rng.Float64()*4
			ring = append(ring, geom.Point{X: 50 + r*math.Cos(a), Y: 50 + r*math.Sin(a)})
		}
		p := geom.NewPolygon(ring)
		got, err := ParsePolygon(MarshalPolygon(p))
		if err != nil {
			t.Fatal(err)
		}
		if got.NumVertices() != p.NumVertices() {
			t.Fatalf("trial %d: vertex count changed", trial)
		}
		for i := range got.Shell {
			if !got.Shell[i].Eq(p.Shell[i]) {
				t.Fatalf("trial %d: vertex %d mismatch", trial, i)
			}
		}
	}
}

func TestMultiPolygonRoundTrip(t *testing.T) {
	m := geom.NewMultiPolygon(
		geom.NewPolygon(geom.Ring{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}}),
		geom.NewPolygon(geom.Ring{{X: 5, Y: 5}, {X: 7, Y: 5}, {X: 7, Y: 7}, {X: 5, Y: 7}},
			geom.Ring{{X: 5.5, Y: 5.5}, {X: 6, Y: 5.5}, {X: 6, Y: 6}}),
	)
	got, err := ParseMultiPolygon(MarshalMultiPolygon(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Polys) != 2 || len(got.Polys[1].Holes) != 1 {
		t.Fatalf("structure lost: %d polys", len(got.Polys))
	}
	if got.NumVertices() != m.NumVertices() {
		t.Error("vertex count changed")
	}
}

func TestMultiPolygonEmpty(t *testing.T) {
	m := geom.NewMultiPolygon()
	s := MarshalMultiPolygon(m)
	if s != "MULTIPOLYGON EMPTY" {
		t.Errorf("empty = %q", s)
	}
	got, err := ParseMultiPolygon(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Polys) != 0 {
		t.Error("empty should parse to zero polys")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"LINESTRING (0 0, 1 1)",
		"POLYGON",
		"POLYGON (",
		"POLYGON (())",
		"POLYGON ((0 0, 1 1))",            // too few vertices
		"POLYGON ((0 0, 1 0, 1 1)) junk",  // trailing input
		"POLYGON ((0 0, 1 0, x y))",       // bad number
		"MULTIPOLYGON (((0 0, 1 0, 1 1))", // unbalanced
	}
	for _, s := range bad {
		if _, err := ParsePolygon(s); err == nil {
			if _, err2 := ParseMultiPolygon(s); err2 == nil {
				t.Errorf("input %q should fail", s)
			}
		}
	}
	if _, err := ParsePoint("POINT 1 2"); err == nil {
		t.Error("POINT without parens should fail")
	}
	if _, err := ParsePoint("POLYGON ((0 0, 1 0, 1 1))"); err == nil {
		t.Error("wrong keyword for point should fail")
	}
}

func TestCaseInsensitiveKeyword(t *testing.T) {
	if _, err := ParsePolygon("polygon ((0 0, 4 0, 4 4, 0 4, 0 0))"); err != nil {
		t.Errorf("lowercase keyword: %v", err)
	}
}
