// Package wkt reads and writes the Well-Known Text representation of the
// geometry types used by the library: POINT, POLYGON and MULTIPOLYGON.
package wkt

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// MarshalPoint renders a point, e.g. "POINT (1 2)".
func MarshalPoint(p geom.Point) string {
	return fmt.Sprintf("POINT (%s %s)", num(p.X), num(p.Y))
}

// MarshalPolygon renders a polygon with its holes. The closing vertex is
// emitted explicitly, as WKT requires.
func MarshalPolygon(p *geom.Polygon) string {
	var b strings.Builder
	b.WriteString("POLYGON ")
	writePolygonBody(&b, p)
	return b.String()
}

// MarshalMultiPolygon renders a multipolygon.
func MarshalMultiPolygon(m *geom.MultiPolygon) string {
	if len(m.Polys) == 0 {
		return "MULTIPOLYGON EMPTY"
	}
	var b strings.Builder
	b.WriteString("MULTIPOLYGON (")
	for i, p := range m.Polys {
		if i > 0 {
			b.WriteString(", ")
		}
		writePolygonBody(&b, p)
	}
	b.WriteString(")")
	return b.String()
}

func writePolygonBody(b *strings.Builder, p *geom.Polygon) {
	b.WriteString("(")
	writeRing(b, p.Shell)
	for _, h := range p.Holes {
		b.WriteString(", ")
		writeRing(b, h)
	}
	b.WriteString(")")
}

func writeRing(b *strings.Builder, r geom.Ring) {
	b.WriteString("(")
	for i, pt := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(num(pt.X))
		b.WriteString(" ")
		b.WriteString(num(pt.Y))
	}
	if len(r) > 0 {
		b.WriteString(", ")
		b.WriteString(num(r[0].X))
		b.WriteString(" ")
		b.WriteString(num(r[0].Y))
	}
	b.WriteString(")")
}

func num(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// parser is a minimal recursive-descent WKT reader.
type parser struct {
	s   string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n' || p.s[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.s) || p.s[p.pos] != c {
		return fmt.Errorf("wkt: expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return 0
	}
	return p.s[p.pos]
}

func (p *parser) keyword() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') {
			p.pos++
		} else {
			break
		}
	}
	return strings.ToUpper(p.s[start:p.pos])
}

func (p *parser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, fmt.Errorf("wkt: expected number at offset %d", p.pos)
	}
	return strconv.ParseFloat(p.s[start:p.pos], 64)
}

func (p *parser) point() (geom.Point, error) {
	x, err := p.number()
	if err != nil {
		return geom.Point{}, err
	}
	y, err := p.number()
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Point{X: x, Y: y}, nil
}

func (p *parser) ring() (geom.Ring, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var r geom.Ring
	for {
		pt, err := p.point()
		if err != nil {
			return nil, err
		}
		r = append(r, pt)
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	// Drop the explicit closing vertex if present. The comparison must be
	// exact, not Eps-tolerant: the printer emits the first vertex verbatim
	// as the closer, and a tolerant match here would silently swallow real
	// vertices that merely lie within Eps of the start — for geometry with
	// coordinates below Eps it would swallow the final vertex of *every*
	// ring and reject the text entirely.
	if last := len(r) - 1; last >= 1 && r[0].X == r[last].X && r[0].Y == r[last].Y {
		r = r[:last]
	}
	if len(r) < 3 {
		return nil, fmt.Errorf("wkt: ring has fewer than 3 distinct vertices")
	}
	return r, nil
}

func (p *parser) polygonBody() (*geom.Polygon, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	shell, err := p.ring()
	if err != nil {
		return nil, err
	}
	var holes []geom.Ring
	for p.peek() == ',' {
		p.pos++
		h, err := p.ring()
		if err != nil {
			return nil, err
		}
		holes = append(holes, h)
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return geom.NewPolygon(shell, holes...), nil
}

// ParsePolygon reads a POLYGON text.
func ParsePolygon(s string) (*geom.Polygon, error) {
	p := &parser{s: s}
	if kw := p.keyword(); kw != "POLYGON" {
		return nil, fmt.Errorf("wkt: expected POLYGON, got %q", kw)
	}
	poly, err := p.polygonBody()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("wkt: trailing input at offset %d", p.pos)
	}
	return poly, nil
}

// ParseMultiPolygon reads a MULTIPOLYGON text (EMPTY is allowed).
func ParseMultiPolygon(s string) (*geom.MultiPolygon, error) {
	p := &parser{s: s}
	if kw := p.keyword(); kw != "MULTIPOLYGON" {
		return nil, fmt.Errorf("wkt: expected MULTIPOLYGON, got %q", kw)
	}
	if p.keywordAhead("EMPTY") {
		return geom.NewMultiPolygon(), nil
	}
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var polys []*geom.Polygon
	for {
		poly, err := p.polygonBody()
		if err != nil {
			return nil, err
		}
		polys = append(polys, poly)
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return geom.NewMultiPolygon(polys...), nil
}

func (p *parser) keywordAhead(kw string) bool {
	save := p.pos
	if p.keyword() == kw {
		return true
	}
	p.pos = save
	return false
}

// ParsePoint reads a POINT text.
func ParsePoint(s string) (geom.Point, error) {
	p := &parser{s: s}
	if kw := p.keyword(); kw != "POINT" {
		return geom.Point{}, fmt.Errorf("wkt: expected POINT, got %q", kw)
	}
	if err := p.expect('('); err != nil {
		return geom.Point{}, err
	}
	pt, err := p.point()
	if err != nil {
		return geom.Point{}, err
	}
	if err := p.expect(')'); err != nil {
		return geom.Point{}, err
	}
	return pt, nil
}
