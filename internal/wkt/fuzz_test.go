package wkt

import "testing"

// FuzzParsePolygon checks the WKT reader never panics and that anything
// it accepts survives a marshal/parse round trip.
func FuzzParsePolygon(f *testing.F) {
	seeds := []string{
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
		"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))",
		"polygon((1 1,2 1,2 2))",
		"POLYGON ((0 0, 1e3 0, 1e3 1e3))",
		"POLYGON",
		"POLYGON (())",
		"POLYGON ((0 0, 1 1))",
		"MULTIPOLYGON (((0 0, 1 0, 1 1)))",
		"POINT (1 2)",
		"POLYGON ((-1.5 -2.5, 3 -2.5, 0 7))",
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0)) trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolygon(s)
		if err != nil {
			return
		}
		if p.NumVertices() < 3 {
			t.Fatalf("accepted polygon with %d vertices from %q", p.NumVertices(), s)
		}
		round, err := ParsePolygon(MarshalPolygon(p))
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", s, err)
		}
		if round.NumVertices() != p.NumVertices() || len(round.Holes) != len(p.Holes) {
			t.Fatalf("round trip of %q changed structure", s)
		}
	})
}

// FuzzParseMultiPolygon checks the multipolygon reader likewise.
func FuzzParseMultiPolygon(f *testing.F) {
	seeds := []string{
		"MULTIPOLYGON EMPTY",
		"MULTIPOLYGON (((0 0, 1 0, 1 1)))",
		"MULTIPOLYGON (((0 0, 1 0, 1 1)), ((5 5, 7 5, 7 7, 5 7)))",
		"MULTIPOLYGON (((0 0, 9 0, 9 9, 0 9), (1 1, 2 1, 2 2)))",
		"MULTIPOLYGON ((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMultiPolygon(s)
		if err != nil {
			return
		}
		round, err := ParseMultiPolygon(MarshalMultiPolygon(m))
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", s, err)
		}
		if len(round.Polys) != len(m.Polys) || round.NumVertices() != m.NumVertices() {
			t.Fatalf("round trip of %q changed structure", s)
		}
	})
}
