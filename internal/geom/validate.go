package geom

import (
	"errors"
	"fmt"
)

// Validation errors.
var (
	ErrTooFewVertices  = errors.New("geom: ring has fewer than 3 vertices")
	ErrZeroArea        = errors.New("geom: ring has (near-)zero area")
	ErrSelfIntersect   = errors.New("geom: ring is self-intersecting")
	ErrRepeatedVertex  = errors.New("geom: ring has consecutive repeated vertices")
	ErrHoleOutsideHull = errors.New("geom: hole not inside shell")
)

// ValidateRing checks that r is a simple ring: at least 3 vertices, no
// consecutive duplicates, non-zero area, and no self-intersections
// (adjacent edges may share their common vertex only).
func ValidateRing(r Ring) error {
	n := len(r)
	if n < 3 {
		return ErrTooFewVertices
	}
	for i := 0; i < n; i++ {
		if r[i].Eq(r[(i+1)%n]) {
			return fmt.Errorf("%w (vertex %d)", ErrRepeatedVertex, i)
		}
	}
	if a := r.Area(); -1e-9 < a && a < 1e-9 {
		return ErrZeroArea
	}
	for i := 0; i < n; i++ {
		a1, b1 := r[i], r[(i+1)%n]
		for j := i + 1; j < n; j++ {
			a2, b2 := r[j], r[(j+1)%n]
			adjacent := j == i+1 || (i == 0 && j == n-1)
			res := SegIntersect(a1, b1, a2, b2)
			switch res.Kind {
			case SegNone:
			case SegPoint:
				if !adjacent {
					return fmt.Errorf("%w (edges %d,%d)", ErrSelfIntersect, i, j)
				}
				// Adjacent edges must meet exactly at the shared vertex.
				shared := b1
				if i == 0 && j == n-1 {
					shared = a1
				}
				if !res.P.Eq(shared) {
					return fmt.Errorf("%w (edges %d,%d)", ErrSelfIntersect, i, j)
				}
			case SegOverlap:
				return fmt.Errorf("%w (collinear edges %d,%d)", ErrSelfIntersect, i, j)
			}
		}
	}
	return nil
}

// ValidatePolygon checks ring simplicity and that every hole lies inside
// the shell. It does not check hole/hole disjointness exhaustively (the
// generators never produce overlapping holes); it does verify that each
// hole's vertices are not outside the shell.
func ValidatePolygon(p *Polygon) error {
	if err := ValidateRing(p.Shell); err != nil {
		return fmt.Errorf("shell: %w", err)
	}
	for i, h := range p.Holes {
		if err := ValidateRing(h); err != nil {
			return fmt.Errorf("hole %d: %w", i, err)
		}
		for _, v := range h {
			if LocateInRing(v, p.Shell) == Outside {
				return fmt.Errorf("hole %d: %w", i, ErrHoleOutsideHull)
			}
		}
	}
	return nil
}
