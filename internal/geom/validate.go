package geom

import (
	"errors"
	"fmt"
)

// Validation errors.
var (
	ErrTooFewVertices  = errors.New("geom: ring has fewer than 3 vertices")
	ErrZeroArea        = errors.New("geom: ring has (near-)zero area")
	ErrSelfIntersect   = errors.New("geom: ring is self-intersecting")
	ErrRepeatedVertex  = errors.New("geom: ring has consecutive repeated vertices")
	ErrHoleOutsideHull = errors.New("geom: hole not inside shell")
	ErrRingsCross      = errors.New("geom: rings cross or overlap along a segment")
)

// ValidateRing checks that r is a simple ring: at least 3 vertices, no
// consecutive duplicates, non-zero area, and no self-intersections
// (adjacent edges may share their common vertex only).
func ValidateRing(r Ring) error {
	n := len(r)
	if n < 3 {
		return ErrTooFewVertices
	}
	for i := 0; i < n; i++ {
		if r[i].Eq(r[(i+1)%n]) {
			return fmt.Errorf("%w (vertex %d)", ErrRepeatedVertex, i)
		}
	}
	if a := r.Area(); -1e-9 < a && a < 1e-9 {
		return ErrZeroArea
	}
	for i := 0; i < n; i++ {
		a1, b1 := r[i], r[(i+1)%n]
		for j := i + 1; j < n; j++ {
			a2, b2 := r[j], r[(j+1)%n]
			adjacent := j == i+1 || (i == 0 && j == n-1)
			res := SegIntersect(a1, b1, a2, b2)
			switch res.Kind {
			case SegNone:
			case SegPoint:
				if !adjacent {
					return fmt.Errorf("%w (edges %d,%d)", ErrSelfIntersect, i, j)
				}
				// Adjacent edges must meet exactly at the shared vertex.
				shared := b1
				if i == 0 && j == n-1 {
					shared = a1
				}
				if !res.P.Eq(shared) {
					return fmt.Errorf("%w (edges %d,%d)", ErrSelfIntersect, i, j)
				}
			case SegOverlap:
				return fmt.Errorf("%w (collinear edges %d,%d)", ErrSelfIntersect, i, j)
			}
		}
	}
	return nil
}

// ringsTouchOnlyAtPoints checks the OGC constraint that two rings of the
// same polygon may intersect only at isolated touch points: a collinear
// overlap or a proper crossing between their edges makes the polygon
// non-simple. A polygon whose hole shares a segment with its shell slips
// past vertex-containment checks but carries a dangling 1-dimensional
// piece of "boundary" that the area-based refinement pipeline has no
// consistent classification for — such input must be rejected up front.
func ringsTouchOnlyAtPoints(r1, r2 Ring) error {
	n1, n2 := len(r1), len(r2)
	for i := 0; i < n1; i++ {
		a, b := r1[i], r1[(i+1)%n1]
		for j := 0; j < n2; j++ {
			c, d := r2[j], r2[(j+1)%n2]
			switch res := SegIntersect(a, b, c, d); {
			case res.Kind == SegOverlap:
				return fmt.Errorf("%w (collinear edges %d,%d)", ErrRingsCross, i, j)
			case res.Kind == SegPoint && res.Proper:
				return fmt.Errorf("%w (edges %d,%d)", ErrRingsCross, i, j)
			}
		}
	}
	return nil
}

// ValidatePolygon checks ring simplicity, that every hole lies inside
// the shell, and that no two rings cross or share a boundary segment
// (isolated point touches are allowed, as in OGC Simple Features).
func ValidatePolygon(p *Polygon) error {
	if err := ValidateRing(p.Shell); err != nil {
		return fmt.Errorf("shell: %w", err)
	}
	for i, h := range p.Holes {
		if err := ValidateRing(h); err != nil {
			return fmt.Errorf("hole %d: %w", i, err)
		}
		for _, v := range h {
			if LocateInRing(v, p.Shell) == Outside {
				return fmt.Errorf("hole %d: %w", i, ErrHoleOutsideHull)
			}
		}
		if err := ringsTouchOnlyAtPoints(p.Shell, h); err != nil {
			return fmt.Errorf("hole %d vs shell: %w", i, err)
		}
		for j := 0; j < i; j++ {
			if err := ringsTouchOnlyAtPoints(p.Holes[j], h); err != nil {
				return fmt.Errorf("hole %d vs hole %d: %w", i, j, err)
			}
		}
	}
	return nil
}
