package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randBlob generates a random star-shaped ring around (cx, cy): angles are
// sorted so the ring is simple by construction.
func randBlob(rng *rand.Rand, cx, cy, radius float64, n int) Ring {
	angles := make([]float64, n)
	step := 2 * math.Pi / float64(n)
	for i := range angles {
		angles[i] = float64(i)*step + rng.Float64()*step*0.8
	}
	ring := make(Ring, n)
	for i, a := range angles {
		r := radius * (0.4 + 0.6*rng.Float64())
		ring[i] = Point{cx + r*math.Cos(a), cy + r*math.Sin(a)}
	}
	return ring
}

func square(x, y, side float64) Ring {
	return Ring{{x, y}, {x + side, y}, {x + side, y + side}, {x, y + side}}
}

func TestOrient(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if Orient(a, b, Point{0.5, 1}) != 1 {
		t.Error("expected CCW")
	}
	if Orient(a, b, Point{0.5, -1}) != -1 {
		t.Error("expected CW")
	}
	if Orient(a, b, Point{2, 0}) != 0 {
		t.Error("expected collinear")
	}
}

func TestPointOps(t *testing.T) {
	p, q := Point{1, 2}, Point{4, 6}
	if got := p.Add(q); got != (Point{5, 8}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{3, 4}) {
		t.Errorf("Sub = %v", got)
	}
	if d := p.Dist(q); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if got := Midpoint(p, q); got != (Point{2.5, 4}) {
		t.Errorf("Midpoint = %v", got)
	}
	if got := Lerp(p, q, 0); !got.Eq(p) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := Lerp(p, q, 1); !got.Eq(q) {
		t.Errorf("Lerp(1) = %v", got)
	}
	if !p.Eq(Point{1 + 1e-13, 2}) {
		t.Error("Eq should tolerate Eps")
	}
}

func TestMBRBasics(t *testing.T) {
	m := EmptyMBR()
	if !m.IsEmpty() {
		t.Fatal("EmptyMBR not empty")
	}
	m = m.ExpandPoint(Point{1, 2}).ExpandPoint(Point{3, -1})
	want := MBR{1, -1, 3, 2}
	if m != want {
		t.Fatalf("expand = %v, want %v", m, want)
	}
	if m.Area() != 2*3 {
		t.Errorf("Area = %v", m.Area())
	}
	if m.Center() != (Point{2, 0.5}) {
		t.Errorf("Center = %v", m.Center())
	}

	o := MBR{2, 0, 5, 5}
	if !m.Intersects(o) {
		t.Error("should intersect")
	}
	inter := m.Intersection(o)
	if inter != (MBR{2, 0, 3, 2}) {
		t.Errorf("Intersection = %v", inter)
	}
	if m.Intersects(MBR{10, 10, 11, 11}) {
		t.Error("should not intersect")
	}
	// Touching boundaries intersect.
	if !m.Intersects(MBR{3, 2, 4, 4}) {
		t.Error("touching MBRs must intersect")
	}
}

func TestMBRContains(t *testing.T) {
	outer := MBR{0, 0, 10, 10}
	inner := MBR{2, 2, 8, 8}
	if !outer.ContainsMBR(inner) || !outer.StrictlyContainsMBR(inner) {
		t.Error("outer should contain inner")
	}
	edge := MBR{0, 2, 8, 8}
	if !outer.ContainsMBR(edge) {
		t.Error("contains with shared edge")
	}
	if outer.StrictlyContainsMBR(edge) {
		t.Error("strict containment must reject shared edge")
	}
	if !outer.Equal(MBR{0, 0, 10, 10}) {
		t.Error("Equal failed")
	}
	if !outer.ContainsPoint(Point{0, 0}) || outer.ContainsPoint(Point{-1, 5}) {
		t.Error("ContainsPoint failed")
	}
}

func TestRingAreaOrientation(t *testing.T) {
	sq := square(0, 0, 2)
	if a := sq.Area(); math.Abs(a-4) > 1e-12 {
		t.Errorf("Area = %v, want 4", a)
	}
	if !sq.IsCCW() {
		t.Error("square should be CCW")
	}
	rev := sq.Clone()
	rev.Reverse()
	if rev.IsCCW() {
		t.Error("reversed square should be CW")
	}
	if a := rev.Area(); math.Abs(a+4) > 1e-12 {
		t.Errorf("reversed Area = %v, want -4", a)
	}
}

func TestNewPolygonNormalizesOrientation(t *testing.T) {
	shell := square(0, 0, 10)
	shell.Reverse()         // CW input
	hole := square(2, 2, 2) // CCW input
	p := NewPolygon(shell, hole)
	if !p.Shell.IsCCW() {
		t.Error("shell not normalized to CCW")
	}
	if p.Holes[0].IsCCW() {
		t.Error("hole not normalized to CW")
	}
	if a := p.Area(); math.Abs(a-(100-4)) > 1e-9 {
		t.Errorf("Area = %v, want 96", a)
	}
	if p.NumVertices() != 8 {
		t.Errorf("NumVertices = %d, want 8", p.NumVertices())
	}
}

func TestPolygonEdgesAndRings(t *testing.T) {
	p := NewPolygon(square(0, 0, 4), square(1, 1, 1))
	var edges, rings int
	p.Edges(func(a, b Point) { edges++ })
	p.Rings(func(r Ring) { rings++ })
	if edges != 8 || rings != 2 {
		t.Errorf("edges=%d rings=%d, want 8, 2", edges, rings)
	}
}

func TestPolygonTransforms(t *testing.T) {
	p := NewPolygon(square(0, 0, 2))
	q := p.Translate(10, 5)
	if q.Bounds() != (MBR{10, 5, 12, 7}) {
		t.Errorf("Translate bounds = %v", q.Bounds())
	}
	// Original untouched.
	if p.Bounds() != (MBR{0, 0, 2, 2}) {
		t.Error("Translate mutated the receiver")
	}
	s := p.ScaleAbout(Point{0, 0}, 3)
	if s.Bounds() != (MBR{0, 0, 6, 6}) {
		t.Errorf("ScaleAbout bounds = %v", s.Bounds())
	}
	if math.Abs(s.Area()-36) > 1e-9 {
		t.Errorf("scaled area = %v", s.Area())
	}
}

func TestMultiPolygon(t *testing.T) {
	m := NewMultiPolygon(
		NewPolygon(square(0, 0, 1)),
		NewPolygon(square(5, 5, 2)),
	)
	if m.Bounds() != (MBR{0, 0, 7, 7}) {
		t.Errorf("Bounds = %v", m.Bounds())
	}
	if math.Abs(m.Area()-5) > 1e-9 {
		t.Errorf("Area = %v, want 5", m.Area())
	}
	if m.NumVertices() != 8 {
		t.Errorf("NumVertices = %d", m.NumVertices())
	}
	var edges int
	m.Edges(func(a, b Point) { edges++ })
	if edges != 8 {
		t.Errorf("edges = %d", edges)
	}
}
