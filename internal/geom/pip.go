package geom

// Location classifies a point against a region.
type Location int

// Point locations relative to a region.
const (
	Outside Location = iota
	OnBoundary
	Inside
)

func (l Location) String() string {
	switch l {
	case Outside:
		return "outside"
	case OnBoundary:
		return "boundary"
	default:
		return "inside"
	}
}

// ringCrossings counts, for the ray from p to x = +inf, the parity of ring
// edge crossings, reporting (odd, onBoundary).
func ringCrossings(p Point, r Ring) (bool, bool) {
	n := len(r)
	odd := false
	for i := 0; i < n; i++ {
		a, b := r[i], r[(i+1)%n]
		if OnSegment(p, a, b) {
			return false, true
		}
		// Half-open rule: count edges whose y-span straddles p.Y.
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xint := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if xint > p.X {
				odd = !odd
			}
		}
	}
	return odd, false
}

// LocateInRing classifies p against the region enclosed by ring r.
func LocateInRing(p Point, r Ring) Location {
	odd, on := ringCrossings(p, r)
	switch {
	case on:
		return OnBoundary
	case odd:
		return Inside
	default:
		return Outside
	}
}

// LocateInPolygon classifies p against polygon poly, treating hole
// boundaries as part of the polygon boundary and hole interiors as exterior.
func LocateInPolygon(p Point, poly *Polygon) Location {
	if !poly.Bounds().ContainsPoint(p) {
		return Outside
	}
	switch LocateInRing(p, poly.Shell) {
	case Outside:
		return Outside
	case OnBoundary:
		return OnBoundary
	}
	for _, h := range poly.Holes {
		switch LocateInRing(p, h) {
		case Inside:
			return Outside // inside a hole
		case OnBoundary:
			return OnBoundary
		}
	}
	return Inside
}

// LocateInMulti classifies p against a multipolygon.
func LocateInMulti(p Point, m *MultiPolygon) Location {
	for _, poly := range m.Polys {
		if loc := LocateInPolygon(p, poly); loc != Outside {
			return loc
		}
	}
	return Outside
}
