package geom

import "math"

// SegmentDistance returns the minimum distance between segments (a, b)
// and (c, d); 0 when they intersect.
func SegmentDistance(a, b, c, d Point) float64 {
	if SegIntersect(a, b, c, d).Kind != SegNone {
		return 0
	}
	return math.Min(
		math.Min(distToSegment(a, c, d), distToSegment(b, c, d)),
		math.Min(distToSegment(c, a, b), distToSegment(d, a, b)),
	)
}

// MBRDistance returns the minimum distance between two rectangles
// (0 when they intersect) — the cheap lower bound used to prune distance
// computations.
func MBRDistance(a, b MBR) float64 {
	dx := math.Max(0, math.Max(a.MinX-b.MaxX, b.MinX-a.MaxX))
	dy := math.Max(0, math.Max(a.MinY-b.MaxY, b.MinY-a.MaxY))
	return math.Hypot(dx, dy)
}

// PointPolygonDistance returns the distance from p to polygon poly:
// 0 when p lies inside or on the boundary.
func PointPolygonDistance(p Point, poly *Polygon) float64 {
	if LocateInPolygon(p, poly) != Outside {
		return 0
	}
	best := math.Inf(1)
	poly.Edges(func(a, b Point) {
		if d := distToSegment(p, a, b); d < best {
			best = d
		}
	})
	return best
}

// PolygonDistance returns the minimum distance between two polygons:
// 0 when they share a point (including containment). For separated
// polygons the minimum is attained between boundary edges; the edge scan
// prunes pairs whose bounding boxes already exceed the best found.
func PolygonDistance(a, b *Polygon) float64 {
	if MBRDistance(a.Bounds(), b.Bounds()) == 0 {
		// Potential overlap: containment makes the distance 0 without any
		// boundary proximity.
		if LocateInPolygon(a.Shell[0], b) != Outside || LocateInPolygon(b.Shell[0], a) != Outside {
			return 0
		}
	}
	best := math.Inf(1)
	a.Edges(func(p, q Point) {
		// Edge-level bound: the other polygon's MBR.
		eb := BoundsOf([]Point{p, q})
		if MBRDistance(eb, b.Bounds()) >= best {
			return
		}
		b.Edges(func(r, s Point) {
			sb := BoundsOf([]Point{r, s})
			if MBRDistance(eb, sb) >= best {
				return
			}
			if d := SegmentDistance(p, q, r, s); d < best {
				best = d
			}
		})
	})
	return best
}

// distToSegment is defined in simplify.go and shared here.
