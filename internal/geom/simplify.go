package geom

// Simplify reduces the vertex count of a ring with the Douglas-Peucker
// algorithm at the given tolerance, preserving the first vertex. The
// result always keeps at least 3 vertices (or the input when it is
// already smaller). Simplification of a simple ring can in rare cases
// introduce self-intersections; callers that need validity should check
// with ValidateRing and fall back to a smaller tolerance.
func Simplify(r Ring, tolerance float64) Ring {
	n := len(r)
	if n <= 3 {
		return r.Clone()
	}
	// Split the cyclic ring at its two mutually farthest-ish vertices
	// (vertex 0 and the vertex farthest from it), simplify both open
	// chains, and rejoin.
	far := 0
	var best float64
	for i := 1; i < n; i++ {
		if d := r[0].Dist(r[i]); d > best {
			best, far = d, i
		}
	}
	keep := make([]bool, n)
	keep[0], keep[far] = true, true
	dpMark(r, 0, far, tolerance, keep)
	dpMarkWrap(r, far, n, tolerance, keep)

	out := make(Ring, 0, n)
	for i, k := range keep {
		if k {
			out = append(out, r[i])
		}
	}
	if len(out) < 3 {
		// Tolerance collapsed the ring; keep a minimal triangle.
		third := (far + n/3) % n
		keep[third] = true
		out = out[:0]
		for i, k := range keep {
			if k {
				out = append(out, r[i])
			}
		}
	}
	return out
}

// dpMark marks the vertices to keep in the open chain r[lo..hi].
func dpMark(r Ring, lo, hi int, tol float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	far, best := -1, tol
	for i := lo + 1; i < hi; i++ {
		if d := distToSegment(r[i], r[lo], r[hi]); d > best {
			best, far = d, i
		}
	}
	if far < 0 {
		return
	}
	keep[far] = true
	dpMark(r, lo, far, tol, keep)
	dpMark(r, far, hi, tol, keep)
}

// dpMarkWrap handles the chain from index lo around the wrap back to 0.
func dpMarkWrap(r Ring, lo, n int, tol float64, keep []bool) {
	idx := make([]int, 0, n-lo+1)
	for i := lo; i < n; i++ {
		idx = append(idx, i)
	}
	idx = append(idx, 0)
	var rec func(a, b int)
	rec = func(a, b int) {
		if b-a < 2 {
			return
		}
		far, best := -1, tol
		for i := a + 1; i < b; i++ {
			if d := distToSegment(r[idx[i]], r[idx[a]], r[idx[b]]); d > best {
				best, far = d, i
			}
		}
		if far < 0 {
			return
		}
		keep[idx[far]] = true
		rec(a, far)
		rec(far, b)
	}
	rec(0, len(idx)-1)
}

// distToSegment returns the distance from p to segment (a, b).
func distToSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.X*ab.X + ab.Y*ab.Y
	if l2 == 0 {
		return p.Dist(a)
	}
	t := ((p.X-a.X)*ab.X + (p.Y-a.Y)*ab.Y) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(Lerp(a, b, t))
}

// SimplifyPolygon simplifies every ring of the polygon; holes smaller
// than the tolerance, or that collapse below 3 vertices or lose their
// validity, are dropped.
func SimplifyPolygon(p *Polygon, tolerance float64) *Polygon {
	shell := Simplify(p.Shell, tolerance)
	if ValidateRing(shell) != nil {
		shell = p.Shell.Clone() // keep the original on failure
	}
	var holes []Ring
	for _, h := range p.Holes {
		hb := h.Bounds()
		if hb.Width() < tolerance && hb.Height() < tolerance {
			continue // the hole is below the feature scale
		}
		s := Simplify(h, tolerance)
		if len(s) >= 3 && ValidateRing(s) == nil {
			holes = append(holes, s)
		}
	}
	return NewPolygon(shell, holes...)
}
