package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randTestPoly builds a random star-shaped polygon (valid, non-self-
// intersecting) with nv shell vertices and optionally one triangular
// hole, in a mix of orientations so Finish's normalization is exercised.
func randTestPoly(rng *rand.Rand, nv int, withHole bool) *Polygon {
	cx, cy := rng.Float64()*100, rng.Float64()*100
	shell := make(Ring, nv)
	for i := range shell {
		ang := 2 * math.Pi * float64(i) / float64(nv)
		rad := 5 + 4*rng.Float64()
		shell[i] = Point{cx + rad*math.Cos(ang), cy + rad*math.Sin(ang)}
	}
	if rng.Intn(2) == 0 {
		shell.Reverse() // mix CW and CCW inputs
	}
	var holes []Ring
	if withHole {
		h := Ring{
			{cx - 0.5, cy - 0.5},
			{cx + 0.5, cy - 0.5},
			{cx, cy + 0.5},
		}
		if rng.Intn(2) == 0 {
			h.Reverse()
		}
		holes = append(holes, h)
	}
	return NewPolygon(shell, holes...)
}

func TestArenaRoundTripEqualsHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		heap := make([]*Polygon, n)
		for i := range heap {
			heap[i] = randTestPoly(rng, 3+rng.Intn(12), rng.Intn(3) == 0)
		}
		a := BuildArena(heap)
		if a.Len() != n {
			t.Fatalf("arena.Len() = %d, want %d", a.Len(), n)
		}
		wantVerts, wantRings := 0, 0
		for i, hp := range heap {
			ap := a.Polygon(i)
			wantVerts += hp.NumVertices()
			wantRings += 1 + len(hp.Holes)
			if !reflect.DeepEqual(append(Ring{}, hp.Shell...), append(Ring{}, ap.Shell...)) {
				t.Fatalf("trial %d poly %d: shell mismatch\nheap  %v\narena %v", trial, i, hp.Shell, ap.Shell)
			}
			if len(hp.Holes) != len(ap.Holes) {
				t.Fatalf("trial %d poly %d: hole count %d vs %d", trial, i, len(hp.Holes), len(ap.Holes))
			}
			for j := range hp.Holes {
				if !reflect.DeepEqual(append(Ring{}, hp.Holes[j]...), append(Ring{}, ap.Holes[j]...)) {
					t.Fatalf("trial %d poly %d hole %d mismatch", trial, i, j)
				}
			}
			if hp.Bounds() != ap.Bounds() {
				t.Fatalf("trial %d poly %d: bounds %v vs %v", trial, i, hp.Bounds(), ap.Bounds())
			}
			if hp.Area() != ap.Area() {
				t.Fatalf("trial %d poly %d: area %v vs %v", trial, i, hp.Area(), ap.Area())
			}
		}
		if a.NumVertices() != wantVerts {
			t.Fatalf("NumVertices = %d, want %d", a.NumVertices(), wantVerts)
		}
		if a.NumRings() != wantRings {
			t.Fatalf("NumRings = %d, want %d", a.NumRings(), wantRings)
		}
	}
}

// TestArenaViewsAliasSlab proves the columnar claim: every ring view is
// a window into the one coordinate slab, not a copy.
func TestArenaViewsAliasSlab(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	heap := []*Polygon{randTestPoly(rng, 6, true), randTestPoly(rng, 5, false)}
	a := BuildArena(heap)
	coords := a.Coords()
	if len(coords) != 2*a.NumVertices() {
		t.Fatalf("slab has %d floats, want %d", len(coords), 2*a.NumVertices())
	}
	// Mutating the slab must be visible through the polygon views.
	p0 := a.Polygon(0)
	coords[0] = 12345.5
	coords[1] = -1.25
	if got := p0.Shell[0]; got != (Point{12345.5, -1.25}) {
		t.Fatalf("shell does not alias slab: got %v", got)
	}
}

// TestArenaOrientation checks Finish normalizes orientation exactly like
// NewPolygon: shells CCW, holes CW.
func TestArenaOrientation(t *testing.T) {
	shell := Ring{{0, 0}, {0, 4}, {4, 4}, {4, 0}} // CW input
	hole := Ring{{1, 1}, {3, 1}, {2, 3}}          // CCW input
	var b ArenaBuilder
	b.BeginPolygon()
	b.BeginRing()
	for _, p := range shell {
		b.Vertex(p.X, p.Y)
	}
	b.BeginRing()
	for _, p := range hole {
		b.Vertex(p.X, p.Y)
	}
	a := b.Finish()
	got := a.Polygon(0)
	if !got.Shell.IsCCW() {
		t.Errorf("shell not CCW after Finish")
	}
	if got.Holes[0].IsCCW() {
		t.Errorf("hole not CW after Finish")
	}
	want := NewPolygon(shell.Clone(), hole.Clone())
	if !reflect.DeepEqual(append(Ring{}, want.Shell...), append(Ring{}, got.Shell...)) {
		t.Errorf("shell differs from NewPolygon: %v vs %v", got.Shell, want.Shell)
	}
	if !reflect.DeepEqual(append(Ring{}, want.Holes[0]...), append(Ring{}, got.Holes[0]...)) {
		t.Errorf("hole differs from NewPolygon: %v vs %v", got.Holes[0], want.Holes[0])
	}
}

// TestArenaEmptyAndSingle covers degenerate builder states.
func TestArenaEmptyAndSingle(t *testing.T) {
	var b ArenaBuilder
	a := b.Finish()
	if a.Len() != 0 || a.NumVertices() != 0 || a.NumRings() != 0 {
		t.Fatalf("empty arena not empty: %d polys, %d rings, %d verts",
			a.Len(), a.NumRings(), a.NumVertices())
	}
	one := BuildArena([]*Polygon{NewPolygon(Ring{{0, 0}, {1, 0}, {0, 1}})})
	if one.Len() != 1 || one.Polygon(0).NumVertices() != 3 {
		t.Fatalf("single-polygon arena malformed")
	}
	if one.Bytes() <= 0 {
		t.Fatalf("Bytes() = %d, want > 0", one.Bytes())
	}
}
