package geom

import "sort"

// ConvexHull returns the convex hull of the points as a CCW ring, using
// Andrew's monotone chain. Collinear points on the hull boundary are
// dropped. The input is not modified.
func ConvexHull(pts []Point) Ring {
	if len(pts) < 3 {
		out := make(Ring, len(pts))
		copy(out, pts)
		return out
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Deduplicate.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if !p.Eq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) < 3 {
		out := make(Ring, len(ps))
		copy(out, ps)
		return out
	}

	build := func(iter func(fn func(Point))) []Point {
		var chain []Point
		iter(func(p Point) {
			for len(chain) >= 2 && Cross(chain[len(chain)-2], chain[len(chain)-1], p) <= Eps {
				chain = chain[:len(chain)-1]
			}
			chain = append(chain, p)
		})
		return chain
	}
	lower := build(func(fn func(Point)) {
		for _, p := range ps {
			fn(p)
		}
	})
	upper := build(func(fn func(Point)) {
		for i := len(ps) - 1; i >= 0; i-- {
			fn(ps[i])
		}
	})
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	return Ring(hull)
}

// HullOfPolygon returns the convex hull of the polygon's shell (holes
// cannot contribute hull vertices).
func HullOfPolygon(p *Polygon) Ring { return ConvexHull(p.Shell) }

// ConvexContainsPoint reports whether p lies inside or on a convex CCW
// ring, in O(log n) via binary search on the fan around vertex 0.
func ConvexContainsPoint(hull Ring, p Point) bool {
	n := len(hull)
	if n == 0 {
		return false
	}
	if n == 1 {
		return hull[0].Eq(p)
	}
	if n == 2 {
		return OnSegment(p, hull[0], hull[1])
	}
	if Cross(hull[0], hull[1], p) < -Eps || Cross(hull[0], hull[n-1], p) > Eps {
		return false
	}
	lo, hi := 1, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if Cross(hull[0], hull[mid], p) >= -Eps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Cross(hull[lo], hull[lo+1], p) >= -Eps
}

// ConvexIntersects reports whether two convex CCW rings share at least
// one point, via separating-axis testing over both edge sets.
func ConvexIntersects(a, b Ring) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	return !hasSeparatingAxis(a, b) && !hasSeparatingAxis(b, a)
}

// hasSeparatingAxis reports whether some edge of a separates all of b
// strictly to its outside.
func hasSeparatingAxis(a, b Ring) bool {
	n := len(a)
	for i := 0; i < n; i++ {
		p, q := a[i], a[(i+1)%n]
		separates := true
		for _, v := range b {
			if Cross(p, q, v) >= -Eps {
				separates = false
				break
			}
		}
		if separates {
			return true
		}
	}
	return false
}

// ConvexContainsRing reports whether every vertex of r lies inside hull
// (sufficient for ring containment when hull is convex).
func ConvexContainsRing(hull, r Ring) bool {
	for _, v := range r {
		if !ConvexContainsPoint(hull, v) {
			return false
		}
	}
	return true
}
