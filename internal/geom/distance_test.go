package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestMBRDistance(t *testing.T) {
	a := MBR{0, 0, 2, 2}
	cases := []struct {
		b    MBR
		want float64
	}{
		{MBR{1, 1, 3, 3}, 0},    // overlap
		{MBR{2, 0, 4, 2}, 0},    // touch
		{MBR{5, 0, 6, 2}, 3},    // right
		{MBR{0, 5, 2, 6}, 3},    // above
		{MBR{5, 6, 7, 8}, 5},    // diagonal (3,4)
		{MBR{-4, -2, -2, 0}, 2}, // left, touching in y
	}
	for _, c := range cases {
		if got := MBRDistance(a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MBRDistance(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := MBRDistance(c.b, a); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MBRDistance symmetric (%v) = %v", c.b, got)
		}
	}
}

func TestSegmentDistance(t *testing.T) {
	if d := SegmentDistance(Point{0, 0}, Point{2, 2}, Point{0, 2}, Point{2, 0}); d != 0 {
		t.Errorf("crossing segments: %v", d)
	}
	if d := SegmentDistance(Point{0, 0}, Point{4, 0}, Point{0, 3}, Point{4, 3}); math.Abs(d-3) > 1e-12 {
		t.Errorf("parallel segments: %v", d)
	}
	if d := SegmentDistance(Point{0, 0}, Point{1, 0}, Point{3, 4}, Point{3, 8}); math.Abs(d-math.Hypot(2, 4)) > 1e-12 {
		t.Errorf("endpoint distance: %v", d)
	}
}

func TestPointPolygonDistance(t *testing.T) {
	p := NewPolygon(square(0, 0, 4))
	if d := PointPolygonDistance(Point{2, 2}, p); d != 0 {
		t.Errorf("inside: %v", d)
	}
	if d := PointPolygonDistance(Point{4, 2}, p); d != 0 {
		t.Errorf("on boundary: %v", d)
	}
	if d := PointPolygonDistance(Point{7, 2}, p); math.Abs(d-3) > 1e-12 {
		t.Errorf("beside: %v", d)
	}
	if d := PointPolygonDistance(Point{7, 8}, p); math.Abs(d-5) > 1e-12 {
		t.Errorf("diagonal: %v", d)
	}
	// Inside the hole of an annulus: distance to the hole ring.
	ann := NewPolygon(square(0, 0, 10), square(3, 3, 4))
	if d := PointPolygonDistance(Point{5, 5}, ann); math.Abs(d-2) > 1e-12 {
		t.Errorf("hole center: %v", d)
	}
}

func TestPolygonDistance(t *testing.T) {
	a := NewPolygon(square(0, 0, 2))
	cases := []struct {
		b    *Polygon
		want float64
	}{
		{NewPolygon(square(5, 0, 2)), 3},
		{NewPolygon(square(2, 0, 2)), 0},             // touching
		{NewPolygon(square(1, 1, 4)), 0},             // overlapping
		{NewPolygon(square(-3, -3, 10)), 0},          // contains a
		{NewPolygon(square(5, 5, 2)), math.Sqrt(18)}, // diagonal
	}
	for i, c := range cases {
		if got := PolygonDistance(a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
		if got := PolygonDistance(c.b, a); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d symmetric: %v", i, got)
		}
	}
	// a inside the hole of an annulus: positive distance to the hole ring.
	ann := NewPolygon(square(-10, -10, 30), square(-1, -1, 4))
	if got := PolygonDistance(a, ann); math.Abs(got-1) > 1e-12 {
		t.Errorf("annulus case: %v, want 1", got)
	}
}

// TestPolygonDistanceRandom: distance is 0 iff the polygons intersect
// (brute force), and otherwise equals the minimum over all edge pairs.
func TestPolygonDistanceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 80; trial++ {
		a := NewPolygon(randBlob(rng, rng.Float64()*20, rng.Float64()*20, 2+rng.Float64()*5, 6+rng.Intn(30)))
		b := NewPolygon(randBlob(rng, rng.Float64()*20, rng.Float64()*20, 2+rng.Float64()*5, 6+rng.Intn(30)))
		got := PolygonDistance(a, b)
		intersects := bruteIntersect(a, b)
		if intersects && got != 0 {
			t.Fatalf("trial %d: intersecting but distance %v", trial, got)
		}
		if !intersects {
			want := math.Inf(1)
			a.Edges(func(p, q Point) {
				b.Edges(func(r, s Point) {
					if d := SegmentDistance(p, q, r, s); d < want {
						want = d
					}
				})
			})
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: %v, brute %v", trial, got, want)
			}
			if got <= 0 {
				t.Fatalf("trial %d: disjoint but distance %v", trial, got)
			}
		}
	}
}

func bruteIntersect(a, b *Polygon) bool {
	cross := false
	a.Edges(func(p, q Point) {
		b.Edges(func(r, s Point) {
			if SegIntersect(p, q, r, s).Kind != SegNone {
				cross = true
			}
		})
	})
	if cross {
		return true
	}
	if LocateInPolygon(a.Shell[0], b) != Outside {
		return true
	}
	return LocateInPolygon(b.Shell[0], a) != Outside
}
