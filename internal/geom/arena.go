package geom

import "unsafe"

// Arena is a pointer-free columnar store for a whole collection of
// polygons: every vertex of every ring lives in one flat interleaved
// []float64 coordinate slab, with ring and polygon extents recorded in
// offset tables. Ring and Polygon values handed out by the arena are
// views into the slab, so a dataset of N polygons costs a handful of
// allocations instead of a heap graph of N*(rings+1) objects — the
// refinement engine then walks contiguous cache lines instead of
// chasing pointers, and the slab itself is the serialization unit
// (bit-exact with the snapshot geometry section, mmap-friendly).
//
// Arenas are immutable after Finish and safe for concurrent readers.
type Arena struct {
	coords  []float64 // interleaved x0 y0 x1 y1 ... for all rings back-to-back
	ringOff []int32   // ring r spans vertices [ringOff[r], ringOff[r+1])
	polyOff []int32   // polygon p owns rings [polyOff[p], polyOff[p+1]); shell first
	polys   []Polygon // materialized headers whose Shell/Holes alias the slab
	holes   []Ring    // shared backing slab for every polys[i].Holes slice
}

// Point is serialized as two float64s; the ring views below rely on the
// struct having exactly that layout.
var _ [16]byte = [unsafe.Sizeof(Point{})]byte{}

// Len returns the number of polygons in the arena.
func (a *Arena) Len() int { return len(a.polys) }

// Polygon returns the i-th polygon. The returned value aliases the
// arena's slabs and stays valid for the arena's lifetime.
func (a *Arena) Polygon(i int) *Polygon { return &a.polys[i] }

// NumRings returns the total ring count over all polygons.
func (a *Arena) NumRings() int { return len(a.ringOff) - 1 }

// NumVertices returns the total vertex count over all rings.
func (a *Arena) NumVertices() int { return len(a.coords) / 2 }

// Coords exposes the raw coordinate slab (interleaved x, y pairs, ring
// by ring in storage order). Mutating it corrupts every polygon view.
func (a *Arena) Coords() []float64 { return a.coords }

// Bytes returns the arena's slab footprint in bytes: the quantity that
// memory-bandwidth-bound sweeps actually stream.
func (a *Arena) Bytes() int {
	return 8*len(a.coords) + 4*(len(a.ringOff)+len(a.polyOff)) +
		len(a.polys)*int(unsafe.Sizeof(Polygon{})) + len(a.holes)*int(unsafe.Sizeof(Ring(nil)))
}

// ring returns the vertex view of vertices [lo, hi) of the slab. A
// []Point and a []float64 of twice the length have identical layout
// (asserted above), so the view is a reinterpretation, not a copy.
func (a *Arena) ring(lo, hi int32) Ring {
	if hi == lo {
		return nil
	}
	return unsafe.Slice((*Point)(unsafe.Pointer(&a.coords[2*lo])), hi-lo)
}

// ArenaBuilder accumulates polygons into an Arena. The zero value is
// ready to use. Building is strictly append-only: BeginPolygon starts a
// polygon, BeginRing starts its next ring (first ring is the shell),
// Vertex appends coordinates, and Finish seals the arena — normalizing
// ring orientation (shell CCW, holes CW) and caching bounds exactly as
// NewPolygon would, so an arena-built polygon is indistinguishable from
// a heap-built one.
type ArenaBuilder struct {
	coords  []float64
	ringOff []int32
	polyOff []int32
	done    bool
}

// Grow pre-reserves capacity for the given totals; purely an
// optimization for loaders that know their sizes up front.
func (b *ArenaBuilder) Grow(polys, rings, vertices int) {
	if cap(b.coords)-len(b.coords) < 2*vertices {
		c := make([]float64, len(b.coords), len(b.coords)+2*vertices)
		copy(c, b.coords)
		b.coords = c
	}
	if cap(b.ringOff)-len(b.ringOff) < rings+1 {
		r := make([]int32, len(b.ringOff), len(b.ringOff)+rings+1)
		copy(r, b.ringOff)
		b.ringOff = r
	}
	if cap(b.polyOff)-len(b.polyOff) < polys+1 {
		p := make([]int32, len(b.polyOff), len(b.polyOff)+polys+1)
		copy(p, b.polyOff)
		b.polyOff = p
	}
}

func (b *ArenaBuilder) init() {
	if len(b.ringOff) == 0 {
		b.ringOff = append(b.ringOff, 0)
		b.polyOff = append(b.polyOff, 0)
	}
}

// BeginPolygon starts a new polygon; its rings follow via BeginRing.
func (b *ArenaBuilder) BeginPolygon() {
	b.init()
	b.polyOff = append(b.polyOff, b.polyOff[len(b.polyOff)-1])
}

// BeginRing starts the current polygon's next ring (shell first).
func (b *ArenaBuilder) BeginRing() {
	b.init()
	b.ringOff = append(b.ringOff, b.ringOff[len(b.ringOff)-1])
	b.polyOff[len(b.polyOff)-1]++
}

// Vertex appends one vertex to the current ring.
func (b *ArenaBuilder) Vertex(x, y float64) {
	b.coords = append(b.coords, x, y)
	b.ringOff[len(b.ringOff)-1]++
}

// AddPolygon copies a heap polygon into the arena (re-flattening its
// rings into the slab). Ring order and vertex values are preserved
// bit-for-bit; orientation is normalized at Finish like NewPolygon.
func (b *ArenaBuilder) AddPolygon(p *Polygon) {
	b.BeginPolygon()
	b.BeginRing()
	for _, pt := range p.Shell {
		b.Vertex(pt.X, pt.Y)
	}
	for _, h := range p.Holes {
		b.BeginRing()
		for _, pt := range h {
			b.Vertex(pt.X, pt.Y)
		}
	}
}

// AppendRange bulk-copies polygons [lo, hi) of a finished arena into
// the builder: one coordinate-slab copy plus rebased offset-table
// appends, with no per-vertex or per-ring loop over the geometry
// itself. This is the epoch-compaction fast path — contiguous runs of
// surviving base objects move into the new arena at memcpy speed; only
// the (few) delta objects pay the per-vertex AddPolygon cost. Vertex
// values and ring order are preserved bit-for-bit.
func (b *ArenaBuilder) AppendRange(a *Arena, lo, hi int) {
	b.init()
	if lo < 0 || hi > a.Len() || lo >= hi {
		if lo == hi {
			return
		}
		panic("geom: AppendRange bounds out of range")
	}
	r0, r1 := a.polyOff[lo], a.polyOff[hi]
	v0, v1 := a.ringOff[r0], a.ringOff[r1]
	vBase := b.ringOff[len(b.ringOff)-1] // vertices already in the builder
	rBase := int32(len(b.ringOff) - 1)   // rings already in the builder
	b.coords = append(b.coords, a.coords[2*v0:2*v1]...)
	for r := r0 + 1; r <= r1; r++ {
		b.ringOff = append(b.ringOff, vBase+(a.ringOff[r]-v0))
	}
	for p := lo + 1; p <= hi; p++ {
		b.polyOff = append(b.polyOff, rBase+(a.polyOff[p]-r0))
	}
}

// NumPolygons returns the number of polygons started so far.
func (b *ArenaBuilder) NumPolygons() int {
	if len(b.polyOff) == 0 {
		return 0
	}
	return len(b.polyOff) - 1
}

// Finish seals the builder into an immutable Arena: every ring is
// oriented (shell CCW, holes CW, reversed in place in the slab) and
// every polygon's bounds are cached. The builder must not be reused
// afterwards; Finish panics on a second call or on a polygon with no
// rings (loaders validate ring counts before appending).
func (b *ArenaBuilder) Finish() *Arena {
	if b.done {
		panic("geom: ArenaBuilder.Finish called twice")
	}
	b.done = true
	b.init()
	a := &Arena{coords: b.coords, ringOff: b.ringOff, polyOff: b.polyOff}
	nPolys := len(a.polyOff) - 1
	nHoles := (len(a.ringOff) - 1) - nPolys
	a.polys = make([]Polygon, nPolys)
	a.holes = make([]Ring, 0, nHoles)
	for p := 0; p < nPolys; p++ {
		r0, r1 := a.polyOff[p], a.polyOff[p+1]
		if r0 == r1 {
			panic("geom: arena polygon with no rings")
		}
		shell := a.ring(a.ringOff[r0], a.ringOff[r0+1])
		if !shell.IsCCW() {
			shell.Reverse()
		}
		h0 := len(a.holes)
		for r := r0 + 1; r < r1; r++ {
			h := a.ring(a.ringOff[r], a.ringOff[r+1])
			if h.IsCCW() {
				h.Reverse()
			}
			a.holes = append(a.holes, h)
		}
		var holes []Ring
		if len(a.holes) > h0 {
			holes = a.holes[h0:len(a.holes):len(a.holes)]
		}
		a.polys[p] = Polygon{
			Shell:  shell,
			Holes:  holes,
			bounds: shell.Bounds(),
			hasBox: true,
		}
	}
	return a
}

// BuildArena re-flattens a slice of heap polygons into one arena.
func BuildArena(polys []*Polygon) *Arena {
	var b ArenaBuilder
	rings, verts := 0, 0
	for _, p := range polys {
		rings += 1 + len(p.Holes)
		verts += p.NumVertices()
	}
	b.Grow(len(polys), rings, verts)
	for _, p := range polys {
		b.AddPolygon(p)
	}
	return b.Finish()
}
