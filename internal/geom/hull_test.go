package geom

import (
	"math/rand"
	"testing"
)

func TestConvexHullSquarePlusInterior(t *testing.T) {
	pts := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}, {2, 0}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices: %v", len(hull), hull)
	}
	if !hull.IsCCW() {
		t.Error("hull must be CCW")
	}
	if a := hull.Area(); a != 16 {
		t.Errorf("hull area = %v", a)
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull([]Point{{1, 1}}); len(h) != 1 {
		t.Errorf("single point hull: %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}, {2, 2}}); len(h) != 2 {
		t.Errorf("two point hull: %v", h)
	}
	// All identical points collapse.
	if h := ConvexHull([]Point{{1, 1}, {1, 1}, {1, 1}, {1, 1}}); len(h) != 1 {
		t.Errorf("identical points hull: %v", h)
	}
}

// TestConvexHullProperties: the hull contains every input point, is
// convex, and is invariant under input shuffling.
func TestConvexHullProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(200)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 20, rng.Float64() * 20}
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			t.Fatalf("trial %d: degenerate hull from %d points", trial, n)
		}
		// Convexity: every consecutive triple turns left (or straight).
		m := len(hull)
		for i := 0; i < m; i++ {
			if Cross(hull[i], hull[(i+1)%m], hull[(i+2)%m]) < -Eps {
				t.Fatalf("trial %d: hull not convex at %d", trial, i)
			}
		}
		for _, p := range pts {
			if !ConvexContainsPoint(hull, p) {
				t.Fatalf("trial %d: hull misses input point %v", trial, p)
			}
		}
		// Shuffle invariance (same vertex set).
		rng.Shuffle(n, func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		hull2 := ConvexHull(pts)
		if len(hull2) != m || hull2.Area() != hull.Area() {
			t.Fatalf("trial %d: hull changed under shuffle", trial)
		}
	}
}

func TestConvexContainsPoint(t *testing.T) {
	hull := Ring{{0, 0}, {6, 0}, {6, 6}, {0, 6}}
	for _, p := range []Point{{3, 3}, {0, 0}, {6, 6}, {3, 0}, {0, 3}} {
		if !ConvexContainsPoint(hull, p) {
			t.Errorf("%v should be inside", p)
		}
	}
	for _, p := range []Point{{-1, 3}, {7, 3}, {3, -0.001}, {3, 6.001}} {
		if ConvexContainsPoint(hull, p) {
			t.Errorf("%v should be outside", p)
		}
	}
}

// TestConvexIntersectsAgainstBrute compares the SAT test with a brute
// force on random convex polygons.
func TestConvexIntersectsAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	randHull := func() Ring {
		n := 4 + rng.Intn(20)
		pts := make([]Point, n)
		cx, cy := rng.Float64()*16, rng.Float64()*16
		for i := range pts {
			pts[i] = Point{cx + rng.Float64()*8, cy + rng.Float64()*8}
		}
		return ConvexHull(pts)
	}
	for trial := 0; trial < 300; trial++ {
		a, b := randHull(), randHull()
		if len(a) < 3 || len(b) < 3 {
			continue
		}
		got := ConvexIntersects(a, b)
		want := bruteRingsIntersect(a, b)
		if got != want {
			t.Fatalf("trial %d: SAT=%v brute=%v\na=%v\nb=%v", trial, got, want, a, b)
		}
	}
}

func bruteRingsIntersect(a, b Ring) bool {
	cross := false
	a.Edges(func(p, q Point) {
		b.Edges(func(r, s Point) {
			if SegIntersect(p, q, r, s).Kind != SegNone {
				cross = true
			}
		})
	})
	if cross {
		return true
	}
	if LocateInRing(a[0], b) != Outside {
		return true
	}
	return LocateInRing(b[0], a) != Outside
}

func TestConvexContainsRing(t *testing.T) {
	outer := Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	inner := Ring{{2, 2}, {5, 2}, {4, 5}}
	if !ConvexContainsRing(outer, inner) {
		t.Error("inner should be contained")
	}
	if ConvexContainsRing(inner, outer) {
		t.Error("outer cannot be inside inner")
	}
}

func TestHullOfPolygon(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPolygon(randBlob(rng, 5, 5, 4, 60))
	hull := HullOfPolygon(p)
	for _, v := range p.Shell {
		if !ConvexContainsPoint(hull, v) {
			t.Fatalf("hull misses shell vertex %v", v)
		}
	}
	if hull.Area() < p.Shell.Area() {
		t.Error("hull area must dominate shell area")
	}
}
