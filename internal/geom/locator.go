package geom

import "math"

// Locator answers repeated point-location queries against a fixed
// multipolygon in roughly O(E / slabs) per query by binning boundary edges
// into horizontal slabs. It is used by the DE-9IM engine, which classifies
// many noded-segment midpoints against the same geometry.
type Locator struct {
	edges  []edge
	slabs  [][]int32 // edge indices per slab
	minY   float64
	invH   float64 // 1 / slab height
	nSlabs int
	bounds MBR
}

type edge struct {
	a, b Point
}

// NewLocator builds a Locator over all boundary edges of m.
func NewLocator(m *MultiPolygon) *Locator {
	l := &Locator{bounds: m.Bounds()}
	m.Edges(func(a, b Point) { l.edges = append(l.edges, edge{a, b}) })

	n := len(l.edges)
	l.nSlabs = int(math.Sqrt(float64(n))) + 1
	height := l.bounds.Height()
	if height <= 0 {
		height = 1
	}
	l.minY = l.bounds.MinY
	l.invH = float64(l.nSlabs) / height
	l.slabs = make([][]int32, l.nSlabs)
	for i, e := range l.edges {
		lo := l.slabIndex(math.Min(e.a.Y, e.b.Y))
		hi := l.slabIndex(math.Max(e.a.Y, e.b.Y))
		for s := lo; s <= hi; s++ {
			l.slabs[s] = append(l.slabs[s], int32(i))
		}
	}
	return l
}

// NewPolygonLocator builds a Locator for a single polygon.
func NewPolygonLocator(p *Polygon) *Locator {
	return NewLocator(NewMultiPolygon(p))
}

func (l *Locator) slabIndex(y float64) int {
	s := int((y - l.minY) * l.invH)
	if s < 0 {
		return 0
	}
	if s >= l.nSlabs {
		return l.nSlabs - 1
	}
	return s
}

// Locate classifies p against the locator's region.
func (l *Locator) Locate(p Point) Location {
	if !l.bounds.ContainsPoint(p) {
		return Outside
	}
	odd := false
	for _, i := range l.slabs[l.slabIndex(p.Y)] {
		e := l.edges[i]
		if OnSegment(p, e.a, e.b) {
			return OnBoundary
		}
		if (e.a.Y > p.Y) != (e.b.Y > p.Y) {
			xint := e.a.X + (p.Y-e.a.Y)*(e.b.X-e.a.X)/(e.b.Y-e.a.Y)
			if xint > p.X {
				odd = !odd
			}
		}
	}
	if odd {
		return Inside
	}
	return Outside
}

// NumEdges returns the number of indexed boundary edges.
func (l *Locator) NumEdges() int { return len(l.edges) }
