// Package geom implements the planar geometry kernel used throughout the
// library: points, axis-aligned rectangles, linear rings, polygons with
// holes, and multipolygons, together with the predicates needed by the
// DE-9IM refinement engine and the raster approximation builder.
//
// Conventions:
//   - Rings are stored without a repeated closing vertex and are treated as
//     cyclic: the edge (pts[len-1], pts[0]) is implicit.
//   - Polygon shells are counter-clockwise, holes clockwise; constructors
//     normalize orientation.
//   - All predicates use float64 with a small absolute tolerance Eps, which
//     is adequate for coordinates of magnitude O(1)..O(10^4) as produced by
//     the synthetic data generators.
package geom

import "math"

// Eps is the absolute tolerance used by geometric predicates.
const Eps = 1e-12

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Sub returns the vector p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns the vector sum p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Cross returns the 2D cross product (q-p) × (r-p).
func Cross(p, q, r Point) float64 {
	return (q.X-p.X)*(r.Y-p.Y) - (q.Y-p.Y)*(r.X-p.X)
}

// Orient returns the orientation of the triple (p, q, r):
// +1 for counter-clockwise, -1 for clockwise, 0 for (near-)collinear.
func Orient(p, q, r Point) int {
	c := Cross(p, q, r)
	switch {
	case c > Eps:
		return 1
	case c < -Eps:
		return -1
	default:
		return 0
	}
}

// Midpoint returns the midpoint of segment (p, q).
func Midpoint(p, q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// Lerp returns p + t*(q-p).
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}
