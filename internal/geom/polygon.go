package geom

// Ring is a closed sequence of vertices. The closing edge from the last
// vertex back to the first is implicit; the first vertex is not repeated.
type Ring []Point

// Area returns the signed area of the ring: positive for counter-clockwise,
// negative for clockwise orientation.
func (r Ring) Area() float64 {
	n := len(r)
	if n < 3 {
		return 0
	}
	var a float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += r[i].X*r[j].Y - r[j].X*r[i].Y
	}
	return a / 2
}

// IsCCW reports whether the ring winds counter-clockwise.
func (r Ring) IsCCW() bool { return r.Area() > 0 }

// Reverse reverses the vertex order in place.
func (r Ring) Reverse() {
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
}

// Clone returns a deep copy of the ring.
func (r Ring) Clone() Ring {
	c := make(Ring, len(r))
	copy(c, r)
	return c
}

// Bounds returns the MBR of the ring.
func (r Ring) Bounds() MBR { return BoundsOf(r) }

// Edges calls fn for every edge (a, b) of the ring, including the implicit
// closing edge.
func (r Ring) Edges(fn func(a, b Point)) {
	n := len(r)
	for i := 0; i < n; i++ {
		fn(r[i], r[(i+1)%n])
	}
}

// Polygon is a simple polygon with optional holes. The shell is
// counter-clockwise and holes are clockwise after NewPolygon.
type Polygon struct {
	Shell Ring
	Holes []Ring

	bounds MBR
	hasBox bool
}

// NewPolygon builds a polygon from a shell and optional holes, normalizing
// ring orientations (shell CCW, holes CW) and caching the bounding box.
func NewPolygon(shell Ring, holes ...Ring) *Polygon {
	if !shell.IsCCW() {
		shell.Reverse()
	}
	for _, h := range holes {
		if h.IsCCW() {
			h.Reverse()
		}
	}
	p := &Polygon{Shell: shell, Holes: holes}
	p.bounds = shell.Bounds()
	p.hasBox = true
	return p
}

// Bounds returns the polygon's MBR, computing and caching it if needed.
func (p *Polygon) Bounds() MBR {
	if !p.hasBox {
		p.bounds = p.Shell.Bounds()
		p.hasBox = true
	}
	return p.bounds
}

// Area returns the area of the polygon (shell area minus hole areas).
func (p *Polygon) Area() float64 {
	a := p.Shell.Area()
	for _, h := range p.Holes {
		a += h.Area() // holes are CW, so their signed area is negative
	}
	return a
}

// NumVertices returns the total vertex count over all rings.
func (p *Polygon) NumVertices() int {
	n := len(p.Shell)
	for _, h := range p.Holes {
		n += len(h)
	}
	return n
}

// Rings calls fn for every ring of the polygon (shell first, then holes).
func (p *Polygon) Rings(fn func(r Ring)) {
	fn(p.Shell)
	for _, h := range p.Holes {
		fn(h)
	}
}

// Edges calls fn for every boundary edge of the polygon.
func (p *Polygon) Edges(fn func(a, b Point)) {
	p.Rings(func(r Ring) { r.Edges(fn) })
}

// Clone returns a deep copy of the polygon.
func (p *Polygon) Clone() *Polygon {
	holes := make([]Ring, len(p.Holes))
	for i, h := range p.Holes {
		holes[i] = h.Clone()
	}
	c := &Polygon{Shell: p.Shell.Clone(), Holes: holes}
	c.bounds, c.hasBox = p.bounds, p.hasBox
	return c
}

// Translate returns a copy of the polygon shifted by (dx, dy).
func (p *Polygon) Translate(dx, dy float64) *Polygon {
	c := p.Clone()
	c.hasBox = false
	for i := range c.Shell {
		c.Shell[i].X += dx
		c.Shell[i].Y += dy
	}
	for _, h := range c.Holes {
		for i := range h {
			h[i].X += dx
			h[i].Y += dy
		}
	}
	return c
}

// ScaleAbout returns a copy of the polygon scaled by f about point o.
func (p *Polygon) ScaleAbout(o Point, f float64) *Polygon {
	c := p.Clone()
	c.hasBox = false
	scale := func(pt *Point) {
		pt.X = o.X + (pt.X-o.X)*f
		pt.Y = o.Y + (pt.Y-o.Y)*f
	}
	for i := range c.Shell {
		scale(&c.Shell[i])
	}
	for _, h := range c.Holes {
		for i := range h {
			scale(&h[i])
		}
	}
	return c
}

// MultiPolygon is a collection of disjoint polygons.
type MultiPolygon struct {
	Polys []*Polygon
}

// NewMultiPolygon wraps polygons into a multipolygon.
func NewMultiPolygon(polys ...*Polygon) *MultiPolygon {
	return &MultiPolygon{Polys: polys}
}

// Bounds returns the MBR of all member polygons.
func (m *MultiPolygon) Bounds() MBR {
	b := EmptyMBR()
	for _, p := range m.Polys {
		b = b.Expand(p.Bounds())
	}
	return b
}

// Area returns the total area over all member polygons.
func (m *MultiPolygon) Area() float64 {
	var a float64
	for _, p := range m.Polys {
		a += p.Area()
	}
	return a
}

// NumVertices returns the total vertex count over all member polygons.
func (m *MultiPolygon) NumVertices() int {
	var n int
	for _, p := range m.Polys {
		n += p.NumVertices()
	}
	return n
}

// Edges calls fn for every boundary edge of every member polygon.
func (m *MultiPolygon) Edges(fn func(a, b Point)) {
	for _, p := range m.Polys {
		p.Edges(fn)
	}
}
