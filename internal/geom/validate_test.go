package geom

import (
	"errors"
	"math/rand"
	"testing"
)

func TestValidateRingOK(t *testing.T) {
	if err := ValidateRing(square(0, 0, 1)); err != nil {
		t.Errorf("square should be valid: %v", err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 25; i++ {
		if err := ValidateRing(randBlob(rng, 0, 0, 5, 8+rng.Intn(30))); err != nil {
			t.Errorf("random blob %d should be valid: %v", i, err)
		}
	}
}

func TestValidateRingErrors(t *testing.T) {
	if err := ValidateRing(Ring{{0, 0}, {1, 1}}); !errors.Is(err, ErrTooFewVertices) {
		t.Errorf("want ErrTooFewVertices, got %v", err)
	}
	if err := ValidateRing(Ring{{0, 0}, {0, 0}, {1, 1}}); !errors.Is(err, ErrRepeatedVertex) {
		t.Errorf("want ErrRepeatedVertex, got %v", err)
	}
	if err := ValidateRing(Ring{{0, 0}, {1, 0}, {2, 0}}); !errors.Is(err, ErrZeroArea) {
		t.Errorf("want ErrZeroArea, got %v", err)
	}
	// Bowtie self-intersection.
	bow := Ring{{0, 0}, {4, 4}, {6, 0}, {0, 3}}
	if err := ValidateRing(bow); !errors.Is(err, ErrSelfIntersect) {
		t.Errorf("want ErrSelfIntersect, got %v", err)
	}
}

func TestValidatePolygon(t *testing.T) {
	good := NewPolygon(square(0, 0, 10), square(1, 1, 2))
	if err := ValidatePolygon(good); err != nil {
		t.Errorf("valid polygon rejected: %v", err)
	}
	badHole := NewPolygon(square(0, 0, 4), square(10, 10, 2))
	if err := ValidatePolygon(badHole); !errors.Is(err, ErrHoleOutsideHull) {
		t.Errorf("want ErrHoleOutsideHull, got %v", err)
	}
}
