package geom

import (
	"errors"
	"math/rand"
	"testing"
)

func TestValidateRingOK(t *testing.T) {
	if err := ValidateRing(square(0, 0, 1)); err != nil {
		t.Errorf("square should be valid: %v", err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 25; i++ {
		if err := ValidateRing(randBlob(rng, 0, 0, 5, 8+rng.Intn(30))); err != nil {
			t.Errorf("random blob %d should be valid: %v", i, err)
		}
	}
}

func TestValidateRingErrors(t *testing.T) {
	if err := ValidateRing(Ring{{0, 0}, {1, 1}}); !errors.Is(err, ErrTooFewVertices) {
		t.Errorf("want ErrTooFewVertices, got %v", err)
	}
	if err := ValidateRing(Ring{{0, 0}, {0, 0}, {1, 1}}); !errors.Is(err, ErrRepeatedVertex) {
		t.Errorf("want ErrRepeatedVertex, got %v", err)
	}
	if err := ValidateRing(Ring{{0, 0}, {1, 0}, {2, 0}}); !errors.Is(err, ErrZeroArea) {
		t.Errorf("want ErrZeroArea, got %v", err)
	}
	// Bowtie self-intersection.
	bow := Ring{{0, 0}, {4, 4}, {6, 0}, {0, 3}}
	if err := ValidateRing(bow); !errors.Is(err, ErrSelfIntersect) {
		t.Errorf("want ErrSelfIntersect, got %v", err)
	}
}

func TestValidatePolygon(t *testing.T) {
	good := NewPolygon(square(0, 0, 10), square(1, 1, 2))
	if err := ValidatePolygon(good); err != nil {
		t.Errorf("valid polygon rejected: %v", err)
	}
	badHole := NewPolygon(square(0, 0, 4), square(10, 10, 2))
	if err := ValidatePolygon(badHole); !errors.Is(err, ErrHoleOutsideHull) {
		t.Errorf("want ErrHoleOutsideHull, got %v", err)
	}
}

// Rings of the same polygon may touch only at isolated points. Found by
// the differential oracle: a hole whose base lies on the shell edge used
// to pass validation, and refinement then misclassified the dangling
// segment (oracle regression sentinel-hole-edge-touch).
func TestValidatePolygonRingContacts(t *testing.T) {
	shell := square(0, 0, 8)
	// Hole touching the shell at a single vertex: OGC-valid, accepted.
	pointTouch := NewPolygon(shell.Clone(), Ring{{2, 2}, {8, 4}, {2, 6}})
	if err := ValidatePolygon(pointTouch); err != nil {
		t.Errorf("point-touching hole should be valid: %v", err)
	}
	// Hole sharing a positive-length segment with the shell: rejected.
	edgeShare := NewPolygon(shell.Clone(), Ring{{2, 0}, {6, 0}, {4, 4}})
	if err := ValidatePolygon(edgeShare); !errors.Is(err, ErrRingsCross) {
		t.Errorf("edge-sharing hole: want ErrRingsCross, got %v", err)
	}
	// Hole edge properly crossing the shell of a non-convex polygon even
	// though both its endpoints are inside: rejected.
	lShape := Ring{{0, 0}, {8, 0}, {8, 8}, {6, 8}, {6, 2}, {0, 2}}
	crossing := NewPolygon(lShape, Ring{{1, 1}, {7, 1}, {7, 7}})
	if err := ValidatePolygon(crossing); !errors.Is(err, ErrRingsCross) {
		t.Errorf("shell-crossing hole: want ErrRingsCross, got %v", err)
	}
	// Two holes overlapping along a segment: rejected.
	holeOverlap := NewPolygon(shell.Clone(),
		Ring{{1, 1}, {4, 1}, {4, 3}, {1, 3}},
		Ring{{4, 1}, {7, 1}, {7, 3}, {4, 3}})
	if err := ValidatePolygon(holeOverlap); !errors.Is(err, ErrRingsCross) {
		t.Errorf("segment-sharing holes: want ErrRingsCross, got %v", err)
	}
	// Two holes touching at one corner: accepted.
	holeCorner := NewPolygon(shell.Clone(),
		Ring{{1, 1}, {4, 1}, {4, 3}, {1, 3}},
		Ring{{4, 3}, {7, 3}, {7, 5}, {4, 5}})
	if err := ValidatePolygon(holeCorner); err != nil {
		t.Errorf("corner-touching holes should be valid: %v", err)
	}
}
