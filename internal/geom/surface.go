package geom

import (
	"math"
	"sort"
)

// PointOnSurface returns a point strictly in the interior of the polygon.
// It scans a horizontal line through the polygon, collecting boundary
// crossings, and returns the midpoint of the widest interior interval.
// The scan y is nudged when it hits vertices, which would make crossing
// parity ambiguous.
func PointOnSurface(p *Polygon) Point {
	b := p.Bounds()
	// Candidate scan heights: middle first, then golden-ratio offsets.
	h := b.Height()
	if h <= 0 {
		return b.Center()
	}
	const tries = 32
	for t := 0; t < tries; t++ {
		frac := 0.5
		if t > 0 {
			frac = math.Mod(0.5+float64(t)*0.6180339887498949, 1)
			if frac < 0.05 || frac > 0.95 {
				continue
			}
		}
		y := b.MinY + frac*h
		if pt, ok := scanInteriorPoint(p, y); ok {
			return pt
		}
	}
	// Fallback: centroid of the first shell triangle that lies inside.
	n := len(p.Shell)
	for i := 1; i+1 < n; i++ {
		c := Point{
			X: (p.Shell[0].X + p.Shell[i].X + p.Shell[i+1].X) / 3,
			Y: (p.Shell[0].Y + p.Shell[i].Y + p.Shell[i+1].Y) / 3,
		}
		if LocateInPolygon(c, p) == Inside {
			return c
		}
	}
	return b.Center()
}

// scanInteriorPoint intersects the horizontal line at height y with the
// polygon boundary and returns the midpoint of the widest interior run.
func scanInteriorPoint(p *Polygon, y float64) (Point, bool) {
	var xs []float64
	ok := true
	p.Rings(func(r Ring) {
		n := len(r)
		for i := 0; i < n && ok; i++ {
			a, b := r[i], r[(i+1)%n]
			// Reject scan lines passing (nearly) through vertices or along
			// horizontal edges: parity would be unreliable.
			if math.Abs(a.Y-y) <= Eps || math.Abs(b.Y-y) <= Eps {
				ok = false
				return
			}
			if (a.Y > y) != (b.Y > y) {
				xs = append(xs, a.X+(y-a.Y)*(b.X-a.X)/(b.Y-a.Y))
			}
		}
	})
	if !ok || len(xs) < 2 {
		return Point{}, false
	}
	sort.Float64s(xs)
	bestW := 0.0
	var best Point
	for i := 0; i+1 < len(xs); i += 2 {
		if w := xs[i+1] - xs[i]; w > bestW {
			bestW = w
			best = Point{(xs[i] + xs[i+1]) / 2, y}
		}
	}
	if bestW <= Eps {
		return Point{}, false
	}
	if LocateInPolygon(best, p) != Inside {
		return Point{}, false
	}
	return best, true
}

// InteriorPoints returns one interior point per polygon component of m.
func InteriorPoints(m *MultiPolygon) []Point {
	pts := make([]Point, 0, len(m.Polys))
	for _, p := range m.Polys {
		pts = append(pts, PointOnSurface(p))
	}
	return pts
}
