package geom

import "math"

// MBR is an axis-aligned minimum bounding rectangle.
type MBR struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyMBR returns an MBR that behaves as the identity under Expand.
func EmptyMBR() MBR {
	return MBR{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether the MBR contains no points.
func (m MBR) IsEmpty() bool { return m.MinX > m.MaxX || m.MinY > m.MaxY }

// Width returns the horizontal extent.
func (m MBR) Width() float64 { return m.MaxX - m.MinX }

// Height returns the vertical extent.
func (m MBR) Height() float64 { return m.MaxY - m.MinY }

// Area returns the rectangle area (0 for degenerate rectangles).
func (m MBR) Area() float64 {
	if m.IsEmpty() {
		return 0
	}
	return m.Width() * m.Height()
}

// Center returns the rectangle center.
func (m MBR) Center() Point { return Point{(m.MinX + m.MaxX) / 2, (m.MinY + m.MaxY) / 2} }

// ExpandPoint grows m to include p.
func (m MBR) ExpandPoint(p Point) MBR {
	return MBR{
		MinX: math.Min(m.MinX, p.X), MinY: math.Min(m.MinY, p.Y),
		MaxX: math.Max(m.MaxX, p.X), MaxY: math.Max(m.MaxY, p.Y),
	}
}

// Expand grows m to include o.
func (m MBR) Expand(o MBR) MBR {
	if o.IsEmpty() {
		return m
	}
	if m.IsEmpty() {
		return o
	}
	return MBR{
		MinX: math.Min(m.MinX, o.MinX), MinY: math.Min(m.MinY, o.MinY),
		MaxX: math.Max(m.MaxX, o.MaxX), MaxY: math.Max(m.MaxY, o.MaxY),
	}
}

// Intersects reports whether m and o share at least one point
// (touching edges count as intersecting).
func (m MBR) Intersects(o MBR) bool {
	return m.MinX <= o.MaxX && o.MinX <= m.MaxX &&
		m.MinY <= o.MaxY && o.MinY <= m.MaxY
}

// Intersection returns the overlap rectangle of m and o; it is empty when
// the rectangles are disjoint.
func (m MBR) Intersection(o MBR) MBR {
	r := MBR{
		MinX: math.Max(m.MinX, o.MinX), MinY: math.Max(m.MinY, o.MinY),
		MaxX: math.Min(m.MaxX, o.MaxX), MaxY: math.Min(m.MaxY, o.MaxY),
	}
	return r
}

// ContainsMBR reports whether o lies entirely within m (boundaries may touch).
func (m MBR) ContainsMBR(o MBR) bool {
	return m.MinX <= o.MinX && o.MaxX <= m.MaxX &&
		m.MinY <= o.MinY && o.MaxY <= m.MaxY
}

// StrictlyContainsMBR reports whether o lies in the interior of m
// (no shared boundary coordinates).
func (m MBR) StrictlyContainsMBR(o MBR) bool {
	return m.MinX < o.MinX && o.MaxX < m.MaxX &&
		m.MinY < o.MinY && o.MaxY < m.MaxY
}

// Equal reports whether m and o are the same rectangle (exact comparison;
// approximations are built from identical source coordinates).
func (m MBR) Equal(o MBR) bool {
	return m.MinX == o.MinX && m.MinY == o.MinY &&
		m.MaxX == o.MaxX && m.MaxY == o.MaxY
}

// ContainsPoint reports whether p lies inside or on the boundary of m.
func (m MBR) ContainsPoint(p Point) bool {
	return m.MinX <= p.X && p.X <= m.MaxX && m.MinY <= p.Y && p.Y <= m.MaxY
}

// BoundsOf returns the MBR of a point slice.
func BoundsOf(pts []Point) MBR {
	m := EmptyMBR()
	for _, p := range pts {
		m = m.ExpandPoint(p)
	}
	return m
}
