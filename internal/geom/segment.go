package geom

import "math"

// SegKind classifies how two segments intersect.
type SegKind int

// Segment intersection kinds.
const (
	SegNone    SegKind = iota // no common point
	SegPoint                  // exactly one common point (proper cross or touch)
	SegOverlap                // collinear segments sharing a positive-length piece
)

// SegResult describes the intersection of two segments. For SegPoint, P is
// the common point and Proper reports whether the intersection is interior
// to both segments. For SegOverlap, P and Q are the endpoints of the shared
// sub-segment.
type SegResult struct {
	Kind   SegKind
	P, Q   Point
	Proper bool
}

// OnSegment reports whether point p lies on segment (a, b), endpoints
// included, within Eps.
func OnSegment(p, a, b Point) bool {
	if Orient(a, b, p) != 0 {
		return false
	}
	return math.Min(a.X, b.X)-Eps <= p.X && p.X <= math.Max(a.X, b.X)+Eps &&
		math.Min(a.Y, b.Y)-Eps <= p.Y && p.Y <= math.Max(a.Y, b.Y)+Eps
}

// SegIntersect computes the intersection of segments (a, b) and (c, d).
func SegIntersect(a, b, c, d Point) SegResult {
	o1 := Orient(a, b, c)
	o2 := Orient(a, b, d)
	o3 := Orient(c, d, a)
	o4 := Orient(c, d, b)

	if o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 {
		// Proper crossing: solve for the intersection point.
		den := (b.X-a.X)*(d.Y-c.Y) - (b.Y-a.Y)*(d.X-c.X)
		t := ((c.X-a.X)*(d.Y-c.Y) - (c.Y-a.Y)*(d.X-c.X)) / den
		return SegResult{Kind: SegPoint, P: Lerp(a, b, t), Proper: true}
	}

	if o1 == 0 && o2 == 0 && o3 == 0 && o4 == 0 {
		return collinearOverlap(a, b, c, d)
	}

	// Touch cases: an endpoint of one segment lies on the other.
	switch {
	case o1 == 0 && OnSegment(c, a, b):
		return SegResult{Kind: SegPoint, P: c}
	case o2 == 0 && OnSegment(d, a, b):
		return SegResult{Kind: SegPoint, P: d}
	case o3 == 0 && OnSegment(a, c, d):
		return SegResult{Kind: SegPoint, P: a}
	case o4 == 0 && OnSegment(b, c, d):
		return SegResult{Kind: SegPoint, P: b}
	}
	return SegResult{Kind: SegNone}
}

// collinearOverlap handles the all-collinear case by projecting onto the
// dominant axis of (a, b).
func collinearOverlap(a, b, c, d Point) SegResult {
	key := func(p Point) float64 { return p.X }
	if math.Abs(b.X-a.X) < math.Abs(b.Y-a.Y) {
		key = func(p Point) float64 { return p.Y }
	}
	lo1, hi1 := a, b
	if key(lo1) > key(hi1) {
		lo1, hi1 = hi1, lo1
	}
	lo2, hi2 := c, d
	if key(lo2) > key(hi2) {
		lo2, hi2 = hi2, lo2
	}
	lo, hi := lo1, hi1
	if key(lo2) > key(lo) {
		lo = lo2
	}
	if key(hi2) < key(hi) {
		hi = hi2
	}
	switch {
	case key(lo) > key(hi)+Eps:
		return SegResult{Kind: SegNone}
	case math.Abs(key(hi)-key(lo)) <= Eps:
		return SegResult{Kind: SegPoint, P: lo}
	default:
		return SegResult{Kind: SegOverlap, P: lo, Q: hi}
	}
}
