package geom

import (
	"math/rand"
	"testing"
)

func TestSimplifyReducesVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		r := randBlob(rng, 0, 0, 10, 100+rng.Intn(400))
		s := Simplify(r, 0.3)
		if len(s) >= len(r) {
			t.Fatalf("trial %d: no reduction (%d -> %d)", trial, len(r), len(s))
		}
		if len(s) < 3 {
			t.Fatalf("trial %d: collapsed to %d vertices", trial, len(s))
		}
		// Every kept vertex is an original vertex.
		orig := make(map[Point]bool, len(r))
		for _, p := range r {
			orig[p] = true
		}
		for _, p := range s {
			if !orig[p] {
				t.Fatalf("trial %d: invented vertex %v", trial, p)
			}
		}
	}
}

func TestSimplifyZeroToleranceKeepsShape(t *testing.T) {
	r := Ring{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	s := Simplify(r, 0)
	if len(s) != 4 {
		t.Errorf("square at zero tolerance: %d vertices", len(s))
	}
}

func TestSimplifyDropsCollinear(t *testing.T) {
	// A square with extra collinear vertices along its edges.
	r := Ring{{0, 0}, {1, 0}, {2, 0}, {4, 0}, {4, 2}, {4, 4}, {2, 4}, {0, 4}, {0, 2}}
	s := Simplify(r, 1e-9)
	if len(s) != 4 {
		t.Errorf("collinear vertices not dropped: %d left (%v)", len(s), s)
	}
}

func TestSimplifyTiny(t *testing.T) {
	tri := Ring{{0, 0}, {2, 0}, {1, 2}}
	s := Simplify(tri, 10)
	if len(s) != 3 {
		t.Errorf("triangle must be returned as-is: %v", s)
	}
}

func TestSimplifyHausdorffBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const tol = 0.5
	for trial := 0; trial < 25; trial++ {
		r := randBlob(rng, 0, 0, 8, 200)
		s := Simplify(r, tol)
		// Every dropped vertex must be within tolerance of the simplified
		// boundary (the Douglas-Peucker guarantee).
		for _, p := range r {
			best := 1e18
			s.Edges(func(a, b Point) {
				if d := distToSegment(p, a, b); d < best {
					best = d
				}
			})
			if best > tol+1e-9 {
				t.Fatalf("trial %d: vertex %v is %.3f from simplified boundary", trial, p, best)
			}
		}
	}
}

func TestSimplifyPolygonWithHoles(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shell := randBlob(rng, 0, 0, 20, 300)
	hole := randBlob(rng, 0, 0, 2, 40)
	p := NewPolygon(shell, hole)
	s := SimplifyPolygon(p, 0.4)
	if s.NumVertices() >= p.NumVertices() {
		t.Errorf("no reduction: %d -> %d", p.NumVertices(), s.NumVertices())
	}
	if err := ValidatePolygon(s); err != nil {
		t.Errorf("simplified polygon invalid: %v", err)
	}
	// A hole far below the tolerance disappears.
	tiny := NewPolygon(shell.Clone(), randBlob(rng, 1, 1, 0.05, 12))
	st := SimplifyPolygon(tiny, 1.0)
	if len(st.Holes) != 0 {
		t.Errorf("sub-tolerance hole should be dropped, got %d holes", len(st.Holes))
	}
}
