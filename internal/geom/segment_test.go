package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegIntersectProperCross(t *testing.T) {
	res := SegIntersect(Point{0, 0}, Point{2, 2}, Point{0, 2}, Point{2, 0})
	if res.Kind != SegPoint || !res.Proper {
		t.Fatalf("got %+v, want proper point", res)
	}
	if !res.P.Eq(Point{1, 1}) {
		t.Errorf("P = %v, want (1,1)", res.P)
	}
}

func TestSegIntersectEndpointTouch(t *testing.T) {
	// d touches (a,b) at its interior.
	res := SegIntersect(Point{0, 0}, Point{4, 0}, Point{2, 3}, Point{2, 0})
	if res.Kind != SegPoint || res.Proper {
		t.Fatalf("got %+v, want non-proper touch", res)
	}
	if !res.P.Eq(Point{2, 0}) {
		t.Errorf("P = %v", res.P)
	}
	// Shared endpoint.
	res = SegIntersect(Point{0, 0}, Point{1, 1}, Point{1, 1}, Point{2, 0})
	if res.Kind != SegPoint || !res.P.Eq(Point{1, 1}) {
		t.Fatalf("shared endpoint: got %+v", res)
	}
}

func TestSegIntersectNone(t *testing.T) {
	res := SegIntersect(Point{0, 0}, Point{1, 0}, Point{0, 1}, Point{1, 1})
	if res.Kind != SegNone {
		t.Fatalf("got %+v, want none", res)
	}
	// Collinear but disjoint.
	res = SegIntersect(Point{0, 0}, Point{1, 0}, Point{2, 0}, Point{3, 0})
	if res.Kind != SegNone {
		t.Fatalf("collinear disjoint: got %+v", res)
	}
}

func TestSegIntersectCollinearOverlap(t *testing.T) {
	res := SegIntersect(Point{0, 0}, Point{4, 0}, Point{2, 0}, Point{6, 0})
	if res.Kind != SegOverlap {
		t.Fatalf("got %+v, want overlap", res)
	}
	if !res.P.Eq(Point{2, 0}) || !res.Q.Eq(Point{4, 0}) {
		t.Errorf("overlap = [%v, %v]", res.P, res.Q)
	}
	// Collinear touching at a single point.
	res = SegIntersect(Point{0, 0}, Point{2, 0}, Point{2, 0}, Point{5, 0})
	if res.Kind != SegPoint || !res.P.Eq(Point{2, 0}) {
		t.Fatalf("collinear touch: got %+v", res)
	}
	// Vertical collinear overlap exercises the dominant-axis switch.
	res = SegIntersect(Point{1, 0}, Point{1, 4}, Point{1, 3}, Point{1, 9})
	if res.Kind != SegOverlap || !res.P.Eq(Point{1, 3}) || !res.Q.Eq(Point{1, 4}) {
		t.Fatalf("vertical overlap: got %+v", res)
	}
	// One segment inside the other.
	res = SegIntersect(Point{0, 0}, Point{10, 0}, Point{3, 0}, Point{4, 0})
	if res.Kind != SegOverlap || !res.P.Eq(Point{3, 0}) || !res.Q.Eq(Point{4, 0}) {
		t.Fatalf("nested overlap: got %+v", res)
	}
}

func TestOnSegment(t *testing.T) {
	a, b := Point{0, 0}, Point{4, 4}
	if !OnSegment(Point{2, 2}, a, b) {
		t.Error("midpoint should be on segment")
	}
	if !OnSegment(a, a, b) || !OnSegment(b, a, b) {
		t.Error("endpoints should be on segment")
	}
	if OnSegment(Point{5, 5}, a, b) {
		t.Error("beyond endpoint should be off segment")
	}
	if OnSegment(Point{2, 2.1}, a, b) {
		t.Error("off-line point should be off segment")
	}
}

// TestSegIntersectSymmetry checks SegIntersect(a,b,c,d) and
// SegIntersect(c,d,a,b) agree in kind on random segments.
func TestSegIntersectSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		p := func() Point { return Point{rng.Float64() * 10, rng.Float64() * 10} }
		a, b, c, d := p(), p(), p(), p()
		r1 := SegIntersect(a, b, c, d)
		r2 := SegIntersect(c, d, a, b)
		return r1.Kind == r2.Kind
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSegIntersectPointOnBoth checks that a reported intersection point lies
// on both segments.
func TestSegIntersectPointOnBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		p := func() Point { return Point{rng.Float64() * 10, rng.Float64() * 10} }
		a, b, c, d := p(), p(), p(), p()
		r := SegIntersect(a, b, c, d)
		if r.Kind != SegPoint {
			return true
		}
		// Allow slack: the intersection point is computed, not exact.
		near := func(p, a, b Point) bool {
			e0 := Eps
			defer func() { _ = e0 }()
			return distToSeg(p, a, b) < 1e-7
		}
		return near(r.P, a, b) && near(r.P, c, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func distToSeg(p, a, b Point) float64 {
	ab := b.Sub(a)
	ap := p.Sub(a)
	l2 := ab.X*ab.X + ab.Y*ab.Y
	if l2 == 0 {
		return p.Dist(a)
	}
	tt := (ap.X*ab.X + ap.Y*ab.Y) / l2
	if tt < 0 {
		tt = 0
	} else if tt > 1 {
		tt = 1
	}
	return p.Dist(Lerp(a, b, tt))
}
