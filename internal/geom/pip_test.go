package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLocateInRing(t *testing.T) {
	sq := square(0, 0, 4)
	cases := []struct {
		p    Point
		want Location
	}{
		{Point{2, 2}, Inside},
		{Point{0, 2}, OnBoundary},
		{Point{4, 4}, OnBoundary}, // corner
		{Point{2, 0}, OnBoundary},
		{Point{5, 2}, Outside},
		{Point{-1, -1}, Outside},
		{Point{2, 4.0001}, Outside},
	}
	for _, c := range cases {
		if got := LocateInRing(c.p, sq); got != c.want {
			t.Errorf("LocateInRing(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestLocateInPolygonWithHole(t *testing.T) {
	p := NewPolygon(square(0, 0, 10), square(3, 3, 4))
	cases := []struct {
		p    Point
		want Location
	}{
		{Point{1, 1}, Inside},
		{Point{5, 5}, Outside},    // in the hole
		{Point{3, 5}, OnBoundary}, // on hole edge
		{Point{0, 5}, OnBoundary}, // on shell edge
		{Point{11, 5}, Outside},
		{Point{5, 1}, Inside}, // below the hole
	}
	for _, c := range cases {
		if got := LocateInPolygon(c.p, p); got != c.want {
			t.Errorf("LocateInPolygon(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestLocateInMulti(t *testing.T) {
	m := NewMultiPolygon(
		NewPolygon(square(0, 0, 2)),
		NewPolygon(square(10, 10, 2)),
	)
	if LocateInMulti(Point{1, 1}, m) != Inside {
		t.Error("point in first component")
	}
	if LocateInMulti(Point{11, 11}, m) != Inside {
		t.Error("point in second component")
	}
	if LocateInMulti(Point{5, 5}, m) != Outside {
		t.Error("point between components")
	}
	if LocateInMulti(Point{10, 11}, m) != OnBoundary {
		t.Error("point on second component boundary")
	}
}

// TestLocatorMatchesDirect cross-checks the slab-indexed Locator against
// the direct point-in-polygon walk on random blobs and query points.
func TestLocatorMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		poly := NewPolygon(randBlob(rng, 5, 5, 4, 20+rng.Intn(60)))
		m := NewMultiPolygon(poly)
		loc := NewLocator(m)
		f := func() bool {
			p := Point{rng.Float64() * 12, rng.Float64() * 12}
			return loc.Locate(p) == LocateInMulti(p, m)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLocatorWithHoles(t *testing.T) {
	poly := NewPolygon(square(0, 0, 10), square(2, 2, 3), square(6, 6, 2))
	loc := NewLocator(NewMultiPolygon(poly))
	cases := []struct {
		p    Point
		want Location
	}{
		{Point{1, 1}, Inside},
		{Point{3, 3}, Outside},
		{Point{7, 7}, Outside},
		{Point{2, 3}, OnBoundary},
		{Point{5.5, 5.5}, Inside},
		{Point{-1, 5}, Outside},
	}
	for _, c := range cases {
		if got := loc.Locate(c.p); got != c.want {
			t.Errorf("Locate(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if loc.NumEdges() != 12 {
		t.Errorf("NumEdges = %d, want 12", loc.NumEdges())
	}
}

// TestLocatorVertexQueries checks queries exactly at polygon vertices.
func TestLocatorVertexQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	poly := NewPolygon(randBlob(rng, 0, 0, 5, 40))
	loc := NewLocator(NewMultiPolygon(poly))
	for _, v := range poly.Shell {
		if got := loc.Locate(v); got != OnBoundary {
			t.Fatalf("vertex %v: got %v, want boundary", v, got)
		}
	}
}

func TestPointOnSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		poly := NewPolygon(randBlob(rng, 0, 0, 3, 10+rng.Intn(40)))
		pt := PointOnSurface(poly)
		if LocateInPolygon(pt, poly) != Inside {
			t.Fatalf("trial %d: PointOnSurface %v not inside", trial, pt)
		}
	}
}

func TestPointOnSurfaceWithHole(t *testing.T) {
	// A polygon whose centroid falls inside its hole.
	p := NewPolygon(square(0, 0, 10), square(2, 2, 6))
	pt := PointOnSurface(p)
	if LocateInPolygon(pt, p) != Inside {
		t.Fatalf("PointOnSurface %v not in interior", pt)
	}
}

func TestInteriorPoints(t *testing.T) {
	m := NewMultiPolygon(
		NewPolygon(square(0, 0, 2)),
		NewPolygon(square(10, 0, 2)),
	)
	pts := InteriorPoints(m)
	if len(pts) != 2 {
		t.Fatalf("got %d interior points", len(pts))
	}
	if LocateInPolygon(pts[0], m.Polys[0]) != Inside ||
		LocateInPolygon(pts[1], m.Polys[1]) != Inside {
		t.Error("interior points not inside their components")
	}
}
