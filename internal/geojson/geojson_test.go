package geojson

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestParsePolygonGeometry(t *testing.T) {
	data := []byte(`{"type":"Polygon","coordinates":[[[0,0],[10,0],[10,10],[0,10],[0,0]],[[2,2],[4,2],[4,4],[2,4],[2,2]]]}`)
	m, err := ParseGeometry(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Polys) != 1 || len(m.Polys[0].Holes) != 1 {
		t.Fatalf("structure: %d polys", len(m.Polys))
	}
	if a := m.Area(); math.Abs(a-96) > 1e-9 {
		t.Errorf("area = %v, want 96", a)
	}
	if !m.Polys[0].Shell.IsCCW() || m.Polys[0].Holes[0].IsCCW() {
		t.Error("orientation not normalized")
	}
}

func TestParseMultiPolygonGeometry(t *testing.T) {
	data := []byte(`{"type":"MultiPolygon","coordinates":[[[[0,0],[1,0],[1,1],[0,0]]],[[[5,5],[7,5],[7,7],[5,7],[5,5]]]]}`)
	m, err := ParseGeometry(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Polys) != 2 {
		t.Fatalf("got %d polys", len(m.Polys))
	}
	if a := m.Area(); math.Abs(a-(0.5+4)) > 1e-9 {
		t.Errorf("area = %v", a)
	}
}

func TestGeometryRoundTrip(t *testing.T) {
	p1 := geom.NewPolygon(
		geom.Ring{{X: 0, Y: 0}, {X: 8, Y: 0}, {X: 8, Y: 6}, {X: 0, Y: 6}},
		geom.Ring{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}},
	)
	p2 := geom.NewPolygon(geom.Ring{{X: 20, Y: 20}, {X: 22, Y: 20}, {X: 21, Y: 23}})
	for _, m := range []*geom.MultiPolygon{
		geom.NewMultiPolygon(p1),
		geom.NewMultiPolygon(p1, p2),
	} {
		data, err := MarshalGeometry(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseGeometry(data)
		if err != nil {
			t.Fatalf("%s: %v", data, err)
		}
		if len(back.Polys) != len(m.Polys) || back.NumVertices() != m.NumVertices() {
			t.Fatalf("round trip changed structure: %s", data)
		}
		if math.Abs(back.Area()-m.Area()) > 1e-9 {
			t.Fatal("round trip changed area")
		}
	}
}

func TestFeatureCollectionRoundTrip(t *testing.T) {
	fs := []Feature{
		{
			Geometry:   geom.NewMultiPolygon(geom.NewPolygon(geom.Ring{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}})),
			Properties: map[string]any{"name": "park", "id": float64(7)},
		},
		{
			Geometry: geom.NewMultiPolygon(geom.NewPolygon(geom.Ring{{X: 10, Y: 10}, {X: 12, Y: 10}, {X: 11, Y: 13}})),
		},
	}
	data, err := MarshalFeatureCollection(fs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseFeatureCollection(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d features", len(back))
	}
	if back[0].Properties["name"] != "park" || back[0].Properties["id"] != float64(7) {
		t.Errorf("properties lost: %v", back[0].Properties)
	}
	if back[1].Geometry.NumVertices() != 3 {
		t.Error("second geometry wrong")
	}
}

func TestParseRootVariants(t *testing.T) {
	// Single feature.
	fs, err := ParseFeatureCollection([]byte(`{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0,0],[2,0],[2,2],[0,0]]]},"properties":{"a":1}}`))
	if err != nil || len(fs) != 1 {
		t.Fatalf("feature root: %v, %d", err, len(fs))
	}
	// Bare geometry.
	fs, err = ParseFeatureCollection([]byte(`{"type":"Polygon","coordinates":[[[0,0],[2,0],[2,2],[0,0]]]}`))
	if err != nil || len(fs) != 1 {
		t.Fatalf("bare geometry root: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`{"type":"Point","coordinates":[1,2]}`,
		`{"type":"Polygon","coordinates":[]}`,
		`{"type":"Polygon","coordinates":[[[0,0],[1,1]]]}`,             // too few
		`{"type":"Polygon","coordinates":[[[0,0,5],[1,0,5],[1,1,5]]]}`, // 3D
		`{"type":"Polygon","coordinates":"nope"}`,
		`{"type":"FeatureCollection","features":[{"type":"Feature","properties":{}}]}`, // no geometry
		`{"type":"LineString","coordinates":[[0,0],[1,1]]}`,
	}
	for _, s := range bad {
		if _, err := ParseFeatureCollection([]byte(s)); err == nil {
			t.Errorf("input %q should fail", s)
		}
	}
}

func TestMarshalClosesRings(t *testing.T) {
	m := geom.NewMultiPolygon(geom.NewPolygon(geom.Ring{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 2}}))
	data, err := MarshalGeometry(m)
	if err != nil {
		t.Fatal(err)
	}
	// RFC 7946 rings are closed: 4 positions for a triangle.
	if !strings.Contains(string(data), `[[[0,0],[2,0],[1,2],[0,0]]]`) {
		t.Errorf("ring not closed: %s", data)
	}
}
