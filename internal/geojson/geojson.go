// Package geojson reads and writes the GeoJSON (RFC 7946) encodings of
// the geometry types used by the library: Polygon and MultiPolygon
// geometries, Features with properties, and FeatureCollections. Positions
// are [x, y]; any extra ordinates are rejected rather than dropped.
package geojson

import (
	"encoding/json"
	"fmt"

	"repro/internal/geom"
)

// Feature is one GeoJSON feature: a geometry with optional properties.
type Feature struct {
	Geometry   *geom.MultiPolygon
	Properties map[string]any
}

// rawGeometry mirrors the GeoJSON geometry object.
type rawGeometry struct {
	Type        string          `json:"type"`
	Coordinates json.RawMessage `json:"coordinates"`
}

type rawFeature struct {
	Type       string         `json:"type"`
	Geometry   *rawGeometry   `json:"geometry"`
	Properties map[string]any `json:"properties,omitempty"`
}

type rawCollection struct {
	Type     string       `json:"type"`
	Features []rawFeature `json:"features"`
}

// ParseGeometry reads a GeoJSON geometry object (Polygon or
// MultiPolygon) into a multipolygon.
func ParseGeometry(data []byte) (*geom.MultiPolygon, error) {
	var rg rawGeometry
	if err := json.Unmarshal(data, &rg); err != nil {
		return nil, fmt.Errorf("geojson: %w", err)
	}
	return decodeGeometry(&rg)
}

func decodeGeometry(rg *rawGeometry) (*geom.MultiPolygon, error) {
	switch rg.Type {
	case "Polygon":
		var rings [][][]float64
		if err := json.Unmarshal(rg.Coordinates, &rings); err != nil {
			return nil, fmt.Errorf("geojson: polygon coordinates: %w", err)
		}
		p, err := decodePolygon(rings)
		if err != nil {
			return nil, err
		}
		return geom.NewMultiPolygon(p), nil
	case "MultiPolygon":
		var polys [][][][]float64
		if err := json.Unmarshal(rg.Coordinates, &polys); err != nil {
			return nil, fmt.Errorf("geojson: multipolygon coordinates: %w", err)
		}
		out := make([]*geom.Polygon, 0, len(polys))
		for i, rings := range polys {
			p, err := decodePolygon(rings)
			if err != nil {
				return nil, fmt.Errorf("geojson: member %d: %w", i, err)
			}
			out = append(out, p)
		}
		return geom.NewMultiPolygon(out...), nil
	default:
		return nil, fmt.Errorf("geojson: unsupported geometry type %q", rg.Type)
	}
}

func decodePolygon(rings [][][]float64) (*geom.Polygon, error) {
	if len(rings) == 0 {
		return nil, fmt.Errorf("polygon with no rings")
	}
	decoded := make([]geom.Ring, 0, len(rings))
	for ri, raw := range rings {
		ring, err := decodeRing(raw)
		if err != nil {
			return nil, fmt.Errorf("ring %d: %w", ri, err)
		}
		decoded = append(decoded, ring)
	}
	return geom.NewPolygon(decoded[0], decoded[1:]...), nil
}

func decodeRing(raw [][]float64) (geom.Ring, error) {
	ring := make(geom.Ring, 0, len(raw))
	for i, pos := range raw {
		if len(pos) != 2 {
			return nil, fmt.Errorf("position %d has %d ordinates, want 2", i, len(pos))
		}
		ring = append(ring, geom.Point{X: pos[0], Y: pos[1]})
	}
	// GeoJSON rings repeat the first position at the end.
	if len(ring) >= 2 && ring[0].Eq(ring[len(ring)-1]) {
		ring = ring[:len(ring)-1]
	}
	if len(ring) < 3 {
		return nil, fmt.Errorf("ring has %d distinct vertices, need 3", len(ring))
	}
	return ring, nil
}

// MarshalGeometry writes a multipolygon as a GeoJSON geometry object:
// a Polygon when it has one member, a MultiPolygon otherwise.
func MarshalGeometry(m *geom.MultiPolygon) ([]byte, error) {
	if len(m.Polys) == 1 {
		return json.Marshal(map[string]any{
			"type":        "Polygon",
			"coordinates": encodePolygon(m.Polys[0]),
		})
	}
	coords := make([][][][]float64, 0, len(m.Polys))
	for _, p := range m.Polys {
		coords = append(coords, encodePolygon(p))
	}
	return json.Marshal(map[string]any{
		"type":        "MultiPolygon",
		"coordinates": coords,
	})
}

func encodePolygon(p *geom.Polygon) [][][]float64 {
	out := make([][][]float64, 0, 1+len(p.Holes))
	out = append(out, encodeRing(p.Shell))
	for _, h := range p.Holes {
		out = append(out, encodeRing(h))
	}
	return out
}

func encodeRing(r geom.Ring) [][]float64 {
	out := make([][]float64, 0, len(r)+1)
	for _, pt := range r {
		out = append(out, []float64{pt.X, pt.Y})
	}
	if len(r) > 0 {
		out = append(out, []float64{r[0].X, r[0].Y})
	}
	return out
}

// ParseFeatureCollection reads a FeatureCollection (or a single Feature,
// or a bare geometry) into features.
func ParseFeatureCollection(data []byte) ([]Feature, error) {
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("geojson: %w", err)
	}
	switch probe.Type {
	case "FeatureCollection":
		var rc rawCollection
		if err := json.Unmarshal(data, &rc); err != nil {
			return nil, fmt.Errorf("geojson: %w", err)
		}
		out := make([]Feature, 0, len(rc.Features))
		for i, rf := range rc.Features {
			f, err := decodeFeature(&rf)
			if err != nil {
				return nil, fmt.Errorf("geojson: feature %d: %w", i, err)
			}
			out = append(out, f)
		}
		return out, nil
	case "Feature":
		var rf rawFeature
		if err := json.Unmarshal(data, &rf); err != nil {
			return nil, fmt.Errorf("geojson: %w", err)
		}
		f, err := decodeFeature(&rf)
		if err != nil {
			return nil, err
		}
		return []Feature{f}, nil
	case "Polygon", "MultiPolygon":
		g, err := ParseGeometry(data)
		if err != nil {
			return nil, err
		}
		return []Feature{{Geometry: g}}, nil
	default:
		return nil, fmt.Errorf("geojson: unsupported root type %q", probe.Type)
	}
}

func decodeFeature(rf *rawFeature) (Feature, error) {
	if rf.Geometry == nil {
		return Feature{}, fmt.Errorf("feature without geometry")
	}
	g, err := decodeGeometry(rf.Geometry)
	if err != nil {
		return Feature{}, err
	}
	return Feature{Geometry: g, Properties: rf.Properties}, nil
}

// MarshalFeatureCollection writes features as a FeatureCollection.
func MarshalFeatureCollection(features []Feature) ([]byte, error) {
	rc := rawCollection{Type: "FeatureCollection", Features: make([]rawFeature, 0, len(features))}
	for _, f := range features {
		gj, err := MarshalGeometry(f.Geometry)
		if err != nil {
			return nil, err
		}
		var rg rawGeometry
		if err := json.Unmarshal(gj, &rg); err != nil {
			return nil, err
		}
		rc.Features = append(rc.Features, rawFeature{
			Type:       "Feature",
			Geometry:   &rg,
			Properties: f.Properties,
		})
	}
	return json.Marshal(rc)
}
