package geojson

import "testing"

// FuzzParseGeometry checks the geometry reader never panics and that
// anything it accepts survives a marshal/parse round trip.
func FuzzParseGeometry(f *testing.F) {
	seeds := []string{
		`{"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4],[0,4],[0,0]]]}`,
		`{"type":"Polygon","coordinates":[[[0,0],[10,0],[10,10],[0,10],[0,0]],[[2,2],[4,2],[4,4],[2,4],[2,2]]]}`,
		`{"type":"MultiPolygon","coordinates":[[[[0,0],[1,0],[1,1],[0,0]]],[[[5,5],[7,5],[7,7],[5,5]]]]}`,
		`{"type":"Polygon","coordinates":[]}`,
		`{"type":"Polygon","coordinates":[[[0,0],[1,1]]]}`,
		`{"type":"Polygon","coordinates":[[[0,0,9],[1,0,9],[1,1,9]]]}`,
		`{"type":"Point","coordinates":[1,2]}`,
		`{"type":"Polygon"}`,
		`{"type":"Polygon","coordinates":[[["a",0],[1,0],[1,1]]]}`,
		`{"coordinates":[[[0,0],[1,0],[1,1]]]}`,
		`{"type":"MultiPolygon","coordinates":[[]]}`,
		`not json`,
		`{}`,
		`[]`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseGeometry([]byte(s))
		if err != nil {
			return
		}
		for _, p := range m.Polys {
			if p.NumVertices() < 3 {
				t.Fatalf("accepted polygon with %d vertices from %q", p.NumVertices(), s)
			}
		}
		enc, err := MarshalGeometry(m)
		if err != nil {
			t.Fatalf("marshal of accepted geometry %q failed: %v", s, err)
		}
		round, err := ParseGeometry(enc)
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", s, err)
		}
		if len(round.Polys) != len(m.Polys) || round.NumVertices() != m.NumVertices() {
			t.Fatalf("round trip of %q changed structure", s)
		}
	})
}

// FuzzParseFeatureCollection checks the collection reader likewise; it
// is the path server request bodies and dataset files come in through.
func FuzzParseFeatureCollection(f *testing.F) {
	seeds := []string{
		`{"type":"FeatureCollection","features":[]}`,
		`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4],[0,0]]]},"properties":{"name":"a"}}]}`,
		`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":null}]}`,
		`{"type":"Feature","geometry":{"type":"MultiPolygon","coordinates":[[[[0,0],[1,0],[1,1],[0,0]]]]},"properties":{"n":1}}`,
		`{"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4],[0,0]]]}`,
		`{"type":"FeatureCollection","features":[{"type":"Feature"}]}`,
		`{"type":"FeatureCollection","features":{}}`,
		`{"type":"GeometryCollection","geometries":[]}`,
		`{"type":"FeatureCollection","features":[{"geometry":{"type":"Polygon","coordinates":[[[1e308,1e308],[-1e308,0],[0,-1e308]]]}}]}`,
		``,
		`{"type":`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		fs, err := ParseFeatureCollection([]byte(s))
		if err != nil {
			return
		}
		for i, ft := range fs {
			if ft.Geometry == nil {
				t.Fatalf("accepted feature %d without geometry from %q", i, s)
			}
		}
		enc, err := MarshalFeatureCollection(fs)
		if err != nil {
			t.Fatalf("marshal of accepted collection %q failed: %v", s, err)
		}
		round, err := ParseFeatureCollection(enc)
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", s, err)
		}
		if len(round) != len(fs) {
			t.Fatalf("round trip of %q changed feature count %d -> %d", s, len(fs), len(round))
		}
		for i := range fs {
			if round[i].Geometry.NumVertices() != fs[i].Geometry.NumVertices() {
				t.Fatalf("round trip of %q changed feature %d structure", s, i)
			}
		}
	})
}
