package april

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/interval"
)

func space() geom.MBR { return geom.MBR{MinX: 0, MinY: 0, MaxX: 64, MaxY: 64} }

func rect(x0, y0, x1, y1 float64) *geom.Polygon {
	return geom.NewPolygon(geom.Ring{{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}})
}

func randBlob(rng *rand.Rand, cx, cy, radius float64, n int) geom.Ring {
	angles := make([]float64, n)
	step := 2 * math.Pi / float64(n)
	for i := range angles {
		angles[i] = float64(i)*step + rng.Float64()*step*0.8
	}
	ring := make(geom.Ring, n)
	for i, a := range angles {
		r := radius * (0.4 + 0.6*rng.Float64())
		ring[i] = geom.Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
	}
	return ring
}

func TestBuildPSubsetOfC(t *testing.T) {
	b := NewBuilder(space(), 8)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		p := geom.NewPolygon(randBlob(rng, 32, 32, 20, 6+rng.Intn(50)))
		a, err := b.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		if !a.P.IsValid() || !a.C.IsValid() {
			t.Fatal("lists must be normalized")
		}
		if !interval.Inside(a.P, a.C) {
			t.Fatalf("trial %d: P not inside C", trial)
		}
		if a.C.NumCells() == 0 {
			t.Fatalf("trial %d: C empty for a real polygon", trial)
		}
		np, nc := a.NumIntervals()
		if np != len(a.P) || nc != len(a.C) {
			t.Error("NumIntervals mismatch")
		}
	}
}

// TestIntervalCountScaling sanity-checks the paper's claim that the number
// of intervals is in the order of the square root of the number of covered
// cells (Hilbert locality keeps runs long).
func TestIntervalCountScaling(t *testing.T) {
	b := NewBuilder(space(), 10)
	p := rect(4, 4, 60, 60)
	a, err := b.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cells := float64(a.C.NumCells())
	ivs := float64(len(a.C))
	if ivs > 8*math.Sqrt(cells) {
		t.Errorf("C has %v intervals for %v cells; expected O(sqrt)", ivs, cells)
	}
}

func TestBuildWindowTooLarge(t *testing.T) {
	b := NewBuilder(space(), 16)
	// The full space at order 16 exceeds the raster window limit.
	if _, err := b.Build(rect(1, 1, 63, 63)); err == nil {
		t.Fatal("expected window-too-large error")
	}
}

func TestApproxCodec(t *testing.T) {
	b := NewBuilder(space(), 8)
	a, err := b.Build(rect(10, 10, 30, 25))
	if err != nil {
		t.Fatal(err)
	}
	buf := a.AppendEncode(nil)
	if len(buf) != a.Bytes() {
		t.Errorf("Bytes() = %d, encoded %d", a.Bytes(), len(buf))
	}
	got, n, err := DecodeApprox(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if !interval.Match(got.P, a.P) || !interval.Match(got.C, a.C) {
		t.Error("round trip mismatch")
	}
	if _, _, err := DecodeApprox(buf[:1]); err == nil {
		t.Error("truncated decode should fail")
	}
	if _, _, err := DecodeApprox(nil); err == nil {
		t.Error("empty decode should fail")
	}
}

func TestIntersectionFilterDisjoint(t *testing.T) {
	b := NewBuilder(space(), 8)
	a1, err := b.Build(rect(2, 2, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b.Build(rect(40, 40, 60, 60))
	if err != nil {
		t.Fatal(err)
	}
	if v := IntersectionFilter(a1, a2); v != DefiniteDisjoint {
		t.Errorf("far apart: %v", v)
	}
}

func TestIntersectionFilterDefinite(t *testing.T) {
	b := NewBuilder(space(), 8)
	big, err := b.Build(rect(10, 10, 50, 50))
	if err != nil {
		t.Fatal(err)
	}
	inner, err := b.Build(rect(20, 20, 40, 40))
	if err != nil {
		t.Fatal(err)
	}
	if v := IntersectionFilter(big, inner); v != DefiniteIntersect {
		t.Errorf("containment: %v", v)
	}
	if v := IntersectionFilter(inner, big); v != DefiniteIntersect {
		t.Errorf("containment swapped: %v", v)
	}
	overlap, err := b.Build(rect(45, 45, 60, 60))
	if err != nil {
		t.Fatal(err)
	}
	if v := IntersectionFilter(big, overlap); v != DefiniteIntersect {
		t.Errorf("overlap: %v", v)
	}
}

func TestIntersectionFilterTouching(t *testing.T) {
	b := NewBuilder(space(), 8)
	left, err := b.Build(rect(10, 10, 30, 30))
	if err != nil {
		t.Fatal(err)
	}
	right, err := b.Build(rect(30, 10, 50, 30))
	if err != nil {
		t.Fatal(err)
	}
	// Touching objects share boundary cells: C lists overlap, so they can
	// never be reported disjoint; the verdict must be intersect (their
	// shared edge is a real intersection) or inconclusive.
	if v := IntersectionFilter(left, right); v == DefiniteDisjoint {
		t.Errorf("touching pair reported disjoint")
	}
}

// TestIntersectionFilterSoundness: on random pairs the filter must never
// contradict the exact geometry.
func TestIntersectionFilterSoundness(t *testing.T) {
	b := NewBuilder(space(), 8)
	rng := rand.New(rand.NewSource(33))
	var definite, total int
	for trial := 0; trial < 150; trial++ {
		p1 := geom.NewPolygon(randBlob(rng, 16+rng.Float64()*32, 16+rng.Float64()*32, 4+rng.Float64()*12, 8+rng.Intn(30)))
		p2 := geom.NewPolygon(randBlob(rng, 16+rng.Float64()*32, 16+rng.Float64()*32, 4+rng.Float64()*12, 8+rng.Intn(30)))
		a1, err := b.Build(p1)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := b.Build(p2)
		if err != nil {
			t.Fatal(err)
		}
		truth := polygonsIntersect(p1, p2)
		total++
		switch IntersectionFilter(a1, a2) {
		case DefiniteDisjoint:
			definite++
			if truth {
				t.Fatalf("trial %d: filter says disjoint but objects intersect", trial)
			}
		case DefiniteIntersect:
			definite++
			if !truth {
				t.Fatalf("trial %d: filter says intersect but objects are disjoint", trial)
			}
		}
	}
	if definite == 0 {
		t.Error("filter never reached a definite verdict on 150 random pairs")
	}
}

// polygonsIntersect is a brute-force ground truth: boundaries cross, or one
// contains a point of the other.
func polygonsIntersect(p1, p2 *geom.Polygon) bool {
	cross := false
	p1.Edges(func(a, b geom.Point) {
		p2.Edges(func(c, d geom.Point) {
			if geom.SegIntersect(a, b, c, d).Kind != geom.SegNone {
				cross = true
			}
		})
	})
	if cross {
		return true
	}
	if geom.LocateInPolygon(p1.Shell[0], p2) != geom.Outside {
		return true
	}
	return geom.LocateInPolygon(p2.Shell[0], p1) != geom.Outside
}

func TestVerdictString(t *testing.T) {
	if DefiniteDisjoint.String() != "disjoint" ||
		DefiniteIntersect.String() != "intersect" ||
		Inconclusive.String() != "inconclusive" {
		t.Error("verdict names wrong")
	}
}
