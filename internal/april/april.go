// Package april builds and evaluates APRIL raster-interval approximations
// (Georgiadis, Tzirita Zacharatou, Mamoulis, VLDB J. 2025): for each object
// a Progressive interval list P covering the grid cells fully inside the
// object and a Conservative list C covering all cells the object touches,
// with cells enumerated along a Hilbert curve. The package also implements
// the original APRIL intersection-only intermediate filter used as the
// APRIL baseline in the paper's experiments.
package april

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/hilbert"
	"repro/internal/interval"
	"repro/internal/raster"
)

// Approx is the APRIL approximation of one object.
type Approx struct {
	// P is the Progressive list: cells entirely inside the object.
	P interval.List
	// C is the Conservative list: all cells the object touches.
	C interval.List
}

// NumIntervals returns the interval counts of the P and C lists.
func (a Approx) NumIntervals() (p, c int) { return len(a.P), len(a.C) }

// Bytes returns the encoded storage size of the approximation.
func (a Approx) Bytes() int { return a.P.EncodedSize() + a.C.EncodedSize() }

// AppendEncode serializes the approximation.
func (a Approx) AppendEncode(buf []byte) []byte {
	buf = a.P.AppendEncode(buf)
	return a.C.AppendEncode(buf)
}

// DecodeApprox parses an approximation written by AppendEncode, returning
// it and the number of bytes consumed.
func DecodeApprox(buf []byte) (Approx, int, error) {
	p, n, err := interval.Decode(buf)
	if err != nil {
		return Approx{}, 0, fmt.Errorf("april: P list: %w", err)
	}
	c, m, err := interval.Decode(buf[n:])
	if err != nil {
		return Approx{}, 0, fmt.Errorf("april: C list: %w", err)
	}
	return Approx{P: p, C: c}, n + m, nil
}

// Builder constructs approximations over a fixed grid; the Hilbert curve
// order always matches the grid order. A Builder is immutable after
// construction and safe for concurrent use: Build allocates all of its
// working state per call, so the serving tier shares one Builder
// between ingest rasterization, cold builds, and background rebuilds
// without locking.
type Builder struct {
	grid  raster.Grid
	curve hilbert.Curve
}

// NewBuilder creates a Builder for the given data space and grid order
// (the paper uses order 16: a 2^16 × 2^16 grid).
func NewBuilder(space geom.MBR, order uint) *Builder {
	return &Builder{grid: raster.NewGrid(space, order), curve: hilbert.New(order)}
}

// Grid exposes the underlying grid.
func (b *Builder) Grid() raster.Grid { return b.grid }

// Build computes the APRIL approximation of a polygon.
func (b *Builder) Build(p *geom.Polygon) (Approx, error) {
	ras, err := raster.Rasterize(p, b.grid)
	if err != nil {
		return Approx{}, err
	}
	full, partial := ras.Counts()
	fullIDs := make([]uint64, 0, full)
	allIDs := make([]uint64, 0, full+partial)
	ras.Each(func(col, row int, s raster.CellState) {
		d := b.curve.D(uint32(col), uint32(row))
		allIDs = append(allIDs, d)
		if s == raster.Full {
			fullIDs = append(fullIDs, d)
		}
	})
	return Approx{
		P: interval.FromCells(fullIDs),
		C: interval.FromCells(allIDs),
	}, nil
}

// Verdict is the outcome of the APRIL intersection filter.
type Verdict uint8

// Intersection filter outcomes.
const (
	// Inconclusive: the approximations cannot decide; refinement needed.
	Inconclusive Verdict = iota
	// DefiniteDisjoint: the objects certainly do not intersect.
	DefiniteDisjoint
	// DefiniteIntersect: the objects certainly intersect.
	DefiniteIntersect
)

func (v Verdict) String() string {
	switch v {
	case DefiniteDisjoint:
		return "disjoint"
	case DefiniteIntersect:
		return "intersect"
	default:
		return "inconclusive"
	}
}

// IntersectionFilter is the original APRIL intermediate filter for spatial
// intersection joins: if the conservative lists do not overlap the objects
// are disjoint; if a conservative list overlaps the other's progressive
// list, a full cell of one object is touched by the other, so they
// certainly intersect; otherwise the filter is inconclusive.
func IntersectionFilter(r, s Approx) Verdict {
	if !interval.Overlap(r.C, s.C) {
		return DefiniteDisjoint
	}
	if interval.Overlap(r.C, s.P) {
		return DefiniteIntersect
	}
	if interval.Overlap(r.P, s.C) {
		return DefiniteIntersect
	}
	return Inconclusive
}
