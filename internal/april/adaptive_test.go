package april

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/interval"
)

func TestBuildAdaptiveSmallObjectUnchanged(t *testing.T) {
	b := NewBuilder(space(), 8)
	p := rect(10, 10, 30, 25)
	exact, err := b.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := b.BuildAdaptive(p)
	if err != nil {
		t.Fatal(err)
	}
	if !interval.Match(exact.P, adaptive.P) || !interval.Match(exact.C, adaptive.C) {
		t.Error("adaptive build must equal exact build when the window fits")
	}
}

func TestBuildAdaptiveHugeObject(t *testing.T) {
	// At order 16 over a unit space, a space-filling polygon exceeds the
	// raster window; the adaptive builder must still produce sound lists.
	unit := geom.MBR{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	b := NewBuilder(unit, 16)
	huge := geom.NewPolygon(geom.Ring{
		{X: 0.01, Y: 0.01}, {X: 0.99, Y: 0.01}, {X: 0.99, Y: 0.99}, {X: 0.01, Y: 0.99},
	})
	if _, err := b.Build(huge); err == nil {
		t.Fatal("expected the exact build to overflow the window")
	}
	ap, err := b.BuildAdaptive(huge)
	if err != nil {
		t.Fatal(err)
	}
	if len(ap.C) == 0 || len(ap.P) == 0 {
		t.Fatal("adaptive approximation empty")
	}
	if !ap.P.IsValid() || !ap.C.IsValid() {
		t.Fatal("lists not normalized")
	}
	if !interval.Inside(ap.P, ap.C) {
		t.Fatal("P must stay inside C")
	}
	// The lifted ids live in the base order-16 id space.
	base := uint64(1) << 32 // 4^16 cells
	last := ap.C[len(ap.C)-1]
	if last.End > base {
		t.Fatalf("lifted interval %v exceeds the base id space", last)
	}
	// Conservative lists of the huge object and of a small object built at
	// the exact order must overlap where the objects overlap.
	small, err := b.Build(geom.NewPolygon(geom.Ring{
		{X: 0.4, Y: 0.4}, {X: 0.41, Y: 0.4}, {X: 0.41, Y: 0.41}, {X: 0.4, Y: 0.41},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !interval.Overlap(ap.C, small.C) {
		t.Error("cross-order conservative lists must overlap for overlapping objects")
	}
	// The small object is deep inside the huge one: its conservative
	// cells must land in the huge object's (coarse) progressive cells.
	if !interval.Inside(small.C, ap.P) {
		t.Error("nested object's C must sit inside the huge object's lifted P")
	}
}

// TestBuildAdaptiveFilterSoundness: mixed-order approximations must keep
// the intersection filter sound against exact geometry.
func TestBuildAdaptiveFilterSoundness(t *testing.T) {
	unit := geom.MBR{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	b := NewBuilder(unit, 12)
	rng := rand.New(rand.NewSource(5))
	// One huge object (coarse order) against many small exact ones.
	huge := geom.NewPolygon(geom.Ring{
		{X: 0.05, Y: 0.05}, {X: 0.95, Y: 0.05}, {X: 0.95, Y: 0.6}, {X: 0.05, Y: 0.6},
	})
	hugeAp, err := b.BuildAdaptive(huge)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		x := rng.Float64() * 0.9
		y := rng.Float64() * 0.9
		small := rect(x, y, x+0.03, y+0.03)
		smallAp, err := b.BuildAdaptive(small)
		if err != nil {
			t.Fatal(err)
		}
		truth := polygonsIntersect(huge, small)
		switch IntersectionFilter(hugeAp, smallAp) {
		case DefiniteDisjoint:
			if truth {
				t.Fatalf("trial %d: disjoint verdict on intersecting pair", trial)
			}
		case DefiniteIntersect:
			if !truth {
				t.Fatalf("trial %d: intersect verdict on disjoint pair", trial)
			}
		}
	}
}
