package april

import (
	"repro/internal/geom"
	"repro/internal/hilbert"
	"repro/internal/interval"
	"repro/internal/raster"
)

// BuildAdaptive computes an APRIL approximation like Build, but objects
// whose raster window would exceed the per-object limit are rasterized at
// a coarser grid order and their intervals lifted into the base id space.
//
// Hilbert curves nest hierarchically: the order-k cell containing a point
// covers exactly the ids [d<<2(o-k), (d+1)<<2(o-k)) of the order-o curve
// (property-tested in internal/hilbert). A coarse conservative cell is
// still conservative after lifting, and a coarse full cell is a region
// fully inside the object, so both list semantics — and therefore every
// filter verdict — remain sound; the approximation is merely coarser for
// the affected object.
func (b *Builder) BuildAdaptive(p *geom.Polygon) (Approx, error) {
	ap, err := b.Build(p)
	if err == nil {
		return ap, nil
	}
	if _, ok := err.(raster.ErrWindowTooLarge); !ok {
		return Approx{}, err
	}
	// Pick the finest coarser order whose window fits the fallback
	// budget analytically — failed rasterization attempts are wasted
	// work, and a tighter budget than the hard window limit keeps the
	// build time of pathological objects bounded.
	const fallbackBudget = 4 << 20
	baseOrder := b.grid.Order()
	for order := baseOrder - 1; order >= 1; order-- {
		coarse := raster.NewGrid(b.grid.Space(), order)
		if coarse.WindowCells(p.Bounds()) > fallbackBudget {
			continue
		}
		ras, rerr := raster.Rasterize(p, coarse)
		if rerr != nil {
			return Approx{}, rerr
		}
		curve := hilbert.New(order)
		shift := 2 * (baseOrder - order)
		full, partial := ras.Counts()
		fullIvs := make([]interval.Interval, 0, full)
		allIvs := make([]interval.Interval, 0, full+partial)
		ras.Each(func(col, row int, s raster.CellState) {
			d := curve.D(uint32(col), uint32(row))
			iv := interval.Interval{Start: d << shift, End: (d + 1) << shift}
			allIvs = append(allIvs, iv)
			if s == raster.Full {
				fullIvs = append(fullIvs, iv)
			}
		})
		return Approx{
			P: interval.Normalize(fullIvs),
			C: interval.Normalize(allIvs),
		}, nil
	}
	return Approx{}, err
}
