package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestDataAccess(t *testing.T) {
	rows, err := env(t).DataAccess(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != core.NumMethods {
		t.Fatalf("got %d rows", len(rows))
	}
	byMethod := map[core.Method]DataAccessRow{}
	for _, r := range rows {
		byMethod[r.Method] = r
		if r.StoreSize <= 0 {
			t.Fatalf("%v: empty store", r.Method)
		}
	}
	// ST2 and OP2 refine the same pairs, so they read the same bytes.
	if byMethod[core.ST2].BytesRead != byMethod[core.OP2].BytesRead {
		t.Errorf("ST2 (%d) and OP2 (%d) should read identical bytes",
			byMethod[core.ST2].BytesRead, byMethod[core.OP2].BytesRead)
	}
	// The filter hierarchy shows up as strictly decreasing I/O.
	if byMethod[core.APRIL].BytesRead > byMethod[core.ST2].BytesRead {
		t.Error("APRIL should not read more than ST2")
	}
	if byMethod[core.PC].BytesRead >= byMethod[core.APRIL].BytesRead {
		t.Errorf("P+C (%d bytes) should read less than APRIL (%d bytes)",
			byMethod[core.PC].BytesRead, byMethod[core.APRIL].BytesRead)
	}
	var sb strings.Builder
	RenderDataAccess(&sb, rows)
	if !strings.Contains(sb.String(), "Bytes read") {
		t.Error("render header missing")
	}
}

func TestRelatedWorkComparison(t *testing.T) {
	rows, err := env(t).RelatedWorkComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Pairs == 0 || r.Settled == 0 {
			t.Errorf("%s: settled %d of %d", r.Name, r.Settled, r.Pairs)
		}
		if r.Settled > r.Pairs {
			t.Errorf("%s: settled more than examined", r.Name)
		}
		if p := r.SettledPct(); p <= 0 || p > 100 {
			t.Errorf("%s: pct %v", r.Name, p)
		}
	}
	if (RelatedWorkRow{}).SettledPct() != 0 {
		t.Error("empty row pct should be 0")
	}
	var sb strings.Builder
	RenderRelatedWork(&sb, rows)
	if !strings.Contains(sb.String(), "APRIL") {
		t.Error("render missing APRIL row")
	}
}

func TestPListAblationShape(t *testing.T) {
	rows, err := env(t).PListAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	full, cOnly, narrow := rows[0], rows[1], rows[2]
	if full.UndetPct >= cOnly.UndetPct {
		t.Errorf("stripping P lists must hurt: full %.1f%%, C-only %.1f%%",
			full.UndetPct, cOnly.UndetPct)
	}
	if narrow.UndetPct != 100 {
		t.Errorf("narrowing-only refines everything, got %.1f%%", narrow.UndetPct)
	}
	var sb strings.Builder
	RenderPListAblation(&sb, rows)
	if !strings.Contains(sb.String(), "narrowing-only") {
		t.Error("render missing variants")
	}
}

func TestGridOrderAblationShape(t *testing.T) {
	rows, err := GridOrderAblation(2026, 0.05, []uint{9, 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	coarse, fine := rows[0], rows[1]
	if fine.PCUndetPct > coarse.PCUndetPct {
		t.Errorf("finer grid should settle more: 2^9 %.1f%%, 2^11 %.1f%%",
			coarse.PCUndetPct, fine.PCUndetPct)
	}
	if fine.ApproxKB <= coarse.ApproxKB {
		t.Errorf("finer grid should cost more storage: %v vs %v KB",
			fine.ApproxKB, coarse.ApproxKB)
	}
	if fine.MeetsRefined > coarse.MeetsRefined {
		t.Error("finer grid should reduce relate_meets refinements")
	}
	var sb strings.Builder
	RenderGridAblation(&sb, rows)
	if !strings.Contains(sb.String(), "2^9") {
		t.Error("render missing orders")
	}
}

func TestStripProgressive(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	stripped := StripProgressive(pairs)
	if len(stripped) != len(pairs) {
		t.Fatal("pair count changed")
	}
	for i, p := range stripped {
		if len(p.R.Approx.P) != 0 || len(p.S.Approx.P) != 0 {
			t.Fatal("P lists not stripped")
		}
		if p.R.ID != pairs[i].R.ID || p.S.ID != pairs[i].S.ID {
			t.Fatal("object identity changed")
		}
		if len(p.R.Approx.C) != len(pairs[i].R.Approx.C) {
			t.Fatal("C lists must be preserved")
		}
	}
	// Originals untouched.
	for _, p := range pairs {
		if p.R.Poly == nil {
			t.Fatal("original objects mutated")
		}
	}
}
