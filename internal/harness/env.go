// Package harness runs the paper's experiments (Sec. 4) on the synthetic
// dataset suite: one runner per table and figure, each returning typed
// rows plus a text rendering that mirrors the paper's presentation.
// EXPERIMENTS.md records paper-vs-measured values for every experiment.
package harness

import (
	"fmt"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/join"
)

// Env is a fully preprocessed experiment environment: the generated
// datasets with MBRs and APRIL approximations built, sharing one global
// grid per the paper's setup.
type Env struct {
	Suite    *datagen.Suite
	Builder  *april.Builder
	Datasets map[string]*dataset.Dataset

	pairCache map[string][]Pair
}

// Pair is one candidate pair produced by the MBR join filter step.
type Pair struct {
	R, S *core.Object
}

// NewEnv generates the suite and precomputes every dataset.
// Scale multiplies dataset cardinalities; order is the grid order
// (datagen.DefaultOrder reproduces the default setup).
func NewEnv(seed int64, scale float64, order uint) (*Env, error) {
	suite := datagen.NewSuite(seed, scale)
	b := april.NewBuilder(suite.Space, order)
	e := &Env{
		Suite:     suite,
		Builder:   b,
		Datasets:  make(map[string]*dataset.Dataset, len(suite.Sets)),
		pairCache: make(map[string][]Pair),
	}
	for name, polys := range suite.Sets {
		ds, err := dataset.Precompute(name, datagen.EntityTypes[name], polys, b)
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		e.Datasets[name] = ds
	}
	return e, nil
}

// CandidatePairs runs the spatial-join filter step for a dataset
// combination and returns the MBR-intersecting pairs. Results are cached:
// the paper excludes this step's cost from all measurements.
func (e *Env) CandidatePairs(combo [2]string) ([]Pair, error) {
	key := datagen.ComboName(combo)
	if cached, ok := e.pairCache[key]; ok {
		return cached, nil
	}
	left, ok := e.Datasets[combo[0]]
	if !ok {
		return nil, fmt.Errorf("harness: unknown dataset %q", combo[0])
	}
	right, ok := e.Datasets[combo[1]]
	if !ok {
		return nil, fmt.Errorf("harness: unknown dataset %q", combo[1])
	}
	idPairs := join.Pairs(left.MBRs(), right.MBRs())
	pairs := make([]Pair, len(idPairs))
	for i, p := range idPairs {
		pairs[i] = Pair{R: left.Objects[p[0]], S: right.Objects[p[1]]}
	}
	e.pairCache[key] = pairs
	return pairs, nil
}

// Complexity returns the complexity of a pair: the sum of the two
// objects' vertex counts (Sec. 4.3).
func (p Pair) Complexity() int {
	return p.R.Poly.NumVertices() + p.S.Poly.NumVertices()
}
