package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// RunFindRelationParallel sweeps method m over the pairs with a worker
// pool, as in the parallel in-memory join evaluation the paper builds on
// (Tsitsigkos et al., SIGSPATIAL 2019). Pairs are claimed in chunks from
// an atomic cursor so stragglers (high-complexity refinements) do not
// imbalance the workers. workers <= 0 selects GOMAXPROCS.
//
// Each worker keeps a private MethodStats fed by its own pipeline sink;
// the partials are merged after the pool drains, so the verdict split
// and the stage timers survive parallelism. FilterTime and RefineTime
// are therefore aggregate CPU time across workers, not wall clock.
func RunFindRelationParallel(m core.Method, pairs []Pair, workers int) MethodStats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) && len(pairs) > 0 {
		workers = len(pairs)
	}
	st := MethodStats{Method: m, Pairs: len(pairs)}
	const chunk = 16

	var cursor atomic.Int64
	partial := make([]MethodStats, workers)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self *MethodStats) {
			defer wg.Done()
			sink := statsSink{st: self}
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= len(pairs) {
					return
				}
				hi := lo + chunk
				if hi > len(pairs) {
					hi = len(pairs)
				}
				for _, p := range pairs[lo:hi] {
					core.FindRelationObserved(m, p.R, p.S, sink)
				}
			}
		}(&partial[w])
	}
	wg.Wait()
	st.Elapsed = time.Since(start)
	for _, p := range partial {
		st.merge(p)
	}
	return st
}
