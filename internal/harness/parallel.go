package harness

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// PanicError reports pairs whose evaluation panicked during a parallel
// sweep. Panics are recovered at pair granularity: the poisonous pair
// is abandoned, every other pair is still evaluated, and the sweep
// returns this error instead of crashing the process (before the
// barrier existed, one malformed geometry took down the whole worker
// pool — and with it the server). Stats cover only settled pairs.
type PanicError struct {
	// Index is the pair index of the first recovered panic; Value and
	// Stack are its panic value and goroutine stack.
	Index int
	Value any
	Stack string
	// Count is the total number of pairs that panicked in the sweep.
	Count int
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("harness: %d pair(s) panicked during sweep (first: pair %d: %v)",
		e.Count, e.Index, e.Value)
}

// RunFindRelationParallel sweeps method m over the pairs with a worker
// pool, as in the parallel in-memory join evaluation the paper builds on
// (Tsitsigkos et al., SIGSPATIAL 2019). Pairs are claimed in chunks from
// an atomic cursor so stragglers (high-complexity refinements) do not
// imbalance the workers. workers <= 0 selects GOMAXPROCS.
//
// Each worker keeps a private MethodStats fed by its own pipeline sink;
// the partials are merged after the pool drains, so the verdict split
// and the stage timers survive parallelism. FilterTime and RefineTime
// are therefore aggregate CPU time across workers, not wall clock.
// A non-nil error is either a *PanicError (some pairs' evaluation
// panicked; the rest were still swept) or the context's error from a
// cancelled Ctx variant.
func RunFindRelationParallel(m core.Method, pairs []Pair, workers int) (MethodStats, error) {
	return RunFindRelationParallelCtx(context.Background(), m, pairs, workers, nil)
}

// RunFindRelationParallelCtx is RunFindRelationParallel with per-request
// cancellation and an optional per-pair visitor, the entry point used by
// deadline-bound callers (the query service). Workers re-check ctx at
// every chunk claim, so a cancelled sweep stops within one chunk per
// worker; the returned error is ctx's and the stats cover only the pairs
// actually evaluated (Pairs is reduced accordingly). visit, when
// non-nil, is called concurrently from the workers with the pair index
// and its result; it must be safe for concurrent use.
func RunFindRelationParallelCtx(ctx context.Context, m core.Method, pairs []Pair, workers int, visit func(i int, res core.Result)) (MethodStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) && len(pairs) > 0 {
		workers = len(pairs)
	}
	st := MethodStats{Method: m, Pairs: len(pairs)}
	const chunk = 16

	var cursor atomic.Int64
	var skipped atomic.Int64
	partial := make([]MethodStats, workers)

	// First recovered panic wins the detail slot; the rest just count.
	var pmu sync.Mutex
	var perr *PanicError

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, self *MethodStats) {
			defer wg.Done()
			// When the request's trace is sampled, each worker gets its
			// own child span — parallel lanes in the Chrome export — and
			// hangs per-pair spans off it. With tracing off or unsampled,
			// wsp is nil and every span call below is a pointer check.
			wsp := trace.FromContext(ctx).Child("sweep.worker")
			wsp.SetInt("worker", int64(w))
			swept := 0
			sink := &statsSink{st: self}
			sweep := core.NewSweeper(m, sink)
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= len(pairs) {
					break
				}
				hi := lo + chunk
				if hi > len(pairs) {
					hi = len(pairs)
				}
				if ctx.Err() != nil {
					skipped.Add(int64(hi - lo))
					continue // keep claiming to drain the cursor fast
				}
				for i, p := range pairs[lo:hi] {
					sink.begin()
					if pv, stack := evalPairGuarded(sweep, p, lo+i, visit); pv != nil {
						skipped.Add(1) // no verdict: keep Pairs honest
						pmu.Lock()
						if perr == nil {
							perr = &PanicError{Index: lo + i, Value: pv, Stack: stack}
						}
						perr.Count++
						pmu.Unlock()
						continue
					}
					if d, ok := sink.settled(); ok {
						noteSlow(self, lo+i, d)
						recordPairSpan(wsp, lo+i, p, sink, d)
					}
				}
				swept += hi - lo
			}
			wsp.SetInt("pairs", int64(swept))
			wsp.End()
		}(w, &partial[w])
	}
	wg.Wait()
	st.Elapsed = time.Since(start)
	st.Pairs -= int(skipped.Load())
	for _, p := range partial {
		st.merge(p)
	}
	if perr != nil {
		return st, perr
	}
	return st, ctx.Err()
}

// recordPairSpan retroactively attaches one pair span (with its
// filter/refine stage children) under the worker span, reusing the
// durations the pipeline sink already measured — no extra clock reads
// on the unsampled path, one on the sampled path. No-op when wsp is nil
// or the trace's span budget is spent.
func recordPairSpan(wsp *trace.Span, idx int, p Pair, sink *statsSink, total time.Duration) {
	if !wsp.Recording() {
		return
	}
	end := time.Now()
	ps := wsp.ChildAt("pair", end.Add(-total), total)
	if ps == nil {
		return
	}
	ps.SetInt("index", int64(idx))
	ps.SetInt("r_id", int64(p.R.ID))
	ps.SetInt("s_id", int64(p.S.ID))
	ps.SetStr("verdict", sink.lastVerdict.String())
	// Stage spans: filter ran first, refinement (when any) last.
	ps.ChildAt("filter", end.Add(-total), sink.lastFilter)
	if sink.lastRefine > 0 {
		ps.ChildAt("refine", end.Add(-sink.lastRefine), sink.lastRefine)
	}
}

// evalPairGuarded evaluates one pair (and its visit callback) behind a
// recover barrier: a panic — degenerate geometry, a bug in a pipeline
// stage, a fault injected by a test — is captured and returned instead
// of unwinding through the worker and killing the process.
func evalPairGuarded(sweep *core.Sweeper, p Pair, idx int, visit func(int, core.Result)) (pv any, stack string) {
	defer func() {
		if r := recover(); r != nil {
			pv = r
			stack = string(debug.Stack())
		}
	}()
	res := sweep.FindRelation(p.R, p.S)
	if visit != nil {
		visit(idx, res)
	}
	return nil, ""
}
