package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// RunFindRelationParallel sweeps method m over the pairs with a worker
// pool, as in the parallel in-memory join evaluation the paper builds on
// (Tsitsigkos et al., SIGSPATIAL 2019). Pairs are claimed in chunks from
// an atomic cursor so stragglers (high-complexity refinements) do not
// imbalance the workers. workers <= 0 selects GOMAXPROCS.
func RunFindRelationParallel(m core.Method, pairs []Pair, workers int) MethodStats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) && len(pairs) > 0 {
		workers = len(pairs)
	}
	st := MethodStats{Method: m, Pairs: len(pairs)}
	const chunk = 16

	var cursor atomic.Int64
	var undetermined atomic.Int64
	partial := make([]MethodStats, workers)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self *MethodStats) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= len(pairs) {
					return
				}
				hi := lo + chunk
				if hi > len(pairs) {
					hi = len(pairs)
				}
				for _, p := range pairs[lo:hi] {
					res := core.FindRelation(m, p.R, p.S)
					if res.Refined {
						undetermined.Add(1)
					}
					self.Relations[res.Relation]++
				}
			}
		}(&partial[w])
	}
	wg.Wait()
	st.Elapsed = time.Since(start)
	st.Undetermined = int(undetermined.Load())
	for _, p := range partial {
		for i, n := range p.Relations {
			st.Relations[i] += n
		}
	}
	return st
}
