package harness

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// RunFindRelationParallel sweeps method m over the pairs with a worker
// pool, as in the parallel in-memory join evaluation the paper builds on
// (Tsitsigkos et al., SIGSPATIAL 2019). Pairs are claimed in chunks from
// an atomic cursor so stragglers (high-complexity refinements) do not
// imbalance the workers. workers <= 0 selects GOMAXPROCS.
//
// Each worker keeps a private MethodStats fed by its own pipeline sink;
// the partials are merged after the pool drains, so the verdict split
// and the stage timers survive parallelism. FilterTime and RefineTime
// are therefore aggregate CPU time across workers, not wall clock.
func RunFindRelationParallel(m core.Method, pairs []Pair, workers int) MethodStats {
	st, _ := RunFindRelationParallelCtx(context.Background(), m, pairs, workers, nil)
	return st
}

// RunFindRelationParallelCtx is RunFindRelationParallel with per-request
// cancellation and an optional per-pair visitor, the entry point used by
// deadline-bound callers (the query service). Workers re-check ctx at
// every chunk claim, so a cancelled sweep stops within one chunk per
// worker; the returned error is ctx's and the stats cover only the pairs
// actually evaluated (Pairs is reduced accordingly). visit, when
// non-nil, is called concurrently from the workers with the pair index
// and its result; it must be safe for concurrent use.
func RunFindRelationParallelCtx(ctx context.Context, m core.Method, pairs []Pair, workers int, visit func(i int, res core.Result)) (MethodStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) && len(pairs) > 0 {
		workers = len(pairs)
	}
	st := MethodStats{Method: m, Pairs: len(pairs)}
	const chunk = 16

	var cursor atomic.Int64
	var skipped atomic.Int64
	partial := make([]MethodStats, workers)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self *MethodStats) {
			defer wg.Done()
			sink := statsSink{st: self}
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= len(pairs) {
					return
				}
				hi := lo + chunk
				if hi > len(pairs) {
					hi = len(pairs)
				}
				if ctx.Err() != nil {
					skipped.Add(int64(hi - lo))
					continue // keep claiming to drain the cursor fast
				}
				for i, p := range pairs[lo:hi] {
					res := core.FindRelationObserved(m, p.R, p.S, sink)
					if visit != nil {
						visit(lo+i, res)
					}
				}
			}
		}(&partial[w])
	}
	wg.Wait()
	st.Elapsed = time.Since(start)
	st.Pairs -= int(skipped.Load())
	for _, p := range partial {
		st.merge(p)
	}
	return st, ctx.Err()
}
