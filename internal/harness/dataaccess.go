package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/de9im"
	"repro/internal/geom"
	"repro/internal/store"
)

// DataAccessRow reports the geometry I/O of one method over a workload
// when exact geometries live in a disk-like store (Sec. 4.3's
// data-access saving, in bytes rather than object counts).
type DataAccessRow struct {
	Method    core.Method
	Loads     int
	Hits      int
	BytesRead int64
	StoreSize int64
}

// DataAccess replays the OLE-OPE workload for every method with
// geometries served from serialized stores through an LRU cache of
// cacheSize decoded objects per dataset. The filter stages see objects
// with nil geometry, proving they never touch it.
func (e *Env) DataAccess(cacheSize int) ([]DataAccessRow, error) {
	pairs, err := e.CandidatePairs(ComplexityCombo)
	if err != nil {
		return nil, err
	}
	left, right := e.Datasets[ComplexityCombo[0]], e.Datasets[ComplexityCombo[1]]
	lpolys := make([]*geom.Polygon, left.Len())
	for i, o := range left.Objects {
		lpolys[i] = o.Poly
	}
	rpolys := make([]*geom.Polygon, right.Len())
	for i, o := range right.Objects {
		rpolys[i] = o.Poly
	}

	// Lite objects: approximations and MBRs only. Any filter-stage access
	// to exact geometry would nil-panic, which the tests rely on.
	lite := func(o *core.Object) *core.Object {
		return &core.Object{ID: o.ID, MBR: o.MBR, Approx: o.Approx}
	}
	litePairs := make([]Pair, len(pairs))
	liteCache := make(map[*core.Object]*core.Object)
	get := func(o *core.Object) *core.Object {
		if l, ok := liteCache[o]; ok {
			return l
		}
		l := lite(o)
		liteCache[o] = l
		return l
	}
	for i, p := range pairs {
		litePairs[i] = Pair{R: get(p.R), S: get(p.S)}
	}

	rows := make([]DataAccessRow, 0, core.NumMethods)
	for _, m := range core.Methods {
		ls := store.New(lpolys, cacheSize)
		rs := store.New(rpolys, cacheSize)
		var fetchErr error
		refiner := func(r, s *core.Object) de9im.Matrix {
			lp, err := ls.Geometry(r.ID)
			if err != nil && fetchErr == nil {
				fetchErr = err
			}
			sp, err := rs.Geometry(s.ID)
			if err != nil && fetchErr == nil {
				fetchErr = err
			}
			if fetchErr != nil {
				return de9im.Matrix{}
			}
			return de9im.Relate(geom.NewMultiPolygon(lp), geom.NewMultiPolygon(sp))
		}
		for _, p := range litePairs {
			core.FindRelationWith(m, p.R, p.S, refiner)
		}
		if fetchErr != nil {
			return nil, fmt.Errorf("harness: data access: %w", fetchErr)
		}
		lst, rst := ls.Stats(), rs.Stats()
		rows = append(rows, DataAccessRow{
			Method:    m,
			Loads:     lst.Loads + rst.Loads,
			Hits:      lst.Hits + rst.Hits,
			BytesRead: lst.BytesRead + rst.BytesRead,
			StoreSize: ls.StoredBytes() + rs.StoredBytes(),
		})
	}
	return rows, nil
}
