package harness

import (
	"time"

	"repro/internal/april"
	"repro/internal/chull"
	"repro/internal/core"
)

// RelatedWorkRow compares intermediate filters for *intersection*
// detection (the setting of Sec. 2.3): how many MBR-surviving pairs each
// filter settles without refinement, and what its approximations cost to
// build.
type RelatedWorkRow struct {
	Name      string
	Settled   int // definite intersect or definite disjoint verdicts
	Pairs     int
	BuildTime time.Duration // approximation preprocessing for both sides
}

// SettledPct returns the fraction of pairs decided by the filter.
func (r RelatedWorkRow) SettledPct() float64 {
	if r.Pairs == 0 {
		return 0
	}
	return 100 * float64(r.Settled) / float64(r.Pairs)
}

// RelatedWorkComparison evaluates the convex-approximation filter of
// Brinkhoff et al. [6] against the raster APRIL filter [14] on the
// OLE-OPE workload — the comparison motivating raster intermediate
// filters in the paper's related work.
func (e *Env) RelatedWorkComparison() ([]RelatedWorkRow, error) {
	pairs, err := e.CandidatePairs(ComplexityCombo)
	if err != nil {
		return nil, err
	}

	// Convex approximations are built per unique object.
	start := time.Now()
	chApprox := make(map[*core.Object]chull.Approx)
	for _, p := range pairs {
		for _, o := range []*core.Object{p.R, p.S} {
			if _, ok := chApprox[o]; !ok {
				chApprox[o] = chull.Build(o.Poly)
			}
		}
	}
	chBuild := time.Since(start)

	ch := RelatedWorkRow{Name: "convex hull + enclosed rect [6]", Pairs: len(pairs), BuildTime: chBuild}
	for _, p := range pairs {
		ra, sa := chApprox[p.R], chApprox[p.S]
		v := chull.IntersectionFilter(ra, sa)
		if v == april.Inconclusive {
			if chull.VertexProbe(p.R.Poly, sa) || chull.VertexProbe(p.S.Poly, ra) {
				v = april.DefiniteIntersect
			}
		}
		if v != april.Inconclusive {
			ch.Settled++
		}
	}

	// APRIL approximations already exist on the objects; re-time their
	// construction for a fair build-cost column.
	start = time.Now()
	seen := make(map[*core.Object]bool)
	for _, p := range pairs {
		for _, o := range []*core.Object{p.R, p.S} {
			if !seen[o] {
				seen[o] = true
				if _, err := e.Builder.Build(o.Poly); err != nil {
					return nil, err
				}
			}
		}
	}
	aprilBuild := time.Since(start)

	ap := RelatedWorkRow{Name: "APRIL raster intervals [14]", Pairs: len(pairs), BuildTime: aprilBuild}
	for _, p := range pairs {
		if april.IntersectionFilter(p.R.Approx, p.S.Approx) != april.Inconclusive {
			ap.Settled++
		}
	}
	return []RelatedWorkRow{ch, ap}, nil
}
