package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/de9im"
)

// testEnv builds a small but structurally complete environment once.
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		e, err := NewEnv(2026, 0.08, datagen.DefaultOrder)
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = e
	}
	return sharedEnv
}

func TestTable2(t *testing.T) {
	rows := env(t).Table2()
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	if rows[0].Name != "TL" || rows[9].Name != "OPN" {
		t.Errorf("row order: %s .. %s", rows[0].Name, rows[9].Name)
	}
	for _, r := range rows {
		if r.Polygons <= 0 || r.Vertices <= 0 || r.PolyKB <= 0 || r.MBRKB <= 0 || r.ApproxKB <= 0 {
			t.Errorf("row %s has empty fields: %+v", r.Name, r)
		}
	}
	var sb strings.Builder
	RenderTable2(&sb, rows)
	if !strings.Contains(sb.String(), "EU Lakes") {
		t.Error("render missing entity types")
	}
}

func TestTable3(t *testing.T) {
	rows, err := env(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	for _, r := range rows {
		if r.Pairs <= 0 {
			t.Errorf("combo %s has no candidate pairs", r.Combo)
		}
	}
	var sb strings.Builder
	RenderTable3(&sb, rows)
	if !strings.Contains(sb.String(), "OLE-OPE") {
		t.Error("render missing combos")
	}
}

func TestCandidatePairsCachedAndSymmetric(t *testing.T) {
	e := env(t)
	p1, err := e.CandidatePairs([2]string{"OLE", "OPE"})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.CandidatePairs([2]string{"OLE", "OPE"})
	if err != nil {
		t.Fatal(err)
	}
	if &p1[0] != &p2[0] {
		t.Error("pairs should be cached")
	}
	if _, err := e.CandidatePairs([2]string{"nope", "OPE"}); err == nil {
		t.Error("unknown dataset must error")
	}
	// Every pair's MBRs must actually intersect.
	for _, p := range p1 {
		if !p.R.MBR.Intersects(p.S.MBR) {
			t.Fatal("non-intersecting candidate pair")
		}
	}
}

// TestFig7Shape verifies the paper's headline result holds on the
// synthetic workload: P+C refines fewer pairs than APRIL, which refines
// fewer than ST2/OP2 (always 100%), and P+C throughput beats ST2 on every
// combination.
func TestFig7Shape(t *testing.T) {
	rows, err := env(t).Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		st2, op2, apr, pc := r.Stats[0], r.Stats[1], r.Stats[2], r.Stats[3]
		if st2.UndeterminedPct() != 100 {
			t.Errorf("%s: ST2 must refine all pairs, got %.1f%%", r.Combo, st2.UndeterminedPct())
		}
		if op2.Undetermined > st2.Undetermined {
			t.Errorf("%s: OP2 refined more than ST2", r.Combo)
		}
		if apr.Undetermined > op2.Undetermined {
			t.Errorf("%s: APRIL refined more than OP2", r.Combo)
		}
		if pc.Undetermined > apr.Undetermined {
			t.Errorf("%s: P+C refined more than APRIL", r.Combo)
		}
		// Methods must agree on the relation distribution.
		for _, other := range []MethodStats{op2, apr, pc} {
			if other.Relations != st2.Relations {
				t.Errorf("%s: %v relation histogram differs from ST2:\n%v\n%v",
					r.Combo, other.Method, other.Relations, st2.Relations)
			}
		}
	}
	var sb strings.Builder
	RenderFig7a(&sb, rows)
	RenderFig7b(&sb, rows)
	if !strings.Contains(sb.String(), "P+C") {
		t.Error("render missing method names")
	}
}

func TestComplexityLevels(t *testing.T) {
	levels, err := env(t).Table4(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 10 {
		t.Fatalf("got %d levels", len(levels))
	}
	total := 0
	prevMax := -1
	for i, lv := range levels {
		if lv.Level != i+1 {
			t.Errorf("level numbering wrong: %d", lv.Level)
		}
		if lv.MinV < prevMax {
			t.Errorf("level %d overlaps previous complexity range", lv.Level)
		}
		prevMax = lv.MaxV
		total += len(lv.Pairs)
		// Roughly equal population.
		if len(levels[0].Pairs) > 0 {
			ratio := float64(len(lv.Pairs)) / float64(len(levels[0].Pairs))
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("level %d population skewed: %d vs %d", lv.Level, len(lv.Pairs), len(levels[0].Pairs))
			}
		}
	}
	pairs, _ := env(t).CandidatePairs(ComplexityCombo)
	if total != len(pairs) {
		t.Errorf("levels cover %d of %d pairs", total, len(pairs))
	}
	var sb strings.Builder
	RenderTable4(&sb, levels)
	if !strings.Contains(sb.String(), "Complexity level") {
		t.Error("render header missing")
	}
}

// TestFig8Shape verifies the scalability trend: the P+C undetermined
// share falls sharply from the lowest to the highest complexity level.
func TestFig8Shape(t *testing.T) {
	rows, err := env(t).Fig8(10)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.PCUndetermined <= last.PCUndetermined {
		t.Errorf("undetermined share should fall with complexity: L1=%.1f%% L10=%.1f%%",
			first.PCUndetermined, last.PCUndetermined)
	}
	if last.PCUndetermined > 40 {
		t.Errorf("high-complexity pairs should mostly be settled by the filter, got %.1f%%", last.PCUndetermined)
	}
	var sb strings.Builder
	RenderFig8(&sb, rows)
	if !strings.Contains(sb.String(), "OP2-REF") {
		t.Error("render header missing")
	}
}

func TestFig9(t *testing.T) {
	cs, err := env(t).Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Relation != de9im.Inside {
		t.Errorf("case study relation = %v", cs.Relation)
	}
	if cs.RVerts <= 0 || cs.SVerts <= 0 || cs.RCIntervals <= 0 || cs.SCIntervals <= 0 {
		t.Errorf("case study stats empty: %+v", cs)
	}
	if cs.Speedup <= 1 {
		t.Errorf("P+C should beat OP2 on the showcase pair, speedup %.2f", cs.Speedup)
	}
	var sb strings.Builder
	RenderFig9(&sb, cs)
	if !strings.Contains(sb.String(), "Speedup") {
		t.Error("render missing speedup")
	}
}

// TestTable5Shape verifies relate_p beats find relation for every tested
// predicate, with meets far ahead (its non-satisfaction is cheap to prove).
func TestTable5Shape(t *testing.T) {
	rows, err := env(t).Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// relate_p must be at least competitive with find relation; the
		// small test workload leaves the timings noisy, so allow slack
		// (full-scale numbers are recorded in EXPERIMENTS.md).
		if r.RelateThroughput < 0.6*r.FindThroughput {
			t.Errorf("pred %v: relate_p (%.0f) much slower than find relation (%.0f)",
				r.Pred, r.RelateThroughput, r.FindThroughput)
		}
		// The specialized filter must refine no more pairs than the
		// general find-relation pipeline — the mechanism behind Table 5's
		// speedups (raw throughput ordering is too noisy to assert at
		// test scale; EXPERIMENTS.md records the full-scale numbers).
		if r.RelateRefined > r.FindRefined {
			t.Errorf("pred %v: relate_p refined %d pairs, find relation %d",
				r.Pred, r.RelateRefined, r.FindRefined)
		}
	}
	var sb strings.Builder
	RenderTable5(&sb, rows)
	if !strings.Contains(sb.String(), "meets") {
		t.Error("render missing predicates")
	}
}

// TestUniqueObjectsRefined: P+C must access fewer distinct geometries
// than OP2 (the data-access saving of Sec. 4.3).
func TestUniqueObjectsRefined(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	op2L, op2R := UniqueObjectsRefined(core.OP2, pairs)
	pcL, pcR := UniqueObjectsRefined(core.PC, pairs)
	if pcL+pcR >= op2L+op2R {
		t.Errorf("P+C accessed %d objects, OP2 %d: expected fewer", pcL+pcR, op2L+op2R)
	}
}
