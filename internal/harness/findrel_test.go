package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestRunFindRelationAttribution pins the timing-attribution fix: the
// per-pair verdict counts must partition the workload, and the stage
// timers must obey filter+refine <= elapsed with both sides populated
// whenever the corresponding stage ran. Under the old accounting a
// refined pair's filter time was charged entirely to RefineTime, which
// made FilterTime = elapsed - refine an overcount of the loop overhead.
func TestRunFindRelationAttribution(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range core.Methods {
		st := RunFindRelation(m, pairs)
		if st.MBRSettled+st.IFSettled+st.Undetermined != st.Pairs {
			t.Errorf("%v: verdicts %d+%d+%d != %d pairs",
				m, st.MBRSettled, st.IFSettled, st.Undetermined, st.Pairs)
		}
		if st.FilterTime <= 0 {
			t.Errorf("%v: FilterTime = %v", m, st.FilterTime)
		}
		if st.Undetermined > 0 && st.RefineTime <= 0 {
			t.Errorf("%v: RefineTime = %v with %d refined pairs", m, st.RefineTime, st.Undetermined)
		}
		if st.Undetermined == 0 && st.RefineTime != 0 {
			t.Errorf("%v: RefineTime = %v without refinements", m, st.RefineTime)
		}
		if st.FilterTime+st.RefineTime > st.Elapsed {
			t.Errorf("%v: stage times %v+%v exceed elapsed %v",
				m, st.FilterTime, st.RefineTime, st.Elapsed)
		}
	}
	// ST2 never consults the intermediate filter.
	if st := RunFindRelation(core.ST2, pairs); st.IFSettled != 0 {
		t.Errorf("ST2 settled %d pairs via IF", st.IFSettled)
	}
}

func TestMethodStatsPublish(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	st := RunFindRelation(core.PC, pairs)
	reg := obs.NewRegistry()
	st.Publish(reg, "sweep")

	name := func(stage string) string {
		return obs.Name("sweep_verdict_total", "method", "P+C", "stage", stage)
	}
	var sum int64
	for _, stage := range []string{"mbr", "if", "refine"} {
		sum += reg.Counter(name(stage)).Value()
	}
	if sum != int64(st.Pairs) {
		t.Errorf("published verdicts sum to %d, want %d", sum, st.Pairs)
	}
	if got := reg.Counter(name("refine")).Value(); got != int64(st.Undetermined) {
		t.Errorf("published refine count = %d, want %d", got, st.Undetermined)
	}
	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `sweep_pairs_total{method="P+C"}`) {
		t.Errorf("prometheus export missing labeled pair counter:\n%s", sb.String())
	}
}
