package harness

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func TestParallelMatchesSequential(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	seq := RunFindRelation(core.PC, pairs)
	for _, workers := range []int{1, 2, 7, 0} {
		par := RunFindRelationParallel(core.PC, pairs, workers)
		if par.Relations != seq.Relations {
			t.Fatalf("workers=%d: relation histogram differs\nseq: %v\npar: %v",
				workers, seq.Relations, par.Relations)
		}
		if par.Undetermined != seq.Undetermined {
			t.Fatalf("workers=%d: undetermined %d != %d", workers, par.Undetermined, seq.Undetermined)
		}
		if par.Pairs != seq.Pairs {
			t.Fatalf("workers=%d: pair count mismatch", workers)
		}
		if par.MBRSettled != seq.MBRSettled || par.IFSettled != seq.IFSettled {
			t.Fatalf("workers=%d: verdict split differs: mbr %d/%d if %d/%d",
				workers, par.MBRSettled, seq.MBRSettled, par.IFSettled, seq.IFSettled)
		}
	}
}

// TestParallelStageTimers: the parallel sweep must populate the stage
// timers (they were zero before the obs rebuild) with the same
// invariants as the serial path.
func TestParallelStageTimers(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	par := RunFindRelationParallel(core.PC, pairs, 4)
	if par.FilterTime <= 0 {
		t.Errorf("parallel FilterTime = %v, must be populated", par.FilterTime)
	}
	if par.Undetermined > 0 && par.RefineTime <= 0 {
		t.Errorf("parallel RefineTime = %v with %d refinements", par.RefineTime, par.Undetermined)
	}
	if par.MBRSettled+par.IFSettled+par.Undetermined != par.Pairs {
		t.Errorf("verdicts %d+%d+%d do not sum to %d pairs",
			par.MBRSettled, par.IFSettled, par.Undetermined, par.Pairs)
	}
}

func TestParallelSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single CPU")
	}
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	// OP2 refines everything, so it parallelizes near-linearly; allow a
	// loose bound to keep the test robust on loaded machines.
	seq := RunFindRelationParallel(core.OP2, pairs, 1)
	par := RunFindRelationParallel(core.OP2, pairs, 0)
	if par.Elapsed >= seq.Elapsed {
		t.Errorf("no speedup: sequential %v, parallel %v", seq.Elapsed, par.Elapsed)
	}
}

// TestParallelCtxVisit: the visitor sees every pair exactly once and the
// visited results agree with the serial sweep.
func TestParallelCtxVisit(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	visited := make([]int32, len(pairs))
	st, err := RunFindRelationParallelCtx(context.Background(), core.PC, pairs, 4,
		func(i int, res core.Result) { atomic.AddInt32(&visited[i], 1) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != len(pairs) {
		t.Fatalf("Pairs = %d, want %d", st.Pairs, len(pairs))
	}
	for i, n := range visited {
		if n != 1 {
			t.Fatalf("pair %d visited %d times", i, n)
		}
	}
}

// TestParallelCtxCancelled: a cancelled sweep must stop early, return the
// context error, and report only the pairs it actually evaluated.
func TestParallelCtxCancelled(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	st, err := RunFindRelationParallelCtx(ctx, core.PC, pairs, 2,
		func(i int, res core.Result) {
			if seen.Add(1) == 4 {
				cancel()
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if st.Pairs >= len(pairs) {
		t.Fatalf("cancelled sweep evaluated all %d pairs", st.Pairs)
	}
	if got := st.MBRSettled + st.IFSettled + st.Undetermined; got != st.Pairs {
		t.Fatalf("verdicts %d do not sum to evaluated pairs %d", got, st.Pairs)
	}

	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	st, err = RunFindRelationParallelCtx(pre, core.PC, pairs, 4, nil)
	if !errors.Is(err, context.Canceled) || st.Pairs != 0 {
		t.Fatalf("pre-cancelled sweep: pairs=%d err=%v", st.Pairs, err)
	}
}

func TestParallelEmptyAndTiny(t *testing.T) {
	st := RunFindRelationParallel(core.PC, nil, 4)
	if st.Pairs != 0 || st.Undetermined != 0 {
		t.Errorf("empty input: %+v", st)
	}
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	one := pairs[:1]
	st = RunFindRelationParallel(core.PC, one, 8)
	if st.Pairs != 1 {
		t.Errorf("single pair: %+v", st)
	}
}
