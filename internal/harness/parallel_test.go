package harness

import (
	"runtime"
	"testing"

	"repro/internal/core"
)

func TestParallelMatchesSequential(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	seq := RunFindRelation(core.PC, pairs)
	for _, workers := range []int{1, 2, 7, 0} {
		par := RunFindRelationParallel(core.PC, pairs, workers)
		if par.Relations != seq.Relations {
			t.Fatalf("workers=%d: relation histogram differs\nseq: %v\npar: %v",
				workers, seq.Relations, par.Relations)
		}
		if par.Undetermined != seq.Undetermined {
			t.Fatalf("workers=%d: undetermined %d != %d", workers, par.Undetermined, seq.Undetermined)
		}
		if par.Pairs != seq.Pairs {
			t.Fatalf("workers=%d: pair count mismatch", workers)
		}
		if par.MBRSettled != seq.MBRSettled || par.IFSettled != seq.IFSettled {
			t.Fatalf("workers=%d: verdict split differs: mbr %d/%d if %d/%d",
				workers, par.MBRSettled, seq.MBRSettled, par.IFSettled, seq.IFSettled)
		}
	}
}

// TestParallelStageTimers: the parallel sweep must populate the stage
// timers (they were zero before the obs rebuild) with the same
// invariants as the serial path.
func TestParallelStageTimers(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	par := RunFindRelationParallel(core.PC, pairs, 4)
	if par.FilterTime <= 0 {
		t.Errorf("parallel FilterTime = %v, must be populated", par.FilterTime)
	}
	if par.Undetermined > 0 && par.RefineTime <= 0 {
		t.Errorf("parallel RefineTime = %v with %d refinements", par.RefineTime, par.Undetermined)
	}
	if par.MBRSettled+par.IFSettled+par.Undetermined != par.Pairs {
		t.Errorf("verdicts %d+%d+%d do not sum to %d pairs",
			par.MBRSettled, par.IFSettled, par.Undetermined, par.Pairs)
	}
}

func TestParallelSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single CPU")
	}
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	// OP2 refines everything, so it parallelizes near-linearly; allow a
	// loose bound to keep the test robust on loaded machines.
	seq := RunFindRelationParallel(core.OP2, pairs, 1)
	par := RunFindRelationParallel(core.OP2, pairs, 0)
	if par.Elapsed >= seq.Elapsed {
		t.Errorf("no speedup: sequential %v, parallel %v", seq.Elapsed, par.Elapsed)
	}
}

func TestParallelEmptyAndTiny(t *testing.T) {
	st := RunFindRelationParallel(core.PC, nil, 4)
	if st.Pairs != 0 || st.Undetermined != 0 {
		t.Errorf("empty input: %+v", st)
	}
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	one := pairs[:1]
	st = RunFindRelationParallel(core.PC, one, 8)
	if st.Pairs != 1 {
		t.Errorf("single pair: %+v", st)
	}
}
