package harness

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func TestParallelMatchesSequential(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	seq := RunFindRelation(core.PC, pairs)
	for _, workers := range []int{1, 2, 7, 0} {
		par, _ := RunFindRelationParallel(core.PC, pairs, workers)
		if par.Relations != seq.Relations {
			t.Fatalf("workers=%d: relation histogram differs\nseq: %v\npar: %v",
				workers, seq.Relations, par.Relations)
		}
		if par.Undetermined != seq.Undetermined {
			t.Fatalf("workers=%d: undetermined %d != %d", workers, par.Undetermined, seq.Undetermined)
		}
		if par.Pairs != seq.Pairs {
			t.Fatalf("workers=%d: pair count mismatch", workers)
		}
		if par.MBRSettled != seq.MBRSettled || par.IFSettled != seq.IFSettled {
			t.Fatalf("workers=%d: verdict split differs: mbr %d/%d if %d/%d",
				workers, par.MBRSettled, seq.MBRSettled, par.IFSettled, seq.IFSettled)
		}
	}
}

// TestParallelStageTimers: the parallel sweep must populate the stage
// timers (they were zero before the obs rebuild) with the same
// invariants as the serial path.
func TestParallelStageTimers(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	par, _ := RunFindRelationParallel(core.PC, pairs, 4)
	if par.FilterTime <= 0 {
		t.Errorf("parallel FilterTime = %v, must be populated", par.FilterTime)
	}
	if par.Undetermined > 0 && par.RefineTime <= 0 {
		t.Errorf("parallel RefineTime = %v with %d refinements", par.RefineTime, par.Undetermined)
	}
	if par.MBRSettled+par.IFSettled+par.Undetermined != par.Pairs {
		t.Errorf("verdicts %d+%d+%d do not sum to %d pairs",
			par.MBRSettled, par.IFSettled, par.Undetermined, par.Pairs)
	}
}

func TestParallelSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single CPU")
	}
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	// OP2 refines everything, so it parallelizes near-linearly; allow a
	// loose bound to keep the test robust on loaded machines.
	seq, _ := RunFindRelationParallel(core.OP2, pairs, 1)
	par, _ := RunFindRelationParallel(core.OP2, pairs, 0)
	if par.Elapsed >= seq.Elapsed {
		t.Errorf("no speedup: sequential %v, parallel %v", seq.Elapsed, par.Elapsed)
	}
}

// TestParallelCtxVisit: the visitor sees every pair exactly once and the
// visited results agree with the serial sweep.
func TestParallelCtxVisit(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	visited := make([]int32, len(pairs))
	st, err := RunFindRelationParallelCtx(context.Background(), core.PC, pairs, 4,
		func(i int, res core.Result) { atomic.AddInt32(&visited[i], 1) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != len(pairs) {
		t.Fatalf("Pairs = %d, want %d", st.Pairs, len(pairs))
	}
	for i, n := range visited {
		if n != 1 {
			t.Fatalf("pair %d visited %d times", i, n)
		}
	}
}

// TestParallelCtxCancelled: a cancelled sweep must stop early, return the
// context error, and report only the pairs it actually evaluated.
func TestParallelCtxCancelled(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	st, err := RunFindRelationParallelCtx(ctx, core.PC, pairs, 2,
		func(i int, res core.Result) {
			if seen.Add(1) == 4 {
				cancel()
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if st.Pairs >= len(pairs) {
		t.Fatalf("cancelled sweep evaluated all %d pairs", st.Pairs)
	}
	if got := st.MBRSettled + st.IFSettled + st.Undetermined; got != st.Pairs {
		t.Fatalf("verdicts %d do not sum to evaluated pairs %d", got, st.Pairs)
	}

	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	st, err = RunFindRelationParallelCtx(pre, core.PC, pairs, 4, nil)
	if !errors.Is(err, context.Canceled) || st.Pairs != 0 {
		t.Fatalf("pre-cancelled sweep: pairs=%d err=%v", st.Pairs, err)
	}
}

func TestParallelEmptyAndTiny(t *testing.T) {
	st, _ := RunFindRelationParallel(core.PC, nil, 4)
	if st.Pairs != 0 || st.Undetermined != 0 {
		t.Errorf("empty input: %+v", st)
	}
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	one := pairs[:1]
	st, _ = RunFindRelationParallel(core.PC, one, 8)
	if st.Pairs != 1 {
		t.Errorf("single pair: %+v", st)
	}
}

// TestParallelPanicIsolated: a pair whose evaluation panics (here: a
// poisoned object with nil geometry forced into refinement) must come
// back as a *PanicError — not a process crash, not a deadlocked
// wg.Wait — and every healthy pair must still be evaluated.
func TestParallelPanicIsolated(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := RunFindRelationParallel(core.OP2, pairs, 4)

	poisoned := make([]Pair, len(pairs))
	copy(poisoned, pairs)
	// A fresh Object (never copy one: it caches its Prepared behind a
	// sync.Once) with the same filter inputs but no geometry: OP2 always
	// refines, and refining a nil polygon panics.
	bad := &core.Object{ID: pairs[3].R.ID, MBR: pairs[3].R.MBR, Approx: pairs[3].R.Approx}
	poisoned[3] = Pair{R: bad, S: pairs[3].S}

	st, err := RunFindRelationParallel(core.OP2, poisoned, 4)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Count != 1 || pe.Index != 3 {
		t.Fatalf("PanicError = count %d index %d, want 1/3", pe.Count, pe.Index)
	}
	if pe.Value == nil || pe.Stack == "" {
		t.Fatalf("PanicError missing evidence: value=%v stack %d bytes", pe.Value, len(pe.Stack))
	}
	if st.Pairs != clean.Pairs-1 {
		t.Fatalf("swept %d pairs, want %d (all but the poisoned one)", st.Pairs, clean.Pairs-1)
	}

	// Several poisoned pairs: all recovered, count accumulates.
	for _, i := range []int{0, 5, 9} {
		b := &core.Object{ID: pairs[i].R.ID, MBR: pairs[i].R.MBR, Approx: pairs[i].R.Approx}
		poisoned[i] = Pair{R: b, S: pairs[i].S}
	}
	_, err = RunFindRelationParallel(core.OP2, poisoned, 4)
	if !errors.As(err, &pe) || pe.Count != 4 {
		t.Fatalf("4 poisoned pairs: err = %v", err)
	}
}
