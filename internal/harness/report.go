package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
)

func tw(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// RenderTable2 prints the dataset description table.
func RenderTable2(w io.Writer, rows []Table2Row) {
	t := tw(w)
	fmt.Fprintln(t, "Dataset\tEntity type\t#polygons\t#vertices\tSize (KB)\tMBRs (KB)\tP+C (KB)")
	for _, r := range rows {
		fmt.Fprintf(t, "%s\t%s\t%d\t%d\t%.1f\t%.1f\t%.1f\n",
			r.Name, r.Entity, r.Polygons, r.Vertices, r.PolyKB, r.MBRKB, r.ApproxKB)
	}
	t.Flush()
}

// RenderTable3 prints candidate pair counts.
func RenderTable3(w io.Writer, rows []Table3Row) {
	t := tw(w)
	fmt.Fprintln(t, "Datasets\tCandidate pairs")
	for _, r := range rows {
		fmt.Fprintf(t, "%s\t%d\n", r.Combo, r.Pairs)
	}
	t.Flush()
}

// RenderFig7a prints the throughput chart data (pairs per second).
func RenderFig7a(w io.Writer, rows []Fig7Row) {
	t := tw(w)
	fmt.Fprint(t, "Combo")
	for _, m := range core.Methods {
		fmt.Fprintf(t, "\t%s (pairs/s)", m)
	}
	fmt.Fprintln(t)
	for _, r := range rows {
		fmt.Fprintf(t, "%s", r.Combo)
		for i := range core.Methods {
			fmt.Fprintf(t, "\t%.0f", r.Stats[i].Throughput())
		}
		fmt.Fprintln(t)
	}
	t.Flush()
}

// RenderFig7b prints the undetermined-pair percentages.
func RenderFig7b(w io.Writer, rows []Fig7Row) {
	t := tw(w)
	fmt.Fprint(t, "Combo")
	for _, m := range core.Methods {
		fmt.Fprintf(t, "\t%s (%% undet.)", m)
	}
	fmt.Fprintln(t)
	for _, r := range rows {
		fmt.Fprintf(t, "%s", r.Combo)
		for i := range core.Methods {
			fmt.Fprintf(t, "\t%.1f", r.Stats[i].UndeterminedPct())
		}
		fmt.Fprintln(t)
	}
	t.Flush()
}

// RenderTable4 prints the complexity-level grouping.
func RenderTable4(w io.Writer, levels []ComplexityLevel) {
	t := tw(w)
	fmt.Fprintln(t, "Complexity level\tSum of vertices\tPair count")
	for _, lv := range levels {
		fmt.Fprintf(t, "%d\t[%d,%d]\t%d\n", lv.Level, lv.MinV, lv.MaxV, len(lv.Pairs))
	}
	t.Flush()
}

// RenderFig8 prints the scalability series: filter effectiveness (8a) and
// stage costs (8b) per complexity level.
func RenderFig8(w io.Writer, rows []Fig8Row) {
	t := tw(w)
	fmt.Fprintln(t, "Level\tPairs\tP+C undet. (%)\tOP2-REF\tP+C-IF\tP+C-REF")
	for _, r := range rows {
		fmt.Fprintf(t, "%d\t%d\t%.1f\t%v\t%v\t%v\n",
			r.Level, r.Pairs, r.PCUndetermined, r.OP2RefTime, r.PCFilterTime, r.PCRefTime)
	}
	t.Flush()
}

// RenderFig9 prints the case study.
func RenderFig9(w io.Writer, cs CaseStudy) {
	t := tw(w)
	fmt.Fprintf(t, "Relation settled by the P+C filter:\t%v\n", cs.Relation)
	fmt.Fprintln(t, "\tLake (r)\tPark (s)")
	fmt.Fprintf(t, "Vertices\t%d\t%d\n", cs.RVerts, cs.SVerts)
	fmt.Fprintf(t, "MBR area\t%.4f\t%.4f\n", cs.RMBRArea, cs.SMBRArea)
	fmt.Fprintf(t, "C-intervals\t%d\t%d\n", cs.RCIntervals, cs.SCIntervals)
	fmt.Fprintf(t, "P-intervals\t%d\t%d\n", cs.RPIntervals, cs.SPIntervals)
	fmt.Fprintf(t, "P+C time/pair\t%v\n", cs.PCTime)
	fmt.Fprintf(t, "OP2 time/pair\t%v\n", cs.OP2Time)
	fmt.Fprintf(t, "Speedup\t%.1fx\n", cs.Speedup)
	t.Flush()
}

// RenderGridAblation prints the grid-order ablation.
func RenderGridAblation(w io.Writer, rows []GridAblationRow) {
	t := tw(w)
	fmt.Fprintln(t, "Grid order\tApprox (KB)\tP+C undet. (%)\trelate_meets refined\tBuild time")
	for _, r := range rows {
		fmt.Fprintf(t, "2^%d\t%.1f\t%.1f\t%d / %d\t%v\n",
			r.Order, r.ApproxKB, r.PCUndetPct, r.MeetsRefined, r.Pairs,
			r.BuildTime.Round(10*time.Millisecond))
	}
	t.Flush()
}

// RenderPListAblation prints the P-list / narrowing ablation.
func RenderPListAblation(w io.Writer, rows []PListAblationRow) {
	t := tw(w)
	fmt.Fprintln(t, "Variant\tUndetermined (%)\tThroughput (pairs/s)")
	for _, r := range rows {
		fmt.Fprintf(t, "%s\t%.1f\t%.0f\n", r.Variant, r.UndetPct, r.Throughput)
	}
	t.Flush()
}

// RenderTable5 prints find-relation vs relate_p throughput.
func RenderTable5(w io.Writer, rows []Table5Row) {
	t := tw(w)
	fmt.Fprintln(t, "Predicate\tfind relation (pairs/s)\trelate_p (pairs/s)")
	for _, r := range rows {
		fmt.Fprintf(t, "%v\t%.0f\t%.0f\n", r.Pred, r.FindThroughput, r.RelateThroughput)
	}
	t.Flush()
}

// RenderRelatedWork prints the intersection-filter comparison.
func RenderRelatedWork(w io.Writer, rows []RelatedWorkRow) {
	t := tw(w)
	fmt.Fprintln(t, "Filter\tSettled\tBuild time")
	for _, r := range rows {
		fmt.Fprintf(t, "%s\t%d / %d (%.1f%%)\t%v\n",
			r.Name, r.Settled, r.Pairs, r.SettledPct(), r.BuildTime.Round(time.Millisecond))
	}
	t.Flush()
}

// RenderDataAccess prints the geometry-I/O comparison.
func RenderDataAccess(w io.Writer, rows []DataAccessRow) {
	t := tw(w)
	fmt.Fprintln(t, "Method\tGeometry loads\tCache hits\tBytes read\t% of store")
	for _, r := range rows {
		fmt.Fprintf(t, "%v\t%d\t%d\t%d\t%.1f\n",
			r.Method, r.Loads, r.Hits, r.BytesRead,
			100*float64(r.BytesRead)/float64(r.StoreSize))
	}
	t.Flush()
}
