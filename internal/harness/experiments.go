package harness

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/de9im"
)

// Table2Row describes one dataset (Table 2 of the paper).
type Table2Row struct {
	Name     string
	Entity   string
	Polygons int
	Vertices int
	PolyKB   float64
	MBRKB    float64
	ApproxKB float64
}

// Table2 computes the dataset description table.
func (e *Env) Table2() []Table2Row {
	rows := make([]Table2Row, 0, len(e.Datasets))
	for _, name := range e.Suite.SortedNames() {
		ds := e.Datasets[name]
		s := ds.Sizes()
		rows = append(rows, Table2Row{
			Name:     name,
			Entity:   ds.Entity,
			Polygons: ds.Len(),
			Vertices: s.Vertices,
			PolyKB:   float64(s.Polygons) / 1024,
			MBRKB:    float64(s.MBRs) / 1024,
			ApproxKB: float64(s.Approx) / 1024,
		})
	}
	return rows
}

// Table3Row is one dataset combination with its candidate pair count.
type Table3Row struct {
	Combo string
	Pairs int
}

// Table3 computes the candidate pair counts of every combination.
func (e *Env) Table3() ([]Table3Row, error) {
	rows := make([]Table3Row, 0, len(datagen.Combos))
	for _, c := range datagen.Combos {
		pairs, err := e.CandidatePairs(c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Combo: datagen.ComboName(c), Pairs: len(pairs)})
	}
	return rows, nil
}

// Fig7Row holds the per-method stats of one combination: throughput
// (Fig. 7a) and undetermined percentage (Fig. 7b).
type Fig7Row struct {
	Combo string
	Stats [core.NumMethods]MethodStats
}

// Fig7 sweeps all four methods over every combination.
func (e *Env) Fig7() ([]Fig7Row, error) {
	rows := make([]Fig7Row, 0, len(datagen.Combos))
	for _, c := range datagen.Combos {
		pairs, err := e.CandidatePairs(c)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Combo: datagen.ComboName(c)}
		for i, m := range core.Methods {
			row.Stats[i] = RunFindRelation(m, pairs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ComplexityLevel is one decile of a workload by pair complexity
// (Table 4).
type ComplexityLevel struct {
	Level      int // 1-based
	MinV, MaxV int // complexity range (sum of vertex counts)
	Pairs      []Pair
}

// SplitComplexity divides pairs into n levels of (near) equal population
// by ascending complexity, as in Table 4.
func SplitComplexity(pairs []Pair, n int) []ComplexityLevel {
	sorted := make([]Pair, len(pairs))
	copy(sorted, pairs)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Complexity() < sorted[j].Complexity()
	})
	levels := make([]ComplexityLevel, 0, n)
	for i := 0; i < n; i++ {
		lo := i * len(sorted) / n
		hi := (i + 1) * len(sorted) / n
		if lo >= hi {
			continue
		}
		chunk := sorted[lo:hi]
		levels = append(levels, ComplexityLevel{
			Level: i + 1,
			MinV:  chunk[0].Complexity(),
			MaxV:  chunk[len(chunk)-1].Complexity(),
			Pairs: chunk,
		})
	}
	return levels
}

// ComplexityCombo is the scenario used for the scalability experiments
// (Sec. 4.3 uses OLE-OPE).
var ComplexityCombo = [2]string{"OLE", "OPE"}

// Table4 builds the complexity-level grouping of the OLE-OPE workload.
func (e *Env) Table4(nLevels int) ([]ComplexityLevel, error) {
	pairs, err := e.CandidatePairs(ComplexityCombo)
	if err != nil {
		return nil, err
	}
	return SplitComplexity(pairs, nLevels), nil
}

// Fig8Row reports, for one complexity level, the P+C undetermined share
// (Fig. 8a) and the stage costs of OP2 and P+C (Fig. 8b).
type Fig8Row struct {
	Level          int
	MinV, MaxV     int
	Pairs          int
	PCUndetermined float64 // % of pairs P+C sends to refinement
	OP2RefTime     time.Duration
	PCFilterTime   time.Duration
	PCRefTime      time.Duration
}

// Fig8 runs the scalability experiment over complexity levels.
func (e *Env) Fig8(nLevels int) ([]Fig8Row, error) {
	levels, err := e.Table4(nLevels)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig8Row, 0, len(levels))
	for _, lv := range levels {
		op2 := RunFindRelation(core.OP2, lv.Pairs)
		pc := RunFindRelation(core.PC, lv.Pairs)
		rows = append(rows, Fig8Row{
			Level:          lv.Level,
			MinV:           lv.MinV,
			MaxV:           lv.MaxV,
			Pairs:          len(lv.Pairs),
			PCUndetermined: pc.UndeterminedPct(),
			OP2RefTime:     op2.RefineTime,
			PCFilterTime:   pc.FilterTime,
			PCRefTime:      pc.RefineTime,
		})
	}
	return rows, nil
}

// CaseStudy is the Fig. 9 showcase: the most complex pair whose relation
// the P+C intermediate filter settles without refinement, with per-method
// timings.
type CaseStudy struct {
	Relation                 de9im.Relation
	RVerts, SVerts           int
	RMBRArea, SMBRArea       float64
	RPIntervals, RCIntervals int
	SPIntervals, SCIntervals int
	PCTime, OP2Time          time.Duration
	Speedup                  float64
}

// Fig9 finds the showcase pair in the OLE-OPE workload.
func (e *Env) Fig9() (CaseStudy, error) {
	pairs, err := e.CandidatePairs(ComplexityCombo)
	if err != nil {
		return CaseStudy{}, err
	}
	best := -1
	bestComplexity := -1
	for i, p := range pairs {
		res := core.FindRelation(core.PC, p.R, p.S)
		if res.Refined || res.Relation != de9im.Inside {
			continue
		}
		if c := p.Complexity(); c > bestComplexity {
			best, bestComplexity = i, c
		}
	}
	if best < 0 {
		return CaseStudy{}, fmt.Errorf("harness: no filter-settled inside pair found")
	}
	p := pairs[best]
	cs := CaseStudy{
		RVerts: p.R.Poly.NumVertices(), SVerts: p.S.Poly.NumVertices(),
		RMBRArea: p.R.MBR.Area(), SMBRArea: p.S.MBR.Area(),
		RPIntervals: len(p.R.Approx.P), RCIntervals: len(p.R.Approx.C),
		SPIntervals: len(p.S.Approx.P), SCIntervals: len(p.S.Approx.C),
	}
	// Repeat the single-pair measurement to get stable timings.
	const reps = 50
	t0 := time.Now()
	var rel de9im.Relation
	for i := 0; i < reps; i++ {
		rel = core.FindRelation(core.PC, p.R, p.S).Relation
	}
	cs.PCTime = time.Since(t0) / reps
	t0 = time.Now()
	for i := 0; i < reps; i++ {
		core.FindRelation(core.OP2, p.R, p.S)
	}
	cs.OP2Time = time.Since(t0) / reps
	cs.Relation = rel
	if cs.PCTime > 0 {
		cs.Speedup = float64(cs.OP2Time) / float64(cs.PCTime)
	}
	return cs, nil
}

// Table5Row compares find-relation throughput against relate_p throughput
// for one predicate (Table 5).
type Table5Row struct {
	Pred             de9im.Relation
	FindThroughput   float64
	RelateThroughput float64
	FindRefined      int // pairs find relation sent to refinement
	RelateRefined    int // pairs relate_p sent to refinement
}

// Table5Preds are the predicates evaluated in Table 5.
var Table5Preds = []de9im.Relation{de9im.Equals, de9im.Meets, de9im.Inside}

// Table5 measures find-relation vs relate_p on the OLE-OPE workload.
func (e *Env) Table5() ([]Table5Row, error) {
	pairs, err := e.CandidatePairs(ComplexityCombo)
	if err != nil {
		return nil, err
	}
	find := RunFindRelation(core.PC, pairs)
	rows := make([]Table5Row, 0, len(Table5Preds))
	for _, pred := range Table5Preds {
		refined := 0
		start := time.Now()
		for _, p := range pairs {
			if core.RelatePred(core.PC, p.R, p.S, pred).Refined {
				refined++
			}
		}
		elapsed := time.Since(start)
		rt := 0.0
		if elapsed > 0 {
			rt = float64(len(pairs)) / elapsed.Seconds()
		}
		rows = append(rows, Table5Row{
			Pred:             pred,
			FindThroughput:   find.Throughput(),
			RelateThroughput: rt,
			FindRefined:      find.Undetermined,
			RelateRefined:    refined,
		})
	}
	return rows, nil
}
