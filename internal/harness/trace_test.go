package harness

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestSlowPairTracking: both sweep shapes report the slowest pair, and
// the parallel merge preserves it across workers.
func TestSlowPairTracking(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	serial := RunFindRelation(core.PC, pairs)
	if serial.SlowPairTime <= 0 {
		t.Fatalf("serial sweep tracked no slow pair: %+v", serial)
	}
	if serial.SlowPair < 0 || serial.SlowPair >= len(pairs) {
		t.Fatalf("serial slow pair index %d out of range", serial.SlowPair)
	}

	par, err := RunFindRelationParallel(core.PC, pairs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.SlowPairTime <= 0 {
		t.Fatalf("parallel sweep tracked no slow pair: %+v", par)
	}
	if par.SlowPair < 0 || par.SlowPair >= len(pairs) {
		t.Fatalf("parallel slow pair index %d out of range", par.SlowPair)
	}
}

// TestParallelSweepWorkerSpans: a sampled trace context threads through
// the parallel sweep into per-worker spans with pair and stage children.
func TestParallelSweepWorkerSpans(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{Sample: 1, Capacity: 4, MaxSpans: 1 << 16})
	ctx, root := tr.Start(context.Background(), "sweep")
	if _, err := RunFindRelationParallelCtx(ctx, core.PC, pairs, 4, nil); err != nil {
		t.Fatal(err)
	}
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	td := traces[0]
	workers, pairSpans, stageSpans := 0, 0, 0
	for _, w := range td.Root.Children {
		if w.Name != "sweep.worker" {
			continue
		}
		workers++
		for _, p := range w.Children {
			if p.Name != "pair" {
				continue
			}
			pairSpans++
			stageSpans += len(p.Children)
		}
	}
	if workers == 0 || pairSpans == 0 || stageSpans == 0 {
		t.Fatalf("spans: workers=%d pairs=%d stages=%d (want all > 0)", workers, pairSpans, stageSpans)
	}
	if got := td.Root.Depth(); got < 4 {
		t.Fatalf("depth = %d, want >= 4 (root → worker → pair → stage)", got)
	}
	// Sum of per-worker pair counts covers the whole workload.
	var swept int64
	for _, w := range td.Root.Children {
		if w.Name == "sweep.worker" {
			if n, ok := w.IntAttr("pairs"); ok {
				swept += n
			}
		}
	}
	if swept != int64(len(pairs)) {
		t.Fatalf("workers swept %d pairs, want %d", swept, len(pairs))
	}
}

// TestParallelSweepUnsampledOverheadPath: an unsampled context runs the
// sweep through the nil-span path and still tracks the slow pair.
func TestParallelSweepUnsampledOverheadPath(t *testing.T) {
	pairs, err := env(t).CandidatePairs(ComplexityCombo)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{Sample: 0, Capacity: 4})
	ctx, root := tr.Start(context.Background(), "sweep")
	st, err := RunFindRelationParallelCtx(ctx, core.PC, pairs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if st.SlowPairTime <= 0 {
		t.Fatalf("unsampled sweep lost slow-pair tracking: %+v", st)
	}
	if got := len(tr.Traces()); got != 0 {
		t.Fatalf("unsampled fast trace kept: %d", got)
	}
}
