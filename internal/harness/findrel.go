package harness

import (
	"time"

	"repro/internal/core"
	"repro/internal/de9im"
	"repro/internal/obs"
)

// MethodStats aggregates one find-relation sweep of a method over a pair
// workload. It is built on the observed pipeline path: each pair's
// filter and refinement stages are timed separately at the source, so
// FilterTime no longer mis-attributes the filter work of refined pairs
// to RefineTime (the accounting Fig. 8b depends on).
type MethodStats struct {
	Method       core.Method
	Pairs        int
	MBRSettled   int // pairs settled by the MBR filter alone
	IFSettled    int // pairs settled by the intermediate filter
	Undetermined int // pairs that needed DE-9IM refinement (Fig. 7b)
	Elapsed      time.Duration
	// FilterTime and RefineTime are sums of per-pair stage durations; in
	// the parallel sweep they aggregate CPU time across workers and so
	// exceed Elapsed. Elapsed additionally covers loop overhead, so
	// FilterTime+RefineTime <= Elapsed per worker.
	FilterTime time.Duration // MBR + intermediate filter time
	RefineTime time.Duration // DE-9IM time
	Relations  [de9im.NumRelations]int
	// SlowPair is the index (into the sweep's pair slice) of the pair
	// with the largest filter+refine time, the seed of the slow-query
	// forensics; only meaningful when SlowPairTime > 0.
	SlowPair     int
	SlowPairTime time.Duration
}

// Throughput returns processed pairs per second (Fig. 7a's metric).
func (s MethodStats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Pairs) / s.Elapsed.Seconds()
}

// UndeterminedPct returns the percentage of pairs requiring refinement.
func (s MethodStats) UndeterminedPct() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return 100 * float64(s.Undetermined) / float64(s.Pairs)
}

// merge accumulates another partial sweep (e.g. one worker's share) into
// s. Elapsed is deliberately not merged: wall clock is the caller's.
func (s *MethodStats) merge(o MethodStats) {
	s.MBRSettled += o.MBRSettled
	s.IFSettled += o.IFSettled
	s.Undetermined += o.Undetermined
	s.FilterTime += o.FilterTime
	s.RefineTime += o.RefineTime
	if o.SlowPairTime > s.SlowPairTime {
		s.SlowPair, s.SlowPairTime = o.SlowPair, o.SlowPairTime
	}
	for i, n := range o.Relations {
		s.Relations[i] += n
	}
}

// Publish adds the sweep's counters to reg under prefix, labeled with
// the method: verdict counts, relation tallies, and stage nanoseconds.
func (s MethodStats) Publish(reg *obs.Registry, prefix string) {
	method := s.Method.String()
	reg.Counter(obs.Name(prefix+"_pairs_total", "method", method)).Add(int64(s.Pairs))
	reg.Counter(obs.Name(prefix+"_verdict_total", "method", method, "stage", core.VerdictMBR.String())).Add(int64(s.MBRSettled))
	reg.Counter(obs.Name(prefix+"_verdict_total", "method", method, "stage", core.VerdictIF.String())).Add(int64(s.IFSettled))
	reg.Counter(obs.Name(prefix+"_verdict_total", "method", method, "stage", core.VerdictRefine.String())).Add(int64(s.Undetermined))
	reg.Counter(obs.Name(prefix+"_filter_ns_total", "method", method)).Add(int64(s.FilterTime))
	reg.Counter(obs.Name(prefix+"_refine_ns_total", "method", method)).Add(int64(s.RefineTime))
	for rel, n := range s.Relations {
		if n != 0 {
			reg.Counter(obs.Name(prefix+"_relation_total", "method", method, "relation", de9im.Relation(rel).String())).Add(int64(n))
		}
	}
}

// statsSink accumulates observed pipeline events into a MethodStats.
// It is not safe for concurrent use: the parallel sweep gives each
// worker its own and merges afterwards. The last* fields replay the
// most recent event to the sweep loop — which, unlike the sink, knows
// the pair index — so slow-pair tracking and retroactive trace spans
// reuse the pipeline's own stage timings instead of reading the clock
// again.
type statsSink struct {
	st          *MethodStats
	lastVerdict core.Verdict
	lastFilter  time.Duration // -1 between begin() and the next event
	lastRefine  time.Duration
}

// begin marks the next evaluation pending, so a panicking pair (which
// emits no event) is not confused with the previous pair's timings.
func (k *statsSink) begin() { k.lastFilter, k.lastRefine = -1, 0 }

// settled reports whether the evaluation since begin() produced an
// event, and if so that pair's total stage time.
func (k *statsSink) settled() (time.Duration, bool) {
	if k.lastFilter < 0 {
		return 0, false
	}
	return k.lastFilter + k.lastRefine, true
}

func (k *statsSink) ObservePair(_ core.Method, res core.Result, v core.Verdict, filter, refine time.Duration) {
	switch v {
	case core.VerdictMBR:
		k.st.MBRSettled++
	case core.VerdictIF:
		k.st.IFSettled++
	default:
		k.st.Undetermined++
	}
	k.st.Relations[res.Relation]++
	k.st.FilterTime += filter
	k.st.RefineTime += refine
	k.lastVerdict, k.lastFilter, k.lastRefine = v, filter, refine
}

// noteSlow folds one settled pair into the stats' slow-pair slot.
func noteSlow(st *MethodStats, idx int, d time.Duration) {
	if d > st.SlowPairTime {
		st.SlowPair, st.SlowPairTime = idx, d
	}
}

// RunFindRelation sweeps method m over the pairs through the observed
// pipeline, timing the filter and refinement stages separately at the
// pair level (Fig. 8b reports them split). The sweep runs on a
// core.Sweeper, so the steady state allocates nothing per pair.
func RunFindRelation(m core.Method, pairs []Pair) MethodStats {
	st := MethodStats{Method: m, Pairs: len(pairs)}
	sink := &statsSink{st: &st}
	sweep := core.NewSweeper(m, sink)
	start := time.Now()
	for i, p := range pairs {
		sink.begin()
		sweep.FindRelation(p.R, p.S)
		if d, ok := sink.settled(); ok {
			noteSlow(&st, i, d)
		}
	}
	st.Elapsed = time.Since(start)
	return st
}

// UniqueObjectsRefined counts how many distinct objects of each side had
// their exact geometry accessed (refined pairs touch both geometries):
// the data-access saving reported in Sec. 4.3.
func UniqueObjectsRefined(m core.Method, pairs []Pair) (left, right int) {
	ls := make(map[int]bool)
	rs := make(map[int]bool)
	for _, p := range pairs {
		if core.FindRelation(m, p.R, p.S).Refined {
			ls[p.R.ID] = true
			rs[p.S.ID] = true
		}
	}
	return len(ls), len(rs)
}
