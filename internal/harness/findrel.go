package harness

import (
	"time"

	"repro/internal/core"
	"repro/internal/de9im"
)

// MethodStats aggregates one find-relation sweep of a method over a pair
// workload.
type MethodStats struct {
	Method       core.Method
	Pairs        int
	Undetermined int // pairs that needed DE-9IM refinement (Fig. 7b)
	Elapsed      time.Duration
	FilterTime   time.Duration // MBR + intermediate filter time
	RefineTime   time.Duration // DE-9IM time
	Relations    [de9im.NumRelations]int
}

// Throughput returns processed pairs per second (Fig. 7a's metric).
func (s MethodStats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Pairs) / s.Elapsed.Seconds()
}

// UndeterminedPct returns the percentage of pairs requiring refinement.
func (s MethodStats) UndeterminedPct() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return 100 * float64(s.Undetermined) / float64(s.Pairs)
}

// RunFindRelation sweeps method m over the pairs, timing the filter and
// refinement stages separately (Fig. 8b reports them split).
func RunFindRelation(m core.Method, pairs []Pair) MethodStats {
	st := MethodStats{Method: m, Pairs: len(pairs)}
	start := time.Now()
	var refine time.Duration
	for _, p := range pairs {
		t0 := time.Now()
		res := core.FindRelation(m, p.R, p.S)
		d := time.Since(t0)
		if res.Refined {
			st.Undetermined++
			refine += d // refinement dominates the per-pair time
		}
		st.Relations[res.Relation]++
	}
	st.Elapsed = time.Since(start)
	st.RefineTime = refine
	st.FilterTime = st.Elapsed - refine
	return st
}

// UniqueObjectsRefined counts how many distinct objects of each side had
// their exact geometry accessed (refined pairs touch both geometries):
// the data-access saving reported in Sec. 4.3.
func UniqueObjectsRefined(m core.Method, pairs []Pair) (left, right int) {
	ls := make(map[int]bool)
	rs := make(map[int]bool)
	for _, p := range pairs {
		if core.FindRelation(m, p.R, p.S).Refined {
			ls[p.R.ID] = true
			rs[p.S.ID] = true
		}
	}
	return len(ls), len(rs)
}
