package harness

import (
	"time"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/de9im"
	"repro/internal/join"
	"repro/internal/mbrrel"
)

// Ablations isolate the design choices DESIGN.md calls out: the global
// grid granularity, the contribution of the Progressive lists, and the
// value of definite filter verdicts versus mere candidate narrowing.

// GridAblationRow reports the effect of one grid order on the OLE-OPE
// workload.
type GridAblationRow struct {
	Order        uint
	ApproxKB     float64 // P+C storage of OLE + OPE
	PCUndetPct   float64 // find-relation pairs refined under P+C
	MeetsRefined int     // relate_meets pairs refined
	Pairs        int
	BuildTime    time.Duration // approximation construction time
}

// GridOrderAblation regenerates the OLE/OPE datasets at each grid order
// (same seed, identical polygons) and measures filter power vs
// approximation cost — the tradeoff behind the paper's 2^16 choice.
func GridOrderAblation(seed int64, scale float64, orders []uint) ([]GridAblationRow, error) {
	// The polygons are identical across orders; only the approximations
	// are rebuilt, and only for the two datasets the experiment uses.
	suite := datagen.NewSuite(seed, scale)
	rows := make([]GridAblationRow, 0, len(orders))
	for _, order := range orders {
		builder := april.NewBuilder(suite.Space, order)
		start := time.Now()
		left, err := dataset.Precompute("OLE", datagen.EntityTypes["OLE"], suite.Sets["OLE"], builder)
		if err != nil {
			return nil, err
		}
		right, err := dataset.Precompute("OPE", datagen.EntityTypes["OPE"], suite.Sets["OPE"], builder)
		if err != nil {
			return nil, err
		}
		build := time.Since(start)

		idPairs := join.Pairs(left.MBRs(), right.MBRs())
		pairs := make([]Pair, len(idPairs))
		for i, p := range idPairs {
			pairs[i] = Pair{R: left.Objects[p[0]], S: right.Objects[p[1]]}
		}
		st := RunFindRelation(core.PC, pairs)
		meets := 0
		for _, p := range pairs {
			if core.RelatePred(core.PC, p.R, p.S, de9im.Meets).Refined {
				meets++
			}
		}
		rows = append(rows, GridAblationRow{
			Order:        order,
			ApproxKB:     float64(left.Sizes().Approx+right.Sizes().Approx) / 1024,
			PCUndetPct:   st.UndeterminedPct(),
			MeetsRefined: meets,
			Pairs:        len(pairs),
			BuildTime:    build,
		})
	}
	return rows, nil
}

// StripProgressive returns copies of the pairs with empty P lists: the
// C-only variant that reduces P+C to APRIL-style evidence (plus
// candidate narrowing).
func StripProgressive(pairs []Pair) []Pair {
	out := make([]Pair, len(pairs))
	cache := make(map[*core.Object]*core.Object)
	strip := func(o *core.Object) *core.Object {
		if c, ok := cache[o]; ok {
			return c
		}
		c := &core.Object{ID: o.ID, Poly: o.Poly, MBR: o.MBR, Approx: o.Approx}
		c.Approx.P = nil
		cache[o] = c
		return c
	}
	for i, p := range pairs {
		out[i] = Pair{R: strip(p.R), S: strip(p.S)}
	}
	return out
}

// RunNarrowingOnly evaluates a pipeline that uses the MBR case and the
// intermediate filters only to narrow the candidate masks, always
// refining (except for the MBR shortcuts) — isolating how much of P+C's
// win comes from skipped refinements rather than fewer mask checks.
func RunNarrowingOnly(pairs []Pair) MethodStats {
	st := MethodStats{Method: core.PC, Pairs: len(pairs)}
	start := time.Now()
	for _, p := range pairs {
		c := mbrrel.Classify(p.R.MBR, p.S.MBR)
		if rel, ok := mbrrel.Definite(c); ok {
			st.Relations[rel]++
			continue
		}
		var out core.Outcome
		switch c {
		case mbrrel.EqualMBRs:
			out = core.IFEquals(p.R, p.S)
		case mbrrel.RInsideS:
			out = core.IFInside(p.R, p.S)
		case mbrrel.RContainsS:
			out = core.IFContains(p.R, p.S)
		default:
			out = core.IFIntersects(p.R, p.S)
		}
		cands := out.Candidates
		if out.Definite {
			cands = de9im.NewRelationSet(out.Relation)
		}
		st.Undetermined++
		rel := de9im.MostSpecific(core.Refine(p.R, p.S), cands)
		st.Relations[rel]++
	}
	st.Elapsed = time.Since(start)
	st.RefineTime = st.Elapsed
	return st
}

// PListAblationRow compares pipeline variants on one workload.
type PListAblationRow struct {
	Variant    string
	UndetPct   float64
	Throughput float64
}

// PListAblation measures the full P+C pipeline, the C-only variant, and
// the narrowing-only variant on the OLE-OPE workload.
func (e *Env) PListAblation() ([]PListAblationRow, error) {
	pairs, err := e.CandidatePairs(ComplexityCombo)
	if err != nil {
		return nil, err
	}
	full := RunFindRelation(core.PC, pairs)
	cOnly := RunFindRelation(core.PC, StripProgressive(pairs))
	narrow := RunNarrowingOnly(pairs)
	april := RunFindRelation(core.APRIL, pairs)
	return []PListAblationRow{
		{Variant: "P+C (full)", UndetPct: full.UndeterminedPct(), Throughput: full.Throughput()},
		{Variant: "C-only (P stripped)", UndetPct: cOnly.UndeterminedPct(), Throughput: cOnly.Throughput()},
		{Variant: "narrowing-only", UndetPct: narrow.UndeterminedPct(), Throughput: narrow.Throughput()},
		{Variant: "APRIL baseline", UndetPct: april.UndeterminedPct(), Throughput: april.Throughput()},
	}, nil
}
