// Package trace is a zero-dependency, request-scoped span tracer for
// the serving hot path. Where internal/obs answers "how is the fleet
// doing" with counters and histograms, trace answers "where did THIS
// request's time go": each request carries a tree of nested spans —
// handler → sweep worker → per-pair settling stages — with monotonic
// start times, durations and typed attributes (pipeline, dataset pair,
// MBR-relation class, verdict stage, pairs pruned/refined).
//
// Sampling is two-tier so tracing can stay on in production:
//
//   - probabilistic: a fraction (Config.Sample) of requests record the
//     full span tree;
//   - always-sample-slow: every request gets a root span (one small
//     allocation), and any request whose total duration reaches
//     Config.SlowThreshold is kept even when the probabilistic coin
//     said no — slow outliers are never invisible. Unsampled slow
//     traces carry only the root span plus whatever forensic
//     attributes the sweep attached to it (slowest pair, counts).
//
// Completed traces land in a lock-light ring buffer (atomic slot
// pointers, no mutex on the publish path) and are exported as JSON or
// Chrome chrome://tracing format (see export.go). A nil *Tracer and a
// nil *Span are both fully inert: every method is nil-receiver safe, so
// instrumented call sites cost a pointer check when tracing is off —
// BenchmarkTraceOverhead guards that this stays under 5 % of the plain
// pipeline.
package trace

import (
	"context"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Tracer; zero values select the documented defaults.
type Config struct {
	// Sample is the probability (0..1) that a request records its full
	// span tree. 0 disables probabilistic sampling (slow capture still
	// works); 1 records everything.
	Sample float64
	// SlowThreshold keeps any trace whose root duration reaches it,
	// sampled or not, and reports it to the OnSlow hook. 0 disables
	// slow capture.
	SlowThreshold time.Duration
	// Capacity is the ring buffer size in completed traces (default 256).
	Capacity int
	// MaxSpans caps spans per trace (default 512): a join sweeping 10^5
	// pairs must not materialize 10^5 spans. Children beyond the budget
	// are dropped and counted on the trace.
	MaxSpans int
}

func (c Config) withDefaults() Config {
	if c.Sample < 0 {
		c.Sample = 0
	}
	if c.Sample > 1 {
		c.Sample = 1
	}
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	return c
}

// Stats is a point-in-time copy of a tracer's own accounting.
type Stats struct {
	// Started counts root spans created (every request when enabled).
	Started int64 `json:"started"`
	// Kept counts traces published to the ring (sampled or slow).
	Kept int64 `json:"kept"`
	// Slow counts traces kept because they crossed SlowThreshold.
	Slow int64 `json:"slow"`
	// DroppedSpans counts children discarded by the MaxSpans budget.
	DroppedSpans int64 `json:"dropped_spans"`
}

// Tracer owns the sampling policy and the ring of completed traces.
// A nil *Tracer is valid and disables tracing entirely.
type Tracer struct {
	cfg Config

	// ring holds completed traces: slot i%len receives publication i.
	// Slots are atomic pointers, so publishers never take a lock and a
	// concurrent snapshot sees each slot either old or new, never torn.
	ring []atomic.Pointer[TraceData]
	next atomic.Uint64

	onSlow atomic.Pointer[func(TraceData)]

	started      atomic.Int64
	kept         atomic.Int64
	slow         atomic.Int64
	droppedSpans atomic.Int64
}

// New creates a tracer with the given config.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{cfg: cfg, ring: make([]atomic.Pointer[TraceData], cfg.Capacity)}
}

// SlowThreshold returns the configured slow-trace threshold (0 when the
// tracer is nil or slow capture is off).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.SlowThreshold
}

// OnSlow installs fn to be called synchronously (from the goroutine
// ending the root span) with every slow trace — the slow-query log
// hook. Safe to call at any time; nil-tracer safe.
func (t *Tracer) OnSlow(fn func(TraceData)) {
	if t == nil {
		return
	}
	t.onSlow.Store(&fn)
}

// Stats returns the tracer's own counters (zero for a nil tracer).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started:      t.started.Load(),
		Kept:         t.kept.Load(),
		Slow:         t.slow.Load(),
		DroppedSpans: t.droppedSpans.Load(),
	}
}

// Start opens a request-scoped root span and decides, once for the
// whole request, whether the trace records child spans. The returned
// context carries the span for StartChild/FromContext further down the
// stack. A nil tracer returns (ctx, nil) unchanged.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	return t.start(ctx, name, 0)
}

// StartRemote is Start adopting a remote parent's trace id: the new
// root span (and all its children) carries the caller's id instead of
// a fresh one, so spans recorded on both sides of an RPC — the router's
// scatter spans and the shard's handler tree — correlate by id across
// process boundaries. The sampling decision stays local: each process
// applies its own policy, and slow capture works regardless. An id of
// 0 falls back to Start.
func (t *Tracer) StartRemote(ctx context.Context, name string, parent uint64) (context.Context, *Span) {
	return t.start(ctx, name, parent)
}

func (t *Tracer) start(ctx context.Context, name string, id uint64) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	t.started.Add(1)
	if id == 0 {
		id = rand.Uint64() | 1 // never 0: 0 means "no trace" to exemplars
	}
	tr := &traceState{
		tracer:  t,
		id:      id,
		sampled: t.cfg.Sample > 0 && rand.Float64() < t.cfg.Sample,
	}
	sp := &Span{name: name, start: time.Now(), trace: tr}
	tr.root = sp
	tr.spans.Store(1)
	return ContextWithSpan(ctx, sp), sp
}

// ParseID parses a propagated trace id (the hex form FormatID renders,
// leading zeros accepted); reports false for "", malformed tokens and
// the reserved id 0.
func ParseID(s string) (uint64, bool) {
	if s == "" {
		return 0, false
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil || id == 0 {
		return 0, false
	}
	return id, true
}

// traceState is the per-request shared state behind a span tree.
type traceState struct {
	tracer  *Tracer
	id      uint64
	sampled bool
	root    *Span
	spans   atomic.Int64 // span budget accounting
	dropped atomic.Int64
}

// Span is one timed operation in a trace. The zero value is not used;
// spans come from Tracer.Start, Child, ChildAt or StartChild. A nil
// *Span is inert: every method is safe and free on it.
type Span struct {
	name  string
	start time.Time
	trace *traceState

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	dur      time.Duration
	ended    bool
}

// Attr is one span attribute; Value is a string or an int64.
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// Recording reports whether child spans of s are recorded (the trace
// won the sampling coin). Root spans of unsampled traces return false
// but still measure and still accept attributes.
func (s *Span) Recording() bool { return s != nil && s.trace.sampled }

// TraceID returns the trace's 64-bit id, 0 for a nil span.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.trace.id
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// IntAttr reads back an integer attribute (the last write wins).
func (s *Span) IntAttr(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			if v, ok := s.attrs[i].Value.(int64); ok {
				return v, true
			}
		}
	}
	return 0, false
}

// Child opens a live child span. Returns nil (inert) when s is nil, the
// trace is not recording, or the span budget is spent; callers never
// need to check.
func (s *Span) Child(name string) *Span {
	if !s.Recording() {
		return nil
	}
	return s.newChild(name, time.Now(), -1)
}

// ChildAt attaches an already-completed child span with an explicit
// start and duration — how the sweep records per-pair settling stages
// retroactively from durations measured by the pipeline sink, without
// a second set of clock reads.
func (s *Span) ChildAt(name string, start time.Time, dur time.Duration) *Span {
	if s == nil || !s.trace.sampled {
		return nil
	}
	if dur < 0 {
		dur = 0
	}
	return s.newChild(name, start, dur)
}

func (s *Span) newChild(name string, start time.Time, dur time.Duration) *Span {
	tr := s.trace
	if tr.spans.Add(1) > int64(tr.tracer.cfg.MaxSpans) {
		tr.spans.Add(-1)
		tr.dropped.Add(1)
		tr.tracer.droppedSpans.Add(1)
		return nil
	}
	c := &Span{name: name, start: start, trace: tr}
	if dur >= 0 {
		c.dur = dur
		c.ended = true
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span and returns its duration. Ending the root span
// finishes the trace: if it was sampled or crossed the slow threshold
// it is published to the ring (and the OnSlow hook for slow ones).
// Idempotent; nil-safe.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if s.ended {
		d := s.dur
		s.mu.Unlock()
		return d
	}
	s.ended = true
	s.dur = time.Since(s.start)
	d := s.dur
	s.mu.Unlock()
	if s.trace.root == s {
		s.trace.tracer.finish(s.trace)
	}
	return d
}

func (t *Tracer) finish(tr *traceState) {
	d := tr.root.dur
	slow := t.cfg.SlowThreshold > 0 && d >= t.cfg.SlowThreshold
	if !tr.sampled && !slow {
		return
	}
	td := tr.data()
	td.Slow = slow
	t.kept.Add(1)
	i := t.next.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(&td)
	if slow {
		t.slow.Add(1)
		if fn := t.onSlow.Load(); fn != nil && *fn != nil {
			(*fn)(td)
		}
	}
}

// --- context plumbing ---

type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the current span (ctx
// unchanged when s is nil).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil when ctx carries none.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartChild opens a child of ctx's current span and returns a context
// carrying it. When nothing records, returns (ctx, nil) at the cost of
// one context lookup.
func StartChild(ctx context.Context, name string) (context.Context, *Span) {
	c := FromContext(ctx).Child(name)
	if c == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, c), c
}
