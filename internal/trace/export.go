package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// SpanData is the immutable, serializable form of one span.
type SpanData struct {
	Name string `json:"name"`
	// StartUnixNs is the wall-clock start; durations are measured on the
	// monotonic clock before conversion.
	StartUnixNs int64      `json:"start_unix_ns"`
	DurNs       int64      `json:"dur_ns"`
	Attrs       []Attr     `json:"attrs,omitempty"`
	Children    []SpanData `json:"children,omitempty"`
}

// Depth returns the number of nested span levels rooted at d (a lone
// span is depth 1).
func (d SpanData) Depth() int {
	max := 0
	for _, c := range d.Children {
		if n := c.Depth(); n > max {
			max = n
		}
	}
	return 1 + max
}

// SpanCount returns the total spans in the tree rooted at d.
func (d SpanData) SpanCount() int {
	n := 1
	for _, c := range d.Children {
		n += c.SpanCount()
	}
	return n
}

// Attr returns the value of the named attribute ("" when absent),
// searching d's attributes only, last write wins.
func (d SpanData) Attr(key string) string {
	for i := len(d.Attrs) - 1; i >= 0; i-- {
		if d.Attrs[i].Key == key {
			return fmt.Sprint(d.Attrs[i].Value)
		}
	}
	return ""
}

// IntAttr returns the named integer attribute.
func (d SpanData) IntAttr(key string) (int64, bool) {
	for i := len(d.Attrs) - 1; i >= 0; i-- {
		if d.Attrs[i].Key == key {
			switch v := d.Attrs[i].Value.(type) {
			case int64:
				return v, true
			case float64: // round-tripped through JSON
				return int64(v), true
			}
		}
	}
	return 0, false
}

// TraceData is the immutable, serializable form of one completed trace.
type TraceData struct {
	ID      string   `json:"id"` // 16 hex digits
	Sampled bool     `json:"sampled"`
	Slow    bool     `json:"slow,omitempty"`
	DurNs   int64    `json:"dur_ns"`
	Dropped int64    `json:"dropped_spans,omitempty"`
	Root    SpanData `json:"root"`
}

// FormatID renders a trace id the way exports do.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// data converts the finished span tree. Spans are locked one at a time;
// by the time the root ends, workers have ended their subtrees, and a
// straggler mutating concurrently sees a consistent (if partial) copy.
func (tr *traceState) data() TraceData {
	return TraceData{
		ID:      FormatID(tr.id),
		Sampled: tr.sampled,
		DurNs:   int64(tr.root.dur),
		Dropped: tr.dropped.Load(),
		Root:    tr.root.data(),
	}
}

func (s *Span) data() SpanData {
	s.mu.Lock()
	d := SpanData{
		Name:        s.name,
		StartUnixNs: s.start.UnixNano(),
		DurNs:       int64(s.dur),
	}
	if !s.ended {
		d.DurNs = int64(time.Since(s.start))
	}
	if len(s.attrs) > 0 {
		d.Attrs = append([]Attr(nil), s.attrs...)
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.data())
	}
	return d
}

// Traces returns the buffered completed traces, oldest first. Nil-safe.
func (t *Tracer) Traces() []TraceData {
	if t == nil {
		return nil
	}
	n := t.next.Load()
	size := uint64(len(t.ring))
	lo := uint64(0)
	if n > size {
		lo = n - size
	}
	out := make([]TraceData, 0, n-lo)
	for i := lo; i < n; i++ {
		if td := t.ring[i%size].Load(); td != nil {
			out = append(out, *td)
		}
	}
	return out
}

// TraceByID returns one buffered trace by its hex id.
func (t *Tracer) TraceByID(id string) (TraceData, bool) {
	for _, td := range t.Traces() {
		if td.ID == id {
			return td, true
		}
	}
	return TraceData{}, false
}

// --- Chrome trace format ---

// chromeEvent is one complete ("X") event of the Chrome trace event
// format, loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders traces in the Chrome trace event format: one
// pid per trace, one tid lane per depth-1 subtree (so concurrent sweep
// workers display as parallel tracks instead of interleaving).
func WriteChromeTrace(w io.Writer, traces []TraceData) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for pi, td := range traces {
		args := map[string]any{"trace_id": td.ID, "sampled": td.Sampled}
		if td.Slow {
			args["slow"] = true
		}
		emitChrome(&out.TraceEvents, td.Root, pi+1, 0, args)
		for li, c := range td.Root.Children {
			emitChrome(&out.TraceEvents, c, pi+1, li+1, nil)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// emitChrome writes span (without recursing past depth-1 children when
// called on a root: the caller assigns those their own lanes) and its
// whole subtree into the same lane.
func emitChrome(events *[]chromeEvent, d SpanData, pid, tid int, extra map[string]any) {
	args := extra
	if len(d.Attrs) > 0 {
		if args == nil {
			args = make(map[string]any, len(d.Attrs))
		}
		for _, a := range d.Attrs {
			args[a.Key] = a.Value
		}
	}
	*events = append(*events, chromeEvent{
		Name: d.Name, Cat: "stj", Ph: "X",
		TS:  float64(d.StartUnixNs) / 1e3,
		Dur: float64(d.DurNs) / 1e3,
		PID: pid, TID: tid, Args: args,
	})
	if tid == 0 {
		return // root lane: depth-1 children get their own lanes
	}
	for _, c := range d.Children {
		emitChrome(events, c, pid, tid, nil)
	}
}

// --- HTTP surface ---

// Handler serves the trace buffer for the debug listener:
//
//	GET .../traces                 JSON array of buffered traces
//	GET .../traces?id=<hex>        one trace
//	GET .../traces?format=chrome   Chrome trace event format (all, or one
//	                               with id=) — load in chrome://tracing
//	GET .../traces?stats=1         tracer counters
//
// Nil-safe: a nil tracer serves empty results.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if q.Get("stats") != "" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(t.Stats())
			return
		}
		traces := t.Traces()
		if id := q.Get("id"); id != "" {
			td, ok := t.TraceByID(id)
			if !ok {
				http.Error(w, fmt.Sprintf("no buffered trace %q", id), http.StatusNotFound)
				return
			}
			traces = []TraceData{td}
		}
		if q.Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			WriteChromeTrace(w, traces)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(traces)
	})
}
