package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// always returns a tracer that records every request.
func always(capacity int) *Tracer {
	return New(Config{Sample: 1, Capacity: capacity})
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "root")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("nil tracer put a span in the context")
	}
	// Every span method must be nil-receiver safe.
	sp.SetStr("k", "v")
	sp.SetInt("n", 1)
	if sp.Recording() {
		t.Fatal("nil span records")
	}
	if sp.TraceID() != 0 {
		t.Fatal("nil span has a trace id")
	}
	if c := sp.Child("x"); c != nil {
		t.Fatal("nil span produced a child")
	}
	if c := sp.ChildAt("x", time.Now(), time.Millisecond); c != nil {
		t.Fatal("nil span produced a retroactive child")
	}
	if d := sp.End(); d != 0 {
		t.Fatal("nil span measured a duration")
	}
	if got := tr.Traces(); got != nil {
		t.Fatalf("nil tracer has traces: %v", got)
	}
	if s := tr.Stats(); s != (Stats{}) {
		t.Fatalf("nil tracer has stats: %+v", s)
	}
	tr.OnSlow(func(TraceData) {})
}

func TestSpanNestingAndAttrs(t *testing.T) {
	tr := always(8)
	ctx, root := tr.Start(context.Background(), "http.join")
	if !root.Recording() {
		t.Fatal("sample=1 trace not recording")
	}
	root.SetStr("left", "OLE")
	root.SetInt("pairs", 42)

	cctx, worker := StartChild(ctx, "sweep.worker")
	if worker == nil || FromContext(cctx) != worker {
		t.Fatal("StartChild did not thread the child span")
	}
	pair := worker.Child("pair")
	pair.SetStr("stage", "refine")
	now := time.Now()
	pair.ChildAt("filter", now.Add(-3*time.Microsecond), 2*time.Microsecond)
	pair.ChildAt("refine", now.Add(-time.Microsecond), time.Microsecond)
	pair.End()
	worker.End()
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	td := traces[0]
	if !td.Sampled || td.Slow {
		t.Fatalf("trace flags = %+v", td)
	}
	if got := td.Root.Depth(); got != 4 {
		t.Fatalf("depth = %d, want 4 (root→worker→pair→stage)", got)
	}
	if got := td.Root.SpanCount(); got != 5 {
		t.Fatalf("span count = %d, want 5", got)
	}
	if td.Root.Attr("left") != "OLE" {
		t.Fatalf("root attrs = %+v", td.Root.Attrs)
	}
	if v, ok := td.Root.IntAttr("pairs"); !ok || v != 42 {
		t.Fatalf("pairs attr = %d, %v", v, ok)
	}
	ps := td.Root.Children[0].Children[0]
	if ps.Name != "pair" || ps.Attr("stage") != "refine" {
		t.Fatalf("pair span = %+v", ps)
	}
	if len(ps.Children) != 2 || ps.Children[0].DurNs != int64(2*time.Microsecond) {
		t.Fatalf("stage children = %+v", ps.Children)
	}
	if v, ok := td.Root.IntAttr("missing"); ok || v != 0 {
		t.Fatal("IntAttr invented a value")
	}
}

func TestProbabilisticSamplingDropsFastTraces(t *testing.T) {
	tr := New(Config{Sample: 0, Capacity: 8})
	_, root := tr.Start(context.Background(), "req")
	if root == nil {
		t.Fatal("root span missing: slow capture needs it")
	}
	if root.Recording() {
		t.Fatal("sample=0 trace recording")
	}
	if c := root.Child("x"); c != nil {
		t.Fatal("unsampled trace produced a child span")
	}
	root.End()
	if got := tr.Traces(); len(got) != 0 {
		t.Fatalf("unsampled fast trace kept: %v", got)
	}
	st := tr.Stats()
	if st.Started != 1 || st.Kept != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAlwaysSampleSlow(t *testing.T) {
	var hooked []TraceData
	tr := New(Config{Sample: 0, SlowThreshold: time.Millisecond, Capacity: 8})
	tr.OnSlow(func(td TraceData) { hooked = append(hooked, td) })

	// Fast request: dropped.
	_, fast := tr.Start(context.Background(), "fast")
	fast.End()
	// Slow request: kept (root-only) and reported.
	_, slow := tr.Start(context.Background(), "slow")
	slow.SetInt("slow_pair_index", 7)
	time.Sleep(2 * time.Millisecond)
	slow.End()

	traces := tr.Traces()
	if len(traces) != 1 || !traces[0].Slow || traces[0].Sampled {
		t.Fatalf("traces = %+v", traces)
	}
	if traces[0].Root.Name != "slow" {
		t.Fatalf("kept the wrong trace: %+v", traces[0])
	}
	if v, _ := traces[0].Root.IntAttr("slow_pair_index"); v != 7 {
		t.Fatal("forensic attr lost on unsampled slow trace")
	}
	if len(hooked) != 1 || hooked[0].ID != traces[0].ID {
		t.Fatalf("OnSlow hook saw %+v", hooked)
	}
	if st := tr.Stats(); st.Slow != 1 || st.Kept != 1 || st.Started != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := always(4)
	for i := 0; i < 10; i++ {
		_, sp := tr.Start(context.Background(), fmt.Sprintf("req-%d", i))
		sp.End()
	}
	traces := tr.Traces()
	if len(traces) != 4 {
		t.Fatalf("buffered = %d, want 4", len(traces))
	}
	for i, td := range traces {
		want := fmt.Sprintf("req-%d", 6+i)
		if td.Root.Name != want {
			t.Fatalf("slot %d = %s, want %s (oldest-first)", i, td.Root.Name, want)
		}
	}
}

func TestMaxSpansBudget(t *testing.T) {
	tr := New(Config{Sample: 1, Capacity: 4, MaxSpans: 4})
	_, root := tr.Start(context.Background(), "req")
	made := 0
	for i := 0; i < 10; i++ {
		if c := root.Child("c"); c != nil {
			made++
			c.End()
		}
	}
	root.End()
	if made != 3 { // root consumes 1 of the 4-span budget
		t.Fatalf("children created = %d, want 3", made)
	}
	td := tr.Traces()[0]
	if td.Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", td.Dropped)
	}
	if st := tr.Stats(); st.DroppedSpans != 7 {
		t.Fatalf("stats dropped = %d", st.DroppedSpans)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := always(4)
	_, root := tr.Start(context.Background(), "req")
	d1 := root.End()
	d2 := root.End()
	if d1 != d2 {
		t.Fatalf("End not idempotent: %v then %v", d1, d2)
	}
	if len(tr.Traces()) != 1 {
		t.Fatal("double End published twice")
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := always(8)
	ctx, root := tr.Start(context.Background(), "http.join")
	_, w1 := StartChild(ctx, "worker-0")
	w1.Child("pair").End()
	w1.End()
	_, w2 := StartChild(ctx, "worker-1")
	w2.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Traces()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(out.TraceEvents))
	}
	lanes := map[int]bool{}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event phase = %q, want X", ev.Ph)
		}
		lanes[ev.TID] = true
	}
	// Root on lane 0, the two workers on their own lanes.
	if len(lanes) != 3 {
		t.Fatalf("lanes = %v, want 3 distinct", lanes)
	}
	if out.TraceEvents[0].Args["trace_id"] == "" {
		t.Fatal("root event lost its trace id")
	}
}

func TestHandler(t *testing.T) {
	tr := always(8)
	ctx, root := tr.Start(context.Background(), "http.relate")
	_, c := StartChild(ctx, "pair")
	c.End()
	root.End()
	id := tr.Traces()[0].ID

	h := tr.Handler()
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}

	rec := get("/debug/traces")
	var list []TraceData
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil || len(list) != 1 {
		t.Fatalf("list = %v err = %v", list, err)
	}
	if list[0].Root.Children[0].Name != "pair" {
		t.Fatalf("round-tripped trace = %+v", list[0])
	}

	rec = get("/debug/traces?id=" + id)
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil || len(list) != 1 || list[0].ID != id {
		t.Fatalf("by id: %v err = %v", list, err)
	}
	if rec = get("/debug/traces?id=ffffffffffffffff"); rec.Code != 404 {
		t.Fatalf("missing id code = %d", rec.Code)
	}

	rec = get("/debug/traces?format=chrome")
	var chrome map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}
	if _, ok := chrome["traceEvents"]; !ok {
		t.Fatal("chrome export missing traceEvents")
	}

	rec = get("/debug/traces?stats=1")
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || st.Started != 1 {
		t.Fatalf("stats = %+v err = %v", st, err)
	}

	var nilTracer *Tracer
	rec = httptest.NewRecorder()
	nilTracer.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("nil tracer handler code = %d", rec.Code)
	}
}

// TestConcurrentSpanWriters is the race gate for the span lifecycle:
// many goroutines hang children and attributes off one shared root
// (exactly what sweep workers do) while snapshots run concurrently.
func TestConcurrentSpanWriters(t *testing.T) {
	tr := New(Config{Sample: 1, Capacity: 16, MaxSpans: 4096})
	ctx, root := tr.Start(context.Background(), "req")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, wsp := StartChild(ctx, "worker")
			wsp.SetInt("worker", int64(w))
			for i := 0; i < 50; i++ {
				ps := wsp.Child("pair")
				ps.SetInt("index", int64(i))
				now := time.Now()
				ps.ChildAt("filter", now, time.Microsecond)
				ps.End()
				root.SetInt("touch", int64(w*100+i)) // contended root attrs
			}
			wsp.End()
		}(w)
	}
	// Concurrent snapshots of a live trace (data() under span locks).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Traces()
		}
	}()
	wg.Wait()
	root.End()
	<-done

	td := tr.Traces()[0]
	if got := td.Root.SpanCount() + int(td.Dropped); got != 1+8+8*50*2 {
		t.Fatalf("spans+dropped = %d, want %d", got, 1+8+8*50*2)
	}
}

// TestConcurrentTracerPublish is the race gate for the ring buffer:
// many goroutines finish traces while readers snapshot.
func TestConcurrentTracerPublish(t *testing.T) {
	tr := always(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, sp := tr.Start(context.Background(), "req")
				sp.Child("c").End()
				sp.End()
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, td := range tr.Traces() {
					_ = td.Root.Depth()
				}
			}
		}()
	}
	wg.Wait()
	if st := tr.Stats(); st.Started != 800 || st.Kept != 800 {
		t.Fatalf("stats = %+v", st)
	}
	if got := len(tr.Traces()); got != 8 {
		t.Fatalf("buffered = %d, want ring size 8", got)
	}
}

// BenchmarkSpanOps measures the intrinsic cost of span operations in
// the three tracer states the hot path sees.
func BenchmarkSpanOps(b *testing.B) {
	b.Run("nil_tracer", func(b *testing.B) {
		var tr *Tracer
		ctx, root := tr.Start(context.Background(), "req")
		for i := 0; i < b.N; i++ {
			sp := FromContext(ctx)
			c := sp.Child("pair")
			c.SetInt("i", int64(i))
			c.End()
		}
		root.End()
	})
	b.Run("unsampled", func(b *testing.B) {
		tr := New(Config{Sample: 0, Capacity: 8})
		ctx, root := tr.Start(context.Background(), "req")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := FromContext(ctx)
			c := sp.Child("pair")
			c.SetInt("i", int64(i))
			c.End()
		}
		root.End()
	})
	b.Run("sampled", func(b *testing.B) {
		tr := New(Config{Sample: 1, Capacity: 8, MaxSpans: 1 << 30})
		ctx, root := tr.Start(context.Background(), "req")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := FromContext(ctx)
			c := sp.Child("pair")
			c.SetInt("i", int64(i))
			c.End()
		}
		root.End()
	})
}
