// Package overlay computes exact boolean-operation areas between two
// polygonal regions with a trapezoid sweep: the boundaries are noded
// against each other, the plane is cut into vertical slabs at every
// segment endpoint, and within a slab the y-sorted segments bound
// trapezoids whose membership in each input is constant. Summing
// trapezoid areas by membership yields the areas of A∩B, A∪B, A\B and
// B\A without constructing result polygons — which is what the library
// needs for overlap statistics and for cross-validating the DE-9IM
// engine (interiors intersect iff the intersection area is positive).
//
// The approach is robust against the degeneracies that break classic
// clipping algorithms (shared edges, repeated touch points): after
// noding, segments never cross slab interiors, so ties only ever bound
// zero-width regions.
package overlay

import (
	"math"
	"sort"

	"repro/internal/de9im"
	"repro/internal/geom"
)

// Areas reports the exact areas of the boolean combinations of two
// regions.
type Areas struct {
	A, B         float64 // input areas (from the sweep, not the shoelace)
	Intersection float64
	Union        float64
	AOnly        float64 // A \ B
	BOnly        float64 // B \ A
}

// Of computes the overlay areas of two multipolygons.
func Of(a, b *geom.MultiPolygon) Areas {
	type seg struct {
		p, q  geom.Point // p.X <= q.X
		owner uint8      // 0: A, 1: B
	}
	as, bs := de9im.NodedSegments(a, b)

	segs := make([]seg, 0, len(as)+len(bs))
	var xs []float64
	add := func(raw [2]geom.Point, owner uint8) {
		p, q := raw[0], raw[1]
		xs = append(xs, p.X, q.X)
		if p.X == q.X {
			return // vertical segments bound no area
		}
		if p.X > q.X {
			p, q = q, p
		}
		segs = append(segs, seg{p: p, q: q, owner: owner})
	}
	for _, s := range as {
		add(s, 0)
	}
	for _, s := range bs {
		add(s, 1)
	}
	var out Areas
	if len(xs) == 0 {
		return out
	}
	sort.Float64s(xs)
	// Deduplicate slab boundaries.
	slabX := xs[:1]
	for _, x := range xs[1:] {
		if x > slabX[len(slabX)-1] {
			slabX = append(slabX, x)
		}
	}

	// Sort segments by left endpoint to stream them through the sweep.
	sort.Slice(segs, func(i, j int) bool { return segs[i].p.X < segs[j].p.X })

	type active struct {
		seg
		y0, y1 float64 // y at the current slab's borders
	}
	var act []active
	next := 0
	for si := 0; si+1 < len(slabX); si++ {
		x0, x1 := slabX[si], slabX[si+1]
		if x1-x0 <= 0 {
			continue
		}
		// Drop segments ending at or before x0, admit ones starting at x0.
		keep := act[:0]
		for _, s := range act {
			if s.q.X > x0 {
				keep = append(keep, s)
			}
		}
		act = keep
		for next < len(segs) && segs[next].p.X <= x0 {
			if segs[next].q.X > x0 {
				act = append(act, active{seg: segs[next]})
			}
			next++
		}
		// Evaluate y at both slab borders (segments span whole slabs
		// because slab boundaries include every endpoint).
		for i := range act {
			s := &act[i]
			s.y0 = yAt(s.p, s.q, x0)
			s.y1 = yAt(s.p, s.q, x1)
		}
		sort.Slice(act, func(i, j int) bool {
			mi := act[i].y0 + act[i].y1
			mj := act[j].y0 + act[j].y1
			return mi < mj
		})

		w := x1 - x0
		inA, inB := false, false
		for i := 0; i+1 <= len(act); i++ {
			if act[i].owner == 0 {
				inA = !inA
			} else {
				inB = !inB
			}
			if i+1 == len(act) {
				break
			}
			lo, hi := act[i], act[i+1]
			area := w * ((hi.y0 - lo.y0) + (hi.y1 - lo.y1)) / 2
			if area <= 0 {
				continue
			}
			switch {
			case inA && inB:
				out.Intersection += area
			case inA:
				out.AOnly += area
			case inB:
				out.BOnly += area
			}
		}
	}
	out.A = out.Intersection + out.AOnly
	out.B = out.Intersection + out.BOnly
	out.Union = out.Intersection + out.AOnly + out.BOnly
	return out
}

// IntersectionArea returns area(A ∩ B).
func IntersectionArea(a, b *geom.MultiPolygon) float64 {
	return Of(a, b).Intersection
}

// PolygonIntersectionArea returns the overlap area of two polygons.
func PolygonIntersectionArea(a, b *geom.Polygon) float64 {
	return IntersectionArea(geom.NewMultiPolygon(a), geom.NewMultiPolygon(b))
}

// JaccardSimilarity returns area(A∩B)/area(A∪B), a standard measure for
// entity matching in interlinking; 0 for two empty regions.
func JaccardSimilarity(a, b *geom.MultiPolygon) float64 {
	r := Of(a, b)
	if r.Union <= 0 {
		return 0
	}
	return r.Intersection / r.Union
}

// CoverageFraction returns the fraction of region a covered by region b,
// e.g. the water share of a county in zonal statistics.
func CoverageFraction(a, b *geom.MultiPolygon) float64 {
	r := Of(a, b)
	if r.A <= 0 {
		return 0
	}
	f := r.Intersection / r.A
	return math.Min(1, math.Max(0, f))
}

func yAt(p, q geom.Point, x float64) float64 {
	if q.X == p.X {
		return p.Y
	}
	t := (x - p.X) / (q.X - p.X)
	return p.Y + t*(q.Y-p.Y)
}
