package overlay

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/de9im"
	"repro/internal/geom"
)

func mp(ps ...*geom.Polygon) *geom.MultiPolygon { return geom.NewMultiPolygon(ps...) }

func rectP(x0, y0, x1, y1 float64) *geom.Polygon {
	return geom.NewPolygon(geom.Ring{{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}})
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestRectangleOverlays(t *testing.T) {
	cases := []struct {
		name                       string
		a, b                       *geom.Polygon
		inter, aOnly, bOnly, union float64
	}{
		{"disjoint", rectP(0, 0, 2, 2), rectP(5, 0, 7, 2), 0, 4, 4, 8},
		{"identical", rectP(0, 0, 4, 4), rectP(0, 0, 4, 4), 16, 0, 0, 16},
		{"quarter overlap", rectP(0, 0, 2, 2), rectP(1, 1, 3, 3), 1, 3, 3, 7},
		{"nested", rectP(0, 0, 10, 10), rectP(2, 2, 4, 4), 4, 96, 0, 100},
		{"edge touch", rectP(0, 0, 2, 2), rectP(2, 0, 4, 2), 0, 4, 4, 8},
		{"corner touch", rectP(0, 0, 2, 2), rectP(2, 2, 4, 4), 0, 4, 4, 8},
		{"half covered", rectP(0, 0, 4, 2), rectP(2, 0, 4, 2), 4, 4, 0, 8},
	}
	for _, c := range cases {
		r := Of(mp(c.a), mp(c.b))
		if !near(r.Intersection, c.inter) || !near(r.AOnly, c.aOnly) ||
			!near(r.BOnly, c.bOnly) || !near(r.Union, c.union) {
			t.Errorf("%s: got inter=%.6f aOnly=%.6f bOnly=%.6f union=%.6f, want %v %v %v %v",
				c.name, r.Intersection, r.AOnly, r.BOnly, r.Union, c.inter, c.aOnly, c.bOnly, c.union)
		}
	}
}

func TestOverlayWithHole(t *testing.T) {
	annulus := geom.NewPolygon(
		geom.Ring{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}},
		geom.Ring{{X: 3, Y: 3}, {X: 7, Y: 3}, {X: 7, Y: 7}, {X: 3, Y: 7}},
	)
	// b inside the hole: no overlap.
	inHole := rectP(4, 4, 6, 6)
	r := Of(mp(annulus), mp(inHole))
	if !near(r.Intersection, 0) {
		t.Errorf("in-hole overlap = %v", r.Intersection)
	}
	if !near(r.A, 84) {
		t.Errorf("annulus area via sweep = %v, want 84", r.A)
	}
	// b covering the hole and part of the solid region.
	straddle := rectP(2, 2, 8, 8)
	r = Of(mp(annulus), mp(straddle))
	// straddle is 36; the hole (16) does not count.
	if !near(r.Intersection, 20) {
		t.Errorf("straddle overlap = %v, want 20", r.Intersection)
	}
}

func TestOverlayMultiPolygon(t *testing.T) {
	a := mp(rectP(0, 0, 2, 2), rectP(10, 0, 12, 2))
	b := mp(rectP(1, 0, 11, 2))
	r := Of(a, b)
	// b overlaps each component in a 1x2 strip.
	if !near(r.Intersection, 2+2) {
		t.Errorf("intersection = %v, want 4", r.Intersection)
	}
	if !near(r.A, 8) || !near(r.B, 20) {
		t.Errorf("inputs: A=%v B=%v", r.A, r.B)
	}
	if !near(r.Union, 8+20-4) {
		t.Errorf("union = %v", r.Union)
	}
}

// TestSweepAreaMatchesShoelace: the sweep's per-input areas must agree
// with the shoelace formula on random blobs — a strong self-check of the
// slab construction.
func TestSweepAreaMatchesShoelace(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		a := datagen.Blob(rng, geom.Point{X: 20 + rng.Float64()*20, Y: 20 + rng.Float64()*20}, 4+rng.Float64()*12, 8+rng.Intn(120))
		b := datagen.Blob(rng, geom.Point{X: 20 + rng.Float64()*20, Y: 20 + rng.Float64()*20}, 4+rng.Float64()*12, 8+rng.Intn(120))
		r := Of(mp(a), mp(b))
		if relErr(r.A, a.Area()) > 1e-6 {
			t.Fatalf("trial %d: sweep A=%v shoelace=%v", trial, r.A, a.Area())
		}
		if relErr(r.B, b.Area()) > 1e-6 {
			t.Fatalf("trial %d: sweep B=%v shoelace=%v", trial, r.B, b.Area())
		}
		// Inclusion-exclusion consistency.
		if relErr(r.Union+r.Intersection, r.A+r.B) > 1e-6 {
			t.Fatalf("trial %d: inclusion-exclusion broken: %+v", trial, r)
		}
		if r.Intersection < -1e-9 || r.Intersection > math.Min(r.A, r.B)+1e-6 {
			t.Fatalf("trial %d: intersection out of range: %+v", trial, r)
		}
	}
}

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		return d / m
	}
	return d
}

// TestOverlayCrossValidatesDE9IM: the paper's area entries and the
// overlay must agree — interiors intersect iff the intersection area is
// positive, and one-sided residues match the IE/EI entries. This checks
// two independently implemented engines against each other.
func TestOverlayCrossValidatesDE9IM(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const areaEps = 1e-7
	for trial := 0; trial < 150; trial++ {
		a := datagen.Blob(rng, geom.Point{X: 25 + rng.Float64()*14, Y: 25 + rng.Float64()*14}, 3+rng.Float64()*10, 8+rng.Intn(60))
		b := datagen.Blob(rng, geom.Point{X: 25 + rng.Float64()*14, Y: 25 + rng.Float64()*14}, 3+rng.Float64()*10, 8+rng.Intn(60))
		ma, mb := mp(a), mp(b)
		m := de9im.Relate(ma, mb)
		r := Of(ma, mb)
		if got, want := m[de9im.II].Intersects(), r.Intersection > areaEps; got != want {
			t.Fatalf("trial %d: II=%v but intersection area=%.3g (matrix %s)",
				trial, got, r.Intersection, m)
		}
		if got, want := m[de9im.IE].Intersects(), r.AOnly > areaEps; got != want {
			t.Fatalf("trial %d: IE=%v but A-only area=%.3g (matrix %s)",
				trial, got, r.AOnly, m)
		}
		if got, want := m[de9im.EI].Intersects(), r.BOnly > areaEps; got != want {
			t.Fatalf("trial %d: EI=%v but B-only area=%.3g (matrix %s)",
				trial, got, r.BOnly, m)
		}
	}
}

func TestSimilarityMeasures(t *testing.T) {
	a, b := mp(rectP(0, 0, 2, 2)), mp(rectP(1, 0, 3, 2))
	if j := JaccardSimilarity(a, b); !near(j, 2.0/6.0) {
		t.Errorf("jaccard = %v", j)
	}
	if j := JaccardSimilarity(a, a); !near(j, 1) {
		t.Errorf("self jaccard = %v", j)
	}
	if j := JaccardSimilarity(mp(), mp()); j != 0 {
		t.Errorf("empty jaccard = %v", j)
	}
	if f := CoverageFraction(a, b); !near(f, 0.5) {
		t.Errorf("coverage = %v", f)
	}
	if f := CoverageFraction(mp(), b); f != 0 {
		t.Errorf("empty coverage = %v", f)
	}
	if v := PolygonIntersectionArea(rectP(0, 0, 2, 2), rectP(1, 1, 4, 4)); !near(v, 1) {
		t.Errorf("polygon intersection area = %v", v)
	}
}

func TestOverlayEmpty(t *testing.T) {
	r := Of(mp(), mp())
	if r.Intersection != 0 || r.Union != 0 || r.A != 0 || r.B != 0 {
		t.Errorf("empty overlay: %+v", r)
	}
	one := Of(mp(rectP(0, 0, 2, 3)), mp())
	if !near(one.A, 6) || one.Intersection != 0 || !near(one.Union, 6) {
		t.Errorf("one-sided overlay: %+v", one)
	}
}
