package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/obs"
)

// walRegistry builds an instrumented WAL-backed registry over the
// resilience fixture. snapDir may be empty (durability without
// snapshots: restart replays the whole log over a fresh build). Auto-
// compaction is off so tests control exactly when the watermark moves.
func walRegistry(t *testing.T, walDir, snapDir string) (*Registry, *obs.Registry) {
	t.Helper()
	met := obs.NewRegistry()
	reg := NewRegistry(resSpace, resOrder)
	reg.Instrument(met)
	reg.SetLogf(t.Logf)
	reg.SetCompactThreshold(0)
	if snapDir != "" {
		if err := reg.EnableSnapshots(snapDir); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.EnableWAL(WALOptions{Dir: walDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("grid", "squares", resPolys()); err != nil {
		t.Fatal(err)
	}
	return reg, met
}

// walSq is a small test square polygon in one of the fixture's gaps.
func walSq(x, y float64) *geom.Polygon {
	return geom.NewPolygon(geom.Ring{
		{X: x, Y: y}, {X: x + 6, Y: y}, {X: x + 6, Y: y + 6}, {X: x, Y: y + 6},
	})
}

// liveSet renders the dataset's live objects as sorted "id@mbr" strings
// through the real serving view — the durability oracle two registries
// are compared by.
func liveSet(t *testing.T, reg *Registry) []string {
	t.Helper()
	e, ok := reg.Get("grid")
	if !ok {
		t.Fatal("dataset missing")
	}
	probe, err := reg.Probe(geom.NewPolygon(geom.Ring{
		{X: 0, Y: 0}, {X: 256, Y: 0}, {X: 256, Y: 256}, {X: 0, Y: 256},
	}))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	view := e.View()
	err = view.QueryContext(context.Background(), probe.MBR, func(delta bool, en join.Entry) {
		o := e.objAt(delta, en.ID)
		out = append(out, fmt.Sprintf("%d@%.1f,%.1f,%.1f,%.1f",
			o.ID, o.MBR.MinX, o.MBR.MinY, o.MBR.MaxX, o.MBR.MaxY))
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

func TestDurableIngestSurvivesRestart(t *testing.T) {
	walDir := t.TempDir()
	reg1, _ := walRegistry(t, walDir, "")

	// Acked mutations: three inserts, one replace, one delete.
	var insertIDs []int
	for i := 0; i < 3; i++ {
		res, err := reg1.Mutate("grid", MutInsert, -1, walSq(34+float64(i)*40, 34))
		if err != nil {
			t.Fatal(err)
		}
		insertIDs = append(insertIDs, res.ID)
	}
	if _, err := reg1.Mutate("grid", MutUpsert, 0, walSq(34, 74)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg1.Mutate("grid", MutDelete, 1, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg1.WalPendingBytes(); got <= 0 {
		t.Fatalf("WalPendingBytes = %d after acked mutations, want > 0", got)
	}
	var info DatasetInfo
	for _, di := range reg1.List() {
		if di.Name == "grid" {
			info = di
		}
	}
	if info.WalBytes <= 0 {
		t.Fatalf("DatasetInfo.WalBytes = %d, want > 0", info.WalBytes)
	}
	want := liveSet(t, reg1)

	// "Crash": abandon reg1 without closing anything, then restart from
	// the same directories. Every acked mutation must come back.
	reg2, met2 := walRegistry(t, walDir, "")
	if got := liveSet(t, reg2); !equalStrings(got, want) {
		t.Fatalf("restart lost acked mutations\n got %v\nwant %v", got, want)
	}
	if got := met2.Counter("wal_replayed_total").Value(); got != 5 {
		t.Fatalf("replayed %d records, want 5", got)
	}
	// Id continuity: the next insert must not reuse a logged id.
	res, err := reg2.Mutate("grid", MutInsert, -1, walSq(74, 74))
	if err != nil {
		t.Fatal(err)
	}
	if wantID := insertIDs[len(insertIDs)-1] + 1; res.ID != wantID {
		t.Fatalf("post-restart insert id = %d, want %d", res.ID, wantID)
	}
}

func TestWALPruneAfterCompaction(t *testing.T) {
	walDir, snapDir := t.TempDir(), t.TempDir()
	reg1, _ := walRegistry(t, walDir, snapDir)
	for i := 0; i < 4; i++ {
		if _, err := reg1.Mutate("grid", MutInsert, -1, walSq(34+float64(i)*40, 34)); err != nil {
			t.Fatal(err)
		}
	}
	before := reg1.WalPendingBytes()
	if _, err := reg1.Compact("grid"); err != nil {
		t.Fatal(err)
	}
	after := reg1.WalPendingBytes()
	if after >= before {
		t.Fatalf("wal not pruned after compaction: %d -> %d bytes", before, after)
	}
	want := liveSet(t, reg1)

	// Restart: the snapshot epoch carries the watermark, so nothing is
	// replayed — and nothing is lost.
	reg2, met2 := walRegistry(t, walDir, snapDir)
	if got := met2.Counter("wal_replayed_total").Value(); got != 0 {
		t.Fatalf("replayed %d records after full compaction, want 0", got)
	}
	if got := liveSet(t, reg2); !equalStrings(got, want) {
		t.Fatalf("compacted state lost across restart\n got %v\nwant %v", got, want)
	}

	// Mutations after the compaction replay on the next restart.
	if _, err := reg2.Mutate("grid", MutDelete, 0, nil); err != nil {
		t.Fatal(err)
	}
	want = liveSet(t, reg2)
	reg3, met3 := walRegistry(t, walDir, snapDir)
	if got := met3.Counter("wal_replayed_total").Value(); got != 1 {
		t.Fatalf("replayed %d records, want 1 (the post-compaction delete)", got)
	}
	if got := liveSet(t, reg3); !equalStrings(got, want) {
		t.Fatalf("post-compaction mutation lost across restart\n got %v\nwant %v", got, want)
	}
}

func TestWALFsyncFailureNeverSilentlyAcks(t *testing.T) {
	t.Cleanup(fault.Reset)
	walDir := t.TempDir()
	reg, met := walRegistry(t, walDir, "")
	before := liveSet(t, reg)

	fault.Arm("wal.fsync", fault.Behavior{Err: errors.New("disk gone")})
	_, err := reg.Mutate("grid", MutInsert, -1, walSq(34, 34))
	if !errors.Is(err, ErrNotDurable) {
		t.Fatalf("mutation with failing fsync: err = %v, want ErrNotDurable", err)
	}
	if got := liveSet(t, reg); !equalStrings(got, before) {
		t.Fatal("non-durable mutation was published")
	}
	if got := met.Counter("wal_append_failures_total").Value(); got != 1 {
		t.Fatalf("wal_append_failures_total = %d, want 1", got)
	}
	// The log is failed permanently: later mutations (fault disarmed)
	// still refuse rather than risk a hole in the record sequence.
	fault.Reset()
	if _, err := reg.Mutate("grid", MutInsert, -1, walSq(34, 34)); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("mutation after failed fsync: err = %v, want ErrNotDurable", err)
	}

	// A restart recovers: the log tail is intact (the append before the
	// failed fsync was torn or truncated), and ingest works again.
	reg2, _ := walRegistry(t, walDir, "")
	if got := liveSet(t, reg2); !equalStrings(got, before) {
		t.Fatal("restart resurrected a never-acked mutation")
	}
	if _, err := reg2.Mutate("grid", MutInsert, -1, walSq(34, 34)); err != nil {
		t.Fatalf("ingest after restart: %v", err)
	}
}

func TestWALFsyncFailureMapsTo503(t *testing.T) {
	t.Cleanup(fault.Reset)
	walDir := t.TempDir()
	reg, _ := walRegistry(t, walDir, "")
	svc := New(reg, Config{})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	c := NewClient(ts.URL)

	fault.Arm("wal.fsync", fault.Behavior{Err: errors.New("disk gone")})
	_, err := c.Insert(context.Background(), "grid", IngestRequest{WKT: sq6(33, 33)})
	var api *APIError
	if !errors.As(err, &api) || api.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert with failing fsync: %v, want 503", err)
	}
	if api.Reason != "wal_append_failed" {
		t.Fatalf("error reason = %q, want wal_append_failed", api.Reason)
	}
}

func TestIdempotencyKeyDedupes(t *testing.T) {
	walDir := t.TempDir()
	reg, met := walRegistry(t, walDir, "")
	n0 := len(liveSet(t, reg))

	first, err := reg.MutateKey("grid", MutInsert, -1, walSq(34, 34), "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if first.Deduped {
		t.Fatal("first keyed insert flagged Deduped")
	}
	second, err := reg.MutateKey("grid", MutInsert, -1, walSq(34, 34), "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if !second.Deduped || second.ID != first.ID {
		t.Fatalf("retry not deduped: first id %d, retry %+v", first.ID, second)
	}
	if got := len(liveSet(t, reg)); got != n0+1 {
		t.Fatalf("live objects = %d, want %d (retry must not create a second object)", got, n0+1)
	}
	if got := met.Counter("server_ingest_deduped_total").Value(); got != 1 {
		t.Fatalf("server_ingest_deduped_total = %d, want 1", got)
	}

	// Dedupe must survive a crash: the key rides in the WAL record and
	// re-seeds the cache on replay.
	reg2, _ := walRegistry(t, walDir, "")
	third, err := reg2.MutateKey("grid", MutInsert, -1, walSq(34, 34), "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if !third.Deduped || third.ID != first.ID {
		t.Fatalf("retry across restart not deduped: first id %d, got %+v", first.ID, third)
	}
	if got := len(liveSet(t, reg2)); got != n0+1 {
		t.Fatalf("live objects after restart retry = %d, want %d", got, n0+1)
	}
}

func TestIdempotencyKeyDedupesWithoutWAL(t *testing.T) {
	// The dedupe cache also guards the volatile path, so retried inserts
	// are safe (within a process lifetime) even with durability off.
	reg := NewRegistry(resSpace, resOrder)
	if _, err := reg.Add("grid", "squares", resPolys()); err != nil {
		t.Fatal(err)
	}
	first, err := reg.MutateKey("grid", MutInsert, -1, walSq(34, 34), "key-1")
	if err != nil {
		t.Fatal(err)
	}
	second, err := reg.MutateKey("grid", MutInsert, -1, walSq(34, 34), "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if !second.Deduped || second.ID != first.ID {
		t.Fatalf("volatile retry not deduped: first id %d, got %+v", first.ID, second)
	}
}

func TestClientInsertRetriesWithStableKey(t *testing.T) {
	walDir := t.TempDir()
	reg, _ := walRegistry(t, walDir, "")
	svc := New(reg, Config{})

	// Flaky front: the first attempt dies with 503 after the backend has
	// fully processed it — the worst case for a retry, because resending
	// without dedupe would create a second object.
	var mu sync.Mutex
	var keys []string
	attempt := 0
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.Contains(r.URL.Path, "/objects") {
			mu.Lock()
			keys = append(keys, r.Header.Get("Idempotency-Key"))
			n := attempt
			attempt++
			mu.Unlock()
			if n == 0 {
				rec := httptest.NewRecorder()
				svc.Handler().ServeHTTP(rec, r) // backend applies the insert...
				writeError(w, http.StatusServiceUnavailable, "ack lost")
				return // ...but the client never sees the ack
			}
		}
		svc.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		front.Close()
		svc.Close()
	})

	c := NewClient(front.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	n0 := len(liveSet(t, reg))
	resp, err := c.Insert(context.Background(), "grid", IngestRequest{WKT: sq6(33, 33)})
	if err != nil {
		t.Fatalf("insert through flaky front: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 2 || keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("idempotency keys across attempts = %q, want two identical non-empty", keys)
	}
	if !resp.Deduped {
		t.Fatal("retried insert not flagged Deduped")
	}
	if got := len(liveSet(t, reg)); got != n0+1 {
		t.Fatalf("live objects = %d, want %d (retry created a duplicate)", got, n0+1)
	}
}

func TestGroupCommitConcurrentWriters(t *testing.T) {
	walDir := t.TempDir()
	met := obs.NewRegistry()
	reg := NewRegistry(resSpace, resOrder)
	reg.Instrument(met)
	reg.SetLogf(t.Logf)
	reg.SetCompactThreshold(0)
	if err := reg.EnableWAL(WALOptions{Dir: walDir, SyncInterval: 500 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("grid", "squares", resPolys()); err != nil {
		t.Fatal(err)
	}

	// Concurrent inserts, upserts and deletes race the group-commit
	// batcher; every acked result must be distinct and must survive a
	// crash. Run under -race this doubles as the batcher's race gate.
	const writers, perWriter = 8, 20
	ids := make(chan int, writers*perWriter)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				switch i % 4 {
				case 0, 1: // insert
					res, err := reg.Mutate("grid", MutInsert, -1, walSq(34, 34))
					if err != nil {
						t.Errorf("writer %d insert: %v", w, err)
						return
					}
					ids <- res.ID
				case 2: // upsert a private id
					id := 1000 + w*perWriter + i
					if _, err := reg.Mutate("grid", MutUpsert, id, walSq(74, 34)); err != nil {
						t.Errorf("writer %d upsert: %v", w, err)
						return
					}
				default: // delete the id just upserted
					id := 1000 + w*perWriter + i - 1
					if _, err := reg.Mutate("grid", MutDelete, id, nil); err != nil {
						t.Errorf("writer %d delete: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(ids)
	seen := make(map[int]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("insert id %d acked twice", id)
		}
		seen[id] = true
	}
	want := liveSet(t, reg)

	reg2, _ := walRegistry(t, walDir, "")
	if got := liveSet(t, reg2); !equalStrings(got, want) {
		t.Fatalf("concurrent acked mutations lost across restart:\n got %d objects\nwant %d objects",
			len(got), len(want))
	}
}

// TestMutationCrashReplayOracle is the durability differential oracle
// (run by `make difftest`): a WAL-backed registry takes a randomized
// mutation sequence with compactions sprinkled in, and at every
// checkpoint a "crash replica" — a fresh registry opened over the same
// snapshot + WAL directories, exactly what a restart after SIGKILL
// would see — must answer identically to the mutated original AND to a
// cold build of the surviving object set.
func TestMutationCrashReplayOracle(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashReplayOracle(t, seed)
		})
	}
}

func runCrashReplayOracle(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	randRect := func() *geom.Polygon {
		x := float64(rng.Intn(240))
		y := float64(rng.Intn(240))
		w := float64(2 + rng.Intn(14))
		h := float64(2 + rng.Intn(14))
		return geom.NewPolygon(geom.Ring{
			{X: x, Y: y}, {X: x + w, Y: y}, {X: x + w, Y: y + h}, {X: x, Y: y + h},
		})
	}
	walDir, snapDir := t.TempDir(), t.TempDir()
	initial := make([]*geom.Polygon, 16)
	model := make(map[int]*geom.Polygon, 64)
	for i := range initial {
		initial[i] = randRect()
		model[i] = initial[i]
	}
	open := func() *Registry {
		reg := NewRegistry(resSpace, resOrder)
		reg.SetLogf(t.Logf)
		reg.SetCompactThreshold(0)
		if err := reg.EnableSnapshots(snapDir); err != nil {
			t.Fatal(err)
		}
		if err := reg.EnableWAL(WALOptions{Dir: walDir}); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Register("dyn", "", initial); err != nil {
			t.Fatal(err)
		}
		return reg
	}
	regA := open()
	nextID := len(initial)

	probes := make([]*geom.Polygon, 6)
	for i := range probes {
		probes[i] = randRect()
	}
	liveIDs := func() []int {
		ids := make([]int, 0, len(model))
		for id := range model {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		return ids
	}
	canonical := func(reg *Registry, idOf func(int) int) string {
		e, ok := reg.Get("dyn")
		if !ok {
			t.Fatal("dataset missing")
		}
		var sb strings.Builder
		for pi, p := range probes {
			probe, err := reg.Probe(p)
			if err != nil {
				t.Fatal(err)
			}
			var objs []*core.Object
			view := e.View()
			err = view.QueryContext(context.Background(), probe.MBR, func(delta bool, en join.Entry) {
				objs = append(objs, e.objAt(delta, en.ID))
			})
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(objs, func(i, j int) bool { return idOf(objs[i].ID) < idOf(objs[j].ID) })
			for _, o := range objs {
				res := core.FindRelation(core.PC, probe, o)
				fmt.Fprintf(&sb, "%d:%d=%s\n", pi, idOf(o.ID), res.Relation)
			}
		}
		return sb.String()
	}

	checkpoint := func(step int) {
		// The crash replica: restart from disk, mid-sequence.
		regR := open()
		gotA := canonical(regA, func(id int) int { return id })
		gotR := canonical(regR, func(id int) int { return id })
		if gotA != gotR {
			t.Fatalf("step %d: crash replica diverged from the registry it journaled\n--- live ---\n%s--- replayed ---\n%s",
				step, gotA, gotR)
		}
		ids := liveIDs()
		rebuilt := make([]*geom.Polygon, len(ids))
		for j, id := range ids {
			rebuilt[j] = model[id]
		}
		regB := NewRegistry(resSpace, resOrder)
		if _, err := regB.Add("dyn", "", rebuilt); err != nil {
			t.Fatal(err)
		}
		gotB := canonical(regB, func(pos int) int { return ids[pos] })
		if gotR != gotB {
			t.Fatalf("step %d: crash replica diverged from fresh rebuild\n--- replayed ---\n%s--- rebuilt ---\n%s",
				step, gotR, gotB)
		}
	}

	const steps = 120
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert
			p := randRect()
			res, err := regA.Mutate("dyn", MutInsert, -1, p)
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			if res.ID != nextID {
				t.Fatalf("step %d: insert id %d, model expected %d", step, res.ID, nextID)
			}
			model[nextID] = p
			nextID++
		case op < 7: // upsert
			var id int
			if ids := liveIDs(); len(ids) > 0 && rng.Intn(3) > 0 {
				id = ids[rng.Intn(len(ids))]
			} else {
				id = rng.Intn(nextID + 3)
			}
			p := randRect()
			if _, err := regA.Mutate("dyn", MutUpsert, id, p); err != nil {
				t.Fatalf("step %d upsert %d: %v", step, id, err)
			}
			model[id] = p
			if id >= nextID {
				nextID = id + 1
			}
		default: // delete
			ids := liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			if _, err := regA.Mutate("dyn", MutDelete, id, nil); err != nil {
				t.Fatalf("step %d delete %d: %v", step, id, err)
			}
			delete(model, id)
		}
		if rng.Intn(25) == 0 {
			if _, err := regA.Compact("dyn"); err != nil {
				t.Fatalf("step %d compact: %v", step, err)
			}
		}
		if step%30 == 29 {
			checkpoint(step)
		}
	}
	checkpoint(steps)
}

func TestIdempotencyKeyValidation(t *testing.T) {
	reg := NewRegistry(resSpace, resOrder)
	if _, err := reg.Add("grid", "squares", resPolys()); err != nil {
		t.Fatal(err)
	}
	svc := New(reg, Config{})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	for _, bad := range []string{strings.Repeat("x", 129), "has space", "tab\tkey"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets/grid/objects",
			strings.NewReader(`{"wkt":"`+sq6(33, 33)+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Idempotency-Key", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("key %q: status %d (%s), want 400", bad, resp.StatusCode, eb.Error)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
