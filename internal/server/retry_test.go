package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// fastPolicy returns a policy whose sleeps are instant and recorded.
func fastPolicy() (*RetryPolicy, *[]time.Duration) {
	var slept []time.Duration
	p := &RetryPolicy{
		sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	return p, &slept
}

func TestTemporaryClassification(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusTooManyRequests:     true,
		http.StatusInternalServerError: true,
		http.StatusServiceUnavailable:  true,
		http.StatusGatewayTimeout:      true,
		http.StatusBadRequest:          false,
		http.StatusNotFound:            false,
	} {
		e := &APIError{StatusCode: code}
		if e.Temporary() != want {
			t.Errorf("APIError(%d).Temporary() = %v, want %v", code, !want, want)
		}
		if IsTemporary(fmt.Errorf("wrapped: %w", e)) != want {
			t.Errorf("IsTemporary(wrapped %d) != %v", code, want)
		}
	}
	tr := &TransportError{Err: errors.New("connection refused")}
	if !tr.Temporary() || !IsTemporary(tr) {
		t.Error("TransportError must be temporary")
	}
	if IsTemporary(errors.New("plain")) {
		t.Error("plain error must not be temporary")
	}
}

func TestClientWrapsTransportErrors(t *testing.T) {
	c := NewClient("http://127.0.0.1:0") // port 0: always refused
	err := c.do(context.Background(), http.MethodGet, "/v1/healthz", nil, nil, nil)
	var tr *TransportError
	if !errors.As(err, &tr) {
		t.Fatalf("err = %T %v, want *TransportError", err, err)
	}
	if !IsTemporary(err) {
		t.Fatal("transport error must be temporary")
	}
}

func TestRetryRecoversFromTransientFailure(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	p, slept := fastPolicy()
	c.Retry = p
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health = %v after retries", err)
	}
	if h.Status != "ok" || calls.Load() != 3 {
		t.Fatalf("status %q after %d calls, want ok after 3", h.Status, calls.Load())
	}
	for i, d := range *slept {
		if d < time.Second {
			t.Fatalf("sleep %d = %v, must honor Retry-After of 1s", i, d)
		}
	}
}

func TestRetryGivesUpOnPermanentError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusBadRequest, "bad probe")
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Retry, _ = fastPolicy()
	_, err := c.Health(context.Background())
	var api *APIError
	if !errors.As(err, &api) || api.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls for a permanent error, want 1", calls.Load())
	}
}

func TestRetryBoundedAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusServiceUnavailable, "down")
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	p, _ := fastPolicy()
	p.MaxAttempts = 3
	p.BreakerThreshold = -1 // isolate the retry bound from the breaker
	c.Retry = p
	_, err := c.Health(context.Background())
	var api *APIError
	if !errors.As(err, &api) || api.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d calls, want exactly MaxAttempts=3", calls.Load())
	}
}

func TestBackoffFullJitterAndCap(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}.withDefaults()
	p.randF = func() float64 { return 1.0 }
	if d := p.backoff(0, 0); d != 100*time.Millisecond {
		t.Fatalf("attempt 0 ceiling = %v", d)
	}
	if d := p.backoff(10, 0); d != time.Second {
		t.Fatalf("attempt 10 must cap at MaxDelay, got %v", d)
	}
	p.randF = func() float64 { return 0 }
	if d := p.backoff(0, 2*time.Second); d != 2*time.Second {
		t.Fatalf("Retry-After floor ignored: %v", d)
	}
	if d := p.backoff(0, 0); d != 0 {
		t.Fatalf("full jitter must reach 0, got %v", d)
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	var calls atomic.Int64
	healthy := atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		writeError(w, http.StatusServiceUnavailable, "down")
	}))
	defer ts.Close()

	now := time.Unix(1000, 0)
	p, _ := fastPolicy()
	p.MaxAttempts = 2
	p.BreakerThreshold = 2
	p.BreakerCooldown = 10 * time.Second
	p.now = func() time.Time { return now }
	c := NewClient(ts.URL)
	c.Retry = p

	// First call: 2 attempts fail, breaker reaches threshold and opens.
	if _, err := c.Health(context.Background()); !IsTemporary(err) {
		t.Fatalf("first call: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d attempts before open", calls.Load())
	}
	// While open: fail fast, no network traffic.
	_, err := c.Health(context.Background())
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker: err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != 2 {
		t.Fatal("open breaker still hit the network")
	}
	// After the cooldown the next call probes; service is healthy again,
	// so the breaker closes and stays closed.
	now = now.Add(11 * time.Second)
	healthy.Store(true)
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("post-cooldown probe: %v", err)
	}
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
}

func TestPerAttemptTimeoutRetries(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first attempt hangs past the per-attempt timeout
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	defer close(release)

	c := NewClient(ts.URL)
	p, _ := fastPolicy()
	p.AttemptTimeout = 50 * time.Millisecond
	c.Retry = p
	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("Health = %+v, %v", h, err)
	}
	if calls.Load() < 2 {
		t.Fatal("hung first attempt was not retried")
	}
}

// TestBreakerIsPerHost: a dead host must open only its own breaker —
// clones handed out by At share the breaker set, but failures against
// one base URL never block calls to another. This is what lets a
// router keep one resilient client for a whole replica fleet.
func TestBreakerIsPerHost(t *testing.T) {
	var liveCalls atomic.Int64
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		liveCalls.Add(1)
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusServiceUnavailable, "down")
	}))
	defer dead.Close()

	p, _ := fastPolicy()
	p.MaxAttempts = 1
	p.BreakerThreshold = 1 // first failure opens the host's breaker
	base := NewClient("")
	base.Retry = p
	deadC, liveC := base.At(dead.URL), base.At(live.URL)

	if _, err := deadC.Health(context.Background()); !IsTemporary(err) {
		t.Fatalf("dead host: %v", err)
	}
	if _, err := deadC.Health(context.Background()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("dead host breaker should be open, got %v", err)
	}
	// The live host's breaker is untouched: calls keep flowing.
	for i := 0; i < 3; i++ {
		if _, err := liveC.Health(context.Background()); err != nil {
			t.Fatalf("live host call %d: %v", i, err)
		}
	}
	if liveCalls.Load() != 3 {
		t.Fatalf("live host saw %d calls, want 3", liveCalls.Load())
	}
	// A fresh clone for the dead host shares the open breaker state.
	if _, err := base.At(dead.URL).Health(context.Background()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("shared breaker set: clone got %v, want ErrCircuitOpen", err)
	}
}

// TestClientInjectsTraceHeader: a context carrying a span must stamp
// its trace id onto outgoing requests (and a bare context must not).
func TestClientInjectsTraceHeader(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(TraceHeader))
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	c := NewClient(ts.URL)

	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if h, _ := got.Load().(string); h != "" {
		t.Fatalf("untraced request carried %s=%q", TraceHeader, h)
	}

	tracer := trace.New(trace.Config{Sample: 1})
	ctx, sp := tracer.Start(context.Background(), "test")
	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	sp.End()
	if h, _ := got.Load().(string); h != trace.FormatID(sp.TraceID()) {
		t.Fatalf("traced request carried %q, want %q", h, trace.FormatID(sp.TraceID()))
	}
}
