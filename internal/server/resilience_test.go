package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

// Small deterministic fixture for the crash-recovery tests: rebuilds
// must be near-instant so truncation sweeps stay cheap.
var (
	resSpace = geom.MBR{MinX: 0, MinY: 0, MaxX: 256, MaxY: 256}
	resOrder = uint(9)
)

func resPolys() []*geom.Polygon {
	sq := func(x, y, s float64) *geom.Polygon {
		return geom.NewPolygon(geom.Ring{
			{X: x, Y: y}, {X: x + s, Y: y}, {X: x + s, Y: y + s}, {X: x, Y: y + s},
		})
	}
	var polys []*geom.Polygon
	for i := 0.0; i < 6; i++ {
		for j := 0.0; j < 6; j++ {
			polys = append(polys, sq(4+i*40, 4+j*40, 28))
		}
	}
	return polys
}

// resRegistry builds an instrumented registry with snapshots under dir
// and the fixture registered as "grid".
func resRegistry(t *testing.T, dir string) (*Registry, *obs.Registry) {
	t.Helper()
	met := obs.NewRegistry()
	reg := NewRegistry(resSpace, resOrder)
	reg.Instrument(met)
	reg.SetLogf(t.Logf)
	if err := reg.EnableSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.register("grid", "squares", resPolys()); err != nil {
		t.Fatal(err)
	}
	return reg, met
}

// relateAll probes every fixture polygon against the registered dataset
// and returns relation strings, the correctness baseline the degraded
// and recovered modes are held to.
func relateAll(t *testing.T, reg *Registry) []string {
	t.Helper()
	e, ok := reg.Get("grid")
	if !ok {
		t.Fatal("dataset missing")
	}
	var out []string
	for _, p := range resPolys() {
		probe, err := reg.Probe(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range e.Dataset.Objects {
			method := core.PC
			if e.Degraded {
				method = core.ST2
			}
			res := core.FindRelation(method, probe, o)
			out = append(out, fmt.Sprintf("%d:%s", o.ID, res.Relation))
		}
	}
	return out
}

func TestSnapshotWarmStartSkipsRasterization(t *testing.T) {
	dir := t.TempDir()
	reg1, met1 := resRegistry(t, dir)
	n := int64(len(resPolys()))
	if got := met1.Counter("server_preprocess_objects_total").Value(); got != n {
		t.Fatalf("cold start preprocessed %d objects, want %d", got, n)
	}
	if got := met1.Counter("server_snapshot_writes_total").Value(); got != 1 {
		t.Fatalf("snapshot writes = %d, want 1", got)
	}
	baseline := relateAll(t, reg1)

	// Restart: same snapshot dir, fresh registry. The whole point of the
	// snapshot is that nothing is re-rasterized.
	reg2, met2 := resRegistry(t, dir)
	if got := met2.Counter("server_preprocess_objects_total").Value(); got != 0 {
		t.Fatalf("warm start preprocessed %d objects, want 0", got)
	}
	if got := met2.Counter("server_snapshot_loads_total").Value(); got != 1 {
		t.Fatalf("snapshot loads = %d, want 1", got)
	}
	e1, _ := reg1.Get("grid")
	e2, _ := reg2.Get("grid")
	for i := range e1.Dataset.Objects {
		if !reflect.DeepEqual(e1.Dataset.Objects[i].Approx, e2.Dataset.Objects[i].Approx) {
			t.Fatalf("object %d: warm-started approximation not bit-exact", i)
		}
	}
	if got := relateAll(t, reg2); !reflect.DeepEqual(got, baseline) {
		t.Fatal("warm-started registry answers differ from cold start")
	}
}

func TestCorruptSnapshotQuarantineDegradedRecover(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	reg1, _ := resRegistry(t, dir)
	baseline := relateAll(t, reg1)
	path, err := snapshot.DatasetPath(dir, "grid")
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.FlipBit(path, 200, 3); err != nil {
		t.Fatal(err)
	}

	// Hold the rebuild open long enough to observe degraded serving.
	fault.Arm("registry.rebuild", fault.Behavior{Delay: 300 * time.Millisecond})
	reg2, met2 := resRegistry(t, dir)

	e, ok := reg2.Get("grid")
	if !ok || !e.Degraded {
		t.Fatalf("corrupt snapshot: entry ok=%v degraded=%v, want degraded serving", ok, e != nil && e.Degraded)
	}
	if got := met2.Counter("server_snapshot_corrupt_total").Value(); got != 1 {
		t.Fatalf("corrupt counter = %d", got)
	}
	// The damaged file is evidence, not garbage: quarantined, not deleted.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot still in place")
	}
	matches, _ := filepath.Glob(path + ".corrupt-*")
	if len(matches) != 1 {
		t.Fatalf("quarantine files = %v", matches)
	}
	degraded, rebuilding := reg2.States()
	if len(degraded)+len(rebuilding) != 1 {
		t.Fatalf("States = %v / %v", degraded, rebuilding)
	}
	// Degraded answers must equal the healthy baseline: slower, never
	// different.
	if got := relateAll(t, reg2); !reflect.DeepEqual(got, baseline) {
		t.Fatal("degraded answers differ from baseline")
	}

	reg2.WaitRebuilds()
	e, _ = reg2.Get("grid")
	if e.Degraded {
		t.Fatal("entry still degraded after rebuild")
	}
	if got := met2.Counter("server_rebuilds_total").Value(); got != 1 {
		t.Fatalf("rebuilds = %d", got)
	}
	if got := relateAll(t, reg2); !reflect.DeepEqual(got, baseline) {
		t.Fatal("recovered answers differ from baseline")
	}
	// The rebuild re-persisted a valid snapshot.
	if _, err := snapshot.Read(path); err != nil {
		t.Fatalf("snapshot after recovery: %v", err)
	}
	deg, reb := reg2.States()
	if len(deg)+len(reb) != 0 {
		t.Fatalf("States after recovery = %v / %v", deg, reb)
	}
}

// TestCrashRecoveryTruncationSweep is the kill-restart drill: a process
// dying mid-write leaves a torn snapshot at an arbitrary offset. Every
// restart must quarantine it, serve degraded, recover in the
// background, and never change an answer.
func TestCrashRecoveryTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	reg1, _ := resRegistry(t, dir)
	baseline := relateAll(t, reg1)
	path, err := snapshot.DatasetPath(dir, "grid")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	offsets := []int64{0, 1, 7, int64(len(clean) / 4), int64(len(clean) / 2), int64(len(clean) - 1)}
	for _, off := range offsets {
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := fault.TruncateAt(path, off); err != nil {
			t.Fatal(err)
		}
		met := obs.NewRegistry()
		reg := NewRegistry(resSpace, resOrder)
		reg.Instrument(met)
		if err := reg.EnableSnapshots(dir); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.register("grid", "squares", resPolys()); err != nil {
			t.Fatalf("truncation at %d: register: %v", off, err)
		}
		if got := met.Counter("server_snapshot_corrupt_total").Value(); got != 1 {
			t.Fatalf("truncation at %d: corrupt counter = %d", off, got)
		}
		if got := relateAll(t, reg); !reflect.DeepEqual(got, baseline) {
			t.Fatalf("truncation at %d: answers changed", off)
		}
		reg.WaitRebuilds()
		if e, _ := reg.Get("grid"); e.Degraded {
			t.Fatalf("truncation at %d: no recovery", off)
		}
		if got := relateAll(t, reg); !reflect.DeepEqual(got, baseline) {
			t.Fatalf("truncation at %d: post-recovery answers changed", off)
		}
		// Clean up quarantine evidence for the next iteration.
		for _, q := range glob(t, path+".corrupt-*") {
			os.Remove(q)
		}
	}
}

func glob(t *testing.T, pattern string) []string {
	t.Helper()
	m, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRebuildPanicStaysDegraded: a panicking background rebuild must
// leave the dataset serving (degraded) and the process alive.
func TestRebuildPanicStaysDegraded(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	reg1, _ := resRegistry(t, dir)
	baseline := relateAll(t, reg1)
	path, _ := snapshot.DatasetPath(dir, "grid")
	if err := fault.TruncateAt(path, 50); err != nil {
		t.Fatal(err)
	}

	fault.Arm("registry.rebuild", fault.Behavior{Panic: true})
	met := obs.NewRegistry()
	reg := NewRegistry(resSpace, resOrder)
	reg.Instrument(met)
	if err := reg.EnableSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.register("grid", "squares", resPolys()); err != nil {
		t.Fatal(err)
	}
	reg.WaitRebuilds()
	if got := met.Counter("server_rebuild_panics_total").Value(); got != 1 {
		t.Fatalf("rebuild panics = %d", got)
	}
	e, _ := reg.Get("grid")
	if !e.Degraded {
		t.Fatal("entry must stay degraded after a panicked rebuild")
	}
	if got := relateAll(t, reg); !reflect.DeepEqual(got, baseline) {
		t.Fatal("degraded answers differ after panicked rebuild")
	}
}

// TestRegistryRejectsHostileNames: dataset names reach os.Open and the
// snapshot path join, so traversal and absolute paths must die at the
// gate.
func TestRegistryRejectsHostileNames(t *testing.T) {
	reg := NewRegistry(resSpace, resOrder)
	if err := reg.EnableSnapshots(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	polys := resPolys()[:1]
	for _, name := range []string{
		"", ".", "..", "../../etc/cron.d/x", "..\\..\\etc", "/etc/passwd",
		"C:\\windows", "a/b", "a\\b", ".hidden", "-rf", "x\x00y", "x\ny",
		strings.Repeat("n", 300),
	} {
		if _, err := reg.Add(name, "", polys); err == nil {
			t.Errorf("Add(%q) accepted a hostile name", name)
		}
		if _, err := reg.register(name, "", polys); err == nil {
			t.Errorf("register(%q) accepted a hostile name", name)
		}
		if err := ValidateName(name); err == nil {
			t.Errorf("ValidateName(%q) passed", name)
		}
	}
	// Control: a legitimate name still registers.
	if _, err := reg.register("ok-name", "", polys); err != nil {
		t.Fatalf("register(ok-name): %v", err)
	}
}

// TestServerDegradedHealthAndServing drives the whole stack over HTTP:
// a corrupt snapshot must show up in /v1/healthz, relate answers must
// match the healthy ones while degraded, and health must return to ok
// after the background rebuild.
func TestServerDegradedHealthAndServing(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	reg1, _ := resRegistry(t, dir)

	startServer := func(reg *Registry) (*Server, *Client) {
		svc := New(reg, Config{})
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(func() {
			ts.Close()
			svc.Close()
		})
		return svc, NewClient(ts.URL)
	}
	_, c1 := startServer(reg1)
	ctx := context.Background()
	probe := "POLYGON ((10 10, 60 10, 60 60, 10 60, 10 10))"
	healthyResp, err := c1.Relate(ctx, RelateRequest{Dataset: "grid", WKT: probe})
	if err != nil {
		t.Fatal(err)
	}

	path, _ := snapshot.DatasetPath(dir, "grid")
	if err := fault.FlipBit(path, 321, 1); err != nil {
		t.Fatal(err)
	}
	fault.Arm("registry.rebuild", fault.Behavior{Delay: 400 * time.Millisecond})
	reg2, _ := resRegistry(t, dir)
	_, c2 := startServer(reg2)

	h, err := c2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || len(h.Degraded)+len(h.Rebuilding) != 1 {
		t.Fatalf("degraded health = %+v", h)
	}
	infos, err := c2.Datasets(ctx)
	if err != nil || len(infos) != 1 {
		t.Fatalf("datasets: %v %v", infos, err)
	}
	if infos[0].Status != "degraded" && infos[0].Status != "rebuilding" {
		t.Fatalf("dataset status = %q", infos[0].Status)
	}
	degradedResp, err := c2.Relate(ctx, RelateRequest{Dataset: "grid", WKT: probe})
	if err != nil {
		t.Fatalf("degraded relate: %v", err)
	}
	if !reflect.DeepEqual(degradedResp.Matches, healthyResp.Matches) {
		t.Fatalf("degraded matches differ:\nhealthy: %v\ndegraded: %v",
			healthyResp.Matches, degradedResp.Matches)
	}

	reg2.WaitRebuilds()
	h, err = c2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("post-recovery health = %+v", h)
	}
	recoveredResp, err := c2.Relate(ctx, RelateRequest{Dataset: "grid", WKT: probe})
	if err != nil || !reflect.DeepEqual(recoveredResp.Matches, healthyResp.Matches) {
		t.Fatalf("post-recovery relate: %v (matches equal: %v)",
			err, reflect.DeepEqual(recoveredResp.Matches, healthyResp.Matches))
	}
}

// TestRelatePanicIsolatedOverHTTP: a poisoned object (nil geometry)
// panics during refinement; the probe that hits it gets a 500 with a
// repro dump, other probes and the process live on.
func TestRelatePanicIsolatedOverHTTP(t *testing.T) {
	reproDir := t.TempDir()
	met := obs.NewRegistry()
	reg := NewRegistry(resSpace, resOrder)
	reg.Instrument(met)
	if _, err := reg.register("grid", "squares", resPolys()); err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Get("grid")
	e.Dataset.Objects[0].Poly = nil // poison: Refine will nil-deref

	svc := New(reg, Config{ReproDir: reproDir, Logf: t.Logf, Metrics: met})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	// ST2 refines every MBR-surviving candidate, so a probe over object
	// 0 must hit the poison.
	_, err := c.Relate(ctx, RelateRequest{
		Dataset: "grid", Method: "ST2",
		WKT: "POLYGON ((5 5, 30 5, 30 30, 5 30, 5 5))",
	})
	var api *APIError
	if !errors.As(err, &api) || api.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned probe: err = %v, want 500", err)
	}
	if !strings.Contains(api.Message, "panicked") {
		t.Fatalf("error message %q", api.Message)
	}
	if got := met.Counter("server_pair_panics_total").Value(); got == 0 {
		t.Fatal("pair panic not counted")
	}
	dumps := glob(t, filepath.Join(reproDir, "panic-relate-*.txt"))
	if len(dumps) != 0 {
		t.Fatalf("nil-geometry pair cannot be dumped, got %v", dumps)
	}

	// A probe far from the poison answers normally: the process and the
	// batcher survived.
	resp, err := c.Relate(ctx, RelateRequest{
		Dataset: "grid", Method: "ST2",
		WKT: "POLYGON ((200 200, 240 200, 240 240, 200 240, 200 200))",
	})
	if err != nil {
		t.Fatalf("healthy probe after panic: %v", err)
	}
	if len(resp.Matches) == 0 {
		t.Fatal("healthy probe found nothing")
	}

	// Same drill for the join path (per-pair guard in the harness sweep).
	if _, err := reg.register("grid2", "squares", resPolys()); err != nil {
		t.Fatal(err)
	}
	_, err = c.Join(ctx, JoinRequest{Left: "grid", Right: "grid2", Method: "ST2"})
	if !errors.As(err, &api) || api.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned join: err = %v, want 500", err)
	}
	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("server dead after poisoned join: %v", err)
	}
}

// TestReproDumpWritesCorpusFormat: a panic on a pair with real geometry
// must produce a parseable oracle-corpus repro file.
func TestReproDumpWritesCorpusFormat(t *testing.T) {
	dir := t.TempDir()
	polys := resPolys()
	a := &core.Object{ID: 0, Poly: polys[0], MBR: polys[0].Bounds()}
	b := &core.Object{ID: 1, Poly: polys[1], MBR: polys[1].Bounds()}
	path := dumpReproPair(dir, "join", a, b, "boom")
	if path == "" {
		t.Fatal("dump failed")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, want := range []string{"# panic-join: boom", "A MULTIPOLYGON", "B MULTIPOLYGON", "V 4 4"} {
		if !strings.Contains(body, want) {
			t.Fatalf("repro body missing %q:\n%s", want, body)
		}
	}
	// Idempotent: the same crash maps to the same file name.
	if again := dumpReproPair(dir, "join", a, b, "boom"); again != path {
		t.Fatalf("repro path changed: %q vs %q", again, path)
	}
	if dumpReproPair("", "join", a, b, "boom") != "" {
		t.Fatal("disabled dir must not dump")
	}
}
