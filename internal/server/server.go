package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/de9im"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Config tunes the service; zero values select the documented defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing query requests
	// (default 4 × GOMAXPROCS: queries are CPU-bound, a small multiple
	// keeps the cores busy while one request waits in a batch window).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot (default MaxInFlight);
	// beyond it requests are rejected immediately with 429.
	MaxQueue int
	// QueueWait is how long a queued request waits for a slot before
	// 429 (default 100ms — shedding beats queueing at saturation).
	QueueWait time.Duration
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 10s); MaxTimeout clamps what a request may ask for
	// (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// JoinWorkers sizes the worker pools of the join sweep and the
	// relate batch sweep (default GOMAXPROCS).
	JoinWorkers int
	// BatchWindow and MaxBatch shape relate micro-batching: probes
	// arriving within BatchWindow (default 250µs) are grouped up to
	// MaxBatch (default 64) and share one sweep.
	BatchWindow time.Duration
	MaxBatch    int
	// DefaultLimit and MaxLimit bound the matches/pairs a response may
	// carry (defaults 1000 and 100000).
	DefaultLimit int
	MaxLimit     int
	// Metrics receives all instrumentation (default: a fresh registry).
	Metrics *obs.Registry
	// ReproDir, when set, receives a WKT dump (oracle regression-corpus
	// format) of every geometry pair whose evaluation panicked, so
	// crashes become replayable test cases. Empty disables dumping.
	ReproDir string
	// Tracer, when non-nil, records request-scoped span traces: every
	// request gets a root span, sampled ones a full handler → sweep
	// worker → settling-stage tree, and requests crossing the tracer's
	// slow threshold are kept regardless of sampling. The buffer is
	// served on /debug/traces.
	Tracer *trace.Tracer
	// SlowDir, when set together with a Tracer whose SlowThreshold is
	// on, receives slow-query forensics: the slow request's trace as
	// JSON plus a WKT dump of its slowest pair in the oracle
	// regression-corpus format (same as ReproDir panic dumps), so a
	// latency outlier becomes a replayable input.
	SlowDir string
	// Shard, when non-nil, runs the server as one shard of a
	// partitioned deployment: candidate pairs whose reference point
	// (the min corner of the two MBRs' intersection) falls outside the
	// shard's key range are dropped before evaluation, so boundary
	// pairs replicated across shards are answered by exactly one of
	// them and a scatter-gather merge reproduces the single-node
	// result. The registry serving this config must be filtered with
	// the same assignment (Registry.SetShard).
	Shard *shard.Assignment
	// Logf receives the server's operational log lines (recovered
	// panics, degraded-mode transitions); default discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = c.MaxInFlight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.JoinWorkers <= 0 {
		c.JoinWorkers = runtime.GOMAXPROCS(0)
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 250 * time.Microsecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.DefaultLimit <= 0 {
		c.DefaultLimit = 1000
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 100000
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the topology query service: once-built indexes from a
// Registry behind an HTTP JSON API with admission control, per-request
// deadlines, relate micro-batching and graceful drain.
type Server struct {
	cfg  Config
	data *Registry
	met  *obs.Registry
	mux  *http.ServeMux
	adm  *admission
	bat  *batcher

	// rootCtx is cancelled when the drain grace expires (or Close runs):
	// it force-cancels every in-flight request context and stops the
	// batcher dispatcher.
	rootCtx    context.Context
	rootCancel context.CancelCauseFunc

	wg       sync.WaitGroup // in-flight requests
	draining atomic.Bool

	rejected *obs.Counter
	timeouts *obs.Counter
	logf     func(format string, args ...any)

	tracer  *trace.Tracer
	slowThr time.Duration
	// owns is the shard-mode ownership predicate over candidate MBR
	// pairs (nil when the server owns the whole keyspace).
	owns func(a, b geom.MBR) bool
	// degServed counts requests answered by the forced ST2 pipeline
	// while a dataset involved was degraded, per route.
	degServed map[string]*obs.Counter

	// testHook, when non-nil, runs inside every admitted request before
	// the real work — lifecycle tests use it to hold slots at a gate.
	testHook func(ctx context.Context) error
}

// New assembles a server over the registry's datasets.
func New(data *Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	met := cfg.Metrics
	s := &Server{
		cfg:      cfg,
		data:     data,
		met:      met,
		mux:      http.NewServeMux(),
		rejected: met.Counter("server_rejected_total{reason=\"overload\"}"),
		timeouts: met.Counter("server_rejected_total{reason=\"deadline\"}"),
		logf:     cfg.Logf,
		tracer:   cfg.Tracer,
		slowThr:  cfg.Tracer.SlowThreshold(),
		degServed: map[string]*obs.Counter{
			"relate": met.Counter(obs.Name("server_degraded_requests_total", "route", "relate")),
			"join":   met.Counter(obs.Name("server_degraded_requests_total", "route", "join")),
		},
	}
	if cfg.Shard != nil {
		s.owns = cfg.Shard.Owns
	}
	s.installSlowLog()
	s.rootCtx, s.rootCancel = context.WithCancelCause(context.Background())
	s.adm = newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait,
		met.Gauge("server_inflight"), met.Gauge("server_queue_depth"))
	s.bat = newBatcher(cfg.BatchWindow, cfg.MaxBatch, cfg.JoinWorkers, met, s.pairPanic)
	go s.bat.run(s.rootCtx)

	// Build identity: constant gauge, labels carry the facts.
	met.GaugeFunc(obs.Name("stj_build_info",
		"version", buildinfo.Version,
		"go", buildinfo.GoVersion(),
		"grid_order", fmt.Sprint(data.Builder().Grid().Order())),
		func() int64 { return 1 })

	s.mux.HandleFunc("GET /v1/healthz", s.route("healthz", false, s.handleHealthz))
	s.mux.HandleFunc("GET /v1/datasets", s.route("datasets", false, s.handleDatasets))
	s.mux.HandleFunc("GET /v1/metricz", s.route("metricz", false, s.handleMetricz))
	s.mux.HandleFunc("POST /v1/relate", s.route("relate", true, s.handleRelate))
	s.mux.HandleFunc("POST /v1/join", s.route("join", true, s.handleJoin))
	s.registerIngestRoutes()
	// The PR-1 debug surface rides on the same server: metrics scrapes
	// and live profiles come from the serving process itself. The trace
	// buffer mounts under the same /debug/ tree (nil-tracer safe).
	debug := obs.Handler(met, obs.Mount{Pattern: "/debug/traces", Handler: cfg.Tracer.Handler()})
	s.mux.Handle("/metrics", debug)
	s.mux.Handle("/metrics.json", debug)
	s.mux.Handle("/debug/", debug)
	return s
}

// Handler returns the service's HTTP handler (mount it on any server).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the instrumentation registry.
func (s *Server) Metrics() *obs.Registry { return s.met }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the service: new requests get 503 immediately,
// in-flight requests run to completion, and when ctx expires before
// they finish their contexts are force-cancelled (the sweeps are
// context-aware, so they unwind promptly) and ctx's error is returned.
// The caller separately shuts down the http.Server carrying the
// handler; Shutdown only manages the service's own work.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.rootCancel(errors.New("server: shut down"))
		return nil
	case <-ctx.Done():
		s.rootCancel(fmt.Errorf("server: drain grace expired: %w", ctx.Err()))
		<-done // sweeps unwind on cancellation; wait for handlers to exit
		return ctx.Err()
	}
}

// Close force-stops without draining (tests and error paths).
func (s *Server) Close() {
	s.draining.Store(true)
	s.rootCancel(errors.New("server: closed"))
	s.wg.Wait()
}

// httpError carries a status code (and an optional machine-readable
// reason code) through a handler's error return.
type httpError struct {
	code   int
	msg    string
	reason string
}

func (e *httpError) Error() string { return e.msg }

func errf(code int, format string, args ...any) error {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

// errfr is errf with a stable reason code for the error envelope, so
// clients can branch on the cause without parsing the message text.
func errfr(code int, reason, format string, args ...any) error {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...), reason: reason}
}

// errorReason extracts the machine-readable reason, if the handler set
// one.
func errorReason(err error) string {
	var he *httpError
	if errors.As(err, &he) {
		return he.reason
	}
	return ""
}

// handlerFunc is the shape of every endpoint: decode from r, return a
// JSON-encodable payload or an error the middleware maps to a status.
type handlerFunc func(ctx context.Context, r *http.Request) (any, error)

// route wraps an endpoint with the service middleware: drain check,
// in-flight tracking, admission (for query endpoints), per-endpoint
// request counters and latency histograms, and error → status mapping.
func (s *Server) route(name string, admit bool, h handlerFunc) http.HandlerFunc {
	lat := s.met.Histogram(obs.Name("server_request_seconds", "route", name), obs.DurationBuckets)
	codeCtr := func(code int) *obs.Counter {
		return s.met.Counter(obs.Name("server_requests_total", "route", name, "code", fmt.Sprint(code)))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		span := obs.StartSpan(lat)
		// Every request gets a trace root span (one small allocation);
		// whether children record was decided by the tracer's sampling
		// coin. finish closes both timers exactly once per exit path and,
		// when the trace is kept, plants its id as the latency bucket's
		// exemplar — the histogram outlier links to its trace. A caller
		// that already carries a trace (the scatter-gather router)
		// propagates its id via TraceHeader; adopting it as this root's
		// id stitches the two processes' span trees together.
		var tctx context.Context
		var rsp *trace.Span
		if pid, ok := trace.ParseID(r.Header.Get(TraceHeader)); ok {
			tctx, rsp = s.tracer.StartRemote(r.Context(), "http."+name, pid)
			rsp.SetStr("remote_parent", "true")
		} else {
			tctx, rsp = s.tracer.Start(r.Context(), "http."+name)
		}
		finish := func(code int) {
			codeCtr(code).Inc()
			rsp.SetInt("http_status", int64(code))
			d := span.End()
			rsp.End()
			if rsp.Recording() || (s.slowThr > 0 && d >= s.slowThr) {
				lat.SetExemplar(d.Seconds(), rsp.TraceID())
			}
		}
		// Outermost panic barrier: whatever escapes the per-pair guards
		// costs this request a 500, never the process. The handler has
		// not written its response yet when it can still panic (payload
		// encoding happens after it returns), so the error write is safe.
		wrote := false
		defer func() {
			if rv := recover(); rv != nil {
				s.handlerPanic(name, rv)
				rsp.SetStr("panic", fmt.Sprint(rv))
				if !wrote {
					writeError(w, http.StatusInternalServerError, "internal error")
					finish(http.StatusInternalServerError)
				} else {
					finish(http.StatusOK)
				}
			}
		}()
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			finish(http.StatusServiceUnavailable)
			return
		}
		s.wg.Add(1)
		defer s.wg.Done()

		// Tie the request to the drain lifecycle: when the grace period
		// expires, rootCtx cancels every in-flight request context.
		ctx, cancel := context.WithCancel(tctx)
		defer cancel()
		stop := context.AfterFunc(s.rootCtx, cancel)
		defer stop()

		if admit {
			release, err := s.adm.acquire(ctx)
			if err != nil {
				code := s.admissionCode(err)
				writeError(w, code, err.Error())
				finish(code)
				return
			}
			defer release()
		}

		payload, err := h(ctx, r)
		code := http.StatusOK
		wrote = true
		if err != nil {
			code = s.errorCode(err)
			writeErrorReason(w, code, err.Error(), errorReason(err))
		} else {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(payload)
		}
		finish(code)
	}
}

func (s *Server) admissionCode(err error) int {
	switch {
	case errors.Is(err, errOverload):
		s.rejected.Inc()
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		return http.StatusGatewayTimeout
	default:
		return http.StatusServiceUnavailable
	}
}

func (s *Server) errorCode(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.code
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away or drain grace expired mid-request.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeErrorReason(w, code, msg, "")
}

func writeErrorReason(w http.ResponseWriter, code int, msg, reason string) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		// Queue wait already absorbed sub-second bursts; tell clients to
		// back off for a beat instead of hammering.
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg, Reason: reason})
}

// requestCtx applies the request's deadline: timeoutMS if given
// (clamped to MaxTimeout), the server default otherwise.
func (s *Server) requestCtx(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(ctx, d)
}

func (s *Server) handleHealthz(ctx context.Context, r *http.Request) (any, error) {
	degraded, rebuilding := s.data.States()
	status := "ok"
	if len(degraded)+len(rebuilding) > 0 {
		status = "degraded"
	}
	if s.draining.Load() {
		status = "draining"
	}
	var degServed int64
	for _, c := range s.degServed {
		degServed += c.Value()
	}
	var si *ShardInfo
	if a := s.cfg.Shard; a != nil {
		si = &ShardInfo{Index: a.Index(), KeyRange: a.Range().String(), RouteOrder: a.RouteOrder()}
	}
	return HealthResponse{
		Status: status,
		Build: BuildInfo{
			Version:   buildinfo.Version,
			Go:        buildinfo.GoVersion(),
			GridOrder: s.data.Builder().Grid().Order(),
		},
		Datasets:        s.data.Len(),
		InFlight:        s.met.Gauge("server_inflight").Value(),
		Queued:          s.met.Gauge("server_queue_depth").Value(),
		Degraded:        degraded,
		Rebuilding:      rebuilding,
		DegradedServed:  degServed,
		Shard:           si,
		WalPendingBytes: s.data.WalPendingBytes(),
	}, nil
}

// handleMetricz serves the full metrics snapshot as JSON on the main
// API port, so operators behind a firewall that only exposes the API
// don't need the separate -metrics debug listener.
func (s *Server) handleMetricz(ctx context.Context, r *http.Request) (any, error) {
	return s.met.Snapshot(), nil
}

func (s *Server) handleDatasets(ctx context.Context, r *http.Request) (any, error) {
	return s.data.List(), nil
}

func decodeBody(r *http.Request, into any) error {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 16<<20))
	if err != nil {
		return errf(http.StatusBadRequest, "reading body: %v", err)
	}
	if err := json.Unmarshal(body, into); err != nil {
		return errf(http.StatusBadRequest, "decoding request: %v", err)
	}
	return nil
}

func parseMethod(name string) (core.Method, error) {
	if name == "" {
		return core.PC, nil
	}
	for _, m := range core.Methods {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, errf(http.StatusBadRequest, "unknown method %q", name)
}

func parseRelation(name string) (de9im.Relation, error) {
	for rel := de9im.Relation(0); int(rel) < de9im.NumRelations; rel++ {
		if rel.String() == name {
			return rel, nil
		}
	}
	return 0, errf(http.StatusBadRequest, "unknown predicate %q", name)
}

// probeGeometry extracts the probe polygon from a relate request,
// mapping decode failures to 400s.
func probeGeometry(req *RelateRequest) (*geom.Polygon, error) {
	p, err := req.Geometry()
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	return p, nil
}

func (s *Server) clampLimit(limit int) int {
	if limit <= 0 {
		return s.cfg.DefaultLimit
	}
	if limit > s.cfg.MaxLimit {
		return s.cfg.MaxLimit
	}
	return limit
}

func (s *Server) handleRelate(ctx context.Context, r *http.Request) (any, error) {
	var req RelateRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	entry, ok := s.data.Get(req.Dataset)
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown dataset %q", req.Dataset)
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		return nil, err
	}
	rsp := trace.FromContext(ctx)
	rsp.SetStr("dataset", req.Dataset)
	if entry.Degraded {
		// The entry has no approximations (post-corruption rebuild in
		// flight); ST2 never reads them, so answers stay correct. An
		// interval filter over empty lists would be silently wrong.
		method = core.ST2
		s.degServed["relate"].Inc()
		rsp.SetStr("degraded", "true")
	}
	rsp.SetStr("method", method.String())
	job := &probeJob{
		entry:  entry,
		method: method,
		limit:  s.clampLimit(req.Limit),
		done:   make(chan error, 1),
		span:   rsp,
		owns:   s.owns,
	}
	job.track = rsp.Recording() || (s.slowThr > 0 && s.cfg.SlowDir != "")
	switch {
	case req.Predicate != "" && req.Mask != "":
		return nil, errf(http.StatusBadRequest, "give predicate or mask, not both")
	case req.Predicate != "":
		if job.pred, err = parseRelation(req.Predicate); err != nil {
			return nil, err
		}
		job.mode = modePred
	case req.Mask != "":
		if job.mask, err = de9im.ParseMask(req.Mask); err != nil {
			return nil, errf(http.StatusBadRequest, "mask: %v", err)
		}
		job.mode = modeMask
	}
	poly, err := probeGeometry(&req)
	if err != nil {
		return nil, err
	}
	if job.probe, err = s.data.Probe(poly); err != nil {
		return nil, errf(http.StatusBadRequest, "probe geometry: %v", err)
	}

	rctx, cancel := s.requestCtx(ctx, req.TimeoutMS)
	defer cancel()
	job.ctx = rctx

	if s.testHook != nil {
		if err := s.testHook(rctx); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	select {
	case s.bat.jobs <- job:
	case <-rctx.Done():
		return nil, rctx.Err()
	}
	select {
	case err := <-job.done:
		if err != nil {
			return nil, err
		}
	case <-rctx.Done():
		return nil, rctx.Err()
	}
	elapsed := time.Since(start)
	rsp.SetInt("candidates", int64(job.candidates))
	rsp.SetInt("evaluated", job.evaluated.Load())
	rsp.SetInt("refined", job.refined.Load())
	if slowObj, slowDur := job.slowest(); slowObj != nil {
		rsp.SetInt("slow_candidate_id", int64(slowObj.ID))
		rsp.SetInt("slow_candidate_ns", int64(slowDur))
		if s.slowThr > 0 && elapsed >= s.slowThr {
			s.dumpSlowPair("relate", rsp.TraceID(), job.probe, slowObj, slowDur)
		}
	}
	matches := job.matches
	if matches == nil {
		matches = []RelateMatch{}
	}
	return RelateResponse{
		Dataset:      req.Dataset,
		Candidates:   job.candidates,
		Evaluated:    int(job.evaluated.Load()),
		Refined:      int(job.refined.Load()),
		Matches:      matches,
		Truncated:    job.truncated,
		BatchSize:    job.batchSize,
		ElapsedMS:    float64(elapsed) / float64(time.Millisecond),
		Epoch:        entry.Epoch,
		IndexVersion: entry.Version,
	}, nil
}

func (s *Server) handleJoin(ctx context.Context, r *http.Request) (any, error) {
	var req JoinRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	left, ok := s.data.Get(req.Left)
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown dataset %q", req.Left)
	}
	right, ok := s.data.Get(req.Right)
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown dataset %q", req.Right)
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		return nil, err
	}
	rsp := trace.FromContext(ctx)
	rsp.SetStr("left", req.Left)
	rsp.SetStr("right", req.Right)
	if left.Degraded || right.Degraded {
		method = core.ST2 // see handleRelate: degraded entries carry no approximations
		s.degServed["join"].Inc()
		rsp.SetStr("degraded", "true")
	}
	rsp.SetStr("method", method.String())
	if req.Predicate != "" && req.Mask != "" {
		return nil, errf(http.StatusBadRequest, "give predicate or mask, not both")
	}
	limit := s.clampLimit(req.Limit)

	rctx, cancel := s.requestCtx(ctx, req.TimeoutMS)
	defer cancel()

	if s.testHook != nil {
		if err := s.testHook(rctx); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	// Candidate generation: synchronized R-tree traversal over the two
	// once-built indexes, abandoned mid-tree when the deadline expires.
	csp := rsp.Child("candidates")
	var pairs []harness.Pair
	err = join.JoinViews(rctx, left.View(), right.View(), func(aDelta, bDelta bool, a, b join.Entry) {
		// Shard mode: skip candidate pairs this shard does not own
		// under the reference-point rule — the shard holding the
		// intersection's min corner evaluates them instead, so each
		// boundary pair is answered exactly once fleet-wide.
		if s.owns != nil && !s.owns(a.Box, b.Box) {
			return
		}
		pairs = append(pairs, harness.Pair{R: left.objAt(aDelta, a.ID), S: right.objAt(bDelta, b.ID)})
	})
	csp.SetInt("pairs", int64(len(pairs)))
	csp.End()
	if err != nil {
		return nil, err
	}
	rsp.SetInt("candidates", int64(len(pairs)))

	resp := JoinResponse{
		Left: req.Left, Right: req.Right, Candidates: len(pairs),
		LeftEpoch: left.Epoch, LeftVersion: left.Version,
		RightEpoch: right.Epoch, RightVersion: right.Version,
	}
	var mu sync.Mutex
	addPair := func(p JoinPair) {
		mu.Lock()
		defer mu.Unlock()
		if len(resp.Pairs) >= limit {
			resp.Truncated = true
			return
		}
		resp.Pairs = append(resp.Pairs, p)
	}

	slowIdx, slowDur := -1, time.Duration(0)
	switch {
	case req.Predicate != "":
		pred, perr := parseRelation(req.Predicate)
		if perr != nil {
			return nil, perr
		}
		slowIdx, slowDur, err = s.sweepPairs(rctx, pairs, func(p harness.Pair) {
			rr := core.RelatePred(method, p.R, p.S, pred)
			mu.Lock()
			resp.Evaluated++
			if rr.Refined {
				resp.Refined++
			}
			if rr.Holds {
				resp.Holds++
			}
			mu.Unlock()
			if rr.Holds {
				addPair(JoinPair{LeftID: p.R.ID, RightID: p.S.ID, Relation: pred.String()})
			}
		})
	case req.Mask != "":
		mask, merr := de9im.ParseMask(req.Mask)
		if merr != nil {
			return nil, errf(http.StatusBadRequest, "mask: %v", merr)
		}
		slowIdx, slowDur, err = s.sweepPairs(rctx, pairs, func(p harness.Pair) {
			rr := core.RelateMask(method, p.R, p.S, mask)
			mu.Lock()
			resp.Evaluated++
			if rr.Refined {
				resp.Refined++
			}
			if rr.Holds {
				resp.Holds++
			}
			mu.Unlock()
			if rr.Holds {
				addPair(JoinPair{LeftID: p.R.ID, RightID: p.S.ID})
			}
		})
	default:
		// Find-relation join: the harness's chunk-stealing parallel
		// sweep, deadline-aware, publishing its stats into the registry.
		var st harness.MethodStats
		st, err = harness.RunFindRelationParallelCtx(rctx, method, pairs, s.cfg.JoinWorkers,
			func(i int, res core.Result) {
				if res.Relation != de9im.Disjoint {
					addPair(JoinPair{
						LeftID:   pairs[i].R.ID,
						RightID:  pairs[i].S.ID,
						Relation: res.Relation.String(),
					})
				}
			})
		var pe *harness.PanicError
		if errors.As(err, &pe) {
			// The harness recovered the panic at pair granularity and
			// swept everything else; surface it as a per-request error
			// with the offending pair preserved as a repro case.
			s.met.Counter("server_pair_panics_total").Add(int64(pe.Count))
			p := pairs[pe.Index]
			if path := dumpReproPair(s.cfg.ReproDir, "join-find", p.R, p.S, pe.Value); path != "" {
				s.logf("server: %v (repro dumped to %s)", pe, path)
			} else {
				s.logf("server: %v", pe)
			}
			err = errf(http.StatusInternalServerError, "%v", pe)
		}
		resp.Evaluated = st.Pairs
		resp.Refined = st.Undetermined
		resp.Relations = make(map[string]int)
		for rel, n := range st.Relations {
			if n > 0 {
				resp.Relations[de9im.Relation(rel).String()] = n
			}
		}
		st.Publish(s.met, "server_join")
		slowIdx, slowDur = st.SlowPair, st.SlowPairTime
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	rsp.SetInt("evaluated", int64(resp.Evaluated))
	rsp.SetInt("refined", int64(resp.Refined))
	// Slow-pair forensics ride the root span even on unsampled traces:
	// a slow request kept root-only still names its worst pair.
	if slowDur > 0 && slowIdx >= 0 && slowIdx < len(pairs) {
		p := pairs[slowIdx]
		rsp.SetInt("slow_pair_r", int64(p.R.ID))
		rsp.SetInt("slow_pair_s", int64(p.S.ID))
		rsp.SetInt("slow_pair_ns", int64(slowDur))
		if s.slowThr > 0 && elapsed >= s.slowThr {
			s.dumpSlowPair("join", rsp.TraceID(), p.R, p.S, slowDur)
		}
	}
	resp.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	return resp, nil
}

// sweepPairs evaluates fn over the pairs with the shared worker-pool
// shape, stopping at chunk granularity when ctx is done. Each pair runs
// behind a recover barrier: a panicking pair is counted, repro-dumped
// and reported as an error, and every other pair is still evaluated —
// one poisonous geometry never kills the pool. When the request's trace
// is sampled each worker gets a child span with per-pair spans under
// it, and when either tracing or the slow-query log is armed the pairs
// are individually timed so the sweep reports its slowest pair
// (slowIdx -1, slowDur 0 when untracked or empty).
func (s *Server) sweepPairs(ctx context.Context, pairs []harness.Pair, fn func(harness.Pair)) (slowIdx int, slowDur time.Duration, err error) {
	workers := s.cfg.JoinWorkers
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	rsp := trace.FromContext(ctx)
	track := rsp.Recording() || (s.slowThr > 0 && s.cfg.SlowDir != "")
	const chunk = 16
	var cursor atomic.Int64
	var panicked atomic.Int64
	var mu sync.Mutex // guards slowIdx, slowDur
	slowIdx = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsp := rsp.Child("sweep.worker")
			wsp.SetInt("worker", int64(w))
			swept := 0
			localIdx, localDur := -1, time.Duration(0)
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= len(pairs) {
					break
				}
				hi := lo + chunk
				if hi > len(pairs) {
					hi = len(pairs)
				}
				if ctx.Err() != nil {
					continue
				}
				for i, p := range pairs[lo:hi] {
					p := p
					var t0 time.Time
					if track {
						t0 = time.Now()
					}
					if s.guardPair("join", p.R, p.S, func() { fn(p) }) {
						panicked.Add(1)
						continue
					}
					if track {
						d := time.Since(t0)
						if d > localDur {
							localIdx, localDur = lo+i, d
						}
						if ps := wsp.ChildAt("pair", t0, d); ps != nil {
							ps.SetInt("r_id", int64(p.R.ID))
							ps.SetInt("s_id", int64(p.S.ID))
						}
					}
				}
				swept += hi - lo
			}
			wsp.SetInt("pairs", int64(swept))
			wsp.End()
			if localDur > 0 {
				mu.Lock()
				if localDur > slowDur {
					slowIdx, slowDur = localIdx, localDur
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if n := panicked.Load(); n > 0 {
		return slowIdx, slowDur, errf(http.StatusInternalServerError,
			"evaluation panicked on %d pair(s); repro dumped, see server log", n)
	}
	return slowIdx, slowDur, ctx.Err()
}
