package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/de9im"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/trace"
)

// probeMode selects what a relate probe evaluates per candidate.
type probeMode uint8

const (
	modeFind probeMode = iota // most specific relation (Algorithm 1)
	modePred                  // relate_p predicate
	modeMask                  // arbitrary DE-9IM mask
)

// probeJob is one relate probe in flight through the batcher. The
// dispatcher always delivers exactly one probeResult on done (buffered),
// even after the job's context expires, so neither side can leak.
type probeJob struct {
	ctx   context.Context
	entry *Entry
	probe *core.Object

	mode   probeMode
	method core.Method
	pred   de9im.Relation
	mask   de9im.Mask
	limit  int
	// owns, when non-nil, is the shard-mode ownership filter: probe ×
	// candidate combinations whose reference point lies outside the
	// serving shard's key range are dropped before evaluation (another
	// shard, also holding both geometries, answers them).
	owns func(probe, cand geom.MBR) bool

	// span is the request's trace root span; track arms per-candidate
	// timing (sampled trace or slow-query log). Candidate spans hang
	// directly off span — relate has no worker level worth showing.
	span  *trace.Span
	track bool

	mu        sync.Mutex
	matches   []RelateMatch
	truncated bool
	slowObj   *core.Object  // slowest candidate so far (track only)
	slowDur   time.Duration // its evaluation time
	panicked  atomic.Int64  // candidates whose evaluation panicked
	evaluated atomic.Int64
	refined   atomic.Int64

	candidates int
	batchSize  int
	done       chan error
}

// noteSlow records one timed candidate; the slowest wins the slot.
func (j *probeJob) noteSlow(o *core.Object, d time.Duration) {
	j.mu.Lock()
	if d > j.slowDur {
		j.slowObj, j.slowDur = o, d
	}
	j.mu.Unlock()
}

// slowest returns the slowest candidate seen (nil when untracked).
func (j *probeJob) slowest() (*core.Object, time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.slowObj, j.slowDur
}

func (j *probeJob) addMatch(m RelateMatch) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.matches) >= j.limit {
		j.truncated = true
		return
	}
	j.matches = append(j.matches, m)
}

// batcher micro-batches concurrent relate probes: jobs arriving within
// batchWindow of each other (up to maxBatch) are grouped, jobs against
// the same dataset are flattened into one (probe × candidate) task list,
// and the whole group is swept by a single chunk-stealing worker pool —
// so N concurrent probes cost one pool pass, not N goroutine fan-outs.
// A lone request pays at most batchWindow of extra latency; under load
// the channel is never empty and the window barely waits.
type batcher struct {
	jobs     chan *probeJob
	window   time.Duration
	maxBatch int
	workers  int

	batches   *obs.Counter
	batchSize *obs.Histogram
	// onPanic records a recovered per-task panic (counter + repro dump);
	// nil in tests that build a bare batcher.
	onPanic func(tag string, r, o *core.Object, rv any)
}

func newBatcher(window time.Duration, maxBatch, workers int, met *obs.Registry,
	onPanic func(tag string, r, o *core.Object, rv any)) *batcher {
	return &batcher{
		jobs:     make(chan *probeJob, maxBatch),
		window:   window,
		maxBatch: maxBatch,
		workers:  workers,
		batches:  met.Counter("server_relate_batches_total"),
		batchSize: met.Histogram("server_relate_batch_size",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		onPanic: onPanic,
	}
}

// run is the dispatcher loop; it exits when ctx is cancelled, failing
// any jobs still queued so their handlers unblock immediately.
func (b *batcher) run(ctx context.Context) {
	for {
		var first *probeJob
		select {
		case <-ctx.Done():
			b.drainFailed(ctx)
			return
		case first = <-b.jobs:
		}
		batch := []*probeJob{first}
		timer := time.NewTimer(b.window)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case j := <-b.jobs:
				batch = append(batch, j)
			case <-timer.C:
				break collect
			case <-ctx.Done():
				break collect
			}
		}
		timer.Stop()
		b.process(batch)
	}
}

func (b *batcher) drainFailed(ctx context.Context) {
	for {
		select {
		case j := <-b.jobs:
			j.done <- context.Cause(ctx)
		default:
			return
		}
	}
}

// process groups the batch by dataset and sweeps each group with one
// shared worker pool over the flattened (probe, candidate) tasks.
func (b *batcher) process(batch []*probeJob) {
	b.batches.Inc()
	groups := make(map[*Entry][]*probeJob)
	for _, j := range batch {
		groups[j.entry] = append(groups[j.entry], j)
	}
	for _, jobs := range groups {
		b.batchSize.Observe(float64(len(jobs)))
		b.processGroup(jobs)
	}
}

// task is one probe-candidate evaluation.
type task struct {
	job *probeJob
	obj *core.Object
}

func (b *batcher) processGroup(jobs []*probeJob) {
	var tasks []task
	for _, j := range jobs {
		j.batchSize = len(jobs)
		// All candidates come from the entry's merged epoch view: the
		// base tree minus tombstones plus the delta side tree. The group
		// key is the entry pointer, so the whole group shares one epoch.
		view := j.entry.View()
		err := view.QueryContext(j.ctx, j.probe.MBR, func(delta bool, e join.Entry) {
			if j.owns != nil && !j.owns(j.probe.MBR, e.Box) {
				return
			}
			tasks = append(tasks, task{job: j, obj: j.entry.objAt(delta, e.ID)})
			j.candidates++
		})
		if err != nil {
			j.done <- err
			j.candidates = -1 // sentinel: already answered
			continue
		}
	}
	live := jobs[:0]
	for _, j := range jobs {
		if j.candidates >= 0 {
			live = append(live, j)
		}
	}
	if len(tasks) > 0 {
		b.sweep(tasks)
	}
	for _, j := range live {
		switch {
		case j.ctx.Err() != nil:
			j.done <- j.ctx.Err()
		case j.panicked.Load() > 0:
			// Only the probes whose candidate evaluation panicked fail;
			// the rest of the batch answers normally.
			j.done <- errf(http.StatusInternalServerError,
				"evaluation panicked on %d candidate(s); repro dumped, see server log",
				j.panicked.Load())
		default:
			j.done <- nil
		}
	}
}

// sweep runs the task list on a chunk-stealing worker pool, the same
// shape as the harness's parallel find-relation sweep.
func (b *batcher) sweep(tasks []task) {
	workers := b.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	const chunk = 16
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= len(tasks) {
					return
				}
				hi := lo + chunk
				if hi > len(tasks) {
					hi = len(tasks)
				}
				for _, t := range tasks[lo:hi] {
					if t.job.ctx.Err() != nil {
						continue // expired probe: skip its remaining work
					}
					b.evalTaskGuarded(t)
				}
			}
		}()
	}
	wg.Wait()
}

// evalTaskGuarded runs one probe-candidate evaluation behind a recover
// barrier: a panicking candidate fails only its own probe (recorded on
// the job), the rest of the batch — other probes sharing the same sweep
// included — completes normally.
func (b *batcher) evalTaskGuarded(t task) {
	defer func() {
		if rv := recover(); rv != nil {
			t.job.panicked.Add(1)
			if b.onPanic != nil {
				b.onPanic("relate", t.job.probe, t.obj, rv)
			}
		}
	}()
	evalTask(t)
}

func evalTask(t task) {
	j := t.job
	// Tracked jobs (sampled trace or armed slow-query log) time each
	// candidate; find mode additionally rides the observed pipeline to
	// split the time into filter/refine stage spans. Untracked jobs run
	// the plain path — the sink stays a nil interface.
	var start time.Time
	var filter, refineDur time.Duration
	var sink core.PipelineSink
	if j.track {
		start = time.Now()
		sink = core.SinkFunc(func(_ core.Method, _ core.Result, _ core.Verdict, f, r time.Duration) {
			filter, refineDur = f, r
		})
	}
	switch j.mode {
	case modePred:
		rr := core.RelatePred(j.method, j.probe, t.obj, j.pred)
		if rr.Refined {
			j.refined.Add(1)
		}
		if rr.Holds {
			j.addMatch(RelateMatch{ID: t.obj.ID, Relation: j.pred.String()})
		}
	case modeMask:
		rr := core.RelateMask(j.method, j.probe, t.obj, j.mask)
		if rr.Refined {
			j.refined.Add(1)
		}
		if rr.Holds {
			j.addMatch(RelateMatch{ID: t.obj.ID})
		}
	default: // modeFind
		res := core.FindRelationObserved(j.method, j.probe, t.obj, sink)
		if res.Refined {
			j.refined.Add(1)
		}
		if res.Relation != de9im.Disjoint {
			j.addMatch(RelateMatch{ID: t.obj.ID, Relation: res.Relation.String()})
		}
	}
	j.evaluated.Add(1)
	if !j.track {
		return
	}
	d := time.Since(start)
	j.noteSlow(t.obj, d)
	if ps := j.span.ChildAt("candidate", start, d); ps != nil {
		ps.SetInt("id", int64(t.obj.ID))
		if filter+refineDur > 0 {
			ps.ChildAt("filter", start, filter)
			if refineDur > 0 {
				ps.ChildAt("refine", start.Add(d-refineDur), refineDur)
			}
		}
	}
}
