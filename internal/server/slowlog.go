// Slow-query forensics. When the tracer's slow threshold is crossed,
// two artifacts land in Config.SlowDir: the request's trace as JSON
// (written from the tracer's OnSlow hook, where the completed span tree
// is available) and a WKT dump of the request's slowest geometry pair
// in the oracle regression-corpus format (written synchronously by the
// handler, where the geometries are still live) — so a latency outlier
// becomes both an explainable timeline and a replayable input.
package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/trace"
	"repro/internal/wkt"
)

// installSlowLog wires the tracer's slow-trace hook to the slow-query
// counter, the server log, and (when SlowDir is set) a trace JSON dump.
func (s *Server) installSlowLog() {
	if s.tracer == nil {
		return
	}
	slowCtr := s.met.Counter("server_slow_queries_total")
	s.tracer.OnSlow(func(td trace.TraceData) {
		slowCtr.Inc()
		ms := float64(td.DurNs) / 1e6
		if path := writeSlowTrace(s.cfg.SlowDir, td); path != "" {
			s.logf("server: slow query %s (%s, %.1fms): trace dumped to %s",
				td.ID, td.Root.Name, ms, path)
		} else {
			s.logf("server: slow query %s (%s, %.1fms)", td.ID, td.Root.Name, ms)
		}
	})
}

// writeSlowTrace persists one slow trace as indented JSON named by its
// trace id. Returns "" when disabled or on failure — forensics must
// never add a failure mode to the request that was merely slow.
func writeSlowTrace(dir string, td trace.TraceData) string {
	if dir == "" {
		return ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	data, err := json.MarshalIndent(td, "", "  ")
	if err != nil {
		return ""
	}
	path := filepath.Join(dir, fmt.Sprintf("slow-%s.json", td.ID))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return ""
	}
	return path
}

// dumpSlowPair writes the slow request's worst pair in the oracle
// regression-corpus format (`# note`, `A <wkt>`, `B <wkt>`, `V nA nB`),
// named by route and trace id so it sits next to the trace JSON. The
// handler calls this synchronously while the geometries are live.
func (s *Server) dumpSlowPair(route string, traceID uint64, r, o *core.Object, d time.Duration) {
	dir := s.cfg.SlowDir
	if dir == "" || r == nil || o == nil || r.Poly == nil || o.Poly == nil {
		return
	}
	wa := wkt.MarshalMultiPolygon(geom.NewMultiPolygon(r.Poly))
	wb := wkt.MarshalMultiPolygon(geom.NewMultiPolygon(o.Poly))
	body := fmt.Sprintf("# slow-%s: trace=%s pair_ns=%d\nA %s\nB %s\nV %d %d\n",
		route, trace.FormatID(traceID), d.Nanoseconds(),
		wa, wb, r.Poly.NumVertices(), o.Poly.NumVertices())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("slow-%s-%s.txt", route, trace.FormatID(traceID)))
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		return
	}
	s.logf("server: slow %s pair dumped to %s", route, path)
}
