package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/de9im"
	"repro/internal/geom"
	"repro/internal/shard"
)

// ingestServer mounts a service over the resilience fixture ("grid",
// 36 squares in a 256×256 space with gaps between them) so mutations
// can land in known-empty areas.
func ingestServer(t *testing.T, cfg Config) (*Registry, *Server, *Client) {
	t.Helper()
	reg := NewRegistry(resSpace, resOrder)
	reg.SetLogf(t.Logf)
	if _, err := reg.Add("grid", "squares", resPolys()); err != nil {
		t.Fatal(err)
	}
	svc := New(reg, cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return reg, svc, NewClient(ts.URL)
}

// sq6 is a 6×6 square WKT at (x, y) — fits in the fixture's gaps.
func sq6(x, y float64) string {
	return fmt.Sprintf("POLYGON ((%g %g, %g %g, %g %g, %g %g))",
		x, y, x+6, y, x+6, y+6, x, y+6)
}

// matchIDs runs a relate probe and returns the sorted matched ids.
func matchIDs(t *testing.T, c *Client, probe string) []int {
	t.Helper()
	resp, err := c.Relate(context.Background(), RelateRequest{Dataset: "grid", WKT: probe})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 0, len(resp.Matches))
	for _, m := range resp.Matches {
		ids = append(ids, m.ID)
	}
	sort.Ints(ids)
	return ids
}

func TestIngestLifecycleOverHTTP(t *testing.T) {
	reg, _, c := ingestServer(t, Config{})
	ctx := context.Background()
	// Probe rectangles covering two distinct gaps of the fixture grid.
	gapA, gapB := "POLYGON ((33 33, 43 33, 43 43, 33 43))", "POLYGON ((73 73, 83 73, 83 83, 73 83))"
	if ids := matchIDs(t, c, gapA); len(ids) != 0 {
		t.Fatalf("gap A not empty before insert: %v", ids)
	}

	// Insert into gap A: the server assigns the next id (36 objects → 36).
	ins, err := c.Insert(ctx, "grid", IngestRequest{WKT: sq6(33, 33)})
	if err != nil {
		t.Fatal(err)
	}
	if ins.ID != 36 || !ins.Created || ins.Op != "insert" || ins.PendingOps != 1 {
		t.Fatalf("insert = %+v", ins)
	}
	if ids := matchIDs(t, c, gapA); !reflect.DeepEqual(ids, []int{36}) {
		t.Fatalf("after insert, gap A matches %v, want [36]", ids)
	}

	// Upsert moves the object to gap B: one id, one location.
	ups, err := c.Upsert(ctx, "grid", 36, IngestRequest{WKT: sq6(73, 73)})
	if err != nil {
		t.Fatal(err)
	}
	if ups.Created || ups.Op != "upsert" {
		t.Fatalf("upsert = %+v", ups)
	}
	if ids := matchIDs(t, c, gapA); len(ids) != 0 {
		t.Fatalf("after move, gap A still matches %v", ids)
	}
	if ids := matchIDs(t, c, gapB); !reflect.DeepEqual(ids, []int{36}) {
		t.Fatalf("after move, gap B matches %v, want [36]", ids)
	}

	// Upsert can also supersede a *base* object: replace object 0 (a
	// square at (4,4)) with a square in gap A.
	if _, err := c.Upsert(ctx, "grid", 0, IngestRequest{WKT: sq6(40, 33)}); err != nil {
		t.Fatal(err)
	}
	if ids := matchIDs(t, c, gapA); !reflect.DeepEqual(ids, []int{0}) {
		t.Fatalf("after base upsert, gap A matches %v, want [0]", ids)
	}

	// Delete both; the gaps empty out and a re-delete 404s.
	if _, err := c.Delete(ctx, "grid", 36); err != nil {
		t.Fatal(err)
	}
	del, err := c.Delete(ctx, "grid", 0)
	if err != nil {
		t.Fatal(err)
	}
	if del.Op != "delete" || del.ID != 0 {
		t.Fatalf("delete = %+v", del)
	}
	for _, gap := range []string{gapA, gapB} {
		if ids := matchIDs(t, c, gap); len(ids) != 0 {
			t.Fatalf("after deletes, gap matches %v", ids)
		}
	}
	var apiErr *APIError
	if _, err := c.Delete(ctx, "grid", 36); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("re-delete: err = %v, want 404", err)
	}

	// Ids are never reused: the next insert continues past deleted 36.
	ins2, err := c.Insert(ctx, "grid", IngestRequest{WKT: sq6(113, 33)})
	if err != nil {
		t.Fatal(err)
	}
	if ins2.ID != 37 {
		t.Fatalf("insert after delete assigned id %d, want 37", ins2.ID)
	}

	// The registry agrees: 36 base - 1 deleted + 1 delta object live.
	e, _ := reg.Get("grid")
	if e.Live() != 36 {
		t.Fatalf("Live = %d, want 36", e.Live())
	}
	infos, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].Objects != 36 || infos[0].PendingOps != e.PendingOps() || infos[0].Epoch != 0 {
		t.Fatalf("DatasetInfo = %+v", infos[0])
	}
}

func TestIngestValidation(t *testing.T) {
	_, _, c := ingestServer(t, Config{})
	ctx := context.Background()
	status := func(err error) int {
		t.Helper()
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("err = %v, want APIError", err)
		}
		return apiErr.StatusCode
	}

	// Unknown dataset → 404 on every verb.
	if _, err := c.Insert(ctx, "nope", IngestRequest{WKT: sq6(33, 33)}); status(err) != http.StatusNotFound {
		t.Fatalf("insert into unknown dataset: %v", err)
	}
	if _, err := c.Delete(ctx, "nope", 0); status(err) != http.StatusNotFound {
		t.Fatalf("delete in unknown dataset: %v", err)
	}
	if _, err := c.Compact(ctx, "nope"); status(err) != http.StatusNotFound {
		t.Fatalf("compact of unknown dataset: %v", err)
	}

	// Geometry problems → 400: unparsable WKT, no geometry, both
	// encodings at once, and a well-formed but invalid (self-crossing)
	// polygon — the ValidatePolygon gate.
	for name, req := range map[string]IngestRequest{
		"bad wkt":  {WKT: "POLYGON (("},
		"empty":    {},
		"both":     {WKT: sq6(33, 33), GeoJSON: []byte(`{"type":"Polygon","coordinates":[]}`)},
		"bowtie":   {WKT: "POLYGON ((33 33, 39 39, 39 33, 33 39))"},
		"repeated": {WKT: "POLYGON ((33 33, 33 33, 39 33, 39 39))"},
	} {
		if _, err := c.Insert(ctx, "grid", req); status(err) != http.StatusBadRequest {
			t.Errorf("%s: insert err = %v, want 400", name, err)
		}
	}

	// Non-numeric and negative ids → 400.
	var out IngestResponse
	err := c.doOnce(ctx, http.MethodPut, "/v1/datasets/grid/objects/abc", IngestRequest{WKT: sq6(33, 33)}, &out, nil)
	if status(err) != http.StatusBadRequest {
		t.Fatalf("non-numeric id: %v", err)
	}
	err = c.doOnce(ctx, http.MethodDelete, "/v1/datasets/grid/objects/-1", nil, &out, nil)
	if status(err) != http.StatusBadRequest {
		t.Fatalf("negative id: %v", err)
	}

	// Nothing above may have mutated the dataset.
	if ids := matchIDs(t, c, "POLYGON ((33 33, 43 33, 43 43, 33 43))"); len(ids) != 0 {
		t.Fatalf("rejected mutations left objects behind: %v", ids)
	}
}

// TestIngestShardModeNotImplemented: shard-mode servers refuse
// mutations with 501 — an object near a range boundary would need
// transactional replication to neighbour shards.
func TestIngestShardModeNotImplemented(t *testing.T) {
	asg, err := shard.NewAssignment(resSpace, 4, 0, shard.KeyRange{Lo: 0, Hi: 256})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(resSpace, resOrder)
	reg.SetShard(asg)
	if _, err := reg.Register("grid", "squares", resPolys()); err != nil {
		t.Fatal(err)
	}
	svc := New(reg, Config{Shard: asg})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	var apiErr *APIError
	if _, err := c.Insert(ctx, "grid", IngestRequest{WKT: sq6(33, 33)}); !errors.As(err, &apiErr) ||
		apiErr.StatusCode != http.StatusNotImplemented {
		t.Fatalf("shard-mode insert: err = %v, want 501", err)
	}
	// The refusal must be machine-distinguishable from other 501s:
	// clients of a future router need to know the write was unroutable,
	// not unsupported.
	if apiErr.Reason != "unroutable_write" {
		t.Fatalf("shard-mode insert reason = %q, want unroutable_write", apiErr.Reason)
	}
	if _, err := c.Compact(ctx, "grid"); !errors.As(err, &apiErr) ||
		apiErr.StatusCode != http.StatusNotImplemented {
		t.Fatalf("shard-mode compact: err = %v, want 501", err)
	}
}

// TestCompactRollsEpoch: compaction folds the delta into a fresh base,
// bumps the epoch, resets pending ops, and changes no answer.
func TestCompactRollsEpoch(t *testing.T) {
	reg, _, c := ingestServer(t, Config{})
	ctx := context.Background()
	gapA := "POLYGON ((33 33, 43 33, 43 43, 33 43))"
	everything := "POLYGON ((0 0, 256 0, 256 256, 0 256))"

	if _, err := c.Insert(ctx, "grid", IngestRequest{WKT: sq6(33, 33)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(ctx, "grid", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upsert(ctx, "grid", 1, IngestRequest{WKT: sq6(40, 33)}); err != nil {
		t.Fatal(err)
	}
	before := matchIDs(t, c, everything)
	beforeGap := matchIDs(t, c, gapA)

	comp, err := c.Compact(ctx, "grid")
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Compacted || comp.Epoch != 1 || comp.Objects != 36 {
		t.Fatalf("compact = %+v", comp)
	}
	e, _ := reg.Get("grid")
	if e.Epoch != 1 || e.PendingOps() != 0 || e.Delta != nil && len(e.Delta.Objects) > 0 {
		t.Fatalf("post-compaction entry: epoch=%d pending=%d", e.Epoch, e.PendingOps())
	}
	if e.Dataset.Len() != 36 {
		t.Fatalf("merged base has %d objects, want 36", e.Dataset.Len())
	}
	// Tombstones of base deletions are folded; NextID keeps counting.
	if e.NextID != 37 {
		t.Fatalf("NextID = %d, want 37", e.NextID)
	}

	if after := matchIDs(t, c, everything); !reflect.DeepEqual(after, before) {
		t.Fatalf("answers changed across compaction:\n before %v\n after  %v", before, after)
	}
	if after := matchIDs(t, c, gapA); !reflect.DeepEqual(after, beforeGap) {
		t.Fatalf("gap answers changed across compaction")
	}

	// Nothing pending: the second compact is a no-op.
	comp2, err := c.Compact(ctx, "grid")
	if err != nil {
		t.Fatal(err)
	}
	if comp2.Compacted || comp2.Epoch != 1 {
		t.Fatalf("no-op compact = %+v", comp2)
	}

	// And the epoch view keeps accepting mutations.
	ins, err := c.Insert(ctx, "grid", IngestRequest{WKT: sq6(73, 73)})
	if err != nil {
		t.Fatal(err)
	}
	if ins.ID != 37 || ins.Epoch != 1 {
		t.Fatalf("post-compaction insert = %+v", ins)
	}
}

// TestAutoCompaction: crossing the registry threshold rolls an epoch in
// the background without an explicit compact call.
func TestAutoCompaction(t *testing.T) {
	reg, _, c := ingestServer(t, Config{})
	reg.SetCompactThreshold(4)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := c.Upsert(ctx, "grid", 100+i, IngestRequest{WKT: sq6(33+float64(i)*7, 33)}); err != nil {
			t.Fatal(err)
		}
	}
	reg.WaitCompactions()
	e, _ := reg.Get("grid")
	if e.Epoch != 1 || e.PendingOps() != 0 {
		t.Fatalf("auto-compaction did not run: epoch=%d pending=%d", e.Epoch, e.PendingOps())
	}
	if e.Dataset.Len() != 40 {
		t.Fatalf("merged base has %d objects, want 40", e.Dataset.Len())
	}
}

// TestJoinSeesMutations: join candidate generation reads the merged
// epoch view on both sides.
func TestJoinSeesMutations(t *testing.T) {
	reg, _, c := ingestServer(t, Config{})
	ctx := context.Background()
	if _, err := reg.Add("other", "", resPolys()[:1]); err != nil { // one square at (4,4)
		t.Fatal(err)
	}
	// Overlap the "other" square with a delta insert on "grid".
	ins, err := c.Insert(ctx, "grid", IngestRequest{WKT: sq6(6, 6)})
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.Join(ctx, JoinRequest{Left: "grid", Right: "other", Predicate: "intersects"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range j.Pairs {
		if p.LeftID == ins.ID && p.RightID == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("join did not see the inserted object: %+v", j.Pairs)
	}
	// Delete the base object under the probe square on the left side:
	// the (0, 0) pair must disappear, the delta pair must stay.
	if _, err := c.Delete(ctx, "grid", 0); err != nil {
		t.Fatal(err)
	}
	j2, err := c.Join(ctx, JoinRequest{Left: "grid", Right: "other", Predicate: "intersects"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range j2.Pairs {
		if p.LeftID == 0 {
			t.Fatalf("join still reports deleted base object: %+v", j2.Pairs)
		}
	}
	if j2.LeftVersion != 2 {
		t.Fatalf("LeftVersion = %d, want 2 (two mutations published)", j2.LeftVersion)
	}
}

// TestMutatedAnswersMatchRebuild is the in-process differential oracle:
// after a mutation burst, every relate answer must equal a fresh
// registry built from the equivalent final object set.
func TestMutatedAnswersMatchRebuild(t *testing.T) {
	reg, _, c := ingestServer(t, Config{})
	ctx := context.Background()
	// Burst: inserts in gaps, a base delete, a base move, a delta delete.
	if _, err := c.Insert(ctx, "grid", IngestRequest{WKT: sq6(33, 33)}); err != nil { // id 36
		t.Fatal(err)
	}
	if _, err := c.Insert(ctx, "grid", IngestRequest{WKT: sq6(73, 33)}); err != nil { // id 37
		t.Fatal(err)
	}
	if _, err := c.Delete(ctx, "grid", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upsert(ctx, "grid", 3, IngestRequest{WKT: sq6(113, 33)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(ctx, "grid", 37); err != nil {
		t.Fatal(err)
	}

	// The equivalent fresh build: base squares minus 7, 3 moved, plus 36.
	polys := resPolys()
	ids := make([]int, 0, len(polys)+1)
	rebuilt := NewRegistry(resSpace, resOrder)
	adds := make([]*geom.Polygon, 0, len(polys)+1)
	for i, p := range polys {
		switch i {
		case 7:
			continue
		case 3:
			adds = append(adds, mustPoly(t, sq6(113, 33)))
		default:
			adds = append(adds, p)
		}
		ids = append(ids, i)
	}
	adds = append(adds, mustPoly(t, sq6(33, 33)))
	ids = append(ids, 36)
	if _, err := rebuilt.Add("grid", "squares", adds); err != nil {
		t.Fatal(err)
	}
	fresh, _ := rebuilt.Get("grid")

	// Fresh ids are positional; translate through the ids table and
	// compare every (probe × object) relation.
	probes := []string{"POLYGON ((0 0, 256 0, 256 256, 0 256))",
		"POLYGON ((32 32, 120 32, 120 44, 32 44))", probeWKT}
	for _, probe := range probes {
		po, err := reg.Probe(mustPoly(t, probe))
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]string{}
		for i, o := range fresh.Dataset.Objects {
			if res := core.FindRelation(core.PC, po, o); res.Relation != de9im.Disjoint {
				want[ids[i]] = res.Relation.String()
			}
		}
		resp, err := c.Relate(ctx, RelateRequest{Dataset: "grid", WKT: probe, Limit: 10000})
		if err != nil {
			t.Fatal(err)
		}
		got := map[int]string{}
		for _, m := range resp.Matches {
			got[m.ID] = m.Relation
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("probe %s:\n mutated %v\n rebuilt %v", probe, got, want)
		}
	}
}
