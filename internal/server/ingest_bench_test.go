package server

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/join"
)

// TestZeroAllocMergedView pins the merged base+delta read path — view
// traversal, tombstone bitset filter, delta/base object resolution,
// scratch-based refinement — to zero heap allocations per pair once
// warm (wired into `make bench`). The copy-on-write epoch machinery
// must not tax the hot loop the paper's numbers depend on: all delta
// bookkeeping happens at mutation time, reads stay flat.
func TestZeroAllocMergedView(t *testing.T) {
	reg := NewRegistry(resSpace, resOrder)
	if _, err := reg.Add("grid", "", resPolys()); err != nil {
		t.Fatal(err)
	}
	// Give the entry a real delta: tombstones, a superseded base
	// object, and fresh inserts, so every branch of the merged view is
	// on the measured path.
	if _, err := reg.Mutate("grid", MutDelete, 7, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Mutate("grid", MutUpsert, 5, mustPoly(t, sq6(73, 73))); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Mutate("grid", MutInsert, -1, mustPoly(t, sq6(33, 33))); err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Get("grid")
	probe, err := reg.Probe(mustPoly(t, "POLYGON ((20 20, 120 20, 120 120, 20 120))"))
	if err != nil {
		t.Fatal(err)
	}
	sweep := core.NewSweeper(core.PC, core.NopSink{})
	view := e.View()
	ctx := context.Background()
	pairs := 0
	run := func() {
		err := view.QueryContext(ctx, probe.MBR, func(delta bool, en join.Entry) {
			pairs++
			sweep.FindRelation(probe, e.objAt(delta, en.ID))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: Prepared geometry, scratch growth
	if pairs == 0 {
		t.Fatal("probe matched nothing; the guard would measure an empty loop")
	}
	before := pairs
	allocs := testing.AllocsPerRun(50, run)
	if allocs != 0 {
		t.Errorf("merged view sweep over %d warm candidates allocates %v per run, want 0",
			before, allocs)
	}
}

// TestIngestAllocFootprintWithoutWAL pins the WAL-disabled mutation
// path to its pre-durability allocation count (wired into `make
// bench`): 65 allocs for a warm upsert over a 64-op delta — delta-layer
// clone, rasterization, successor entry. The durable path forks before
// any of this (Registry.MutateKey), and the idempotency cache is
// nil-safe without allocating, so adding the WAL must cost the
// non-durable configuration nothing. If this fails after an intentional
// change to the mutation path, re-measure and move the pin with the
// change that justifies it.
func TestIngestAllocFootprintWithoutWAL(t *testing.T) {
	reg := NewRegistry(resSpace, resOrder)
	reg.SetCompactThreshold(0)
	if _, err := reg.Add("grid", "", resPolys()); err != nil {
		t.Fatal(err)
	}
	poly := geom.NewPolygon(geom.Ring{
		{X: 33, Y: 33}, {X: 39, Y: 33}, {X: 39, Y: 39}, {X: 33, Y: 39},
	})
	for i := 0; i < 64; i++ {
		if _, err := reg.Mutate("grid", MutInsert, -1, poly); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := reg.Mutate("grid", MutUpsert, 5, poly); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 65 {
		t.Errorf("WAL-disabled upsert over delta=64 allocates %v per op, want 65", allocs)
	}
}

// BenchmarkIngest measures mutation throughput against a live dataset:
// each op clones the delta layer (copy-on-write) and rasterizes one
// object, so this is the cost ceiling a single-threaded writer sees.
func BenchmarkIngest(b *testing.B) {
	for _, size := range []int{0, 64, 256} {
		b.Run(fmt.Sprintf("delta=%d", size), func(b *testing.B) {
			reg := NewRegistry(resSpace, resOrder)
			reg.SetCompactThreshold(0) // measure pure mutation cost
			if _, err := reg.Add("grid", "", resPolys()); err != nil {
				b.Fatal(err)
			}
			poly := geom.NewPolygon(geom.Ring{
				{X: 33, Y: 33}, {X: 39, Y: 33}, {X: 39, Y: 39}, {X: 33, Y: 39},
			})
			// Pre-grow the delta so each measured op clones a layer of
			// the target size.
			for i := 0; i < size; i++ {
				if _, err := reg.Mutate("grid", MutInsert, -1, poly); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reg.Mutate("grid", MutUpsert, 5, poly); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompact measures the full epoch roll: apply `ops` upserts
// (always to the same id range, so the base stays a fixed size across
// iterations) and fold them into a fresh epoch — slab copy of
// survivors, side-tree rebuild, no re-rasterization of base objects.
// One iteration is one complete write burst + compaction cycle; no
// timer stops inside the loop (StopTimer + -benchmem means two
// stop-the-world ReadMemStats per iteration, which dwarfs the work).
func BenchmarkCompact(b *testing.B) {
	poly := geom.NewPolygon(geom.Ring{
		{X: 33, Y: 33}, {X: 39, Y: 33}, {X: 39, Y: 39}, {X: 33, Y: 39},
	})
	for _, size := range []int{16, 128} {
		b.Run(fmt.Sprintf("ops=%d", size), func(b *testing.B) {
			reg := NewRegistry(resSpace, resOrder)
			reg.SetCompactThreshold(0)
			if _, err := reg.Add("grid", "", resPolys()); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < size; j++ {
					if _, err := reg.Mutate("grid", MutUpsert, 100+j, poly); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := reg.Compact("grid"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
