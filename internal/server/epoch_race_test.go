package server

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEpochSwapConsistencyUnderLoad hammers one dataset with
// concurrent readers (relate + join), one writer moving an object back
// and forth, and compactions (explicit and threshold-triggered) rolling
// epochs underneath — the scenario the copy-on-write design exists for.
// Every response must be consistent with exactly one epoch view:
//
//   - the moving object appears exactly once per relate answer (a torn
//     view would show it twice — base copy plus delta copy — or not at
//     all: tombstone applied, replacement missing);
//   - joins pair it exactly once against a static dataset;
//   - the index version a reader observes never goes backwards.
//
// Run with -race (the Makefile's race target includes this package) to
// catch unsynchronized access on top of the semantic checks.
func TestEpochSwapConsistencyUnderLoad(t *testing.T) {
	reg, _, c := ingestServer(t, Config{})
	reg.SetCompactThreshold(16) // background compactions join the fray
	ctx := context.Background()
	if _, err := reg.Add("probe", "", resPolys()[:1]); err != nil {
		t.Fatal(err)
	}

	// The moving object: id 500, upserted alternately into two gaps.
	const movingID = 500
	spots := []string{sq6(33, 33), sq6(73, 73)}
	if _, err := c.Upsert(ctx, "grid", movingID, IngestRequest{WKT: spots[0]}); err != nil {
		t.Fatal(err)
	}
	// The probe covers both gaps (and a band of base squares, which
	// must keep answering too).
	const bothGaps = "POLYGON ((33 33, 83 33, 83 83, 33 83))"

	var (
		stop     atomic.Bool
		writes   atomic.Int64
		reads    atomic.Int64
		compacts atomic.Int64
		wg       sync.WaitGroup
	)
	fail := make(chan string, 16)
	deadline := time.Now().Add(400 * time.Millisecond)

	// Writer: move the object, occasionally delete-and-revive it so
	// tombstone handling is exercised under readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load() && time.Now().Before(deadline); i++ {
			if _, err := c.Upsert(ctx, "grid", movingID, IngestRequest{WKT: spots[i%2]}); err != nil {
				fail <- "upsert: " + err.Error()
				return
			}
			writes.Add(1)
		}
	}()

	// Compactor: explicit epoch rolls racing the writer and readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() && time.Now().Before(deadline) {
			if _, err := reg.Compact("grid"); err != nil {
				fail <- "compact: " + err.Error()
				return
			}
			compacts.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Relate readers: the moving object appears exactly once, and the
	// observed index version is monotone per reader.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for !stop.Load() && time.Now().Before(deadline) {
				resp, err := c.Relate(ctx, RelateRequest{Dataset: "grid", WKT: bothGaps, Limit: 10000})
				if err != nil {
					fail <- "relate: " + err.Error()
					return
				}
				n := 0
				for _, m := range resp.Matches {
					if m.ID == movingID {
						n++
					}
				}
				if n != 1 {
					fail <- "torn relate view: moving object matched " + itoa(n) + " times"
					return
				}
				if resp.IndexVersion < lastVersion {
					fail <- "index version went backwards"
					return
				}
				lastVersion = resp.IndexVersion
				reads.Add(1)
			}
		}()
	}

	// Join reader: against the static single-square dataset, the base
	// band pairs stay stable and no pair is ever duplicated.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() && time.Now().Before(deadline) {
			resp, err := c.Join(ctx, JoinRequest{Left: "grid", Right: "probe", Predicate: "intersects", Limit: 10000})
			if err != nil {
				fail <- "join: " + err.Error()
				return
			}
			seen := make(map[[2]int]bool, len(resp.Pairs))
			for _, p := range resp.Pairs {
				k := [2]int{p.LeftID, p.RightID}
				if seen[k] {
					fail <- "join pair duplicated across base and delta"
					return
				}
				seen[k] = true
			}
			reads.Add(1)
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case msg := <-fail:
		stop.Store(true)
		<-done
		t.Fatal(msg)
	case <-done:
	}
	reg.WaitCompactions()
	if writes.Load() == 0 || reads.Load() == 0 || compacts.Load() == 0 {
		t.Fatalf("stress did not exercise all paths: writes=%d reads=%d compacts=%d",
			writes.Load(), reads.Load(), compacts.Load())
	}
	e, _ := reg.Get("grid")
	t.Logf("writes=%d reads=%d compacts=%d final epoch=%d version=%d pending=%d",
		writes.Load(), reads.Load(), compacts.Load(), e.Epoch, e.Version, e.PendingOps())
	// Settle: after the dust, one final compaction must converge to a
	// clean base still holding exactly 37 live objects.
	if _, err := reg.Compact("grid"); err != nil {
		t.Fatal(err)
	}
	e, _ = reg.Get("grid")
	if e.Live() != 37 || e.PendingOps() != 0 {
		t.Fatalf("settled state: live=%d pending=%d, want 37 live, 0 pending", e.Live(), e.PendingOps())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
