// Durable ingest: the registry's write-ahead-log layer. With a WAL
// enabled every accepted mutation is appended to the dataset's log and
// fsynced *before* it is published (and before the HTTP ack), so a
// crash between an ack and the next compaction loses nothing — warm
// start loads the last complete snapshot epoch and replays the log's
// suffix through the ordinary mutation path.
//
// Writers group-commit: concurrent mutations queue on the slot and a
// rotating leader drains the queue, applies the whole batch, writes it
// as one WAL append (one fsync), publishes, and wakes every waiter.
// Each leader commits exactly the batch containing its own request,
// then hands leadership to the first waiter of the next batch — under
// sustained load the fsync cost amortizes across the batch without any
// request being able to capture the leader role forever.
//
// Ordering is the crash-consistency contract: apply (build successor
// entries in memory) → append+fsync → publish → ack. A failed append
// or fsync publishes nothing and surfaces ErrNotDurable (HTTP 503,
// never a silent ack); reads keep serving the last published state.
package server

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wal"
)

// WALOptions configures EnableWAL.
type WALOptions struct {
	// Dir is the log directory (per-dataset segment files inside).
	Dir string
	// SyncInterval is the group-commit window: a leader waits up to
	// this long for more writers before committing the batch. Zero
	// commits immediately (batches still form under concurrency).
	SyncInterval time.Duration
	// SyncBytes cuts the window short once this many encoded geometry
	// bytes are queued. Zero uses a default of 1 MiB.
	SyncBytes int64
	// MaxSegment is the segment rotation threshold in bytes. Zero
	// uses a default of 64 MiB.
	MaxSegment int64
}

// EnableWAL makes the registry journal every accepted mutation to a
// per-dataset write-ahead log under o.Dir, fsynced before the ack, and
// replay surviving records over the snapshot epoch when a dataset
// registers. Must be called before datasets are registered (the log is
// opened and replayed at registration time).
func (g *Registry) EnableWAL(o WALOptions) error {
	if o.Dir == "" {
		return fmt.Errorf("server: wal dir must not be empty")
	}
	if g.Len() > 0 {
		return fmt.Errorf("server: EnableWAL must precede dataset registration")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return fmt.Errorf("server: wal dir: %w", err)
	}
	g.walDir = o.Dir
	g.walSync = o.SyncInterval
	g.walSyncBytes = o.SyncBytes
	if g.walSyncBytes <= 0 {
		g.walSyncBytes = 1 << 20
	}
	g.walMaxSegment = o.MaxSegment
	if g.walMaxSegment <= 0 {
		g.walMaxSegment = 64 << 20
	}
	if g.met != nil {
		g.met.GaugeFunc("wal_pending_bytes", g.WalPendingBytes)
	}
	return nil
}

// WalPendingBytes is the total on-disk size of every dataset's log:
// bytes of acked mutations not yet folded into a durable epoch.
func (g *Registry) WalPendingBytes() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var total int64
	for _, sl := range g.slots {
		if sl.wal != nil {
			total += sl.wal.Size()
		}
	}
	return total
}

// CloseWAL closes every dataset's log (drain path: call after the
// listener is down and WaitCompactions has returned). Appends were
// fsynced when acked, so close loses nothing.
func (g *Registry) CloseWAL() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for name, sl := range g.slots {
		if sl.wal == nil {
			continue
		}
		if err := sl.wal.Close(); err != nil {
			g.logf("server: closing wal of %s: %v", name, err)
		}
	}
}

// attachWAL opens (and recovers) the dataset's log and replays every
// surviving record past the entry's snapshot watermark through the
// ordinary mutation path, then arms the slot for durable ingest. The
// slot is not yet published, so no lock discipline applies.
func (g *Registry) attachWAL(name string, sl *slot) error {
	floor := sl.cur.Load().walLSN
	l, recs, err := wal.Open(g.walDir, name, wal.Options{
		MaxSegment: g.walMaxSegment,
		Floor:      floor,
		Logf:       g.logf,
		OnFsync: func(d time.Duration) {
			if g.met != nil {
				g.met.Histogram("wal_fsync_seconds", obs.DurationBuckets).Observe(d.Seconds())
			}
		},
	})
	if err != nil {
		return err
	}
	replayed, skipped := 0, 0
	for _, rec := range recs {
		if rec.LSN <= floor {
			skipped++
			continue
		}
		if err := g.replayRecord(sl, rec); err != nil {
			// A record that no longer applies (e.g. a delete whose id
			// the snapshot epoch already folded away under a later
			// LSN) is diagnostic, not fatal: the epoch is the newer
			// truth for everything at or below its watermark, and
			// semantic replay failures past it mean the log and
			// snapshot disagree — log loudly, serve what we can.
			g.count("wal_replay_failures_total", 1)
			g.logf("server: wal replay %s lsn %d (%s id %d): %v — skipped",
				name, rec.LSN, MutKind(rec.Kind), rec.ID, err)
			continue
		}
		replayed++
	}
	sl.wal = l
	sl.wfull = make(chan struct{}, 1)
	g.count("wal_replayed_total", int64(replayed))
	if replayed > 0 || skipped > 0 {
		e := sl.cur.Load()
		g.logf("server: dataset %s: replayed %d wal records over epoch %d (%d below watermark %d skipped), %d pending ops",
			name, replayed, e.Epoch, skipped, floor, e.PendingOps())
	}
	return nil
}

// replayRecord applies one recovered WAL record. A logged insert
// replays as an upsert with its recorded id: applyMutation would
// otherwise assign a fresh id, and the upsert path reproduces both the
// id and the NextID advance exactly. Idempotency keys re-enter the
// dedupe cache so a client retry straddling the crash still dedupes.
func (g *Registry) replayRecord(sl *slot, rec wal.Record) error {
	kind := MutKind(rec.Kind)
	if kind > MutDelete {
		return fmt.Errorf("unknown mutation kind %d", rec.Kind)
	}
	var obj *core.Object
	if kind != MutDelete {
		poly, err := store.DecodePolygon(rec.Geom)
		if err != nil {
			return fmt.Errorf("geometry: %w", err)
		}
		if obj, err = core.NewObjectAdaptive(rec.ID, poly, g.builder); err != nil {
			return err
		}
	}
	applyKind := kind
	if applyKind == MutInsert {
		applyKind = MutUpsert
	}
	cur := sl.cur.Load()
	ne, res, err := applyMutation(cur, mutation{kind: applyKind, id: rec.ID, obj: obj, lsn: rec.LSN})
	if err != nil {
		return err
	}
	sl.cur.Store(ne)
	if rec.Key != "" {
		sl.remember(rec.Key, res)
	}
	return nil
}

// mutReq is one writer waiting in a slot's group-commit queue. The
// geometry is encoded at enqueue time — off the serialized leader path
// — and reused verbatim as the WAL record payload.
type mutReq struct {
	kind MutKind
	id   int
	obj  *core.Object
	key  string
	geom []byte

	res  MutationResult
	err  error
	done chan struct{} // closed once res/err are final
	lead chan struct{} // closed to promote this waiter to leader
}

// mutateDurable is the WAL-backed mutation path: enqueue, then either
// lead the commit of the batch containing this request or wait for a
// leader to commit it.
func (g *Registry) mutateDurable(name string, sl *slot, kind MutKind, id int, obj *core.Object, key string) (MutationResult, error) {
	req := &mutReq{
		kind: kind, id: id, obj: obj, key: key,
		done: make(chan struct{}),
		lead: make(chan struct{}),
	}
	if obj != nil {
		req.geom = store.EncodePolygon(obj.Poly)
	}

	sl.wmu.Lock()
	sl.wq = append(sl.wq, req)
	sl.wbytes += int64(len(req.geom))
	full := sl.wbytes >= g.walSyncBytes
	promote := !sl.wleader
	if promote {
		sl.wleader = true
	}
	sl.wmu.Unlock()

	if full {
		select {
		case sl.wfull <- struct{}{}:
		default:
		}
	}
	if promote {
		g.commitLead(name, sl, true)
	} else {
		select {
		case <-req.done:
		case <-req.lead:
			g.commitLead(name, sl, false)
		}
	}
	<-req.done
	return req.res, req.err
}

// commitLead runs one group commit as the slot's leader: optionally
// hold the commit window open for more writers, drain the queue,
// commit it as one batch, then hand leadership to the next batch's
// first waiter (or retire if none is queued). fresh distinguishes a
// self-promoted leader (which owes the window wait) from a promoted
// one (whose window effectively ran while it waited in the queue).
func (g *Registry) commitLead(name string, sl *slot, fresh bool) {
	if fresh && g.walSync > 0 {
		t := time.NewTimer(g.walSync)
		select {
		case <-t.C:
		case <-sl.wfull:
			t.Stop()
		}
	}

	sl.wmu.Lock()
	batch := sl.wq
	sl.wq = nil
	sl.wbytes = 0
	sl.wmu.Unlock()
	select {
	case <-sl.wfull: // clear a stale byte-threshold signal
	default:
	}

	g.commitBatch(name, sl, batch)

	sl.wmu.Lock()
	if len(sl.wq) > 0 {
		next := sl.wq[0]
		sl.wmu.Unlock()
		close(next.lead)
		return
	}
	sl.wleader = false
	sl.wmu.Unlock()
}

// commitBatch applies, journals, and publishes one batch under the
// slot's publication lock. Each request applies onto the successor
// chain independently: one request's semantic failure (unknown id)
// fails only that request. If the WAL append fails, nothing publishes
// and every applied request fails with ErrNotDurable — the entries
// built here are garbage-collected, the served state is untouched.
func (g *Registry) commitBatch(name string, sl *slot, batch []*mutReq) {
	if len(batch) == 0 {
		return
	}
	sl.mu.Lock()
	ne := sl.cur.Load()
	lsn := sl.wal.NextLSN()
	recs := make([]wal.Record, 0, len(batch))
	applied := make([]*mutReq, 0, len(batch))
	for _, r := range batch {
		if res, ok := sl.idem.get(r.key); ok {
			r.res = res
			continue
		}
		next, res, err := applyMutation(ne, mutation{kind: r.kind, id: r.id, obj: r.obj, lsn: lsn})
		if err != nil {
			r.err = err
			continue
		}
		ne = next
		r.res = res
		recs = append(recs, wal.Record{
			Kind:  byte(r.kind),
			ID:    res.ID,
			LSN:   lsn,
			Epoch: res.Epoch,
			Key:   r.key,
			Geom:  r.geom,
		})
		applied = append(applied, r)
		lsn++
	}

	pending := 0
	if len(applied) > 0 {
		if err := sl.wal.Append(recs); err != nil {
			g.count("wal_append_failures_total", 1)
			for _, r := range applied {
				r.res = MutationResult{}
				r.err = fmt.Errorf("%w: %v", ErrNotDurable, err)
			}
		} else {
			sl.cur.Store(ne)
			for _, r := range applied {
				if r.key != "" {
					sl.remember(r.key, r.res)
				}
			}
			pending = applied[len(applied)-1].res.Pending
		}
	}
	sl.mu.Unlock()

	var appended, deduped int64
	for _, r := range batch {
		if r.err == nil && r.res.Deduped {
			deduped++
		}
		close(r.done)
	}
	for _, r := range applied {
		if r.err == nil {
			g.count("server_ingest_total{op=\""+r.kind.String()+"\"}", 1)
			appended++
		}
	}
	g.count("wal_appended_total", appended)
	if deduped > 0 {
		g.count("server_ingest_deduped_total", deduped)
	}
	if pending > 0 {
		g.maybeCompact(name, sl, pending)
	}
}

// idemCacheCap bounds each slot's dedupe cache: a FIFO ring of the
// most recent keyed mutations. Retries arrive promptly (the client's
// backoff is bounded in seconds), so "recent" is plenty — and the WAL
// re-seeds the cache across restarts.
const idemCacheCap = 4096

// idemCache maps idempotency keys to committed mutation results. All
// access is under the owning slot's mu.
type idemCache struct {
	m    map[string]MutationResult
	ring []string
	pos  int
}

// get returns the remembered result for key, flagged Deduped. A nil
// cache or empty key misses without allocating (the keyless hot path).
func (c *idemCache) get(key string) (MutationResult, bool) {
	if c == nil || key == "" {
		return MutationResult{}, false
	}
	res, ok := c.m[key]
	if !ok {
		return MutationResult{}, false
	}
	res.Deduped = true
	return res, true
}

// remember records a committed keyed mutation in the slot's dedupe
// cache, evicting the oldest entry once the ring is full. Caller holds
// sl.mu (or the slot is not yet published).
func (sl *slot) remember(key string, res MutationResult) {
	c := sl.idem
	if c == nil {
		c = &idemCache{m: make(map[string]MutationResult, 64)}
		sl.idem = c
	}
	if _, exists := c.m[key]; exists {
		c.m[key] = res
		return
	}
	if len(c.ring) < idemCacheCap {
		c.ring = append(c.ring, key)
	} else {
		delete(c.m, c.ring[c.pos])
		c.ring[c.pos] = key
		c.pos = (c.pos + 1) % idemCacheCap
	}
	c.m[key] = res
}
