// Copy-on-write index epochs: the registry's mutation layer. Every
// published *Entry is an immutable epoch view — base indexes plus an
// immutable Delta overlay — swapped in with a single atomic pointer
// store, so readers grab one pointer and see one consistent state
// while writers publish successors. Mutations (insert/upsert/delete)
// re-rasterize only the dirty object (the paper's approximations are
// strictly per object, so incremental maintenance needs no global
// work), accumulate in the delta, and a compactor folds the delta into
// a fresh base — epoch N+1 — in the background, replaying the ops that
// arrived while it merged, then persists the new epoch through
// internal/snapshot. Readers never block: they are either entirely on
// epoch N or entirely on N+1.
package server

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/snapshot"
)

// MutKind selects a mutation operation.
type MutKind uint8

const (
	// MutInsert adds a new object under a fresh id.
	MutInsert MutKind = iota
	// MutUpsert creates or replaces the object with a given id.
	MutUpsert
	// MutDelete removes the object with a given id.
	MutDelete
)

func (k MutKind) String() string {
	switch k {
	case MutInsert:
		return "insert"
	case MutUpsert:
		return "upsert"
	case MutDelete:
		return "delete"
	default:
		return fmt.Sprintf("MutKind(%d)", uint8(k))
	}
}

// Mutation errors, mapped to HTTP statuses by the ingest handlers.
var (
	// ErrNoDataset reports a mutation against an unregistered dataset.
	ErrNoDataset = errors.New("server: unknown dataset")
	// ErrNoObject reports a delete of an id that is not live.
	ErrNoObject = errors.New("server: unknown object id")
	// ErrNotDurable reports a mutation that applied cleanly but could
	// not be made durable (WAL append or fsync failed): nothing was
	// published, the client must retry. Mapped to 503.
	ErrNotDurable = errors.New("server: mutation not durable")
)

// mutation is one entry of a delta's append-only op log. The log since
// the base epoch is what the compactor replays: it snapshots the log
// length, merges offline, then re-applies ops[snapLen:] — the ops that
// raced the merge — onto the new base before publishing.
type mutation struct {
	kind MutKind
	id   int
	obj  *core.Object // prepared dirty object; nil for delete
	// lsn is the op's WAL sequence number (0 when the dataset is
	// served without a WAL). Compaction persists the last folded op's
	// lsn as the snapshot watermark, so warm-start replay skips
	// everything the epoch already contains.
	lsn uint64
}

// Delta is the immutable mutation overlay of a published entry: the
// live delta objects with a side R-tree over their MBRs (entry IDs are
// positions in Objects), a tombstone bitset over base positions, and
// the op log since the base epoch. Every mutation builds a fresh Delta
// (copy-on-write) so readers holding the previous entry keep a frozen
// view; deltas are expected to stay small between compactions, so the
// O(delta) copy per mutation is the price of lock-free reads.
type Delta struct {
	Objects []*core.Object
	Tree    *join.RTree
	// dead is a bitset over base object positions: set bits are
	// tombstoned (deleted, or superseded by a delta object with the
	// same id).
	dead      []uint64
	deadCount int
	// idx maps a live delta object's id to its position in Objects.
	idx map[int]int32
	// ops is the append-only mutation log since the base epoch.
	// Successive deltas share the array as a growing prefix.
	ops []mutation
}

// clone copies the delta's object list, tombstones and id index for a
// copy-on-write mutation; the op log is carried as the shared prefix.
func (d *Delta) clone(basePositions int) *Delta {
	nd := &Delta{}
	if d != nil {
		nd.Objects = append(make([]*core.Object, 0, len(d.Objects)+1), d.Objects...)
		nd.dead = append([]uint64(nil), d.dead...)
		nd.deadCount = d.deadCount
		nd.idx = make(map[int]int32, len(d.idx)+1)
		for id, p := range d.idx {
			nd.idx[id] = p
		}
		nd.ops = d.ops
	} else {
		nd.idx = make(map[int]int32, 1)
	}
	if want := (basePositions + 63) / 64; len(nd.dead) < want {
		nd.dead = append(nd.dead, make([]uint64, want-len(nd.dead))...)
	}
	return nd
}

func (d *Delta) setDead(pos int32) {
	w := int(pos) >> 6
	if d.dead[w]&(1<<(uint(pos)&63)) == 0 {
		d.dead[w] |= 1 << (uint(pos) & 63)
		d.deadCount++
	}
}

func (d *Delta) isDead(pos int32) bool {
	w := int(pos) >> 6
	return w < len(d.dead) && d.dead[w]&(1<<(uint(pos)&63)) != 0
}

// seal rebuilds the side tree over the (possibly re-positioned) delta
// objects and returns the delta. An empty overlay keeps a nil tree.
func (d *Delta) seal() *Delta {
	if len(d.Objects) == 0 {
		d.Tree = nil
		return d
	}
	entries := make([]join.Entry, len(d.Objects))
	for i, o := range d.Objects {
		entries[i] = join.Entry{Box: o.MBR, ID: int32(i)}
	}
	d.Tree = join.BuildRTree(entries)
	return d
}

// View assembles the entry's merged read view: one value carrying the
// base tree, the tombstone bitset and the delta side tree. Requests
// resolve it once from the atomically loaded entry, so every candidate
// they generate comes from the same epoch.
func (e *Entry) View() join.View {
	v := join.View{Base: e.Tree}
	if d := e.Delta; d != nil {
		if d.deadCount > 0 {
			v.Dead = d.dead
		}
		v.Side = d.Tree
	}
	return v
}

// objAt resolves a view entry to its object: delta entries index the
// delta's object array, base entries the dataset's.
func (e *Entry) objAt(delta bool, id int32) *core.Object {
	if delta {
		return e.Delta.Objects[id]
	}
	return e.Dataset.Objects[id]
}

// Live returns the number of live objects the entry serves (base minus
// tombstones plus delta).
func (e *Entry) Live() int {
	n := len(e.Dataset.Objects)
	if d := e.Delta; d != nil {
		n += len(d.Objects) - d.deadCount
	}
	return n
}

// PendingOps returns the length of the entry's uncompacted op log.
func (e *Entry) PendingOps() int {
	if e.Delta == nil {
		return 0
	}
	return len(e.Delta.ops)
}

// basePos maps an object id to its base array position.
func (e *Entry) basePos(id int) (int32, bool) {
	if e.idIndex != nil {
		p, ok := e.idIndex[id]
		return p, ok
	}
	if id >= 0 && id < len(e.Dataset.Objects) {
		return int32(id), true
	}
	return 0, false
}

// indexEntry fills an entry's mutation bookkeeping: NextID (one past
// the highest id, never below a carried value) and idIndex (nil when
// ids are positional — the common fresh-build case, where basePos
// needs no map).
func indexEntry(e *Entry) *Entry {
	next := e.NextID
	identity := true
	for i, o := range e.Dataset.Objects {
		if o.ID != i {
			identity = false
		}
		if o.ID >= next {
			next = o.ID + 1
		}
	}
	e.NextID = next
	if !identity {
		idx := make(map[int]int32, len(e.Dataset.Objects))
		for i, o := range e.Dataset.Objects {
			idx[o.ID] = int32(i)
		}
		e.idIndex = idx
	}
	return e
}

// MutationResult reports one applied mutation.
type MutationResult struct {
	ID      int
	Epoch   uint64
	Version uint64
	// Created is false when an upsert replaced an existing object.
	Created bool
	// Pending is the op-log length after this mutation (what the
	// compaction threshold watches).
	Pending int
	// Deduped is true when the mutation was not applied because its
	// idempotency key matched an already-committed mutation; the rest
	// of the result replays that mutation's outcome.
	Deduped bool
}

// Mutate applies one mutation to a registered dataset and publishes
// the successor entry. For insert and upsert, poly is validated and
// rasterized on the registry's grid *outside* the publication lock —
// only the delta bookkeeping and the atomic store are serialized.
func (g *Registry) Mutate(name string, kind MutKind, id int, poly *geom.Polygon) (MutationResult, error) {
	return g.MutateKey(name, kind, id, poly, "")
}

// MutateKey is Mutate with an optional idempotency key. A non-empty
// key is remembered with the mutation's result (surviving restarts
// when a WAL is enabled, since the key rides in the WAL record): a
// later mutation carrying the same key is not applied again — it
// replays the recorded result with Deduped set, which is what makes a
// client retry of a non-idempotent insert safe.
func (g *Registry) MutateKey(name string, kind MutKind, id int, poly *geom.Polygon, key string) (MutationResult, error) {
	sl := g.slot(name)
	if sl == nil {
		return MutationResult{}, fmt.Errorf("%w %q", ErrNoDataset, name)
	}
	var obj *core.Object
	if kind != MutDelete {
		if poly == nil {
			return MutationResult{}, fmt.Errorf("server: %s requires a geometry", kind)
		}
		if err := geom.ValidatePolygon(poly); err != nil {
			return MutationResult{}, fmt.Errorf("server: invalid geometry: %w", err)
		}
		var err error
		if obj, err = core.NewObjectAdaptive(id, poly, g.builder); err != nil {
			return MutationResult{}, fmt.Errorf("server: %w", err)
		}
	}
	if kind != MutInsert && id < 0 {
		return MutationResult{}, fmt.Errorf("server: %s requires a non-negative id", kind)
	}
	if sl.wal != nil {
		// Durable path: group-commit through the slot's WAL — apply,
		// append, fsync, then publish (see wal.go).
		return g.mutateDurable(name, sl, kind, id, obj, key)
	}

	sl.mu.Lock()
	if res, ok := sl.idem.get(key); ok {
		sl.mu.Unlock()
		g.count("server_ingest_deduped_total", 1)
		return res, nil
	}
	cur := sl.cur.Load()
	ne, res, err := applyMutation(cur, mutation{kind: kind, id: id, obj: obj})
	if err != nil {
		sl.mu.Unlock()
		return MutationResult{}, err
	}
	sl.cur.Store(ne)
	if key != "" {
		sl.remember(key, res)
	}
	sl.mu.Unlock()

	g.count("server_ingest_total{op=\""+kind.String()+"\"}", 1)
	g.maybeCompact(name, sl, res.Pending)
	return res, nil
}

// applyMutation derives the successor entry of e under m: a shallow
// entry copy with a fresh delta. Caller serializes (the slot lock) and
// publishes. The op's object id is assigned here for inserts, so
// replaying a logged mutation reproduces the same id.
func applyMutation(e *Entry, m mutation) (*Entry, MutationResult, error) {
	ne := *e
	ne.Version = e.Version + 1
	d := e.Delta.clone(len(e.Dataset.Objects))
	res := MutationResult{Created: true}

	switch m.kind {
	case MutInsert:
		m.id = ne.NextID
		ne.NextID++
		m.obj.ID = m.id
		d.idx[m.id] = int32(len(d.Objects))
		d.Objects = append(d.Objects, m.obj)

	case MutUpsert:
		m.obj.ID = m.id
		if pos, ok := e.basePos(m.id); ok {
			if !d.isDead(pos) {
				d.setDead(pos) // supersede the base copy
				res.Created = false
			}
		}
		if dp, ok := d.idx[m.id]; ok {
			d.Objects[dp] = m.obj
			res.Created = false
		} else {
			d.idx[m.id] = int32(len(d.Objects))
			d.Objects = append(d.Objects, m.obj)
		}
		if m.id >= ne.NextID {
			ne.NextID = m.id + 1
		}
		if res.Created {
			// Reviving a tombstoned id: it is live again, so it leaves
			// the cumulative tombstone set.
			ne.Tombs = removeTomb(ne.Tombs, m.id)
		}

	case MutDelete:
		res.Created = false
		switch dp, ok := d.idx[m.id]; {
		case ok:
			d.Objects = append(d.Objects[:dp], d.Objects[dp+1:]...)
			delete(d.idx, m.id)
			for oid, p := range d.idx {
				if p > dp {
					d.idx[oid] = p - 1
				}
			}
		default:
			pos, ok := e.basePos(m.id)
			if !ok || d.isDead(pos) {
				return nil, res, fmt.Errorf("%w %d in %s", ErrNoObject, m.id, e.Dataset.Name)
			}
			d.setDead(pos)
		}
		ne.Tombs = appendTomb(e.Tombs, m.id)

	default:
		return nil, res, fmt.Errorf("server: unknown mutation kind %d", m.kind)
	}

	d.ops = append(d.ops, m)
	ne.Delta = d.seal()
	res.ID = m.id
	res.Epoch = ne.Epoch
	res.Version = ne.Version
	res.Pending = len(d.ops)
	return &ne, res, nil
}

// appendTomb returns a copy of tombs with id added (entries stay
// unique; the slice is copy-on-write like everything an entry holds).
func appendTomb(tombs []int, id int) []int {
	out := make([]int, 0, len(tombs)+1)
	out = append(out, tombs...)
	for _, t := range out {
		if t == id {
			return out
		}
	}
	return append(out, id)
}

// removeTomb returns a copy of tombs without id.
func removeTomb(tombs []int, id int) []int {
	out := make([]int, 0, len(tombs))
	for _, t := range tombs {
		if t != id {
			out = append(out, t)
		}
	}
	return out
}

// CompactStats reports one compaction.
type CompactStats struct {
	// Epoch is the epoch serving after the call (bumped by one when a
	// merge happened).
	Epoch uint64
	// Compacted is the number of delta ops folded into the new base;
	// zero means there was nothing to do (or another compaction was
	// already running).
	Compacted int
	// Objects is the live object count of the serving base.
	Objects int
	// Elapsed is the offline merge + replay time.
	Elapsed time.Duration
}

// Compact folds a dataset's delta overlay into a fresh base and
// publishes it as epoch N+1. The expensive merge — new arena (slab
// copies for surviving base runs), new STR R-tree, approximations
// carried over untouched — runs without any lock held while readers
// keep serving epoch N and writers keep appending to its delta; only
// the residual op replay and the atomic pointer store are serialized.
// The new epoch is then persisted through the snapshot layer (see
// WriteEpoch): a crash at any point leaves the previous complete epoch
// on disk. At most one compaction per dataset runs at a time; a
// concurrent call is a no-op.
func (g *Registry) Compact(name string) (CompactStats, error) {
	sl := g.slot(name)
	if sl == nil {
		return CompactStats{}, fmt.Errorf("%w %q", ErrNoDataset, name)
	}
	if !sl.compacting.CompareAndSwap(false, true) {
		cur := sl.cur.Load()
		return CompactStats{Epoch: cur.Epoch, Objects: cur.Live()}, nil
	}
	defer sl.compacting.Store(false)

	base := sl.cur.Load()
	if base.Degraded {
		// A degraded base has no approximations to carry over; the
		// background rebuild recovers it first, carrying the delta.
		return CompactStats{Epoch: base.Epoch, Objects: base.Live()},
			fmt.Errorf("server: dataset %s is degraded; compaction deferred", name)
	}
	if base.PendingOps() == 0 {
		return CompactStats{Epoch: base.Epoch, Objects: base.Live()}, nil
	}
	start := time.Now()
	snapLen := len(base.Delta.ops)

	// Offline merge against the frozen base epoch: no locks held,
	// readers and writers undisturbed.
	merged := base.Dataset.Merge(base.Delta.dead, base.Delta.Objects)
	ne := indexEntry(&Entry{
		Dataset:   merged,
		Tree:      buildTree(merged),
		BuildTime: base.BuildTime,
		Epoch:     base.Epoch + 1,
		NextID:    base.NextID,
		Tombs:     base.Tombs,
		// The folded ops are durable in the new base once snapshotted:
		// the last one's WAL sequence number is the epoch's watermark
		// (zero without a WAL — ops then carry no lsn).
		walLSN: base.Delta.ops[snapLen-1].lsn,
	})
	em := snapshot.EpochMeta{Epoch: ne.Epoch, NextID: ne.NextID, Tombs: ne.Tombs, WalLSN: ne.walLSN}

	// Publish: replay the ops that raced the merge onto the new base,
	// then swap the pointer. The replayed log is a suffix of the
	// current delta's log — deltas share the op array as a growing
	// prefix, so ops[snapLen:] is exactly what the merge missed.
	sl.mu.Lock()
	cur := sl.cur.Load()
	resid := cur.Delta.ops[snapLen:]
	for _, op := range resid {
		var err error
		if ne, _, err = applyMutation(ne, op); err != nil {
			sl.mu.Unlock()
			g.count("server_compaction_failures_total", 1)
			return CompactStats{Epoch: cur.Epoch, Objects: cur.Live()},
				fmt.Errorf("server: compaction of %s: residual replay: %w", name, err)
		}
	}
	ne.Version = cur.Version + 1
	sl.cur.Store(ne)
	sl.mu.Unlock()

	elapsed := time.Since(start)
	g.count("server_compactions_total", 1)
	g.logf("server: dataset %s compacted to epoch %d (%d ops folded, %d residual, %d objects) in %v",
		name, ne.Epoch, snapLen, len(resid), merged.Len(), elapsed)

	// Persist the complete epoch (the merged base, not the residual
	// delta) outside every lock. A crash mid-write leaves the previous
	// epoch's file intact — warm start resumes from there. Only once
	// the epoch is durably on disk may the WAL shed the records it
	// covers; if the snapshot write failed (or snapshots are off) the
	// log keeps them, and the next restart replays instead.
	if g.writeSnapshotMeta(name, merged, em) && sl.wal != nil && em.WalLSN > 0 {
		if err := sl.wal.Prune(em.WalLSN); err != nil {
			g.logf("server: wal prune of %s through lsn %d: %v", name, em.WalLSN, err)
		}
	}
	return CompactStats{Epoch: ne.Epoch, Compacted: snapLen, Objects: ne.Live(), Elapsed: elapsed}, nil
}

// maybeCompact starts a background compaction when the pending op log
// crossed the registry's threshold and none is running.
func (g *Registry) maybeCompact(name string, sl *slot, pending int) {
	if g.compactEvery <= 0 || pending < g.compactEvery || sl.compacting.Load() {
		return
	}
	g.compactions.Add(1)
	go func() {
		defer g.compactions.Done()
		defer func() {
			if r := recover(); r != nil {
				g.count("server_compaction_failures_total", 1)
				g.logf("server: compaction of %s panicked: %v", name, r)
			}
		}()
		if _, err := g.Compact(name); err != nil {
			g.logf("server: %v", err)
		}
	}()
}

// WaitCompactions blocks until every background compaction in flight
// has finished (drain paths and tests).
func (g *Registry) WaitCompactions() { g.compactions.Wait() }
