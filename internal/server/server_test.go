package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/de9im"
)

// newTestServer builds a service over registry sets and mounts it on an
// httptest listener. The returned server is force-closed at cleanup.
func newTestServer(t *testing.T, cfg Config, sets ...string) (*Server, *Client) {
	t.Helper()
	svc := New(testRegistry(t, sets...), cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, NewClient(ts.URL)
}

func TestHealthAndDatasets(t *testing.T) {
	_, c := newTestServer(t, Config{}, "OLE", "OPE")
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Datasets != 2 {
		t.Fatalf("health = %+v", h)
	}

	ds, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0].Name != "OLE" || ds[1].Name != "OPE" {
		t.Fatalf("datasets = %+v", ds)
	}
}

// probeWKT is a rectangle in the EU half of the synthetic space; it
// overlaps a healthy share of OPE's parks.
const probeWKT = "POLYGON ((50 50, 350 50, 350 350, 50 350))"

// directMatches evaluates the probe against every object of the set the
// slow way, as ground truth for /v1/relate.
func directMatches(t *testing.T, svc *Server, set, probe string) map[int]string {
	t.Helper()
	e, ok := svc.data.Get(set)
	if !ok {
		t.Fatalf("dataset %s not registered", set)
	}
	po, err := svc.data.Probe(mustPoly(t, probe))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]string)
	for _, o := range e.Dataset.Objects {
		if res := core.FindRelation(core.PC, po, o); res.Relation != de9im.Disjoint {
			want[o.ID] = res.Relation.String()
		}
	}
	return want
}

func TestRelateMatchesDirect(t *testing.T) {
	svc, c := newTestServer(t, Config{}, "OPE")
	want := directMatches(t, svc, "OPE", probeWKT)
	if len(want) == 0 {
		t.Fatal("probe matches nothing; fixture broken")
	}

	resp, err := c.Relate(context.Background(), RelateRequest{
		Dataset: "OPE", WKT: probeWKT, Limit: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Candidates < len(want) {
		t.Fatalf("candidates %d < matches %d", resp.Candidates, len(want))
	}
	if resp.Evaluated != resp.Candidates {
		t.Fatalf("evaluated %d != candidates %d", resp.Evaluated, resp.Candidates)
	}
	got := make(map[int]string, len(resp.Matches))
	for _, m := range resp.Matches {
		got[m.ID] = m.Relation
	}
	if len(got) != len(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	for id, rel := range want {
		if got[id] != rel {
			t.Errorf("object %d: got %q, want %q", id, got[id], rel)
		}
	}
}

func TestRelatePredicateAndMask(t *testing.T) {
	svc, c := newTestServer(t, Config{}, "OPE")
	want := directMatches(t, svc, "OPE", probeWKT)
	ctx := context.Background()

	pr, err := c.Relate(ctx, RelateRequest{
		Dataset: "OPE", WKT: probeWKT, Predicate: "intersects", Limit: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Matches) != len(want) {
		t.Fatalf("predicate intersects: %d matches, want %d", len(pr.Matches), len(want))
	}
	for _, m := range pr.Matches {
		if m.Relation != "intersects" {
			t.Fatalf("predicate match relation = %q", m.Relation)
		}
	}

	// The universal intersects mask must agree with the predicate.
	mr, err := c.Relate(ctx, RelateRequest{
		Dataset: "OPE", WKT: probeWKT, Mask: "T********", Limit: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Matches) != len(want) {
		t.Fatalf("mask T********: %d matches, want %d", len(mr.Matches), len(want))
	}
}

func TestRelateGeoJSONProbe(t *testing.T) {
	_, c := newTestServer(t, Config{}, "OPE")
	ctx := context.Background()
	wr, err := c.Relate(ctx, RelateRequest{Dataset: "OPE", WKT: probeWKT, Limit: 100000})
	if err != nil {
		t.Fatal(err)
	}
	gj := `{"type":"Polygon","coordinates":[[[50,50],[350,50],[350,350],[50,350],[50,50]]]}`
	gr, err := c.Relate(ctx, RelateRequest{Dataset: "OPE", GeoJSON: []byte(gj), Limit: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Matches) != len(wr.Matches) {
		t.Fatalf("geojson probe: %d matches, wkt probe: %d", len(gr.Matches), len(wr.Matches))
	}
}

func TestRelateLimitTruncates(t *testing.T) {
	_, c := newTestServer(t, Config{}, "OPE")
	resp, err := c.Relate(context.Background(), RelateRequest{
		Dataset: "OPE", WKT: probeWKT, Limit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 1 || !resp.Truncated {
		t.Fatalf("limit 1: %d matches, truncated=%v", len(resp.Matches), resp.Truncated)
	}
}

func TestRequestValidation(t *testing.T) {
	_, c := newTestServer(t, Config{}, "OPE")
	ctx := context.Background()
	cases := []struct {
		name string
		req  RelateRequest
		code int
	}{
		{"unknown dataset", RelateRequest{Dataset: "nope", WKT: probeWKT}, http.StatusNotFound},
		{"missing geometry", RelateRequest{Dataset: "OPE"}, http.StatusBadRequest},
		{"bad wkt", RelateRequest{Dataset: "OPE", WKT: "POLYGO ((0 0))"}, http.StatusBadRequest},
		{"both geometries", RelateRequest{Dataset: "OPE", WKT: probeWKT, GeoJSON: []byte(`{}`)}, http.StatusBadRequest},
		{"bad method", RelateRequest{Dataset: "OPE", WKT: probeWKT, Method: "FAST"}, http.StatusBadRequest},
		{"bad predicate", RelateRequest{Dataset: "OPE", WKT: probeWKT, Predicate: "touches-ish"}, http.StatusBadRequest},
		{"bad mask", RelateRequest{Dataset: "OPE", WKT: probeWKT, Mask: "TTT"}, http.StatusBadRequest},
		{"pred and mask", RelateRequest{Dataset: "OPE", WKT: probeWKT, Predicate: "intersects", Mask: "T********"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, err := c.Relate(ctx, tc.req)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != tc.code {
			t.Errorf("%s: err = %v, want status %d", tc.name, err, tc.code)
		}
	}
	if _, err := c.Join(ctx, JoinRequest{Left: "OPE", Right: "missing"}); err == nil {
		t.Error("join with unknown right dataset must fail")
	}
}

// directJoin computes the find-relation join the slow way.
func directJoin(t *testing.T, svc *Server, left, right string) (candidates int, rels map[string]int) {
	t.Helper()
	le, _ := svc.data.Get(left)
	re, _ := svc.data.Get(right)
	rels = make(map[string]int)
	for _, a := range le.Dataset.Objects {
		for _, b := range re.Dataset.Objects {
			if !a.MBR.Intersects(b.MBR) {
				continue
			}
			candidates++
			res := core.FindRelation(core.PC, a, b)
			rels[res.Relation.String()]++
		}
	}
	return candidates, rels
}

func TestJoinMatchesDirect(t *testing.T) {
	svc, c := newTestServer(t, Config{}, "OLE", "OPE")
	wantCand, wantRels := directJoin(t, svc, "OLE", "OPE")
	if wantCand == 0 {
		t.Fatal("no candidate pairs; fixture broken")
	}

	resp, err := c.Join(context.Background(), JoinRequest{
		Left: "OLE", Right: "OPE", Limit: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Candidates != wantCand || resp.Evaluated != wantCand {
		t.Fatalf("candidates=%d evaluated=%d, want %d", resp.Candidates, resp.Evaluated, wantCand)
	}
	for rel, n := range wantRels {
		if rel == "disjoint" {
			continue
		}
		if resp.Relations[rel] != n {
			t.Errorf("relation %s: got %d, want %d", rel, resp.Relations[rel], n)
		}
	}
	nonDisjoint := wantCand - wantRels["disjoint"]
	if len(resp.Pairs) != nonDisjoint {
		t.Fatalf("pairs = %d, want %d", len(resp.Pairs), nonDisjoint)
	}
	// The join's sweep stats must land in the metrics registry.
	if svc.met.Counter(`server_join_pairs_total{method="P+C"}`).Value() != int64(wantCand) {
		t.Error("join sweep stats not published to metrics")
	}
}

func TestJoinPredicate(t *testing.T) {
	svc, c := newTestServer(t, Config{}, "OLE", "OPE")
	wantCand, wantRels := directJoin(t, svc, "OLE", "OPE")
	nonDisjoint := wantCand - wantRels["disjoint"]

	resp, err := c.Join(context.Background(), JoinRequest{
		Left: "OLE", Right: "OPE", Predicate: "intersects", Limit: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Holds != nonDisjoint {
		t.Fatalf("intersects holds = %d, want %d", resp.Holds, nonDisjoint)
	}
	if resp.Evaluated != wantCand {
		t.Fatalf("evaluated = %d, want %d", resp.Evaluated, wantCand)
	}

	mresp, err := c.Join(context.Background(), JoinRequest{
		Left: "OLE", Right: "OPE", Mask: "T********", Limit: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mresp.Holds != nonDisjoint {
		t.Fatalf("mask holds = %d, want %d", mresp.Holds, nonDisjoint)
	}
}

// gateHook returns a testHook that signals entry and then blocks until
// the gate closes or the request context ends.
func gateHook(entered chan<- struct{}, gate <-chan struct{}) func(context.Context) error {
	return func(ctx context.Context) error {
		entered <- struct{}{}
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func TestOverloadReturns429(t *testing.T) {
	svc, c := newTestServer(t, Config{
		MaxInFlight: 1, MaxQueue: 1, QueueWait: 20 * time.Millisecond,
	}, "OPE")
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	svc.testHook = gateHook(entered, gate)

	ctx := context.Background()
	req := RelateRequest{Dataset: "OPE", WKT: probeWKT}
	first := make(chan error, 1)
	go func() {
		_, err := c.Relate(ctx, req)
		first <- err
	}()
	<-entered // the only slot is now held at the gate

	// The next request queues, waits out QueueWait, and is shed.
	_, err := c.Relate(ctx, req)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || !apiErr.IsOverload() {
		t.Fatalf("saturated server: err = %v, want 429", err)
	}
	if apiErr.RetryAfter != time.Second {
		t.Fatalf("Retry-After = %v, want 1s", apiErr.RetryAfter)
	}
	if got := svc.rejected.Value(); got < 1 {
		t.Fatalf("rejected counter = %d, want >= 1", got)
	}

	close(gate)
	if err := <-first; err != nil {
		t.Fatalf("gated request after release: %v", err)
	}
}

func TestDeadlineReturns504(t *testing.T) {
	before := runtime.NumGoroutine()
	svc, c := newTestServer(t, Config{}, "OPE")
	// The hook parks until the request deadline fires, standing in for a
	// sweep that outlives its budget.
	svc.testHook = func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}
	for i := 0; i < 5; i++ {
		_, err := c.Relate(context.Background(), RelateRequest{
			Dataset: "OPE", WKT: probeWKT, TimeoutMS: 20,
		})
		var apiErr *APIError
		if !errors.As(err, &apiErr) || !apiErr.IsDeadline() {
			t.Fatalf("expired deadline: err = %v, want 504", err)
		}
	}
	if got := svc.timeouts.Value(); got != 5 {
		t.Fatalf("timeout counter = %d, want 5", got)
	}
	// Nothing may leak: handler goroutines must unwind with the deadline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+10 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+10 {
		t.Fatalf("goroutines grew from %d to %d after timed-out requests", before, after)
	}
}

// A real join under a 1ms budget: candidate generation plus an ST2 sweep
// (refines every pair) cannot finish, and the context must cut it short.
func TestDeadlineCancelsJoinSweep(t *testing.T) {
	_, c := newTestServer(t, Config{JoinWorkers: 1}, "OBE", "OPE")
	_, err := c.Join(context.Background(), JoinRequest{
		Left: "OBE", Right: "OPE", Method: "ST2", TimeoutMS: 1, Limit: 100000,
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || !apiErr.IsDeadline() {
		t.Fatalf("1ms join: err = %v, want 504", err)
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	svc, c := newTestServer(t, Config{}, "OLE", "OPE")
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	svc.testHook = gateHook(entered, gate)

	inflight := make(chan error, 1)
	go func() {
		_, err := c.Join(context.Background(), JoinRequest{Left: "OLE", Right: "OPE"})
		inflight <- err
	}()
	<-entered

	drained := make(chan error, 1)
	go func() { drained <- svc.Shutdown(context.Background()) }()
	for !svc.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while the drain runs...
	_, err := c.Relate(context.Background(), RelateRequest{Dataset: "OPE", WKT: probeWKT})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: err = %v, want 503", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("Shutdown returned %v with a request still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	// ...but the in-flight join runs to completion.
	close(gate)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight join during drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
}

func TestShutdownGraceForceCancels(t *testing.T) {
	svc, c := newTestServer(t, Config{}, "OPE")
	entered := make(chan struct{}, 1)
	svc.testHook = gateHook(entered, nil) // blocks until ctx ends

	inflight := make(chan error, 1)
	go func() {
		_, err := c.Relate(context.Background(), RelateRequest{Dataset: "OPE", WKT: probeWKT})
		inflight <- err
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown past grace = %v, want DeadlineExceeded", err)
	}
	// The stuck request was force-cancelled rather than waited out.
	var apiErr *APIError
	if err := <-inflight; !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("force-cancelled request: err = %v, want 503", err)
	}
}

func TestRelateBatching(t *testing.T) {
	// Plenty of slots and queue patience: this test is about batching,
	// not admission (on a 1-CPU box probe preprocessing serializes).
	svc, c := newTestServer(t, Config{
		BatchWindow: 30 * time.Millisecond, MaxBatch: 16,
		MaxInFlight: 16, QueueWait: 5 * time.Second,
	}, "OPE")
	want := directMatches(t, svc, "OPE", probeWKT)

	const n = 8
	resps := make([]*RelateResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = c.Relate(context.Background(), RelateRequest{
				Dataset: "OPE", WKT: probeWKT, Limit: 100000,
			})
		}(i)
	}
	wg.Wait()

	maxBatch := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("probe %d: %v", i, errs[i])
		}
		if len(resps[i].Matches) != len(want) {
			t.Fatalf("probe %d: %d matches, want %d", i, len(resps[i].Matches), len(want))
		}
		if resps[i].BatchSize > maxBatch {
			maxBatch = resps[i].BatchSize
		}
	}
	if maxBatch < 2 {
		t.Fatalf("no batching observed: max batch size = %d", maxBatch)
	}
	if svc.met.Counter("server_relate_batches_total").Value() >= n {
		t.Errorf("every probe got its own batch; micro-batching ineffective")
	}
}

func TestMetricsExposed(t *testing.T) {
	_, c := newTestServer(t, Config{}, "OLE", "OPE")
	if _, err := c.Relate(context.Background(), RelateRequest{Dataset: "OPE", WKT: probeWKT}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(context.Background(), JoinRequest{Left: "OLE", Right: "OPE"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`server_request_seconds_count{route="relate"}`,
		`server_request_seconds_count{route="join"}`,
		`server_requests_total{route="join",code="200"}`,
		"server_inflight",
		"server_queue_depth",
		"server_relate_batches_total",
		"server_join_pairs_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestTimeoutClamp(t *testing.T) {
	svc := New(testRegistry(t), Config{DefaultTimeout: time.Second, MaxTimeout: 2 * time.Second})
	defer svc.Close()
	cases := []struct {
		ms   int64
		want time.Duration
	}{
		{0, time.Second},          // default
		{500, 500 * time.Millisecond},
		{60_000, 2 * time.Second}, // clamped to MaxTimeout
	}
	for _, tc := range cases {
		ctx, cancel := svc.requestCtx(context.Background(), tc.ms)
		dl, ok := ctx.Deadline()
		cancel()
		if !ok {
			t.Fatalf("timeout_ms=%d: no deadline", tc.ms)
		}
		if d := time.Until(dl); d > tc.want || d < tc.want-200*time.Millisecond {
			t.Errorf("timeout_ms=%d: deadline in %v, want ~%v", tc.ms, d, tc.want)
		}
	}
}
