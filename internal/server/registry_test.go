package server

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geojson"
	"repro/internal/geom"
	"repro/internal/wkt"
)

// The shared test fixture: a small synthetic suite preprocessed once.
var (
	fixOnce  sync.Once
	fixSuite *datagen.Suite
)

func testSuite() *datagen.Suite {
	fixOnce.Do(func() { fixSuite = datagen.NewSuite(7, 0.03) })
	return fixSuite
}

func testRegistry(t *testing.T, sets ...string) *Registry {
	t.Helper()
	suite := testSuite()
	reg := NewRegistry(suite.Space, datagen.DefaultOrder)
	for _, name := range sets {
		if _, err := reg.Add(name, datagen.EntityTypes[name], suite.Sets[name]); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func TestRegistryAddAndList(t *testing.T) {
	reg := testRegistry(t, "OLE", "OPE")
	if reg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", reg.Len())
	}
	infos := reg.List()
	if len(infos) != 2 || infos[0].Name != "OLE" || infos[1].Name != "OPE" {
		t.Fatalf("List = %+v", infos)
	}
	for _, info := range infos {
		if info.Objects == 0 || info.Vertices == 0 || info.ApproxBytes == 0 {
			t.Errorf("%s: empty stats %+v", info.Name, info)
		}
	}
	e, ok := reg.Get("OLE")
	if !ok || e.Tree.Len() != e.Dataset.Len() {
		t.Fatalf("OLE entry: ok=%v tree=%d objects=%d", ok, e.Tree.Len(), e.Dataset.Len())
	}
	if _, err := reg.Add("OLE", "", nil); err == nil {
		t.Fatal("duplicate Add must fail")
	}
	if _, err := reg.Add("", "", nil); err == nil {
		t.Fatal("empty name must fail")
	}
}

func TestRegistryLoadFormats(t *testing.T) {
	suite := testSuite()
	dir := t.TempDir()
	polys := suite.Sets["TC"]

	// .stj: the binary preprocessed format.
	reg0 := testRegistry(t, "TC")
	e0, _ := reg0.Get("TC")
	f, err := os.Create(filepath.Join(dir, "counties.stj"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e0.Dataset.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// .wkt: one polygon per line.
	var lines []byte
	for _, p := range polys {
		lines = append(lines, wkt.MarshalPolygon(p)...)
		lines = append(lines, '\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "wktset.wkt"), lines, 0o644); err != nil {
		t.Fatal(err)
	}

	// .geojson: a FeatureCollection.
	features := make([]geojson.Feature, len(polys))
	for i, p := range polys {
		features[i] = geojson.Feature{Geometry: geom.NewMultiPolygon(p)}
	}
	gj, err := geojson.MarshalFeatureCollection(features)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "gjset.geojson"), gj, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry(suite.Space, datagen.DefaultOrder)
	names, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The .stj keeps its embedded name; the others take the basename.
	want := []string{"TC", "gjset", "wktset"}
	if len(names) != len(want) {
		t.Fatalf("LoadDir names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("LoadDir names = %v, want %v", names, want)
		}
	}
	for _, n := range want {
		e, ok := reg.Get(n)
		if !ok || e.Dataset.Len() != len(polys) {
			t.Fatalf("%s: %d objects, want %d", n, e.Dataset.Len(), len(polys))
		}
	}

	if _, err := reg.LoadFile(filepath.Join(dir, "nope.csv")); err == nil {
		t.Fatal("unsupported extension must fail")
	}
}

// Loading a .stj written under a different grid must still serve sound
// answers: approximations are rebuilt on the registry's grid.
func TestRegistryRebuildsForeignGrid(t *testing.T) {
	suite := testSuite()
	polys := suite.Sets["TC"]

	// Preprocess on a deliberately different (coarser, offset) grid.
	foreign := NewRegistry(geom.MBR{MinX: -10, MinY: -10, MaxX: 2048, MaxY: 2048}, 8)
	fe, err := foreign.Add("TC", "counties", polys)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "tc.stj")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Dataset.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := NewRegistry(suite.Space, datagen.DefaultOrder)
	e, err := reg.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Same objects, but approximations from the registry's grid: the
	// native registration must agree interval-for-interval.
	native := testRegistry(t, "TC")
	ne, _ := native.Get("TC")
	for i, o := range e.Dataset.Objects {
		np, nc := ne.Dataset.Objects[i].Approx.NumIntervals()
		p, c := o.Approx.NumIntervals()
		if p != np || c != nc {
			t.Fatalf("object %d: approx %d/%d after reload, want %d/%d (not rebuilt?)", i, p, c, np, nc)
		}
	}
}

func TestProbe(t *testing.T) {
	reg := testRegistry(t, "TC")
	probe, err := reg.Probe(mustPoly(t, "POLYGON ((100 100, 200 100, 200 200, 100 200))"))
	if err != nil || probe == nil {
		t.Fatalf("in-space probe: %v", err)
	}
	if probe.ID != -1 {
		t.Fatalf("probe ID = %d, want -1", probe.ID)
	}
}

func mustPoly(t *testing.T, s string) *geom.Polygon {
	t.Helper()
	p, err := wkt.ParsePolygon(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
