// Resilience layer of the registry: durable snapshot warm starts,
// quarantine of corrupt snapshots, degraded (MBR+refine) serving while
// a background rebuild re-rasterizes from source, and the panic barrier
// around that rebuild. The invariant throughout: a corrupt snapshot can
// delay answers — never change them. Every path either serves indexes
// proven bit-exact by checksums, or serves the ST2 pipeline, which
// reads no approximations at all.
package server

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/snapshot"
)

// EnableSnapshots makes the registry persist preprocessed datasets
// under dir and warm-start from them: subsequent registrations check
// dir for a valid snapshot before rasterizing anything. Must be called
// before datasets are registered.
func (g *Registry) EnableSnapshots(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: snapshot dir: %w", err)
	}
	g.snapDir = dir
	return nil
}

// SnapshotDir returns the snapshot directory ("" when disabled).
func (g *Registry) SnapshotDir() string { return g.snapDir }

// Register is the resilient registration entry point for callers
// holding source polygons (the daemon's -gen path); see register.
func (g *Registry) Register(name, entity string, polys []*geom.Polygon) (*Entry, error) {
	return g.register(name, entity, polys)
}

// register is the resilient registration path behind Add-from-source
// loaders. Without snapshots it is exactly Add. With snapshots:
//
//   - a valid snapshot on the registry's grid → warm start, zero
//     rasterization;
//   - no snapshot (or one from another grid) → build from source, then
//     persist a fresh snapshot;
//   - a corrupt snapshot → quarantine the file as evidence, serve the
//     dataset degraded (MBR-only objects, handlers force ST2), and
//     rebuild the real indexes in the background, swapping them in and
//     re-snapshotting when done.
func (g *Registry) register(name, entity string, polys []*geom.Polygon) (*Entry, error) {
	// Shard-mode subsetting happens once, here: every path below —
	// warm start, cold build, degraded serving, background rebuild —
	// works on the owned subset with its global ids.
	polys, ids := g.ownedSubset(polys)
	if g.snapDir == "" {
		return g.add(name, entity, polys, ids)
	}
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	path, err := snapshot.DatasetPath(g.snapDir, name)
	if err != nil {
		return nil, err
	}

	snap, rerr := snapshot.Read(path)
	switch {
	case rerr == nil:
		if e, ok := g.tryWarmStart(name, entity, snap, polys, ids); ok {
			return e, nil
		}
		// Grid or contents mismatch: the snapshot is internally valid
		// but stale (built for another space/order or another source).
		// Rebuild from source and overwrite it below.
		g.logf("server: snapshot %s is stale, rebuilding from source", path)
	case os.IsNotExist(rerr):
		// Cold start: build and persist below.
	case snapshot.IsCorrupt(rerr):
		g.count("server_snapshot_corrupt_total", 1)
		qpath, qerr := snapshot.Quarantine(path)
		if qerr != nil {
			g.logf("server: quarantine of %s failed: %v", path, qerr)
		} else {
			g.logf("server: %v — quarantined to %s", rerr, qpath)
		}
		return g.serveDegraded(name, entity, polys, ids)
	default:
		// I/O trouble reading the snapshot (permissions, device): treat
		// like a cold start rather than failing the dataset.
		g.logf("server: snapshot %s unreadable (%v), rebuilding from source", path, rerr)
	}

	e, err := g.add(name, entity, polys, ids)
	if err != nil {
		return nil, err
	}
	g.writeSnapshot(name, e.Dataset)
	return e, nil
}

// tryWarmStart registers the snapshot contents if they match the
// registry's grid and the (owned subset of the) source polygons;
// reports success. Snapshots store objects positionally, so in shard
// mode the decoded ids are remapped to the global ids recomputed from
// source — the subset is deterministic, and the per-object MBR
// comparison below rejects a snapshot of a different subset (e.g. one
// written under another key range).
func (g *Registry) tryWarmStart(name, entity string, snap *snapshot.Snapshot, polys []*geom.Polygon, ids []int) (*Entry, bool) {
	grid := g.builder.Grid()
	if snap.Space != grid.Space() || snap.Order != grid.Order() {
		return nil, false
	}
	if snap.Name != name || len(snap.Dataset.Objects) != len(polys) {
		return nil, false
	}
	start := time.Now()
	ds := snap.Dataset
	ds.Entity = entity
	for j, o := range ds.Objects {
		if o.MBR != polys[j].Bounds() {
			return nil, false
		}
		o.ID = gid(ids, j)
	}
	e := &Entry{Dataset: ds, Tree: buildTree(ds), BuildTime: time.Since(start)}
	if err := g.insert(name, e); err != nil {
		return nil, false
	}
	g.count("server_snapshot_loads_total", 1)
	g.logf("server: dataset %s warm-started from snapshot (%d objects)", name, ds.Len())
	return e, true
}

// serveDegraded registers an MBR-only entry (no approximations built —
// cheap) and kicks off the background rebuild. Queries against it are
// answered by the ST2 pipeline: sound, just slower.
func (g *Registry) serveDegraded(name, entity string, polys []*geom.Polygon, ids []int) (*Entry, error) {
	e, err := g.addDegraded(name, entity, polys, ids)
	if err != nil {
		return nil, err
	}
	g.startRebuild(name, entity, polys, ids)
	return e, nil
}

// AddDegraded registers a dataset without building approximations:
// objects carry their exact geometry and MBR only, with empty interval
// lists. The entry is marked Degraded so handlers force the MBR+refine
// pipeline (an empty conservative list would make the APRIL filter
// unsound: empty overlap reads as "definitely disjoint").
func (g *Registry) AddDegraded(name, entity string, polys []*geom.Polygon) (*Entry, error) {
	owned, ids := g.ownedSubset(polys)
	return g.addDegraded(name, entity, owned, ids)
}

func (g *Registry) addDegraded(name, entity string, polys []*geom.Polygon, ids []int) (*Entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	start := time.Now()
	arena := geom.BuildArena(polys)
	ds := &dataset.Dataset{Name: name, Entity: entity, Arena: arena,
		Objects: make([]*core.Object, 0, len(polys))}
	for i := range polys {
		p := arena.Polygon(i)
		ds.Objects = append(ds.Objects, &core.Object{ID: gid(ids, i), Poly: p, MBR: p.Bounds()})
	}
	e := &Entry{Dataset: ds, Tree: buildTree(ds), BuildTime: time.Since(start), Degraded: true}
	if err := g.insert(name, e); err != nil {
		return nil, err
	}
	g.count("server_degraded_starts_total", 1)
	g.updateDegradedGauge()
	return e, nil
}

// startRebuild launches the background re-preprocessing of a degraded
// dataset behind a recover barrier: a panicking rebuild is recorded and
// the dataset stays degraded; the process never dies.
func (g *Registry) startRebuild(name, entity string, polys []*geom.Polygon, ids []int) {
	g.mu.Lock()
	if g.rebuilding[name] {
		g.mu.Unlock()
		return
	}
	g.rebuilding[name] = true
	g.mu.Unlock()
	g.updateDegradedGauge()

	g.rebuilds.Add(1)
	go func() {
		defer g.rebuilds.Done()
		defer func() {
			if r := recover(); r != nil {
				g.count("server_rebuild_panics_total", 1)
				g.logf("server: rebuild of %s panicked (dataset stays degraded): %v", name, r)
			}
			g.mu.Lock()
			delete(g.rebuilding, name)
			g.mu.Unlock()
			g.updateDegradedGauge()
		}()
		if err := fault.Check("registry.rebuild"); err != nil {
			panic(err)
		}
		e, err := g.build(name, entity, polys, ids)
		if err != nil {
			g.count("server_rebuild_failures_total", 1)
			g.logf("server: rebuild of %s failed (dataset stays degraded): %v", name, err)
			return
		}
		g.mu.Lock()
		g.entries[name] = e
		g.mu.Unlock()
		g.count("server_rebuilds_total", 1)
		g.logf("server: dataset %s recovered from degraded mode in %v", name, e.BuildTime)
		g.writeSnapshot(name, e.Dataset)
	}()
}

// WaitRebuilds blocks until every background rebuild in flight has
// finished (drain paths and tests).
func (g *Registry) WaitRebuilds() { g.rebuilds.Wait() }

// writeSnapshot persists a freshly built dataset; failures are counted
// and logged but never fail the registration — the snapshot is an
// optimization, not a source of truth.
func (g *Registry) writeSnapshot(name string, ds *dataset.Dataset) {
	if g.snapDir == "" {
		return
	}
	path, err := snapshot.DatasetPath(g.snapDir, name)
	if err == nil {
		grid := g.builder.Grid()
		err = snapshot.Write(path, ds, grid.Space(), grid.Order())
	}
	if err != nil {
		g.count("server_snapshot_write_failures_total", 1)
		g.logf("server: writing snapshot for %s failed: %v", name, err)
		return
	}
	g.count("server_snapshot_writes_total", 1)
}

// States lists the currently degraded and rebuilding dataset names,
// sorted (the /v1/healthz payload).
func (g *Registry) States() (degraded, rebuilding []string) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for name, e := range g.entries {
		if !e.Degraded {
			continue
		}
		if g.rebuilding[name] {
			rebuilding = append(rebuilding, name)
		} else {
			degraded = append(degraded, name)
		}
	}
	sort.Strings(degraded)
	sort.Strings(rebuilding)
	return degraded, rebuilding
}

func (g *Registry) updateDegradedGauge() {
	if g.met == nil {
		return
	}
	g.mu.RLock()
	var n, reb int64
	for name, e := range g.entries {
		if e.Degraded {
			n++
		}
		if g.rebuilding[name] {
			reb++
		}
	}
	g.mu.RUnlock()
	g.met.Gauge("server_datasets_degraded").Set(n)
	g.met.Gauge("server_datasets_rebuilding").Set(reb)
}
