// Resilience layer of the registry: durable snapshot warm starts,
// quarantine of corrupt snapshots, degraded (MBR+refine) serving while
// a background rebuild re-rasterizes from source, and the panic barrier
// around that rebuild. The invariant throughout: a corrupt snapshot can
// delay answers — never change them. Every path either serves indexes
// proven bit-exact by checksums, or serves the ST2 pipeline, which
// reads no approximations at all.
package server

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/snapshot"
)

// EnableSnapshots makes the registry persist preprocessed datasets
// under dir and warm-start from them: subsequent registrations check
// dir for a valid snapshot before rasterizing anything. Must be called
// before datasets are registered.
func (g *Registry) EnableSnapshots(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: snapshot dir: %w", err)
	}
	g.snapDir = dir
	return nil
}

// SnapshotDir returns the snapshot directory ("" when disabled).
func (g *Registry) SnapshotDir() string { return g.snapDir }

// Register is the resilient registration entry point for callers
// holding source polygons (the daemon's -gen path); see register.
func (g *Registry) Register(name, entity string, polys []*geom.Polygon) (*Entry, error) {
	return g.register(name, entity, polys)
}

// register is the resilient registration path behind Add-from-source
// loaders. Without snapshots it is exactly Add. With snapshots:
//
//   - a valid snapshot on the registry's grid → warm start, zero
//     rasterization;
//   - no snapshot (or one from another grid) → build from source, then
//     persist a fresh snapshot;
//   - a corrupt snapshot → quarantine the file as evidence, serve the
//     dataset degraded (MBR-only objects, handlers force ST2), and
//     rebuild the real indexes in the background, swapping them in and
//     re-snapshotting when done.
func (g *Registry) register(name, entity string, polys []*geom.Polygon) (*Entry, error) {
	// Shard-mode subsetting happens once, here: every path below —
	// warm start, cold build, degraded serving, background rebuild —
	// works on the owned subset with its global ids.
	polys, ids := g.ownedSubset(polys)
	if g.snapDir == "" {
		return g.add(name, entity, polys, ids)
	}
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	path, err := snapshot.DatasetPath(g.snapDir, name)
	if err != nil {
		return nil, err
	}

	snap, rerr := snapshot.Read(path)
	switch {
	case rerr == nil:
		if e, ok := g.tryWarmStart(name, entity, snap, polys, ids); ok {
			return e, nil
		}
		// Grid or contents mismatch: the snapshot is internally valid
		// but stale (built for another space/order or another source).
		// Rebuild from source and overwrite it below.
		g.logf("server: snapshot %s is stale, rebuilding from source", path)
	case os.IsNotExist(rerr):
		// Cold start: build and persist below.
	case snapshot.IsCorrupt(rerr):
		g.count("server_snapshot_corrupt_total", 1)
		qpath, qerr := snapshot.Quarantine(path)
		if qerr != nil {
			g.logf("server: quarantine of %s failed: %v", path, qerr)
		} else {
			g.logf("server: %v — quarantined to %s", rerr, qpath)
		}
		return g.serveDegraded(name, entity, polys, ids)
	default:
		// I/O trouble reading the snapshot (permissions, device): treat
		// like a cold start rather than failing the dataset.
		g.logf("server: snapshot %s unreadable (%v), rebuilding from source", path, rerr)
	}

	e, err := g.add(name, entity, polys, ids)
	if err != nil {
		return nil, err
	}
	g.writeSnapshotMeta(name, e.Dataset, snapshot.EpochMeta{NextID: e.NextID})
	return e, nil
}

// tryWarmStart registers the snapshot contents if they match the
// registry's grid; reports success.
//
// Epoch-0 snapshots describe exactly what a source build would produce,
// so they are additionally checked against the (owned subset of the)
// source polygons object by object — v1 snapshots store objects
// positionally, and in shard mode the decoded ids are remapped to the
// global ids recomputed from source; the per-object MBR comparison
// rejects a snapshot of a different subset (e.g. one written under
// another key range).
//
// Epoch-N snapshots (N > 0) carry mutations the source files never saw:
// the snapshot is the *newer* truth, fully checksummed, so it is
// trusted outright — comparing against source would wrongly classify
// every mutated dataset as stale and silently discard its mutations.
// Warm start therefore resumes from the latest complete epoch, with
// NextID and the tombstone set restored so ids are never reused.
func (g *Registry) tryWarmStart(name, entity string, snap *snapshot.Snapshot, polys []*geom.Polygon, ids []int) (*Entry, bool) {
	grid := g.builder.Grid()
	if snap.Space != grid.Space() || snap.Order != grid.Order() {
		return nil, false
	}
	if snap.Name != name {
		return nil, false
	}
	start := time.Now()
	ds := snap.Dataset
	ds.Entity = entity
	if snap.EpochMeta.Epoch == 0 {
		if len(ds.Objects) != len(polys) {
			return nil, false
		}
		for j, o := range ds.Objects {
			if o.MBR != polys[j].Bounds() {
				return nil, false
			}
			o.ID = gid(ids, j)
		}
	}
	e := indexEntry(&Entry{
		Dataset:   ds,
		Tree:      buildTree(ds),
		BuildTime: time.Since(start),
		Epoch:     snap.EpochMeta.Epoch,
		NextID:    snap.EpochMeta.NextID,
		Tombs:     snap.EpochMeta.Tombs,
		walLSN:    snap.EpochMeta.WalLSN,
	})
	if err := g.insert(name, e); err != nil {
		return nil, false
	}
	g.count("server_snapshot_loads_total", 1)
	if e.Epoch > 0 {
		g.logf("server: dataset %s warm-started from epoch %d snapshot (%d objects)", name, e.Epoch, ds.Len())
	} else {
		g.logf("server: dataset %s warm-started from snapshot (%d objects)", name, ds.Len())
	}
	return e, true
}

// serveDegraded registers an MBR-only entry (no approximations built —
// cheap) and kicks off the background rebuild. Queries against it are
// answered by the ST2 pipeline: sound, just slower.
func (g *Registry) serveDegraded(name, entity string, polys []*geom.Polygon, ids []int) (*Entry, error) {
	e, err := g.addDegraded(name, entity, polys, ids)
	if err != nil {
		return nil, err
	}
	g.startRebuild(name, entity, polys, ids)
	return e, nil
}

// AddDegraded registers a dataset without building approximations:
// objects carry their exact geometry and MBR only, with empty interval
// lists. The entry is marked Degraded so handlers force the MBR+refine
// pipeline (an empty conservative list would make the APRIL filter
// unsound: empty overlap reads as "definitely disjoint").
func (g *Registry) AddDegraded(name, entity string, polys []*geom.Polygon) (*Entry, error) {
	owned, ids := g.ownedSubset(polys)
	return g.addDegraded(name, entity, owned, ids)
}

func (g *Registry) addDegraded(name, entity string, polys []*geom.Polygon, ids []int) (*Entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	start := time.Now()
	arena := geom.BuildArena(polys)
	ds := &dataset.Dataset{Name: name, Entity: entity, Arena: arena,
		Objects: make([]*core.Object, 0, len(polys))}
	for i := range polys {
		p := arena.Polygon(i)
		ds.Objects = append(ds.Objects, &core.Object{ID: gid(ids, i), Poly: p, MBR: p.Bounds()})
	}
	// indexEntry matters here: without it a degraded entry would hand
	// out NextID 0 and a degraded-mode insert would collide with a base
	// object's id.
	e := indexEntry(&Entry{Dataset: ds, Tree: buildTree(ds), BuildTime: time.Since(start), Degraded: true})
	if err := g.insert(name, e); err != nil {
		return nil, err
	}
	g.count("server_degraded_starts_total", 1)
	g.updateDegradedGauge()
	return e, nil
}

// startRebuild launches the background re-preprocessing of a degraded
// dataset behind a recover barrier: a panicking rebuild is recorded and
// the dataset stays degraded; the process never dies.
func (g *Registry) startRebuild(name, entity string, polys []*geom.Polygon, ids []int) {
	g.mu.Lock()
	if g.rebuilding[name] {
		g.mu.Unlock()
		return
	}
	g.rebuilding[name] = true
	g.mu.Unlock()
	g.updateDegradedGauge()

	g.rebuilds.Add(1)
	go func() {
		defer g.rebuilds.Done()
		defer func() {
			if r := recover(); r != nil {
				g.count("server_rebuild_panics_total", 1)
				g.logf("server: rebuild of %s panicked (dataset stays degraded): %v", name, r)
			}
			g.mu.Lock()
			delete(g.rebuilding, name)
			g.mu.Unlock()
			g.updateDegradedGauge()
		}()
		if err := fault.Check("registry.rebuild"); err != nil {
			panic(err)
		}
		e, err := g.build(name, entity, polys, ids)
		if err != nil {
			g.count("server_rebuild_failures_total", 1)
			g.logf("server: rebuild of %s failed (dataset stays degraded): %v", name, err)
			return
		}
		sl := g.slot(name)
		if sl == nil {
			return
		}
		// Snapshot metadata is captured from the source-built entry
		// before the swap: the snapshot persists the rebuilt base only,
		// and mutations accepted while degraded stay volatile until the
		// next compaction (same durability contract as normal serving).
		em := snapshot.EpochMeta{Epoch: e.Epoch, NextID: e.NextID, Tombs: e.Tombs}
		// Publish under the slot mutex so the swap can't race a writer:
		// mutations accepted while the dataset served degraded live in
		// the current entry's delta and must survive the swap.
		sl.mu.Lock()
		if cur := sl.cur.Load(); cur != nil {
			e.Delta = cur.Delta
			e.Tombs = cur.Tombs
			e.Epoch = cur.Epoch
			e.walLSN = cur.walLSN
			if cur.NextID > e.NextID {
				e.NextID = cur.NextID
			}
			e.Version = cur.Version + 1
		}
		sl.cur.Store(e)
		sl.mu.Unlock()
		g.count("server_rebuilds_total", 1)
		g.logf("server: dataset %s recovered from degraded mode in %v", name, e.BuildTime)
		g.writeSnapshotMeta(name, e.Dataset, em)
	}()
}

// WaitRebuilds blocks until every background rebuild in flight has
// finished (drain paths and tests).
func (g *Registry) WaitRebuilds() { g.rebuilds.Wait() }

// writeSnapshotMeta persists a dataset together with its epoch
// metadata; failures are counted and logged but never fail the caller —
// the snapshot is an optimization (and, for epochs, a durability
// checkpoint), not a source of truth for the running process. The
// returned bool reports whether the epoch is durably on disk: only
// then may the WAL prune the records the epoch covers.
func (g *Registry) writeSnapshotMeta(name string, ds *dataset.Dataset, em snapshot.EpochMeta) bool {
	if g.snapDir == "" {
		return false
	}
	path, err := snapshot.DatasetPath(g.snapDir, name)
	if err == nil {
		grid := g.builder.Grid()
		err = snapshot.WriteEpoch(path, ds, grid.Space(), grid.Order(), em)
	}
	if err != nil {
		g.count("server_snapshot_write_failures_total", 1)
		g.logf("server: writing snapshot for %s failed: %v", name, err)
		return false
	}
	g.count("server_snapshot_writes_total", 1)
	return true
}

// States lists the currently degraded and rebuilding dataset names,
// sorted (the /v1/healthz payload).
func (g *Registry) States() (degraded, rebuilding []string) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for name, sl := range g.slots {
		e := sl.cur.Load()
		if e == nil || !e.Degraded {
			continue
		}
		if g.rebuilding[name] {
			rebuilding = append(rebuilding, name)
		} else {
			degraded = append(degraded, name)
		}
	}
	sort.Strings(degraded)
	sort.Strings(rebuilding)
	return degraded, rebuilding
}

func (g *Registry) updateDegradedGauge() {
	if g.met == nil {
		return
	}
	g.mu.RLock()
	var n, reb int64
	for name, sl := range g.slots {
		if e := sl.cur.Load(); e != nil && e.Degraded {
			n++
		}
		if g.rebuilding[name] {
			reb++
		}
	}
	g.mu.RUnlock()
	g.met.Gauge("server_datasets_degraded").Set(n)
	g.met.Gauge("server_datasets_rebuilding").Set(reb)
}
