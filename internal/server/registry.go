// Package server is the resident query service over the topology-join
// pipeline: a dataset registry that loads named datasets and builds
// their APRIL approximations and STR R-tree indexes once, an HTTP JSON
// API serving relate probes and dataset-pair joins from those indexes,
// bounded-concurrency admission control, per-request deadlines plumbed
// down to the parallel sweeps, micro-batching of concurrent probes, and
// graceful drain. The batch CLIs rebuild everything per invocation; the
// server amortizes preprocessing across millions of requests, which is
// where filter-and-refine joins actually pay off (cf. Kipf et al.,
// "Adaptive Geospatial Joins for Modern Hardware").
package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geojson"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/snapshot"
	"repro/internal/wal"
	"repro/internal/wkt"
)

// Entry is one published epoch view of a registered dataset: the
// immutable base indexes — preprocessed objects (MBR + APRIL
// approximation) and the STR R-tree over their MBRs — plus the
// immutable mutation overlay (Delta) accumulated since the base epoch.
// Entries are never mutated after publication, so request handlers
// read them without locks; mutation, compaction and recovery all
// publish a *successor* entry through the slot's atomic pointer, never
// touching a published one.
type Entry struct {
	Dataset *dataset.Dataset
	Tree    *join.RTree
	// BuildTime is how long preprocessing + index build took; it is the
	// cost the server amortizes across requests.
	BuildTime time.Duration
	// Degraded marks an entry serving without APRIL approximations
	// (objects carry empty interval lists) while a background rebuild
	// runs: handlers must force the MBR+refine pipeline (ST2), which
	// never reads approximations, so answers stay correct — just
	// slower.
	Degraded bool

	// Epoch is the compaction generation of the base: 0 for a dataset
	// built straight from source, N after the Nth compaction.
	Epoch uint64
	// Version counts publications of this slot (every mutation,
	// compaction or rebuild swap bumps it): two responses carrying the
	// same version were served from the same published entry.
	Version uint64
	// NextID is the id the next inserted object receives; ids are
	// never reused.
	NextID int
	// Tombs is the cumulative set of deleted ids (persisted with each
	// epoch so a warm start never resurrects them).
	Tombs []int
	// Delta is the mutation overlay since the base epoch; nil when the
	// dataset has no uncompacted mutations (the common case — and the
	// read paths then cost exactly what they did before mutation
	// existed).
	Delta *Delta
	// idIndex maps object id → base array position; nil when ids are
	// positional (fresh unsharded builds).
	idIndex map[int]int32
	// walLSN is the WAL watermark of the base epoch: every WAL record
	// at or below it is folded into the base, so warm-start replay
	// applies only records past it. Zero without a WAL.
	walLSN uint64
}

// slot is one dataset's publication cell: readers load cur with a
// single atomic pointer read and never block; mutation and compaction
// publishes serialize on mu; compacting admits one compactor at a
// time. When a WAL is attached, writers queue on wmu and a rotating
// leader commits whole batches (group commit — see wal.go); idem is
// the recent-mutation dedupe cache behind Idempotency-Key, guarded by
// mu like every publication.
type slot struct {
	mu         sync.Mutex
	cur        atomic.Pointer[Entry]
	compacting atomic.Bool

	wal  *wal.Log
	idem *idemCache

	wmu     sync.Mutex
	wq      []*mutReq
	wleader bool
	wbytes  int64         // encoded bytes queued (cleared per batch)
	wfull   chan struct{} // signaled when wbytes crosses the byte threshold
}

// Registry holds the named datasets a server instance answers queries
// from. All datasets and every probe geometry share one global grid
// (the paper's setup; approximations from different grids are not
// comparable), so the registry owns the april.Builder.
type Registry struct {
	builder *april.Builder

	// snapDir, when non-empty, is the durable snapshot directory:
	// registrations load from it when a valid snapshot exists and
	// persist into it after source builds (see resilience.go).
	snapDir string
	met     *obs.Registry
	logf    func(format string, args ...any)

	// shard, when set, restricts every registration to the objects whose
	// MBR overlaps the assignment's key range (boundary-straddling
	// objects are held by every overlapped shard). Registered objects
	// keep their GLOBAL ids — the index in the full source slice — so
	// per-shard answers merge against single-node answers verbatim.
	shard *shard.Assignment

	mu         sync.RWMutex
	slots      map[string]*slot
	rebuilding map[string]bool
	rebuilds   sync.WaitGroup

	// compactEvery is the auto-compaction threshold: a dataset whose
	// pending op log reaches it gets a background compaction. <= 0
	// disables auto-compaction (explicit Compact calls still work).
	compactEvery int
	compactions  sync.WaitGroup

	// walDir, when non-empty, attaches a write-ahead log to every
	// registered dataset: accepted mutations are fsynced before the
	// ack and replayed over the snapshot epoch on warm start (see
	// wal.go). The remaining fields tune group commit and rotation.
	walDir        string
	walSync       time.Duration
	walSyncBytes  int64
	walMaxSegment int64
}

// DefaultCompactThreshold is the pending-op count that triggers an
// automatic background compaction.
const DefaultCompactThreshold = 4096

// NewRegistry creates a registry whose datasets and probes share a
// 2^order × 2^order grid over the given data space. Geometry outside
// the space cannot be approximated and is rejected at load/probe time.
func NewRegistry(space geom.MBR, order uint) *Registry {
	return &Registry{
		builder:      april.NewBuilder(space, order),
		slots:        make(map[string]*slot),
		rebuilding:   make(map[string]bool),
		logf:         func(string, ...any) {},
		compactEvery: DefaultCompactThreshold,
	}
}

// SetCompactThreshold sets the pending-op count that triggers an
// automatic background compaction; n <= 0 disables auto-compaction.
func (g *Registry) SetCompactThreshold(n int) { g.compactEvery = n }

// Instrument mirrors the registry's lifecycle counters (preprocessed
// objects, snapshot loads/writes/corruptions, rebuilds) and the
// degraded-datasets gauge into met.
func (g *Registry) Instrument(met *obs.Registry) { g.met = met }

// SetLogf routes the registry's recovery log lines (quarantines,
// rebuild outcomes) to f; the default discards them.
func (g *Registry) SetLogf(f func(format string, args ...any)) {
	if f != nil {
		g.logf = f
	}
}

func (g *Registry) count(name string, n int64) {
	if g.met != nil {
		g.met.Counter(name).Add(n)
	}
}

// ValidateName rejects dataset names that are empty, over-long, or
// could escape a directory when used as a file stem ("../../etc/…",
// absolute paths, separators, control bytes). Names arrive from network
// requests, CLI flags, and foreign .stj headers — all hostile inputs —
// and are later joined into snapshot and quarantine paths, so the
// gate sits in front of every registration.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("server: dataset name must not be empty")
	}
	if err := snapshot.ValidName(name); err != nil {
		return fmt.Errorf("server: invalid dataset name %q: %w", name, err)
	}
	return nil
}

// Builder exposes the shared approximation builder.
func (g *Registry) Builder() *april.Builder { return g.builder }

// SetShard puts the registry in shard mode: subsequent registrations
// keep only the objects overlapping a's key range. Must be called
// before any dataset is registered.
func (g *Registry) SetShard(a *shard.Assignment) { g.shard = a }

// ownedSubset filters polys down to the shard's share, returning the
// subset and each kept polygon's index in the original slice (its
// global object id). A registry without a shard assignment returns
// (polys, nil): ids stay positional.
func (g *Registry) ownedSubset(polys []*geom.Polygon) ([]*geom.Polygon, []int) {
	if g.shard == nil {
		return polys, nil
	}
	owned := make([]*geom.Polygon, 0, len(polys))
	ids := make([]int, 0, len(polys))
	for i, p := range polys {
		if g.shard.Overlaps(p.Bounds()) {
			owned = append(owned, p)
			ids = append(ids, i)
		}
	}
	return owned, ids
}

// gid maps a subset index to its global object id (identity when the
// registry is not sharded).
func gid(ids []int, i int) int {
	if ids == nil {
		return i
	}
	return ids[i]
}

// Add preprocesses polygons into a named dataset and builds its R-tree.
// Objects too large for the base grid fall back to the adaptive coarser
// orders rather than failing the whole dataset.
func (g *Registry) Add(name, entity string, polys []*geom.Polygon) (*Entry, error) {
	owned, ids := g.ownedSubset(polys)
	return g.add(name, entity, owned, ids)
}

// add registers an already-subset polygon slice (ids carry the global
// object ids, nil for unsharded registries).
func (g *Registry) add(name, entity string, polys []*geom.Polygon, ids []int) (*Entry, error) {
	e, err := g.build(name, entity, polys, ids)
	if err != nil {
		return nil, err
	}
	if err := g.insert(name, e); err != nil {
		return nil, err
	}
	return e, nil
}

// build preprocesses polygons into a complete (non-degraded) entry
// without registering it; rasterization cost is counted so warm starts
// can assert they skipped it.
func (g *Registry) build(name, entity string, polys []*geom.Polygon, ids []int) (*Entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	start := time.Now()
	arena := geom.BuildArena(polys)
	ds := &dataset.Dataset{Name: name, Entity: entity, Arena: arena,
		Objects: make([]*core.Object, 0, len(polys))}
	for i := range polys {
		o, err := core.NewObjectAdaptive(gid(ids, i), arena.Polygon(i), g.builder)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %s: %w", name, err)
		}
		ds.Objects = append(ds.Objects, o)
	}
	g.count("server_preprocess_objects_total", int64(len(polys)))
	return indexEntry(&Entry{Dataset: ds, Tree: buildTree(ds), BuildTime: time.Since(start)}), nil
}

func buildTree(ds *dataset.Dataset) *join.RTree {
	entries := make([]join.Entry, len(ds.Objects))
	for i, o := range ds.Objects {
		entries[i] = join.Entry{Box: o.MBR, ID: int32(i)}
	}
	return join.BuildRTree(entries)
}

// insert registers a built entry under name, rejecting duplicates.
// With a WAL enabled the dataset's log is opened and its surviving
// records replayed on top of e before the dataset is visible to
// writers — a failure there unregisters the slot again, since serving
// writes we cannot make durable would silently break the ack contract.
func (g *Registry) insert(name string, e *Entry) error {
	g.mu.RLock()
	_, dup := g.slots[name]
	g.mu.RUnlock()
	if dup {
		return fmt.Errorf("server: dataset %s already registered", name)
	}
	sl := &slot{}
	sl.cur.Store(e)
	if g.walDir != "" {
		// Attach before the slot is visible: recovery replay must not
		// race queries or writers, and a dataset whose log cannot open
		// must not serve writes we could never make durable.
		if err := g.attachWAL(name, sl); err != nil {
			return fmt.Errorf("server: wal for dataset %s: %w", name, err)
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.slots[name]; dup {
		if sl.wal != nil {
			sl.wal.Close()
		}
		return fmt.Errorf("server: dataset %s already registered", name)
	}
	g.slots[name] = sl
	return nil
}

// slot returns the publication cell registered under name (nil when
// unknown).
func (g *Registry) slot(name string) *slot {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.slots[name]
}

// AddDataset registers a preprocessed dataset. Approximations are
// rebuilt on the registry's grid: a .stj file written under another
// grid would otherwise silently break every filter. With snapshots
// enabled, a valid snapshot for the same name and grid short-circuits
// the rebuild entirely.
func (g *Registry) AddDataset(ds *dataset.Dataset) (*Entry, error) {
	polys := make([]*geom.Polygon, len(ds.Objects))
	for i, o := range ds.Objects {
		polys[i] = o.Poly
	}
	return g.register(ds.Name, ds.Entity, polys)
}

// LoadFile registers the dataset in path, dispatching on extension:
// .stj (the binary dataset format), .wkt (one POLYGON per line) or
// .geojson/.json (a FeatureCollection; multipolygon members become
// separate objects). The dataset is named after the file basename for
// .wkt/.geojson, or keeps its embedded name for .stj.
func (g *Registry) LoadFile(path string) (*Entry, error) {
	base := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".stj":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ds, err := dataset.Read(f)
		if err != nil {
			return nil, fmt.Errorf("server: %s: %w", path, err)
		}
		return g.AddDataset(ds)
	case ".wkt":
		polys, err := readWKTFile(path)
		if err != nil {
			return nil, err
		}
		return g.register(base, base, polys)
	case ".geojson", ".json":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		features, err := geojson.ParseFeatureCollection(data)
		if err != nil {
			return nil, fmt.Errorf("server: %s: %w", path, err)
		}
		var polys []*geom.Polygon
		for _, f := range features {
			polys = append(polys, f.Geometry.Polys...)
		}
		return g.register(base, base, polys)
	default:
		return nil, fmt.Errorf("server: %s: unsupported extension %q", path, ext)
	}
}

// LoadDir registers every loadable file in dir and returns the
// registered names in sorted order.
func (g *Registry) LoadDir(dir string) ([]string, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		switch strings.ToLower(filepath.Ext(f.Name())) {
		case ".stj", ".wkt", ".geojson", ".json":
		default:
			continue
		}
		e, err := g.LoadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			return nil, err
		}
		names = append(names, e.Dataset.Name)
	}
	sort.Strings(names)
	return names, nil
}

func readWKTFile(path string) ([]*geom.Polygon, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var polys []*geom.Polygon
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		p, err := wkt.ParsePolygon(line)
		if err != nil {
			return nil, fmt.Errorf("server: %s:%d: %w", path, i+1, err)
		}
		polys = append(polys, p)
	}
	return polys, nil
}

// Get returns the current epoch entry registered under name: one
// atomic pointer load after the map lookup, so readers never contend
// with mutation or compaction publishes.
func (g *Registry) Get(name string) (*Entry, bool) {
	sl := g.slot(name)
	if sl == nil {
		return nil, false
	}
	return sl.cur.Load(), true
}

// Len returns the number of registered datasets.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.slots)
}

// List describes every registered dataset, sorted by name.
func (g *Registry) List() []DatasetInfo {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(g.slots))
	for name, sl := range g.slots {
		e := sl.cur.Load()
		sz := e.Dataset.Sizes()
		status := "ok"
		switch {
		case e.Degraded && g.rebuilding[name]:
			status = "rebuilding"
		case e.Degraded:
			status = "degraded"
		}
		info := DatasetInfo{
			Name:        name,
			Entity:      e.Dataset.Entity,
			Objects:     e.Live(),
			Vertices:    sz.Vertices,
			ApproxBytes: sz.Approx,
			BuildMS:     float64(e.BuildTime) / float64(time.Millisecond),
			Status:      status,
			Epoch:       e.Epoch,
			PendingOps:  e.PendingOps(),
		}
		if sl.wal != nil {
			info.WalBytes = sl.wal.Size()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Probe preprocesses a request geometry on the registry's grid so it
// can run through the filters against any registered dataset. Probe
// objects use ID -1: they exist for one request only.
func (g *Registry) Probe(p *geom.Polygon) (*core.Object, error) {
	return core.NewObjectAdaptive(-1, p, g.builder)
}
