package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// TraceHeader is the request header propagating a trace id across
// service hops: the client injects the caller's current trace id (hex,
// see trace.FormatID) and the receiving server adopts it as the id of
// its own root span, so router- and shard-side spans of one logical
// request correlate in either process's /debug/traces buffer.
const TraceHeader = "X-Stj-Trace"

// Client is a small Go client for the topology query service. The zero
// HTTP client is replaced with http.DefaultClient; contexts carry
// cancellation and deadlines end to end (the server sees client
// disconnects and stops working).
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	// Retry, when non-nil, makes the client self-healing: bounded
	// retries with full-jitter backoff on 429/503/transport errors
	// (honoring Retry-After), per-attempt timeouts, and a per-host
	// circuit breaker that fails fast with ErrCircuitOpen while a host
	// is down. Nil keeps the historical single-attempt behavior.
	Retry *RetryPolicy

	// breakers holds one circuit breaker per target host, shared with
	// every clone the client hands out via At: consecutive failures
	// against one host open only that host's breaker, so a dead shard
	// replica cannot blind the client to its healthy siblings. Lazily
	// initialized (race-safe) for hand-rolled Client literals.
	breakers atomic.Pointer[breakerSet]
}

// NewClient creates a client for a service at baseURL, e.g.
// "http://localhost:8080". The client makes single attempts; see
// NewResilientClient.
func NewClient(baseURL string) *Client {
	c := &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
	c.breakers.Store(newBreakerSet())
	return c
}

// NewResilientClient is NewClient with the default RetryPolicy.
func NewResilientClient(baseURL string) *Client {
	c := NewClient(baseURL)
	c.Retry = &RetryPolicy{}
	return c
}

// At returns a clone of the client targeting baseURL. The clone shares
// the transport, the retry policy and the per-host breaker set, so a
// router can hold one resilient client and address any replica through
// it while failure isolation stays per host.
func (c *Client) At(baseURL string) *Client {
	nc := &Client{BaseURL: baseURL, HTTPClient: c.HTTPClient, Retry: c.Retry}
	nc.breakers.Store(c.breakerSet())
	return nc
}

// breakerSet returns the client's breaker registry, creating it on
// first use (CAS keeps concurrent first calls agreeing on one set).
func (c *Client) breakerSet() *breakerSet {
	if s := c.breakers.Load(); s != nil {
		return s
	}
	s := newBreakerSet()
	if c.breakers.CompareAndSwap(nil, s) {
		return s
	}
	return c.breakers.Load()
}

// APIError is a non-2xx service response.
type APIError struct {
	StatusCode int
	Message    string
	// Reason is the server's machine-readable cause code when it sent
	// one (e.g. "unroutable_write", "wal_append_failed"), else empty.
	Reason string
	// RetryAfter is the server's backoff hint on 429, zero otherwise.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.StatusCode, e.Message)
}

// IsOverload reports whether the service shed the request (429): the
// caller should back off RetryAfter and retry.
func (e *APIError) IsOverload() bool { return e.StatusCode == http.StatusTooManyRequests }

// IsDeadline reports whether the request's deadline expired server-side.
func (e *APIError) IsDeadline() bool { return e.StatusCode == http.StatusGatewayTimeout }

// maxRetryAfter caps the backoff a server hint may impose on the
// client: RFC 9110 allows Retry-After dates arbitrarily far in the
// future, and a misconfigured (or hostile) server must not be able to
// park every client for an hour.
const maxRetryAfter = 30 * time.Second

// parseRetryAfter interprets a Retry-After header value in both RFC
// 9110 forms — delay-seconds ("120") and HTTP-date ("Fri, 07 Aug 2026
// 11:12:13 GMT") — relative to now, clamped to [0, maxRetryAfter].
// Unparseable values and dates already in the past yield zero (no
// hint), never an error: the header is advisory.
func parseRetryAfter(v string, now time.Time) time.Duration {
	v = strings.TrimSpace(v)
	var d time.Duration
	if sec, err := strconv.Atoi(v); err == nil {
		if sec < 0 {
			return 0
		}
		d = time.Duration(sec) * time.Second
	} else if t, terr := http.ParseTime(v); terr == nil {
		d = t.Sub(now)
	} else {
		return 0
	}
	if d < 0 {
		return 0
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, in, out any, hdr http.Header) error {
	if c.Retry != nil {
		return c.doRetry(ctx, method, path, in, out, hdr)
	}
	return c.doOnce(ctx, method, path, in, out, hdr)
}

// doOnce is one attempt: marshal, send, classify. Non-2xx responses
// become *APIError; failures below HTTP become *TransportError (always
// temporary); both carry Temporary() for callers picking their own
// retry strategy. hdr, when non-nil, supplies extra request headers
// (the idempotency key that makes Insert retries safe rides here — it
// must be identical on every attempt, so the retry loop cannot mint it).
func (c *Client) doOnce(ctx context.Context, method, path string, in, out any, hdr http.Header) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	// Propagate the caller's trace id so the serving side's root span
	// adopts it (route() parses TraceHeader) — a router's slow-query
	// trace then shares its id with the shard-side span tree that
	// burned the time.
	if id := trace.FromContext(ctx).TraceID(); id != 0 {
		req.Header.Set(TraceHeader, trace.FormatID(id))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return err // the caller cancelled; not the transport's fault
		}
		return &TransportError{Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return err
		}
		return &TransportError{Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			apiErr.Message = eb.Error
			apiErr.Reason = eb.Reason
		} else {
			apiErr.Message = string(data)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			apiErr.RetryAfter = parseRetryAfter(ra, time.Now())
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Health fetches /v1/healthz.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out, nil)
	return out, err
}

// Datasets lists the registered datasets.
func (c *Client) Datasets(ctx context.Context) ([]DatasetInfo, error) {
	var out []DatasetInfo
	err := c.do(ctx, http.MethodGet, "/v1/datasets", nil, &out, nil)
	return out, err
}

// Relate probes a geometry against an indexed dataset.
func (c *Client) Relate(ctx context.Context, req RelateRequest) (*RelateResponse, error) {
	var out RelateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/relate", req, &out, nil); err != nil {
		return nil, err
	}
	return &out, nil
}

// Join evaluates a dataset-pair topology join.
func (c *Client) Join(ctx context.Context, req JoinRequest) (*JoinResponse, error) {
	var out JoinResponse
	if err := c.do(ctx, http.MethodPost, "/v1/join", req, &out, nil); err != nil {
		return nil, err
	}
	return &out, nil
}

// Insert adds a new object to a dataset; the server assigns the id.
// Every call mints a fresh Idempotency-Key and sends it on all
// attempts, so inserts retry safely under the client's RetryPolicy: a
// resent attempt whose predecessor was actually applied is deduped
// server-side (the stored result is echoed, no second object is
// created). Dedupe state survives server restarts — the key rides in
// the write-ahead log record — but is bounded (a FIFO of recent keys),
// so retries must come promptly, which the retry loop's backoff
// guarantees.
func (c *Client) Insert(ctx context.Context, dataset string, req IngestRequest) (*IngestResponse, error) {
	var out IngestResponse
	hdr := http.Header{"Idempotency-Key": []string{newIdempotencyKey()}}
	if err := c.do(ctx, http.MethodPost, "/v1/datasets/"+dataset+"/objects", req, &out, hdr); err != nil {
		return nil, err
	}
	return &out, nil
}

// newIdempotencyKey mints a random 128-bit hex key. Collisions across
// distinct logical inserts must be negligible (a collision would wrongly
// dedupe a real mutation), hence crypto/rand rather than math/rand.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it somehow
		// does, a time-derived key keeps inserts working (retries of THIS
		// call still dedupe; only cross-process uniqueness weakens).
		return fmt.Sprintf("t-%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Upsert creates or replaces the object with the given id (idempotent:
// safe to retry).
func (c *Client) Upsert(ctx context.Context, dataset string, id int, req IngestRequest) (*IngestResponse, error) {
	var out IngestResponse
	path := fmt.Sprintf("/v1/datasets/%s/objects/%d", dataset, id)
	if err := c.do(ctx, http.MethodPut, path, req, &out, nil); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delete removes the object with the given id. Retried deletes can see
// 404 from their own earlier attempt; callers treating delete as
// idempotent should accept ErrNoObject-shaped 404s.
func (c *Client) Delete(ctx context.Context, dataset string, id int) (*IngestResponse, error) {
	var out IngestResponse
	path := fmt.Sprintf("/v1/datasets/%s/objects/%d", dataset, id)
	if err := c.do(ctx, http.MethodDelete, path, nil, &out, nil); err != nil {
		return nil, err
	}
	return &out, nil
}

// Compact forces a compaction of the dataset's delta overlay into a
// fresh epoch (no-op when there is nothing pending).
func (c *Client) Compact(ctx context.Context, dataset string) (*CompactResponse, error) {
	var out CompactResponse
	if err := c.do(ctx, http.MethodPost, "/v1/datasets/"+dataset+"/compact", nil, &out, nil); err != nil {
		return nil, err
	}
	return &out, nil
}
