// Panic isolation for the serving path. A panic while evaluating one
// geometry pair — degenerate input, a pipeline bug, an injected fault —
// must cost exactly that pair's request, never the process: the worker
// pools here and in the harness recover at pair granularity, the HTTP
// middleware recovers whatever leaks past them, and every recovered
// pair is counted and dumped as a WKT repro case in the oracle's
// regression-corpus format so the crash becomes a replayable test.
package server

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/wkt"
)

// pairPanic records one recovered per-pair panic: counter, log line,
// and (when Config.ReproDir is set) a WKT dump of the offending pair.
func (s *Server) pairPanic(tag string, r, o *core.Object, rv any) {
	s.met.Counter("server_pair_panics_total").Inc()
	path := dumpReproPair(s.cfg.ReproDir, tag, r, o, rv)
	if path != "" {
		s.logf("server: pair panic in %s: %v (repro dumped to %s)", tag, rv, path)
	} else {
		s.logf("server: pair panic in %s: %v", tag, rv)
	}
}

// dumpReproPair writes the pair's geometries in the oracle regression
// corpus format (`# note`, `A <wkt>`, `B <wkt>`, `V nA nB`) so the
// differential oracle replays the exact crash input. The name hashes
// the geometry, so re-hitting the same bug is idempotent. Returns ""
// when dumping is disabled or fails — the dump must never add a second
// failure mode to a request that already panicked.
func dumpReproPair(dir, tag string, r, o *core.Object, rv any) string {
	if dir == "" || r == nil || o == nil || r.Poly == nil || o.Poly == nil {
		return ""
	}
	wa := wkt.MarshalMultiPolygon(geom.NewMultiPolygon(r.Poly))
	wb := wkt.MarshalMultiPolygon(geom.NewMultiPolygon(o.Poly))
	h := fnv.New32a()
	fmt.Fprint(h, tag, wa, wb)
	note := strings.ReplaceAll(fmt.Sprintf("%v", rv), "\n", " ")
	body := fmt.Sprintf("# panic-%s: %s\nA %s\nB %s\nV %d %d\n",
		tag, note, wa, wb, r.Poly.NumVertices(), o.Poly.NumVertices())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	path := filepath.Join(dir, fmt.Sprintf("panic-%s-%08x.txt", tag, h.Sum32()))
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		return ""
	}
	return path
}

// guardPair runs fn behind a recover barrier and reports whether it
// panicked; the panic is recorded via pairPanic.
func (s *Server) guardPair(tag string, r, o *core.Object, fn func()) (panicked bool) {
	defer func() {
		if rv := recover(); rv != nil {
			panicked = true
			s.pairPanic(tag, r, o, rv)
		}
	}()
	fn()
	return false
}

// handlerPanic records a panic that escaped every per-pair guard and
// reached the HTTP middleware (the outermost barrier).
func (s *Server) handlerPanic(route string, rv any) {
	s.met.Counter("server_handler_panics_total").Inc()
	s.logf("server: handler %s panicked: %v\n%s", route, rv, debug.Stack())
}
