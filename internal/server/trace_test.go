package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/trace"
)

// newTracedServer is newTestServer with an always-sample tracer.
func newTracedServer(t *testing.T, cfg Config, sets ...string) (*Server, *Client, *trace.Tracer, string) {
	t.Helper()
	tr := trace.New(trace.Config{Sample: 1, Capacity: 32})
	cfg.Tracer = tr
	svc := New(testRegistry(t, sets...), cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, NewClient(ts.URL), tr, ts.URL
}

// TestJoinTraceDepth is the tentpole acceptance check: a sampled
// /v1/join yields a trace with at least three nested span levels
// (handler → sweep worker → settling stage) and the buffer exports as
// valid Chrome trace JSON through /debug/traces.
func TestJoinTraceDepth(t *testing.T) {
	_, c, tr, base := newTracedServer(t, Config{}, "OLE", "OPE")
	jr, err := c.Join(context.Background(), JoinRequest{Left: "OLE", Right: "OPE", Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if jr.Candidates == 0 || jr.Evaluated == 0 {
		t.Fatalf("join swept nothing: %+v", jr)
	}

	var td trace.TraceData
	for _, cand := range tr.Traces() {
		if cand.Root.Name == "http.join" {
			td = cand
		}
	}
	if td.ID == "" {
		t.Fatalf("no http.join trace buffered; have %d traces", len(tr.Traces()))
	}
	if !td.Sampled {
		t.Fatalf("trace not sampled: %+v", td)
	}
	if depth := td.Root.Depth(); depth < 3 {
		t.Fatalf("trace depth = %d, want >= 3 (handler → worker → pair)", depth)
	}
	if td.Root.Attr("left") != "OLE" || td.Root.Attr("right") != "OPE" {
		t.Fatalf("root attrs = %+v", td.Root.Attrs)
	}
	if v, ok := td.Root.IntAttr("candidates"); !ok || v != int64(jr.Candidates) {
		t.Fatalf("candidates attr = %d (%v), want %d", v, ok, jr.Candidates)
	}
	if v, ok := td.Root.IntAttr("http_status"); !ok || v != http.StatusOK {
		t.Fatalf("http_status attr = %d (%v)", v, ok)
	}
	var worker *trace.SpanData
	for i := range td.Root.Children {
		if td.Root.Children[i].Name == "sweep.worker" {
			worker = &td.Root.Children[i]
		}
	}
	if worker == nil {
		t.Fatalf("no sweep.worker span under root; children: %+v", td.Root.Children)
	}
	foundStage := false
	for _, pair := range worker.Children {
		if pair.Name != "pair" {
			continue
		}
		for _, stage := range pair.Children {
			if stage.Name == "filter" || stage.Name == "refine" {
				foundStage = true
			}
		}
	}
	if !foundStage {
		t.Fatal("no settling-stage span under any pair span")
	}

	// The buffer must export as valid Chrome trace JSON over HTTP.
	resp, err := http.Get(base + "/debug/traces?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("chrome export invalid JSON: %v", err)
	}
	if len(chrome.TraceEvents) < 3 {
		t.Fatalf("chrome export has %d events, want >= 3", len(chrome.TraceEvents))
	}
}

// TestRelateTraceCandidates: a sampled relate probe records candidate
// spans (with stage children) under the handler root via the batcher.
func TestRelateTraceCandidates(t *testing.T) {
	_, c, tr, _ := newTracedServer(t, Config{}, "OPE")
	rr, err := c.Relate(context.Background(), RelateRequest{Dataset: "OPE", WKT: probeWKT, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Candidates == 0 {
		t.Fatalf("probe found no candidates: %+v", rr)
	}
	var td trace.TraceData
	for _, cand := range tr.Traces() {
		if cand.Root.Name == "http.relate" {
			td = cand
		}
	}
	if td.ID == "" {
		t.Fatal("no http.relate trace buffered")
	}
	candidates := 0
	for _, ch := range td.Root.Children {
		if ch.Name == "candidate" {
			candidates++
		}
	}
	if candidates == 0 {
		t.Fatalf("no candidate spans; children: %+v", td.Root.Children)
	}
	if td.Root.Attr("dataset") != "OPE" {
		t.Fatalf("root attrs = %+v", td.Root.Attrs)
	}
	if _, ok := td.Root.IntAttr("slow_candidate_ns"); !ok {
		t.Fatalf("missing slow-candidate forensics; attrs = %+v", td.Root.Attrs)
	}
}

// TestExemplarLinksHistogramToTrace: the per-route latency histogram
// carries the sampled request's trace id as a bucket exemplar.
func TestExemplarLinksHistogramToTrace(t *testing.T) {
	svc, c, tr, _ := newTracedServer(t, Config{}, "OLE", "OPE")
	if _, err := c.Join(context.Background(), JoinRequest{Left: "OLE", Right: "OPE", Limit: 1}); err != nil {
		t.Fatal(err)
	}
	snap := svc.Metrics().Histogram(obs.Name("server_request_seconds", "route", "join"), obs.DurationBuckets).Snapshot()
	if snap.Exemplars == nil {
		t.Fatal("join latency histogram has no exemplars")
	}
	var id string
	for _, e := range snap.Exemplars {
		if e != "" {
			id = e
		}
	}
	if id == "" {
		t.Fatal("all exemplar slots empty")
	}
	if _, ok := tr.TraceByID(id); !ok {
		t.Fatalf("exemplar %s does not resolve to a buffered trace", id)
	}
}

// TestSlowQueryLog: a request crossing the slow threshold leaves both
// forensic artifacts in SlowDir — the trace JSON (OnSlow hook) and the
// WKT dump of the slowest pair (handler) — and bumps the counter.
func TestSlowQueryLog(t *testing.T) {
	dir := t.TempDir()
	tr := trace.New(trace.Config{Sample: 0, SlowThreshold: time.Nanosecond, Capacity: 8})
	svc := New(testRegistry(t, "OLE", "OPE"), Config{Tracer: tr, SlowDir: dir})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()
	c := NewClient(ts.URL)

	if _, err := c.Join(context.Background(), JoinRequest{Left: "OLE", Right: "OPE", Limit: 1}); err != nil {
		t.Fatal(err)
	}
	if n := svc.Metrics().Counter("server_slow_queries_total").Value(); n == 0 {
		t.Fatal("slow-query counter not bumped")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var traceJSON, wktDump string
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), "slow-join-") && strings.HasSuffix(e.Name(), ".txt"):
			wktDump = e.Name()
		case strings.HasPrefix(e.Name(), "slow-") && strings.HasSuffix(e.Name(), ".json"):
			traceJSON = e.Name()
		}
	}
	if traceJSON == "" || wktDump == "" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("missing forensics: trace=%q wkt=%q in %v", traceJSON, wktDump, names)
	}
	// The trace JSON round-trips, unsampled but kept as slow.
	data, err := os.ReadFile(filepath.Join(dir, traceJSON))
	if err != nil {
		t.Fatal(err)
	}
	var td trace.TraceData
	if err := json.Unmarshal(data, &td); err != nil {
		t.Fatal(err)
	}
	if !td.Slow || td.Sampled {
		t.Fatalf("slow trace flags = %+v", td)
	}
	// The WKT dump is in the corpus format the oracle replays.
	body, err := os.ReadFile(filepath.Join(dir, wktDump))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# slow-join:", "\nA MULTIPOLYGON", "\nB MULTIPOLYGON", "\nV "} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("WKT dump missing %q:\n%s", want, body)
		}
	}
}

// TestMetricz: the JSON metrics snapshot is served on the main API port.
func TestMetricz(t *testing.T) {
	_, c, _, base := newTracedServer(t, Config{}, "OLE")
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "/v1/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricz status = %d", resp.StatusCode)
	}
	var snap obs.SnapshotData
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range snap.Gauges {
		if strings.HasPrefix(g.Name, "stj_build_info{") && g.Value == 1 {
			found = true
			if !strings.Contains(g.Name, "version=") || !strings.Contains(g.Name, "grid_order=") {
				t.Fatalf("build info labels incomplete: %s", g.Name)
			}
		}
	}
	if !found {
		t.Fatalf("stj_build_info gauge missing; gauges: %+v", snap.Gauges)
	}
	if len(snap.Counters) == 0 {
		t.Fatal("metricz snapshot has no counters")
	}
}

// TestHealthzBuildAndDegradedServed: /v1/healthz reports build identity
// and counts degraded-mode requests; the degraded counter dimension is
// bumped when a degraded dataset forces ST2.
func TestHealthzBuildAndDegradedServed(t *testing.T) {
	suite := testSuite()
	reg := NewRegistry(suite.Space, datagen.DefaultOrder)
	if _, err := reg.Add("OPE", datagen.EntityTypes["OPE"], suite.Sets["OPE"]); err != nil {
		t.Fatal(err)
	}
	// A degraded dataset: MBR-only entries, handlers must force ST2.
	if _, err := reg.AddDegraded("OLE", datagen.EntityTypes["OLE"], suite.Sets["OLE"]); err != nil {
		t.Fatal(err)
	}
	svc := New(reg, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Build.Version == "" || h.Build.Go == "" || h.Build.GridOrder == 0 {
		t.Fatalf("build info = %+v", h.Build)
	}
	if h.DegradedServed != 0 {
		t.Fatalf("degraded served before any request: %d", h.DegradedServed)
	}

	if _, err := c.Relate(ctx, RelateRequest{Dataset: "OLE", WKT: probeWKT, Limit: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(ctx, JoinRequest{Left: "OLE", Right: "OPE", Limit: 1}); err != nil {
		t.Fatal(err)
	}
	if n := svc.Metrics().Counter(obs.Name("server_degraded_requests_total", "route", "relate")).Value(); n != 1 {
		t.Fatalf("degraded relate counter = %d, want 1", n)
	}
	if n := svc.Metrics().Counter(obs.Name("server_degraded_requests_total", "route", "join")).Value(); n != 1 {
		t.Fatalf("degraded join counter = %d, want 1", n)
	}
	h, err = c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.DegradedServed != 2 {
		t.Fatalf("degraded served = %d, want 2", h.DegradedServed)
	}
}

// TestTracerOffIsInert: without a tracer everything still works and no
// trace surfaces appear — the nil-tracer path of every call site.
func TestTracerOffIsInert(t *testing.T) {
	_, c := newTestServer(t, Config{}, "OLE", "OPE")
	if _, err := c.Join(context.Background(), JoinRequest{Left: "OLE", Right: "OPE", Limit: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Relate(context.Background(), RelateRequest{Dataset: "OPE", WKT: probeWKT, Limit: 1}); err != nil {
		t.Fatal(err)
	}
}
