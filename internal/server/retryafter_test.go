package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestParseRetryAfter covers both RFC 9110 forms and the clamp. The
// HTTP-date form is the regression case: it used to be rejected as
// garbage, so clients hammered servers that asked for a dated backoff.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 11, 12, 13, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"seconds", "7", 7 * time.Second},
		{"seconds with spaces", "  7 ", 7 * time.Second},
		{"zero seconds", "0", 0},
		{"negative seconds", "-3", 0},
		{"seconds clamped", "3600", maxRetryAfter},
		{"http date", now.Add(9 * time.Second).Format(http.TimeFormat), 9 * time.Second},
		{"http date clamped", now.Add(2 * time.Hour).Format(http.TimeFormat), maxRetryAfter},
		{"http date in the past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"rfc850 date", now.Add(5 * time.Second).Format(time.RFC850), 5 * time.Second},
		{"ansic date", now.Add(5 * time.Second).Format(time.ANSIC), 5 * time.Second},
		{"garbage", "soon", 0},
		{"empty", "", 0},
		{"float", "1.5", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.v, now); got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", tc.name, tc.v, got, tc.want)
		}
	}
}

// TestRetryAfterDateHeaderEndToEnd: a 429 carrying an HTTP-date
// Retry-After must surface on APIError.RetryAfter as a bounded
// duration, through the real response path.
func TestRetryAfterDateHeaderEndToEnd(t *testing.T) {
	date := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", date)
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	_, err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || !apiErr.IsOverload() {
		t.Fatalf("err = %v, want overload APIError", err)
	}
	if apiErr.RetryAfter <= 0 || apiErr.RetryAfter > 5*time.Second {
		t.Fatalf("RetryAfter = %v, want in (0, 5s]", apiErr.RetryAfter)
	}
}

// TestRetryAfterHostileDateClamped: a server demanding an hour-long
// backoff (misconfigured or hostile) is clamped to maxRetryAfter.
func TestRetryAfterHostileDateClamped(t *testing.T) {
	date := time.Now().Add(time.Hour).UTC().Format(http.TimeFormat)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", date)
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	_, err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if apiErr.RetryAfter != maxRetryAfter {
		t.Fatalf("RetryAfter = %v, want clamp %v", apiErr.RetryAfter, maxRetryAfter)
	}
}
