package server

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/snapshot"
)

// TestEpochSnapshotWarmStart: compaction persists the full mutation
// lineage (epoch, next id, tombstones, survivor geometry), and a
// restart resumes from it — even though the registered source polygons
// no longer match the mutated dataset. An epoch-0 warm start compares
// snapshot against source and rebuilds on mismatch; an epoch>0
// snapshot IS the authority, source comparison would throw mutations
// away.
func TestEpochSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	reg1, _ := resRegistry(t, dir)

	// Mutate: insert a new object into gap A, delete base object 0,
	// move base object 5 into gap B.
	ins, err := reg1.Mutate("grid", MutInsert, -1, mustPoly(t, sq6(33, 33)))
	if err != nil {
		t.Fatal(err)
	}
	if ins.ID != 36 {
		t.Fatalf("insert id = %d, want 36", ins.ID)
	}
	if _, err := reg1.Mutate("grid", MutDelete, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg1.Mutate("grid", MutUpsert, 5, mustPoly(t, sq6(73, 73))); err != nil {
		t.Fatal(err)
	}
	if _, err := reg1.Compact("grid"); err != nil {
		t.Fatal(err)
	}
	e1, _ := reg1.Get("grid")
	if e1.Epoch != 1 || e1.PendingOps() != 0 {
		t.Fatalf("after compact: epoch=%d pending=%d", e1.Epoch, e1.PendingOps())
	}
	baseline := relateAll(t, reg1)

	// Restart with the same snapshot dir and the ORIGINAL source set.
	reg2, met2 := resRegistry(t, dir)
	if got := met2.Counter("server_snapshot_loads_total").Value(); got != 1 {
		t.Fatalf("snapshot loads = %d, want 1", got)
	}
	if got := met2.Counter("server_preprocess_objects_total").Value(); got != 0 {
		t.Fatalf("warm start preprocessed %d objects, want 0", got)
	}
	e2, ok := reg2.Get("grid")
	if !ok || e2.Degraded {
		t.Fatalf("entry ok=%v degraded=%v, want healthy warm start", ok, e2 != nil && e2.Degraded)
	}
	if e2.Epoch != 1 || e2.NextID != 37 || e2.Live() != 36 {
		t.Fatalf("restored lineage: epoch=%d nextID=%d live=%d, want 1/37/36", e2.Epoch, e2.NextID, e2.Live())
	}
	if !reflect.DeepEqual(e2.Tombs, e1.Tombs) {
		t.Fatalf("restored tombs %v != %v", e2.Tombs, e1.Tombs)
	}
	if got := relateAll(t, reg2); !reflect.DeepEqual(got, baseline) {
		t.Fatal("warm-started answers differ from the mutated registry")
	}
	// Ids keep flowing from where the lineage left off: no reuse of the
	// deleted id 0, no collision with the pre-restart insert.
	ins2, err := reg2.Mutate("grid", MutInsert, -1, mustPoly(t, sq6(33, 73)))
	if err != nil {
		t.Fatal(err)
	}
	if ins2.ID != 37 {
		t.Fatalf("post-restart insert id = %d, want 37", ins2.ID)
	}
}

// TestMutationsDuringDegradedSurviveRebuild: ingest stays available
// while a dataset is serving degraded after snapshot corruption, and
// the background rebuild's pointer swap carries those mutations into
// the recovered entry instead of silently dropping them.
func TestMutationsDuringDegradedSurviveRebuild(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	resRegistry(t, dir) // seed the snapshot
	path, err := snapshot.DatasetPath(dir, "grid")
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.FlipBit(path, 200, 3); err != nil {
		t.Fatal(err)
	}

	// Hold the rebuild open so the mutation lands while degraded.
	fault.Arm("registry.rebuild", fault.Behavior{Delay: 200 * time.Millisecond})
	reg2, _ := resRegistry(t, dir)
	e, _ := reg2.Get("grid")
	if !e.Degraded {
		t.Fatal("want degraded serving after corruption")
	}
	ins, err := reg2.Mutate("grid", MutInsert, -1, mustPoly(t, sq6(33, 33)))
	if err != nil {
		t.Fatalf("ingest while degraded: %v", err)
	}
	if _, err := reg2.Mutate("grid", MutDelete, 3, nil); err != nil {
		t.Fatal(err)
	}

	reg2.WaitRebuilds()
	e, _ = reg2.Get("grid")
	if e.Degraded {
		t.Fatal("still degraded after rebuild")
	}
	if e.Live() != 36 { // 36 base + 1 insert - 1 delete
		t.Fatalf("live = %d after rebuild, want 36", e.Live())
	}
	if e.PendingOps() != 2 {
		t.Fatalf("pending = %d, want the 2 degraded-mode ops carried over", e.PendingOps())
	}
	if _, ok := e.Delta.idx[ins.ID]; !ok {
		t.Fatal("degraded-mode insert lost across the rebuild swap")
	}
	// And compaction folds them into a durable epoch as usual.
	if _, err := reg2.Compact("grid"); err != nil {
		t.Fatal(err)
	}
	e, _ = reg2.Get("grid")
	if e.Epoch != 1 || e.PendingOps() != 0 || e.Live() != 36 {
		t.Fatalf("after compact: epoch=%d pending=%d live=%d", e.Epoch, e.PendingOps(), e.Live())
	}
	snap, err := snapshot.Read(path)
	if err != nil {
		t.Fatalf("snapshot after recovery: %v", err)
	}
	if snap.EpochMeta.Epoch != 1 || snap.EpochMeta.NextID != 37 {
		t.Fatalf("persisted lineage %+v, want epoch 1, nextID 37", snap.EpochMeta)
	}
}
