// Ingest endpoints: the HTTP face of the copy-on-write epoch layer.
// POST inserts under a fresh server-assigned id, PUT upserts a caller
// id, DELETE tombstones one, and POST /compact forces an epoch roll.
// Mutations are single-node only: a shard owns a key-range slice of
// the candidate space, and an object landing near a range boundary
// would have to be replicated to its neighbours transactionally —
// until the router grows that, shard-mode servers answer 501.
package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/geom"
)

func (s *Server) registerIngestRoutes() {
	s.mux.HandleFunc("POST /v1/datasets/{name}/objects",
		s.route("ingest", true, s.mutationHandler(MutInsert)))
	s.mux.HandleFunc("PUT /v1/datasets/{name}/objects/{id}",
		s.route("ingest", true, s.mutationHandler(MutUpsert)))
	s.mux.HandleFunc("DELETE /v1/datasets/{name}/objects/{id}",
		s.route("ingest", true, s.mutationHandler(MutDelete)))
	s.mux.HandleFunc("POST /v1/datasets/{name}/compact",
		s.route("compact", false, s.handleCompact))
}

func (s *Server) checkMutable() error {
	if s.cfg.Shard != nil {
		return errfr(http.StatusNotImplemented, "unroutable_write",
			"ingest is not supported on shard-mode servers: writes cannot yet be routed to the owning shard")
	}
	return nil
}

// idempotencyKey extracts and validates the Idempotency-Key header. Keys
// ride in WAL records and the dedupe cache, so they are bounded and
// restricted to printable ASCII.
func idempotencyKey(r *http.Request) (string, error) {
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		return "", nil
	}
	if len(key) > 128 {
		return "", errf(http.StatusBadRequest, "Idempotency-Key longer than 128 bytes")
	}
	for i := 0; i < len(key); i++ {
		if key[i] < 0x21 || key[i] > 0x7e {
			return "", errf(http.StatusBadRequest, "Idempotency-Key must be printable ASCII without spaces")
		}
	}
	return key, nil
}

// mutationHandler builds the handler for one mutation kind. Geometry
// decoding and validation happen here; rasterization and publication
// happen in Registry.Mutate (rasterization outside the slot lock).
func (s *Server) mutationHandler(kind MutKind) handlerFunc {
	return func(ctx context.Context, r *http.Request) (any, error) {
		if err := s.checkMutable(); err != nil {
			return nil, err
		}
		name := r.PathValue("name")
		if err := ValidateName(name); err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		id := -1
		if kind != MutInsert {
			var err error
			if id, err = strconv.Atoi(r.PathValue("id")); err != nil || id < 0 {
				return nil, errf(http.StatusBadRequest, "object id must be a non-negative integer")
			}
		}
		var poly *geom.Polygon
		if kind != MutDelete {
			var req IngestRequest
			if err := decodeBody(r, &req); err != nil {
				return nil, err
			}
			p, err := req.Geometry()
			if err != nil {
				return nil, errf(http.StatusBadRequest, "%v", err)
			}
			poly = p
		}
		key, err := idempotencyKey(r)
		if err != nil {
			return nil, err
		}
		res, err := s.data.MutateKey(name, kind, id, poly, key)
		if err != nil {
			if errors.Is(err, ErrNoDataset) || errors.Is(err, ErrNoObject) {
				return nil, errf(http.StatusNotFound, "%v", err)
			}
			if errors.Is(err, ErrNotDurable) {
				// The mutation may have been applied in memory but its WAL
				// append or fsync failed: nothing was published and nothing
				// is acked. 503 tells the client to retry (safely, thanks to
				// the idempotency key) once the log is healthy again.
				return nil, errfr(http.StatusServiceUnavailable, "wal_append_failed", "%v", err)
			}
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		return IngestResponse{
			Dataset:    name,
			ID:         res.ID,
			Op:         kind.String(),
			Created:    res.Created,
			Epoch:      res.Epoch,
			Version:    res.Version,
			PendingOps: res.Pending,
			Deduped:    res.Deduped,
		}, nil
	}
}

// handleCompact forces a synchronous compaction. It is not admitted
// (queries keep their slots); the registry's single-flight guard
// bounds concurrent compaction work to one per dataset.
func (s *Server) handleCompact(ctx context.Context, r *http.Request) (any, error) {
	if err := s.checkMutable(); err != nil {
		return nil, err
	}
	name := r.PathValue("name")
	if err := ValidateName(name); err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	st, err := s.data.Compact(name)
	if err != nil {
		if errors.Is(err, ErrNoDataset) {
			return nil, errf(http.StatusNotFound, "%v", err)
		}
		// Degraded (rebuild in flight) or residual-replay failure: the
		// dataset keeps serving its previous epoch; the caller can retry.
		return nil, errf(http.StatusConflict, "%v", err)
	}
	return CompactResponse{
		Dataset:   name,
		Epoch:     st.Epoch,
		Compacted: st.Compacted > 0,
		Objects:   st.Objects,
		ElapsedMS: float64(st.Elapsed) / float64(time.Millisecond),
	}, nil
}
