package server

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/geojson"
	"repro/internal/geom"
	"repro/internal/wkt"
)

// Wire types of the HTTP JSON API, shared by the handlers and the Go
// client. All durations cross the wire as integer milliseconds so
// non-Go clients need no duration parsing.

// RelateRequest probes one geometry against an indexed dataset:
// find-relation mode by default, relate_p with Predicate, or an
// arbitrary DE-9IM mask query with Mask (Predicate and Mask are
// mutually exclusive). Exactly one of WKT or GeoJSON supplies the probe
// geometry.
type RelateRequest struct {
	// Dataset names the registered dataset to probe against.
	Dataset string `json:"dataset"`
	// WKT is the probe geometry as a WKT POLYGON.
	WKT string `json:"wkt,omitempty"`
	// GeoJSON is the probe geometry as a GeoJSON Polygon (or a
	// single-member MultiPolygon / Feature wrapping one).
	GeoJSON json.RawMessage `json:"geojson,omitempty"`
	// Predicate asks relate_p: return only objects for which the named
	// relation (equals|meets|inside|covered_by|contains|covers|
	// intersects|disjoint) holds, probe as the left operand.
	Predicate string `json:"predicate,omitempty"`
	// Mask asks the three-argument ST_Relate form with a 9-character
	// DE-9IM pattern such as "T*F**F***".
	Mask string `json:"mask,omitempty"`
	// Method selects the pipeline (ST2|OP2|APRIL|P+C); default P+C.
	Method string `json:"method,omitempty"`
	// Limit caps the returned matches (default and ceiling are server
	// configuration); Truncated reports when the cap was hit.
	Limit int `json:"limit,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds; 0 selects
	// the server default, values above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Geometry decodes the probe geometry of the request (exactly one of
// WKT or GeoJSON must be set). Shared by the server's relate handler
// and the scatter-gather router, which needs the probe's MBR to pick
// the shards worth asking.
func (req *RelateRequest) Geometry() (*geom.Polygon, error) {
	switch {
	case req.WKT != "" && len(req.GeoJSON) > 0:
		return nil, errors.New("give wkt or geojson, not both")
	case req.WKT != "":
		p, err := wkt.ParsePolygon(req.WKT)
		if err != nil {
			return nil, fmt.Errorf("wkt: %w", err)
		}
		return p, nil
	case len(req.GeoJSON) > 0:
		fs, err := geojson.ParseFeatureCollection(req.GeoJSON)
		if err != nil {
			return nil, fmt.Errorf("geojson: %w", err)
		}
		if len(fs) != 1 || len(fs[0].Geometry.Polys) != 1 {
			return nil, errors.New("probe must be a single polygon")
		}
		return fs[0].Geometry.Polys[0], nil
	default:
		return nil, errors.New("missing probe geometry (wkt or geojson)")
	}
}

// RelateMatch is one dataset object matched by a relate probe.
type RelateMatch struct {
	ID int `json:"id"`
	// Relation is the most specific relation (find mode) or the name of
	// the satisfied predicate; empty in mask mode.
	Relation string `json:"relation,omitempty"`
}

// RelateResponse reports one relate probe.
type RelateResponse struct {
	Dataset string `json:"dataset"`
	// Candidates is how many index entries survived the MBR filter.
	Candidates int `json:"candidates"`
	// Evaluated is how many candidates the pipeline actually settled
	// before the deadline (equals Candidates on a completed probe).
	Evaluated int `json:"evaluated"`
	// Refined counts candidates that needed DE-9IM refinement.
	Refined   int           `json:"refined"`
	Matches   []RelateMatch `json:"matches"`
	Truncated bool          `json:"truncated,omitempty"`
	// BatchSize is the size of the micro-batch the probe rode in (>= 1;
	// concurrent probes against the same dataset share one sweep).
	BatchSize int     `json:"batch_size"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Epoch and IndexVersion identify the exact index state that
	// answered: every candidate and match came from this one atomically
	// loaded epoch view. Single-node servers only (a router merges
	// shards with independent epochs).
	Epoch        uint64 `json:"epoch,omitempty"`
	IndexVersion uint64 `json:"index_version,omitempty"`
	// Partial marks a scatter-gather answer that is missing the listed
	// shards (all their replicas were down): the matches present are
	// exact, but shards in MissingShards contributed nothing. Single-node
	// servers never set these.
	Partial       bool  `json:"partial,omitempty"`
	MissingShards []int `json:"missing_shards,omitempty"`
}

// JoinRequest evaluates a dataset-pair topology join.
type JoinRequest struct {
	Left  string `json:"left"`
	Right string `json:"right"`
	// Predicate, Mask, Method, Limit, TimeoutMS as in RelateRequest.
	Predicate string `json:"predicate,omitempty"`
	Mask      string `json:"mask,omitempty"`
	Method    string `json:"method,omitempty"`
	Limit     int    `json:"limit,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// JoinPair is one reported result pair.
type JoinPair struct {
	LeftID   int    `json:"left_id"`
	RightID  int    `json:"right_id"`
	Relation string `json:"relation,omitempty"`
}

// JoinResponse reports one dataset-pair join.
type JoinResponse struct {
	Left       string `json:"left"`
	Right      string `json:"right"`
	Candidates int    `json:"candidates"`
	Evaluated  int    `json:"evaluated"`
	Refined    int    `json:"refined"`
	// Relations tallies the most specific relation of every evaluated
	// pair (find mode only).
	Relations map[string]int `json:"relations,omitempty"`
	// Holds counts pairs satisfying the predicate or mask.
	Holds     int        `json:"holds,omitempty"`
	Pairs     []JoinPair `json:"pairs,omitempty"`
	Truncated bool       `json:"truncated,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
	// Per-side index identity, as in RelateResponse: both operand views
	// were loaded atomically, so each side is internally consistent.
	LeftEpoch    uint64 `json:"left_epoch,omitempty"`
	LeftVersion  uint64 `json:"left_version,omitempty"`
	RightEpoch   uint64 `json:"right_epoch,omitempty"`
	RightVersion uint64 `json:"right_version,omitempty"`
	// Partial / MissingShards as in RelateResponse: set only by a router
	// when every replica of one or more shards was unreachable.
	Partial       bool  `json:"partial,omitempty"`
	MissingShards []int `json:"missing_shards,omitempty"`
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name        string  `json:"name"`
	Entity      string  `json:"entity,omitempty"`
	Objects     int     `json:"objects"`
	Vertices    int     `json:"vertices"`
	ApproxBytes int     `json:"approx_bytes"`
	BuildMS     float64 `json:"build_ms"`
	// Status is "ok", "degraded" (serving MBR+refine without
	// approximations after a corrupt snapshot) or "rebuilding" (degraded
	// with the background rebuild still running).
	Status string `json:"status"`
	// Epoch is the compaction generation of the serving index (0 for a
	// dataset that has never been compacted).
	Epoch uint64 `json:"epoch"`
	// PendingOps counts mutations accepted since the serving epoch was
	// built — the delta the next compaction will fold in.
	PendingOps int `json:"pending_ops,omitempty"`
	// WalBytes is the on-disk size of the dataset's write-ahead log
	// (0 when durability is disabled). It shrinks when compaction
	// persists an epoch and the covered prefix is pruned.
	WalBytes int64 `json:"wal_bytes,omitempty"`
}

// IngestRequest carries one object mutation. Exactly one of WKT or
// GeoJSON supplies the geometry for insert/upsert; delete bodies are
// empty (the id rides in the URL).
type IngestRequest struct {
	// WKT is the object geometry as a WKT POLYGON.
	WKT string `json:"wkt,omitempty"`
	// GeoJSON is the object geometry as a GeoJSON Polygon (or a
	// single-member MultiPolygon / Feature wrapping one).
	GeoJSON json.RawMessage `json:"geojson,omitempty"`
}

// Geometry decodes the mutation geometry (exactly one of WKT or
// GeoJSON must be set), with the same parsing rules as relate probes.
func (req *IngestRequest) Geometry() (*geom.Polygon, error) {
	r := RelateRequest{WKT: req.WKT, GeoJSON: req.GeoJSON}
	return r.Geometry()
}

// IngestResponse reports one accepted mutation.
type IngestResponse struct {
	Dataset string `json:"dataset"`
	// ID is the object's id — server-assigned for inserts, echoed for
	// upserts and deletes.
	ID int `json:"id"`
	// Op is "insert", "upsert" or "delete".
	Op string `json:"op"`
	// Created reports whether an upsert created the object (false: it
	// replaced an existing one). Always true for inserts.
	Created bool `json:"created,omitempty"`
	// Epoch and Version identify the index state that first serves the
	// mutation: Epoch is the base generation, Version increments on
	// every published index state (mutation, compaction or rebuild).
	Epoch   uint64 `json:"epoch"`
	Version uint64 `json:"version"`
	// PendingOps counts delta mutations not yet compacted, after this one.
	PendingOps int `json:"pending_ops"`
	// Deduped reports that an Idempotency-Key matched a previously
	// applied mutation: the stored result is echoed and nothing was
	// re-applied.
	Deduped bool `json:"deduped,omitempty"`
}

// CompactResponse reports one explicit compaction request.
type CompactResponse struct {
	Dataset string `json:"dataset"`
	// Epoch is the serving generation after the call.
	Epoch uint64 `json:"epoch"`
	// Compacted is false when there was nothing to fold in or a
	// compaction was already running (the call is then a no-op).
	Compacted bool `json:"compacted"`
	// Objects is the live object count of the serving epoch.
	Objects   int     `json:"objects"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// BuildInfo identifies the serving binary.
type BuildInfo struct {
	Version string `json:"version"`
	Go      string `json:"go"`
	// GridOrder is k of the shared 2^k × 2^k approximation grid — part
	// of build identity because approximations from different grids are
	// not comparable.
	GridOrder uint `json:"grid_order"`
}

// ShardInfo identifies the key-range slice a shard-mode server owns.
type ShardInfo struct {
	Index    int    `json:"index"`
	KeyRange string `json:"key_range"`
	// RouteOrder is the Hilbert order of the routing grid the key range
	// addresses — must match across the fleet and the router.
	RouteOrder uint `json:"route_order"`
}

// ShardHealth is one shard's aggregate health as seen by a router.
type ShardHealth struct {
	Index    int    `json:"index"`
	KeyRange string `json:"key_range"`
	// Replicas / Alive count configured vs currently-responding hosts.
	Replicas int `json:"replicas"`
	Alive    int `json:"alive"`
	// Status is "ok", "degraded" (alive but fewer than Replicas, or a
	// replica reports dataset degradation) or "dead" (no replica
	// answered).
	Status string `json:"status"`
	// Datasets is the dataset count of the first live replica.
	Datasets int `json:"datasets,omitempty"`
	// Error is the last probe error when no replica answered.
	Error string `json:"error,omitempty"`
}

// HealthResponse is the /v1/healthz payload.
type HealthResponse struct {
	// Status is "ok", "degraded" (at least one dataset serving without
	// its approximations; on a router: at least one shard not fully
	// healthy) or "draining".
	Status   string    `json:"status"`
	Build    BuildInfo `json:"build"`
	Datasets int       `json:"datasets"`
	InFlight int64     `json:"in_flight"`
	Queued   int64     `json:"queued"`
	// Degraded and Rebuilding list datasets currently serving in
	// degraded mode, split by whether a background rebuild is running.
	Degraded   []string `json:"degraded,omitempty"`
	Rebuilding []string `json:"rebuilding,omitempty"`
	// DegradedServed counts requests (lifetime) answered by the forced
	// ST2 pipeline because a dataset involved was degraded.
	DegradedServed int64 `json:"degraded_served"`
	// Shard is set by shard-mode servers: the key-range slice served.
	Shard *ShardInfo `json:"shard,omitempty"`
	// Shards is set by routers: per-shard aggregate health.
	Shards []ShardHealth `json:"shards,omitempty"`
	// WalPendingBytes sums the on-disk write-ahead log bytes across all
	// datasets — the replay debt a cold restart would pay. Omitted when
	// durability is disabled.
	WalPendingBytes int64 `json:"wal_pending_bytes,omitempty"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	// Reason is a stable machine-readable cause code (for example
	// "unroutable_write" or "wal_append_failed") so clients can branch
	// without parsing the human-oriented Error text.
	Reason string `json:"reason,omitempty"`
}
