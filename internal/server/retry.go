// Self-healing client plumbing: typed temporary errors, bounded
// retries with full-jitter exponential backoff (honoring the server's
// Retry-After hint), per-attempt timeouts, and a consecutive-failure
// circuit breaker that fails fast while the service is down instead of
// piling queued requests onto its recovery.
package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Temporary reports whether the error is worth retrying later: the
// server shed load (429) or failed in a way that is not the request's
// fault (5xx). 4xx responses other than 429 are the caller's bug and
// stay permanent.
func (e *APIError) Temporary() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode >= 500
}

// TransportError wraps a failure below HTTP (connection refused, reset,
// DNS): the request may not have reached the service at all, so it is
// always temporary for the idempotent query API.
type TransportError struct {
	Err error
}

func (e *TransportError) Error() string   { return fmt.Sprintf("server: transport: %v", e.Err) }
func (e *TransportError) Unwrap() error   { return e.Err }
func (e *TransportError) Temporary() bool { return true }

// IsTemporary reports whether err carries a Temporary() bool that
// returns true (the client's typed retry signal).
func IsTemporary(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// ErrCircuitOpen is returned without touching the network while the
// client's circuit breaker is open; it is temporary (the breaker closes
// again after its cooldown).
var ErrCircuitOpen = errors.New("server: circuit breaker open")

// RetryPolicy tunes Client self-healing; zero values select the
// documented defaults. Every endpoint of the API is safe to retry:
// queries (health, dataset listing, relate and join probes) mutate
// nothing, upsert and delete are idempotent by construction, and
// Insert sends an Idempotency-Key the server dedupes resent attempts
// against.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per call, first one included
	// (default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms); attempt
	// n sleeps a uniformly random duration in [0, min(MaxDelay,
	// BaseDelay·2ⁿ)] — "full jitter", which spreads a thundering herd of
	// recovering clients instead of synchronizing it. A Retry-After hint
	// from the server is respected as the minimum wait.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling (default 5s).
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual try (0: only the call's
	// context limits it). The overall context still applies across
	// attempts and sleeps.
	AttemptTimeout time.Duration
	// BreakerThreshold opens the circuit after that many consecutive
	// failed calls (default 5; 0 selects the default, negative disables
	// the breaker). While open, calls fail fast with ErrCircuitOpen;
	// after BreakerCooldown (default 10s) the next call probes the
	// service and closes the circuit on success.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Test seams; nil selects the real clock and math/rand.
	sleep func(context.Context, time.Duration) error
	now   func() time.Time
	randF func() float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 10 * time.Second
	}
	if p.sleep == nil {
		p.sleep = sleepCtx
	}
	if p.now == nil {
		p.now = time.Now
	}
	if p.randF == nil {
		p.randF = rand.Float64
	}
	return p
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff returns the wait before retry attempt (0-based), full-jitter,
// never below the server's Retry-After hint.
func (p *RetryPolicy) backoff(attempt int, retryAfter time.Duration) time.Duration {
	ceil := p.BaseDelay << attempt
	if ceil > p.MaxDelay || ceil <= 0 {
		ceil = p.MaxDelay
	}
	d := time.Duration(p.randF() * float64(ceil))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// breakerSet is the client's per-host circuit-breaker registry: one
// breaker per target host, created on first contact. Tracking failures
// per host (instead of one global counter) means a dead shard replica
// opens only its own breaker — calls routed to healthy replicas of the
// same logical shard keep flowing.
type breakerSet struct {
	mu sync.Mutex
	m  map[string]*breaker
}

func newBreakerSet() *breakerSet {
	return &breakerSet{m: make(map[string]*breaker)}
}

// get returns the breaker for host, creating it on first use.
func (s *breakerSet) get(host string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[host]
	if !ok {
		b = &breaker{}
		s.m[host] = b
	}
	return b
}

// breaker is one host's consecutive-failure circuit breaker.
type breaker struct {
	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

// allow reports whether a call may proceed (the breaker is closed, or
// its cooldown has elapsed and this call probes the service).
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openUntil.IsZero() || !now.Before(b.openUntil)
}

func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

func (b *breaker) failure(now time.Time, threshold int, cooldown time.Duration) {
	if threshold < 0 {
		return
	}
	b.mu.Lock()
	b.fails++
	if b.fails >= threshold {
		b.openUntil = now.Add(cooldown)
	}
	b.mu.Unlock()
}

// retryable reports whether the failed attempt should be tried again:
// overload shedding (429), unavailability (503), or a transport error.
// Other temporary errors (500s from a handler bug, 504 deadline) are
// reported to the caller instead — retrying them burns server time on
// a request that will likely fail identically.
func retryable(err error) bool {
	var api *APIError
	if errors.As(err, &api) {
		return api.StatusCode == http.StatusTooManyRequests ||
			api.StatusCode == http.StatusServiceUnavailable
	}
	var tr *TransportError
	return errors.As(err, &tr)
}

// doRetry runs one API call under the client's retry policy and the
// target host's breaker.
func (c *Client) doRetry(ctx context.Context, method, path string, in, out any, hdr http.Header) error {
	p := c.Retry.withDefaults()
	br := c.breakerSet().get(c.BaseURL)
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if p.BreakerThreshold >= 0 && !br.allow(p.now()) {
			return ErrCircuitOpen
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err := c.doOnce(actx, method, path, in, out, hdr)
		cancel()
		if err == nil {
			br.success()
			return nil
		}
		// An attempt killed by its own per-attempt timeout is a slow
		// service, not a cancelled caller: classify it as a transport
		// failure so it retries. Overall-context expiry stops the loop.
		if ctx.Err() == nil && actx.Err() != nil {
			err = &TransportError{Err: err}
		}
		br.failure(p.now(), p.BreakerThreshold, p.BreakerCooldown)
		lastErr = err
		if ctx.Err() != nil || !retryable(err) || attempt == p.MaxAttempts-1 {
			return lastErr
		}
		var retryAfter time.Duration
		var api *APIError
		if errors.As(err, &api) {
			retryAfter = api.RetryAfter
		}
		if serr := p.sleep(ctx, p.backoff(attempt, retryAfter)); serr != nil {
			return lastErr
		}
	}
	return lastErr
}
