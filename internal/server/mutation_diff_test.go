package server

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/join"
)

// TestMutationDifferentialOracle is the differential oracle for the
// dynamic-dataset path (run by `make difftest`): randomized
// insert/upsert/delete sequences with compactions sprinkled at random
// points, checked at every checkpoint against a fresh registry built
// from the surviving object set. The canonical answer strings must be
// byte-identical — the merged base+delta view, tombstone filtering, and
// epoch compaction may never change an answer relative to a cold build
// of the same objects.
func TestMutationDifferentialOracle(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runMutationDifferential(t, seed)
		})
	}
}

func runMutationDifferential(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	randRect := func() *geom.Polygon {
		x := float64(rng.Intn(240))
		y := float64(rng.Intn(240))
		w := float64(2 + rng.Intn(14))
		h := float64(2 + rng.Intn(14))
		return geom.NewPolygon(geom.Ring{
			{X: x, Y: y}, {X: x + w, Y: y}, {X: x + w, Y: y + h}, {X: x, Y: y + h},
		})
	}

	regA := NewRegistry(resSpace, resOrder)
	initial := make([]*geom.Polygon, 24)
	model := make(map[int]*geom.Polygon, 64)
	for i := range initial {
		initial[i] = randRect()
		model[i] = initial[i]
	}
	if _, err := regA.Add("dyn", "", initial); err != nil {
		t.Fatal(err)
	}
	nextID := len(initial)

	// Probes fixed up front so every checkpoint asks the same questions.
	probes := make([]*geom.Polygon, 8)
	for i := range probes {
		probes[i] = randRect()
	}

	liveIDs := func() []int {
		ids := make([]int, 0, len(model))
		for id := range model {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		return ids
	}

	// canonical renders every probe's matches through the real serving
	// path (merged base+delta view with tombstone filtering), as
	// "probe#:id=relation" lines sorted by object id. idOf translates
	// an entry's object ids into model ids (identity for the mutated
	// registry, positional→model for a fresh rebuild).
	canonical := func(reg *Registry, name string, idOf func(int) int) string {
		e, ok := reg.Get(name)
		if !ok {
			t.Fatalf("dataset %s missing", name)
		}
		var sb strings.Builder
		for pi, p := range probes {
			probe, err := reg.Probe(p)
			if err != nil {
				t.Fatal(err)
			}
			var objs []*core.Object
			view := e.View()
			err = view.QueryContext(context.Background(), probe.MBR, func(delta bool, en join.Entry) {
				objs = append(objs, e.objAt(delta, en.ID))
			})
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(objs, func(i, j int) bool { return idOf(objs[i].ID) < idOf(objs[j].ID) })
			for _, o := range objs {
				res := core.FindRelation(core.PC, probe, o)
				fmt.Fprintf(&sb, "%d:%d=%s\n", pi, idOf(o.ID), res.Relation)
			}
		}
		return sb.String()
	}

	checkpoint := func(step int) {
		eA, _ := regA.Get("dyn")
		if eA.Live() != len(model) {
			t.Fatalf("step %d: live %d != model %d", step, eA.Live(), len(model))
		}
		ids := liveIDs()
		rebuilt := make([]*geom.Polygon, len(ids))
		for j, id := range ids {
			rebuilt[j] = model[id]
		}
		regB := NewRegistry(resSpace, resOrder)
		if _, err := regB.Add("dyn", "", rebuilt); err != nil {
			t.Fatal(err)
		}
		gotA := canonical(regA, "dyn", func(id int) int { return id })
		gotB := canonical(regB, "dyn", func(pos int) int { return ids[pos] })
		if gotA != gotB {
			t.Fatalf("step %d: mutated registry diverged from fresh rebuild\n--- mutated ---\n%s--- rebuilt ---\n%s",
				step, gotA, gotB)
		}
	}

	const steps = 160
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert
			p := randRect()
			res, err := regA.Mutate("dyn", MutInsert, -1, p)
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			if res.ID != nextID {
				t.Fatalf("step %d: insert id %d, model expected %d", step, res.ID, nextID)
			}
			model[nextID] = p
			nextID++
		case op < 7: // upsert: replace a live object, revive a dead id, or claim a fresh one
			var id int
			if ids := liveIDs(); len(ids) > 0 && rng.Intn(3) > 0 {
				id = ids[rng.Intn(len(ids))]
			} else {
				id = rng.Intn(nextID + 3)
			}
			p := randRect()
			if _, err := regA.Mutate("dyn", MutUpsert, id, p); err != nil {
				t.Fatalf("step %d upsert %d: %v", step, id, err)
			}
			model[id] = p
			if id >= nextID {
				nextID = id + 1
			}
		default: // delete a live object
			ids := liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			if _, err := regA.Mutate("dyn", MutDelete, id, nil); err != nil {
				t.Fatalf("step %d delete %d: %v", step, id, err)
			}
			delete(model, id)
		}
		if rng.Intn(20) == 0 {
			if _, err := regA.Compact("dyn"); err != nil {
				t.Fatalf("step %d compact: %v", step, err)
			}
		}
		if step%40 == 39 {
			checkpoint(step)
		}
	}
	// Final checkpoints either side of a last compaction: the answers
	// must not change when the delta folds into the base.
	checkpoint(steps)
	if _, err := regA.Compact("dyn"); err != nil {
		t.Fatal(err)
	}
	eA, _ := regA.Get("dyn")
	if eA.PendingOps() != 0 {
		t.Fatalf("pending ops after final compact: %d", eA.PendingOps())
	}
	checkpoint(steps + 1)
}
