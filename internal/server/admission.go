package server

import (
	"context"
	"errors"
	"time"

	"repro/internal/obs"
)

// errOverload is returned by acquire when the server is saturated: every
// slot is busy and either the wait queue is full or the queue wait
// elapsed. Handlers map it to 429 with Retry-After.
var errOverload = errors.New("server: overloaded")

// admission is the bounded-concurrency gate in front of the query
// endpoints: at most maxInFlight requests hold a slot, at most maxQueue
// more wait up to queueWait for one, and everything beyond that is
// rejected immediately. Bounding both dimensions keeps goroutines and
// queueing delay bounded under overload instead of letting the listener
// accept unbounded work.
type admission struct {
	slots     chan struct{} // capacity = max in-flight
	queue     chan struct{} // capacity = max queued waiters
	queueWait time.Duration

	inflight *obs.Gauge
	queued   *obs.Gauge
}

func newAdmission(maxInFlight, maxQueue int, queueWait time.Duration, inflight, queued *obs.Gauge) *admission {
	return &admission{
		slots:     make(chan struct{}, maxInFlight),
		queue:     make(chan struct{}, maxQueue),
		queueWait: queueWait,
		inflight:  inflight,
		queued:    queued,
	}
}

// acquire claims a slot, waiting in the bounded queue if none is free.
// It returns a release function on success, errOverload on saturation,
// or the context's error if the request deadline expires or the client
// disconnects while queued.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	release = func() {
		<-a.slots
		a.inflight.Add(-1)
	}
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return release, nil
	default:
	}
	// Slots are busy: try to enter the wait queue.
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, errOverload
	}
	a.queued.Add(1)
	defer func() {
		<-a.queue
		a.queued.Add(-1)
	}()

	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return release, nil
	case <-timer.C:
		return nil, errOverload
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
