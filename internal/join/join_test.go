package join

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randBoxes(rng *rand.Rand, n int, space, maxSide float64) []Entry {
	out := make([]Entry, n)
	for i := range out {
		x := rng.Float64() * space
		y := rng.Float64() * space
		w := rng.Float64() * maxSide
		h := rng.Float64() * maxSide
		out[i] = Entry{Box: geom.MBR{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}, ID: int32(i)}
	}
	return out
}

func bruteJoin(as, bs []Entry) map[[2]int32]bool {
	out := make(map[[2]int32]bool)
	for _, a := range as {
		for _, b := range bs {
			if a.Box.Intersects(b.Box) {
				out[[2]int32{a.ID, b.ID}] = true
			}
		}
	}
	return out
}

func collect(fn func(func(a, b Entry))) map[[2]int32]int {
	out := make(map[[2]int32]int)
	fn(func(a, b Entry) { out[[2]int32{a.ID, b.ID}]++ })
	return out
}

func TestRTreeQueryMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	es := randBoxes(rng, 500, 100, 8)
	tree := BuildRTree(es)
	if tree.Len() != 500 {
		t.Fatalf("Len = %d", tree.Len())
	}
	for trial := 0; trial < 100; trial++ {
		q := randBoxes(rng, 1, 100, 20)[0].Box
		want := make(map[int32]bool)
		for _, e := range es {
			if e.Box.Intersects(q) {
				want[e.ID] = true
			}
		}
		got := make(map[int32]bool)
		tree.Query(q, func(e Entry) { got[e.ID] = true })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing %d", trial, id)
			}
		}
	}
}

func TestRTreeJoinMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		as := randBoxes(rng, 100+rng.Intn(400), 100, 6)
		bs := randBoxes(rng, 100+rng.Intn(400), 100, 6)
		want := bruteJoin(as, bs)
		got := collect(func(fn func(a, b Entry)) { BuildRTree(as).Join(BuildRTree(bs), fn) })
		checkJoin(t, got, want)
	}
}

func TestPBSMJoinMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, grid := range []int{1, 4, 13} {
		p := NewPBSM(grid)
		for trial := 0; trial < 6; trial++ {
			as := randBoxes(rng, 100+rng.Intn(300), 100, 9)
			bs := randBoxes(rng, 100+rng.Intn(300), 100, 9)
			want := bruteJoin(as, bs)
			got := collect(func(fn func(a, b Entry)) { p.Join(as, bs, fn) })
			checkJoin(t, got, want)
		}
	}
}

// checkJoin verifies exact match and no duplicates.
func checkJoin(t *testing.T, got map[[2]int32]int, want map[[2]int32]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for pair, n := range got {
		if !want[pair] {
			t.Fatalf("spurious pair %v", pair)
		}
		if n != 1 {
			t.Fatalf("pair %v reported %d times", pair, n)
		}
	}
}

func TestPBSMGridClamp(t *testing.T) {
	p := NewPBSM(0)
	if p.grid != 1 {
		t.Error("grid must clamp to 1")
	}
}

func TestEmptyInputs(t *testing.T) {
	empty := BuildRTree(nil)
	if empty.Len() != 0 {
		t.Error("empty tree size")
	}
	some := BuildRTree(randBoxes(rand.New(rand.NewSource(4)), 10, 10, 2))
	n := 0
	empty.Join(some, func(a, b Entry) { n++ })
	some.Join(empty, func(a, b Entry) { n++ })
	if n != 0 {
		t.Error("join with empty tree must be empty")
	}
	NewPBSM(4).Join(nil, nil, func(a, b Entry) { n++ })
	if n != 0 {
		t.Error("PBSM with empty inputs must be empty")
	}
}

func TestPairsHelper(t *testing.T) {
	as := []geom.MBR{{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}, {MinX: 10, MinY: 10, MaxX: 12, MaxY: 12}}
	bs := []geom.MBR{{MinX: 1, MinY: 1, MaxX: 3, MaxY: 3}, {MinX: 50, MinY: 50, MaxX: 51, MaxY: 51}}
	got := Pairs(as, bs)
	if len(got) != 1 || got[0] != [2]int32{0, 0} {
		t.Fatalf("Pairs = %v", got)
	}
}

func TestRTreeDegenerateDistributions(t *testing.T) {
	// All boxes identical: every pair joins.
	same := make([]Entry, 40)
	for i := range same {
		same[i] = Entry{Box: geom.MBR{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}, ID: int32(i)}
	}
	got := collect(func(fn func(a, b Entry)) { BuildRTree(same).Join(BuildRTree(same), fn) })
	if len(got) != 40*40 {
		t.Fatalf("identical boxes: %d pairs, want 1600", len(got))
	}
	// Collinear points (zero-extent boxes).
	pts := make([]Entry, 30)
	for i := range pts {
		x := float64(i)
		pts[i] = Entry{Box: geom.MBR{MinX: x, MinY: 0, MaxX: x, MaxY: 0}, ID: int32(i)}
	}
	got = collect(func(fn func(a, b Entry)) { BuildRTree(pts).Join(BuildRTree(pts), fn) })
	if len(got) != 30 { // only self pairs
		t.Fatalf("point boxes: %d pairs, want 30", len(got))
	}
	ids := make([]int32, 0, 30)
	for p := range got {
		if p[0] != p[1] {
			t.Fatalf("non-self pair %v", p)
		}
		ids = append(ids, p[0])
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if id != int32(i) {
			t.Fatal("missing self pair")
		}
	}
}
