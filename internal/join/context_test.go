package join

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randomEntries(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	es := make([]Entry, n)
	for i := range es {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		es[i] = Entry{
			Box: geom.MBR{MinX: x, MinY: y, MaxX: x + 5 + rng.Float64()*10, MaxY: y + 5 + rng.Float64()*10},
			ID:  int32(i),
		}
	}
	return es
}

func TestJoinContextMatchesJoin(t *testing.T) {
	as, bs := randomEntries(600, 1), randomEntries(700, 2)
	ta, tb := BuildRTree(as), BuildRTree(bs)

	var plain, ctxed int
	ta.Join(tb, func(a, b Entry) { plain++ })
	if err := ta.JoinContext(context.Background(), tb, func(a, b Entry) { ctxed++ }); err != nil {
		t.Fatal(err)
	}
	if plain != ctxed {
		t.Fatalf("JoinContext reported %d pairs, Join %d", ctxed, plain)
	}

	var pplain, pctxed int
	p := NewPBSM(8)
	p.Join(as, bs, func(a, b Entry) { pplain++ })
	if err := p.JoinContext(context.Background(), as, bs, func(a, b Entry) { pctxed++ }); err != nil {
		t.Fatal(err)
	}
	if pplain != pctxed || pplain != plain {
		t.Fatalf("PBSM JoinContext %d, PBSM Join %d, R-tree %d", pctxed, pplain, plain)
	}
}

func TestJoinContextCancelled(t *testing.T) {
	as, bs := randomEntries(3000, 3), randomEntries(3000, 4)
	ta, tb := BuildRTree(as), BuildRTree(bs)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if err := ta.JoinContext(ctx, tb, func(a, b Entry) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RTree.JoinContext err = %v, want Canceled", err)
	}
	if err := NewPBSM(8).JoinContext(ctx, as, bs, func(a, b Entry) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("PBSM.JoinContext err = %v, want Canceled", err)
	}
	if err := ta.QueryContext(ctx, geom.MBR{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, func(Entry) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext err = %v, want Canceled", err)
	}
	if _, err := PairsContext(ctx, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("PairsContext err = %v, want Canceled", err)
	}
}

// Cancelling mid-traversal must stop the join early: report a few pairs,
// then cancel from inside the callback and check the traversal abandons
// the remaining work.
func TestJoinContextCancelMidway(t *testing.T) {
	as, bs := randomEntries(2000, 5), randomEntries(2000, 6)
	ta, tb := BuildRTree(as), BuildRTree(bs)

	total := 0
	ta.Join(tb, func(a, b Entry) { total++ })
	if total < 100 {
		t.Fatalf("workload too small: %d pairs", total)
	}

	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	err := ta.JoinContext(ctx, tb, func(a, b Entry) {
		seen++
		if seen == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if seen >= total {
		t.Fatalf("join ran to completion (%d pairs) despite cancellation", seen)
	}
}

func TestQueryContextMatchesQuery(t *testing.T) {
	as := randomEntries(500, 7)
	ta := BuildRTree(as)
	q := geom.MBR{MinX: 100, MinY: 100, MaxX: 400, MaxY: 400}
	var plain, ctxed int
	ta.Query(q, func(Entry) { plain++ })
	if err := ta.QueryContext(context.Background(), q, func(Entry) { ctxed++ }); err != nil {
		t.Fatal(err)
	}
	if plain == 0 || plain != ctxed {
		t.Fatalf("QueryContext found %d, Query %d", ctxed, plain)
	}
}
