package join

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
)

// TestJoinObservedCounts: the counted joins must report the same pairs
// as the plain joins, with a pair counter that matches exactly and work
// counters bounded below by the output size.
func TestJoinObservedCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	as := randBoxes(rng, 300, 100, 6)
	bs := randBoxes(rng, 250, 100, 6)

	plain := 0
	BuildRTree(as).Join(BuildRTree(bs), func(a, b Entry) { plain++ })

	counted := 0
	st := BuildRTree(as).JoinObserved(BuildRTree(bs), func(a, b Entry) { counted++ })
	if counted != plain {
		t.Fatalf("observed join reported %d pairs, plain %d", counted, plain)
	}
	if st.Pairs != int64(plain) {
		t.Errorf("Pairs counter = %d, want %d", st.Pairs, plain)
	}
	if st.NodeVisits <= 0 {
		t.Errorf("NodeVisits = %d", st.NodeVisits)
	}
	if st.Compares < st.Pairs {
		t.Errorf("Compares (%d) < Pairs (%d)", st.Compares, st.Pairs)
	}

	p := NewPBSM(8)
	pbsmCount := 0
	pst := p.JoinObserved(as, bs, func(a, b Entry) { pbsmCount++ })
	if pbsmCount != plain {
		t.Fatalf("PBSM observed join reported %d pairs, want %d", pbsmCount, plain)
	}
	if pst.Pairs != int64(plain) {
		t.Errorf("PBSM Pairs counter = %d, want %d", pst.Pairs, plain)
	}
	if pst.NodeVisits <= 0 || pst.Compares < pst.Pairs {
		t.Errorf("PBSM work counters implausible: %+v", pst)
	}
}

func TestPairsObserved(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	es := randBoxes(rng, 200, 100, 7)
	boxes := make([]geom.MBR, len(es))
	for i, e := range es {
		boxes[i] = e.Box
	}
	plain := Pairs(boxes, boxes)
	got, st := PairsObserved(boxes, boxes)
	if len(got) != len(plain) {
		t.Fatalf("PairsObserved returned %d pairs, Pairs %d", len(got), len(plain))
	}
	if st.Pairs != int64(len(plain)) {
		t.Errorf("stats.Pairs = %d, want %d", st.Pairs, len(plain))
	}

	reg := obs.NewRegistry()
	st.Publish(reg, "join")
	if reg.Counter("join_pairs_total").Value() != st.Pairs {
		t.Error("Publish did not export the pair counter")
	}
	if reg.Counter("join_node_visits_total").Value() != st.NodeVisits {
		t.Error("Publish did not export the node-visit counter")
	}
	st.Publish(reg, "join") // publishing again accumulates
	if reg.Counter("join_compares_total").Value() != 2*st.Compares {
		t.Error("Publish should accumulate into existing counters")
	}

	var sum JoinStats
	sum.Add(st)
	sum.Add(st)
	if sum.Pairs != 2*st.Pairs || sum.Compares != 2*st.Compares || sum.NodeVisits != 2*st.NodeVisits {
		t.Errorf("Add mis-accumulates: %+v", sum)
	}
}
