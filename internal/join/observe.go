package join

import (
	"repro/internal/geom"
	"repro/internal/obs"
)

// JoinStats counts the work of one MBR-join execution — the filter step
// the paper treats as an external producer. Tracking it anyway lets the
// pipeline metrics normalize every downstream counter against the
// candidate-pair total.
type JoinStats struct {
	// Pairs is the number of candidate pairs reported to the caller.
	Pairs int64
	// NodeVisits is the number of node pairs visited (R-tree join) or
	// non-empty partitions swept (PBSM).
	NodeVisits int64
	// Compares is the number of box-box intersection tests performed on
	// entries.
	Compares int64
}

// Add accumulates o into s.
func (s *JoinStats) Add(o JoinStats) {
	s.Pairs += o.Pairs
	s.NodeVisits += o.NodeVisits
	s.Compares += o.Compares
}

// Publish adds the stats to counters registered under prefix
// (e.g. "join" -> join_pairs_total, join_node_visits_total,
// join_compares_total).
func (s JoinStats) Publish(reg *obs.Registry, prefix string) {
	reg.Counter(prefix + "_pairs_total").Add(s.Pairs)
	reg.Counter(prefix + "_node_visits_total").Add(s.NodeVisits)
	reg.Counter(prefix + "_compares_total").Add(s.Compares)
}

// PairsObserved is Pairs with work counters for the R-tree build-and-join
// it performs.
func PairsObserved(as, bs []geom.MBR) ([][2]int32, JoinStats) {
	ea := make([]Entry, len(as))
	for i, b := range as {
		ea[i] = Entry{Box: b, ID: int32(i)}
	}
	eb := make([]Entry, len(bs))
	for i, b := range bs {
		eb[i] = Entry{Box: b, ID: int32(i)}
	}
	ta, tb := BuildRTree(ea), BuildRTree(eb)
	var out [][2]int32
	st := ta.JoinObserved(tb, func(a, b Entry) { out = append(out, [2]int32{a.ID, b.ID}) })
	return out, st
}
