package join

import (
	"context"

	"repro/internal/geom"
)

// View is an epoch-merged read view over a dataset's indexes: the
// immutable base R-tree (entry IDs are positions in the base object
// array), a tombstone bitset over those positions, and an optional
// side tree over delta objects (entry IDs are positions in the delta
// object array). A view is a value — three words — assembled per
// request from an atomically published epoch entry, so queries see one
// consistent (base, tombstones, delta) triple even while mutations
// publish successors concurrently.
//
// The zero-delta case (Dead and Side nil) degenerates to the plain
// base tree: no wrapper closures, no per-entry branches beyond one nil
// check, so serving an unmutated dataset costs exactly what it did
// before views existed.
type View struct {
	Base *RTree
	// Dead is a bitset over base entry IDs: bit i set means base
	// object i is tombstoned (deleted or superseded by a delta
	// object). Nil means nothing is tombstoned.
	Dead []uint64
	// Side indexes the delta objects; nil when the view has no delta.
	Side *RTree
}

// deadBit reports whether base position id is tombstoned in dead.
func deadBit(dead []uint64, id int32) bool {
	w := int(id) >> 6
	return w < len(dead) && dead[w]&(1<<(uint(id)&63)) != 0
}

// Live returns the number of live objects the view exposes.
func (v View) Live() int {
	n := 0
	if v.Base != nil {
		n += v.Base.Len()
	}
	for _, w := range v.Dead {
		for ; w != 0; w &= w - 1 {
			n--
		}
	}
	if v.Side != nil {
		n += v.Side.Len()
	}
	return n
}

// QueryContext calls fn for every live entry whose box intersects q:
// base entries (delta=false) with tombstoned positions skipped, then
// delta entries (delta=true). Cancellation behaves as in
// RTree.QueryContext.
func (v View) QueryContext(ctx context.Context, q geom.MBR, fn func(delta bool, e Entry)) error {
	if v.Base != nil {
		if v.Dead == nil {
			if err := v.Base.QueryContext(ctx, q, func(e Entry) { fn(false, e) }); err != nil {
				return err
			}
		} else {
			dead := v.Dead
			if err := v.Base.QueryContext(ctx, q, func(e Entry) {
				if !deadBit(dead, e.ID) {
					fn(false, e)
				}
			}); err != nil {
				return err
			}
		}
	}
	if v.Side != nil {
		return v.Side.QueryContext(ctx, q, func(e Entry) { fn(true, e) })
	}
	return nil
}

// JoinViews reports every candidate pair (a ∈ va, b ∈ vb) with
// intersecting boxes across the two merged views: the four sub-joins
// base×base, base×delta, delta×base and delta×delta, with tombstoned
// base entries filtered out of all of them. aDelta/bDelta tell fn
// which object array each entry ID indexes. When neither view carries
// a delta this is exactly one base×base tree join.
func JoinViews(ctx context.Context, va, vb View, fn func(aDelta, bDelta bool, a, b Entry)) error {
	sub := func(ta, tb *RTree, aDelta, bDelta bool) error {
		if ta == nil || tb == nil {
			return nil
		}
		deadA, deadB := va.Dead, vb.Dead
		if aDelta {
			deadA = nil
		}
		if bDelta {
			deadB = nil
		}
		return ta.JoinContext(ctx, tb, func(a, b Entry) {
			if deadBit(deadA, a.ID) || deadBit(deadB, b.ID) {
				return
			}
			fn(aDelta, bDelta, a, b)
		})
	}
	if err := sub(va.Base, vb.Base, false, false); err != nil {
		return err
	}
	if err := sub(va.Base, vb.Side, false, true); err != nil {
		return err
	}
	if err := sub(va.Side, vb.Base, true, false); err != nil {
		return err
	}
	return sub(va.Side, vb.Side, true, true)
}
