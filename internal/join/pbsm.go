package join

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// PBSM is a partition-based spatial-merge join: the space is cut into a
// uniform grid, each rectangle is replicated into every partition it
// overlaps, and partitions are joined independently with a plane sweep
// over x. Duplicate results from replicated rectangles are avoided with
// the reference-point method: a pair is reported only in the partition
// containing the top-left corner of its intersection.
type PBSM struct {
	grid int
}

// NewPBSM creates a join operator with a grid x grid partitioning.
func NewPBSM(grid int) *PBSM {
	if grid < 1 {
		grid = 1
	}
	return &PBSM{grid: grid}
}

// Join reports every intersecting pair (a ∈ as, b ∈ bs) exactly once.
func (p *PBSM) Join(as, bs []Entry, fn func(a, b Entry)) {
	p.joinCtx(as, bs, fn, nil, nil)
}

// JoinObserved is Join with work counters: partitions swept, box
// comparisons inside the sweeps, and reported (deduplicated) pairs.
func (p *PBSM) JoinObserved(as, bs []Entry, fn func(a, b Entry)) JoinStats {
	var st JoinStats
	p.joinCtx(as, bs, fn, &st, nil)
	return st
}

func (p *PBSM) joinCtx(as, bs []Entry, fn func(a, b Entry), st *JoinStats, tk *ticker) error {
	space := geom.EmptyMBR()
	for _, e := range as {
		space = space.Expand(e.Box)
	}
	for _, e := range bs {
		space = space.Expand(e.Box)
	}
	if space.IsEmpty() {
		return nil
	}
	cw := space.Width() / float64(p.grid)
	ch := space.Height() / float64(p.grid)
	if cw <= 0 {
		cw = 1
	}
	if ch <= 0 {
		ch = 1
	}
	cellIdx := func(x, y float64) (int, int) {
		cx := int((x - space.MinX) / cw)
		cy := int((y - space.MinY) / ch)
		if cx < 0 {
			cx = 0
		} else if cx >= p.grid {
			cx = p.grid - 1
		}
		if cy < 0 {
			cy = 0
		} else if cy >= p.grid {
			cy = p.grid - 1
		}
		return cx, cy
	}

	nCells := p.grid * p.grid
	pa := make([][]Entry, nCells)
	pb := make([][]Entry, nCells)
	assign := func(parts [][]Entry, es []Entry) {
		for _, e := range es {
			x0, y0 := cellIdx(e.Box.MinX, e.Box.MinY)
			x1, y1 := cellIdx(e.Box.MaxX, e.Box.MaxY)
			for cy := y0; cy <= y1; cy++ {
				for cx := x0; cx <= x1; cx++ {
					idx := cy*p.grid + cx
					parts[idx] = append(parts[idx], e)
				}
			}
		}
	}
	assign(pa, as)
	assign(pb, bs)

	for cy := 0; cy < p.grid; cy++ {
		for cx := 0; cx < p.grid; cx++ {
			idx := cy*p.grid + cx
			if len(pa[idx]) == 0 || len(pb[idx]) == 0 {
				continue
			}
			if st != nil {
				st.NodeVisits++
			}
			err := sweep(pa[idx], pb[idx], func(a, b Entry) {
				// Reference point: report only in the cell holding the
				// min corner of the intersection rectangle.
				ix := math.Max(a.Box.MinX, b.Box.MinX)
				iy := math.Max(a.Box.MinY, b.Box.MinY)
				rx, ry := cellIdx(ix, iy)
				if rx == cx && ry == cy {
					if st != nil {
						st.Pairs++
					}
					fn(a, b)
				}
			}, st, tk)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// sweep is a forward plane-sweep join over x between two entry lists.
func sweep(as, bs []Entry, fn func(a, b Entry), st *JoinStats, tk *ticker) error {
	sa := make([]Entry, len(as))
	copy(sa, as)
	sb := make([]Entry, len(bs))
	copy(sb, bs)
	sort.Slice(sa, func(i, j int) bool { return sa[i].Box.MinX < sa[j].Box.MinX })
	sort.Slice(sb, func(i, j int) bool { return sb[i].Box.MinX < sb[j].Box.MinX })

	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		if err := tk.err(); err != nil {
			return err
		}
		if sa[i].Box.MinX <= sb[j].Box.MinX {
			a := sa[i]
			for k := j; k < len(sb) && sb[k].Box.MinX <= a.Box.MaxX; k++ {
				if st != nil {
					st.Compares++
				}
				if a.Box.Intersects(sb[k].Box) {
					fn(a, sb[k])
				}
			}
			i++
		} else {
			b := sb[j]
			for k := i; k < len(sa) && sa[k].Box.MinX <= b.Box.MaxX; k++ {
				if st != nil {
					st.Compares++
				}
				if b.Box.Intersects(sa[k].Box) {
					fn(sa[k], b)
				}
			}
			j++
		}
	}
	return nil
}

// Pairs collects the join result of two MBR slices using the R-tree join;
// it is the convenience entry point used by the harness to produce
// candidate pairs.
func Pairs(as, bs []geom.MBR) [][2]int32 {
	ea := make([]Entry, len(as))
	for i, b := range as {
		ea[i] = Entry{Box: b, ID: int32(i)}
	}
	eb := make([]Entry, len(bs))
	for i, b := range bs {
		eb[i] = Entry{Box: b, ID: int32(i)}
	}
	ta, tb := BuildRTree(ea), BuildRTree(eb)
	var out [][2]int32
	ta.Join(tb, func(a, b Entry) { out = append(out, [2]int32{a.ID, b.ID}) })
	return out
}
