// Package join implements the filter step of the spatial join: producing
// the pairs of objects whose MBRs intersect. The paper treats this step as
// an external producer (its cost is excluded from all measurements); two
// standard algorithms are provided: an STR bulk-loaded R-tree with a
// synchronized-traversal tree join, and a PBSM-style grid partition join
// with plane-sweep inside each partition.
package join

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Entry is one indexed rectangle with its caller-assigned identifier.
type Entry struct {
	Box geom.MBR
	ID  int32
}

// node capacity of the STR R-tree.
const nodeCap = 16

type node struct {
	box      geom.MBR
	children []*node // nil for leaves
	entries  []Entry // nil for internal nodes
}

// RTree is a static, STR bulk-loaded R-tree over MBRs.
type RTree struct {
	root *node
	size int
}

// BuildRTree bulk-loads entries with the Sort-Tile-Recursive method:
// entries are sorted by center x, cut into vertical slices, each slice
// sorted by center y and packed into leaves.
func BuildRTree(entries []Entry) *RTree {
	t := &RTree{size: len(entries)}
	if len(entries) == 0 {
		t.root = &node{box: geom.EmptyMBR()}
		return t
	}
	es := make([]Entry, len(entries))
	copy(es, entries)

	leaves := packLeaves(es)
	level := make([]*node, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		level = packNodes(level)
	}
	t.root = level[0]
	return t
}

func packLeaves(es []Entry) []*node {
	nLeaves := (len(es) + nodeCap - 1) / nodeCap
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := nSlices * nodeCap

	sort.Slice(es, func(i, j int) bool {
		return es[i].Box.Center().X < es[j].Box.Center().X
	})
	var leaves []*node
	for s := 0; s < len(es); s += sliceSize {
		e := s + sliceSize
		if e > len(es) {
			e = len(es)
		}
		slice := es[s:e]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Box.Center().Y < slice[j].Box.Center().Y
		})
		for i := 0; i < len(slice); i += nodeCap {
			j := i + nodeCap
			if j > len(slice) {
				j = len(slice)
			}
			leaf := &node{entries: slice[i:j:j], box: geom.EmptyMBR()}
			for _, en := range leaf.entries {
				leaf.box = leaf.box.Expand(en.Box)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func packNodes(level []*node) []*node {
	sort.Slice(level, func(i, j int) bool {
		return level[i].box.Center().X < level[j].box.Center().X
	})
	var out []*node
	for i := 0; i < len(level); i += nodeCap {
		j := i + nodeCap
		if j > len(level) {
			j = len(level)
		}
		n := &node{children: level[i:j:j], box: geom.EmptyMBR()}
		for _, c := range n.children {
			n.box = n.box.Expand(c.box)
		}
		out = append(out, n)
	}
	return out
}

// Len returns the number of indexed entries.
func (t *RTree) Len() int { return t.size }

// Bounds returns the MBR of all indexed entries.
func (t *RTree) Bounds() geom.MBR { return t.root.box }

// Query calls fn for every entry whose box intersects q.
func (t *RTree) Query(q geom.MBR, fn func(Entry)) {
	t.query(t.root, q, fn)
}

func (t *RTree) query(n *node, q geom.MBR, fn func(Entry)) {
	if !n.box.Intersects(q) {
		return
	}
	for _, e := range n.entries {
		if e.Box.Intersects(q) {
			fn(e)
		}
	}
	for _, c := range n.children {
		t.query(c, q, fn)
	}
}

// Join reports every pair (a ∈ t, b ∈ o) with intersecting boxes via a
// synchronized depth-first traversal of both trees.
func (t *RTree) Join(o *RTree, fn func(a, b Entry)) {
	joinNodesCtx(t.root, o.root, fn, nil, nil)
}

// JoinObserved is Join with work counters: node-pair visits, box
// comparisons, and reported pairs (the candidate-pair count every
// downstream pipeline metric is normalized against).
func (t *RTree) JoinObserved(o *RTree, fn func(a, b Entry)) JoinStats {
	var st JoinStats
	joinNodesCtx(t.root, o.root, fn, &st, nil)
	return st
}

func joinNodesCtx(a, b *node, fn func(x, y Entry), st *JoinStats, tk *ticker) error {
	if err := tk.err(); err != nil {
		return err
	}
	if st != nil {
		st.NodeVisits++
	}
	if !a.box.Intersects(b.box) {
		return nil
	}
	switch {
	case a.entries != nil && b.entries != nil:
		if st != nil {
			st.Compares += int64(len(a.entries)) * int64(len(b.entries))
		}
		for _, ea := range a.entries {
			for _, eb := range b.entries {
				if ea.Box.Intersects(eb.Box) {
					if st != nil {
						st.Pairs++
					}
					fn(ea, eb)
				}
			}
		}
	case a.entries != nil:
		for _, cb := range b.children {
			if err := joinNodesCtx(a, cb, fn, st, tk); err != nil {
				return err
			}
		}
	case b.entries != nil:
		for _, ca := range a.children {
			if err := joinNodesCtx(ca, b, fn, st, tk); err != nil {
				return err
			}
		}
	default:
		for _, ca := range a.children {
			if !ca.box.Intersects(b.box) {
				continue
			}
			for _, cb := range b.children {
				if err := joinNodesCtx(ca, cb, fn, st, tk); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
