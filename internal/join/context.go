package join

import (
	"context"

	"repro/internal/geom"
)

// ticker amortizes context checks over a traversal: Err polls ctx.Err()
// only every stride calls, so cancellation support costs one counter
// increment per node visit on the hot path. A nil *ticker never checks
// (the context-free entry points pass nil and keep their old cost).
type ticker struct {
	ctx context.Context
	n   uint
}

// tickStride is how many traversal steps pass between context polls:
// coarse enough to stay off the profile, fine enough that a cancelled
// join stops within microseconds.
const tickStride = 1024

func newTicker(ctx context.Context) *ticker { return &ticker{ctx: ctx} }

func (t *ticker) err() error {
	if t == nil {
		return nil
	}
	t.n++
	if t.n%tickStride != 0 {
		return nil
	}
	return t.ctx.Err()
}

// QueryContext is Query with cancellation: it calls fn for every entry
// whose box intersects q, polling ctx periodically and returning its
// error if the deadline expires or the caller cancels mid-traversal.
func (t *RTree) QueryContext(ctx context.Context, q geom.MBR, fn func(Entry)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return t.queryCtx(t.root, q, fn, newTicker(ctx))
}

func (t *RTree) queryCtx(n *node, q geom.MBR, fn func(Entry), tk *ticker) error {
	if err := tk.err(); err != nil {
		return err
	}
	if !n.box.Intersects(q) {
		return nil
	}
	for _, e := range n.entries {
		if e.Box.Intersects(q) {
			fn(e)
		}
	}
	for _, c := range n.children {
		if err := t.queryCtx(c, q, fn, tk); err != nil {
			return err
		}
	}
	return nil
}

// JoinContext is Join with cancellation: the synchronized traversal
// polls ctx every tickStride node pairs and abandons the join with the
// context's error once it is done. Pairs already reported stay reported;
// the result is a prefix of the full join.
func (t *RTree) JoinContext(ctx context.Context, o *RTree, fn func(a, b Entry)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return joinNodesCtx(t.root, o.root, fn, nil, newTicker(ctx))
}

// JoinContext is PBSM's cancellable join: ctx is polled between
// partitions and inside each plane sweep.
func (p *PBSM) JoinContext(ctx context.Context, as, bs []Entry, fn func(a, b Entry)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return p.joinCtx(as, bs, fn, nil, newTicker(ctx))
}

// PairsContext is Pairs with cancellation, for callers serving
// deadline-bound requests. On cancellation the partial result is
// discarded and the context's error returned.
func PairsContext(ctx context.Context, as, bs []geom.MBR) ([][2]int32, error) {
	ea := make([]Entry, len(as))
	for i, b := range as {
		ea[i] = Entry{Box: b, ID: int32(i)}
	}
	eb := make([]Entry, len(bs))
	for i, b := range bs {
		eb[i] = Entry{Box: b, ID: int32(i)}
	}
	ta, tb := BuildRTree(ea), BuildRTree(eb)
	var out [][2]int32
	if err := ta.JoinContext(ctx, tb, func(a, b Entry) {
		out = append(out, [2]int32{a.ID, b.ID})
	}); err != nil {
		return nil, err
	}
	return out, nil
}
