package raster

import (
	"math"

	"repro/internal/geom"
)

// maxWindowCells bounds the per-object raster window (64M cells ≈ 64 MB of
// state). Real datasets stay far below this; the generators are configured
// so the largest objects fit comfortably.
const maxWindowCells = 64 << 20

// Rasterize classifies every grid cell in the polygon's MBR window.
//
// Phase 1 marks every cell touched by a boundary edge as Partial by
// walking the edge through the grid one row band at a time: within a band
// (one cell tall) the edge spans a contiguous column range, and every cell
// in that range is touched. Coordinates that land exactly on cell borders
// mark both neighbouring cells, so cells that merely touch the boundary
// are conservatively Partial — this is what lets the interval filters
// detect 'meets' pairs.
//
// Phase 2 classifies the remaining cells row by row: a maximal run of
// unmarked cells is uniformly inside or outside (the boundary cannot pass
// between two unmarked neighbours without marking one), so one
// point-in-polygon probe per run suffices.
func Rasterize(p *geom.Polygon, g Grid) (*Raster, error) {
	b := p.Bounds()
	// Expand the window by one cell: a boundary lying exactly on the MBR
	// border also touches the neighbouring cells, which must become
	// Partial for the conservative list to cover all touched cells.
	colMin, colMax := g.clamp(g.Col(b.MinX)-1), g.clamp(g.Col(b.MaxX)+1)
	rowMin, rowMax := g.clamp(g.Row(b.MinY)-1), g.clamp(g.Row(b.MaxY)+1)
	w, h := colMax-colMin+1, rowMax-rowMin+1
	if cells := uint64(w) * uint64(h); cells > maxWindowCells {
		return nil, ErrWindowTooLarge{Cells: cells}
	}
	ras := &Raster{ColMin: colMin, RowMin: rowMin, W: w, H: h, states: make([]CellState, w*h)}

	// Border tolerance: a coordinate within snap of a cell border marks
	// both sides.
	snapX, snapY := g.cellW*1e-9, g.cellH*1e-9

	markBand := func(row int, xlo, xhi float64) {
		if row < rowMin || row > rowMax {
			return
		}
		clo := g.Col(xlo + snapX)
		if g.Col(xlo-snapX) < clo {
			clo = g.Col(xlo - snapX)
		}
		chi := g.Col(xhi - snapX)
		if g.Col(xhi+snapX) > chi {
			chi = g.Col(xhi + snapX)
		}
		if clo < colMin {
			clo = colMin
		}
		if chi > colMax {
			chi = colMax
		}
		base := (row - rowMin) * w
		for c := clo; c <= chi; c++ {
			ras.states[base+c-colMin] = Partial
		}
	}

	p.Edges(func(a, b2 geom.Point) {
		yLo, yHi := math.Min(a.Y, b2.Y), math.Max(a.Y, b2.Y)
		rLo := g.Row(yLo + snapY)
		if g.Row(yLo-snapY) < rLo {
			rLo = g.Row(yLo - snapY)
		}
		rHi := g.Row(yHi - snapY)
		if g.Row(yHi+snapY) > rHi {
			rHi = g.Row(yHi + snapY)
		}
		for row := rLo; row <= rHi; row++ {
			band := g.CellMBR(colMin, row) // y-range of this band
			x0, x1, ok := clipSegmentToBand(a, b2, band.MinY-snapY, band.MaxY+snapY)
			if ok {
				markBand(row, x0, x1)
			}
		}
	})

	// Phase 2: run classification.
	loc := geom.NewPolygonLocator(p)
	for row := rowMin; row <= rowMax; row++ {
		base := (row - rowMin) * w
		for c := colMin; c <= colMax; {
			if ras.states[base+c-colMin] == Partial {
				c++
				continue
			}
			// Start of an unmarked run.
			start := c
			for c <= colMax && ras.states[base+c-colMin] != Partial {
				c++
			}
			if loc.Locate(g.CellCenter(start, row)) == geom.Inside {
				for k := start; k < c; k++ {
					ras.states[base+k-colMin] = Full
				}
			}
		}
	}
	return ras, nil
}

// clipSegmentToBand returns the x-extent of segment (a, b) within the
// horizontal band [yLo, yHi], or ok=false when the segment misses it.
func clipSegmentToBand(a, b geom.Point, yLo, yHi float64) (x0, x1 float64, ok bool) {
	ay, by := a.Y, b.Y
	if ay > by {
		a, b = b, a
		ay, by = by, ay
	}
	if by < yLo || ay > yHi {
		return 0, 0, false
	}
	t0, t1 := 0.0, 1.0
	dy := by - ay
	if dy > 0 {
		if ay < yLo {
			t0 = (yLo - ay) / dy
		}
		if by > yHi {
			t1 = (yHi - ay) / dy
		}
	}
	xa := a.X + t0*(b.X-a.X)
	xb := a.X + t1*(b.X-a.X)
	if xa > xb {
		xa, xb = xb, xa
	}
	return xa, xb, true
}
