package raster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func unitSpace() geom.MBR { return geom.MBR{MinX: 0, MinY: 0, MaxX: 16, MaxY: 16} }

func TestGridBasics(t *testing.T) {
	g := NewGrid(unitSpace(), 4) // 16x16 grid, cell size 1x1
	if g.Side() != 16 || g.Order() != 4 {
		t.Fatalf("side=%d order=%d", g.Side(), g.Order())
	}
	w, h := g.CellSize()
	if w != 1 || h != 1 {
		t.Fatalf("cell size %v x %v", w, h)
	}
	if g.Col(3.5) != 3 || g.Row(15.99) != 15 {
		t.Errorf("Col/Row wrong: %d %d", g.Col(3.5), g.Row(15.99))
	}
	// Clamping.
	if g.Col(-5) != 0 || g.Col(99) != 15 {
		t.Error("clamping failed")
	}
	cb := g.CellMBR(2, 3)
	if cb != (geom.MBR{MinX: 2, MinY: 3, MaxX: 3, MaxY: 4}) {
		t.Errorf("CellMBR = %v", cb)
	}
	if g.CellCenter(2, 3) != (geom.Point{X: 2.5, Y: 3.5}) {
		t.Errorf("CellCenter = %v", g.CellCenter(2, 3))
	}
	if g.Space() != unitSpace() {
		t.Error("Space accessor wrong")
	}
}

func TestGridPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGrid(unitSpace(), 0) },
		func() { NewGrid(unitSpace(), 42) },
		func() { NewGrid(geom.EmptyMBR(), 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCellStateString(t *testing.T) {
	if Empty.String() != "empty" || Partial.String() != "partial" || Full.String() != "full" {
		t.Error("state names wrong")
	}
}

func rect(x0, y0, x1, y1 float64) *geom.Polygon {
	return geom.NewPolygon(geom.Ring{{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}})
}

// TestRasterizeAlignedSquare: a grid-aligned 4x4 square. Interior cells
// are the 2x2 inner block (boundary cells and their outside neighbours are
// partial due to border snapping).
func TestRasterizeAlignedSquare(t *testing.T) {
	g := NewGrid(unitSpace(), 4)
	p := rect(4, 4, 8, 8)
	ras, err := Rasterize(p, g)
	if err != nil {
		t.Fatal(err)
	}
	for col := 5; col < 7; col++ {
		for row := 5; row < 7; row++ {
			if s := ras.At(col, row); s != Full {
				t.Errorf("cell (%d,%d) = %v, want full", col, row, s)
			}
		}
	}
	// Cells crossed by the boundary: columns/rows 4 and 7 within the square,
	// plus the exactly-touching outside neighbours 3 and 8.
	for _, c := range []int{3, 4, 7, 8} {
		if s := ras.At(c, 4); s != Partial {
			t.Errorf("boundary cell (%d,4) = %v, want partial", c, s)
		}
	}
	// Far-away cells are empty.
	if ras.At(0, 0) != Empty || ras.At(12, 12) != Empty {
		t.Error("distant cells should be empty")
	}
	full, partial := ras.Counts()
	if full != 4 {
		t.Errorf("full count = %d, want 4", full)
	}
	// Boundary band: the square's border touches cells 3..8 in each
	// direction minus the full block: (6*6 window) - 4 full = 32 partial.
	if partial != 32 {
		t.Errorf("partial count = %d, want 32", partial)
	}
}

// TestRasterizeMisalignedSquare: a square strictly inside cell borders.
func TestRasterizeMisalignedSquare(t *testing.T) {
	g := NewGrid(unitSpace(), 4)
	p := rect(4.5, 4.5, 7.5, 7.5)
	ras, err := Rasterize(p, g)
	if err != nil {
		t.Fatal(err)
	}
	full, partial := ras.Counts()
	if full != 4 { // cells (5..6, 5..6)
		t.Errorf("full = %d, want 4", full)
	}
	if partial != 12 { // ring of boundary cells (4..7)^2 minus 4 full
		t.Errorf("partial = %d, want 12", partial)
	}
}

func randBlob(rng *rand.Rand, cx, cy, radius float64, n int) geom.Ring {
	angles := make([]float64, n)
	step := 2 * math.Pi / float64(n)
	for i := range angles {
		angles[i] = float64(i)*step + rng.Float64()*step*0.8
	}
	ring := make(geom.Ring, n)
	for i, a := range angles {
		r := radius * (0.4 + 0.6*rng.Float64())
		ring[i] = geom.Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
	}
	return ring
}

// TestRasterizeConservative is the core soundness property: every FULL
// cell lies entirely inside the polygon, and every point of the polygon's
// boundary lies in a PARTIAL cell.
func TestRasterizeConservative(t *testing.T) {
	g := NewGrid(unitSpace(), 6) // 64x64, cell 0.25
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		p := geom.NewPolygon(randBlob(rng, 8, 8, 5, 6+rng.Intn(40)))
		ras, err := Rasterize(p, g)
		if err != nil {
			t.Fatal(err)
		}
		ras.Each(func(col, row int, s CellState) {
			if s != Full {
				return
			}
			cb := g.CellMBR(col, row)
			for _, pt := range []geom.Point{
				{X: cb.MinX, Y: cb.MinY}, {X: cb.MaxX, Y: cb.MinY},
				{X: cb.MaxX, Y: cb.MaxY}, {X: cb.MinX, Y: cb.MaxY},
				cb.Center(),
			} {
				if geom.LocateInPolygon(pt, p) == geom.Outside {
					t.Fatalf("trial %d: full cell (%d,%d) has outside point %v", trial, col, row, pt)
				}
			}
		})
		// Boundary samples must land in partial cells.
		p.Edges(func(a, b geom.Point) {
			for k := 0; k <= 8; k++ {
				pt := geom.Lerp(a, b, float64(k)/8)
				if s := ras.At(g.Col(pt.X), g.Row(pt.Y)); s != Partial {
					t.Fatalf("trial %d: boundary point %v in %v cell", trial, pt, s)
				}
			}
		})
		// Interior samples must land in non-empty cells.
		ip := geom.PointOnSurface(p)
		if s := ras.At(g.Col(ip.X), g.Row(ip.Y)); s == Empty {
			t.Fatalf("trial %d: interior point %v in empty cell", trial, ip)
		}
	}
}

// TestRasterizePolygonWithHole checks that hole interiors are not Full.
func TestRasterizePolygonWithHole(t *testing.T) {
	g := NewGrid(unitSpace(), 5) // 32x32, cell 0.5
	p := geom.NewPolygon(
		geom.Ring{{X: 2, Y: 2}, {X: 14, Y: 2}, {X: 14, Y: 14}, {X: 2, Y: 14}},
		geom.Ring{{X: 6, Y: 6}, {X: 10, Y: 6}, {X: 10, Y: 10}, {X: 6, Y: 10}},
	)
	ras, err := Rasterize(p, g)
	if err != nil {
		t.Fatal(err)
	}
	// Deep inside the hole: empty.
	if s := ras.At(g.Col(8), g.Row(8)); s != Empty {
		t.Errorf("hole center = %v, want empty", s)
	}
	// Solid part: full.
	if s := ras.At(g.Col(4), g.Row(4)); s != Full {
		t.Errorf("solid part = %v, want full", s)
	}
	// Hole ring: partial.
	if s := ras.At(g.Col(6), g.Row(8)); s != Partial {
		t.Errorf("hole boundary = %v, want partial", s)
	}
}

func TestRasterizeTinyPolygonWithinOneCell(t *testing.T) {
	g := NewGrid(unitSpace(), 4)
	p := rect(5.1, 5.1, 5.4, 5.4)
	ras, err := Rasterize(p, g)
	if err != nil {
		t.Fatal(err)
	}
	full, partial := ras.Counts()
	if full != 0 || partial != 1 {
		t.Errorf("tiny polygon: full=%d partial=%d, want 0, 1", full, partial)
	}
	if ras.At(5, 5) != Partial {
		t.Error("the containing cell must be partial")
	}
}

func TestWindowTooLarge(t *testing.T) {
	space := geom.MBR{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	g := NewGrid(space, 16)
	p := rect(0.01, 0.01, 0.99, 0.99) // nearly the whole 2^16 grid
	_, err := Rasterize(p, g)
	if err == nil {
		t.Fatal("expected ErrWindowTooLarge")
	}
	if _, ok := err.(ErrWindowTooLarge); !ok {
		t.Fatalf("got %T: %v", err, err)
	}
	if err.Error() == "" {
		t.Error("error message empty")
	}
}
