// Package raster classifies the cells of a fine-grained global grid
// against a polygon: FULL cells lie entirely inside the polygon, PARTIAL
// cells are touched by its boundary, and the rest are EMPTY. The APRIL
// approximation builder turns these classes into the Progressive (FULL
// only) and Conservative (FULL + PARTIAL) interval lists of the paper.
package raster

import (
	"fmt"

	"repro/internal/geom"
)

// Grid is a 2^order × 2^order uniform grid laid over a data space, the
// global grid of the paper (Sec. 4.1 uses order 16 per scenario).
type Grid struct {
	space        geom.MBR
	order        uint
	side         uint32
	cellW, cellH float64
}

// NewGrid lays a 2^order × 2^order grid over the given data space.
func NewGrid(space geom.MBR, order uint) Grid {
	if order == 0 || order > 31 {
		panic("raster: order out of range [1, 31]")
	}
	if space.IsEmpty() || space.Width() <= 0 || space.Height() <= 0 {
		panic("raster: empty data space")
	}
	side := uint32(1) << order
	return Grid{
		space: space,
		order: order,
		side:  side,
		cellW: space.Width() / float64(side),
		cellH: space.Height() / float64(side),
	}
}

// Order returns the grid order.
func (g Grid) Order() uint { return g.order }

// Side returns the number of cells per dimension.
func (g Grid) Side() uint32 { return g.side }

// Space returns the data space covered by the grid.
func (g Grid) Space() geom.MBR { return g.space }

// CellSize returns the world-space dimensions of one cell.
func (g Grid) CellSize() (w, h float64) { return g.cellW, g.cellH }

// Col returns the column of world coordinate x, clamped to the grid.
func (g Grid) Col(x float64) int {
	return g.clamp(int((x - g.space.MinX) / g.cellW))
}

// Row returns the row of world coordinate y, clamped to the grid.
func (g Grid) Row(y float64) int {
	return g.clamp(int((y - g.space.MinY) / g.cellH))
}

func (g Grid) clamp(v int) int {
	if v < 0 {
		return 0
	}
	if v >= int(g.side) {
		return int(g.side) - 1
	}
	return v
}

// CellMBR returns the world-space rectangle of cell (col, row).
func (g Grid) CellMBR(col, row int) geom.MBR {
	x := g.space.MinX + float64(col)*g.cellW
	y := g.space.MinY + float64(row)*g.cellH
	return geom.MBR{MinX: x, MinY: y, MaxX: x + g.cellW, MaxY: y + g.cellH}
}

// CellCenter returns the world-space center of cell (col, row).
func (g Grid) CellCenter(col, row int) geom.Point {
	return geom.Point{
		X: g.space.MinX + (float64(col)+0.5)*g.cellW,
		Y: g.space.MinY + (float64(row)+0.5)*g.cellH,
	}
}

// CellState classifies one grid cell against a polygon.
type CellState uint8

// Cell states.
const (
	Empty   CellState = iota // cell does not intersect the polygon
	Partial                  // polygon boundary passes through the cell
	Full                     // cell lies entirely inside the polygon
)

func (s CellState) String() string {
	switch s {
	case Empty:
		return "empty"
	case Partial:
		return "partial"
	default:
		return "full"
	}
}

// Raster is the cell classification of one polygon over its MBR window.
type Raster struct {
	ColMin, RowMin int
	W, H           int
	states         []CellState
}

// At returns the state of global cell (col, row); cells outside the window
// are Empty.
func (r *Raster) At(col, row int) CellState {
	c, w := col-r.ColMin, row-r.RowMin
	if c < 0 || c >= r.W || w < 0 || w >= r.H {
		return Empty
	}
	return r.states[w*r.W+c]
}

// Each calls fn for every non-empty cell with its global coordinates.
func (r *Raster) Each(fn func(col, row int, s CellState)) {
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			if s := r.states[y*r.W+x]; s != Empty {
				fn(r.ColMin+x, r.RowMin+y, s)
			}
		}
	}
}

// Counts returns the number of full and partial cells.
func (r *Raster) Counts() (full, partial int) {
	for _, s := range r.states {
		switch s {
		case Full:
			full++
		case Partial:
			partial++
		}
	}
	return full, partial
}

// ErrWindowTooLarge is returned when a polygon's MBR covers more grid
// cells than maxWindowCells; callers should use a coarser grid for such
// objects.
type ErrWindowTooLarge struct {
	Cells uint64
}

func (e ErrWindowTooLarge) Error() string {
	return fmt.Sprintf("raster: window of %d cells exceeds limit", e.Cells)
}

// WindowCells returns the number of grid cells in the raster window of
// an object with the given bounds (including the one-cell expansion
// Rasterize applies), letting callers pick a grid order without paying
// for a failed rasterization.
func (g Grid) WindowCells(b geom.MBR) uint64 {
	colMin, colMax := g.clamp(g.Col(b.MinX)-1), g.clamp(g.Col(b.MaxX)+1)
	rowMin, rowMax := g.clamp(g.Row(b.MinY)-1), g.clamp(g.Row(b.MaxY)+1)
	return uint64(colMax-colMin+1) * uint64(rowMax-rowMin+1)
}
