// Package buildinfo identifies the running binary: the repo's own
// version (bumped per PR) and the Go toolchain it was built with.
// Surfaced in /v1/healthz and as the constant stj_build_info gauge so
// fleet dashboards can correlate behavior changes with deploys.
package buildinfo

import "runtime"

// Version is the repo version, following the PR sequence.
const Version = "0.6.0"

// GoVersion returns the Go runtime version the binary runs on.
func GoVersion() string { return runtime.Version() }
