// Package chull implements the classic simple-shape object approximations
// of Brinkhoff et al. (SIGMOD 1994), reference [6] of the paper: a convex
// conservative approximation (the convex hull) and a progressive
// approximation (a maximal enclosed axis-aligned rectangle). The paper's
// raster-interval filters are compared against this family in Sec. 2.3;
// the package provides the baseline intermediate filter for that
// comparison (see the related-work ablation in the harness).
package chull

import (
	"math"

	"repro/internal/april"
	"repro/internal/geom"
)

// Approx is the simple-shape approximation of one polygon.
type Approx struct {
	// Hull is the convex hull (conservative: object ⊆ hull).
	Hull geom.Ring
	// MER is a maximal enclosed rectangle (progressive: MER ⊆ object).
	// Empty when no interior rectangle was found (degenerate objects).
	MER geom.MBR
}

// Build computes the approximation of a polygon.
func Build(p *geom.Polygon) Approx {
	return Approx{Hull: geom.HullOfPolygon(p), MER: EnclosedRect(p)}
}

// EnclosedRect finds a large axis-aligned rectangle inside the polygon by
// greedy bidirectional expansion around an interior point, halving the
// step size geometrically. The result is maximal in the sense that no
// side can be pushed further by the final step size; it is not the global
// optimum (which is unnecessary for filtering).
func EnclosedRect(p *geom.Polygon) geom.MBR {
	c := geom.PointOnSurface(p)
	if geom.LocateInPolygon(c, p) != geom.Inside {
		return geom.EmptyMBR()
	}
	b := p.Bounds()
	loc := geom.NewPolygonLocator(p)
	const minStepFrac = 1e-4
	minStep := math.Max(b.Width(), b.Height()) * minStepFrac

	// Seed with a small square: growing from a degenerate point can lock
	// into a zero-height chord of the polygon that no step can thicken.
	r := geom.EmptyMBR()
	for half := math.Max(b.Width(), b.Height()) / 8; half > minStep/4; half /= 2 {
		cand := geom.MBR{MinX: c.X - half, MinY: c.Y - half, MaxX: c.X + half, MaxY: c.Y + half}
		if rectInside(cand, p, loc) {
			r = cand
			break
		}
	}
	if r.IsEmpty() {
		return r
	}

	step := math.Max(b.Width(), b.Height()) / 2
	for step > minStep {
		grown := false
		for side := 0; side < 4; side++ {
			cand := r
			switch side {
			case 0:
				cand.MinX -= step
			case 1:
				cand.MaxX += step
			case 2:
				cand.MinY -= step
			case 3:
				cand.MaxY += step
			}
			if rectInside(cand, p, loc) {
				r = cand
				grown = true
			}
		}
		if !grown {
			step /= 2
		}
	}
	if r.Width() <= 0 || r.Height() <= 0 {
		return geom.EmptyMBR()
	}
	return r
}

// rectInside reports whether the rectangle lies strictly inside the
// polygon: its corners are interior and no boundary edge reaches it.
func rectInside(r geom.MBR, p *geom.Polygon, loc *geom.Locator) bool {
	corners := [4]geom.Point{
		{X: r.MinX, Y: r.MinY}, {X: r.MaxX, Y: r.MinY},
		{X: r.MaxX, Y: r.MaxY}, {X: r.MinX, Y: r.MaxY},
	}
	for _, c := range corners {
		if loc.Locate(c) != geom.Inside {
			return false
		}
	}
	hit := false
	p.Edges(func(a, b geom.Point) {
		if hit {
			return
		}
		if segmentTouchesRect(a, b, r) {
			hit = true
		}
	})
	return !hit
}

// segmentTouchesRect reports whether segment (a, b) intersects the closed
// rectangle, via a Cohen-Sutherland style outcode rejection followed by
// edge tests.
func segmentTouchesRect(a, b geom.Point, r geom.MBR) bool {
	codeOf := func(p geom.Point) int {
		c := 0
		if p.X < r.MinX {
			c |= 1
		} else if p.X > r.MaxX {
			c |= 2
		}
		if p.Y < r.MinY {
			c |= 4
		} else if p.Y > r.MaxY {
			c |= 8
		}
		return c
	}
	ca, cb := codeOf(a), codeOf(b)
	if ca == 0 || cb == 0 {
		return true // an endpoint is inside
	}
	if ca&cb != 0 {
		return false // both beyond the same side
	}
	corners := [4]geom.Point{
		{X: r.MinX, Y: r.MinY}, {X: r.MaxX, Y: r.MinY},
		{X: r.MaxX, Y: r.MaxY}, {X: r.MinX, Y: r.MaxY},
	}
	for i := 0; i < 4; i++ {
		if geom.SegIntersect(a, b, corners[i], corners[(i+1)%4]).Kind != geom.SegNone {
			return true
		}
	}
	return false
}

// mbrRing converts a rectangle to a CCW ring.
func mbrRing(r geom.MBR) geom.Ring {
	return geom.Ring{
		{X: r.MinX, Y: r.MinY}, {X: r.MaxX, Y: r.MinY},
		{X: r.MaxX, Y: r.MaxY}, {X: r.MinX, Y: r.MaxY},
	}
}

// IntersectionFilter is the [6]-style intermediate filter for spatial
// intersection: disjoint convex hulls prove disjointness; intersecting
// progressive rectangles (or a hull enclosed in the other's rectangle)
// prove intersection; anything else is inconclusive.
func IntersectionFilter(r, s Approx) april.Verdict {
	if len(r.Hull) < 3 || len(s.Hull) < 3 {
		return april.Inconclusive
	}
	if !geom.ConvexIntersects(r.Hull, s.Hull) {
		return april.DefiniteDisjoint
	}
	rOK := !r.MER.IsEmpty()
	sOK := !s.MER.IsEmpty()
	if rOK && sOK && r.MER.Intersects(s.MER) {
		return april.DefiniteIntersect
	}
	// A hull inside the other's enclosed rectangle implies containment.
	if sOK && hullInsideRect(r.Hull, s.MER) {
		return april.DefiniteIntersect
	}
	if rOK && hullInsideRect(s.Hull, r.MER) {
		return april.DefiniteIntersect
	}
	// A hull vertex (a point of the object only if the object is convex)
	// cannot be used, but an object vertex inside the other's rectangle
	// can — callers with vertex access use VertexProbe for that.
	return april.Inconclusive
}

func hullInsideRect(hull geom.Ring, r geom.MBR) bool {
	for _, v := range hull {
		if !r.ContainsPoint(v) {
			return false
		}
	}
	return true
}

// VertexProbe strengthens the filter with exact evidence: any vertex of
// one polygon inside the other's enclosed rectangle proves intersection.
func VertexProbe(p *geom.Polygon, other Approx) bool {
	if other.MER.IsEmpty() {
		return false
	}
	for _, v := range p.Shell {
		if other.MER.ContainsPoint(v) {
			return true
		}
	}
	return false
}
