package chull

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/april"
	"repro/internal/datagen"
	"repro/internal/geom"
)

func rect(x0, y0, x1, y1 float64) *geom.Polygon {
	return geom.NewPolygon(geom.Ring{{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}})
}

func TestEnclosedRectOnRectangle(t *testing.T) {
	p := rect(2, 3, 10, 9)
	r := EnclosedRect(p)
	if r.IsEmpty() {
		t.Fatal("no rectangle found")
	}
	// The enclosed rectangle of a rectangle should nearly fill it.
	if r.Area() < 0.95*p.Area() {
		t.Errorf("enclosed rect covers only %.1f%% of the rectangle", 100*r.Area()/p.Area())
	}
	if !p.Bounds().ContainsMBR(r) {
		t.Error("enclosed rect escapes the polygon bounds")
	}
}

func TestEnclosedRectInsidePolygon(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		p := datagen.Blob(rng, geom.Point{X: 50, Y: 50}, 10+rng.Float64()*20, 12+rng.Intn(100))
		r := EnclosedRect(p)
		if r.IsEmpty() {
			t.Fatalf("trial %d: no rectangle for a fat blob", trial)
		}
		// Sample the rectangle densely: every sample must be inside.
		for i := 0; i <= 8; i++ {
			for j := 0; j <= 8; j++ {
				pt := geom.Point{
					X: r.MinX + r.Width()*float64(i)/8,
					Y: r.MinY + r.Height()*float64(j)/8,
				}
				if geom.LocateInPolygon(pt, p) == geom.Outside {
					t.Fatalf("trial %d: rect point %v outside polygon", trial, pt)
				}
			}
		}
	}
}

func TestEnclosedRectWithHole(t *testing.T) {
	// Annulus: the rectangle must avoid the hole.
	p := geom.NewPolygon(
		geom.Ring{{X: 0, Y: 0}, {X: 20, Y: 0}, {X: 20, Y: 20}, {X: 0, Y: 20}},
		geom.Ring{{X: 8, Y: 8}, {X: 12, Y: 8}, {X: 12, Y: 12}, {X: 8, Y: 12}},
	)
	r := EnclosedRect(p)
	if r.IsEmpty() {
		t.Fatal("no rectangle in annulus")
	}
	hole := geom.MBR{MinX: 8, MinY: 8, MaxX: 12, MaxY: 12}
	inter := r.Intersection(hole)
	if !inter.IsEmpty() && inter.Area() > 1e-6 {
		t.Errorf("rect %v overlaps the hole", r)
	}
}

func TestBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := datagen.Blob(rng, geom.Point{X: 0, Y: 0}, 10, 64)
	a := Build(p)
	if len(a.Hull) < 3 {
		t.Fatal("hull missing")
	}
	if a.MER.IsEmpty() {
		t.Fatal("MER missing")
	}
	// Progressive ⊆ object ⊆ conservative.
	if !geom.ConvexContainsRing(a.Hull, p.Shell) {
		t.Error("hull must contain the shell")
	}
	if geom.LocateInPolygon(a.MER.Center(), p) != geom.Inside {
		t.Error("MER center must be inside the object")
	}
}

func TestIntersectionFilterVerdicts(t *testing.T) {
	a := Build(rect(0, 0, 10, 10))
	b := Build(rect(20, 20, 30, 30))
	if v := IntersectionFilter(a, b); v != april.DefiniteDisjoint {
		t.Errorf("far apart: %v", v)
	}
	c := Build(rect(5, 5, 15, 15))
	if v := IntersectionFilter(a, c); v != april.DefiniteIntersect {
		t.Errorf("overlapping rects: %v", v)
	}
	inner := Build(rect(2, 2, 8, 8))
	if v := IntersectionFilter(a, inner); v != april.DefiniteIntersect {
		t.Errorf("nested rects: %v", v)
	}
}

// TestIntersectionFilterSoundness: the filter must never contradict exact
// geometry on random blobs.
func TestIntersectionFilterSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	definite := 0
	for trial := 0; trial < 200; trial++ {
		p1 := datagen.Blob(rng, geom.Point{X: 20 + rng.Float64()*30, Y: 20 + rng.Float64()*30}, 4+rng.Float64()*10, 8+rng.Intn(40))
		p2 := datagen.Blob(rng, geom.Point{X: 20 + rng.Float64()*30, Y: 20 + rng.Float64()*30}, 4+rng.Float64()*10, 8+rng.Intn(40))
		truth := polysIntersect(p1, p2)
		switch IntersectionFilter(Build(p1), Build(p2)) {
		case april.DefiniteDisjoint:
			definite++
			if truth {
				t.Fatalf("trial %d: filter says disjoint, objects intersect", trial)
			}
		case april.DefiniteIntersect:
			definite++
			if !truth {
				t.Fatalf("trial %d: filter says intersect, objects disjoint", trial)
			}
		}
	}
	if definite == 0 {
		t.Error("filter never definite on 200 random pairs")
	}
}

func polysIntersect(p1, p2 *geom.Polygon) bool {
	cross := false
	p1.Edges(func(a, b geom.Point) {
		p2.Edges(func(c, d geom.Point) {
			if geom.SegIntersect(a, b, c, d).Kind != geom.SegNone {
				cross = true
			}
		})
	})
	if cross {
		return true
	}
	if geom.LocateInPolygon(p1.Shell[0], p2) != geom.Outside {
		return true
	}
	return geom.LocateInPolygon(p2.Shell[0], p1) != geom.Outside
}

func TestVertexProbe(t *testing.T) {
	host := Build(rect(0, 0, 20, 20))
	poking := rect(5, 5, 8, 8) // vertices inside host's MER
	if !VertexProbe(poking, host) {
		t.Error("vertex inside MER should be detected")
	}
	outside := rect(40, 40, 44, 44)
	if VertexProbe(outside, host) {
		t.Error("distant polygon should not probe true")
	}
	if VertexProbe(poking, Approx{}) {
		t.Error("empty approximation cannot probe true")
	}
}

// TestFilterPowerComparison: on a containment-heavy workload, the raster
// filter (APRIL) should classify at least as many pairs as the
// convex-approximation filter — the motivation for raster intermediate
// filters in Sec. 2.3 of the paper.
func TestFilterPowerComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	space := geom.MBR{MinX: 0, MinY: 0, MaxX: 200, MaxY: 200}
	builder := april.NewBuilder(space, 9)
	var chDef, aprilDef, total int
	for trial := 0; trial < 300; trial++ {
		p1 := datagen.Blob(rng, geom.Point{X: 40 + rng.Float64()*120, Y: 40 + rng.Float64()*120}, 6+rng.Float64()*24, 12+rng.Intn(60))
		p2 := datagen.Blob(rng, geom.Point{X: 40 + rng.Float64()*120, Y: 40 + rng.Float64()*120}, 6+rng.Float64()*24, 12+rng.Intn(60))
		if !p1.Bounds().Intersects(p2.Bounds()) {
			continue // mimic the MBR filter step
		}
		total++
		if IntersectionFilter(Build(p1), Build(p2)) != april.Inconclusive {
			chDef++
		}
		a1, err := builder.Build(p1)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := builder.Build(p2)
		if err != nil {
			t.Fatal(err)
		}
		if april.IntersectionFilter(a1, a2) != april.Inconclusive {
			aprilDef++
		}
	}
	if total < 30 {
		t.Fatalf("too few MBR-overlapping pairs: %d", total)
	}
	if aprilDef < chDef {
		t.Errorf("APRIL settled %d pairs, convex approximations %d: expected raster >= convex", aprilDef, chDef)
	}
}

func TestSegmentTouchesRect(t *testing.T) {
	r := geom.MBR{MinX: 2, MinY: 2, MaxX: 6, MaxY: 6}
	cases := []struct {
		a, b geom.Point
		want bool
	}{
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}, false},   // outside
		{geom.Point{X: 3, Y: 3}, geom.Point{X: 5, Y: 5}, true},    // inside
		{geom.Point{X: 0, Y: 4}, geom.Point{X: 8, Y: 4}, true},    // crossing
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 8, Y: 0}, false},   // below
		{geom.Point{X: 0, Y: 2}, geom.Point{X: 8, Y: 2}, true},    // along bottom edge
		{geom.Point{X: 7, Y: 0}, geom.Point{X: 7, Y: 8}, false},   // right of box
		{geom.Point{X: 0, Y: 7}, geom.Point{X: 7, Y: 0}, true},    // clips corner
		{geom.Point{X: 0, Y: 13}, geom.Point{X: 13, Y: 0}, false}, // misses corner
	}
	for _, c := range cases {
		if got := segmentTouchesRect(c.a, c.b, r); got != c.want {
			t.Errorf("segment %v-%v: got %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEnclosedRectDegenerate(t *testing.T) {
	// A sliver triangle still yields some rectangle or empty, never panics.
	sliver := geom.NewPolygon(geom.Ring{{X: 0, Y: 0}, {X: 100, Y: 0.001}, {X: 100, Y: 0.002}})
	r := EnclosedRect(sliver)
	if !r.IsEmpty() && math.IsNaN(r.Area()) {
		t.Error("NaN area")
	}
}
