package dataset

import (
	"bytes"
	"testing"

	"repro/internal/april"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/interval"
)

func buildSmall(t *testing.T) (*Dataset, *april.Builder) {
	t.Helper()
	suite := datagen.NewSuite(11, 0.02)
	b := april.NewBuilder(suite.Space, datagen.DefaultOrder)
	ds, err := Precompute("OLE", datagen.EntityTypes["OLE"], suite.Sets["OLE"], b)
	if err != nil {
		t.Fatal(err)
	}
	return ds, b
}

func TestPrecompute(t *testing.T) {
	ds, _ := buildSmall(t)
	if ds.Len() == 0 {
		t.Fatal("empty dataset")
	}
	if ds.Name != "OLE" || ds.Entity != "EU Lakes" {
		t.Errorf("metadata: %q %q", ds.Name, ds.Entity)
	}
	for i, o := range ds.Objects {
		if o.ID != i {
			t.Fatalf("object %d has ID %d", i, o.ID)
		}
		if o.MBR != o.Poly.Bounds() {
			t.Fatal("MBR not precomputed from polygon")
		}
		if len(o.Approx.C) == 0 {
			t.Fatal("approximation missing")
		}
	}
	mbrs := ds.MBRs()
	if len(mbrs) != ds.Len() || mbrs[0] != ds.Objects[0].MBR {
		t.Error("MBRs() wrong")
	}
}

func TestSizes(t *testing.T) {
	ds, _ := buildSmall(t)
	s := ds.Sizes()
	if s.Vertices == 0 || s.Polygons != 16*s.Vertices {
		t.Errorf("polygon sizing wrong: %+v", s)
	}
	if s.MBRs != 32*ds.Len() {
		t.Errorf("MBR sizing wrong: %+v", s)
	}
	if s.Approx <= 0 {
		t.Errorf("approx sizing wrong: %+v", s)
	}
	// Table 2's key property: approximations are far smaller than the
	// exact polygons for detailed datasets.
	if s.Approx >= s.Polygons {
		t.Errorf("approx (%d) should undercut polygons (%d)", s.Approx, s.Polygons)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ds, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || got.Entity != ds.Entity || got.Len() != ds.Len() {
		t.Fatalf("metadata mismatch: %q %q %d", got.Name, got.Entity, got.Len())
	}
	for i, o := range got.Objects {
		want := ds.Objects[i]
		if o.Poly.NumVertices() != want.Poly.NumVertices() {
			t.Fatalf("object %d: vertices %d != %d", i, o.Poly.NumVertices(), want.Poly.NumVertices())
		}
		if len(o.Poly.Holes) != len(want.Poly.Holes) {
			t.Fatalf("object %d: holes differ", i)
		}
		if o.MBR != want.MBR {
			t.Fatalf("object %d: MBR differs", i)
		}
		if !interval.Match(o.Approx.P, want.Approx.P) || !interval.Match(o.Approx.C, want.Approx.C) {
			t.Fatalf("object %d: approximation differs", i)
		}
		for j := range o.Poly.Shell {
			if o.Poly.Shell[j] != want.Poly.Shell[j] {
				t.Fatalf("object %d: vertex %d not bit-exact", i, j)
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("bad magic should fail")
	}
	ds, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Read(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Error("truncated input should fail")
	}
}

func TestPrecomputeError(t *testing.T) {
	// An object spanning nearly the whole space at a deep order exceeds
	// the raster window limit.
	space := geom.MBR{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	b := april.NewBuilder(space, 16)
	huge := datagen.Rect(geom.MBR{MinX: 0.001, MinY: 0.001, MaxX: 0.999, MaxY: 0.999})
	if _, err := Precompute("X", "huge", []*geom.Polygon{huge}, b); err == nil {
		t.Error("expected window-too-large failure")
	}
}
