package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/geom"
)

// Binary format: a small header, then per object the polygon rings
// followed by the encoded APRIL approximation. Written with buffered
// little-endian primitives; floats are bit-exact.
const (
	magic   = 0x53544a31 // "STJ1"
	version = 1
)

// Write serializes the dataset.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, d); err != nil {
		return err
	}
	for _, o := range d.Objects {
		if err := writeObject(bw, o); err != nil {
			return fmt.Errorf("dataset %s: object %d: %w", d.Name, o.ID, err)
		}
	}
	return bw.Flush()
}

func writeHeader(w io.Writer, d *Dataset) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(magic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(version)); err != nil {
		return err
	}
	if err := writeString(w, d.Name); err != nil {
		return err
	}
	if err := writeString(w, d.Entity); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint32(len(d.Objects)))
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func writeObject(w io.Writer, o *core.Object) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(1+len(o.Poly.Holes))); err != nil {
		return err
	}
	write := func(r geom.Ring) error {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(r))); err != nil {
			return err
		}
		for _, p := range r {
			if err := binary.Write(w, binary.LittleEndian, math.Float64bits(p.X)); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, math.Float64bits(p.Y)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(o.Poly.Shell); err != nil {
		return err
	}
	for _, h := range o.Poly.Holes {
		if err := write(h); err != nil {
			return err
		}
	}
	buf := o.Approx.AppendEncode(nil)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(buf))); err != nil {
		return err
	}
	_, err := w.Write(buf)
	return err
}

// Read parses a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("dataset: header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("dataset: bad magic %#x", m)
	}
	var v uint16
	if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("dataset: unsupported version %d", v)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	entity, err := readString(br)
	if err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	// Cap the preallocation: a corrupt header must not force gigabytes of
	// slice capacity before the stream runs dry.
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	d := &Dataset{Name: name, Entity: entity, Objects: make([]*core.Object, 0, capHint)}
	for i := uint32(0); i < n; i++ {
		o, err := readObject(br, int(i))
		if err != nil {
			return nil, fmt.Errorf("dataset %s: object %d: %w", name, i, err)
		}
		d.Objects = append(d.Objects, o)
	}
	return d, nil
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// maxRingVertices bounds a single ring read from disk (16 MB of
// coordinates): larger values indicate corruption, and failing early
// avoids adversarial multi-gigabyte allocations.
const maxRingVertices = 1 << 20

func readObject(r io.Reader, id int) (*core.Object, error) {
	var rings uint16
	if err := binary.Read(r, binary.LittleEndian, &rings); err != nil {
		return nil, err
	}
	if rings == 0 {
		return nil, fmt.Errorf("object has no rings")
	}
	readRing := func() (geom.Ring, error) {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n > maxRingVertices {
			return nil, fmt.Errorf("implausible ring size %d", n)
		}
		ring := make(geom.Ring, n)
		for i := range ring {
			var xb, yb uint64
			if err := binary.Read(r, binary.LittleEndian, &xb); err != nil {
				return nil, err
			}
			if err := binary.Read(r, binary.LittleEndian, &yb); err != nil {
				return nil, err
			}
			ring[i] = geom.Point{X: math.Float64frombits(xb), Y: math.Float64frombits(yb)}
		}
		return ring, nil
	}
	shell, err := readRing()
	if err != nil {
		return nil, err
	}
	holes := make([]geom.Ring, rings-1)
	for i := range holes {
		if holes[i], err = readRing(); err != nil {
			return nil, err
		}
	}
	var alen uint32
	if err := binary.Read(r, binary.LittleEndian, &alen); err != nil {
		return nil, err
	}
	if alen > 1<<28 {
		return nil, fmt.Errorf("implausible approximation size %d", alen)
	}
	abuf := make([]byte, alen)
	if _, err := io.ReadFull(r, abuf); err != nil {
		return nil, err
	}
	ap, _, err := april.DecodeApprox(abuf)
	if err != nil {
		return nil, err
	}
	poly := geom.NewPolygon(shell, holes...)
	return &core.Object{ID: id, Poly: poly, MBR: poly.Bounds(), Approx: ap}, nil
}
