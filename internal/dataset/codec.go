package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/geom"
)

// Binary format: a small header, then per object the polygon rings
// followed by the encoded APRIL approximation. Written with buffered
// little-endian primitives; floats are bit-exact.
const (
	magic   = 0x53544a31 // "STJ1"
	version = 1
)

// Write serializes the dataset.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, d); err != nil {
		return err
	}
	for _, o := range d.Objects {
		if err := writeObject(bw, o); err != nil {
			return fmt.Errorf("dataset %s: object %d: %w", d.Name, o.ID, err)
		}
	}
	return bw.Flush()
}

func writeHeader(w io.Writer, d *Dataset) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(magic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(version)); err != nil {
		return err
	}
	if err := writeString(w, d.Name); err != nil {
		return err
	}
	if err := writeString(w, d.Entity); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint32(len(d.Objects)))
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func writeObject(w io.Writer, o *core.Object) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(1+len(o.Poly.Holes))); err != nil {
		return err
	}
	write := func(r geom.Ring) error {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(r))); err != nil {
			return err
		}
		for _, p := range r {
			if err := binary.Write(w, binary.LittleEndian, math.Float64bits(p.X)); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, math.Float64bits(p.Y)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(o.Poly.Shell); err != nil {
		return err
	}
	for _, h := range o.Poly.Holes {
		if err := write(h); err != nil {
			return err
		}
	}
	buf := o.Approx.AppendEncode(nil)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(buf))); err != nil {
		return err
	}
	_, err := w.Write(buf)
	return err
}

// Read parses a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("dataset: header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("dataset: bad magic %#x", m)
	}
	var v uint16
	if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("dataset: unsupported version %d", v)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	entity, err := readString(br)
	if err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	// Cap the preallocation: a corrupt header must not force gigabytes of
	// slice capacity before the stream runs dry.
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	// Rings stream straight into one columnar arena; objects are
	// materialized after Finish, when the slab views and cached bounds
	// exist.
	var ab geom.ArenaBuilder
	approxes := make([]april.Approx, 0, capHint)
	for i := uint32(0); i < n; i++ {
		ap, err := readObjectInto(&ab, br)
		if err != nil {
			return nil, fmt.Errorf("dataset %s: object %d: %w", name, i, err)
		}
		approxes = append(approxes, ap)
	}
	arena := ab.Finish()
	d := &Dataset{Name: name, Entity: entity, Arena: arena,
		Objects: make([]*core.Object, 0, len(approxes))}
	for i, ap := range approxes {
		p := arena.Polygon(i)
		d.Objects = append(d.Objects, &core.Object{ID: i, Poly: p, MBR: p.Bounds(), Approx: ap})
	}
	return d, nil
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// maxRingVertices bounds a single ring read from disk (16 MB of
// coordinates): larger values indicate corruption, and failing early
// avoids adversarial multi-gigabyte allocations.
const maxRingVertices = 1 << 20

// readObjectInto streams one object's rings into the arena builder and
// returns its decoded approximation, with the same validation as the old
// heap reader. On error the builder holds a partial polygon and must be
// discarded (Read fails the whole dataset anyway).
func readObjectInto(b *geom.ArenaBuilder, r io.Reader) (april.Approx, error) {
	var rings uint16
	if err := binary.Read(r, binary.LittleEndian, &rings); err != nil {
		return april.Approx{}, err
	}
	if rings == 0 {
		return april.Approx{}, fmt.Errorf("object has no rings")
	}
	b.BeginPolygon()
	for ri := uint16(0); ri < rings; ri++ {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return april.Approx{}, err
		}
		if n > maxRingVertices {
			return april.Approx{}, fmt.Errorf("implausible ring size %d", n)
		}
		b.BeginRing()
		for i := uint32(0); i < n; i++ {
			var xb, yb uint64
			if err := binary.Read(r, binary.LittleEndian, &xb); err != nil {
				return april.Approx{}, err
			}
			if err := binary.Read(r, binary.LittleEndian, &yb); err != nil {
				return april.Approx{}, err
			}
			b.Vertex(math.Float64frombits(xb), math.Float64frombits(yb))
		}
	}
	var alen uint32
	if err := binary.Read(r, binary.LittleEndian, &alen); err != nil {
		return april.Approx{}, err
	}
	if alen > 1<<28 {
		return april.Approx{}, fmt.Errorf("implausible approximation size %d", alen)
	}
	abuf := make([]byte, alen)
	if _, err := io.ReadFull(r, abuf); err != nil {
		return april.Approx{}, err
	}
	ap, _, err := april.DecodeApprox(abuf)
	if err != nil {
		return april.Approx{}, err
	}
	return ap, nil
}
