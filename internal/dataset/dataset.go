// Package dataset bundles a named collection of polygons with their
// precomputed MBRs and APRIL approximations, tracks the storage sizes
// reported in Table 2, and serializes collections to a compact binary
// format so approximations are built once (the paper's preprocessing
// step).
package dataset

import (
	"fmt"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/geom"
)

// Dataset is a named, preprocessed object collection.
type Dataset struct {
	Name    string
	Entity  string // human-readable entity type, e.g. "EU Lakes"
	Objects []*core.Object
	// Arena is the columnar slab backing every object's geometry: one
	// flat coordinate array plus offset tables, built once at
	// preprocessing or load time. Objects' polygons are views into it.
	// Nil only for datasets assembled object-by-object outside this
	// package (legacy heap layout); all loaders here populate it.
	Arena *geom.Arena
}

// Precompute builds a Dataset: the polygons are flattened into one
// columnar arena, and every object gets its MBR and APRIL approximation.
func Precompute(name, entity string, polys []*geom.Polygon, b *april.Builder) (*Dataset, error) {
	arena := geom.BuildArena(polys)
	ds := &Dataset{Name: name, Entity: entity, Arena: arena,
		Objects: make([]*core.Object, 0, len(polys))}
	for i := range polys {
		o, err := core.NewObject(i, arena.Polygon(i), b)
		if err != nil {
			return nil, fmt.Errorf("dataset %s: %w", name, err)
		}
		ds.Objects = append(ds.Objects, o)
	}
	return ds, nil
}

// FromPrecomputed assembles a Dataset from already-built objects and the
// arena backing their geometries. This is the snapshot warm-start entry
// point: the decoder streams the geometry section into the arena and
// hands both over directly, with no rebuild-then-reflatten round trip.
func FromPrecomputed(name, entity string, objs []*core.Object, arena *geom.Arena) *Dataset {
	return &Dataset{Name: name, Entity: entity, Objects: objs, Arena: arena}
}

// Len returns the number of objects.
func (d *Dataset) Len() int { return len(d.Objects) }

// Merge folds a mutation delta into a fresh dataset: base objects
// whose position bit is set in dead are dropped, the survivors keep
// their ids, MBRs and APRIL approximations (geometry is identical, so
// nothing is re-rasterized), and the delta objects are appended in
// order. All geometry lands in one new columnar arena — contiguous
// runs of surviving base objects are moved with ArenaBuilder.AppendRange
// (slab copies, no per-vertex work); only delta objects are
// re-flattened. This is the offline half of an epoch compaction; the
// result is immutable like any built dataset.
func (d *Dataset) Merge(dead []uint64, delta []*core.Object) *Dataset {
	deadBit := func(i int) bool {
		w := i >> 6
		return w < len(dead) && dead[w]&(1<<(uint(i)&63)) != 0
	}
	var b geom.ArenaBuilder
	// The slab fast path requires the arena's polygons to be positional
	// with the object array (true for every dataset built here); fall
	// back to per-vertex appends otherwise.
	slab := d.Arena != nil && d.Arena.Len() == len(d.Objects)
	live := make([]*core.Object, 0, len(d.Objects)+len(delta))
	for i := 0; i < len(d.Objects); {
		if deadBit(i) {
			i++
			continue
		}
		j := i
		for j < len(d.Objects) && !deadBit(j) {
			j++
		}
		if slab {
			b.AppendRange(d.Arena, i, j)
		} else {
			for k := i; k < j; k++ {
				b.AddPolygon(d.Objects[k].Poly)
			}
		}
		live = append(live, d.Objects[i:j]...)
		i = j
	}
	for _, o := range delta {
		b.AddPolygon(o.Poly)
		live = append(live, o)
	}
	arena := b.Finish()
	objs := make([]*core.Object, len(live))
	for i, o := range live {
		objs[i] = &core.Object{ID: o.ID, Poly: arena.Polygon(i), MBR: o.MBR, Approx: o.Approx}
	}
	return &Dataset{Name: d.Name, Entity: d.Entity, Objects: objs, Arena: arena}
}

// MBRs returns the bounding boxes of all objects, in object order.
func (d *Dataset) MBRs() []geom.MBR {
	out := make([]geom.MBR, len(d.Objects))
	for i, o := range d.Objects {
		out[i] = o.MBR
	}
	return out
}

// Sizes reports the storage footprint of the dataset in bytes, matching
// Table 2's columns: exact polygons (16 bytes per vertex), MBRs (32 bytes
// each), and the encoded P+C interval lists.
type Sizes struct {
	Polygons int
	MBRs     int
	Approx   int
	Vertices int
}

// Sizes computes the storage accounting of the dataset.
func (d *Dataset) Sizes() Sizes {
	var s Sizes
	for _, o := range d.Objects {
		v := o.Poly.NumVertices()
		s.Vertices += v
		s.Polygons += 16 * v
		s.MBRs += 32
		s.Approx += o.Approx.Bytes()
	}
	return s
}
