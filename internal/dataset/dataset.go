// Package dataset bundles a named collection of polygons with their
// precomputed MBRs and APRIL approximations, tracks the storage sizes
// reported in Table 2, and serializes collections to a compact binary
// format so approximations are built once (the paper's preprocessing
// step).
package dataset

import (
	"fmt"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/geom"
)

// Dataset is a named, preprocessed object collection.
type Dataset struct {
	Name    string
	Entity  string // human-readable entity type, e.g. "EU Lakes"
	Objects []*core.Object
	// Arena is the columnar slab backing every object's geometry: one
	// flat coordinate array plus offset tables, built once at
	// preprocessing or load time. Objects' polygons are views into it.
	// Nil only for datasets assembled object-by-object outside this
	// package (legacy heap layout); all loaders here populate it.
	Arena *geom.Arena
}

// Precompute builds a Dataset: the polygons are flattened into one
// columnar arena, and every object gets its MBR and APRIL approximation.
func Precompute(name, entity string, polys []*geom.Polygon, b *april.Builder) (*Dataset, error) {
	arena := geom.BuildArena(polys)
	ds := &Dataset{Name: name, Entity: entity, Arena: arena,
		Objects: make([]*core.Object, 0, len(polys))}
	for i := range polys {
		o, err := core.NewObject(i, arena.Polygon(i), b)
		if err != nil {
			return nil, fmt.Errorf("dataset %s: %w", name, err)
		}
		ds.Objects = append(ds.Objects, o)
	}
	return ds, nil
}

// FromPrecomputed assembles a Dataset from already-built objects and the
// arena backing their geometries. This is the snapshot warm-start entry
// point: the decoder streams the geometry section into the arena and
// hands both over directly, with no rebuild-then-reflatten round trip.
func FromPrecomputed(name, entity string, objs []*core.Object, arena *geom.Arena) *Dataset {
	return &Dataset{Name: name, Entity: entity, Objects: objs, Arena: arena}
}

// Len returns the number of objects.
func (d *Dataset) Len() int { return len(d.Objects) }

// MBRs returns the bounding boxes of all objects, in object order.
func (d *Dataset) MBRs() []geom.MBR {
	out := make([]geom.MBR, len(d.Objects))
	for i, o := range d.Objects {
		out[i] = o.MBR
	}
	return out
}

// Sizes reports the storage footprint of the dataset in bytes, matching
// Table 2's columns: exact polygons (16 bytes per vertex), MBRs (32 bytes
// each), and the encoded P+C interval lists.
type Sizes struct {
	Polygons int
	MBRs     int
	Approx   int
	Vertices int
}

// Sizes computes the storage accounting of the dataset.
func (d *Dataset) Sizes() Sizes {
	var s Sizes
	for _, o := range d.Objects {
		v := o.Poly.NumVertices()
		s.Vertices += v
		s.Polygons += 16 * v
		s.MBRs += 32
		s.Approx += o.Approx.Bytes()
	}
	return s
}
