package dataset

import (
	"bytes"
	"testing"

	"repro/internal/april"
	"repro/internal/datagen"
)

// FuzzRead checks the binary dataset reader never panics on corrupted
// input — truncations, bit flips, and adversarial headers all must
// surface as errors.
func FuzzRead(f *testing.F) {
	suite := datagen.NewSuite(3, 0.01)
	b := april.NewBuilder(suite.Space, 9)
	ds, err := Precompute("OLE", "EU Lakes", suite.Sets["OLE"][:3], b)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte{})
	corrupted := append([]byte(nil), valid...)
	corrupted[10] ^= 0xff
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent.
		if got.Len() != len(got.Objects) {
			t.Fatal("inconsistent length")
		}
		for _, o := range got.Objects {
			if o.Poly == nil || len(o.Poly.Shell) == 0 {
				t.Fatal("accepted object without geometry")
			}
			_ = o.MBR
		}
	})
}
