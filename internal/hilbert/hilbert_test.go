package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadOrder(t *testing.T) {
	for _, o := range []uint{0, 32, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", o)
				}
			}()
			New(o)
		}()
	}
}

func TestAccessors(t *testing.T) {
	c := New(4)
	if c.Order() != 4 || c.Side() != 16 || c.NumCells() != 256 {
		t.Errorf("order=%d side=%d cells=%d", c.Order(), c.Side(), c.NumCells())
	}
}

// TestOrder1 checks the base case against the canonical U-shape.
func TestOrder1(t *testing.T) {
	c := New(1)
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {0, 1}: 1, {1, 1}: 2, {1, 0}: 3,
	}
	for xy, d := range want {
		if got := c.D(xy[0], xy[1]); got != d {
			t.Errorf("D(%d,%d) = %d, want %d", xy[0], xy[1], got, d)
		}
		x, y := c.XY(d)
		if x != xy[0] || y != xy[1] {
			t.Errorf("XY(%d) = (%d,%d), want (%d,%d)", d, x, y, xy[0], xy[1])
		}
	}
}

// TestBijectionSmall exhaustively checks D∘XY = id and adjacency (the curve
// visits cells so consecutive ids are 4-neighbours) for small orders.
func TestBijectionSmall(t *testing.T) {
	for order := uint(1); order <= 6; order++ {
		c := New(order)
		px, py := c.XY(0)
		seen := make(map[uint64]bool, c.NumCells())
		for d := uint64(0); d < c.NumCells(); d++ {
			x, y := c.XY(d)
			if back := c.D(x, y); back != d {
				t.Fatalf("order %d: D(XY(%d)) = %d", order, d, back)
			}
			if seen[uint64(x)<<32|uint64(y)] {
				t.Fatalf("order %d: cell (%d,%d) visited twice", order, x, y)
			}
			seen[uint64(x)<<32|uint64(y)] = true
			if d > 0 {
				dx, dy := int64(x)-int64(px), int64(y)-int64(py)
				if dx*dx+dy*dy != 1 {
					t.Fatalf("order %d: ids %d,%d not adjacent", order, d-1, d)
				}
			}
			px, py = x, y
		}
	}
}

// TestBijection16 spot-checks the paper's 2^16 grid with random cells.
func TestBijection16(t *testing.T) {
	c := New(16)
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		x := uint32(rng.Intn(int(c.Side())))
		y := uint32(rng.Intn(int(c.Side())))
		d := c.D(x, y)
		if d >= c.NumCells() {
			return false
		}
		bx, by := c.XY(d)
		return bx == x && by == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestLocality checks the defining property that motivates Hilbert
// enumeration: nearby cells get nearer ids, on average, than under
// row-major order.
func TestLocality(t *testing.T) {
	c := New(10)
	rng := rand.New(rand.NewSource(8))
	var hilbertSum, rowMajorSum float64
	const n = 3000
	for i := 0; i < n; i++ {
		x := uint32(rng.Intn(int(c.Side() - 1)))
		y := uint32(rng.Intn(int(c.Side())))
		d1 := c.D(x, y)
		d2 := c.D(x+1, y)
		abs := func(a, b uint64) float64 {
			if a > b {
				return float64(a - b)
			}
			return float64(b - a)
		}
		hilbertSum += abs(d1, d2)
		r1 := uint64(y)*uint64(c.Side()) + uint64(x)
		r2 := uint64(y)*uint64(c.Side()) + uint64(x) + 1
		rowMajorSum += abs(r1, r2)
	}
	_ = rowMajorSum // horizontal neighbours are trivially adjacent row-major
	// Vertical neighbours: Hilbert should beat row-major by a wide margin.
	var hv, rv float64
	for i := 0; i < n; i++ {
		x := uint32(rng.Intn(int(c.Side())))
		y := uint32(rng.Intn(int(c.Side() - 1)))
		hv += absDiff(c.D(x, y), c.D(x, y+1))
		rv += float64(c.Side())
	}
	if hv >= rv {
		t.Errorf("hilbert vertical locality %.0f not better than row-major %.0f", hv, rv)
	}
}

func absDiff(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

// TestHierarchicalNesting verifies the property the adaptive-order APRIL
// builder relies on: the order-k cell containing a point occupies one
// contiguous id range of the order-o curve, obtained by bit shifting.
func TestHierarchicalNesting(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, pair := range [][2]uint{{3, 6}, {5, 9}, {8, 16}} {
		k, o := pair[0], pair[1]
		ck, co := New(k), New(o)
		shift := 2 * (o - k)
		f := func() bool {
			x := uint32(rng.Intn(int(co.Side())))
			y := uint32(rng.Intn(int(co.Side())))
			fine := co.D(x, y)
			coarse := ck.D(x>>(o-k), y>>(o-k))
			return fine>>shift == coarse
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
			t.Errorf("orders %d/%d: %v", k, o, err)
		}
	}
}
