// Package hilbert maps between 2D grid coordinates and positions along a
// Hilbert space-filling curve. The paper enumerates the cells of a
// 2^16 × 2^16 global grid with a Hilbert curve so that cells that are close
// in space receive close identifiers, which keeps the APRIL interval lists
// short.
package hilbert

// MaxOrder is the largest supported curve order (coordinates fit in 32 bits
// and distances in 64 bits).
const MaxOrder = 31

// Curve is a Hilbert curve of a fixed order covering a 2^order × 2^order
// grid.
type Curve struct {
	order uint
	side  uint32
}

// New returns a curve of the given order. Order o enumerates a 2^o × 2^o
// grid with ids in [0, 4^o).
func New(order uint) Curve {
	if order == 0 || order > MaxOrder {
		panic("hilbert: order out of range [1, 31]")
	}
	return Curve{order: order, side: 1 << order}
}

// Order returns the curve order.
func (c Curve) Order() uint { return c.order }

// Side returns the grid side length 2^order.
func (c Curve) Side() uint32 { return c.side }

// NumCells returns the total number of cells, 4^order.
func (c Curve) NumCells() uint64 { return uint64(c.side) * uint64(c.side) }

// D returns the Hilbert distance of cell (x, y). Both coordinates must be
// < Side().
func (c Curve) D(x, y uint32) uint64 {
	var d uint64
	for s := c.side >> 1; s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rot(s, x, y, rx, ry)
	}
	return d
}

// XY returns the cell coordinates at Hilbert distance d.
func (c Curve) XY(d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < c.side; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = rot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// rot rotates/flips a quadrant appropriately.
func rot(n, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = n - 1 - x
			y = n - 1 - y
		}
		x, y = y, x
	}
	return x, y
}
