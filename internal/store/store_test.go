package store

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geom"
)

func polys(t *testing.T, n int) []*geom.Polygon {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	out := make([]*geom.Polygon, n)
	for i := range out {
		if i%4 == 0 {
			out[i] = datagen.BlobWithHole(rng, geom.Point{X: 50, Y: 50}, 10, 24+rng.Intn(40))
		} else {
			out[i] = datagen.Blob(rng, geom.Point{X: 50, Y: 50}, 10, 8+rng.Intn(60))
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	ps := polys(t, 20)
	s := New(ps, 4)
	for i, want := range ps {
		got, err := s.Geometry(i)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumVertices() != want.NumVertices() || len(got.Holes) != len(want.Holes) {
			t.Fatalf("polygon %d structure changed", i)
		}
		for j := range got.Shell {
			if got.Shell[j] != want.Shell[j] {
				t.Fatalf("polygon %d vertex %d not bit-exact", i, j)
			}
		}
	}
}

func TestCacheAccounting(t *testing.T) {
	ps := polys(t, 10)
	s := New(ps, 3)
	if s.Len() != 10 || s.StoredBytes() == 0 {
		t.Fatal("store empty")
	}
	// First accesses: all misses.
	for i := 0; i < 3; i++ {
		if _, err := s.Geometry(i); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Loads != 3 || st.Hits != 0 {
		t.Fatalf("after cold reads: %+v", st)
	}
	// Re-reading cached entries: hits, no bytes.
	bytesBefore := st.BytesRead
	for i := 0; i < 3; i++ {
		if _, err := s.Geometry(i); err != nil {
			t.Fatal(err)
		}
	}
	st = s.Stats()
	if st.Hits != 3 || st.Loads != 3 || st.BytesRead != bytesBefore {
		t.Fatalf("after warm reads: %+v", st)
	}
	// Evict by loading beyond capacity, then re-read an evicted entry.
	if _, err := s.Geometry(5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Geometry(0); err != nil { // 0 was LRU -> evicted
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Loads != 5 {
		t.Fatalf("eviction not observed: %+v", st)
	}
	s.ResetStats()
	if s.Stats() != (IOStats{}) {
		t.Fatal("ResetStats failed")
	}
}

func TestNoCache(t *testing.T) {
	ps := polys(t, 4)
	s := New(ps, 0)
	for k := 0; k < 3; k++ {
		if _, err := s.Geometry(1); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Loads != 3 || st.Hits != 0 {
		t.Fatalf("cacheless store: %+v", st)
	}
}

func TestOutOfRange(t *testing.T) {
	s := New(polys(t, 2), 2)
	if _, err := s.Geometry(-1); err == nil {
		t.Error("negative id should fail")
	}
	if _, err := s.Geometry(2); err == nil {
		t.Error("out of range id should fail")
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		{1, 0, 0},                   // truncated header
		{0, 0, 0, 0},                // zero rings
		{1, 0, 0, 0, 9},             // truncated ring header
		{1, 0, 0, 0, 9, 0, 0, 0, 1}, // truncated ring data
	} {
		if _, err := decodePolygon(bad); err == nil {
			t.Errorf("decode of %v should fail", bad)
		}
	}
}
