package store

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/obs"
)

func polys(t *testing.T, n int) []*geom.Polygon {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	out := make([]*geom.Polygon, n)
	for i := range out {
		if i%4 == 0 {
			out[i] = datagen.BlobWithHole(rng, geom.Point{X: 50, Y: 50}, 10, 24+rng.Intn(40))
		} else {
			out[i] = datagen.Blob(rng, geom.Point{X: 50, Y: 50}, 10, 8+rng.Intn(60))
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	ps := polys(t, 20)
	s := New(ps, 4)
	for i, want := range ps {
		got, err := s.Geometry(i)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumVertices() != want.NumVertices() || len(got.Holes) != len(want.Holes) {
			t.Fatalf("polygon %d structure changed", i)
		}
		for j := range got.Shell {
			if got.Shell[j] != want.Shell[j] {
				t.Fatalf("polygon %d vertex %d not bit-exact", i, j)
			}
		}
	}
}

func TestCacheAccounting(t *testing.T) {
	ps := polys(t, 10)
	s := New(ps, 3)
	if s.Len() != 10 || s.StoredBytes() == 0 {
		t.Fatal("store empty")
	}
	// First accesses: all misses.
	for i := 0; i < 3; i++ {
		if _, err := s.Geometry(i); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Loads != 3 || st.Hits != 0 {
		t.Fatalf("after cold reads: %+v", st)
	}
	// Re-reading cached entries: hits, no bytes.
	bytesBefore := st.BytesRead
	for i := 0; i < 3; i++ {
		if _, err := s.Geometry(i); err != nil {
			t.Fatal(err)
		}
	}
	st = s.Stats()
	if st.Hits != 3 || st.Loads != 3 || st.BytesRead != bytesBefore {
		t.Fatalf("after warm reads: %+v", st)
	}
	// Evict by loading beyond capacity, then re-read an evicted entry.
	if _, err := s.Geometry(5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Geometry(0); err != nil { // 0 was LRU -> evicted
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Loads != 5 {
		t.Fatalf("eviction not observed: %+v", st)
	}
	s.ResetStats()
	if s.Stats() != (IOStats{}) {
		t.Fatal("ResetStats failed")
	}
}

// TestInstrumentedCounters scripts an access sequence against a
// capacity-2 cache and asserts the registry counters step exactly with
// it: cold misses, warm hits, and a miss+eviction round trip. The
// registry view must agree with IOStats at every step.
func TestInstrumentedCounters(t *testing.T) {
	ps := polys(t, 6)
	s := New(ps, 2)
	reg := obs.NewRegistry()
	s.Instrument(reg, "store")

	hits := reg.Counter("store_cache_hits_total")
	misses := reg.Counter("store_cache_misses_total")
	bytes := reg.Counter("store_read_bytes_total")
	cached := reg.Gauge("store_cached_objects")
	if cached.Value() != 0 {
		t.Fatalf("fresh store reports %d cached objects", cached.Value())
	}
	blobSize := func(id int) int64 { return int64(len(EncodePolygon(ps[id]))) }

	type step struct {
		id                  int
		hits, misses, bytes int64
		cached              int64
	}
	script := []step{
		// Cold reads fill the cache: misses with byte reads.
		{id: 0, hits: 0, misses: 1, bytes: blobSize(0), cached: 1},
		{id: 1, hits: 0, misses: 2, bytes: blobSize(0) + blobSize(1), cached: 2},
		// Warm reads: hits, no new bytes.
		{id: 0, hits: 1, misses: 2, bytes: blobSize(0) + blobSize(1), cached: 2},
		{id: 1, hits: 2, misses: 2, bytes: blobSize(0) + blobSize(1), cached: 2},
		// Capacity 2: loading id 2 evicts the LRU entry (id 0).
		{id: 2, hits: 2, misses: 3, bytes: blobSize(0) + blobSize(1) + blobSize(2), cached: 2},
		// Re-reading the evicted id 0 must miss and re-read its bytes.
		{id: 0, hits: 2, misses: 4, bytes: 2*blobSize(0) + blobSize(1) + blobSize(2), cached: 2},
		// Re-loading id 0 evicted id 1 in turn, so reading 1 misses again:
		// three generations of eviction.
		{id: 1, hits: 2, misses: 5, bytes: 2*blobSize(0) + 2*blobSize(1) + blobSize(2), cached: 2},
	}
	for i, st := range script {
		if _, err := s.Geometry(st.id); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if hits.Value() != st.hits || misses.Value() != st.misses || bytes.Value() != st.bytes {
			t.Fatalf("step %d (read %d): hits=%d misses=%d bytes=%d, want %d/%d/%d",
				i, st.id, hits.Value(), misses.Value(), bytes.Value(), st.hits, st.misses, st.bytes)
		}
		if cached.Value() != st.cached {
			t.Fatalf("step %d: cached gauge = %d, want %d", i, cached.Value(), st.cached)
		}
		io := s.Stats()
		if int64(io.Hits) != st.hits || int64(io.Loads) != st.misses || io.BytesRead != st.bytes {
			t.Fatalf("step %d: IOStats %+v disagrees with registry", i, io)
		}
	}

	// ResetStats clears the struct view but keeps the registry counters
	// monotone, as documented.
	s.ResetStats()
	if s.Stats() != (IOStats{}) {
		t.Fatal("ResetStats failed")
	}
	if misses.Value() == 0 {
		t.Fatal("registry counters must survive ResetStats")
	}
}

func TestNoCache(t *testing.T) {
	ps := polys(t, 4)
	s := New(ps, 0)
	for k := 0; k < 3; k++ {
		if _, err := s.Geometry(1); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Loads != 3 || st.Hits != 0 {
		t.Fatalf("cacheless store: %+v", st)
	}
}

func TestOutOfRange(t *testing.T) {
	s := New(polys(t, 2), 2)
	if _, err := s.Geometry(-1); err == nil {
		t.Error("negative id should fail")
	}
	if _, err := s.Geometry(2); err == nil {
		t.Error("out of range id should fail")
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		{1, 0, 0},                   // truncated header
		{0, 0, 0, 0},                // zero rings
		{1, 0, 0, 0, 9},             // truncated ring header
		{1, 0, 0, 0, 9, 0, 0, 0, 1}, // truncated ring data
	} {
		if _, err := DecodePolygon(bad); err == nil {
			t.Errorf("decode of %v should fail", bad)
		}
	}
}
