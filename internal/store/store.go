// Package store simulates the disk-resident geometry storage of a
// spatial database: exact polygon geometries live in serialized form and
// are decoded on demand through a bounded LRU cache, with byte-accurate
// I/O accounting. The paper's Sec. 4.3 observes that the P+C pipeline
// "avoids loading full object geometries" for most comparisons — this
// package turns that claim into measured bytes (see the harness's
// data-access experiment).
package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/obs"
)

// IOStats counts storage accesses.
type IOStats struct {
	// Loads is the number of geometry fetches that missed the cache and
	// had to be decoded from storage.
	Loads int
	// Hits is the number of fetches served by the cache.
	Hits int
	// BytesRead is the total serialized bytes decoded from storage.
	BytesRead int64
}

// Store is a read-only geometry store with an LRU decode cache.
type Store struct {
	blobs    [][]byte
	cache    map[int]*list.Element
	order    *list.List // front = most recently used
	capacity int
	stats    IOStats

	// Registry counters, nil until Instrument: one pointer check per
	// access when observability is off.
	obsHits   *obs.Counter
	obsLoads  *obs.Counter
	obsBytes  *obs.Counter
	obsCached *obs.Gauge
}

type cacheEntry struct {
	id   int
	poly *geom.Polygon
}

// New creates a store holding the given polygons in serialized form.
// cacheSize bounds the number of decoded geometries kept in memory;
// 0 disables caching entirely.
func New(polys []*geom.Polygon, cacheSize int) *Store {
	s := &Store{
		blobs:    make([][]byte, len(polys)),
		cache:    make(map[int]*list.Element),
		order:    list.New(),
		capacity: cacheSize,
	}
	for i, p := range polys {
		s.blobs[i] = EncodePolygon(p)
	}
	return s
}

// Len returns the number of stored geometries.
func (s *Store) Len() int { return len(s.blobs) }

// StoredBytes returns the total serialized size.
func (s *Store) StoredBytes() int64 {
	var n int64
	for _, b := range s.blobs {
		n += int64(len(b))
	}
	return n
}

// Stats returns the access counters.
func (s *Store) Stats() IOStats { return s.stats }

// Instrument mirrors the store's access counters into reg under prefix
// (e.g. "store" -> store_cache_hits_total, store_cache_misses_total,
// store_read_bytes_total, store_cached_objects). Counters accumulate
// from the moment of the call; ResetStats does not clear them.
func (s *Store) Instrument(reg *obs.Registry, prefix string) {
	s.obsHits = reg.Counter(prefix + "_cache_hits_total")
	s.obsLoads = reg.Counter(prefix + "_cache_misses_total")
	s.obsBytes = reg.Counter(prefix + "_read_bytes_total")
	s.obsCached = reg.Gauge(prefix + "_cached_objects")
	s.obsCached.Set(int64(s.order.Len()))
}

// ResetStats clears the access counters (the cache is kept).
func (s *Store) ResetStats() { s.stats = IOStats{} }

// Geometry fetches and decodes polygon id, through the cache.
func (s *Store) Geometry(id int) (*geom.Polygon, error) {
	if id < 0 || id >= len(s.blobs) {
		return nil, fmt.Errorf("store: id %d out of range [0,%d)", id, len(s.blobs))
	}
	if el, ok := s.cache[id]; ok {
		s.stats.Hits++
		if s.obsHits != nil {
			s.obsHits.Inc()
		}
		s.order.MoveToFront(el)
		return el.Value.(*cacheEntry).poly, nil
	}
	s.stats.Loads++
	s.stats.BytesRead += int64(len(s.blobs[id]))
	if s.obsLoads != nil {
		s.obsLoads.Inc()
		s.obsBytes.Add(int64(len(s.blobs[id])))
	}
	poly, err := DecodePolygon(s.blobs[id])
	if err != nil {
		return nil, fmt.Errorf("store: id %d: %w", id, err)
	}
	if s.capacity > 0 {
		s.cache[id] = s.order.PushFront(&cacheEntry{id: id, poly: poly})
		for s.order.Len() > s.capacity {
			back := s.order.Back()
			delete(s.cache, back.Value.(*cacheEntry).id)
			s.order.Remove(back)
		}
		if s.obsCached != nil {
			s.obsCached.Set(int64(s.order.Len()))
		}
	}
	return poly, nil
}

// EncodePolygon serializes a polygon as ring count, then per ring a
// vertex count and flat little-endian float64 coordinates. The format
// is the store's on-"disk" geometry blob; the snapshot layer reuses it
// so a dataset's geometry section is byte-identical to what the store
// would hold.
func EncodePolygon(p *geom.Polygon) []byte {
	size := 4
	rings := 1 + len(p.Holes)
	size += rings * 4
	size += 16 * p.NumVertices()
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rings))
	appendRing := func(r geom.Ring) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r)))
		for _, pt := range r {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pt.X))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pt.Y))
		}
	}
	appendRing(p.Shell)
	for _, h := range p.Holes {
		appendRing(h)
	}
	return buf
}

// DecodePolygonInto parses a blob written by EncodePolygon directly into
// an arena builder, with the same bounds checks and error strings as
// DecodePolygon. This is the warm-start path: a snapshot's geometry
// section streams straight into one columnar slab, with no intermediate
// heap polygon to build and re-flatten. Orientation is normalized by the
// builder's Finish exactly as NewPolygon would, so the decoded views are
// bit-identical to DecodePolygon's output. On error the builder holds a
// partial polygon and must be discarded.
func DecodePolygonInto(b *geom.ArenaBuilder, buf []byte) error {
	if len(buf) < 4 {
		return fmt.Errorf("truncated header")
	}
	rings := binary.LittleEndian.Uint32(buf)
	if rings == 0 {
		return fmt.Errorf("polygon with no rings")
	}
	off := 4
	b.BeginPolygon()
	for r := uint32(0); r < rings; r++ {
		if off+4 > len(buf) {
			return fmt.Errorf("truncated ring header")
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+16*n > len(buf) {
			return fmt.Errorf("truncated ring data")
		}
		b.BeginRing()
		for i := 0; i < n; i++ {
			x := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			y := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
			b.Vertex(x, y)
			off += 16
		}
	}
	return nil
}

// DecodePolygon parses a blob written by EncodePolygon. Every length is
// bounds-checked against the buffer, so truncated or bit-rotted blobs
// fail with an error instead of panicking — the snapshot loader depends
// on that to classify corruption.
func DecodePolygon(buf []byte) (*geom.Polygon, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("truncated header")
	}
	rings := binary.LittleEndian.Uint32(buf)
	off := 4
	readRing := func() (geom.Ring, error) {
		if off+4 > len(buf) {
			return nil, fmt.Errorf("truncated ring header")
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+16*n > len(buf) {
			return nil, fmt.Errorf("truncated ring data")
		}
		r := make(geom.Ring, n)
		for i := 0; i < n; i++ {
			x := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			y := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
			r[i] = geom.Point{X: x, Y: y}
			off += 16
		}
		return r, nil
	}
	if rings == 0 {
		return nil, fmt.Errorf("polygon with no rings")
	}
	shell, err := readRing()
	if err != nil {
		return nil, err
	}
	var holes []geom.Ring
	if rings > 1 {
		holes = make([]geom.Ring, rings-1)
	}
	for i := range holes {
		if holes[i], err = readRing(); err != nil {
			return nil, err
		}
	}
	return geom.NewPolygon(shell, holes...), nil
}
