package store

import (
	"reflect"
	"testing"

	"repro/internal/geom"
)

// TestDecodePolygonIntoMatchesHeap pins the arena decode path to the
// heap decode path: for every encoded polygon, the arena-built views
// must be bit-identical to DecodePolygon's output (vertices, ring
// structure, bounds, area), since the snapshot loader now feeds
// warm starts exclusively through the arena.
func TestDecodePolygonIntoMatchesHeap(t *testing.T) {
	ps := polys(t, 24)
	var ab geom.ArenaBuilder
	heap := make([]*geom.Polygon, len(ps))
	for i, p := range ps {
		blob := EncodePolygon(p)
		var err error
		if heap[i], err = DecodePolygon(blob); err != nil {
			t.Fatal(err)
		}
		if err := DecodePolygonInto(&ab, blob); err != nil {
			t.Fatal(err)
		}
	}
	arena := ab.Finish()
	if arena.Len() != len(ps) {
		t.Fatalf("arena has %d polygons, want %d", arena.Len(), len(ps))
	}
	for i, hp := range heap {
		ap := arena.Polygon(i)
		if !reflect.DeepEqual(append(geom.Ring{}, hp.Shell...), append(geom.Ring{}, ap.Shell...)) {
			t.Fatalf("polygon %d: shell differs between heap and arena decode", i)
		}
		if len(hp.Holes) != len(ap.Holes) {
			t.Fatalf("polygon %d: hole count %d vs %d", i, len(hp.Holes), len(ap.Holes))
		}
		for j := range hp.Holes {
			if !reflect.DeepEqual(append(geom.Ring{}, hp.Holes[j]...), append(geom.Ring{}, ap.Holes[j]...)) {
				t.Fatalf("polygon %d hole %d differs", i, j)
			}
		}
		if hp.Bounds() != ap.Bounds() || hp.Area() != ap.Area() {
			t.Fatalf("polygon %d: bounds/area differ", i)
		}
	}
}

// TestDecodePolygonIntoErrors mirrors TestDecodeErrors for the arena
// path: identical rejection of truncated and ringless blobs.
func TestDecodePolygonIntoErrors(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		{1, 0, 0},                   // truncated header
		{0, 0, 0, 0},                // zero rings
		{1, 0, 0, 0, 9},             // truncated ring header
		{1, 0, 0, 0, 9, 0, 0, 0, 1}, // truncated ring data
	} {
		var ab geom.ArenaBuilder
		if err := DecodePolygonInto(&ab, bad); err == nil {
			t.Errorf("arena decode of %v should fail", bad)
		}
	}
}

// FuzzDecodeAgreement feeds arbitrary bytes to both decoders: they must
// agree on accept/reject, and on accept the geometries must match.
func FuzzDecodeAgreement(f *testing.F) {
	f.Add(EncodePolygon(geom.NewPolygon(geom.Ring{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 4}})))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, blob []byte) {
		hp, herr := DecodePolygon(blob)
		var ab geom.ArenaBuilder
		aerr := DecodePolygonInto(&ab, blob)
		if (herr == nil) != (aerr == nil) {
			t.Fatalf("decoders disagree: heap err %v, arena err %v", herr, aerr)
		}
		if herr != nil {
			return
		}
		ap := arenaFirst(ab.Finish())
		if hp.NumVertices() != ap.NumVertices() || len(hp.Holes) != len(ap.Holes) {
			t.Fatalf("structure differs: %d/%d verts, %d/%d holes",
				hp.NumVertices(), ap.NumVertices(), len(hp.Holes), len(ap.Holes))
		}
		for j := range hp.Shell {
			if hp.Shell[j] != ap.Shell[j] {
				t.Fatalf("shell vertex %d differs", j)
			}
		}
	})
}

func arenaFirst(a *geom.Arena) *geom.Polygon { return a.Polygon(0) }
