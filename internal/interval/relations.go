package interval

// The four merge-join relations below are the innermost loops of the
// intermediate filter: every candidate pair runs at least one of them,
// often several. They are written as branch-reduced sorted-run
// merge-join kernels: the only data-dependent branches left are the
// verdict exits; run advancement is arithmetic (b2i compiles to
// SETcc/CMOV, not a jump), so the loops do not stall on the branch
// predictor for adversarial interleavings. None of them allocates or
// dispatches through an interface; inputs are plain normalized slices.
//
// Each kernel is cross-checked against the straightforward reference
// implementation on randomized and fuzzed inputs (relations_test.go,
// kernels_test.go) and guarded by a zero-allocation test wired into
// `make bench`.

// b2i converts a bool to 0/1 without a branch.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Overlap reports whether lists x and y share at least one cell id
// ('X,Y overlap' in the paper). Single merge scan, O(|x| + |y|).
func Overlap(x, y List) bool {
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		a, b := x[i], y[j]
		if a.Start < b.End && b.Start < a.End {
			return true
		}
		// No overlap: exactly one list's run ends at or before the other
		// run's start; advancing the run with the smaller End is the same
		// decision without comparing against Start.
		adv := b2i(a.End <= b.End)
		i += adv
		j += 1 - adv
	}
	return false
}

// Match reports whether the two lists are identical ('X,Y match').
func Match(x, y List) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// Inside reports whether every interval of x is contained in some interval
// of y ('X inside Y'). Because both lists are normalized, each x-interval
// can only be covered by the unique y-interval whose End first reaches its
// End, so one forward merge decides all of x.
func Inside(x, y List) bool {
	i, j := 0, 0
	for i < len(x) {
		if j == len(y) {
			return false
		}
		a, b := x[i], y[j]
		covered := b.Start <= a.Start && a.End <= b.End
		if !covered && b.End >= a.End {
			// The only candidate y-run cannot cover this x-interval.
			return false
		}
		// covered -> consume the x-interval; otherwise b.End < a.End ->
		// advance y to the next candidate run.
		i += b2i(covered)
		j += b2i(!covered)
	}
	return true
}

// Contains reports whether every interval of y is contained in some
// interval of x ('X contains Y').
func Contains(x, y List) bool { return Inside(y, x) }

// Union returns the normalized union of the two lists.
func Union(x, y List) List {
	merged := make([]Interval, 0, len(x)+len(y))
	merged = append(merged, x...)
	merged = append(merged, y...)
	return Normalize(merged)
}

// Intersect returns the normalized intersection of the two lists.
func Intersect(x, y List) List {
	var out List
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		a, b := x[i], y[j]
		lo, hi := a.Start, a.End
		if b.Start > lo {
			lo = b.Start
		}
		if b.End < hi {
			hi = b.End
		}
		if lo < hi {
			out = append(out, Interval{lo, hi})
		}
		if a.End <= b.End {
			i++
		} else {
			j++
		}
	}
	return out
}

// Subtract returns the normalized difference x \ y.
func Subtract(x, y List) List {
	var out List
	j := 0
	for _, iv := range x {
		cur := iv.Start
		for j < len(y) && y[j].End <= cur {
			j++
		}
		k := j
		for k < len(y) && y[k].Start < iv.End {
			if y[k].Start > cur {
				out = append(out, Interval{cur, y[k].Start})
			}
			if y[k].End > cur {
				cur = y[k].End
			}
			k++
		}
		if cur < iv.End {
			out = append(out, Interval{cur, iv.End})
		}
	}
	return out
}
