package interval

// Overlap reports whether lists x and y share at least one cell id
// ('X,Y overlap' in the paper). Single merge scan, O(|x| + |y|).
func Overlap(x, y List) bool {
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if x[i].Overlaps(y[j]) {
			return true
		}
		if x[i].End <= y[j].Start {
			i++
		} else {
			j++
		}
	}
	return false
}

// Match reports whether the two lists are identical ('X,Y match').
func Match(x, y List) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// Inside reports whether every interval of x is contained in some interval
// of y ('X inside Y'). Because both lists are normalized, each x-interval
// can be checked against the unique y-interval whose End exceeds its Start.
func Inside(x, y List) bool {
	if len(x) == 0 {
		return true
	}
	j := 0
	for _, iv := range x {
		for j < len(y) && y[j].End < iv.End {
			j++
		}
		if j == len(y) || !y[j].ContainsIv(iv) {
			return false
		}
	}
	return true
}

// Contains reports whether every interval of y is contained in some
// interval of x ('X contains Y').
func Contains(x, y List) bool { return Inside(y, x) }

// Union returns the normalized union of the two lists.
func Union(x, y List) List {
	merged := make([]Interval, 0, len(x)+len(y))
	merged = append(merged, x...)
	merged = append(merged, y...)
	return Normalize(merged)
}

// Intersect returns the normalized intersection of the two lists.
func Intersect(x, y List) List {
	var out List
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		a, b := x[i], y[j]
		lo, hi := a.Start, a.End
		if b.Start > lo {
			lo = b.Start
		}
		if b.End < hi {
			hi = b.End
		}
		if lo < hi {
			out = append(out, Interval{lo, hi})
		}
		if a.End <= b.End {
			i++
		} else {
			j++
		}
	}
	return out
}

// Subtract returns the normalized difference x \ y.
func Subtract(x, y List) List {
	var out List
	j := 0
	for _, iv := range x {
		cur := iv.Start
		for j < len(y) && y[j].End <= cur {
			j++
		}
		k := j
		for k < len(y) && y[k].Start < iv.End {
			if y[k].Start > cur {
				out = append(out, Interval{cur, y[k].Start})
			}
			if y[k].End > cur {
				cur = y[k].End
			}
			k++
		}
		if cur < iv.End {
			out = append(out, Interval{cur, iv.End})
		}
	}
	return out
}
