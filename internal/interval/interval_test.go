package interval

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestFromCells(t *testing.T) {
	got := FromCells([]uint64{5, 1, 2, 3, 9, 10, 2})
	want := List{{1, 4}, {5, 6}, {9, 11}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FromCells = %v, want %v", got, want)
	}
	if FromCells(nil) != nil {
		t.Error("FromCells(nil) should be nil")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]Interval{{5, 8}, {1, 3}, {3, 5}, {10, 10}, {12, 14}})
	want := List{{1, 8}, {12, 14}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Normalize = %v, want %v", got, want)
	}
	if !got.IsValid() {
		t.Error("normalized list should be valid")
	}
	bad := List{{3, 2}}
	if bad.IsValid() {
		t.Error("reversed interval should be invalid")
	}
	adj := List{{1, 3}, {3, 5}}
	if adj.IsValid() {
		t.Error("adjacent intervals should be invalid")
	}
}

func TestListQueries(t *testing.T) {
	l := List{{2, 5}, {8, 9}, {20, 30}}
	if l.NumCells() != 3+1+10 {
		t.Errorf("NumCells = %d", l.NumCells())
	}
	for _, c := range []uint64{2, 4, 8, 20, 29} {
		if !l.ContainsCell(c) {
			t.Errorf("should contain %d", c)
		}
	}
	for _, c := range []uint64{0, 5, 7, 9, 19, 30, 100} {
		if l.ContainsCell(c) {
			t.Errorf("should not contain %d", c)
		}
	}
	cells := l.Cells()
	if len(cells) != 14 || cells[0] != 2 || cells[13] != 29 {
		t.Errorf("Cells = %v", cells)
	}
	c := l.Clone()
	c[0].Start = 99
	if l[0].Start == 99 {
		t.Error("Clone aliases the original")
	}
}

func TestIntervalPrimitives(t *testing.T) {
	iv := Interval{5, 10}
	if iv.Len() != 5 {
		t.Errorf("Len = %d", iv.Len())
	}
	if !iv.Contains(5) || iv.Contains(10) {
		t.Error("half-open containment wrong")
	}
	if !iv.ContainsIv(Interval{6, 9}) || iv.ContainsIv(Interval{6, 11}) {
		t.Error("ContainsIv wrong")
	}
	if !iv.Overlaps(Interval{9, 20}) || iv.Overlaps(Interval{10, 20}) {
		t.Error("Overlaps must treat [5,10) and [10,20) as disjoint")
	}
}

// randList generates a random normalized list over [0, space).
func randList(rng *rand.Rand, space uint64, maxIvs int) List {
	n := rng.Intn(maxIvs + 1)
	ivs := make([]Interval, 0, n)
	for i := 0; i < n; i++ {
		s := rng.Uint64() % space
		e := s + 1 + rng.Uint64()%8
		ivs = append(ivs, Interval{s, e})
	}
	return Normalize(ivs)
}

func cellSet(l List) map[uint64]bool {
	m := make(map[uint64]bool)
	for _, c := range l.Cells() {
		m[c] = true
	}
	return m
}

// TestRelationsAgainstBruteForce is the core property test: every relation
// must agree with its set-theoretic definition over materialized cells.
func TestRelationsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		x := randList(rng, 120, 8)
		y := randList(rng, 120, 8)
		xs, ys := cellSet(x), cellSet(y)

		bruteOverlap := false
		for c := range xs {
			if ys[c] {
				bruteOverlap = true
				break
			}
		}
		if got := Overlap(x, y); got != bruteOverlap {
			t.Fatalf("Overlap(%v, %v) = %v, want %v", x, y, got, bruteOverlap)
		}

		bruteMatch := len(xs) == len(ys)
		for c := range xs {
			if !ys[c] {
				bruteMatch = false
				break
			}
		}
		if got := Match(x, y); got != bruteMatch {
			t.Fatalf("Match(%v, %v) = %v, want %v", x, y, got, bruteMatch)
		}

		// 'X inside Y' is per-interval containment, strictly stronger than
		// cell-subset when an x-interval spans a gap of y — but since both
		// lists are normalized, cell-subset and interval containment
		// coincide: an x-interval covering a y-gap would contain a cell not
		// in y.
		bruteInside := true
		for c := range xs {
			if !ys[c] {
				bruteInside = false
				break
			}
		}
		if got := Inside(x, y); got != bruteInside {
			t.Fatalf("Inside(%v, %v) = %v, want %v", x, y, got, bruteInside)
		}
		if got := Contains(y, x); got != bruteInside {
			t.Fatalf("Contains(%v, %v) = %v, want %v", y, x, got, bruteInside)
		}
	}
}

func TestSetOpsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 2000; trial++ {
		x := randList(rng, 100, 6)
		y := randList(rng, 100, 6)
		xs, ys := cellSet(x), cellSet(y)

		var wantU, wantI, wantD []uint64
		for c := uint64(0); c < 120; c++ {
			if xs[c] || ys[c] {
				wantU = append(wantU, c)
			}
			if xs[c] && ys[c] {
				wantI = append(wantI, c)
			}
			if xs[c] && !ys[c] {
				wantD = append(wantD, c)
			}
		}
		if got := Union(x, y).Cells(); !equalCells(got, wantU) {
			t.Fatalf("Union(%v,%v) = %v, want %v", x, y, got, wantU)
		}
		gi := Intersect(x, y)
		if !gi.IsValid() {
			t.Fatalf("Intersect produced invalid list %v", gi)
		}
		if got := gi.Cells(); !equalCells(got, wantI) {
			t.Fatalf("Intersect(%v,%v) = %v, want %v", x, y, got, wantI)
		}
		gd := Subtract(x, y)
		if !gd.IsValid() {
			t.Fatalf("Subtract produced invalid list %v", gd)
		}
		if got := gd.Cells(); !equalCells(got, wantD) {
			t.Fatalf("Subtract(%v,%v) = %v, want %v", x, y, got, wantD)
		}
	}
}

func equalCells(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRelationAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1000; trial++ {
		x := randList(rng, 80, 6)
		y := randList(rng, 80, 6)
		if Match(x, y) && (!Inside(x, y) || !Contains(x, y)) {
			t.Fatalf("match must imply inside and contains: %v %v", x, y)
		}
		if Inside(x, y) && len(x) > 0 && !Overlap(x, y) {
			t.Fatalf("non-empty inside must imply overlap: %v %v", x, y)
		}
		if Inside(x, y) && Contains(x, y) && !Match(x, y) {
			t.Fatalf("inside+contains must imply match: %v %v", x, y)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 500; trial++ {
		l := randList(rng, 1_000_000, 20)
		buf := l.AppendEncode(nil)
		if len(buf) != l.EncodedSize() {
			t.Fatalf("EncodedSize mismatch")
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		if len(l) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, l) {
			t.Fatalf("round trip: got %v, want %v", got, l)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("empty buffer should fail")
	}
	// Header says 3 intervals but data is truncated.
	buf := List{{1, 5}, {9, 12}, {20, 21}}.AppendEncode(nil)
	if _, _, err := Decode(buf[:len(buf)-2]); err == nil {
		t.Error("truncated buffer should fail")
	}
}
