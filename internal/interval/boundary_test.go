package interval

import "testing"

const maxID = ^uint64(0)

// The top of the cell-id space is the classic half-open-interval trap:
// an interval covering id 2^64-1 would need End = 2^64, which overflows
// to 0 and turns the interval invisible to every merge-join relation.
// FromCells therefore reserves the top id and panics instead of
// producing a silently-empty list.
func TestFromCellsReservedTopID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromCells(^uint64(0)) did not panic")
		}
	}()
	FromCells([]uint64{maxID})
}

func TestFromCellsReservedTopIDAmongOthers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromCells with a reserved id did not panic")
		}
	}()
	FromCells([]uint64{1, 2, maxID, 3})
}

// Ids right below the reserved top must round-trip exactly: End saturates
// at the maximum representable value without overflowing.
func TestFromCellsTopOfRange(t *testing.T) {
	l := FromCells([]uint64{maxID - 1, maxID - 2, maxID - 2, maxID - 5})
	if !l.IsValid() {
		t.Fatalf("list not normalized: %v", l)
	}
	want := List{{maxID - 5, maxID - 4}, {maxID - 2, maxID}}
	if len(l) != len(want) {
		t.Fatalf("got %v, want %v", l, want)
	}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("got %v, want %v", l, want)
		}
	}
	if !l.ContainsCell(maxID-1) || !l.ContainsCell(maxID-2) || l.ContainsCell(maxID-3) {
		t.Fatalf("membership wrong near top: %v", l)
	}
	if n := l.NumCells(); n != 3 {
		t.Fatalf("NumCells = %d, want 3", n)
	}
}

// Relations on lists whose End is the maximum representable value.
func TestRelationsAtTopOfRange(t *testing.T) {
	top := List{{maxID - 4, maxID}}
	sub := List{{maxID - 2, maxID - 1}}
	below := List{{0, 4}}
	if !Overlap(top, sub) || !Overlap(sub, top) {
		t.Error("Overlap failed at top of range")
	}
	if Overlap(top, below) {
		t.Error("Overlap(top, below) = true")
	}
	if !Inside(sub, top) || Inside(top, sub) {
		t.Error("Inside wrong at top of range")
	}
	if !Contains(top, sub) || Contains(sub, top) {
		t.Error("Contains wrong at top of range")
	}
	if !Match(top, top.Clone()) || Match(top, sub) {
		t.Error("Match wrong at top of range")
	}
	if got := Union(top, sub); len(got) != 1 || got[0] != top[0] {
		t.Errorf("Union = %v, want %v", got, top)
	}
	if got := Intersect(top, sub); len(got) != 1 || got[0] != sub[0] {
		t.Errorf("Intersect = %v, want %v", got, sub)
	}
	if got := Subtract(top, sub); len(got) != 2 ||
		got[0] != (Interval{maxID - 4, maxID - 2}) || got[1] != (Interval{maxID - 1, maxID}) {
		t.Errorf("Subtract = %v", got)
	}
}

func TestNormalizeTopOfRange(t *testing.T) {
	got := Normalize([]Interval{{maxID - 2, maxID}, {maxID - 5, maxID - 1}})
	if len(got) != 1 || got[0] != (Interval{maxID - 5, maxID}) {
		t.Fatalf("Normalize = %v", got)
	}
}

// Empty lists denote empty cell sets; the four merge-join relations must
// follow set semantics on them. These were audited rather than fixed —
// the table pins the behavior so it cannot regress.
func TestRelationsEmptyLists(t *testing.T) {
	some := List{{3, 7}}
	cases := []struct {
		name string
		got  bool
		want bool
	}{
		{"Overlap(∅,∅)", Overlap(nil, nil), false},
		{"Overlap(∅,y)", Overlap(nil, some), false},
		{"Overlap(x,∅)", Overlap(some, nil), false},
		{"Match(∅,∅)", Match(nil, nil), true},
		{"Match(∅,y)", Match(nil, some), false},
		{"Match(x,∅)", Match(some, nil), false},
		{"Inside(∅,∅)", Inside(nil, nil), true},
		{"Inside(∅,y)", Inside(nil, some), true},
		{"Inside(x,∅)", Inside(some, nil), false},
		{"Contains(∅,∅)", Contains(nil, nil), true},
		{"Contains(x,∅)", Contains(some, nil), true},
		{"Contains(∅,y)", Contains(nil, some), false},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if got := Union(nil, some); len(got) != 1 || got[0] != some[0] {
		t.Errorf("Union(∅,y) = %v", got)
	}
	if got := Intersect(nil, some); got != nil {
		t.Errorf("Intersect(∅,y) = %v", got)
	}
	if got := Subtract(some, nil); len(got) != 1 || got[0] != some[0] {
		t.Errorf("Subtract(x,∅) = %v", got)
	}
	if got := Subtract(nil, some); got != nil {
		t.Errorf("Subtract(∅,y) = %v", got)
	}
}
