package interval

import (
	"math/rand"
	"testing"
)

// The pre-kernel reference implementations of the four merge-join
// relations, kept verbatim as the cross-check target: the branch-reduced
// kernels in relations.go must agree with these on every input.

func refOverlap(x, y List) bool {
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if x[i].Overlaps(y[j]) {
			return true
		}
		if x[i].End <= y[j].Start {
			i++
		} else {
			j++
		}
	}
	return false
}

func refMatch(x, y List) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func refInside(x, y List) bool {
	if len(x) == 0 {
		return true
	}
	j := 0
	for _, iv := range x {
		for j < len(y) && y[j].End < iv.End {
			j++
		}
		if j == len(y) || !y[j].ContainsIv(iv) {
			return false
		}
	}
	return true
}

func refContains(x, y List) bool { return refInside(y, x) }

// randList builds a small normalized list whose runs cluster in a narrow
// id range, so overlaps, nestings and exact matches are all common.
func randKernelList(rng *rand.Rand, maxRuns int) List {
	n := rng.Intn(maxRuns + 1)
	cells := make([]uint64, 0, 4*n)
	for i := 0; i < n; i++ {
		start := uint64(rng.Intn(64))
		width := uint64(1 + rng.Intn(6))
		for c := start; c < start+width; c++ {
			cells = append(cells, c)
		}
	}
	return FromCells(cells)
}

func checkAgainstReference(t *testing.T, x, y List) {
	t.Helper()
	if got, want := Overlap(x, y), refOverlap(x, y); got != want {
		t.Fatalf("Overlap(%v, %v) = %v, reference %v", x, y, got, want)
	}
	if got, want := Match(x, y), refMatch(x, y); got != want {
		t.Fatalf("Match(%v, %v) = %v, reference %v", x, y, got, want)
	}
	if got, want := Inside(x, y), refInside(x, y); got != want {
		t.Fatalf("Inside(%v, %v) = %v, reference %v", x, y, got, want)
	}
	if got, want := Contains(x, y), refContains(x, y); got != want {
		t.Fatalf("Contains(%v, %v) = %v, reference %v", x, y, got, want)
	}
}

// TestKernelsMatchReference cross-checks the branch-reduced kernels
// against the reference implementations on randomized list pairs,
// including derived pairs engineered to hit match/inside verdicts.
func TestKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20000; trial++ {
		x := randKernelList(rng, 5)
		y := randKernelList(rng, 5)
		checkAgainstReference(t, x, y)
		checkAgainstReference(t, x, x.Clone()) // exact match path
		checkAgainstReference(t, Intersect(x, y), y)
		checkAgainstReference(t, x, Union(x, y)) // inside-by-construction
	}
}

// TestKernelsExhaustiveSmall enumerates every pair of lists over a tiny
// universe so all interleavings, adjacencies, and shared endpoints are
// covered deterministically.
func TestKernelsExhaustiveSmall(t *testing.T) {
	const bits = 7 // universe {0..6} as cell-membership bitmaps
	lists := make([]List, 0, 1<<bits)
	for m := 0; m < 1<<bits; m++ {
		var cells []uint64
		for c := uint64(0); c < bits; c++ {
			if m&(1<<c) != 0 {
				cells = append(cells, c)
			}
		}
		lists = append(lists, FromCells(cells))
	}
	for _, x := range lists {
		for _, y := range lists {
			checkAgainstReference(t, x, y)
		}
	}
}

// FuzzKernels derives two lists from raw bytes and cross-checks every
// kernel against its reference implementation.
func FuzzKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 200, 5}, []byte{3, 4})
	f.Add([]byte{}, []byte{0, 0, 0})
	f.Add([]byte{255, 254, 253}, []byte{255, 254, 253})
	f.Fuzz(func(t *testing.T, xb, yb []byte) {
		toList := func(b []byte) List {
			cells := make([]uint64, len(b))
			for i, c := range b {
				cells[i] = uint64(c)
			}
			return FromCells(cells)
		}
		x, y := toList(xb), toList(yb)
		checkAgainstReference(t, x, y)
	})
}

// TestZeroAllocKernels pins the four kernels to zero heap allocations
// per call (wired into `make bench`): the intermediate filter runs them
// for every candidate pair, so a single allocation here shows up as
// pairs-per-second on every workload.
func TestZeroAllocKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randKernelList(rng, 12)
	y := randKernelList(rng, 12)
	var sink bool
	kernels := map[string]func() {
		"Overlap":  func() { sink = Overlap(x, y) },
		"Match":    func() { sink = Match(x, y) },
		"Inside":   func() { sink = Inside(x, y) },
		"Contains": func() { sink = Contains(x, y) },
	}
	for name, fn := range kernels {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per run, want 0", name, allocs)
		}
	}
	_ = sink
}
