package interval

import "testing"

// FuzzDecode checks the delta-varint reader never panics on arbitrary
// bytes, and that anything it accepts is a valid normalized list that
// re-encodes to the bytes it consumed.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(List{{1, 5}, {9, 12}}.AppendEncode(nil))
	f.Add(List{{0, 1}}.AppendEncode(nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{3, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, n, err := Decode(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if !l.IsValid() {
			// Decoding can produce overflow-wrapped intervals from
			// adversarial varints; they must still be structurally
			// rejected or valid.
			t.Fatalf("accepted invalid list %v from %x", l, data[:n])
		}
		re := l.AppendEncode(nil)
		back, m, err := Decode(re)
		if err != nil || m != len(re) {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !Match(l, back) {
			t.Fatalf("re-encode changed list: %v vs %v", l, back)
		}
	})
}
