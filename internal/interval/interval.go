// Package interval implements sorted lists of disjoint half-open uint64
// intervals and the four merge-join relations between two lists that the
// paper's intermediate filters are built from (Sec. 3.2):
//
//	overlap  — the lists share at least one cell id
//	match    — the lists are identical
//	inside   — every interval of X is contained in one interval of Y
//	contains — every interval of Y is contained in one interval of X
//
// Every relation is evaluated in O(|X| + |Y|) time by a single merge scan,
// which is what makes the intermediate filter cheap relative to DE-9IM
// refinement.
package interval

import "sort"

// Interval is a half-open range [Start, End) of cell identifiers.
type Interval struct {
	Start, End uint64
}

// Len returns the number of cells covered by the interval.
func (iv Interval) Len() uint64 { return iv.End - iv.Start }

// Contains reports whether cell d lies in the interval.
func (iv Interval) Contains(d uint64) bool { return iv.Start <= d && d < iv.End }

// ContainsIv reports whether o is a sub-interval of iv.
func (iv Interval) ContainsIv(o Interval) bool {
	return iv.Start <= o.Start && o.End <= iv.End
}

// Overlaps reports whether the two intervals share at least one cell.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}

// List is a normalized interval list: sorted by Start, pairwise disjoint,
// with no empty and no adjacent (mergeable) intervals.
type List []Interval

// FromCells builds a normalized list from an unordered set of cell ids.
// The input slice is sorted in place.
//
// Cell id ^uint64(0) is reserved: a half-open interval cannot represent
// it (its End would overflow to 0, producing an interval that every
// merge-join relation silently treats as empty — a soundness hole, not a
// quiet degradation). Hilbert cell ids never exceed 2^62, so the
// reserved id is unreachable from the approximation builders; passing it
// here is a programming error and panics.
func FromCells(cells []uint64) List {
	if len(cells) == 0 {
		return nil
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	if cells[len(cells)-1] == ^uint64(0) {
		panic("interval: cell id 1<<64-1 is reserved and cannot be represented")
	}
	out := List{{cells[0], cells[0] + 1}}
	for _, c := range cells[1:] {
		last := &out[len(out)-1]
		switch {
		case c < last.End: // duplicate
		case c == last.End:
			last.End++
		default:
			out = append(out, Interval{c, c + 1})
		}
	}
	return out
}

// Normalize sorts, merges and drops empty intervals, returning a valid List.
func Normalize(ivs []Interval) List {
	filtered := ivs[:0]
	for _, iv := range ivs {
		if iv.Start < iv.End {
			filtered = append(filtered, iv)
		}
	}
	if len(filtered) == 0 {
		return nil
	}
	sort.Slice(filtered, func(i, j int) bool { return filtered[i].Start < filtered[j].Start })
	out := List{filtered[0]}
	for _, iv := range filtered[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// IsValid reports whether l is normalized.
func (l List) IsValid() bool {
	for i, iv := range l {
		if iv.Start >= iv.End {
			return false
		}
		if i > 0 && l[i-1].End >= iv.Start {
			return false
		}
	}
	return true
}

// NumCells returns the total number of cells covered by the list.
func (l List) NumCells() uint64 {
	var n uint64
	for _, iv := range l {
		n += iv.Len()
	}
	return n
}

// ContainsCell reports whether cell d is covered by the list
// (binary search, O(log |l|)).
func (l List) ContainsCell(d uint64) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i].End > d })
	return i < len(l) && l[i].Contains(d)
}

// Cells materializes every covered cell id. Intended for tests.
func (l List) Cells() []uint64 {
	out := make([]uint64, 0, l.NumCells())
	for _, iv := range l {
		for d := iv.Start; d < iv.End; d++ {
			out = append(out, d)
		}
	}
	return out
}

// Clone returns a copy of the list.
func (l List) Clone() List {
	c := make(List, len(l))
	copy(c, l)
	return c
}
