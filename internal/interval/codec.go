package interval

import (
	"encoding/binary"
	"fmt"
)

// AppendEncode serializes the list onto buf using delta-varint coding:
// gaps and lengths compress well because Hilbert enumeration keeps
// neighbouring cells close. Returns the extended buffer.
func (l List) AppendEncode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(l)))
	var prev uint64
	for _, iv := range l {
		buf = binary.AppendUvarint(buf, iv.Start-prev)
		buf = binary.AppendUvarint(buf, iv.End-iv.Start)
		prev = iv.End
	}
	return buf
}

// EncodedSize returns the number of bytes AppendEncode would emit.
func (l List) EncodedSize() int {
	return len(l.AppendEncode(nil))
}

// Decode parses a list previously written by AppendEncode and returns the
// list together with the number of bytes consumed.
func Decode(buf []byte) (List, int, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, 0, fmt.Errorf("interval: bad list header")
	}
	// Every interval occupies at least two bytes (gap + length varints),
	// so a count beyond the remaining buffer is corrupt; checking before
	// allocating prevents adversarial headers from forcing huge
	// allocations.
	if n > uint64(len(buf)-k) {
		return nil, 0, fmt.Errorf("interval: implausible interval count %d", n)
	}
	off := k
	out := make(List, 0, n)
	var prev uint64
	for i := uint64(0); i < n; i++ {
		gap, k1 := binary.Uvarint(buf[off:])
		if k1 <= 0 {
			return nil, 0, fmt.Errorf("interval: truncated gap at %d", i)
		}
		if i > 0 && gap == 0 {
			// Adjacent intervals would denormalize the list; the encoder
			// never emits them.
			return nil, 0, fmt.Errorf("interval: non-canonical zero gap at %d", i)
		}
		off += k1
		length, k2 := binary.Uvarint(buf[off:])
		if k2 <= 0 || length == 0 {
			return nil, 0, fmt.Errorf("interval: truncated or empty length at %d", i)
		}
		off += k2
		start := prev + gap
		end := start + length
		if start < prev || end <= start {
			return nil, 0, fmt.Errorf("interval: overflowing interval at %d", i)
		}
		out = append(out, Interval{start, end})
		prev = end
	}
	return out, off, nil
}
