package datagen

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestBlobValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		n := 3 + rng.Intn(400)
		b := Blob(rng, geom.Point{X: 100, Y: 100}, 5+rng.Float64()*30, n)
		if err := geom.ValidatePolygon(b); err != nil {
			t.Fatalf("blob %d (n=%d): %v", i, n, err)
		}
		if b.NumVertices() != n {
			t.Errorf("blob %d: %d vertices, want %d", i, b.NumVertices(), n)
		}
		if !b.Shell.IsCCW() {
			t.Error("blob shell must be CCW")
		}
	}
}

func TestBlobMinVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := Blob(rng, geom.Point{}, 5, 1)
	if b.NumVertices() != 3 {
		t.Errorf("clamped vertices = %d, want 3", b.NumVertices())
	}
}

func TestBlobWithHoleValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		b := BlobWithHole(rng, geom.Point{X: 50, Y: 50}, 10+rng.Float64()*20, 12+rng.Intn(200))
		if err := geom.ValidatePolygon(b); err != nil {
			t.Fatalf("blob-with-hole %d: %v", i, err)
		}
		if len(b.Holes) != 1 {
			t.Fatal("expected one hole")
		}
		if b.Area() >= b.Shell.Area() {
			t.Error("hole must reduce area")
		}
	}
}

func TestInsideBlobContained(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		host := Blob(rng, geom.Point{X: 200, Y: 200}, 30+rng.Float64()*20, 24+rng.Intn(100))
		child := InsideBlob(rng, host, 0.2+rng.Float64()*0.4, 8+rng.Intn(60), 0)
		loc := geom.NewPolygonLocator(host)
		for _, v := range child.Shell {
			if loc.Locate(v) != geom.Inside {
				t.Fatalf("trial %d: child vertex %v not inside host", i, v)
			}
		}
	}
}

func TestSplitRectsTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	space := geom.MBR{MinX: 0, MinY: 0, MaxX: 100, MaxY: 80}
	rects := SplitRects(rng, space, 37)
	if len(rects) != 37 {
		t.Fatalf("got %d rects", len(rects))
	}
	var area float64
	for _, r := range rects {
		area += r.Area()
		if !space.ContainsMBR(r) {
			t.Fatalf("rect %v escapes space", r)
		}
	}
	if diff := area - space.Area(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("tiling area %v != space area %v", area, space.Area())
	}
	// Pairwise interiors must be disjoint (tiles may share borders).
	for i := range rects {
		for j := i + 1; j < len(rects); j++ {
			inter := rects[i].Intersection(rects[j])
			if !inter.IsEmpty() && inter.Area() > 1e-9 {
				t.Fatalf("rects %d and %d overlap with area %v", i, j, inter.Area())
			}
		}
	}
}

func TestDensifiedRect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := geom.MBR{MinX: 1, MinY: 2, MaxX: 11, MaxY: 7}
	p := DensifiedRect(rng, b, 40)
	if err := geom.ValidatePolygon(p); err != nil {
		t.Fatalf("densified rect invalid: %v", err)
	}
	if p.Bounds() != b {
		t.Errorf("bounds changed: %v", p.Bounds())
	}
	if got := p.NumVertices(); got != 40 {
		t.Errorf("vertices = %d, want 40", got)
	}
	if a := p.Area(); a < b.Area()-1e-9 || a > b.Area()+1e-9 {
		t.Errorf("area = %v, want %v", a, b.Area())
	}
	// Minimum clamps to a plain rectangle.
	if got := DensifiedRect(rng, b, 2).NumVertices(); got != 4 {
		t.Errorf("clamped vertices = %d, want 4", got)
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a := NewSuite(42, 0.05)
	b := NewSuite(42, 0.05)
	if len(a.Sets) != 10 || len(b.Sets) != 10 {
		t.Fatalf("expected 10 datasets, got %d and %d", len(a.Sets), len(b.Sets))
	}
	for name, pa := range a.Sets {
		pb := b.Sets[name]
		if len(pa) != len(pb) {
			t.Fatalf("%s: %d vs %d polygons", name, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i].NumVertices() != pb[i].NumVertices() {
				t.Fatalf("%s object %d: vertex counts differ", name, i)
			}
			if !pa[i].Shell[0].Eq(pb[i].Shell[0]) {
				t.Fatalf("%s object %d: first vertex differs", name, i)
			}
		}
	}
	// Different seeds produce different data.
	c := NewSuite(43, 0.05)
	if c.Sets["TL"][0].Shell[0].Eq(a.Sets["TL"][0].Shell[0]) {
		t.Error("different seeds should differ")
	}
}

func TestSuiteAllValidAndInSpace(t *testing.T) {
	s := NewSuite(7, 0.05)
	for name, polys := range s.Sets {
		if len(polys) == 0 {
			t.Fatalf("%s is empty", name)
		}
		for i, p := range polys {
			if err := geom.ValidatePolygon(p); err != nil {
				t.Fatalf("%s object %d invalid: %v", name, i, err)
			}
			if !s.Space.ContainsMBR(p.Bounds()) {
				t.Fatalf("%s object %d escapes the data space: %v", name, i, p.Bounds())
			}
		}
	}
}

func TestSuiteRelativeSizes(t *testing.T) {
	s := NewSuite(1, 0.1)
	// Table 2 ordering: buildings are the largest sets, counties smallest.
	if len(s.Sets["OBE"]) <= len(s.Sets["OLE"]) {
		t.Error("OBE must outnumber OLE")
	}
	if len(s.Sets["TC"]) >= len(s.Sets["TZ"]) {
		t.Error("TC must be smaller than TZ")
	}
	if len(s.Sets["TW"]) <= len(s.Sets["TL"]) {
		t.Error("TW must outnumber TL")
	}
}

func TestSortedNamesAndCombos(t *testing.T) {
	s := NewSuite(1, 0.02)
	names := s.SortedNames()
	if len(names) != 10 || names[0] != "TL" || names[9] != "OPN" {
		t.Errorf("SortedNames = %v", names)
	}
	if len(Combos) != 7 {
		t.Errorf("Combos = %d, want 7 (Table 3)", len(Combos))
	}
	if ComboName(Combos[0]) != "TL-TW" {
		t.Errorf("ComboName = %q", ComboName(Combos[0]))
	}
	for _, c := range Combos {
		if _, ok := s.Sets[c[0]]; !ok {
			t.Errorf("combo %v references missing dataset", c)
		}
		if _, ok := s.Sets[c[1]]; !ok {
			t.Errorf("combo %v references missing dataset", c)
		}
	}
}

func TestNearMissBlobDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 30; i++ {
		host := Blob(rng, geom.Point{X: 200, Y: 200}, 25+rng.Float64()*15, 24+rng.Intn(80))
		nm := NearMissBlob(rng, host, 3+rng.Float64()*3, 8+rng.Intn(30), 1.5)
		if err := geom.ValidatePolygon(nm); err != nil {
			t.Fatalf("trial %d: invalid near-miss: %v", i, err)
		}
		// Must be truly disjoint from the host...
		if geom.PolygonDistance(nm, host) <= 0 {
			t.Fatalf("trial %d: near-miss touches the host", i)
		}
		// ...while (normally) overlapping the host's MBR so it survives
		// the MBR filter. The corner fallback can rarely miss; just check
		// the typical case holds over the batch.
	}
	// Aggregate: most near-misses overlap the host MBR.
	host := Blob(rng, geom.Point{X: 200, Y: 200}, 30, 64)
	overlapping := 0
	for i := 0; i < 40; i++ {
		nm := NearMissBlob(rng, host, 4, 12, 1.5)
		if nm.Bounds().Intersects(host.Bounds()) {
			overlapping++
		}
	}
	if overlapping < 30 {
		t.Errorf("only %d of 40 near-misses overlap the host MBR", overlapping)
	}
}
