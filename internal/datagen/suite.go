package datagen

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// DefaultOrder is the grid order used for the synthetic suite. The paper
// uses a 2^16 grid for datasets of 10^5–10^8 objects; the suite scales
// object counts down by roughly three orders of magnitude, so a 2^11 grid
// keeps the cells-per-object ratio — and hence the interval-list lengths
// that drive filter effectiveness — in the paper's regime.
const DefaultOrder = 11

// cellClearance is the separation kept by near-miss placements: ~3 cells
// of the default grid, so near-miss pairs are separable by their
// conservative lists.
const cellClearance = 3 * SpaceSide / (1 << DefaultOrder)

// SpaceSide is the side length of the square synthetic data space.
const SpaceSide = 1024.0

// Space returns the data space of the synthetic suite.
func Space() geom.MBR {
	return geom.MBR{MinX: 0, MinY: 0, MaxX: SpaceSide, MaxY: SpaceSide}
}

// DatasetNames lists the ten datasets of Table 2 in presentation order.
var DatasetNames = []string{"TL", "TW", "TC", "TZ", "OBE", "OLE", "OPE", "OBN", "OLN", "OPN"}

// EntityTypes describes each dataset, mirroring Table 2.
var EntityTypes = map[string]string{
	"TL": "US Landmarks", "TW": "US Water areas", "TC": "US Counties",
	"TZ": "US Zip Codes", "OBE": "EU Buildings", "OLE": "EU Lakes",
	"OPE": "EU Parks", "OBN": "NA Buildings", "OLN": "NA Lakes", "OPN": "NA Parks",
}

// Suite is one generated instance of all ten datasets over a shared space.
type Suite struct {
	Space geom.MBR
	Sets  map[string][]*geom.Polygon
}

// baseCounts are the dataset cardinalities at Scale = 1; their relative
// order follows Table 2 (buildings ≫ water/lakes ≫ landmarks ≫ zips ≫
// counties) scaled to laptop size.
var baseCounts = map[string]int{
	"TL": 700, "TW": 2200, "TC": 40, "TZ": 320,
	"OBE": 8000, "OLE": 2000, "OPE": 1100,
	"OBN": 3200, "OLN": 1700, "OPN": 650,
}

// NewSuite generates the full ten-dataset suite deterministically from a
// seed. Scale multiplies every dataset's cardinality (1.0 reproduces the
// default laptop-scale workload; tests use smaller values).
func NewSuite(seed int64, scale float64) *Suite {
	s := &Suite{Space: Space(), Sets: make(map[string][]*geom.Polygon, 10)}
	n := func(name string) int {
		c := int(math.Round(float64(baseCounts[name]) * scale))
		if c < 4 {
			c = 4
		}
		return c
	}

	// Each dataset gets its own deterministic stream so that datasets are
	// independent of generation order.
	sub := func(k int64) *rand.Rand { return rand.New(rand.NewSource(seed*1000 + k)) }

	// --- TIGER-like layer (continental US ~ the whole space) ---
	s.Sets["TL"] = s.landmarks(sub(1), n("TL"))
	s.Sets["TW"] = s.water(sub(2), n("TW"), s.Sets["TL"])
	counties := SplitRects(sub(3), s.Space, n("TC"))
	s.Sets["TC"] = densifyAll(sub(4), counties, 60, 220)
	s.Sets["TZ"] = s.zipCodes(sub(5), counties, n("TZ"))

	// --- OSM-like layers: Europe (left half) and North America (right
	// half), mirroring the paper's per-continent splits. ---
	eu := geom.MBR{MinX: 0, MinY: 0, MaxX: SpaceSide / 2, MaxY: SpaceSide}
	na := geom.MBR{MinX: SpaceSide / 2, MinY: 0, MaxX: SpaceSide, MaxY: SpaceSide}
	s.Sets["OPE"] = s.parks(sub(6), eu, n("OPE"))
	s.Sets["OLE"] = s.lakes(sub(7), eu, n("OLE"), s.Sets["OPE"])
	s.Sets["OBE"] = s.buildings(sub(8), eu, n("OBE"), s.Sets["OPE"])
	s.Sets["OPN"] = s.parks(sub(9), na, n("OPN"))
	s.Sets["OLN"] = s.lakes(sub(10), na, n("OLN"), s.Sets["OPN"])
	s.Sets["OBN"] = s.buildings(sub(11), na, n("OBN"), s.Sets["OPN"])
	return s
}

// randIn picks a uniform point inside b with the given margin.
func randIn(rng *rand.Rand, b geom.MBR, margin float64) geom.Point {
	return geom.Point{
		X: b.MinX + margin + rng.Float64()*(b.Width()-2*margin),
		Y: b.MinY + margin + rng.Float64()*(b.Height()-2*margin),
	}
}

// vertexCount draws a heavy-tailed vertex count in [lo, hi]: most objects
// are simple, a few are very detailed — the distribution behind the
// paper's complexity-level experiment.
func vertexCount(rng *rand.Rand, lo, hi int) int {
	// Log-uniform: pair complexities spread evenly across the
	// near-geometric level ranges of Table 4.
	u := rng.Float64()
	v := float64(lo) * math.Pow(float64(hi)/float64(lo), u)
	return int(v)
}

// sizeFor couples an object's mean radius to its vertex count, as in real
// data where detailed boundaries belong to large objects. This coupling
// is what gives the paper's Fig. 8(a) trend: low-complexity objects span
// few grid cells and rarely have full cells, so their pairs must be
// refined, while complex objects are settled by the interval filters.
func sizeFor(rng *rand.Rand, v int, scale float64) float64 {
	return scale * (0.75 + 0.5*rng.Float64()) * math.Pow(float64(v), 0.72)
}

func (s *Suite) landmarks(rng *rand.Rand, n int) []*geom.Polygon {
	out := make([]*geom.Polygon, 0, n)
	for i := 0; i < n; i++ {
		v := vertexCount(rng, 8, 96)
		r := sizeFor(rng, v, 0.1)
		c := randIn(rng, s.Space, r*1.6)
		out = append(out, Blob(rng, c, r, v))
	}
	return out
}

// water generates water areas; a fraction duplicates landmarks exactly
// (equals pairs) and a fraction nests inside landmarks (inside pairs).
func (s *Suite) water(rng *rand.Rand, n int, landmarks []*geom.Polygon) []*geom.Polygon {
	out := make([]*geom.Polygon, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%40 == 0 && len(landmarks) > 0:
			out = append(out, landmarks[rng.Intn(len(landmarks))].Clone())
		case i%11 == 0 && len(landmarks) > 0:
			host := landmarks[rng.Intn(len(landmarks))]
			out = append(out, InsideBlob(rng, host, 0.25+rng.Float64()*0.3, vertexCount(rng, 8, 64), cellClearance))
		default:
			v := vertexCount(rng, 8, 128)
			r := sizeFor(rng, v, 0.08)
			c := randIn(rng, s.Space, r*1.6)
			out = append(out, Blob(rng, c, r, v))
		}
	}
	return out
}

func densifyAll(rng *rand.Rand, rects []geom.MBR, vMin, vMax int) []*geom.Polygon {
	out := make([]*geom.Polygon, len(rects))
	for i, r := range rects {
		out[i] = DensifiedRect(rng, r, vMin+rng.Intn(vMax-vMin+1))
	}
	return out
}

// zipCodes subdivides each county into sub-tiles; zip borders coincide
// with county borders, producing covered-by and meets relations in TC-TZ.
func (s *Suite) zipCodes(rng *rand.Rand, counties []geom.MBR, n int) []*geom.Polygon {
	perCounty := n / len(counties)
	if perCounty < 1 {
		perCounty = 1
	}
	var out []*geom.Polygon
	for _, c := range counties {
		for _, z := range SplitRects(rng, c, perCounty) {
			out = append(out, DensifiedRect(rng, z, 24+rng.Intn(96)))
		}
	}
	return out
}

func (s *Suite) parks(rng *rand.Rand, region geom.MBR, n int) []*geom.Polygon {
	out := make([]*geom.Polygon, 0, n)
	for i := 0; i < n; i++ {
		v := vertexCount(rng, 32, 1024)
		r := sizeFor(rng, v, 0.05)
		c := randIn(rng, region, math.Min(r*1.6, region.Width()/2-1))
		if i%5 == 0 {
			out = append(out, BlobWithHole(rng, c, r, v))
		} else {
			out = append(out, Blob(rng, c, r, v))
		}
	}
	return out
}

// lakes places slightly over half of the lakes inside parks (the
// lake-in-park structure of Fig. 9); the rest float freely, overlapping
// parks at random.
func (s *Suite) lakes(rng *rand.Rand, region geom.MBR, n int, parks []*geom.Polygon) []*geom.Polygon {
	// Hosts sorted by size: a lake nests in a park of comparable rank, as
	// in real data where large lakes sit in large parks. This is what
	// lets the intermediate filter settle high-complexity containments
	// (Fig. 8a) — a huge lake squeezed into a tiny park would always
	// need refinement.
	byArea := make([]*geom.Polygon, len(parks))
	copy(byArea, parks)
	sort.Slice(byArea, func(a, b int) bool { return byArea[a].Area() < byArea[b].Area() })
	pickHost := func(v int) *geom.Polygon {
		u := math.Sqrt(float64(v) / 2048)
		f := u + (rng.Float64()-0.5)*0.3
		idx := int(f * float64(len(byArea)-1))
		if idx < 0 {
			idx = 0
		} else if idx >= len(byArea) {
			idx = len(byArea) - 1
		}
		return byArea[idx]
	}
	out := make([]*geom.Polygon, 0, n)
	for i := 0; i < n; i++ {
		v := vertexCount(rng, 16, 2048)
		switch {
		case i%9 < 4 && len(parks) > 0:
			host := pickHost(v)
			rel := 0.1 + 0.45*math.Sqrt(float64(v)/2048)
			out = append(out, InsideBlob(rng, host, rel, v, cellClearance))
		case i%9 < 6 && len(parks) > 0:
			// Near-miss: in a park's MBR but disjoint from it, the pairs
			// the APRIL intersection filter settles.
			host := parks[rng.Intn(len(parks))]
			hb := host.Bounds()
			r := math.Max(1.2, math.Min(sizeFor(rng, v, 0.035), math.Min(hb.Width(), hb.Height())*0.15))
			out = append(out, NearMissBlob(rng, host, r, v, cellClearance))
		default:
			r := sizeFor(rng, v, 0.05)
			c := randIn(rng, region, math.Min(r*1.6, region.Width()/2-1))
			out = append(out, Blob(rng, c, r, v))
		}
	}
	return out
}

func (s *Suite) buildings(rng *rand.Rand, region geom.MBR, n int, parks []*geom.Polygon) []*geom.Polygon {
	out := make([]*geom.Polygon, 0, n)
	for i := 0; i < n; i++ {
		v := 4 + rng.Intn(9)
		switch {
		case i%4 == 0 && len(parks) > 0:
			// Human intervention in green areas: buildings in parks.
			host := parks[rng.Intn(len(parks))]
			out = append(out, InsideBlob(rng, host, 0.03+rng.Float64()*0.05, v, cellClearance))
		case i%4 == 1 && len(parks) > 0:
			host := parks[rng.Intn(len(parks))]
			out = append(out, NearMissBlob(rng, host, 0.4+rng.Float64()*1.0, v, cellClearance))
		default:
			r := 0.4 + rng.Float64()*1.4
			c := randIn(rng, region, 2)
			out = append(out, Blob(rng, c, r, v))
		}
	}
	return out
}

// Combos lists the semantically meaningful dataset combinations of
// Table 3, in presentation order.
var Combos = [][2]string{
	{"TL", "TW"}, {"TL", "TC"}, {"TC", "TZ"},
	{"OLE", "OPE"}, {"OLN", "OPN"}, {"OBE", "OPE"}, {"OBN", "OPN"},
}

// ComboName renders a combination as in the paper ("TL-TW").
func ComboName(c [2]string) string { return c[0] + "-" + c[1] }

// SortedNames returns the dataset names actually present in the suite, in
// canonical Table 2 order.
func (s *Suite) SortedNames() []string {
	out := make([]string, 0, len(s.Sets))
	for _, n := range DatasetNames {
		if _, ok := s.Sets[n]; ok {
			out = append(out, n)
		}
	}
	// Include any extra datasets tests may have injected.
	var extra []string
	for n := range s.Sets {
		if EntityTypes[n] == "" {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
