// Package datagen generates deterministic synthetic polygon datasets that
// stand in for the paper's TIGER 2015 and OSM collections (see DESIGN.md
// §3 for the substitution argument). Shapes are smooth star-shaped
// "blobs" with tunable vertex counts, rectangular tilings with exactly
// shared edges (for meets/covered-by structure), nested placements (for
// inside/contains), and exact duplicates (for equals).
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Blob generates a smooth star-shaped polygon around center c with
// maximum radius r and n vertices. The radius function is a low-order
// harmonic perturbation of a circle, anisotropically stretched and
// rotated so that shapes do not fill their MBRs tightly (real lakes and
// parks are elongated, which is what makes MBR-overlapping-but-disjoint
// candidate pairs common). The ring is simple by construction and the
// shape is guaranteed to fit in the disk of radius r around c.
func Blob(rng *rand.Rand, c geom.Point, r float64, n int) *geom.Polygon {
	return geom.NewPolygon(blobRing(rng, c, r, n))
}

func blobRing(rng *rand.Rand, c geom.Point, r float64, n int) geom.Ring {
	if n < 3 {
		n = 3
	}
	const harmonics = 5
	amp := make([]float64, harmonics)
	phase := make([]float64, harmonics)
	total := 0.0
	for k := range amp {
		amp[k] = rng.Float64() * 0.5 / float64(k+2)
		phase[k] = rng.Float64() * 2 * math.Pi
		total += amp[k]
	}
	// Keep the radius strictly positive.
	if total > 0.85 {
		f := 0.85 / total
		for k := range amp {
			amp[k] *= f
		}
	}
	// Anisotropy (area-preserving axis stretch) and rotation.
	f := 0.7 + rng.Float64()*0.7
	rot := rng.Float64() * 2 * math.Pi
	cosR, sinR := math.Cos(rot), math.Sin(rot)

	step := 2 * math.Pi / float64(n)
	ring := make(geom.Ring, n)
	maxDist := 0.0
	for i := 0; i < n; i++ {
		theta := float64(i)*step + rng.Float64()*step*0.7
		rad := 1.0
		for k := range amp {
			rad += amp[k] * math.Sin(float64(k+2)*theta+phase[k])
		}
		dx := rad * math.Cos(theta) * f
		dy := rad * math.Sin(theta) / f
		x := dx*cosR - dy*sinR
		y := dx*sinR + dy*cosR
		ring[i] = geom.Point{X: x, Y: y}
		if d := math.Hypot(x, y); d > maxDist {
			maxDist = d
		}
	}
	// Normalize so the maximum extent is exactly r, then translate.
	scale := r / maxDist
	for i := range ring {
		ring[i].X = c.X + ring[i].X*scale
		ring[i].Y = c.Y + ring[i].Y*scale
	}
	return ring
}

// BlobWithHole generates a blob with one smaller blob-shaped hole near its
// center.
func BlobWithHole(rng *rand.Rand, c geom.Point, r float64, n int) *geom.Polygon {
	shell := blobRing(rng, c, r, n)
	hn := n / 3
	if hn < 6 {
		hn = 6
	}
	hole := blobRing(rng, c, r*0.25, hn)
	return geom.NewPolygon(shell, hole)
}

// InsideBlob generates a blob guaranteed to lie strictly inside host: it
// is centered on an interior point of the host and scaled down until
// containment holds. A positive clearance keeps the blob that far from
// the host boundary (in world units), which makes the containment
// provable from raster approximations when the clearance spans a few
// grid cells.
func InsideBlob(rng *rand.Rand, host *geom.Polygon, relSize float64, n int, clearance float64) *geom.Polygon {
	c := geom.PointOnSurface(host)
	hb := host.Bounds()
	r := relSize * math.Min(hb.Width(), hb.Height()) / 2
	for attempt := 0; attempt < 24; attempt++ {
		cand := Blob(rng, c, r, n)
		grown := cand
		// Demanded clearance never exceeds the object's own size: small
		// objects get small margins (and stay raster-unprovable, like
		// small real-world objects), large objects get the full margin.
		if clear := math.Min(clearance, r); clear > 0 {
			grown = cand.ScaleAbout(c, (r+clear)/r)
		}
		if polygonWithin(grown, host) {
			return cand
		}
		r *= 0.6
	}
	// Final fallback: a tiny blob around the interior point always fits.
	return Blob(rng, c, 1e-3*math.Min(hb.Width(), hb.Height()), n)
}

// NearMissBlob generates a blob inside host's MBR but disjoint from host:
// the near-miss pairs that pass the MBR filter yet are separable by the
// conservative raster lists (the case APRIL's intersection filter wins).
// Falls back to a plain blob at the host MBR's densest empty corner when
// rejection sampling fails.
// clearance is the minimum separation kept between the blob and the host
// so that their conservative raster cells do not overlap (a few grid
// cells); with zero clearance the pair may still be raster-inseparable.
func NearMissBlob(rng *rand.Rand, host *geom.Polygon, r float64, n int, clearance float64) *geom.Polygon {
	hb := host.Bounds()
	loc := geom.NewPolygonLocator(host)
	margin := math.Min(hb.Width(), hb.Height()) * 0.05
	for attempt := 0; attempt < 30; attempt++ {
		c := geom.Point{
			X: hb.MinX + margin + rng.Float64()*(hb.Width()-2*margin),
			Y: hb.MinY + margin + rng.Float64()*(hb.Height()-2*margin),
		}
		if loc.Locate(c) != geom.Outside {
			continue
		}
		cand := Blob(rng, c, r, n)
		// Testing an inflated copy enforces the full clearance: unlike
		// InsideBlob there is always room outside the host, and pairs
		// closer than the grid cell size would be raster-inseparable.
		grown := cand
		if clearance > 0 {
			grown = cand.ScaleAbout(c, (r+clearance)/r)
		}
		if polygonsDisjoint(grown, host, loc) {
			return cand
		}
		r *= 0.6
	}
	return Blob(rng, geom.Point{X: hb.MinX + margin, Y: hb.MinY + margin}, margin/2, n)
}

// polygonsDisjoint reports whether p and host share no point, given a
// locator for host; p's vertices must all be outside and no edges cross.
func polygonsDisjoint(p, host *geom.Polygon, loc *geom.Locator) bool {
	for _, v := range p.Shell {
		if loc.Locate(v) != geom.Outside {
			return false
		}
	}
	crossed := false
	p.Edges(func(a, b geom.Point) {
		if crossed {
			return
		}
		host.Edges(func(c, d geom.Point) {
			if crossed {
				return
			}
			if geom.SegIntersect(a, b, c, d).Kind != geom.SegNone {
				crossed = true
			}
		})
	})
	// A host vertex inside p would mean p surrounds part of host.
	return !crossed && geom.LocateInPolygon(host.Shell[0], p) == geom.Outside
}

// polygonWithin reports whether every vertex of p lies inside host and no
// edges cross — sufficient for the star-shaped candidates used here.
func polygonWithin(p, host *geom.Polygon) bool {
	loc := geom.NewPolygonLocator(host)
	for _, v := range p.Shell {
		if loc.Locate(v) != geom.Inside {
			return false
		}
	}
	// Vertices inside and host boundary not crossing any edge implies
	// containment for simple polygons.
	crossed := false
	p.Edges(func(a, b geom.Point) {
		if crossed {
			return
		}
		host.Edges(func(c, d geom.Point) {
			if crossed {
				return
			}
			if geom.SegIntersect(a, b, c, d).Kind != geom.SegNone {
				crossed = true
			}
		})
	})
	return !crossed
}

// Rect builds an axis-aligned rectangle polygon.
func Rect(b geom.MBR) *geom.Polygon {
	return geom.NewPolygon(geom.Ring{
		{X: b.MinX, Y: b.MinY}, {X: b.MaxX, Y: b.MinY},
		{X: b.MaxX, Y: b.MaxY}, {X: b.MinX, Y: b.MaxY},
	})
}

// DensifiedRect builds a rectangle polygon with extra collinear vertices
// inserted along its edges until it has roughly n vertices; tiling
// datasets use this to reach realistic vertex counts while keeping shared
// borders exactly collinear.
func DensifiedRect(rng *rand.Rand, b geom.MBR, n int) *geom.Polygon {
	if n < 4 {
		n = 4
	}
	perSide := n / 4
	ring := make(geom.Ring, 0, n)
	side := func(a, c geom.Point) {
		ring = append(ring, a)
		for i := 1; i < perSide; i++ {
			t := float64(i) / float64(perSide)
			ring = append(ring, geom.Lerp(a, c, t))
		}
	}
	side(geom.Point{X: b.MinX, Y: b.MinY}, geom.Point{X: b.MaxX, Y: b.MinY})
	side(geom.Point{X: b.MaxX, Y: b.MinY}, geom.Point{X: b.MaxX, Y: b.MaxY})
	side(geom.Point{X: b.MaxX, Y: b.MaxY}, geom.Point{X: b.MinX, Y: b.MaxY})
	side(geom.Point{X: b.MinX, Y: b.MaxY}, geom.Point{X: b.MinX, Y: b.MinY})
	return geom.NewPolygon(ring)
}

// SplitRects recursively subdivides space into count rectangles with
// jittered split positions; neighbouring rectangles share exact borders,
// producing meets relations.
func SplitRects(rng *rand.Rand, space geom.MBR, count int) []geom.MBR {
	rects := []geom.MBR{space}
	for len(rects) < count {
		// Split the largest rectangle.
		best, bestArea := 0, -1.0
		for i, r := range rects {
			if a := r.Area(); a > bestArea {
				best, bestArea = i, a
			}
		}
		r := rects[best]
		f := 0.35 + rng.Float64()*0.3
		var a, b geom.MBR
		if r.Width() >= r.Height() {
			x := r.MinX + f*r.Width()
			a = geom.MBR{MinX: r.MinX, MinY: r.MinY, MaxX: x, MaxY: r.MaxY}
			b = geom.MBR{MinX: x, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
		} else {
			y := r.MinY + f*r.Height()
			a = geom.MBR{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: y}
			b = geom.MBR{MinX: r.MinX, MinY: y, MaxX: r.MaxX, MaxY: r.MaxY}
		}
		rects[best] = a
		rects = append(rects, b)
	}
	return rects
}
