package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/april"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/geom"
)

var (
	testSpace = geom.MBR{MinX: 0, MinY: 0, MaxX: 64, MaxY: 64}
	testOrder = uint(8)
)

// testDataset builds a small preprocessed dataset: a grid of squares,
// one with a hole, one triangle.
func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	sq := func(x, y, s float64) *geom.Polygon {
		return geom.NewPolygon(geom.Ring{
			{X: x, Y: y}, {X: x + s, Y: y}, {X: x + s, Y: y + s}, {X: x, Y: y + s},
		})
	}
	var polys []*geom.Polygon
	for i := 0.0; i < 4; i++ {
		for j := 0.0; j < 4; j++ {
			polys = append(polys, sq(2+i*14, 2+j*14, 9))
		}
	}
	polys = append(polys, geom.NewPolygon(
		geom.Ring{{X: 30, Y: 30}, {X: 50, Y: 30}, {X: 50, Y: 50}, {X: 30, Y: 50}},
		geom.Ring{{X: 38, Y: 38}, {X: 42, Y: 38}, {X: 42, Y: 42}, {X: 38, Y: 42}},
	))
	polys = append(polys, geom.NewPolygon(geom.Ring{
		{X: 1, Y: 60}, {X: 6, Y: 60}, {X: 3, Y: 63},
	}))
	b := april.NewBuilder(testSpace, testOrder)
	ds, err := dataset.Precompute("fixture", "test squares", polys, b)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func writeFixture(t *testing.T) (string, *dataset.Dataset) {
	t.Helper()
	ds := testDataset(t)
	path := filepath.Join(t.TempDir(), "fixture"+Ext)
	if err := Write(path, ds, testSpace, testOrder); err != nil {
		t.Fatal(err)
	}
	return path, ds
}

func TestRoundTripBitExact(t *testing.T) {
	path, ds := writeFixture(t)
	snap, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Name != "fixture" || snap.Entity != "test squares" {
		t.Fatalf("meta = %q/%q", snap.Name, snap.Entity)
	}
	if snap.Space != testSpace || snap.Order != testOrder {
		t.Fatalf("grid = %+v order %d", snap.Space, snap.Order)
	}
	if len(snap.Dataset.Objects) != len(ds.Objects) || len(snap.Entries) != len(ds.Objects) {
		t.Fatalf("object count = %d, entries %d, want %d",
			len(snap.Dataset.Objects), len(snap.Entries), len(ds.Objects))
	}
	for i, o := range ds.Objects {
		got := snap.Dataset.Objects[i]
		if got.ID != o.ID || got.MBR != o.MBR {
			t.Fatalf("object %d: id/MBR mismatch", i)
		}
		// The interval lists must survive bit-exact: the whole point of
		// the snapshot is that filters run on identical approximations.
		if !reflect.DeepEqual(got.Approx, o.Approx) {
			t.Fatalf("object %d: approximation not bit-exact", i)
		}
		if !reflect.DeepEqual(got.Poly, o.Poly) {
			t.Fatalf("object %d: geometry not exact", i)
		}
	}
}

func TestReadMissingIsNotCorrupt(t *testing.T) {
	_, err := Read(filepath.Join(t.TempDir(), "nope"+Ext))
	if err == nil || !os.IsNotExist(err) {
		t.Fatalf("missing file: err = %v, want not-exist", err)
	}
	if IsCorrupt(err) {
		t.Fatal("missing file must not classify as corrupt")
	}
}

// TestEveryBitFlipDetected flips one bit at every byte of the file and
// asserts the reader either reports corruption — never a wrong dataset,
// never a panic. Every byte is covered by a CRC, so detection must be
// total.
func TestEveryBitFlipDetected(t *testing.T) {
	path, _ := writeFixture(t)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if len(clean) > 4096 {
		stride = len(clean) / 4096
	}
	for off := 0; off < len(clean); off += stride {
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := fault.FlipBit(path, int64(off), uint(off%8)); err != nil {
			t.Fatal(err)
		}
		snap, err := Read(path)
		if err == nil {
			t.Fatalf("bit flip at byte %d went undetected (snapshot %q loaded)", off, snap.Name)
		}
		if !IsCorrupt(err) {
			t.Fatalf("bit flip at byte %d: err = %v, want CorruptError", off, err)
		}
	}
}

// TestEveryTruncationDetected truncates the snapshot at a sweep of
// offsets; every torn file must read as corrupt.
func TestEveryTruncationDetected(t *testing.T) {
	path, _ := writeFixture(t)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if len(clean) > 512 {
		stride = len(clean) / 512
	}
	for off := 0; off < len(clean); off += stride {
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := fault.TruncateAt(path, int64(off)); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(path); !IsCorrupt(err) {
			t.Fatalf("truncation at %d: err = %v, want CorruptError", off, err)
		}
	}
}

func TestVersionMismatchQuarantines(t *testing.T) {
	path, _ := writeFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Bump the version and re-seal the header so only the version check
	// can fail.
	binary.LittleEndian.PutUint16(data[4:], version+1)
	tbl := crc32.MakeTable(crc32.Castagnoli)
	binary.LittleEndian.PutUint32(data[headerLen-4:], crc32.Checksum(data[:headerLen-4], tbl))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Read(path)
	if !IsCorrupt(err) || !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("err = %v, want unsupported-version corruption", err)
	}
}

func TestTornWriteLeavesOldSnapshot(t *testing.T) {
	defer fault.Reset()
	path, ds := writeFixture(t)
	fault.Arm("snapshot.write", fault.Behavior{AfterBytes: 100})
	if err := Write(path, ds, testSpace, testOrder); err == nil {
		t.Fatal("torn write reported success")
	}
	fault.Reset()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("tmp file left behind after failed write")
	}
	if _, err := Read(path); err != nil {
		t.Fatalf("old snapshot damaged by failed write: %v", err)
	}
}

func TestWriteFaultPoints(t *testing.T) {
	defer fault.Reset()
	ds := testDataset(t)
	for _, point := range []string{"snapshot.write.create", "snapshot.write.sync", "snapshot.write.rename"} {
		fault.Reset()
		fault.Arm(point, fault.Behavior{})
		dir := t.TempDir()
		path := filepath.Join(dir, "x"+Ext)
		if err := Write(path, ds, testSpace, testOrder); err == nil {
			t.Fatalf("%s: write succeeded", point)
		}
		entries, _ := os.ReadDir(dir)
		if len(entries) != 0 {
			t.Fatalf("%s: directory not clean after failure: %v", point, entries)
		}
	}
}

func TestQuarantine(t *testing.T) {
	path, _ := writeFixture(t)
	q1, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("original still present after quarantine")
	}
	if !strings.Contains(filepath.Base(q1), ".corrupt-") {
		t.Fatalf("quarantine name %q", q1)
	}
	// A second corruption in the same second must not clobber the first
	// piece of evidence.
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	q2, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if q1 == q2 {
		t.Fatalf("quarantine reused name %q", q1)
	}
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"OLE", "counties", "a_b-c.1", "x"} {
		if err := ValidName(ok); err != nil {
			t.Errorf("ValidName(%q) = %v", ok, err)
		}
	}
	long := strings.Repeat("a", 200)
	for _, bad := range []string{
		"", ".", "..", "../etc", "..\\etc", "/etc/passwd", "a/b", "a\\b",
		".hidden", "-flag", "nul\x00byte", "new\nline", long,
	} {
		if err := ValidName(bad); err == nil {
			t.Errorf("ValidName(%q) accepted", bad)
		}
		if _, err := DatasetPath(t.TempDir(), bad); err == nil {
			t.Errorf("DatasetPath(%q) accepted", bad)
		}
	}
	p, err := DatasetPath("/data", "OLE")
	if err != nil || p != filepath.Join("/data", "OLE"+Ext) {
		t.Fatalf("DatasetPath = %q, %v", p, err)
	}
}

func TestHostileMetaCount(t *testing.T) {
	path, _ := writeFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the meta object count to a huge value and re-seal the
	// meta CRC and header CRC: the loader must fail on the section
	// bodies running dry, not allocate gigabytes.
	metaOff := binary.LittleEndian.Uint64(data[preambleLen+4:])
	metaLen := binary.LittleEndian.Uint64(data[preambleLen+12:])
	countOff := metaOff + metaLen - 4
	binary.LittleEndian.PutUint32(data[countOff:], 1<<31-1)
	tbl := crc32.MakeTable(crc32.Castagnoli)
	binary.LittleEndian.PutUint32(data[preambleLen+20:],
		crc32.Checksum(data[metaOff:metaOff+metaLen], tbl))
	binary.LittleEndian.PutUint32(data[headerLen-4:], crc32.Checksum(data[:headerLen-4], tbl))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); !IsCorrupt(err) {
		t.Fatalf("hostile count: err = %v, want CorruptError", err)
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	ds := testDataset(t)
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a"+Ext)
	p2 := filepath.Join(dir, "b"+Ext)
	if err := Write(p1, ds, testSpace, testOrder); err != nil {
		t.Fatal(err)
	}
	if err := Write(p2, ds, testSpace, testOrder); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if len(b1) == 0 || string(b1) != string(b2) {
		t.Fatal("snapshot bytes differ across identical writes")
	}
}

func TestCorruptErrorMessage(t *testing.T) {
	err := &CorruptError{Path: "/x/y.snap", Reason: "header checksum mismatch"}
	msg := err.Error()
	if !strings.Contains(msg, "/x/y.snap") || !strings.Contains(msg, "checksum") {
		t.Fatalf("message %q", msg)
	}
	if !IsCorrupt(fmt.Errorf("wrapped: %w", err)) {
		t.Fatal("IsCorrupt must see through wrapping")
	}
}
