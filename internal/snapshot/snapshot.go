// Package snapshot persists a fully preprocessed dataset — geometry
// blobs, APRIL interval lists, and the R-tree's bulk-load entries — as
// one durable, checksummed file, so a restarted server is warm without
// re-rasterizing anything (the paper's premise that approximations are
// "created once and used by all queries", made literal across process
// lifetimes, as the RI precursor paper treats its serialized interval
// lists).
//
// Format (version 3, little-endian):
//
//	magic "STJS" u32 | version u16 | sections u16
//	section table: per section { id u32, offset u64, length u64, crc u32 }
//	header crc u32 (CRC-32C of every header byte above)
//	section payloads, each covered by its table CRC
//
// Sections: meta (name, entity, grid space + order, object count),
// geom (length-prefixed store.EncodePolygon blobs), april
// (length-prefixed interval-list encodings), tree (the STR bulk-load
// entry array: id + MBR per object), epoch (compaction epoch, next
// object id, WAL watermark, cumulative tombstoned ids).
//
// Version 1 files (four sections, positional object ids, implicitly
// epoch 0) are still read, as are version 2 files (no WAL watermark).
// Version 2 stores each object's real id in the tree section, so a
// mutated dataset — where ids are sparse after deletions and upserts —
// round-trips exactly; the epoch section makes a snapshot a *complete
// epoch*: a warm start resumes from the highest epoch on disk and
// mutation ids continue from NextID, never reusing a tombstoned id.
// Version 3 adds the write-ahead-log LSN watermark to the epoch
// section: every WAL record at or below it is folded into the epoch,
// so warm-start replay applies only the records past it.
//
// Writes are atomic: tmp file in the same directory, fsync, rename,
// directory fsync. Reads verify every checksum and bound before
// trusting a byte; any mismatch is a *CorruptError, which callers
// quarantine with Quarantine rather than deleting — the torn file is
// evidence. A corrupt snapshot can therefore delay answers (the server
// rebuilds from source) but never change them.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/store"
)

const (
	magic   = 0x53544a53 // "STJS"
	version = 3

	secMeta   = 1
	secGeom   = 2
	secApril  = 3
	secTree   = 4
	secEpoch  = 5
	nSections = 5

	// v1Sections is the section count of format version 1 (no epoch
	// section, positional tree ids), still accepted by Read.
	v1Sections = 4

	preambleLen = 8                                      // magic + version + section count
	tableEntry  = 24                                     // id u32 + offset u64 + length u64 + crc u32
	headerLen   = preambleLen + nSections*tableEntry + 4 // + header crc

	// maxSectionLen bounds any single section (1 GiB): a corrupt table
	// must not force a huge allocation before the CRC check can fail.
	maxSectionLen = 1 << 30
)

// Ext is the snapshot file extension.
const Ext = ".snap"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a snapshot that failed a structural or checksum
// check. It is the signal to quarantine the file and rebuild from
// source — never to trust any part of its contents.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("snapshot: %s: corrupt: %s", e.Path, e.Reason)
}

// IsCorrupt reports whether err is a snapshot corruption (as opposed to
// the file simply not existing, or an I/O failure).
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// Snapshot is a decoded, fully verified snapshot.
type Snapshot struct {
	Name    string
	Entity  string
	Space   geom.MBR
	Order   uint
	Dataset *dataset.Dataset
	// Entries is the R-tree bulk-load input, in object order.
	Entries []join.Entry
	// FormatVersion is the on-disk format the file used. Version 1
	// files carry positional object ids (0..count-1) that shard-mode
	// loaders remap; version 2 ids are the objects' real ids.
	FormatVersion int
	// EpochMeta is the mutation lineage: zero-valued (epoch 0, NextID =
	// object count, no tombstones) for version 1 files.
	EpochMeta EpochMeta
}

// EpochMeta is the mutation lineage persisted with an epoch snapshot.
type EpochMeta struct {
	// Epoch is the compaction generation: 0 for a dataset built
	// straight from source, N after the Nth compaction folded the
	// delta layer into a new base.
	Epoch uint64
	// NextID is the id the next inserted object receives. Ids are
	// never reused, so NextID is strictly greater than every live and
	// tombstoned id.
	NextID int
	// Tombs is the cumulative set of ids deleted over the dataset's
	// history (ascending): ids that once existed, are gone from the
	// object array, and must never resurrect on a warm start.
	Tombs []int
	// WalLSN is the write-ahead-log watermark: every WAL record with
	// LSN <= WalLSN is folded into this epoch, so replay after a warm
	// start skips them and the log can be pruned through it. Zero for
	// version <= 2 files and for datasets never served with a WAL.
	WalLSN uint64
}

// DatasetPath maps a dataset name to its snapshot path under dir,
// rejecting names that could escape dir (path separators, "..",
// absolute paths): dataset names reach this function from network
// requests and foreign .stj headers, so they are hostile input.
func DatasetPath(dir, name string) (string, error) {
	if err := ValidName(name); err != nil {
		return "", err
	}
	return filepath.Join(dir, name+Ext), nil
}

// ValidName rejects dataset names unusable as snapshot file stems:
// empty, over-long, path-traversing, hidden, or containing separators
// or control characters.
func ValidName(name string) error {
	switch {
	case name == "":
		return errors.New("snapshot: empty dataset name")
	case len(name) > 128:
		return fmt.Errorf("snapshot: dataset name longer than 128 bytes")
	case name == "." || name == "..":
		return fmt.Errorf("snapshot: invalid dataset name %q", name)
	case strings.HasPrefix(name, "."), strings.HasPrefix(name, "-"):
		return fmt.Errorf("snapshot: dataset name %q must not start with %q", name, name[:1])
	}
	for _, r := range name {
		switch {
		case r == '/' || r == '\\' || r == 0 || r < 0x20:
			return fmt.Errorf("snapshot: dataset name %q contains path or control characters", name)
		}
	}
	if filepath.Base(name) != name || filepath.IsAbs(name) {
		return fmt.Errorf("snapshot: dataset name %q is not a bare file stem", name)
	}
	return nil
}

// Write atomically persists ds (preprocessed on a grid over space at
// order) to path as epoch 0 with no tombstones: the form every
// build-from-source snapshot takes. See WriteEpoch for mutated
// datasets.
func Write(path string, ds *dataset.Dataset, space geom.MBR, order uint) error {
	next := 0
	for _, o := range ds.Objects {
		if o.ID >= next {
			next = o.ID + 1
		}
	}
	return WriteEpoch(path, ds, space, order, EpochMeta{NextID: next})
}

// WriteEpoch atomically persists ds together with its mutation lineage
// em: tmp file, fsync, rename, directory fsync. On any error the tmp
// file is removed and an existing snapshot at path is left untouched.
// A snapshot that survives WriteEpoch is a *complete epoch* — a crash
// at any earlier instant leaves the previous epoch's file intact, which
// is exactly what a warm start resumes from.
func WriteEpoch(path string, ds *dataset.Dataset, space geom.MBR, order uint, em EpochMeta) (err error) {
	tombSet := make(map[int]struct{}, len(em.Tombs))
	for _, id := range em.Tombs {
		tombSet[id] = struct{}{}
	}
	for _, o := range ds.Objects {
		if o.ID < 0 || int64(o.ID) > math.MaxInt32 {
			return fmt.Errorf("snapshot: %s: object id %d outside u31", path, o.ID)
		}
		if o.ID >= em.NextID {
			return fmt.Errorf("snapshot: %s: object id %d >= NextID %d", path, o.ID, em.NextID)
		}
		if _, dead := tombSet[o.ID]; dead {
			return fmt.Errorf("snapshot: %s: object id %d is both live and tombstoned", path, o.ID)
		}
	}
	epochSec, err := encodeEpoch(em)
	if err != nil {
		return fmt.Errorf("snapshot: %s: %w", path, err)
	}
	sections := [nSections][]byte{
		secMeta - 1:  encodeMeta(ds, space, order),
		secGeom - 1:  encodeGeom(ds),
		secApril - 1: encodeApril(ds),
		secTree - 1:  encodeTree(ds),
		secEpoch - 1: epochSec,
	}

	header := make([]byte, 0, headerLen)
	header = binary.LittleEndian.AppendUint32(header, magic)
	header = binary.LittleEndian.AppendUint16(header, version)
	header = binary.LittleEndian.AppendUint16(header, nSections)
	offset := uint64(headerLen)
	for i, sec := range sections {
		header = binary.LittleEndian.AppendUint32(header, uint32(i+1))
		header = binary.LittleEndian.AppendUint64(header, offset)
		header = binary.LittleEndian.AppendUint64(header, uint64(len(sec)))
		header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(sec, castagnoli))
		offset += uint64(len(sec))
	}
	header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(header, castagnoli))

	if err := fault.Check("snapshot.write.create"); err != nil {
		return fmt.Errorf("snapshot: %s: %w", path, err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := fault.Writer("snapshot.write", f)
	if _, err = w.Write(header); err != nil {
		return fmt.Errorf("snapshot: %s: header: %w", path, err)
	}
	for i, sec := range sections {
		if _, err = w.Write(sec); err != nil {
			return fmt.Errorf("snapshot: %s: section %d: %w", path, i+1, err)
		}
	}
	if err = fault.Check("snapshot.write.sync"); err != nil {
		return fmt.Errorf("snapshot: %s: %w", path, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("snapshot: %s: fsync: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("snapshot: %s: close: %w", path, err)
	}
	if err = fault.Check("snapshot.write.rename"); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: %s: %w", path, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // best effort: the rename itself already landed
	}
	defer d.Close()
	d.Sync() // directory fsync is advisory on some filesystems
	return nil
}

// Read loads and fully verifies the snapshot at path. A missing file
// surfaces as an fs.ErrNotExist error; every structural, checksum, or
// decode failure surfaces as a *CorruptError.
func Read(path string) (*Snapshot, error) {
	if err := fault.Check("snapshot.read"); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	corrupt := func(format string, args ...any) error {
		return &CorruptError{Path: path, Reason: fmt.Sprintf(format, args...)}
	}
	if len(data) < preambleLen {
		return nil, corrupt("file shorter than preamble (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data); m != magic {
		return nil, corrupt("bad magic %#x", m)
	}
	// The version picks the section count, which picks the header
	// length: the magic + version must be inspected before the header
	// CRC can even be located. A flipped bit in either still lands
	// here — as a bad-magic / unsupported-version / checksum-mismatch
	// corruption, never a misread.
	ver := binary.LittleEndian.Uint16(data[4:])
	var nSec int
	switch ver {
	case 1:
		nSec = v1Sections
	case 2, version:
		nSec = nSections
	default:
		return nil, corrupt("unsupported version %d", ver)
	}
	hlen := preambleLen + nSec*tableEntry + 4
	if len(data) < hlen {
		return nil, corrupt("file shorter than header (%d bytes)", len(data))
	}
	header := data[:hlen]
	wantCRC := binary.LittleEndian.Uint32(header[hlen-4:])
	if got := crc32.Checksum(header[:hlen-4], castagnoli); got != wantCRC {
		return nil, corrupt("header checksum mismatch (%#x != %#x)", got, wantCRC)
	}
	if n := binary.LittleEndian.Uint16(header[6:]); n != uint16(nSec) {
		return nil, corrupt("unexpected section count %d", n)
	}

	sections := make([][]byte, nSec)
	for i := 0; i < nSec; i++ {
		ent := header[preambleLen+i*tableEntry:]
		id := binary.LittleEndian.Uint32(ent)
		off := binary.LittleEndian.Uint64(ent[4:])
		length := binary.LittleEndian.Uint64(ent[12:])
		crc := binary.LittleEndian.Uint32(ent[20:])
		if id != uint32(i+1) {
			return nil, corrupt("section %d has id %d", i+1, id)
		}
		if length > maxSectionLen || off > uint64(len(data)) || off+length > uint64(len(data)) {
			return nil, corrupt("section %d out of bounds (offset %d, length %d, file %d)",
				id, off, length, len(data))
		}
		sec := data[off : off+length]
		if got := crc32.Checksum(sec, castagnoli); got != crc {
			return nil, corrupt("section %d checksum mismatch (%#x != %#x)", id, got, crc)
		}
		sections[i] = sec
	}

	snap, err := decodeSections(int(ver), sections)
	if err != nil {
		return nil, corrupt("%v", err)
	}
	return snap, nil
}

// Quarantine renames a corrupt snapshot aside as
// "<path>.corrupt-<unix-timestamp>", preserving it as evidence, and
// returns the new name. The original path is free for a rebuilt
// snapshot afterwards.
//
// A candidate name is only considered free when Stat reports it does
// not exist: any other Stat error (EACCES, EIO, ENOTDIR) is propagated
// instead of being treated as "free", because os.Rename onto a name we
// merely failed to probe would silently overwrite a colliding candidate
// — destroying exactly the evidence quarantine exists to preserve.
func Quarantine(path string) (string, error) {
	dst := fmt.Sprintf("%s.corrupt-%d", path, time.Now().Unix())
	for i := 0; ; i++ {
		candidate := dst
		if i > 0 {
			candidate = fmt.Sprintf("%s.%d", dst, i)
		}
		_, err := os.Stat(candidate)
		if ferr := fault.Check("snapshot.quarantine.stat"); ferr != nil {
			err = ferr
		}
		switch {
		case err == nil:
			continue // name taken: probe the next suffix
		case errors.Is(err, fs.ErrNotExist):
			if rerr := os.Rename(path, candidate); rerr != nil {
				return "", rerr
			}
			return candidate, nil
		default:
			return "", fmt.Errorf("snapshot: quarantine probe %s: %w", candidate, err)
		}
	}
}

// --- section encoding ---

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendMBR(buf []byte, b geom.MBR) []byte {
	for _, v := range [4]float64{b.MinX, b.MinY, b.MaxX, b.MaxY} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func encodeMeta(ds *dataset.Dataset, space geom.MBR, order uint) []byte {
	buf := appendString(nil, ds.Name)
	buf = appendString(buf, ds.Entity)
	buf = appendMBR(buf, space)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(order))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ds.Objects)))
	return buf
}

func encodeGeom(ds *dataset.Dataset) []byte {
	var buf []byte
	for _, o := range ds.Objects {
		blob := store.EncodePolygon(o.Poly)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	return buf
}

func encodeApril(ds *dataset.Dataset) []byte {
	var buf []byte
	for _, o := range ds.Objects {
		enc := o.Approx.AppendEncode(nil)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	return buf
}

func encodeTree(ds *dataset.Dataset) []byte {
	var buf []byte
	for _, o := range ds.Objects {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o.ID))
		buf = appendMBR(buf, o.MBR)
	}
	return buf
}

func encodeEpoch(em EpochMeta) ([]byte, error) {
	if em.NextID < 0 || int64(em.NextID) > math.MaxInt32+1 {
		return nil, fmt.Errorf("epoch NextID %d outside u31 range", em.NextID)
	}
	buf := binary.LittleEndian.AppendUint64(nil, em.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(em.NextID))
	buf = binary.LittleEndian.AppendUint64(buf, em.WalLSN)
	// Tombstones are written sorted so identical states produce
	// identical bytes (writes stay deterministic).
	tombs := append([]int(nil), em.Tombs...)
	sort.Ints(tombs)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tombs)))
	prev := -1
	for _, id := range tombs {
		if id < 0 || int64(id) > math.MaxInt32 {
			return nil, fmt.Errorf("tombstone id %d outside u31 range", id)
		}
		if id == prev {
			return nil, fmt.Errorf("duplicate tombstone id %d", id)
		}
		if id >= em.NextID {
			return nil, fmt.Errorf("tombstone id %d >= NextID %d", id, em.NextID)
		}
		prev = id
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	return buf, nil
}

// --- section decoding ---

type reader struct {
	buf []byte
	off int
}

var errShort = errors.New("truncated section")

func (r *reader) u16() (uint16, error) {
	if r.off+2 > len(r.buf) {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) f64() (float64, error) {
	if r.off+8 > len(r.buf) {
		return 0, errShort
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if r.off+int(n) > len(r.buf) {
		return "", errShort
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(r.off)+uint64(n) > uint64(len(r.buf)) {
		return nil, errShort
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) mbr() (geom.MBR, error) {
	var b geom.MBR
	var err error
	if b.MinX, err = r.f64(); err != nil {
		return b, err
	}
	if b.MinY, err = r.f64(); err != nil {
		return b, err
	}
	if b.MaxX, err = r.f64(); err != nil {
		return b, err
	}
	b.MaxY, err = r.f64()
	return b, err
}

func (r *reader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

func decodeSections(ver int, sections [][]byte) (*Snapshot, error) {
	meta := &reader{buf: sections[secMeta-1]}
	snap := &Snapshot{FormatVersion: ver}
	var err error
	if snap.Name, err = meta.str(); err != nil {
		return nil, fmt.Errorf("meta name: %w", err)
	}
	if snap.Entity, err = meta.str(); err != nil {
		return nil, fmt.Errorf("meta entity: %w", err)
	}
	if snap.Space, err = meta.mbr(); err != nil {
		return nil, fmt.Errorf("meta space: %w", err)
	}
	order, err := meta.u32()
	if err != nil {
		return nil, fmt.Errorf("meta order: %w", err)
	}
	if order == 0 || order > 32 {
		return nil, fmt.Errorf("implausible grid order %d", order)
	}
	snap.Order = uint(order)
	count, err := meta.u32()
	if err != nil {
		return nil, fmt.Errorf("meta count: %w", err)
	}
	if err := meta.done(); err != nil {
		return nil, fmt.Errorf("meta: %w", err)
	}
	if err := ValidName(snap.Name); err != nil {
		return nil, fmt.Errorf("meta: %w", err)
	}

	// The expensive sections must agree with the meta count exactly;
	// preallocation is capped so a lying count cannot balloon memory
	// before the per-object bounds checks run dry.
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}

	// The epoch section (v2) is decoded before the object loop so the
	// tree ids can be validated against NextID. A v1 file is implicitly
	// epoch 0 with positional ids and nothing tombstoned.
	snap.EpochMeta = EpochMeta{NextID: int(count)}
	var seen map[int]struct{}
	if ver >= 2 {
		er := &reader{buf: sections[secEpoch-1]}
		if snap.EpochMeta.Epoch, err = er.u64(); err != nil {
			return nil, fmt.Errorf("epoch: %w", err)
		}
		next, err := er.u64()
		if err != nil {
			return nil, fmt.Errorf("epoch next id: %w", err)
		}
		if next > math.MaxInt32+1 {
			return nil, fmt.Errorf("epoch next id %d outside u31 range", next)
		}
		snap.EpochMeta.NextID = int(next)
		if uint64(count) > next {
			return nil, fmt.Errorf("epoch next id %d below object count %d", next, count)
		}
		if ver >= 3 {
			if snap.EpochMeta.WalLSN, err = er.u64(); err != nil {
				return nil, fmt.Errorf("epoch: %w", err)
			}
		}
		tombCount, err := er.u32()
		if err != nil {
			return nil, fmt.Errorf("epoch tombstones: %w", err)
		}
		tombHint := tombCount
		if tombHint > 1<<16 {
			tombHint = 1 << 16
		}
		tombs := make([]int, 0, tombHint)
		prev := -1
		for i := uint32(0); i < tombCount; i++ {
			id, err := er.u32()
			if err != nil {
				return nil, fmt.Errorf("epoch tombstone %d: %w", i, err)
			}
			if int(id) <= prev {
				return nil, fmt.Errorf("epoch tombstone %d: id %d not ascending", i, id)
			}
			if uint64(id) >= next {
				return nil, fmt.Errorf("epoch tombstone id %d >= next id %d", id, next)
			}
			prev = int(id)
			tombs = append(tombs, int(id))
		}
		if err := er.done(); err != nil {
			return nil, fmt.Errorf("epoch: %w", err)
		}
		snap.EpochMeta.Tombs = tombs
		seen = make(map[int]struct{}, capHint)
	}
	// Geometry blobs stream directly into one columnar arena (the
	// warm-start path: decode once, no rebuild-then-reflatten); objects
	// are materialized after Finish, when slab views and cached bounds
	// exist, and only then checked against the stored tree MBRs.
	var ab geom.ArenaBuilder
	geomR := &reader{buf: sections[secGeom-1]}
	aprilR := &reader{buf: sections[secApril-1]}
	treeR := &reader{buf: sections[secTree-1]}
	approxes := make([]april.Approx, 0, capHint)
	entries := make([]join.Entry, 0, capHint)
	for i := uint32(0); i < count; i++ {
		blob, err := geomR.bytes()
		if err != nil {
			return nil, fmt.Errorf("geom object %d: %w", i, err)
		}
		if err := store.DecodePolygonInto(&ab, blob); err != nil {
			return nil, fmt.Errorf("geom object %d: %w", i, err)
		}
		enc, err := aprilR.bytes()
		if err != nil {
			return nil, fmt.Errorf("april object %d: %w", i, err)
		}
		ap, n, err := april.DecodeApprox(enc)
		if err != nil {
			return nil, fmt.Errorf("april object %d: %w", i, err)
		}
		if n != len(enc) {
			return nil, fmt.Errorf("april object %d: %d trailing bytes", i, len(enc)-n)
		}
		id, err := treeR.u32()
		if err != nil {
			return nil, fmt.Errorf("tree object %d: %w", i, err)
		}
		if ver == 1 {
			// v1 ids are positional by construction.
			if id != i {
				return nil, fmt.Errorf("tree object %d: id %d out of order", i, id)
			}
		} else {
			// v2 ids are real: sparse after mutations, but unique,
			// below NextID, and disjoint from the tombstone set.
			if uint64(id) >= uint64(snap.EpochMeta.NextID) {
				return nil, fmt.Errorf("tree object %d: id %d >= next id %d", i, id, snap.EpochMeta.NextID)
			}
			if _, dup := seen[int(id)]; dup {
				return nil, fmt.Errorf("tree object %d: duplicate id %d", i, id)
			}
			seen[int(id)] = struct{}{}
		}
		box, err := treeR.mbr()
		if err != nil {
			return nil, fmt.Errorf("tree object %d: %w", i, err)
		}
		approxes = append(approxes, ap)
		entries = append(entries, join.Entry{Box: box, ID: int32(id)})
	}
	for _, id := range snap.EpochMeta.Tombs {
		if _, live := seen[id]; live {
			return nil, fmt.Errorf("tombstoned id %d is also live", id)
		}
	}
	for i, r := range []*reader{geomR, aprilR, treeR} {
		if err := r.done(); err != nil {
			return nil, fmt.Errorf("section %d: %w", i+2, err)
		}
	}
	arena := ab.Finish()
	objs := make([]*core.Object, 0, len(approxes))
	for i, ap := range approxes {
		poly := arena.Polygon(i)
		mbr := poly.Bounds()
		if entries[i].Box != mbr {
			return nil, fmt.Errorf("tree object %d: stored MBR disagrees with geometry", i)
		}
		objs = append(objs, &core.Object{ID: int(entries[i].ID), Poly: poly, MBR: mbr, Approx: ap})
	}
	snap.Dataset = dataset.FromPrecomputed(snap.Name, snap.Entity, objs, arena)
	snap.Entries = entries
	return snap, nil
}
