package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
)

// TestEpochRoundTrip: WriteEpoch persists the mutation lineage and Read
// restores it exactly — epoch, NextID, tombstones, non-positional ids.
func TestEpochRoundTrip(t *testing.T) {
	ds := testDataset(t)
	// Simulate a compacted dataset: ids with holes (objects 3 and 7
	// deleted), later ids from inserts.
	for i, o := range ds.Objects {
		o.ID = i * 2
	}
	em := EpochMeta{
		Epoch:  5,
		NextID: 100,
		Tombs:  []int{3, 7, 99},
		WalLSN: 41,
	}
	path := filepath.Join(t.TempDir(), "fixture"+Ext)
	if err := WriteEpoch(path, ds, testSpace, testOrder, em); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.FormatVersion != 3 {
		t.Fatalf("FormatVersion = %d, want 3", snap.FormatVersion)
	}
	if snap.EpochMeta.Epoch != em.Epoch || snap.EpochMeta.NextID != em.NextID ||
		snap.EpochMeta.WalLSN != em.WalLSN {
		t.Fatalf("EpochMeta = %+v, want %+v", snap.EpochMeta, em)
	}
	if !reflect.DeepEqual(snap.EpochMeta.Tombs, em.Tombs) {
		t.Fatalf("Tombs = %v, want %v", snap.EpochMeta.Tombs, em.Tombs)
	}
	for i, o := range snap.Dataset.Objects {
		if o.ID != i*2 {
			t.Fatalf("object %d decoded id %d, want %d", i, o.ID, i*2)
		}
	}
}

// TestWriteEpochRejectsBadMeta: ids and tombstones that violate the
// epoch invariants must fail at write time, not poison a future warm
// start.
func TestWriteEpochRejectsBadMeta(t *testing.T) {
	ds := testDataset(t)
	path := filepath.Join(t.TempDir(), "fixture"+Ext)
	n := len(ds.Objects)
	cases := []struct {
		name string
		em   EpochMeta
	}{
		{"id >= NextID", EpochMeta{NextID: n - 1}},
		{"tomb >= NextID", EpochMeta{NextID: n, Tombs: []int{n + 5}}},
		{"negative tomb", EpochMeta{NextID: n, Tombs: []int{-1}}},
		{"duplicate tomb", EpochMeta{NextID: n + 10, Tombs: []int{n + 1, n + 1}}},
		{"tomb of live id", EpochMeta{NextID: n, Tombs: []int{0}}},
	}
	for _, tc := range cases {
		if err := WriteEpoch(path, ds, testSpace, testOrder, tc.em); err == nil {
			t.Errorf("%s: WriteEpoch accepted %+v", tc.name, tc.em)
		}
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("rejected write must not leave a file behind")
	}
}

// TestReadV1Compat: a version-1 snapshot (four sections, positional
// ids, no epoch metadata) still reads, with epoch defaults synthesized.
// The file is assembled by hand with the v1 layout from the same
// section encoders the v1 writer used.
func TestReadV1Compat(t *testing.T) {
	ds := testDataset(t) // fresh build: ids are positional, as v1 required
	sections := [v1Sections][]byte{
		secMeta - 1:  encodeMeta(ds, testSpace, testOrder),
		secGeom - 1:  encodeGeom(ds),
		secApril - 1: encodeApril(ds),
		secTree - 1:  encodeTree(ds),
	}
	v1HeaderLen := preambleLen + v1Sections*tableEntry + 4
	header := make([]byte, 0, v1HeaderLen)
	header = binary.LittleEndian.AppendUint32(header, magic)
	header = binary.LittleEndian.AppendUint16(header, 1)
	header = binary.LittleEndian.AppendUint16(header, v1Sections)
	offset := uint64(v1HeaderLen)
	for i, sec := range sections {
		header = binary.LittleEndian.AppendUint32(header, uint32(i+1))
		header = binary.LittleEndian.AppendUint64(header, offset)
		header = binary.LittleEndian.AppendUint64(header, uint64(len(sec)))
		header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(sec, castagnoli))
		offset += uint64(len(sec))
	}
	header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(header, castagnoli))
	data := header
	for _, sec := range sections {
		data = append(data, sec...)
	}
	path := filepath.Join(t.TempDir(), "v1"+Ext)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.FormatVersion != 1 {
		t.Fatalf("FormatVersion = %d, want 1", snap.FormatVersion)
	}
	if snap.EpochMeta.Epoch != 0 || len(snap.EpochMeta.Tombs) != 0 {
		t.Fatalf("v1 epoch defaults wrong: %+v", snap.EpochMeta)
	}
	if snap.EpochMeta.NextID != len(ds.Objects) {
		t.Fatalf("v1 NextID = %d, want %d", snap.EpochMeta.NextID, len(ds.Objects))
	}
	if len(snap.Dataset.Objects) != len(ds.Objects) {
		t.Fatalf("decoded %d objects, want %d", len(snap.Dataset.Objects), len(ds.Objects))
	}
	for i, o := range snap.Dataset.Objects {
		if o.ID != i {
			t.Fatalf("v1 object %d decoded id %d, want positional", i, o.ID)
		}
	}
}

// TestReadV2Compat: a version-2 snapshot (epoch section without the
// WAL watermark) still reads, with WalLSN defaulting to 0. The file is
// assembled by hand with the v2 epoch-section layout.
func TestReadV2Compat(t *testing.T) {
	ds := testDataset(t)
	em := EpochMeta{Epoch: 3, NextID: len(ds.Objects) + 2, Tombs: []int{len(ds.Objects)}}
	epochSec := binary.LittleEndian.AppendUint64(nil, em.Epoch)
	epochSec = binary.LittleEndian.AppendUint64(epochSec, uint64(em.NextID))
	epochSec = binary.LittleEndian.AppendUint32(epochSec, uint32(len(em.Tombs)))
	for _, id := range em.Tombs {
		epochSec = binary.LittleEndian.AppendUint32(epochSec, uint32(id))
	}
	sections := [nSections][]byte{
		secMeta - 1:  encodeMeta(ds, testSpace, testOrder),
		secGeom - 1:  encodeGeom(ds),
		secApril - 1: encodeApril(ds),
		secTree - 1:  encodeTree(ds),
		secEpoch - 1: epochSec,
	}
	header := make([]byte, 0, headerLen)
	header = binary.LittleEndian.AppendUint32(header, magic)
	header = binary.LittleEndian.AppendUint16(header, 2)
	header = binary.LittleEndian.AppendUint16(header, nSections)
	offset := uint64(headerLen)
	for i, sec := range sections {
		header = binary.LittleEndian.AppendUint32(header, uint32(i+1))
		header = binary.LittleEndian.AppendUint64(header, offset)
		header = binary.LittleEndian.AppendUint64(header, uint64(len(sec)))
		header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(sec, castagnoli))
		offset += uint64(len(sec))
	}
	header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(header, castagnoli))
	data := header
	for _, sec := range sections {
		data = append(data, sec...)
	}
	path := filepath.Join(t.TempDir(), "v2"+Ext)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.FormatVersion != 2 {
		t.Fatalf("FormatVersion = %d, want 2", snap.FormatVersion)
	}
	if snap.EpochMeta.Epoch != em.Epoch || snap.EpochMeta.NextID != em.NextID {
		t.Fatalf("EpochMeta = %+v, want %+v", snap.EpochMeta, em)
	}
	if snap.EpochMeta.WalLSN != 0 {
		t.Fatalf("v2 WalLSN = %d, want 0", snap.EpochMeta.WalLSN)
	}
	if !reflect.DeepEqual(snap.EpochMeta.Tombs, em.Tombs) {
		t.Fatalf("Tombs = %v, want %v", snap.EpochMeta.Tombs, em.Tombs)
	}
}

// TestHostileEpochSection: corrupting the epoch section's invariants
// (while resealing both CRCs so only semantic validation can catch it)
// must surface as corruption, not as a bogus warm start.
func TestHostileEpochSection(t *testing.T) {
	ds := testDataset(t)
	dir := t.TempDir()

	mutate := func(name string, f func(sec []byte)) string {
		t.Helper()
		path := filepath.Join(dir, name+Ext)
		if err := WriteEpoch(path, ds, testSpace, testOrder,
			EpochMeta{Epoch: 2, NextID: len(ds.Objects) + 8, Tombs: []int{len(ds.Objects) + 1}}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Locate the epoch section via the header table, mutate it, and
		// reseal its CRC and the header CRC.
		ent := data[preambleLen+(secEpoch-1)*tableEntry:]
		off := binary.LittleEndian.Uint64(ent[4:])
		length := binary.LittleEndian.Uint64(ent[12:])
		sec := data[off : off+length]
		f(sec)
		binary.LittleEndian.PutUint32(ent[20:], crc32.Checksum(sec, castagnoli))
		binary.LittleEndian.PutUint32(data[headerLen-4:],
			crc32.Checksum(data[:headerLen-4], castagnoli))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	cases := []struct {
		name string
		f    func(sec []byte)
	}{
		// NextID below the object count: decoded ids would exceed it.
		{"next-too-small", func(sec []byte) {
			binary.LittleEndian.PutUint64(sec[8:], 1)
		}},
		// Tombstone id rewritten to a live object's id. The first tomb
		// sits after epoch u64 + next u64 + walLSN u64 + count u32.
		{"tomb-live", func(sec []byte) {
			binary.LittleEndian.PutUint32(sec[28:], 0)
		}},
		// NextID beyond int32: ids would not round-trip the tree section.
		{"next-overflow", func(sec []byte) {
			binary.LittleEndian.PutUint64(sec[8:], 1<<40)
		}},
	}
	for _, tc := range cases {
		path := mutate(tc.name, tc.f)
		_, err := Read(path)
		if err == nil {
			t.Errorf("%s: hostile epoch section read back clean", tc.name)
			continue
		}
		if !IsCorrupt(err) {
			t.Errorf("%s: error %v is not a CorruptError", tc.name, err)
		}
	}
}

// TestQuarantineStatErrorPropagates is the regression test for the
// probe-error bug: a Stat failure that is *not* ErrNotExist (EACCES,
// EIO, ENOTDIR...) must abort the quarantine with the error — the old
// code treated any error as "name free" and renamed over a path it
// never managed to probe.
func TestQuarantineStatErrorPropagates(t *testing.T) {
	path, _ := writeFixture(t)
	injected := errors.New("injected EIO")
	fault.Arm("snapshot.quarantine.stat", fault.Behavior{Err: injected})
	defer fault.Reset()

	qpath, err := Quarantine(path)
	if err == nil {
		t.Fatalf("Quarantine succeeded (%q) despite failing probe", qpath)
	}
	if !errors.Is(err, injected) {
		t.Fatalf("error %v does not wrap the probe failure", err)
	}
	if !strings.Contains(err.Error(), "quarantine probe") {
		t.Fatalf("error %v does not identify the probe", err)
	}
	// The original file must be untouched: no rename happened.
	if _, serr := os.Stat(path); serr != nil {
		t.Fatalf("snapshot moved despite probe failure: %v", serr)
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".corrupt-") {
			t.Fatalf("stray quarantine file %s", e.Name())
		}
	}

	// Disarmed, the same call succeeds.
	fault.Reset()
	if _, err := Quarantine(path); err != nil {
		t.Fatal(err)
	}
}
