// Package wal is the durability layer under dynamic datasets: a
// per-dataset append-only write-ahead log that makes acked mutations
// survive a crash between compactions. Each accepted mutation becomes
// one length-prefixed CRC-32C-framed record (kind, id, LSN, epoch,
// idempotency key, encoded geometry); batches of records land in a
// single write+fsync (group commit — batching is the caller's job, the
// log just makes one Append durable as a unit).
//
// Recovery mirrors the snapshot layer's discipline. On Open the
// segments are replayed oldest-first: a partial or CRC-failing record
// at the very tail of the log is torn-write debris from the crash and
// is truncated away; a bad record anywhere *before* the tail means
// silent corruption, so the offending segment is quarantined to
// `*.corrupt-<ts>` and every surviving record is re-logged into a
// fresh segment so the on-disk log stays replayable. Records carry
// monotonic LSNs; replay skips any record at or below the highest LSN
// already seen, which makes a failed segment deletion (after Prune)
// harmless duplication instead of double-apply.
//
// Once compaction persists epoch N+1 the caller calls Prune with the
// snapshot's LSN watermark and fully-covered segments are deleted — the
// log only ever spans the uncompacted delta.
//
// Fault seams: `wal.append` (torn/short/failed writes via
// fault.Writer), `wal.fsync`, and `wal.truncate` (post-torn-write
// recovery). After a failed write the log truncates back to the last
// durable offset and stays usable; if that truncation — or any fsync —
// fails, the log transitions to a permanent failed state and every
// subsequent Append returns the original error (callers surface 503,
// never a silent ack).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/snapshot"
)

// Record is one logged mutation. LSNs are assigned by the caller from
// NextLSN and must be contiguous within and across Appends; the log
// verifies this so a bookkeeping bug can't silently fork the sequence.
type Record struct {
	Kind  byte   // server mutation kind (insert/upsert/delete)
	ID    int    // object id the mutation resolved to
	LSN   uint64 // log sequence number, contiguous from 1
	Epoch uint64 // index epoch the mutation applied against
	Key   string // idempotency key, "" if none (max 255 bytes)
	Geom  []byte // store.EncodePolygon bytes, nil for deletes
}

const (
	segMagic   = 0x53544a57 // "STJW"
	segVersion = 1
	segHdrLen  = 8 // magic u32 | version u16 | reserved u16

	recHdrLen  = 8       // len u32 | crc u32 (CRC-32C over the payload)
	recFixed   = 22      // kind u8 | keyLen u8 | id u32 | lsn u64 | epoch u64
	maxRecord  = 1 << 26 // 64 MiB: far above any real geometry
	maxKeyLen  = 255     // keyLen is a single byte
	segPattern = "%s-%08d" + Ext
)

// Ext is the segment file extension.
const Ext = ".wal"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrFailed wraps the original fault once the log has entered its
// permanent failed state: durability can no longer be promised, so
// every Append is refused until the process restarts and recovers.
var ErrFailed = errors.New("wal: log failed, appends disabled")

// Options configures Open.
type Options struct {
	// MaxSegment rotates to a fresh segment once the active one
	// exceeds this many bytes. <= 0 means a single unbounded segment.
	MaxSegment int64
	// Floor is the caller's durable watermark: the highest LSN already
	// folded into a persisted snapshot. Open positions NextLSN above it
	// even when the log files hold nothing newer — after a prune empties
	// the log, a restart must not mint LSNs at or below the watermark
	// (replay would silently skip them as already-folded).
	Floor uint64
	// OnFsync, if set, observes the duration of every group-commit
	// fsync (metrics hook).
	OnFsync func(time.Duration)
	// Logf, if set, receives recovery diagnostics (truncated tails,
	// quarantined segments, skipped duplicates).
	Logf func(format string, args ...any)
}

type segInfo struct {
	seq     uint64
	path    string
	size    int64
	lastLSN uint64 // highest LSN in the segment (sealed segments only)
}

// Log is a single dataset's write-ahead log. Methods serialize
// internally: the server's group-commit leader is the sole Appender,
// but Prune (compaction goroutine) and Size (health handlers) run
// concurrently with it.
type Log struct {
	dir  string
	name string
	opt  Options

	mu      sync.Mutex
	f       *os.File  // active segment
	seq     uint64    // active segment sequence number
	size    int64     // durable size of the active segment
	sealed  []segInfo // older segments, ascending seq
	nextLSN uint64
	failed  error // non-nil once durability can no longer be promised
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Open loads the dataset's log from dir, recovering from torn tails
// and quarantining corrupt segments, and returns the surviving records
// in LSN order for replay. The returned log is positioned to append
// record nextLSN = max(last surviving LSN, opt.Floor) + 1.
func Open(dir, name string, opt Options) (*Log, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, err := scanSegments(dir, name)
	if err != nil {
		return nil, nil, err
	}

	var (
		recs        []Record
		lastLSN     uint64
		quarantined bool
	)
	for i := range segs {
		last := i == len(segs)-1
		sr, res, err := readSegment(segs[i].path, lastLSN, opt)
		if err != nil {
			return nil, nil, err
		}
		switch res {
		case segOK:
		case segTorn:
			if !last {
				// A torn record with later segments after it means the
				// tail of this file was lost while writes kept going:
				// mid-log corruption, not crash debris.
				res = segCorrupt
			}
		}
		if res == segCorrupt {
			dst, qerr := snapshot.Quarantine(segs[i].path)
			if qerr != nil {
				return nil, nil, fmt.Errorf("wal: quarantine %s: %w", segs[i].path, qerr)
			}
			opt.logf("wal: quarantined corrupt segment %s -> %s (%d records salvaged)",
				filepath.Base(segs[i].path), filepath.Base(dst), len(sr.recs))
			quarantined = true
		} else if res == segTorn && sr.tornAt >= 0 {
			if err := truncateSegment(segs[i].path, sr.tornAt); err != nil {
				return nil, nil, err
			}
			opt.logf("wal: truncated torn tail of %s at byte %d",
				filepath.Base(segs[i].path), sr.tornAt)
			segs[i].size = sr.tornAt
		}
		if sr.skipped > 0 {
			opt.logf("wal: skipped %d duplicate records (lsn <= %d) in %s",
				sr.skipped, lastLSN, filepath.Base(segs[i].path))
		}
		recs = append(recs, sr.recs...)
		if n := len(sr.recs); n > 0 {
			lastLSN = sr.recs[n-1].LSN
		}
		segs[i].lastLSN = lastLSN
	}

	// A crash during segment creation can leave a headerless file at
	// the tail; drop it rather than appending records headerless.
	if n := len(segs); n > 0 && segs[n-1].size < segHdrLen {
		if err := os.Remove(segs[n-1].path); err == nil || errors.Is(err, fs.ErrNotExist) {
			segs = segs[:n-1]
		} else {
			return nil, nil, err
		}
	}

	if lastLSN < opt.Floor {
		lastLSN = opt.Floor
	}
	l := &Log{dir: dir, name: name, opt: opt, nextLSN: lastLSN + 1}
	if quarantined {
		// Rebuild the on-disk log from the survivors: every remaining
		// good segment is folded into one fresh segment so segment
		// order and LSN order agree again, then the stale files go.
		nextSeq := uint64(1)
		if n := len(segs); n > 0 {
			nextSeq = segs[n-1].seq + 1
		}
		if err := l.openSegment(nextSeq); err != nil {
			return nil, nil, err
		}
		if len(recs) > 0 {
			if err := l.relog(recs); err != nil {
				return nil, nil, err
			}
		}
		for _, s := range segs {
			if _, err := os.Stat(s.path); err != nil {
				continue // the quarantined one was renamed away
			}
			if err := os.Remove(s.path); err != nil {
				opt.logf("wal: removing folded segment %s: %v", s.path, err)
			}
		}
		syncDir(dir)
		return l, recs, nil
	}

	if n := len(segs); n > 0 {
		// Re-open the newest segment for appending; older ones seal.
		active := segs[n-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, nil, err
		}
		if _, err := f.Seek(active.size, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.f, l.seq, l.size = f, active.seq, active.size
		l.sealed = append(l.sealed, segs[:n-1]...)
	} else if err := l.openSegment(1); err != nil {
		return nil, nil, err
	}
	return l, recs, nil
}

// relog rewrites already-durable records into the fresh active segment
// during quarantine recovery. It bypasses the LSN-contiguity check
// (the survivors may legitimately have gaps where corruption ate
// records) but still goes through the full durability path.
func (l *Log) relog(recs []Record) error {
	buf := make([]byte, 0, 4096)
	for _, r := range recs {
		var err error
		buf, err = appendRecord(buf, r)
		if err != nil {
			return err
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size += int64(len(buf))
	return nil
}

// NextLSN returns the LSN the caller must assign to the next record.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Size returns the total on-disk byte size of the log (all segments).
// This is the pending-bytes gauge: bytes of mutations not yet covered
// by a compacted epoch, minus per-segment headers.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.size
	for _, s := range l.sealed {
		total += s.size
	}
	return total
}

// Append encodes recs, writes them to the active segment, and fsyncs
// before returning — when it returns nil the batch is durable. Records
// must carry contiguous LSNs starting at NextLSN. On error nothing is
// promised durable; the log either recovered (truncated back to the
// durable prefix, next Append may succeed) or is permanently failed.
func (l *Log) Append(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return fmt.Errorf("%w: %w", ErrFailed, l.failed)
	}
	if len(recs) == 0 {
		return nil
	}
	for i, r := range recs {
		if want := l.nextLSN + uint64(i); r.LSN != want {
			return fmt.Errorf("wal: record %d has lsn %d, want %d", i, r.LSN, want)
		}
	}
	if l.opt.MaxSegment > 0 && l.size > l.opt.MaxSegment && l.size > segHdrLen {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	buf := make([]byte, 0, 512*len(recs))
	for _, r := range recs {
		var err error
		buf, err = appendRecord(buf, r)
		if err != nil {
			return err
		}
	}
	w := fault.Writer("wal.append", io.Writer(l.f))
	if _, err := w.Write(buf); err != nil {
		// The write may have landed partially: a torn record now sits
		// past the durable prefix. Truncate it away so the file stays
		// replayable; if even that fails the log is done for.
		terr := fault.Check("wal.truncate")
		if terr == nil {
			terr = l.f.Truncate(l.size)
		}
		if terr == nil {
			if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
				terr = serr
			}
		}
		if terr == nil {
			terr = l.f.Sync()
		}
		if terr != nil {
			l.failed = fmt.Errorf("append: %v; truncate recovery: %w", err, terr)
			l.opt.logf("wal: %s: append failed and recovery failed, log disabled: %v",
				l.name, l.failed)
			return fmt.Errorf("wal append %s: %w", l.name, err)
		}
		l.opt.logf("wal: %s: append failed, truncated back to %d: %v", l.name, l.size, err)
		return fmt.Errorf("wal append %s: %w", l.name, err)
	}
	start := time.Now()
	err := fault.Check("wal.fsync")
	if err == nil {
		err = l.f.Sync()
	}
	if err != nil {
		// After a failed fsync the page cache state is unknowable
		// (writes may or may not reach disk, and a retried fsync can
		// falsely succeed). Refuse all further appends — and chop the
		// unsynced batch back off the file (best effort) so a restart
		// does not resurrect records whose writers were told 503.
		terr := fault.Check("wal.truncate")
		if terr == nil {
			terr = l.f.Truncate(l.size)
		}
		if terr == nil {
			_, terr = l.f.Seek(l.size, io.SeekStart)
		}
		if terr != nil {
			l.opt.logf("wal: %s: dropping unsynced batch after failed fsync: %v", l.name, terr)
		}
		l.failed = fmt.Errorf("fsync: %w", err)
		l.opt.logf("wal: %s: fsync failed, log disabled: %v", l.name, err)
		return fmt.Errorf("wal fsync %s: %w", l.name, err)
	}
	if l.opt.OnFsync != nil {
		l.opt.OnFsync(time.Since(start))
	}
	l.size += int64(len(buf))
	l.nextLSN += uint64(len(recs))
	return nil
}

// rotate seals the active segment and starts a fresh one.
func (l *Log) rotate() error {
	if err := l.f.Close(); err != nil {
		return err
	}
	l.sealed = append(l.sealed, segInfo{
		seq:     l.seq,
		path:    l.segPath(l.seq),
		size:    l.size,
		lastLSN: l.nextLSN - 1,
	})
	return l.openSegment(l.seq + 1)
}

// openSegment creates and syncs a fresh segment with its header.
func (l *Log) openSegment(seq uint64) error {
	path := l.segPath(seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	syncDir(l.dir)
	l.f, l.seq, l.size = f, seq, segHdrLen
	return nil
}

// Prune deletes segments fully covered by the compacted epoch: every
// sealed segment whose last LSN is <= through, and — when the whole
// log is covered — the active segment too (after rotating off it). A
// deletion that fails is logged and retried implicitly next time; the
// LSN-monotonic skip in Open makes leftover duplicates harmless.
func (l *Log) Prune(through uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return fmt.Errorf("%w: %w", ErrFailed, l.failed)
	}
	if l.size > segHdrLen && l.nextLSN-1 <= through {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	keep := l.sealed[:0]
	for _, s := range l.sealed {
		if s.lastLSN > through {
			keep = append(keep, s)
			continue
		}
		if err := os.Remove(s.path); err != nil {
			l.opt.logf("wal: prune %s: %v", s.path, err)
			keep = append(keep, s)
		}
	}
	l.sealed = keep
	syncDir(l.dir)
	return nil
}

// Close releases the active segment handle. It does not fsync: every
// acked Append already did.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf(segPattern, l.name, seq))
}

// scanSegments finds this dataset's segments in dir, ascending seq.
// The name prefix is matched strictly (name + "-" + 8 digits + Ext) so
// dataset "a" never picks up segments of dataset "a-b".
func scanSegments(dir, name string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	prefix := name + "-"
	var segs []segInfo
	for _, e := range ents {
		fn := e.Name()
		if e.IsDir() || !strings.HasPrefix(fn, prefix) || !strings.HasSuffix(fn, Ext) {
			continue
		}
		digits := fn[len(prefix) : len(fn)-len(Ext)]
		if len(digits) != 8 {
			continue
		}
		var seq uint64
		ok := true
		for _, c := range digits {
			if c < '0' || c > '9' {
				ok = false
				break
			}
			seq = seq*10 + uint64(c-'0')
		}
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return nil, err
		}
		segs = append(segs, segInfo{seq: seq, path: filepath.Join(dir, fn), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i := 1; i < len(segs); i++ {
		if segs[i].seq == segs[i-1].seq {
			return nil, fmt.Errorf("wal: duplicate segment seq %d for %s", segs[i].seq, name)
		}
	}
	return segs, nil
}

type segResult int

const (
	segOK      segResult = iota // clean to the end
	segTorn                     // partial/CRC-bad final record at tornAt
	segCorrupt                  // bad header or bad mid-segment record
)

type segRead struct {
	recs    []Record
	tornAt  int64 // byte offset of the first torn byte (segTorn only)
	skipped int   // records dropped by the LSN-monotonic duplicate skip
}

// readSegment decodes one segment. Records with LSN <= floor are
// already-seen duplicates (a Prune deletion that failed) and are
// silently skipped. A decode failure on the *last* record frame is
// torn-write debris (segTorn, tornAt = offset of the bad frame); any
// frame that decodes but fails CRC followed by more decodable data, or
// a bad header, is segCorrupt.
func readSegment(path string, floor uint64, opt Options) (segRead, segResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segRead{}, segOK, err
	}
	if len(data) < segHdrLen {
		// Can't even hold a header: either a crash during segment
		// creation (empty/short file, torn) — truncation to 0 leaves
		// an unusable file, so treat short-header files as torn at 0
		// only when empty, else corrupt.
		if len(data) == 0 {
			return segRead{tornAt: -1}, segTorn, nil
		}
		return segRead{}, segCorrupt, nil
	}
	if binary.LittleEndian.Uint32(data[0:4]) != segMagic ||
		binary.LittleEndian.Uint16(data[4:6]) != segVersion {
		return segRead{}, segCorrupt, nil
	}
	var sr segRead
	off := int64(segHdrLen)
	for off < int64(len(data)) {
		rec, n, derr := decodeRecord(data[off:])
		if derr != nil {
			if errors.Is(derr, errTorn) {
				sr.tornAt = off
				return sr, segTorn, nil
			}
			// Framed but CRC-bad, or an impossible length. If this is
			// the final frame it is still torn-write debris; a frame
			// with valid data after it means real corruption. A
			// CRC-bad frame whose length field still frames the rest
			// of the file exactly is indistinguishable from a torn
			// final record — treat as torn.
			if n > 0 && off+int64(n) == int64(len(data)) {
				sr.tornAt = off
				return sr, segTorn, nil
			}
			return sr, segCorrupt, nil
		}
		off += int64(n)
		if rec.LSN <= floor {
			sr.skipped++
			continue
		}
		if k := len(sr.recs); k > 0 && rec.LSN != sr.recs[k-1].LSN+1 {
			opt.logf("wal: %s: lsn gap %d -> %d", filepath.Base(path), sr.recs[k-1].LSN, rec.LSN)
		}
		floor = rec.LSN
		sr.recs = append(sr.recs, rec)
	}
	return sr, segOK, nil
}

// truncateSegment chops torn-write debris off the end of a segment and
// syncs the result, so the next crash-free read sees a clean file.
func truncateSegment(path string, at int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(at); err != nil {
		return err
	}
	return f.Sync()
}

// appendRecord encodes r onto buf:
//
//	u32 len | u32 crc | kind u8 | keyLen u8 | id u32 | lsn u64 | epoch u64 | key | geom
//
// len covers the payload (everything after the two header words); crc
// is CRC-32C over the same payload.
func appendRecord(buf []byte, r Record) ([]byte, error) {
	if len(r.Key) > maxKeyLen {
		return nil, fmt.Errorf("wal: idempotency key %d bytes, max %d", len(r.Key), maxKeyLen)
	}
	if r.ID < 0 || int64(r.ID) > int64(^uint32(0)) {
		return nil, fmt.Errorf("wal: object id %d out of range", r.ID)
	}
	payLen := recFixed + len(r.Key) + len(r.Geom)
	if payLen > maxRecord {
		return nil, fmt.Errorf("wal: record %d bytes exceeds max %d", payLen, maxRecord)
	}
	start := len(buf)
	buf = append(buf, make([]byte, recHdrLen+payLen)...)
	p := buf[start+recHdrLen:]
	p[0] = r.Kind
	p[1] = byte(len(r.Key))
	binary.LittleEndian.PutUint32(p[2:6], uint32(r.ID))
	binary.LittleEndian.PutUint64(p[6:14], r.LSN)
	binary.LittleEndian.PutUint64(p[14:22], r.Epoch)
	copy(p[recFixed:], r.Key)
	copy(p[recFixed+len(r.Key):], r.Geom)
	binary.LittleEndian.PutUint32(buf[start:], uint32(payLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(p, castagnoli))
	return buf, nil
}

var (
	errTorn = errors.New("wal: torn record")
	errCRC  = errors.New("wal: record crc mismatch")
)

// decodeRecord decodes the first record in b, returning it and the
// total frame size consumed. errTorn means b ends before the frame
// does (n = 0); errCRC means the frame is complete but its checksum or
// structure is wrong (n = frame size when the length field was
// plausible, so the caller can tell tail debris from mid-log rot).
func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < recHdrLen {
		return Record{}, 0, errTorn
	}
	payLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if payLen < recFixed || payLen > maxRecord {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", errCRC, payLen)
	}
	if len(b) < recHdrLen+payLen {
		return Record{}, 0, errTorn
	}
	p := b[recHdrLen : recHdrLen+payLen]
	if crc32.Checksum(p, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return Record{}, recHdrLen + payLen, errCRC
	}
	keyLen := int(p[1])
	if recFixed+keyLen > payLen {
		return Record{}, recHdrLen + payLen, fmt.Errorf("%w: key length %d", errCRC, keyLen)
	}
	rec := Record{
		Kind:  p[0],
		ID:    int(binary.LittleEndian.Uint32(p[2:6])),
		LSN:   binary.LittleEndian.Uint64(p[6:14]),
		Epoch: binary.LittleEndian.Uint64(p[14:22]),
	}
	if keyLen > 0 {
		rec.Key = string(p[recFixed : recFixed+keyLen])
	}
	if g := p[recFixed+keyLen:]; len(g) > 0 {
		rec.Geom = append([]byte(nil), g...)
	}
	return rec, recHdrLen + payLen, nil
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() // advisory on some filesystems, same as snapshot
		d.Close()
	}
}
