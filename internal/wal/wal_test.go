package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/fault"
)

// mkRecs builds n sequential records starting at LSN start, with
// distinguishable geometry payloads and a key on every third record.
func mkRecs(start uint64, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		lsn := start + uint64(i)
		r := Record{
			Kind:  byte(lsn % 3),
			ID:    int(100 + lsn),
			LSN:   lsn,
			Epoch: lsn / 10,
			Geom:  []byte(fmt.Sprintf("geom-%d-payload", lsn)),
		}
		if lsn%3 == 0 {
			r.Key = fmt.Sprintf("key-%d", lsn)
		}
		recs[i] = r
	}
	return recs
}

// openAppend opens a fresh log in dir and appends recs in batches.
func openAppend(t *testing.T, dir string, opt Options, batches ...[]Record) *Log {
	t.Helper()
	l, replayed, err := Open(dir, "ds", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh log replayed %d records", len(replayed))
	}
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func reopen(t *testing.T, dir string, opt Options) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(dir, "ds", opt)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func wantRecs(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*"+Ext))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	all := mkRecs(1, 7)
	l := openAppend(t, dir, Options{}, all[:3], all[3:6], all[6:])
	if got := l.NextLSN(); got != 8 {
		t.Fatalf("NextLSN = %d, want 8", got)
	}
	if l.Size() <= segHdrLen {
		t.Fatalf("Size = %d, want > header", l.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, recs := reopen(t, dir, Options{})
	defer l2.Close()
	wantRecs(t, recs, all)
	if got := l2.NextLSN(); got != 8 {
		t.Fatalf("reopened NextLSN = %d, want 8", got)
	}
	// The log stays appendable across the reopen.
	if err := l2.Append(mkRecs(8, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestWALAppendLSNMismatch(t *testing.T) {
	dir := t.TempDir()
	l := openAppend(t, dir, Options{}, mkRecs(1, 2))
	defer l.Close()
	bad := mkRecs(5, 1) // next must be 3
	if err := l.Append(bad); err == nil {
		t.Fatal("append with forked lsn sequence succeeded")
	}
	// A correct batch still goes through: the bad one changed nothing.
	if err := l.Append(mkRecs(3, 1)); err != nil {
		t.Fatal(err)
	}
}

// TestWALTornTailTruncation sweeps every truncation point across the
// final record: whatever prefix of it survives the crash, replay keeps
// the records before it, chops the debris, and the log appends on.
func TestWALTornTailTruncation(t *testing.T) {
	master := t.TempDir()
	all := mkRecs(1, 4)
	l := openAppend(t, master, Options{}, all)
	l.Close()
	segs := segFiles(t, master)
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want 1", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Find where the last record's frame begins.
	var frame []byte
	frame, err = appendRecord(nil, all[3])
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(data) - len(frame)

	for cut := lastStart; cut < len(data); cut++ {
		dir := t.TempDir()
		dst := filepath.Join(dir, filepath.Base(segs[0]))
		if err := os.WriteFile(dst, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, recs := reopen(t, dir, Options{})
		wantRecs(t, recs, all[:3])
		// The torn bytes are gone from disk, not just ignored.
		if sz, err := fault.FileSize(dst); err != nil || sz != int64(lastStart) {
			t.Fatalf("cut %d: size after recovery = %d (err %v), want %d",
				cut, sz, err, lastStart)
		}
		// Appending resumes at the truncated record's LSN.
		if got := l2.NextLSN(); got != 4 {
			t.Fatalf("cut %d: NextLSN = %d, want 4", cut, got)
		}
		if err := l2.Append(mkRecs(4, 1)); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		l3, recs3 := reopen(t, dir, Options{})
		l3.Close()
		if len(recs3) != 4 {
			t.Fatalf("cut %d: post-repair replay = %d records, want 4", cut, len(recs3))
		}
	}
}

// TestWALTornTailBitFlip: a CRC-failing *final* record is tail debris,
// truncated like a short one — never a quarantine.
func TestWALTornTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	all := mkRecs(1, 3)
	l := openAppend(t, dir, Options{}, all)
	l.Close()
	seg := segFiles(t, dir)[0]
	sz, err := fault.FileSize(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.FlipBit(seg, sz-3, 2); err != nil {
		t.Fatal(err)
	}
	l2, recs := reopen(t, dir, Options{})
	defer l2.Close()
	wantRecs(t, recs, all[:2])
	if q, _ := filepath.Glob(filepath.Join(dir, "*.corrupt-*")); len(q) != 0 {
		t.Fatalf("tail bit flip quarantined the segment: %v", q)
	}
}

// TestWALMidLogCorruptionQuarantine: a bad record with good data after
// it is silent corruption — the segment is quarantined and the
// surviving records are re-logged so a second crash still replays them.
func TestWALMidLogCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	all := mkRecs(1, 5)
	l := openAppend(t, dir, Options{}, all)
	l.Close()
	seg := segFiles(t, dir)[0]
	// Flip a bit inside the second record's payload.
	frame0, _ := appendRecord(nil, all[0])
	if err := fault.FlipBit(seg, int64(segHdrLen+len(frame0)+recHdrLen+4), 1); err != nil {
		t.Fatal(err)
	}
	var logged []string
	opt := Options{Logf: func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) }}
	l2, recs := reopen(t, dir, opt)
	// Only the good prefix survives: records after the rot in the same
	// segment are unrecoverable (framing is gone).
	wantRecs(t, recs, all[:1])
	q, _ := filepath.Glob(filepath.Join(dir, "*.corrupt-*"))
	if len(q) != 1 {
		t.Fatalf("quarantined files = %v, want exactly 1 (log: %v)", q, logged)
	}
	// The survivors were re-logged: nuke nothing, reopen again, and
	// they are still there with no second quarantine.
	if err := l2.Append(mkRecs(2, 2)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, recs3 := reopen(t, dir, Options{})
	l3.Close()
	if len(recs3) != 3 {
		t.Fatalf("post-quarantine replay = %d records, want 3", len(recs3))
	}
	wantRecs(t, recs3[:1], all[:1])
	if q2, _ := filepath.Glob(filepath.Join(dir, "*.corrupt-*")); len(q2) != 1 {
		t.Fatalf("second open quarantined again: %v", q2)
	}
}

// TestWALHeaderCorruptionQuarantine: a segment with a bad magic cannot
// be trusted at all.
func TestWALHeaderCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	l := openAppend(t, dir, Options{}, mkRecs(1, 2))
	l.Close()
	seg := segFiles(t, dir)[0]
	if err := fault.FlipBit(seg, 1, 3); err != nil {
		t.Fatal(err)
	}
	l2, recs := reopen(t, dir, Options{})
	defer l2.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from a bad-header segment", len(recs))
	}
	if q, _ := filepath.Glob(filepath.Join(dir, "*.corrupt-*")); len(q) != 1 {
		t.Fatalf("quarantined files = %v, want 1", q)
	}
	// The log starts over cleanly.
	if err := l2.Append(mkRecs(1, 1)); err != nil {
		t.Fatal(err)
	}
}

// TestWALTornEmptySegmentRecreated: a crash between segment creation
// and header fsync can leave a headerless tail file; Open drops it and
// keeps appending.
func TestWALTornEmptySegmentRecreated(t *testing.T) {
	dir := t.TempDir()
	all := mkRecs(1, 2)
	l := openAppend(t, dir, Options{}, all)
	l.Close()
	if err := os.WriteFile(filepath.Join(dir, "ds-00000002"+Ext), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs := reopen(t, dir, Options{})
	defer l2.Close()
	wantRecs(t, recs, all)
	if err := l2.Append(mkRecs(3, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestWALRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	opt := Options{MaxSegment: 1} // rotate on every append past the header
	all := mkRecs(1, 6)
	l, _, err := Open(dir, "ds", opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if err := l.Append(all[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(segFiles(t, dir)); n < 3 {
		t.Fatalf("segments after 6 one-record appends = %d, want >= 3", n)
	}
	sizeBefore := l.Size()

	// Prune through LSN 4: segments fully covered go away, the rest
	// stay, and replay returns exactly the uncovered suffix.
	if err := l.Prune(4); err != nil {
		t.Fatal(err)
	}
	if got := l.Size(); got >= sizeBefore {
		t.Fatalf("Size after prune = %d, want < %d", got, sizeBefore)
	}
	l.Close()
	l2, recs := reopen(t, dir, opt)
	wantRecs(t, recs, all[4:])
	if got := l2.NextLSN(); got != 7 {
		t.Fatalf("NextLSN after prune+reopen = %d, want 7", got)
	}

	// Prune everything: the active segment rotates off and dies too.
	if err := l2.Prune(6); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, recs3 := reopen(t, dir, opt)
	defer l3.Close()
	if len(recs3) != 0 {
		t.Fatalf("replay after full prune = %d records, want 0", len(recs3))
	}
}

// TestWALFloorRestoresLSNAfterPrune: a fully pruned log holds no
// records, so a bare reopen would restart LSNs at 1 — below the
// snapshot watermark, where replay skips them as already-folded. The
// Floor option (the caller's persisted watermark) must keep the
// sequence monotonic across prune + restart.
func TestWALFloorRestoresLSNAfterPrune(t *testing.T) {
	dir := t.TempDir()
	l := openAppend(t, dir, Options{}, mkRecs(1, 5))
	if err := l.Prune(5); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, recs, err := Open(dir, "ds", Options{Floor: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 0 {
		t.Fatalf("replay after full prune = %d records, want 0", len(recs))
	}
	if got := l2.NextLSN(); got != 6 {
		t.Fatalf("NextLSN with floor 5 over empty log = %d, want 6", got)
	}
	// A floor below surviving records must not truncate the sequence.
	if err := l2.Append(mkRecs(6, 2)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, recs3, err := Open(dir, "ds", Options{Floor: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	wantRecs(t, recs3, mkRecs(6, 2))
	if got := l3.NextLSN(); got != 8 {
		t.Fatalf("NextLSN = %d, want 8", got)
	}
}

// TestWALFsyncFailureDropsUnsyncedBatch: a batch whose fsync failed was
// never acked; the log must not let it resurrect on restart.
func TestWALFsyncFailureDropsUnsyncedBatch(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	l := openAppend(t, dir, Options{}, mkRecs(1, 2))
	fault.Arm("wal.fsync", fault.Behavior{})
	if err := l.Append(mkRecs(3, 1)); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	fault.Reset()
	l.Close()
	l2, recs := reopen(t, dir, Options{})
	defer l2.Close()
	wantRecs(t, recs, mkRecs(1, 2))
	if got := l2.NextLSN(); got != 3 {
		t.Fatalf("NextLSN after dropped batch = %d, want 3", got)
	}
}

// TestWALPruneLeftoverDuplicatesSkipped: if deleting an old segment
// fails, its records show up again under an older seq on the next
// Open; the LSN-monotonic floor silently drops them.
func TestWALPruneLeftoverDuplicatesSkipped(t *testing.T) {
	dir := t.TempDir()
	all := mkRecs(1, 3)
	l := openAppend(t, dir, Options{}, all)
	l.Close()
	seg := segFiles(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a stale leftover: the same records under a later seq.
	if err := os.WriteFile(filepath.Join(dir, "ds-00000002"+Ext), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	opt := Options{Logf: func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) }}
	l2, recs := reopen(t, dir, opt)
	defer l2.Close()
	wantRecs(t, recs, all)
	if got := l2.NextLSN(); got != 4 {
		t.Fatalf("NextLSN = %d, want 4", got)
	}
	if len(logged) == 0 {
		t.Fatal("duplicate skip was silent; want a diagnostic")
	}
}

// TestWALNamePrefixIsStrict: dataset "a" must not replay segments of
// dataset "a-b" that live in the same directory.
func TestWALNamePrefixIsStrict(t *testing.T) {
	dir := t.TempDir()
	la, _, err := Open(dir, "a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Append([]Record{{Kind: 1, ID: 1, LSN: 1}}); err != nil {
		t.Fatal(err)
	}
	la.Close()
	lb, _, err := Open(dir, "a-b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.Append([]Record{{Kind: 1, ID: 9, LSN: 1}, {Kind: 1, ID: 10, LSN: 2}}); err != nil {
		t.Fatal(err)
	}
	lb.Close()
	la2, recs, err := Open(dir, "a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	la2.Close()
	if len(recs) != 1 || recs[0].ID != 1 {
		t.Fatalf("dataset 'a' replayed %+v, want its single record", recs)
	}
}

// TestWALFaultTornWrite: an injected mid-batch write failure must leave
// the file truncated back to the durable prefix, the append reported
// failed, and the log healthy for the next append.
func TestWALFaultTornWrite(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	all := mkRecs(1, 2)
	l := openAppend(t, dir, Options{}, all)
	defer l.Close()
	durable := l.Size()

	fault.Arm("wal.append", fault.Behavior{AfterBytes: 10})
	if err := l.Append(mkRecs(3, 2)); err == nil {
		t.Fatal("append through torn writer succeeded")
	}
	fault.Reset()
	if got := l.Size(); got != durable {
		t.Fatalf("size after torn append = %d, want recovered %d", got, durable)
	}
	if got := l.NextLSN(); got != 3 {
		t.Fatalf("NextLSN after torn append = %d, want 3", got)
	}
	// The log is still healthy: the same batch goes through now.
	if err := l.Append(mkRecs(3, 2)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, recs := reopen(t, dir, Options{})
	l2.Close()
	wantRecs(t, recs, mkRecs(1, 4))
}

// TestWALFaultFsyncPermanent: a failed fsync leaves durability
// unknowable — the log refuses every further append until restart.
func TestWALFaultFsyncPermanent(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	l := openAppend(t, dir, Options{}, mkRecs(1, 1))
	defer l.Close()

	fault.Arm("wal.fsync", fault.Behavior{})
	if err := l.Append(mkRecs(2, 1)); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	fault.Reset()
	err := l.Append(mkRecs(2, 1))
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("append after fsync failure = %v, want ErrFailed", err)
	}
	if err := l.Prune(1); !errors.Is(err, ErrFailed) {
		t.Fatalf("prune after fsync failure = %v, want ErrFailed", err)
	}
}

// TestWALFaultTruncateRecoveryPermanent: if the post-torn-write
// truncation itself fails, the on-disk tail is garbage we cannot
// remove — permanent failure, never a silent ack.
func TestWALFaultTruncateRecoveryPermanent(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	l := openAppend(t, dir, Options{}, mkRecs(1, 1))
	defer l.Close()

	fault.Arm("wal.append", fault.Behavior{AfterBytes: 5})
	fault.Arm("wal.truncate", fault.Behavior{})
	if err := l.Append(mkRecs(2, 1)); err == nil {
		t.Fatal("append through torn writer succeeded")
	}
	fault.Reset()
	if err := l.Append(mkRecs(2, 1)); !errors.Is(err, ErrFailed) {
		t.Fatalf("append after failed recovery = %v, want ErrFailed", err)
	}
	// Restart recovers: the torn debris is truncated by replay instead.
	l.Close()
	l2, recs := reopen(t, dir, Options{})
	defer l2.Close()
	wantRecs(t, recs, mkRecs(1, 1))
	if err := l2.Append(mkRecs(2, 1)); err != nil {
		t.Fatal(err)
	}
}

// TestWALFaultFsyncDelayObserved: the OnFsync hook sees every group
// commit (the metrics seam the histogram hangs off).
func TestWALFaultFsyncDelayObserved(t *testing.T) {
	dir := t.TempDir()
	var syncs int
	l, _, err := Open(dir, "ds", Options{OnFsync: func(time.Duration) { syncs++ }})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(mkRecs(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(mkRecs(4, 1)); err != nil {
		t.Fatal(err)
	}
	if syncs != 2 {
		t.Fatalf("OnFsync fired %d times, want 2 (one per group commit)", syncs)
	}
}

// FuzzWALRecord throws arbitrary bytes at the record decoder: it must
// never panic, and any frame it accepts must re-encode byte-identical
// (the framing is canonical).
func FuzzWALRecord(f *testing.F) {
	for _, r := range mkRecs(1, 5) {
		frame, err := appendRecord(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := decodeRecord(b)
		if err != nil {
			if errors.Is(err, errTorn) && n != 0 {
				t.Fatalf("torn decode consumed %d bytes", n)
			}
			return
		}
		if n < recHdrLen+recFixed || n > len(b) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		enc, eerr := appendRecord(nil, rec)
		if eerr != nil {
			t.Fatalf("re-encode of accepted record failed: %v", eerr)
		}
		if !reflect.DeepEqual(enc, b[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", enc, b[:n])
		}
	})
}
