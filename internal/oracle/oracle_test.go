package oracle

import (
	"context"
	"flag"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/de9im"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/wkt"
)

var (
	pairsFlag = flag.Int("oracle.pairs", 1500, "generated pairs for TestDifferential")
	seedFlag  = flag.Int64("oracle.seed", 1, "base seed for the differential run")
)

// report records failures, shrinking and writing each as a regression
// repro; it returns true once enough failures accumulated to stop.
func report(t *testing.T, fails []Failure, count *int) bool {
	t.Helper()
	for _, f := range fails {
		*count++
		path, err := WriteRegression(RegressionDir, f)
		if err != nil {
			t.Errorf("%v (regression write failed: %v)\nA %s\nB %s", f, err,
				wkt.MarshalMultiPolygon(f.Pair.A), wkt.MarshalMultiPolygon(f.Pair.B))
		} else {
			t.Errorf("%v\nshrunk repro written to %s", f, path)
		}
		if *count >= 5 {
			t.Fatalf("stopping after %d failures", *count)
			return true
		}
	}
	return false
}

// TestDifferential is the main fuzz loop: -oracle.pairs random lattice
// pairs through every check. make difftest runs it at 10k pairs.
func TestDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(*seedFlag))
	failures := 0
	for i := 0; i < *pairsFlag; i++ {
		p := GeneratePair(rng)
		if report(t, CheckPair(rng, p), &failures) {
			return
		}
	}
}

// corpusPairs builds pairs from the datagen corpus generators — the
// shapes the benchmarks and the server tests actually run on.
func corpusPairs(seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	var pairs []Pair
	add := func(name string, a, b *geom.Polygon) {
		pairs = append(pairs, Pair{Name: "corpus:" + name, A: single(a), B: single(b)})
	}
	for i := 0; i < 12; i++ {
		c := geom.Point{X: 100 + 800*rng.Float64(), Y: 100 + 800*rng.Float64()}
		host := datagen.Blob(rng, c, 30+40*rng.Float64(), 12+rng.Intn(16))
		add("inside", datagen.InsideBlob(rng, host, 0.4, 10, 2), host)
		add("nearmiss", datagen.NearMissBlob(rng, host, 10, 10, 2), host)
		other := datagen.Blob(rng, geom.Point{X: c.X + 25, Y: c.Y - 10}, 35, 10+rng.Intn(10))
		add("overlap", host, other)
		add("hole", datagen.BlobWithHole(rng, c, 45, 18), datagen.Blob(rng, c, 12, 9))
	}
	tiles := datagen.SplitRects(rng, geom.MBR{MinX: 0, MinY: 0, MaxX: 600, MaxY: 600}, 12)
	for i := 0; i+1 < len(tiles); i++ {
		add("tiles", datagen.DensifiedRect(rng, tiles[i], 12), datagen.DensifiedRect(rng, tiles[i+1], 12))
		add("tile-rect", datagen.Rect(tiles[i]), datagen.DensifiedRect(rng, tiles[i], 16))
	}
	return pairs
}

// TestCorpus replays datagen-generated geometry (arbitrary float
// coordinates) through the exact-transform subset of the checks.
func TestCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(*seedFlag + 7))
	failures := 0
	for _, p := range corpusPairs(*seedFlag + 7) {
		if report(t, CheckCorpusPair(rng, p), &failures) {
			return
		}
	}
}

// TestRegressions replays every shrunk repro in the checked-in corpus.
// This is the "forever" half of the oracle: once a bug is found and
// fixed, its minimal pair keeps being checked on every test run.
func TestRegressions(t *testing.T) {
	regs, err := LoadRegressions(RegressionDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) == 0 {
		t.Fatal("regression corpus is empty; the checked-in sentinels should always load")
	}
	for _, reg := range regs {
		reg := reg
		t.Run(reg.File, func(t *testing.T) {
			if reg.ParseOnly {
				// Loading already verified the vertex counts, which is
				// the whole point of a parse-only repro.
				return
			}
			if reg.ExpectInvalid {
				// The pinned fix is that validation rejects this input.
				bad := false
				for _, m := range []*geom.MultiPolygon{reg.Pair.A, reg.Pair.B} {
					for _, poly := range m.Polys {
						if geom.ValidatePolygon(poly) != nil {
							bad = true
						}
					}
				}
				if !bad {
					t.Errorf("pair marked MODE invalid, but validation accepts both geometries (stored note: %s)", reg.Note)
				}
				return
			}
			rng := rand.New(rand.NewSource(*seedFlag))
			for _, f := range CheckCorpusPair(rng, reg.Pair) {
				t.Errorf("%v (stored note: %s)", f, reg.Note)
			}
		})
	}
}

// latticePolys draws n single-part polygons from the pair generators.
func latticePolys(rng *rand.Rand, n int) []*geom.Polygon {
	var out []*geom.Polygon
	for len(out) < n {
		p := GeneratePair(rng)
		if len(p.A.Polys) == 1 {
			out = append(out, p.A.Polys[0])
		}
		if len(out) < n && len(p.B.Polys) == 1 {
			out = append(out, p.B.Polys[0])
		}
	}
	return out[:n]
}

// generation space of the lattice generators, padded.
var latticeSpace = geom.MBR{MinX: -64, MinY: -64, MaxX: 192, MaxY: 192}

// TestHarnessParallelAgainstOracle sweeps generated pairs through the
// parallel harness and cross-checks every verdict delivered via the
// visit callback against the brute-force relation.
func TestHarnessParallelAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(*seedFlag + 13))
	polys := latticePolys(rng, 40)
	b := april.NewBuilder(latticeSpace, 8)
	objs := make([]*core.Object, len(polys))
	for i, p := range polys {
		o, err := core.NewObject(i, p, b)
		if err != nil {
			t.Fatalf("object %d: %v", i, err)
		}
		objs[i] = o
	}
	var hp []harness.Pair
	var want []de9im.Relation
	for i := 0; i < len(objs) && len(hp) < 400; i++ {
		for j := i + 1; j < len(objs) && len(hp) < 400; j++ {
			hp = append(hp, harness.Pair{R: objs[i], S: objs[j]})
			want = append(want, MostSpecific(single(objs[i].Poly), single(objs[j].Poly)))
		}
	}
	for _, m := range []core.Method{core.PC, core.APRIL} {
		var mu sync.Mutex
		var bad []string
		_, err := harness.RunFindRelationParallelCtx(context.Background(), m, hp, 4,
			func(i int, res core.Result) {
				if res.Relation != want[i] {
					mu.Lock()
					bad = append(bad, wkt.MarshalPolygon(hp[i].R.Poly)+" vs "+wkt.MarshalPolygon(hp[i].S.Poly)+
						": got "+res.Relation.String()+", oracle "+want[i].String())
					mu.Unlock()
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range bad {
			if i >= 3 {
				t.Errorf("%s: ... and %d more", m, len(bad)-3)
				break
			}
			t.Errorf("%s: %s", m, d)
		}
	}
}

// TestServerRelateAgainstOracle probes a live server (full HTTP stack,
// micro-batched relate path) and checks the match set against the
// brute-force relation of the probe with every dataset object.
func TestServerRelateAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(*seedFlag + 29))
	data := latticePolys(rng, 30)
	reg := server.NewRegistry(latticeSpace, 8)
	if _, err := reg.Add("oracle", "lattice", data); err != nil {
		t.Fatal(err)
	}
	svc := server.New(reg, server.Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	cli := server.NewClient(ts.URL)
	ctx := context.Background()

	probes := latticePolys(rng, 10)
	for pi, probe := range probes {
		want := map[int]string{}
		for id, obj := range data {
			rel := MostSpecific(single(probe), single(obj))
			if rel != de9im.Disjoint {
				want[id] = rel.String()
			}
		}
		resp, err := cli.Relate(ctx, server.RelateRequest{
			Dataset: "oracle", WKT: wkt.MarshalPolygon(probe), Limit: len(data) + 1,
		})
		if err != nil {
			t.Fatalf("probe %d: %v", pi, err)
		}
		got := map[int]string{}
		for _, m := range resp.Matches {
			got[m.ID] = m.Relation
		}
		for id, rel := range want {
			if got[id] != rel {
				t.Errorf("probe %d vs object %d: server %q, oracle %q\nprobe %s\nobject %s",
					pi, id, got[id], rel, wkt.MarshalPolygon(probe), wkt.MarshalPolygon(data[id]))
			}
		}
		for id, rel := range got {
			if _, ok := want[id]; !ok {
				t.Errorf("probe %d: server matched object %d (%s), oracle says disjoint\nprobe %s\nobject %s",
					pi, id, rel, wkt.MarshalPolygon(probe), wkt.MarshalPolygon(data[id]))
			}
		}

		// Predicate mode must agree with the hierarchy over the oracle
		// relation.
		pred, err := cli.Relate(ctx, server.RelateRequest{
			Dataset: "oracle", WKT: wkt.MarshalPolygon(probe), Predicate: "intersects", Limit: len(data) + 1,
		})
		if err != nil {
			t.Fatalf("probe %d predicate: %v", pi, err)
		}
		gotP := map[int]bool{}
		for _, m := range pred.Matches {
			gotP[m.ID] = true
		}
		for id, obj := range data {
			rel := MostSpecific(single(probe), single(obj))
			if wantHolds := core.Implies(rel, de9im.Intersects); gotP[id] != wantHolds {
				t.Errorf("probe %d vs object %d: predicate intersects = %v, oracle relation %s",
					pi, id, gotP[id], rel)
			}
		}
	}
}

// TestShrinkPreservesFailure pins the shrinker contract on a synthetic
// failure: the shrunk pair still triggers the (artificial) predicate and
// is no larger than the input.
func TestShrinkPreservesFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := GeneratePair(rng)
	// Artificial failure: "A has at least 3 vertices" — shrinkable but
	// never vanishing.
	recheck := func(q Pair) string {
		n := 0
		for _, poly := range q.A.Polys {
			n += poly.NumVertices()
		}
		if n >= 3 {
			return "still big"
		}
		return ""
	}
	shrunk := Shrink(p, recheck)
	if recheck(shrunk) == "" {
		t.Fatal("shrink lost the failure")
	}
	if cost(shrunk) > cost(p) {
		t.Fatalf("shrink increased cost: %v -> %v", cost(p), cost(shrunk))
	}
	if !validPair(shrunk) {
		t.Fatal("shrunk pair is not valid")
	}
}

// TestGeneratorsValid: every generator must emit exact-predicate-valid
// pairs (GeneratePair retries internally; this pins each generator's hit
// rate is nonzero and the output is genuinely valid).
func TestGeneratorsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seen := map[string]int{}
	for i := 0; i < 300; i++ {
		p := GeneratePair(rng)
		if !validPair(p) {
			t.Fatalf("invalid pair from generator %s", p.Name)
		}
		seen[p.Name]++
	}
	for _, g := range generators {
		if seen[g.name] == 0 {
			t.Errorf("generator %s never produced a valid pair", g.name)
		}
	}
}
