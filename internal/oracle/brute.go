// Package oracle cross-checks the production find-relation pipeline
// against an independent brute-force refiner and a set of metamorphic
// invariants. It is the repository's differential correctness gate: every
// geometry pair that flows through it is evaluated twice — once by the
// production path (MBR filter → APRIL interval filters → DE-9IM
// refinement) and once by a naive O(n·m) implementation written from
// scratch — and any disagreement is shrunk to a minimal WKT pair and
// recorded under testdata/regressions/ for permanent replay.
//
// The brute refiner deliberately shares no algorithm with internal/de9im:
// point location uses the winding number (de9im uses slab-indexed ray
// crossing parity), boundary classification uses naive all-pairs noding
// (de9im uses a plane sweep), and the area entries II/IE/EI come from a
// strip scanline decomposition (de9im derives them from boundary classes
// plus interior-point probes). Only the Matrix/Dim value definitions are
// shared, since they are the vocabulary both sides must speak.
//
// All predicates here are exact over floats: no epsilon snapping. The
// generators therefore keep coordinates on a coarse binary lattice, where
// every cross product is computed without rounding, so an oracle verdict
// is ground truth rather than a second opinion.
//
// The flip side of exactness is the oracle's known limit: on arbitrary
// coordinates the production epsilon tolerance and the oracle's exact
// predicates legitimately disagree within ~Eps of a boundary, so the
// datagen-corpus checks (CheckCorpusPair) run only the transforms that
// are exact on any floats and the harness cannot prove epsilon-regime
// behaviour — it exercises it.
package oracle

import (
	"math"
	"sort"

	"repro/internal/de9im"
	"repro/internal/geom"
)

// xprod returns the exact-sign cross product (a-o) × (b-o).
func xprod(o, a, b geom.Point) float64 {
	return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
}

// onSegment reports whether p lies on the closed segment [a, b], with
// exact comparisons (no tolerance).
func onSegment(p, a, b geom.Point) bool {
	if xprod(a, b, p) != 0 {
		return false
	}
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// region classification of a point.
type side int

const (
	sideOut side = iota
	sideOn
	sideIn
)

// locate classifies p against the region of m by winding number over all
// ring edges. Shells are CCW and holes CW (the geom constructors
// normalize), so the total winding number is nonzero exactly for interior
// points of the multipolygon.
func locate(p geom.Point, m *geom.MultiPolygon) side {
	wn := 0
	onB := false
	m.Edges(func(a, b geom.Point) {
		if onB {
			return
		}
		if onSegment(p, a, b) {
			onB = true
			return
		}
		if a.Y <= p.Y {
			if b.Y > p.Y && xprod(a, b, p) > 0 {
				wn++
			}
		} else if b.Y <= p.Y && xprod(a, b, p) < 0 {
			wn--
		}
	})
	switch {
	case onB:
		return sideOn
	case wn != 0:
		return sideIn
	default:
		return sideOut
	}
}

// segParam returns the parameter of p along segment (a, b), projecting on
// the dominant axis.
func segParam(a, b, p geom.Point) float64 {
	dx, dy := b.X-a.X, b.Y-a.Y
	if math.Abs(dx) >= math.Abs(dy) {
		if dx == 0 {
			return 0
		}
		return (p.X - a.X) / dx
	}
	return (p.Y - a.Y) / dy
}

// segCuts appends the parameters in (0, 1) at which segment (a, b) meets
// segment (c, d) and reports whether the segments share any point at all.
func segCuts(a, b, c, d geom.Point, cuts []float64) ([]float64, bool) {
	d1 := xprod(c, d, a)
	d2 := xprod(c, d, b)
	d3 := xprod(a, b, c)
	d4 := xprod(a, b, d)

	if d1 == 0 && d2 == 0 {
		// Collinear: overlap (or touch) iff parameter ranges intersect.
		tc, td := segParam(a, b, c), segParam(a, b, d)
		lo, hi := math.Min(tc, td), math.Max(tc, td)
		if hi < 0 || lo > 1 {
			return cuts, false
		}
		if lo > 0 && lo < 1 {
			cuts = append(cuts, lo)
		}
		if hi > 0 && hi < 1 {
			cuts = append(cuts, hi)
		}
		return cuts, true
	}

	touch := false
	if (d1 > 0) != (d2 > 0) && (d3 > 0) != (d4 > 0) && d1 != 0 && d2 != 0 && d3 != 0 && d4 != 0 {
		// Proper crossing: cross(c,d,·) is affine along (a, b), zero at t.
		t := d1 / (d1 - d2)
		if t > 0 && t < 1 {
			cuts = append(cuts, t)
		}
		return cuts, true
	}
	// Endpoint touches.
	if d1 == 0 && onSegment(a, c, d) {
		touch = true
	}
	if d2 == 0 && onSegment(b, c, d) {
		touch = true
	}
	if d3 == 0 && onSegment(c, a, b) {
		touch = true
		if t := segParam(a, b, c); t > 0 && t < 1 {
			cuts = append(cuts, t)
		}
	}
	if d4 == 0 && onSegment(d, a, b) {
		touch = true
		if t := segParam(a, b, d); t > 0 && t < 1 {
			cuts = append(cuts, t)
		}
	}
	return cuts, touch
}

type bEdge struct{ a, b geom.Point }

func collect(m *geom.MultiPolygon) []bEdge {
	var out []bEdge
	m.Edges(func(a, b geom.Point) { out = append(out, bEdge{a, b}) })
	return out
}

// boundaryAgainst nodes every edge of xe at its intersections with ye and
// classifies the midpoint of each resulting piece against region y.
// It reports whether any piece lies inside, on, or outside y, and whether
// the two boundaries share at least one point.
func boundaryAgainst(xe, ye []bEdge, y *geom.MultiPolygon) (in, on, out, touch bool) {
	var cuts []float64
	for _, e := range xe {
		cuts = cuts[:0]
		for _, f := range ye {
			var t bool
			cuts, t = segCuts(e.a, e.b, f.a, f.b, cuts)
			touch = touch || t
		}
		sort.Float64s(cuts)
		prev := 0.0
		classify := func(t0, t1 float64) {
			if t1-t0 <= 1e-12 {
				return
			}
			mid := geom.Lerp(e.a, e.b, (t0+t1)/2)
			switch locate(mid, y) {
			case sideIn:
				in = true
			case sideOn:
				on = true
			default:
				out = true
			}
		}
		for _, t := range cuts {
			classify(prev, t)
			if t > prev {
				prev = t
			}
		}
		classify(prev, 1)
		if in && on && out {
			// Flags saturated; keep scanning only for touch.
			for _, e2 := range xe {
				if touch {
					break
				}
				for _, f := range ye {
					if _, t := segCuts(e2.a, e2.b, f.a, f.b, nil); t {
						touch = true
						break
					}
				}
			}
			return
		}
	}
	return
}

// areaFlags decides whether int(a)∩int(b), int(a)∩ext(b) and
// ext(a)∩int(b) are nonempty, by decomposing the plane into horizontal
// strips between consecutive critical heights (vertices and boundary
// intersection points). Inside a strip the crossing structure of both
// boundaries is constant, so classifying one midpoint per sub-interval of
// one scanline per strip is exact: every nonempty open region spans at
// least one full strip.
func areaFlags(a, b *geom.MultiPolygon) (ii, ie, ei bool) {
	ae, be := collect(a), collect(b)
	ys := make([]float64, 0, 2*(len(ae)+len(be)))
	for _, e := range ae {
		ys = append(ys, e.a.Y)
	}
	for _, e := range be {
		ys = append(ys, e.a.Y)
	}
	// Proper boundary crossings introduce critical heights too.
	for _, e := range ae {
		for _, f := range be {
			d1 := xprod(f.a, f.b, e.a)
			d2 := xprod(f.a, f.b, e.b)
			d3 := xprod(e.a, e.b, f.a)
			d4 := xprod(e.a, e.b, f.b)
			if (d1 > 0) != (d2 > 0) && (d3 > 0) != (d4 > 0) && d1 != 0 && d2 != 0 && d3 != 0 && d4 != 0 {
				t := d1 / (d1 - d2)
				ys = append(ys, e.a.Y+t*(e.b.Y-e.a.Y))
			}
		}
	}
	sort.Float64s(ys)

	crossings := func(edges []bEdge, y float64, xs []float64) []float64 {
		xs = xs[:0]
		for _, e := range edges {
			if (e.a.Y < y) != (e.b.Y < y) {
				xs = append(xs, e.a.X+(y-e.a.Y)*(e.b.X-e.a.X)/(e.b.Y-e.a.Y))
			}
		}
		sort.Float64s(xs)
		return xs
	}
	// odd reports whether the ray from x to +inf crosses an odd number of
	// boundary edges: even-odd membership, exact because no xs equals x.
	odd := func(xs []float64, x float64) bool {
		i := sort.SearchFloat64s(xs, x)
		return (len(xs)-i)%2 == 1
	}

	var xsA, xsB, merged []float64
	for i := 0; i+1 < len(ys) && !(ii && ie && ei); i++ {
		y0, y1 := ys[i], ys[i+1]
		y := (y0 + y1) / 2
		if !(y > y0 && y < y1) {
			continue
		}
		xsA = crossings(ae, y, xsA)
		xsB = crossings(be, y, xsB)
		if len(xsA) == 0 && len(xsB) == 0 {
			continue
		}
		merged = merged[:0]
		merged = append(merged, xsA...)
		merged = append(merged, xsB...)
		sort.Float64s(merged)
		for j := 0; j+1 < len(merged); j++ {
			x0, x1 := merged[j], merged[j+1]
			x := (x0 + x1) / 2
			if !(x > x0 && x < x1) {
				continue
			}
			inA, inB := odd(xsA, x), odd(xsB, x)
			switch {
			case inA && inB:
				ii = true
			case inA:
				ie = true
			case inB:
				ei = true
			}
		}
	}
	return
}

// Relate computes the DE-9IM matrix of (a, b) by brute force: naive
// all-pairs noding, winding-number point location, and a strip scanline
// for the area entries. For valid polygonal input on exactly-representable
// coordinates the result is exact.
func Relate(a, b *geom.MultiPolygon) de9im.Matrix {
	var m de9im.Matrix
	for i := range m {
		m[i] = de9im.DimF
	}
	m[de9im.EE] = de9im.Dim2

	ae, be := collect(a), collect(b)
	aIn, aOn, aOut, touch := boundaryAgainst(ae, be, b)
	bIn, bOn, bOut, _ := boundaryAgainst(be, ae, a)
	ii, ie, ei := areaFlags(a, b)

	if aIn {
		m[de9im.BI] = de9im.Dim1
	}
	if aOut {
		m[de9im.BE] = de9im.Dim1
	}
	if bIn {
		m[de9im.IB] = de9im.Dim1
	}
	if bOut {
		m[de9im.EB] = de9im.Dim1
	}
	switch {
	case aOn || bOn:
		m[de9im.BB] = de9im.Dim1
	case touch:
		m[de9im.BB] = de9im.Dim0
	}
	if ii {
		m[de9im.II] = de9im.Dim2
	}
	if ie {
		m[de9im.IE] = de9im.Dim2
	}
	if ei {
		m[de9im.EI] = de9im.Dim2
	}
	return m
}

// MostSpecific is the oracle's ground-truth relation for a pair: the most
// specific relation whose mask matches the brute-force matrix.
func MostSpecific(a, b *geom.MultiPolygon) de9im.Relation {
	return de9im.MostSpecific(Relate(a, b), de9im.AllRelations)
}
