package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/de9im"
	"repro/internal/geom"
	"repro/internal/interval"
)

// GridOrder is the APRIL grid order used for per-pair pipeline checks: a
// 2^6 × 2^6 grid over the pair's joint bounds keeps approximation
// building cheap while still producing non-trivial P and C lists.
const GridOrder = 6

// Failure is one check violation for a pair. Recheck re-runs exactly the
// violated check (with any random transform parameters baked in) so the
// shrinker can minimize the pair while preserving the failure.
type Failure struct {
	Check   string
	Detail  string
	Pair    Pair
	Recheck func(Pair) string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s [%s]: %s", f.Check, f.Pair.Name, f.Detail)
}

// CheckPair runs the full differential and metamorphic battery on one
// lattice-coordinate pair, returning every violated check. rng seeds the
// randomized metamorphic transforms; the returned failures re-check
// deterministically.
func CheckPair(rng *rand.Rand, p Pair) []Failure { return check(rng, p, true) }

// CheckCorpusPair is CheckPair for geometry off the generation lattice
// (the datagen corpus, regression replays): lattice translations are not
// exact on arbitrary floats, so the motion check is restricted to the
// transforms that are (90° rotation, power-of-two scaling).
func CheckCorpusPair(rng *rand.Rand, p Pair) []Failure { return check(rng, p, false) }

func check(rng *rand.Rand, p Pair, lattice bool) []Failure {
	var fails []Failure
	run := func(name string, fn func(Pair) string) {
		if d := fn(p); d != "" {
			fails = append(fails, Failure{Check: name, Detail: d, Pair: p, Recheck: fn})
		}
	}
	run("refine", checkRefine)
	run("oracle-converse", checkOracleConverse)
	run("converse", checkConverse)
	run("hierarchy", checkHierarchy)
	run("locate", checkLocate)
	run("representation", representationCheck(rng.Int63()))
	run("motion", motionCheck(rng.Int63(), lattice))
	run("pipeline", checkPipeline)
	return fails
}

// checkRefine is the core differential check: the production DE-9IM
// engine must reproduce the brute-force matrix exactly.
func checkRefine(p Pair) string {
	want := Relate(p.A, p.B)
	got := de9im.Relate(p.A, p.B)
	if got != want {
		return fmt.Sprintf("de9im.Relate = %s, oracle = %s", got, want)
	}
	return ""
}

// checkOracleConverse validates the oracle against itself: relate(B, A)
// must be the transpose of relate(A, B). A violation here is a bug in
// the oracle, not the production code.
func checkOracleConverse(p Pair) string {
	ab := Relate(p.A, p.B)
	ba := Relate(p.B, p.A)
	if ba.Transpose() != ab {
		return fmt.Sprintf("oracle(A,B) = %s but oracle(B,A) = %s (transpose %s)", ab, ba, ba.Transpose())
	}
	return ""
}

// checkConverse: production converse symmetry — swapping the arguments
// must transpose the matrix.
func checkConverse(p Pair) string {
	ab := de9im.Relate(p.A, p.B)
	ba := de9im.Relate(p.B, p.A)
	if ba.Transpose() != ab {
		return fmt.Sprintf("relate(A,B) = %s but relate(B,A) = %s (transpose %s)", ab, ba, ba.Transpose())
	}
	return ""
}

// checkHierarchy: pure relation-system consistency. For every predicate,
// holding against the ground-truth matrix must agree with the Fig. 2
// generalization hierarchy applied to the most specific relation.
func checkHierarchy(p Pair) string {
	m := Relate(p.A, p.B)
	most := de9im.MostSpecific(m, de9im.AllRelations)
	for rel := de9im.Relation(0); int(rel) < de9im.NumRelations; rel++ {
		if de9im.Holds(rel, m) != core.Implies(most, rel) {
			return fmt.Sprintf("matrix %s (most specific %s): Holds(%s) = %v but Implies = %v",
				m, most, rel, de9im.Holds(rel, m), core.Implies(most, rel))
		}
	}
	return ""
}

// checkLocate cross-checks the production point-location paths (direct
// ray cast and the slab-indexed Locator) against the oracle's winding
// number, at the adversarial points: vertices and edge midpoints of the
// partner geometry, and the geometry's own vertices (which must be on
// its boundary).
func checkLocate(p Pair) string {
	toLoc := func(s side) geom.Location {
		switch s {
		case sideIn:
			return geom.Inside
		case sideOn:
			return geom.OnBoundary
		default:
			return geom.Outside
		}
	}
	probe := func(target *geom.MultiPolygon, loc *geom.Locator, pt geom.Point) string {
		want := toLoc(locate(pt, target))
		if got := geom.LocateInMulti(pt, target); got != want {
			return fmt.Sprintf("LocateInMulti(%v) = %s, oracle %s", pt, got, want)
		}
		if got := loc.Locate(pt); got != want {
			return fmt.Sprintf("Locator.Locate(%v) = %s, oracle %s", pt, got, want)
		}
		return ""
	}
	check := func(target, source *geom.MultiPolygon) string {
		loc := geom.NewLocator(target)
		var detail string
		source.Edges(func(a, b geom.Point) {
			if detail != "" {
				return
			}
			if d := probe(target, loc, a); d != "" {
				detail = d
				return
			}
			// Edge midpoints stay exactly representable on the half-lattice.
			detail = probe(target, loc, geom.Midpoint(a, b))
		})
		if detail != "" {
			return detail
		}
		target.Edges(func(a, _ geom.Point) {
			if detail != "" {
				return
			}
			if got := geom.LocateInMulti(a, target); got != geom.OnBoundary {
				detail = fmt.Sprintf("own vertex %v located %s, want boundary", a, got)
			}
		})
		return detail
	}
	if d := check(p.A, p.B); d != "" {
		return "against A: " + d
	}
	if d := check(p.B, p.A); d != "" {
		return "against B: " + d
	}
	return ""
}

// reshapeRing rotates the ring's start vertex and possibly reverses it:
// a different encoding of the same point set.
func reshapeRing(rng *rand.Rand, r geom.Ring) geom.Ring {
	out := make(geom.Ring, 0, len(r))
	k := rng.Intn(len(r))
	out = append(out, r[k:]...)
	out = append(out, r[:k]...)
	if rng.Intn(2) == 0 {
		out.Reverse()
	}
	return out
}

// reshape re-encodes a multipolygon: part order shuffled, hole order
// shuffled, every ring start-rotated and possibly reversed. NewPolygon
// re-normalizes orientation, so the region is unchanged.
func reshape(rng *rand.Rand, m *geom.MultiPolygon) *geom.MultiPolygon {
	polys := make([]*geom.Polygon, len(m.Polys))
	copy(polys, m.Polys)
	rng.Shuffle(len(polys), func(i, j int) { polys[i], polys[j] = polys[j], polys[i] })
	out := make([]*geom.Polygon, len(polys))
	for i, poly := range polys {
		holes := make([]geom.Ring, len(poly.Holes))
		copy(holes, poly.Holes)
		rng.Shuffle(len(holes), func(a, b int) { holes[a], holes[b] = holes[b], holes[a] })
		for j, h := range holes {
			holes[j] = reshapeRing(rng, h)
		}
		out[i] = geom.NewPolygon(reshapeRing(rng, poly.Shell), holes...)
	}
	return geom.NewMultiPolygon(out...)
}

// representationCheck: relating differently-encoded but identical
// regions must give the identical matrix.
func representationCheck(seed int64) func(Pair) string {
	return func(p Pair) string {
		rng := rand.New(rand.NewSource(seed))
		base := de9im.Relate(p.A, p.B)
		ra := reshape(rng, p.A)
		rb := reshape(rng, p.B)
		if got := de9im.Relate(ra, rb); got != base {
			return fmt.Sprintf("reshaped relate = %s, original = %s", got, base)
		}
		return ""
	}
}

// mapMulti rebuilds m with every vertex passed through f, which must be
// orientation-preserving.
func mapMulti(m *geom.MultiPolygon, f func(geom.Point) geom.Point) *geom.MultiPolygon {
	mapRing := func(r geom.Ring) geom.Ring {
		out := make(geom.Ring, len(r))
		for i, v := range r {
			out[i] = f(v)
		}
		return out
	}
	polys := make([]*geom.Polygon, len(m.Polys))
	for i, poly := range m.Polys {
		holes := make([]geom.Ring, len(poly.Holes))
		for j, h := range poly.Holes {
			holes[j] = mapRing(h)
		}
		polys[i] = geom.NewPolygon(mapRing(poly.Shell), holes...)
	}
	return geom.NewMultiPolygon(polys...)
}

// motionCheck: rigid motions and uniform scalings that are exact in
// floating point (lattice translations, 90° rotation, power-of-two
// scaling) must preserve the DE-9IM matrix. Translation is exact only
// for lattice geometry, so it is skipped off-lattice.
func motionCheck(seed int64, lattice bool) func(Pair) string {
	return func(p Pair) string {
		rng := rand.New(rand.NewSource(seed))
		base := de9im.Relate(p.A, p.B)
		motions := []struct {
			name string
			f    func(geom.Point) geom.Point
		}{
			{
				"rot90",
				func(q geom.Point) geom.Point { return geom.Point{X: -q.Y, Y: q.X} },
			},
			{
				"scale",
				func() func(geom.Point) geom.Point {
					f := []float64{0.25, 0.5, 2, 4}[rng.Intn(4)]
					return func(q geom.Point) geom.Point { return geom.Point{X: q.X * f, Y: q.Y * f} }
				}(),
			},
		}
		if lattice {
			dx := snap(-40 + 80*rng.Float64())
			dy := snap(-40 + 80*rng.Float64())
			motions = append(motions, struct {
				name string
				f    func(geom.Point) geom.Point
			}{
				"translate",
				func(q geom.Point) geom.Point { return geom.Point{X: q.X + dx, Y: q.Y + dy} },
			})
		}
		mo := motions[rng.Intn(len(motions))]
		got := de9im.Relate(mapMulti(p.A, mo.f), mapMulti(p.B, mo.f))
		if got != base {
			return fmt.Sprintf("%s: relate = %s, original = %s", mo.name, got, base)
		}
		return ""
	}
}

// checkPipeline exercises the production pipelines end to end on
// single-part pairs: APRIL approximation soundness, the intersection
// filter, all four find-relation methods, every relate_p predicate, and
// the mask path — each against the brute-force ground truth.
func checkPipeline(p Pair) string {
	if len(p.A.Polys) != 1 || len(p.B.Polys) != 1 {
		return ""
	}
	want := Relate(p.A, p.B)
	wantRel := de9im.MostSpecific(want, de9im.AllRelations)

	mbr := p.A.Bounds().Expand(p.B.Bounds())
	space := geom.MBR{MinX: mbr.MinX - 1, MinY: mbr.MinY - 1, MaxX: mbr.MaxX + 1, MaxY: mbr.MaxY + 1}
	b := april.NewBuilder(space, GridOrder)
	r, err := core.NewObject(0, p.A.Polys[0], b)
	if err != nil {
		return fmt.Sprintf("build A: %v", err)
	}
	s, err := core.NewObject(1, p.B.Polys[0], b)
	if err != nil {
		return fmt.Sprintf("build B: %v", err)
	}

	for name, o := range map[string]*core.Object{"A": r, "B": s} {
		if !o.Approx.P.IsValid() {
			return fmt.Sprintf("%s: P list not normalized: %v", name, o.Approx.P)
		}
		if !o.Approx.C.IsValid() {
			return fmt.Sprintf("%s: C list not normalized: %v", name, o.Approx.C)
		}
		if len(o.Approx.P) > 0 && !interval.Inside(o.Approx.P, o.Approx.C) {
			return fmt.Sprintf("%s: P ⊄ C", name)
		}
	}

	switch april.IntersectionFilter(r.Approx, s.Approx) {
	case april.DefiniteDisjoint:
		if wantRel != de9im.Disjoint {
			return fmt.Sprintf("APRIL filter says disjoint, oracle says %s", wantRel)
		}
	case april.DefiniteIntersect:
		if want[de9im.II] != de9im.Dim2 {
			return fmt.Sprintf("APRIL filter says interiors intersect, oracle matrix %s", want)
		}
	}

	for _, m := range core.Methods {
		if res := core.FindRelation(m, r, s); res.Relation != wantRel {
			return fmt.Sprintf("%s find-relation = %s, oracle = %s", m, res.Relation, wantRel)
		}
	}

	for rel := de9im.Relation(0); int(rel) < de9im.NumRelations; rel++ {
		wantHolds := core.Implies(wantRel, rel)
		for _, m := range []core.Method{core.PC, core.OP2} {
			if got := core.RelatePred(m, r, s, rel); got.Holds != wantHolds {
				return fmt.Sprintf("%s relate_p(%s) = %v, oracle = %v", m, rel, got.Holds, wantHolds)
			}
		}
	}

	exact, err := de9im.ParseMask(want.String())
	if err != nil {
		return fmt.Sprintf("matrix %s not a mask: %v", want, err)
	}
	if !core.RelateMask(core.PC, r, s, exact).Holds {
		return fmt.Sprintf("mask %s (the pair's own matrix) reported not holding", exact)
	}
	for _, ms := range []string{"T********", "FF*FF****", "T*F**F***", "*T*******"} {
		k := de9im.MustMask(ms)
		if got := core.RelateMask(core.PC, r, s, k).Holds; got != k.Matches(want) {
			return fmt.Sprintf("mask %s = %v, oracle matrix %s says %v", ms, got, want, k.Matches(want))
		}
	}
	return ""
}
