package oracle

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/geom"
	"repro/internal/wkt"
)

// cloneMulti deep-copies a multipolygon.
func cloneMulti(m *geom.MultiPolygon) *geom.MultiPolygon {
	polys := make([]*geom.Polygon, len(m.Polys))
	for i, p := range m.Polys {
		polys[i] = p.Clone()
	}
	return geom.NewMultiPolygon(polys...)
}

// cost orders pairs for shrinking: fewer vertices first, then smaller
// coordinates.
func cost(p Pair) float64 {
	c := 0.0
	add := func(m *geom.MultiPolygon) {
		for _, poly := range m.Polys {
			c += 1000 * float64(poly.NumVertices())
			poly.Rings(func(r geom.Ring) {
				for _, v := range r {
					c += math.Abs(v.X) + math.Abs(v.Y)
				}
			})
		}
	}
	add(p.A)
	add(p.B)
	return c
}

// mutants yields structurally smaller variants of p: parts dropped,
// holes dropped, vertices decimated, coordinates snapped to coarser
// grids, and the whole pair translated toward the origin.
func mutants(p Pair, emit func(Pair)) {
	variant := func(mutate func(q Pair) bool) {
		q := Pair{Name: p.Name, A: cloneMulti(p.A), B: cloneMulti(p.B)}
		if mutate(q) {
			emit(q)
		}
	}
	sides := func(q Pair, side int) *geom.MultiPolygon {
		if side == 0 {
			return q.A
		}
		return q.B
	}
	for side := 0; side < 2; side++ {
		m := sides(p, side)
		// Drop one part.
		for i := range m.Polys {
			if len(m.Polys) < 2 {
				break
			}
			i := i
			variant(func(q Pair) bool {
				qm := sides(q, side)
				qm.Polys = append(qm.Polys[:i], qm.Polys[i+1:]...)
				return true
			})
		}
		for pi, poly := range m.Polys {
			pi := pi
			// Drop one hole.
			for hi := range poly.Holes {
				hi := hi
				variant(func(q Pair) bool {
					h := sides(q, side).Polys[pi].Holes
					sides(q, side).Polys[pi].Holes = append(h[:hi], h[hi+1:]...)
					return true
				})
			}
			// Drop one vertex of each ring.
			rings := 1 + len(poly.Holes)
			for ri := 0; ri < rings; ri++ {
				ri := ri
				var ring geom.Ring
				if ri == 0 {
					ring = poly.Shell
				} else {
					ring = poly.Holes[ri-1]
				}
				if len(ring) <= 3 {
					continue
				}
				for vi := range ring {
					vi := vi
					variant(func(q Pair) bool {
						qp := sides(q, side).Polys[pi]
						var r geom.Ring
						if ri == 0 {
							r = qp.Shell
						} else {
							r = qp.Holes[ri-1]
						}
						r = append(r[:vi], r[vi+1:]...)
						if ri == 0 {
							qp.Shell = r
						} else {
							qp.Holes[ri-1] = r
						}
						return true
					})
				}
			}
		}
	}
	// Snap every coordinate to a coarser grid.
	for _, g := range []float64{8, 4, 2, 1, 0.5} {
		g := g
		variant(func(q Pair) bool {
			snapAll(q, g)
			return true
		})
	}
	// Translate the pair toward the origin.
	mbr := p.A.Bounds().Expand(p.B.Bounds())
	dx, dy := -math.Floor(mbr.MinX), -math.Floor(mbr.MinY)
	if dx != 0 || dy != 0 {
		variant(func(q Pair) bool {
			shift := func(m *geom.MultiPolygon) {
				for _, poly := range m.Polys {
					poly.Rings(func(r geom.Ring) {
						for i := range r {
							r[i].X += dx
							r[i].Y += dy
						}
					})
				}
			}
			shift(q.A)
			shift(q.B)
			return true
		})
	}
}

func snapAll(p Pair, g float64) {
	do := func(m *geom.MultiPolygon) {
		for _, poly := range m.Polys {
			poly.Rings(func(r geom.Ring) {
				for i := range r {
					r[i].X = math.Round(r[i].X/g) * g
					r[i].Y = math.Round(r[i].Y/g) * g
				}
			})
		}
	}
	do(p.A)
	do(p.B)
}

// Shrink greedily minimizes a failing pair while recheck keeps reporting
// the failure. The mutant must also stay valid under the oracle's exact
// simplicity predicates, so the shrunk repro is as trustworthy as the
// original. The search is bounded to keep pathological cases from
// spinning.
func Shrink(p Pair, recheck func(Pair) string) Pair {
	cur := p
	budget := 4000
	for budget > 0 {
		improved := false
		mutants(cur, func(q Pair) {
			if improved || budget <= 0 {
				return
			}
			budget--
			if cost(q) >= cost(cur) || !validPair(q) {
				return
			}
			if recheck(q) == "" {
				return
			}
			cur = q
			improved = true
		})
		if !improved {
			break
		}
	}
	return cur
}

// RegressionDir is the checked-in corpus of shrunk failure repros,
// relative to the package directory.
const RegressionDir = "testdata/regressions"

// Regression is one stored repro: a pair plus the note describing the
// failure it once triggered. VertsA/VertsB, when nonzero, record how many
// vertices each geometry must parse back to (checked at load time).
// ParseOnly marks repros whose coordinates sit below the production
// epsilon: they pin WKT parse fidelity and are excluded from the
// geometric checks, whose tolerance semantics do not apply at that
// scale. ExpectInvalid marks pairs that geom validation must reject —
// they pin fixes where the bug was accepting the input at all.
type Regression struct {
	File          string
	Note          string
	Pair          Pair
	VertsA        int
	VertsB        int
	ParseOnly     bool
	ExpectInvalid bool
}

// WriteRegression shrinks the failure and stores it as a WKT pair under
// dir, returning the file path. The file name is derived from the check
// name and a hash of the shrunk geometry, so re-finding the same bug is
// idempotent.
func WriteRegression(dir string, f Failure) (string, error) {
	shrunk := Shrink(f.Pair, f.Recheck)
	wa := wkt.MarshalMultiPolygon(shrunk.A)
	wb := wkt.MarshalMultiPolygon(shrunk.B)
	h := fnv.New32a()
	fmt.Fprint(h, f.Check, wa, wb)
	name := fmt.Sprintf("%s-%08x.txt", f.Check, h.Sum32())
	detail := f.Recheck(shrunk)
	if detail == "" {
		detail = f.Detail + " (not reproduced after shrink)"
	}
	body := fmt.Sprintf("# %s: %s\n# from generator %s\nA %s\nB %s\nV %d %d\n",
		f.Check, strings.ReplaceAll(detail, "\n", " "), f.Pair.Name, wa, wb,
		numVerts(shrunk.A), numVerts(shrunk.B))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
