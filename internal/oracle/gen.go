package oracle

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Generated geometry lives on a binary lattice so that every orientation
// test in both the oracle and the production engine is computed without
// floating-point rounding: coordinates are multiples of 1/8 with
// magnitude ≤ a few hundred, keeping all cross products well inside the
// 53-bit exact-integer range (scaled by 2^-6) and far above the
// production Eps of 1e-12.
const latticeStep = 0.125

// snap rounds v to the generation lattice.
func snap(v float64) float64 { return math.Round(v/latticeStep) * latticeStep }

// Pair is one geometry pair under test.
type Pair struct {
	Name string
	A, B *geom.MultiPolygon
}

// simpleRing reports whether r is a valid simple ring under the oracle's
// exact predicates: at least 3 vertices, no repeated consecutive
// vertices, nonzero area, and no two edges sharing a point except
// adjacent edges at their common vertex.
func simpleRing(r geom.Ring) bool {
	n := len(r)
	if n < 3 {
		return false
	}
	area := 0.0
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if r[i] == r[j] {
			return false
		}
		area += r[i].X*r[j].Y - r[j].X*r[i].Y
	}
	if area == 0 {
		return false
	}
	for i := 0; i < n; i++ {
		a1, b1 := r[i], r[(i+1)%n]
		for j := i + 1; j < n; j++ {
			a2, b2 := r[j], r[(j+1)%n]
			_, touch := segCuts(a1, b1, a2, b2, nil)
			if !touch {
				continue
			}
			switch {
			case j == i+1:
				// Must meet exactly at the shared vertex b1 == a2 and
				// nowhere else: a collinear fold-back would overlap.
				if onSegment(a1, a2, b2) && a1 != a2 || onSegment(b2, a1, b1) && b2 != b1 {
					return false
				}
			case i == 0 && j == n-1:
				if onSegment(b1, a2, b2) && b1 != b2 || onSegment(a2, a1, b1) && a2 != a1 {
					return false
				}
			default:
				return false
			}
		}
	}
	return true
}

// validPair reports whether every ring of both geometries is simple.
func validPair(p Pair) bool {
	ok := true
	check := func(m *geom.MultiPolygon) {
		for _, poly := range m.Polys {
			if !simpleRing(poly.Shell) {
				ok = false
			}
			for _, h := range poly.Holes {
				if !simpleRing(h) {
					ok = false
				}
				for _, v := range h {
					if locate(v, geom.NewMultiPolygon(geom.NewPolygon(poly.Shell.Clone()))) != sideIn {
						ok = false
					}
				}
			}
		}
	}
	check(p.A)
	check(p.B)
	return ok
}

func single(p *geom.Polygon) *geom.MultiPolygon { return geom.NewMultiPolygon(p) }

// starRing builds a random star-shaped simple polygon around c with all
// vertices snapped to the lattice. Returns nil when snapping degenerated
// the ring.
func starRing(rng *rand.Rand, c geom.Point, rMin, rMax float64, n int) geom.Ring {
	if n < 3 {
		n = 3
	}
	ring := make(geom.Ring, 0, n)
	for i := 0; i < n; i++ {
		theta := (float64(i) + 0.2 + 0.6*rng.Float64()) / float64(n) * 2 * math.Pi
		rad := rMin + rng.Float64()*(rMax-rMin)
		pt := geom.Point{X: snap(c.X + rad*math.Cos(theta)), Y: snap(c.Y + rad*math.Sin(theta))}
		if len(ring) > 0 && pt == ring[len(ring)-1] {
			continue
		}
		ring = append(ring, pt)
	}
	if len(ring) >= 2 && ring[0] == ring[len(ring)-1] {
		ring = ring[:len(ring)-1]
	}
	if !simpleRing(ring) {
		return nil
	}
	return ring
}

func starPoly(rng *rand.Rand, c geom.Point, rMin, rMax float64, n int) *geom.Polygon {
	for attempt := 0; attempt < 16; attempt++ {
		if ring := starRing(rng, c, rMin, rMax, n); ring != nil {
			return geom.NewPolygon(ring)
		}
	}
	// Tiny lattice triangle fallback: always simple.
	return geom.NewPolygon(geom.Ring{
		{X: snap(c.X), Y: snap(c.Y)},
		{X: snap(c.X) + 2*latticeStep, Y: snap(c.Y)},
		{X: snap(c.X) + latticeStep, Y: snap(c.Y) + 2*latticeStep},
	})
}

// latticeRect builds an axis-aligned rectangle with lattice corners.
func latticeRect(x0, y0, x1, y1 float64) *geom.Polygon {
	return geom.NewPolygon(geom.Ring{
		{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1},
	})
}

// densifyRect is latticeRect with extra exactly-collinear lattice
// vertices along each side (integer subdivision of lattice spans keeps
// every inserted vertex on the lattice and exactly on the edge).
func densifyRect(rng *rand.Rand, x0, y0, x1, y1 float64) *geom.Polygon {
	var ring geom.Ring
	sub := func(a, b geom.Point) {
		ring = append(ring, a)
		steps := int(math.Round(math.Abs(b.X-a.X+b.Y-a.Y) / latticeStep))
		if steps <= 1 {
			return
		}
		k := 1 + rng.Intn(3)
		if k >= steps {
			k = steps - 1
		}
		for i := 1; i <= k; i++ {
			t := float64(i*(steps/(k+1))) * latticeStep
			if t <= 0 {
				continue
			}
			pt := a
			switch {
			case b.X > a.X:
				pt.X += t
			case b.X < a.X:
				pt.X -= t
			case b.Y > a.Y:
				pt.Y += t
			default:
				pt.Y -= t
			}
			if pt != ring[len(ring)-1] && pt != b {
				ring = append(ring, pt)
			}
		}
	}
	sub(geom.Point{X: x0, Y: y0}, geom.Point{X: x1, Y: y0})
	sub(geom.Point{X: x1, Y: y0}, geom.Point{X: x1, Y: y1})
	sub(geom.Point{X: x1, Y: y1}, geom.Point{X: x0, Y: y1})
	sub(geom.Point{X: x0, Y: y1}, geom.Point{X: x0, Y: y0})
	return geom.NewPolygon(ring)
}

// staircase builds a rectilinear "histogram" polygon: a flat base with a
// random column profile on top. Every edge is axis-parallel — the
// horizontal/collinear feast for ray-cast and noding edge cases.
func staircase(rng *rand.Rand, x0, y0 float64, cols int, colW, maxH float64) *geom.Polygon {
	heights := make([]float64, cols)
	for i := range heights {
		heights[i] = snap(latticeStep + rng.Float64()*maxH)
	}
	ring := geom.Ring{
		{X: x0, Y: y0},
		{X: x0 + float64(cols)*colW, Y: y0},
	}
	for i := cols - 1; i >= 0; i-- {
		xr := x0 + float64(i+1)*colW
		xl := x0 + float64(i)*colW
		top := y0 + heights[i]
		if ring[len(ring)-1].Y != top {
			ring = append(ring, geom.Point{X: xr, Y: top})
		}
		ring = append(ring, geom.Point{X: xl, Y: top})
	}
	// The left edge from the last vertex down to the start closes the
	// ring implicitly.
	return geom.NewPolygon(ring)
}

// randLattice picks a lattice value in [lo, hi].
func randLattice(rng *rand.Rand, lo, hi float64) float64 {
	return snap(lo + rng.Float64()*(hi-lo))
}

// Generator produces a random pair; it must return a valid pair.
type generator struct {
	name string
	fn   func(rng *rand.Rand) Pair
}

var generators = []generator{
	{"blobs", genBlobs},
	{"rects", genRects},
	{"staircases", genStaircases},
	{"tiles", genTiles},
	{"nested", genNested},
	{"duplicate", genDuplicate},
	{"shared-edge", genSharedEdge},
	{"corner-touch", genCornerTouch},
	{"hole-play", genHolePlay},
	{"multipart", genMultipart},
	{"pinned", genPinned},
	{"slivers", genSlivers},
}

// GeneratePair draws one random pair from the generator mix. The result
// is always valid under the oracle's exact predicates.
func GeneratePair(rng *rand.Rand) Pair {
	for {
		g := generators[rng.Intn(len(generators))]
		p := g.fn(rng)
		p.Name = g.name
		if validPair(p) {
			return p
		}
	}
}

func genBlobs(rng *rand.Rand) Pair {
	c1 := geom.Point{X: randLattice(rng, 20, 100), Y: randLattice(rng, 20, 100)}
	r1 := 2 + rng.Float64()*12
	// Second center from overlapping to disjoint distances.
	d := rng.Float64() * 2.2 * r1
	ang := rng.Float64() * 2 * math.Pi
	c2 := geom.Point{X: snap(c1.X + d*math.Cos(ang)), Y: snap(c1.Y + d*math.Sin(ang))}
	r2 := 1 + rng.Float64()*10
	a := starPoly(rng, c1, r1*0.5, r1, 4+rng.Intn(12))
	b := starPoly(rng, c2, r2*0.5, r2, 4+rng.Intn(12))
	return Pair{A: single(a), B: single(b)}
}

func genRects(rng *rand.Rand) Pair {
	x0 := randLattice(rng, 0, 60)
	y0 := randLattice(rng, 0, 60)
	w := randLattice(rng, 1, 30)
	h := randLattice(rng, 1, 30)
	a := latticeRect(x0, y0, x0+w, y0+h)
	// Second rectangle at a small lattice offset: equal, nested,
	// overlapping, edge-sharing, corner-touching and disjoint cases all
	// arise from the random offsets.
	dx := randLattice(rng, -w*1.2, w*1.2)
	dy := randLattice(rng, -h*1.2, h*1.2)
	w2 := randLattice(rng, 1, 30)
	h2 := randLattice(rng, 1, 30)
	b := latticeRect(x0+dx, y0+dy, x0+dx+w2, y0+dy+h2)
	return Pair{A: single(a), B: single(b)}
}

func genStaircases(rng *rand.Rand) Pair {
	x0 := randLattice(rng, 0, 40)
	y0 := randLattice(rng, 0, 40)
	cols := 2 + rng.Intn(5)
	a := staircase(rng, x0, y0, cols, snap(1+rng.Float64()*4), 8)
	// The partner staircase starts on the same baseline or a lattice
	// offset, so horizontal tops frequently coincide with the other's
	// baseline or column tops.
	dx := randLattice(rng, -4, 4)
	dy := randLattice(rng, -6, 6)
	b := staircase(rng, x0+dx, y0+dy, 2+rng.Intn(5), snap(1+rng.Float64()*4), 8)
	return Pair{A: single(a), B: single(b)}
}

func genTiles(rng *rand.Rand) Pair {
	// Two rectangles sharing one full edge exactly, densified with
	// collinear vertices at different subdivisions on each side.
	x0 := randLattice(rng, 0, 50)
	y0 := randLattice(rng, 0, 50)
	xm := x0 + randLattice(rng, 2, 20)
	x1 := xm + randLattice(rng, 2, 20)
	y1 := y0 + randLattice(rng, 2, 20)
	a := densifyRect(rng, x0, y0, xm, y1)
	b := densifyRect(rng, xm, y0, x1, y1)
	if rng.Intn(2) == 0 {
		a, b = b, a
	}
	return Pair{A: single(a), B: single(b)}
}

func genNested(rng *rand.Rand) Pair {
	x0 := randLattice(rng, 10, 50)
	y0 := randLattice(rng, 10, 50)
	w := randLattice(rng, 8, 40)
	h := randLattice(rng, 8, 40)
	outer := latticeRect(x0, y0, x0+w, y0+h)
	switch rng.Intn(3) {
	case 0:
		// Strictly inside.
		mx := randLattice(rng, 1, w/2-latticeStep)
		my := randLattice(rng, 1, h/2-latticeStep)
		if mx < latticeStep || my < latticeStep || x0+w-mx <= x0+mx || y0+h-my <= y0+my {
			return genNested(rng)
		}
		inner := latticeRect(x0+mx, y0+my, x0+w-mx, y0+h-my)
		return Pair{A: single(inner), B: single(outer)}
	case 1:
		// Covered-by: inner shares part of the outer boundary.
		mx := randLattice(rng, 1, w/2)
		if mx < latticeStep || x0+w-mx <= x0 {
			return genNested(rng)
		}
		inner := latticeRect(x0, y0, x0+w-mx, y0+h)
		return Pair{A: single(inner), B: single(outer)}
	default:
		// Inner star inside the rect.
		c := geom.Point{X: x0 + w/2, Y: y0 + h/2}
		r := math.Min(w, h) / 2 * 0.6
		if r < 4*latticeStep {
			return genNested(rng)
		}
		inner := starPoly(rng, c, r*0.5, r, 5+rng.Intn(8))
		return Pair{A: single(outer), B: single(inner)}
	}
}

func genDuplicate(rng *rand.Rand) Pair {
	p := genBlobs(rng)
	clone := p.A.Polys[0].Clone()
	return Pair{A: p.A, B: single(clone)}
}

func genSharedEdge(rng *rand.Rand) Pair {
	// B attaches to A's right edge, sharing a sub-segment of it.
	x0 := randLattice(rng, 0, 50)
	y0 := randLattice(rng, 0, 50)
	w := randLattice(rng, 2, 20)
	h := randLattice(rng, 4, 20)
	a := latticeRect(x0, y0, x0+w, y0+h)
	yb0 := y0 + randLattice(rng, 0, h-latticeStep)
	hb := randLattice(rng, 1, h)
	wb := randLattice(rng, 1, 15)
	b := latticeRect(x0+w, yb0, x0+w+wb, yb0+hb)
	return Pair{A: single(a), B: single(b)}
}

func genCornerTouch(rng *rand.Rand) Pair {
	x0 := randLattice(rng, 0, 50)
	y0 := randLattice(rng, 0, 50)
	w := randLattice(rng, 1, 15)
	h := randLattice(rng, 1, 15)
	a := latticeRect(x0, y0, x0+w, y0+h)
	w2 := randLattice(rng, 1, 15)
	h2 := randLattice(rng, 1, 15)
	var b *geom.Polygon
	if rng.Intn(2) == 0 {
		// Corner-to-corner point touch.
		b = latticeRect(x0+w, y0+h, x0+w+w2, y0+h+h2)
	} else {
		// A star vertex pinned exactly onto A's boundary.
		c := geom.Point{X: x0 + w + 4, Y: y0 + h/2}
		star := starPoly(rng, c, 2, 4, 5+rng.Intn(6))
		shift := star.Bounds().MinX - (x0 + w)
		b = star.Translate(-snap(shift), 0)
	}
	return Pair{A: single(a), B: single(b)}
}

func genHolePlay(rng *rand.Rand) Pair {
	x0 := randLattice(rng, 10, 40)
	y0 := randLattice(rng, 10, 40)
	w := randLattice(rng, 10, 30)
	h := randLattice(rng, 10, 30)
	hx0 := x0 + randLattice(rng, 2, w/2-1)
	hy0 := y0 + randLattice(rng, 2, h/2-1)
	hx1 := x0 + w - randLattice(rng, 2, w/2-1)
	hy1 := y0 + h - randLattice(rng, 2, h/2-1)
	if hx1-hx0 < 2 || hy1-hy0 < 2 {
		return genHolePlay(rng)
	}
	donut := geom.NewPolygon(
		geom.Ring{{X: x0, Y: y0}, {X: x0 + w, Y: y0}, {X: x0 + w, Y: y0 + h}, {X: x0, Y: y0 + h}},
		geom.Ring{{X: hx0, Y: hy0}, {X: hx1, Y: hy0}, {X: hx1, Y: hy1}, {X: hx0, Y: hy1}},
	)
	switch rng.Intn(3) {
	case 0:
		// Island in the hole: disjoint (or meets when it fills the hole).
		mx := randLattice(rng, 0, (hx1-hx0)/2-latticeStep)
		my := randLattice(rng, 0, (hy1-hy0)/2-latticeStep)
		island := latticeRect(hx0+mx, hy0+my, hx1-mx, hy1-my)
		return Pair{A: single(donut), B: single(island)}
	case 1:
		// Rect crossing the donut ring.
		b := latticeRect(hx0-1, hy0+1, hx1+1, hy1-1)
		if hy1-1 <= hy0+1 {
			return genHolePlay(rng)
		}
		return Pair{A: single(donut), B: single(b)}
	default:
		// The hole-filling rect: meets the donut along the hole boundary.
		island := latticeRect(hx0, hy0, hx1, hy1)
		return Pair{A: single(donut), B: single(island)}
	}
}

// genPinned builds a quadrilateral with vertices exactly on the
// partner rectangle's edges — the boundary-classification stress case:
// B's boundary crosses A's boundary *through* points that are vertices
// of one ring and edge-interior points of the other.
func genPinned(rng *rand.Rand) Pair {
	x0 := randLattice(rng, 10, 40)
	y0 := randLattice(rng, 10, 40)
	w := randLattice(rng, 4, 16)
	h := randLattice(rng, 4, 16)
	a := latticeRect(x0, y0, x0+w, y0+h)
	onLeft := geom.Point{X: x0, Y: y0 + randLattice(rng, latticeStep, h-latticeStep)}
	onBottom := geom.Point{X: x0 + randLattice(rng, latticeStep, w-latticeStep), Y: y0}
	inside := geom.Point{X: x0 + randLattice(rng, 1, w-1), Y: y0 + randLattice(rng, 1, h-1)}
	outside := geom.Point{X: x0 - randLattice(rng, 1, 6), Y: y0 - randLattice(rng, 1, 6)}
	var ring geom.Ring
	if rng.Intn(2) == 0 {
		ring = geom.Ring{onLeft, inside, onBottom, outside}
	} else {
		// Spike variant: apex pinned on the right edge, body outside.
		apex := geom.Point{X: x0 + w, Y: y0 + randLattice(rng, latticeStep, h-latticeStep)}
		d := randLattice(rng, 1, 8)
		e := randLattice(rng, latticeStep, 4)
		ring = geom.Ring{apex, {X: apex.X + d, Y: apex.Y - e}, {X: apex.X + d, Y: apex.Y + e}}
	}
	return Pair{A: single(a), B: single(geom.NewPolygon(ring))}
}

// genSlivers crosses two one-lattice-step-wide bars: minimal-area
// geometry whose intersection is a single cell, edge segment or point.
func genSlivers(rng *rand.Rand) Pair {
	x0 := randLattice(rng, 0, 40)
	y0 := randLattice(rng, 0, 40)
	length := randLattice(rng, 3, 20)
	ym := y0 + randLattice(rng, 0, 10)
	xm := x0 + randLattice(rng, -2, 10)
	horiz := latticeRect(x0, ym, x0+length, ym+latticeStep)
	vert := latticeRect(xm, y0, xm+latticeStep, y0+length)
	if rng.Intn(2) == 0 {
		return Pair{A: single(horiz), B: single(vert)}
	}
	// Parallel slivers: identical, stacked, or overlapping lengthwise.
	dx := randLattice(rng, -2, 2)
	dy := float64(rng.Intn(3)-1) * latticeStep
	other := latticeRect(x0+dx, ym+dy, x0+dx+length, ym+dy+latticeStep)
	return Pair{A: single(horiz), B: single(other)}
}

func genMultipart(rng *rand.Rand) Pair {
	// Two-part multipolygons built from disjoint tiles; exercises the
	// refiner's multi-component paths (pipeline checks skip these).
	x0 := randLattice(rng, 0, 30)
	y0 := randLattice(rng, 0, 30)
	a1 := starPoly(rng, geom.Point{X: x0 + 8, Y: y0 + 8}, 2, 5, 4+rng.Intn(8))
	a2 := starPoly(rng, geom.Point{X: x0 + 30, Y: y0 + 8}, 2, 5, 4+rng.Intn(8))
	b1 := starPoly(rng, geom.Point{X: x0 + 8 + randLattice(rng, -6, 6), Y: y0 + 8 + randLattice(rng, -6, 6)}, 2, 5, 4+rng.Intn(8))
	b2 := starPoly(rng, geom.Point{X: x0 + 30 + randLattice(rng, -6, 6), Y: y0 + 20}, 2, 5, 4+rng.Intn(8))
	pa := geom.NewMultiPolygon(a1, a2)
	pb := geom.NewMultiPolygon(b1, b2)
	if pa.Polys[0].Bounds().Intersects(pa.Polys[1].Bounds()) ||
		pb.Polys[0].Bounds().Intersects(pb.Polys[1].Bounds()) {
		return genMultipart(rng)
	}
	return Pair{A: pa, B: pb}
}
