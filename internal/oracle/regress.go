package oracle

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/wkt"
)

// numVerts counts the vertices of a multipolygon across all rings.
func numVerts(m *geom.MultiPolygon) int {
	n := 0
	for _, p := range m.Polys {
		n += p.NumVertices()
	}
	return n
}

// LoadRegressions reads every stored repro under dir (sorted by file
// name for deterministic replay order). A missing directory is an empty
// corpus, not an error.
func LoadRegressions(dir string) ([]Regression, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []Regression
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		reg, err := loadRegression(path)
		if err != nil {
			return nil, fmt.Errorf("oracle: %s: %w", path, err)
		}
		out = append(out, reg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].File < out[j].File })
	return out, nil
}

func loadRegression(path string) (Regression, error) {
	f, err := os.Open(path)
	if err != nil {
		return Regression{}, err
	}
	defer f.Close()
	reg := Regression{File: filepath.Base(path)}
	reg.Pair.Name = "regression:" + reg.File
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "#"):
			if reg.Note == "" {
				reg.Note = strings.TrimSpace(strings.TrimPrefix(line, "#"))
			}
		case strings.HasPrefix(line, "A "):
			m, err := wkt.ParseMultiPolygon(strings.TrimSpace(line[2:]))
			if err != nil {
				return Regression{}, fmt.Errorf("geometry A: %w", err)
			}
			reg.Pair.A = m
		case strings.HasPrefix(line, "B "):
			m, err := wkt.ParseMultiPolygon(strings.TrimSpace(line[2:]))
			if err != nil {
				return Regression{}, fmt.Errorf("geometry B: %w", err)
			}
			reg.Pair.B = m
		case strings.HasPrefix(line, "V "):
			fields := strings.Fields(line[2:])
			if len(fields) != 2 {
				return Regression{}, fmt.Errorf("V line wants two counts, got %q", line)
			}
			va, errA := strconv.Atoi(fields[0])
			vb, errB := strconv.Atoi(fields[1])
			if errA != nil || errB != nil {
				return Regression{}, fmt.Errorf("bad V line %q", line)
			}
			reg.VertsA, reg.VertsB = va, vb
		case line == "MODE parse-only":
			reg.ParseOnly = true
		case line == "MODE invalid":
			reg.ExpectInvalid = true
		default:
			return Regression{}, fmt.Errorf("unrecognized line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return Regression{}, err
	}
	if reg.Pair.A == nil || reg.Pair.B == nil {
		return Regression{}, fmt.Errorf("missing A or B geometry")
	}
	// The V line is parse-fidelity ground truth: if the WKT reader ever
	// regresses into swallowing vertices (e.g. an Eps-tolerant closing
	// vertex check), the stored counts no longer match and the load fails.
	if reg.VertsA != 0 || reg.VertsB != 0 {
		if got := numVerts(reg.Pair.A); got != reg.VertsA {
			return Regression{}, fmt.Errorf("geometry A parsed to %d vertices, file says %d", got, reg.VertsA)
		}
		if got := numVerts(reg.Pair.B); got != reg.VertsB {
			return Regression{}, fmt.Errorf("geometry B parsed to %d vertices, file says %d", got, reg.VertsB)
		}
	}
	return reg, nil
}
