// Package fault is the injectable failure seam the resilience layer is
// tested through: named injection points scattered along the snapshot
// and serving paths can be armed — from tests or from the STJ_FAULTS
// environment variable — to return errors, panic, add latency, or cut a
// write short (torn write / ENOSPC). Disarmed points cost one atomic
// load, so production binaries carry the seams for free and fault
// drills can run against the real daemon.
package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error an armed point fires with.
var ErrInjected = errors.New("fault: injected error")

// EnvVar names the environment variable ArmFromEnv parses, e.g.
//
//	STJ_FAULTS="snapshot.write=enospc:4096;registry.rebuild=panic"
const EnvVar = "STJ_FAULTS"

// Behavior describes what an armed point does when hit.
type Behavior struct {
	// Skip is how many hits pass through unharmed before the fault
	// fires (0: fire on the first hit).
	Skip int
	// Count bounds how many times the fault fires; 0 means every hit
	// after Skip.
	Count int
	// Delay is latency added before the outcome (alone it makes the
	// point a pure slowdown: Check still returns nil).
	Delay time.Duration
	// Err is the error Check returns (and Writer writes fail with);
	// nil selects ErrInjected.
	Err error
	// Panic makes Check panic instead of returning the error.
	Panic bool
	// AfterBytes applies to Writer-wrapped streams: that many bytes
	// pass through before writes start failing with Err, simulating a
	// torn write or a disk filling up mid-file. 0 fails immediately.
	AfterBytes int64
}

type state struct {
	Behavior
	hits    int
	fired   int
	written int64
}

var (
	// armed counts armed points; Check's fast path is this single
	// atomic load, so a disarmed build does no map lookups and takes
	// no locks.
	armed atomic.Int32

	mu     sync.Mutex
	points = make(map[string]*state)
)

// Active reports whether any point is armed.
func Active() bool { return armed.Load() > 0 }

// Arm installs (or replaces) the behavior of a point.
func Arm(point string, b Behavior) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[point]; !ok {
		armed.Add(1)
	}
	points[point] = &state{Behavior: b}
}

// Disarm removes a point; unknown points are a no-op.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[point]; ok {
		delete(points, point)
		armed.Add(-1)
	}
}

// Reset disarms every point (test cleanup).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = make(map[string]*state)
}

// Check is an injection point: it returns nil unless the named point is
// armed and due, in which case it sleeps, returns the injected error,
// or panics, per the armed Behavior.
func Check(point string) error {
	if armed.Load() == 0 {
		return nil
	}
	return fire(point)
}

func fire(point string) error {
	mu.Lock()
	st, ok := points[point]
	if !ok {
		mu.Unlock()
		return nil
	}
	st.hits++
	if st.hits <= st.Skip || (st.Count > 0 && st.fired >= st.Count) {
		mu.Unlock()
		return nil
	}
	st.fired++
	b := st.Behavior
	mu.Unlock()

	if b.Delay > 0 {
		time.Sleep(b.Delay)
	}
	err := b.Err
	if err == nil {
		err = ErrInjected
	}
	if b.Panic {
		panic(fmt.Sprintf("fault: injected panic at %s: %v", point, err))
	}
	if b.Err == nil && b.Delay > 0 && !b.Panic {
		return nil // delay-only point
	}
	return err
}

// Fired reports how many times the point has fired since it was armed.
func Fired(point string) int {
	mu.Lock()
	defer mu.Unlock()
	if st, ok := points[point]; ok {
		return st.fired
	}
	return 0
}

// Writer wraps w with the named point's byte-limit behavior: once
// AfterBytes bytes have passed through, every further Write fails with
// the injected error (a short count on the torn write included, as a
// real torn write would). A disarmed point returns w unchanged.
func Writer(point string, w io.Writer) io.Writer {
	if armed.Load() == 0 {
		return w
	}
	mu.Lock()
	st, ok := points[point]
	mu.Unlock()
	if !ok {
		return w
	}
	return &faultWriter{w: w, st: st}
}

type faultWriter struct {
	w  io.Writer
	st *state
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	mu.Lock()
	remaining := fw.st.AfterBytes - fw.st.written
	if remaining < 0 {
		remaining = 0
	}
	if remaining > int64(len(p)) {
		remaining = int64(len(p))
	}
	fw.st.written += remaining
	torn := int64(len(p)) > remaining
	err := fw.st.Err
	mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	n, werr := fw.w.Write(p[:remaining])
	if werr != nil {
		return n, werr
	}
	if torn {
		return n, err
	}
	return n, nil
}

// ArmFromEnv parses a fault spec — points separated by ';', each
// "point=kind[:arg]" with kind one of error, panic, delay:<duration>,
// enospc:<bytes> — and arms every listed point. An empty spec is a
// no-op, so callers can pass os.Getenv(EnvVar) unconditionally.
func ArmFromEnv(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, kind, ok := strings.Cut(part, "=")
		if !ok || point == "" {
			return fmt.Errorf("fault: bad spec %q (want point=kind[:arg])", part)
		}
		kind, arg, _ := strings.Cut(kind, ":")
		var b Behavior
		switch kind {
		case "error":
			// default Behavior: return ErrInjected
		case "panic":
			b.Panic = true
		case "delay":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("fault: %s: bad delay %q: %w", point, arg, err)
			}
			b.Delay = d
		case "enospc":
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return fmt.Errorf("fault: %s: bad byte count %q: %w", point, arg, err)
			}
			b.AfterBytes = n
			b.Err = errNoSpace
		default:
			return fmt.Errorf("fault: %s: unknown kind %q", point, kind)
		}
		Arm(point, b)
	}
	return nil
}

// errNoSpace mimics the write error of a full disk.
var errNoSpace = errors.New("fault: no space left on device (injected)")

// TruncateAt cuts a file to n bytes: the torn-file primitive the
// crash-recovery tests sweep over snapshot offsets.
func TruncateAt(path string, n int64) error {
	return os.Truncate(path, n)
}

// FlipBit flips one bit of the byte at off, the single-bit-rot
// primitive of the corruption tests.
func FlipBit(path string, off int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	if _, err := f.WriteAt(b[:], off); err != nil {
		return err
	}
	return f.Close()
}

// FileSize returns the size of path (convenience for offset sweeps).
func FileSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
