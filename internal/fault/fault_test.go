package fault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDisarmedIsFree(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("Active with no armed points")
	}
	if err := Check("anything"); err != nil {
		t.Fatalf("disarmed Check = %v", err)
	}
	var buf bytes.Buffer
	if w := Writer("anything", &buf); w != &buf {
		t.Fatal("disarmed Writer must return the writer unchanged")
	}
}

func TestArmFireDisarm(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", Behavior{Err: boom})
	if !Active() {
		t.Fatal("not active after Arm")
	}
	if err := Check("p"); !errors.Is(err, boom) {
		t.Fatalf("Check = %v, want boom", err)
	}
	if err := Check("other"); err != nil {
		t.Fatalf("unarmed sibling point fired: %v", err)
	}
	Disarm("p")
	if err := Check("p"); err != nil {
		t.Fatalf("Check after Disarm = %v", err)
	}
	if Active() {
		t.Fatal("still active after Disarm")
	}
}

func TestSkipAndCount(t *testing.T) {
	defer Reset()
	Arm("p", Behavior{Skip: 2, Count: 1})
	var errs int
	for i := 0; i < 5; i++ {
		if Check("p") != nil {
			errs++
		}
	}
	if errs != 1 {
		t.Fatalf("fired %d times, want exactly 1 (skip 2, count 1)", errs)
	}
	if Fired("p") != 1 {
		t.Fatalf("Fired = %d, want 1", Fired("p"))
	}
}

func TestPanicBehavior(t *testing.T) {
	defer Reset()
	Arm("p", Behavior{Panic: true})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Check did not panic")
		}
		if !strings.Contains(r.(string), "injected panic at p") {
			t.Fatalf("panic value %v", r)
		}
	}()
	Check("p")
}

func TestDelayOnly(t *testing.T) {
	defer Reset()
	Arm("p", Behavior{Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := Check("p"); err != nil {
		t.Fatalf("delay-only point returned error %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delay not applied: %v", d)
	}
}

func TestWriterTornWrite(t *testing.T) {
	defer Reset()
	Arm("w", Behavior{AfterBytes: 5})
	var buf bytes.Buffer
	w := Writer("w", &buf)
	n, err := w.Write([]byte("hello world"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = (%d, %v), want (5, ErrInjected)", n, err)
	}
	if buf.String() != "hello" {
		t.Fatalf("written %q, want the first 5 bytes only", buf.String())
	}
	if n, err := w.Write([]byte("x")); n != 0 || err == nil {
		t.Fatalf("write after exhaustion = (%d, %v)", n, err)
	}
}

func TestWriterBudgetSpansWrites(t *testing.T) {
	defer Reset()
	Arm("w", Behavior{AfterBytes: 4})
	var buf bytes.Buffer
	w := Writer("w", &buf)
	if n, err := w.Write([]byte("ab")); n != 2 || err != nil {
		t.Fatalf("first write = (%d, %v)", n, err)
	}
	if n, err := w.Write([]byte("cdef")); n != 2 || err == nil {
		t.Fatalf("second write = (%d, %v), want torn at 2", n, err)
	}
}

func TestArmFromEnv(t *testing.T) {
	defer Reset()
	if err := ArmFromEnv(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	spec := "a=error; b=delay:1ms ;c=enospc:3"
	if err := ArmFromEnv(spec); err != nil {
		t.Fatalf("ArmFromEnv(%q) = %v", spec, err)
	}
	if err := Check("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("a = %v", err)
	}
	if err := Check("b"); err != nil {
		t.Fatalf("b (delay) = %v", err)
	}
	var buf bytes.Buffer
	if _, err := Writer("c", &buf).Write([]byte("wxyz")); err == nil {
		t.Fatal("c (enospc:3) did not fail a 4-byte write")
	}
	for _, bad := range []string{"nokind", "p=wat", "p=delay:xx", "p=enospc:xx", "=error"} {
		Reset()
		if err := ArmFromEnv(bad); err == nil {
			t.Errorf("ArmFromEnv(%q) accepted", bad)
		}
	}
}

func TestFileCorruptionHelpers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte{0xFF, 0x00, 0xAA}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateAt(path, 2); err != nil {
		t.Fatal(err)
	}
	if sz, _ := FileSize(path); sz != 2 {
		t.Fatalf("size after truncate = %d", sz)
	}
	if err := FlipBit(path, 1, 0); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if data[1] != 0x01 {
		t.Fatalf("bit flip: byte = %#x, want 0x01", data[1])
	}
}
