// Package obs is a zero-dependency metrics and tracing subsystem for the
// topology-join pipeline. The paper's whole evaluation is a cost
// accounting — how many pairs each filter stage settles (Fig. 7b), where
// the time goes per stage (Fig. 8b), how many bytes of exact geometry are
// ever touched (Sec. 4.3) — so the instruments mirror that accounting:
//
//   - Counter and Gauge: single atomic int64 cells;
//   - Histogram: fixed-bucket latency distribution with atomic buckets;
//   - Registry: a named collection of the above with get-or-create
//     semantics and three exporters (Prometheus text format, JSON
//     snapshot, human-readable table);
//   - Span / Stopwatch: span-style stage timers for the MBR → IF →
//     refine pipeline;
//   - ServeDebug: an HTTP endpoint bundling /metrics with expvar and
//     net/http/pprof so long joins can be profiled live.
//
// Everything is allocation-free and safe for concurrent use on the hot
// path; instrumented call sites guard with a single pointer check so a
// nil sink costs nothing when observability is off.
package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus export to stay sound).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add increments the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Bounds are ascending upper
// bounds; observations greater than the last bound land in an implicit
// +Inf bucket. All mutation is atomic: concurrent Observe calls are safe
// and never block.
type Histogram struct {
	bounds    []float64
	buckets   []atomic.Int64  // len(bounds)+1, last is +Inf
	exemplars []atomic.Uint64 // per-bucket trace id, 0 = none
	count     atomic.Int64
	sum       atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. The bounds slice is not copied; callers must not mutate it.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		buckets:   make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Uint64, len(bounds)+1),
	}
}

// bucketIndex returns the bucket v falls in. Linear scan: bucket counts
// are small (~25) and the common case (latencies near the low end)
// exits early.
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.buckets[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// SetExemplar links the bucket v falls in to a trace id, so a latency
// outlier in the histogram leads straight to its request trace. The
// last trace to land in a bucket wins; traceID 0 ("no trace") is a
// no-op. Exemplars appear in the JSON snapshot only — the Prometheus
// 0.0.4 text format predates them and stays untouched.
func (h *Histogram) SetExemplar(v float64, traceID uint64) {
	if traceID == 0 {
		return
	}
	h.exemplars[h.bucketIndex(v)].Store(traceID)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per bucket; last is +Inf
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	// Exemplars holds one hex trace id per bucket ("" when none);
	// omitted entirely while no exemplar has been set.
	Exemplars []string `json:"exemplars,omitempty"`
}

// Snapshot copies the histogram state. Buckets are read without a global
// lock, so a snapshot taken concurrently with Observe may be off by the
// in-flight observation — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	for i := range h.exemplars {
		if id := h.exemplars[i].Load(); id != 0 {
			if s.Exemplars == nil {
				s.Exemplars = make([]string, len(h.exemplars))
			}
			s.Exemplars[i] = fmt.Sprintf("%016x", id)
		}
	}
	return s
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the target rank. Values in the +Inf bucket
// are reported as the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Counts {
		if float64(cum+n) >= rank {
			hi := s.Bounds[len(s.Bounds)-1]
			lo := 0.0
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			if n == 0 {
				return hi
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the standard exponential latency layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the default latency layout for pipeline stages:
// 24 exponential buckets from 250ns doubling up to ~2s, covering
// everything from an interval merge-join probe to a multi-second
// refinement of a maximally complex pair.
var DurationBuckets = ExpBuckets(250e-9, 2, 24)

// Span times one operation into a histogram. The zero Span is inert.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan opens a span recording into h (h may be nil: the span still
// measures, but records nowhere).
func StartSpan(h *Histogram) Span {
	return Span{h: h, start: time.Now()}
}

// End closes the span, records the elapsed time and returns it.
func (s Span) End() time.Duration {
	if s.start.IsZero() {
		return 0
	}
	d := time.Since(s.start)
	if s.h != nil {
		s.h.ObserveDuration(d)
	}
	return d
}

// Stopwatch times consecutive pipeline stages: each Lap returns the time
// since the previous Lap (or since NewStopwatch), so a multi-stage hot
// path pays one clock read per stage boundary.
type Stopwatch struct {
	last time.Time
}

// NewStopwatch starts a stopwatch.
func NewStopwatch() Stopwatch { return Stopwatch{last: time.Now()} }

// Lap returns the duration of the stage that just ended and restarts the
// clock for the next one.
func (w *Stopwatch) Lap() time.Duration {
	now := time.Now()
	d := now.Sub(w.last)
	w.last = now
	return d
}
