package obs

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of metrics with get-or-create
// semantics: the first call for a name creates the metric, later calls
// return the same instance. Metric handles are cached by callers and
// mutated lock-free; the registry lock is only taken on lookup and
// snapshot, never on the hot path.
//
// Names follow the Prometheus convention, optionally with a literal
// label suffix built by Name: "pipeline_pairs_total" or
// `pipeline_verdict_total{stage="refine"}`. Exporters treat the suffix
// as opaque labels of the base name.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	gaugeFns  map[string]func() int64
	fnOrder   []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		gaugeFns: make(map[string]func() int64),
	}
}

// std is the process-global default registry (expvar-style): library
// code that wants always-on telemetry without plumbing publishes here.
var std = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return std }

// Name builds a metric name with a Prometheus-style label suffix from
// alternating key, value pairs: Name("x_total", "stage", "refine") is
// `x_total{stage="refine"}`. Deterministic, so tests and dashboards can
// reconstruct names exactly.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", labels[i], labels[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a gauge whose value is computed at snapshot time —
// for values that already exist elsewhere (cache sizes, runtime stats).
// Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFns[name]; !ok {
		r.fnOrder = append(r.fnOrder, name)
	}
	r.gaugeFns[name] = fn
}

// NamedValue is one scalar metric in a snapshot.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// NamedHistogram is one histogram in a snapshot.
type NamedHistogram struct {
	Name string            `json:"name"`
	Hist HistogramSnapshot `json:"hist"`
}

// SnapshotData is a point-in-time copy of every registered metric,
// sorted by name.
type SnapshotData struct {
	Counters   []NamedValue     `json:"counters"`
	Gauges     []NamedValue     `json:"gauges"`
	Histograms []NamedHistogram `json:"histograms"`
}

// Snapshot copies the current value of every metric. Gauge functions are
// collected under the lock but evaluated after it is released, so a
// function that re-enters the registry cannot deadlock.
func (r *Registry) Snapshot() SnapshotData {
	r.mu.Lock()
	var s SnapshotData
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{name, c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{name, g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, NamedHistogram{name, h.Snapshot()})
	}
	type fn struct {
		name string
		f    func() int64
	}
	fns := make([]fn, 0, len(r.gaugeFns))
	for _, name := range r.fnOrder {
		fns = append(fns, fn{name, r.gaugeFns[name]})
	}
	r.mu.Unlock()

	for _, f := range fns {
		s.Gauges = append(s.Gauges, NamedValue{f.name, f.f()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// RegisterRuntimeMetrics adds Go runtime gauges (goroutines, heap bytes,
// cumulative allocations, GC count and pause total) to the registry.
// runtime.ReadMemStats runs once per snapshot, not per update.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines", func() int64 { return int64(runtime.NumGoroutine()) })
	mem := func(pick func(*runtime.MemStats) int64) func() int64 {
		return func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return pick(&ms)
		}
	}
	r.GaugeFunc("go_heap_alloc_bytes", mem(func(ms *runtime.MemStats) int64 { return int64(ms.HeapAlloc) }))
	r.GaugeFunc("go_alloc_bytes_total", mem(func(ms *runtime.MemStats) int64 { return int64(ms.TotalAlloc) }))
	r.GaugeFunc("go_gc_runs_total", mem(func(ms *runtime.MemStats) int64 { return int64(ms.NumGC) }))
	r.GaugeFunc("go_gc_pause_ns_total", mem(func(ms *runtime.MemStats) int64 { return int64(ms.PauseTotalNs) }))
}
