package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the registry and the standard
// Go debug surfaces:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON snapshot
//	/debug/vars    expvar
//	/debug/pprof/  CPU, heap, goroutine, block, mutex profiles
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr and serves Handler(r) in a background goroutine,
// returning the bound address (useful with ":0") or a listen error. The
// server lives until the process exits — it is a debug endpoint for
// profiling long-running joins, not a managed service.
func ServeDebug(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, Handler(r))
	return ln.Addr().String(), nil
}
