package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Mount pairs a mux pattern with an extra handler for Handler and
// ServeDebug, so subsystems with their own debug surfaces (the request
// tracer's /debug/traces, say) ride the same listener. More specific
// patterns win over the built-ins per net/http.ServeMux rules.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// Handler returns an http.Handler exposing the registry and the standard
// Go debug surfaces:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON snapshot
//	/debug/vars    expvar
//	/debug/pprof/  CPU, heap, goroutine, block, mutex profiles
func Handler(r *Registry, extra ...Mount) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, m := range extra {
		mux.Handle(m.Pattern, m.Handler)
	}
	return mux
}

// ServeDebug binds addr and serves Handler(r) in a background goroutine,
// returning the bound address (useful with ":0") and a shutdown function
// that stops the listener and drains in-flight scrapes; callers own the
// server's lifetime instead of leaking it until process exit. The
// shutdown function honors its context's deadline (http.Server.Shutdown
// semantics) and is safe to call more than once.
func ServeDebug(addr string, r *Registry, extra ...Mount) (string, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r, extra...)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Shutdown, nil
}
