package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// splitName separates a metric name into its base and an optional label
// body: `x_total{stage="refine"}` -> ("x_total", `stage="refine"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels merges an existing label body with one extra label.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Metrics sharing a base name emit one TYPE line.
func (s SnapshotData) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	typeLine := func(base, kind string) {
		if !typed[base] {
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
			typed[base] = true
		}
	}
	emit := func(name string, v int64, kind string) {
		base, labels := splitName(name)
		typeLine(base, kind)
		if labels == "" {
			fmt.Fprintf(w, "%s %d\n", base, v)
		} else {
			fmt.Fprintf(w, "%s{%s} %d\n", base, labels, v)
		}
	}
	for _, c := range s.Counters {
		emit(c.Name, c.Value, "counter")
	}
	for _, g := range s.Gauges {
		emit(g.Name, g.Value, "gauge")
	}
	for _, h := range s.Histograms {
		base, labels := splitName(h.Name)
		typeLine(base, "histogram")
		var cum int64
		for i, n := range h.Hist.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Hist.Bounds) {
				le = fmt.Sprintf("%g", h.Hist.Bounds[i])
			}
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, joinLabels(labels, fmt.Sprintf("le=%q", le)), cum)
		}
		if labels == "" {
			fmt.Fprintf(w, "%s_sum %g\n", base, h.Hist.Sum)
			fmt.Fprintf(w, "%s_count %d\n", base, h.Hist.Count)
		} else {
			fmt.Fprintf(w, "%s_sum{%s} %g\n", base, labels, h.Hist.Sum)
			fmt.Fprintf(w, "%s_count{%s} %d\n", base, labels, h.Hist.Count)
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s SnapshotData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteTable renders the snapshot as a human-readable aligned table;
// histogram rows report count, total and the mean/p50/p99 latencies.
func (s SnapshotData) WriteTable(w io.Writer) error {
	t := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, c := range s.Counters {
		fmt.Fprintf(t, "counter\t%s\t%d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(t, "gauge\t%s\t%d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		sec := func(v float64) string {
			return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
		}
		fmt.Fprintf(t, "histogram\t%s\tcount=%d total=%s mean=%s p50=%s p99=%s\n",
			h.Name, h.Hist.Count, sec(h.Hist.Sum), sec(h.Hist.Mean()),
			sec(h.Hist.Quantile(0.50)), sec(h.Hist.Quantile(0.99)))
	}
	return t.Flush()
}
