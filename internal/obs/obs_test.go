package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 1, 1, 1} // (-inf,1] (1,2] (2,4] (4,+inf)
	for i, n := range want {
		if s.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], n)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Sum != 106 {
		t.Errorf("sum = %g", s.Sum)
	}
	if m := s.Mean(); m != 106.0/5 {
		t.Errorf("mean = %g", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10))
	for i := 0; i < 100; i++ {
		h.Observe(3) // lands in (2,4]
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 2 || q > 4 {
		t.Errorf("p50 = %g, want within (2,4]", q)
	}
	empty := NewHistogram(ExpBuckets(1, 2, 4)).Snapshot()
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram quantile/mean should be 0")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.25, 2, 4)
	want := []float64{0.25, 0.5, 1, 2}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	if len(DurationBuckets) != 24 || DurationBuckets[0] != 250e-9 {
		t.Error("DurationBuckets layout changed: update DESIGN.md")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a_total")
	c1.Add(5)
	if c2 := r.Counter("a_total"); c2 != c1 || c2.Value() != 5 {
		t.Error("counter not shared across lookups")
	}
	g1 := r.Gauge("g")
	if r.Gauge("g") != g1 {
		t.Error("gauge not shared")
	}
	h1 := r.Histogram("h_seconds", DurationBuckets)
	if r.Histogram("h_seconds", nil) != h1 {
		t.Error("histogram not shared")
	}
	r.GaugeFunc("fn", func() int64 { return 99 })
	s := r.Snapshot()
	found := false
	for _, g := range s.Gauges {
		if g.Name == "fn" && g.Value == 99 {
			found = true
		}
	}
	if !found {
		t.Error("gauge func missing from snapshot")
	}
}

func TestName(t *testing.T) {
	if got := Name("x_total"); got != "x_total" {
		t.Errorf("Name no labels = %q", got)
	}
	got := Name("x_total", "stage", "refine", "method", "P+C")
	want := `x_total{stage="refine",method="P+C"}`
	if got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("pairs_total", "method", "P+C")).Add(7)
	r.Counter("plain_total").Add(1)
	r.Gauge("temp").Set(-2)
	h := r.Histogram("lat_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pairs_total counter",
		`pairs_total{method="P+C"} 7`,
		"plain_total 1",
		"# TYPE temp gauge",
		"temp -2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="2"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_sum 5.5",
		"lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONAndTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Histogram("h_seconds", DurationBuckets).ObserveDuration(3 * time.Millisecond)
	var jb strings.Builder
	if err := r.Snapshot().WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var decoded SnapshotData
	if err := json.Unmarshal([]byte(jb.String()), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if len(decoded.Counters) != 1 || decoded.Counters[0].Value != 3 {
		t.Errorf("decoded counters: %+v", decoded.Counters)
	}
	var tb strings.Builder
	if err := r.Snapshot().WriteTable(&tb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "c_total") || !strings.Contains(tb.String(), "h_seconds") {
		t.Errorf("table output incomplete:\n%s", tb.String())
	}
}

func TestSpanAndStopwatch(t *testing.T) {
	h := NewHistogram(DurationBuckets)
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Errorf("span measured %v", d)
	}
	if h.Count() != 1 {
		t.Errorf("span did not record: count=%d", h.Count())
	}
	if (Span{}).End() != 0 {
		t.Error("zero span should be inert")
	}
	if StartSpan(nil).End() <= 0 {
		t.Error("nil-histogram span should still measure")
	}
	w := NewStopwatch()
	time.Sleep(time.Millisecond)
	if d := w.Lap(); d < time.Millisecond {
		t.Errorf("lap measured %v", d)
	}
	if d := w.Lap(); d > 100*time.Millisecond {
		t.Errorf("second lap did not restart: %v", d)
	}
}

// TestConcurrentUse hammers one registry from many goroutines; run under
// -race (the Makefile race target does).
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared_total")
			h := r.Histogram("shared_seconds", DurationBuckets)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i%7) * 1e-6)
				r.Gauge(fmt.Sprintf("g%d", w)).Set(int64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Errorf("lost updates: %d", got)
	}
	if got := r.Histogram("shared_seconds", nil).Count(); got != 8000 {
		t.Errorf("lost observations: %d", got)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	s := r.Snapshot()
	byName := map[string]int64{}
	for _, g := range s.Gauges {
		byName[g.Name] = g.Value
	}
	if byName["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %d", byName["go_goroutines"])
	}
	if byName["go_heap_alloc_bytes"] <= 0 {
		t.Errorf("go_heap_alloc_bytes = %d", byName["go_heap_alloc_bytes"])
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(11)
	addr, stop, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer stop(context.Background())
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if !strings.Contains(get("/metrics"), "served_total 11") {
		t.Error("/metrics missing counter")
	}
	if !strings.Contains(get("/metrics.json"), `"served_total"`) {
		t.Error("/metrics.json missing counter")
	}
	if !strings.Contains(get("/debug/pprof/cmdline"), "") {
		t.Error("unreachable")
	}
	if body := get("/debug/vars"); !strings.Contains(body, "cmdline") {
		t.Error("/debug/vars not serving expvar")
	}
}

// TestServeDebugShutdown: the returned stop function must actually close
// the listener so the port is released and further requests fail.
func TestServeDebugShutdown(t *testing.T) {
	r := NewRegistry()
	addr, stop, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err != nil {
		t.Fatalf("GET before shutdown: %v", err)
	}
	if err := stop(context.Background()); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
	// Idempotent: a second stop reports ErrServerClosed, never panics.
	stop(context.Background())
}

func TestDefaultRegistry(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default registry must be a stable singleton")
	}
}
