// Package de9im computes the Dimensionally Extended 9-Intersection Model
// (DE-9IM) matrix for pairs of polygons or multipolygons and extracts
// topological relations from it. It is the refinement engine of the
// pipeline: the paper uses Boost.Geometry's relate for this role; we
// implement the computation from scratch.
//
// The algorithm nodes the two boundaries against each other (plane-sweep
// candidate pruning + exact segment intersection), classifies the midpoint
// of every noded boundary segment against the other geometry, and derives
// all nine matrix entries from those classifications plus per-component
// interior-point probes. For valid polygonal inputs the derivation is
// exact; see DESIGN.md §4 for the soundness argument.
package de9im

import "fmt"

// Entry indices into a DE-9IM matrix, row-major: rows are the Interior,
// Boundary and Exterior of the first geometry, columns those of the second.
const (
	II = iota // interior/interior
	IB        // interior/boundary
	IE        // interior/exterior
	BI        // boundary/interior
	BB        // boundary/boundary
	BE        // boundary/exterior
	EI        // exterior/interior
	EB        // exterior/boundary
	EE        // exterior/exterior
)

// Dim is a matrix entry: the dimension of an intersection, or DimF when
// the parts do not intersect.
type Dim byte

// Dimension values of matrix entries.
const (
	DimF Dim = 'F' // empty intersection
	Dim0 Dim = '0' // point
	Dim1 Dim = '1' // curve
	Dim2 Dim = '2' // area
)

// Intersects reports whether the entry denotes a non-empty intersection.
func (d Dim) Intersects() bool { return d != DimF }

// Matrix is a DE-9IM matrix in row-major order.
type Matrix [9]Dim

// String flattens the matrix to its standard 9-character code,
// e.g. "FF2FF1212" or "T*****FF*"-style masks matched against it.
func (m Matrix) String() string {
	b := make([]byte, 9)
	for i, d := range m {
		b[i] = byte(d)
	}
	return string(b)
}

// ParseMatrix parses a 9-character DE-9IM string code consisting of
// F, 0, 1, 2 characters.
func ParseMatrix(s string) (Matrix, error) {
	var m Matrix
	if len(s) != 9 {
		return m, fmt.Errorf("de9im: matrix code %q must have 9 characters", s)
	}
	for i := 0; i < 9; i++ {
		switch s[i] {
		case 'F', '0', '1', '2':
			m[i] = Dim(s[i])
		default:
			return m, fmt.Errorf("de9im: invalid matrix character %q", s[i])
		}
	}
	return m, nil
}

// Transpose returns the matrix of the pair with operands swapped.
func (m Matrix) Transpose() Matrix {
	return Matrix{
		m[II], m[BI], m[EI],
		m[IB], m[BB], m[EB],
		m[IE], m[BE], m[EE],
	}
}

// Mask is a DE-9IM pattern: each position is 'T' (any non-empty), 'F'
// (empty), '*' (anything), or a specific dimension '0'/'1'/'2'.
type Mask [9]byte

// ParseMask parses a 9-character mask such as "T*****FF*".
func ParseMask(s string) (Mask, error) {
	var k Mask
	if len(s) != 9 {
		return k, fmt.Errorf("de9im: mask %q must have 9 characters", s)
	}
	for i := 0; i < 9; i++ {
		switch s[i] {
		case 'T', 'F', '*', '0', '1', '2':
			k[i] = s[i]
		default:
			return k, fmt.Errorf("de9im: invalid mask character %q", s[i])
		}
	}
	return k, nil
}

// MustMask is ParseMask that panics on error; for package-level tables.
func MustMask(s string) Mask {
	k, err := ParseMask(s)
	if err != nil {
		panic(err)
	}
	return k
}

func (k Mask) String() string { return string(k[:]) }

// Matches reports whether matrix m satisfies mask k.
func (k Mask) Matches(m Matrix) bool {
	for i := 0; i < 9; i++ {
		switch k[i] {
		case '*':
		case 'T':
			if !m[i].Intersects() {
				return false
			}
		case 'F':
			if m[i].Intersects() {
				return false
			}
		default:
			if byte(m[i]) != k[i] {
				return false
			}
		}
	}
	return true
}
