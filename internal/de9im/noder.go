package de9im

import (
	"math"
	"slices"

	"repro/internal/geom"
)

// prepEdge is one boundary edge with its bounding box, precomputed once
// at Prepare time. Unlike the old per-pair edge records, prepEdge is
// immutable: per-pair noding state (the cut parameters) lives in the
// Scratch, so the same Prepared geometry can be swept against thousands
// of partners without rebuilding or mutating anything.
type prepEdge struct {
	a, b                   geom.Point
	minX, maxX, minY, maxY float64
}

func newPrepEdge(a, b geom.Point) prepEdge {
	return prepEdge{
		a: a, b: b,
		minX: math.Min(a.X, b.X), maxX: math.Max(a.X, b.X),
		minY: math.Min(a.Y, b.Y), maxY: math.Max(a.Y, b.Y),
	}
}

// param returns the parameter of point p along the edge, using the
// dominant axis for stability.
func (e *prepEdge) param(p geom.Point) float64 {
	dx, dy := e.b.X-e.a.X, e.b.Y-e.a.Y
	if math.Abs(dx) >= math.Abs(dy) {
		if dx == 0 {
			return 0
		}
		return (p.X - e.a.X) / dx
	}
	return (p.Y - e.a.Y) / dy
}

// cut records one noding cut: the edge it lands on and its parameter.
// Cuts for one side are collected into a single scratch slice and sorted
// by (edge, t) afterwards, so per-edge cut lists are contiguous runs —
// no per-edge allocation, and the classification pass walks them with a
// single cursor.
type cut struct {
	edge int32
	t    float64
}

// Scratch holds the reusable per-pair noding state: window index lists
// and cut accumulators. One Scratch serves one goroutine; reusing it
// across pairs makes steady-state refinement allocation-free (the
// zero-alloc guard test pins this). The zero value is ready to use.
type Scratch struct {
	rWin, sWin   []int32
	rCuts, sCuts []cut
}

func (sc *Scratch) reset() {
	sc.rWin, sc.sWin = sc.rWin[:0], sc.sWin[:0]
	sc.rCuts, sc.sCuts = sc.rCuts[:0], sc.sCuts[:0]
}

// addCut appends the cut of p on edge e (index idx) if it is interior
// to the edge, mirroring the old per-edge addCut filter exactly.
func addCut(cuts *[]cut, idx int32, e *prepEdge, p geom.Point) {
	t := e.param(p)
	if t > 1e-12 && t < 1-1e-12 {
		*cuts = append(*cuts, cut{edge: idx, t: t})
	}
}

// appendWindow collects (into dst) the indices of edges whose bbox
// intersects win. Candidates are taken from the Prepared's byMinX index,
// so the output is already in ascending-minX order and the per-pair sort
// of the old noder disappears.
func appendWindow(dst []int32, p *Prepared, win geom.MBR) []int32 {
	for _, i := range p.byMinX {
		e := &p.edges[i]
		if e.minX > win.MaxX {
			break // byMinX is sorted: no later edge can start inside the window
		}
		if win.MinX <= e.maxX && e.minY <= win.MaxY && win.MinY <= e.maxY {
			dst = append(dst, i)
		}
	}
	return dst
}

// node intersects every window edge of r against every window edge of s
// with the forward plane sweep over x, accumulating cut parameters into
// the scratch (sorted by (edge, t) on return) and reporting whether the
// boundaries share at least one point.
func (sc *Scratch) node(r, s *Prepared) (anyPoint bool) {
	sc.reset()
	win := r.bounds.Intersection(s.bounds)
	if win.IsEmpty() {
		return false
	}
	pad := geom.Eps
	win = geom.MBR{MinX: win.MinX - pad, MinY: win.MinY - pad, MaxX: win.MaxX + pad, MaxY: win.MaxY + pad}

	sc.rWin = appendWindow(sc.rWin, r, win)
	sc.sWin = appendWindow(sc.sWin, s, win)

	// Forward sweep: process both index lists in merged minX order; each
	// edge forward-scans the other list while minX <= its maxX. Pairs with
	// the other edge starting earlier were visited from the other side.
	i, j := 0, 0
	for i < len(sc.rWin) && j < len(sc.sWin) {
		if r.edges[sc.rWin[i]].minX <= s.edges[sc.sWin[j]].minX {
			e := &r.edges[sc.rWin[i]]
			for k := j; k < len(sc.sWin) && s.edges[sc.sWin[k]].minX <= e.maxX+pad; k++ {
				anyPoint = sc.intersectPair(r, s, sc.rWin[i], sc.sWin[k], pad) || anyPoint
			}
			i++
		} else {
			e := &s.edges[sc.sWin[j]]
			for k := i; k < len(sc.rWin) && r.edges[sc.rWin[k]].minX <= e.maxX+pad; k++ {
				anyPoint = sc.intersectPair(r, s, sc.rWin[k], sc.sWin[j], pad) || anyPoint
			}
			j++
		}
	}

	sortCuts(sc.rCuts)
	sortCuts(sc.sCuts)
	return anyPoint
}

func (sc *Scratch) intersectPair(r, s *Prepared, ri, si int32, pad float64) bool {
	re, se := &r.edges[ri], &s.edges[si]
	if re.minY > se.maxY+pad || se.minY > re.maxY+pad {
		return false
	}
	x := geom.SegIntersect(re.a, re.b, se.a, se.b)
	switch x.Kind {
	case geom.SegPoint:
		addCut(&sc.rCuts, ri, re, x.P)
		addCut(&sc.sCuts, si, se, x.P)
		return true
	case geom.SegOverlap:
		addCut(&sc.rCuts, ri, re, x.P)
		addCut(&sc.rCuts, ri, re, x.Q)
		addCut(&sc.sCuts, si, se, x.P)
		addCut(&sc.sCuts, si, se, x.Q)
		return true
	}
	return false
}

func sortCuts(cuts []cut) {
	slices.SortFunc(cuts, func(a, b cut) int {
		switch {
		case a.edge != b.edge:
			return int(a.edge) - int(b.edge)
		case a.t < b.t:
			return -1
		case a.t > b.t:
			return 1
		default:
			return 0
		}
	})
}

// forEachNodedSub calls fn with every noded sub-segment of edge e given
// its sorted cut run. Duplicate cut parameters (within 1e-12) collapse,
// exactly as in the old per-edge noder.
func forEachNodedSub(e *prepEdge, cuts []cut, fn func(p, q geom.Point)) {
	if len(cuts) == 0 {
		fn(e.a, e.b)
		return
	}
	prev := 0.0
	emit := func(t0, t1 float64) {
		if t1-t0 > 1e-12 {
			fn(geom.Lerp(e.a, e.b, t0), geom.Lerp(e.a, e.b, t1))
		}
	}
	for _, c := range cuts {
		if c.t-prev > 1e-12 {
			emit(prev, c.t)
			prev = c.t
		}
	}
	emit(prev, 1)
}

// NodedSegments returns the boundary segments of a and b, each subdivided
// at every intersection with the other's boundary. The overlay engine
// builds its trapezoid sweep from these.
func NodedSegments(a, b *geom.MultiPolygon) (as, bs [][2]geom.Point) {
	pa, pb := prepareTopology(a), prepareTopology(b)
	var sc Scratch
	sc.node(pa, pb)
	as = appendNoded(as, pa.edges, sc.rCuts)
	bs = appendNoded(bs, pb.edges, sc.sCuts)
	return as, bs
}

func appendNoded(out [][2]geom.Point, edges []prepEdge, cuts []cut) [][2]geom.Point {
	c := 0
	for i := range edges {
		lo := c
		for c < len(cuts) && cuts[c].edge == int32(i) {
			c++
		}
		forEachNodedSub(&edges[i], cuts[lo:c], func(p, q geom.Point) {
			out = append(out, [2]geom.Point{p, q})
		})
	}
	return out
}
