package de9im

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// edgeRec is one boundary edge prepared for the sweep, with the cut
// parameters accumulated during noding.
type edgeRec struct {
	a, b                   geom.Point
	minX, maxX, minY, maxY float64
	cuts                   []float64
}

func newEdgeRec(a, b geom.Point) edgeRec {
	return edgeRec{
		a: a, b: b,
		minX: math.Min(a.X, b.X), maxX: math.Max(a.X, b.X),
		minY: math.Min(a.Y, b.Y), maxY: math.Max(a.Y, b.Y),
	}
}

// param returns the parameter of point p along the edge, using the
// dominant axis for stability.
func (e *edgeRec) param(p geom.Point) float64 {
	dx, dy := e.b.X-e.a.X, e.b.Y-e.a.Y
	if math.Abs(dx) >= math.Abs(dy) {
		if dx == 0 {
			return 0
		}
		return (p.X - e.a.X) / dx
	}
	return (p.Y - e.a.Y) / dy
}

func (e *edgeRec) addCut(p geom.Point) {
	t := e.param(p)
	if t > 1e-12 && t < 1-1e-12 {
		e.cuts = append(e.cuts, t)
	}
}

// collectEdges gathers all boundary edges of a multipolygon.
func collectEdges(m *geom.MultiPolygon) []edgeRec {
	var out []edgeRec
	m.Edges(func(a, b geom.Point) { out = append(out, newEdgeRec(a, b)) })
	return out
}

// nodeResult carries the outcome of noding two boundaries against each
// other: per-edge cut lists live inside the edge slices, and anyPoint
// records whether the boundaries share at least one point.
type nodeResult struct {
	rEdges, sEdges []edgeRec
	anyPoint       bool
}

// nodeBoundaries intersects every edge of r against every edge of s using
// a forward plane sweep over x to prune candidate pairs, recording cut
// parameters on both edges.
func nodeBoundaries(r, s *geom.MultiPolygon) nodeResult {
	res := nodeResult{rEdges: collectEdges(r), sEdges: collectEdges(s)}

	// Only edges near the MBR overlap window can intersect the other
	// boundary; restrict the sweep to those.
	win := r.Bounds().Intersection(s.Bounds())
	if win.IsEmpty() {
		return res
	}
	pad := geom.Eps
	win = geom.MBR{MinX: win.MinX - pad, MinY: win.MinY - pad, MaxX: win.MaxX + pad, MaxY: win.MaxY + pad}

	rIdx := windowIndices(res.rEdges, win)
	sIdx := windowIndices(res.sEdges, win)
	sortByMinX(res.rEdges, rIdx)
	sortByMinX(res.sEdges, sIdx)

	intersectPair := func(ri, si int) {
		re, se := &res.rEdges[ri], &res.sEdges[si]
		if re.minY > se.maxY+pad || se.minY > re.maxY+pad {
			return
		}
		x := geom.SegIntersect(re.a, re.b, se.a, se.b)
		switch x.Kind {
		case geom.SegNone:
		case geom.SegPoint:
			res.anyPoint = true
			re.addCut(x.P)
			se.addCut(x.P)
		case geom.SegOverlap:
			res.anyPoint = true
			re.addCut(x.P)
			re.addCut(x.Q)
			se.addCut(x.P)
			se.addCut(x.Q)
		}
	}

	// Forward sweep: process both index lists in merged minX order; each
	// edge forward-scans the other list while minX <= its maxX. Pairs with
	// the other edge starting earlier were visited from the other side.
	i, j := 0, 0
	for i < len(rIdx) && j < len(sIdx) {
		if res.rEdges[rIdx[i]].minX <= res.sEdges[sIdx[j]].minX {
			e := &res.rEdges[rIdx[i]]
			for k := j; k < len(sIdx) && res.sEdges[sIdx[k]].minX <= e.maxX+pad; k++ {
				intersectPair(rIdx[i], sIdx[k])
			}
			i++
		} else {
			e := &res.sEdges[sIdx[j]]
			for k := i; k < len(rIdx) && res.rEdges[rIdx[k]].minX <= e.maxX+pad; k++ {
				intersectPair(rIdx[k], sIdx[j])
			}
			j++
		}
	}
	return res
}

// windowIndices returns the indices of edges whose bbox intersects win.
func windowIndices(edges []edgeRec, win geom.MBR) []int {
	var out []int
	for i := range edges {
		e := &edges[i]
		if e.minX <= win.MaxX && win.MinX <= e.maxX &&
			e.minY <= win.MaxY && win.MinY <= e.maxY {
			out = append(out, i)
		}
	}
	return out
}

func sortByMinX(edges []edgeRec, idx []int) {
	sort.Slice(idx, func(a, b int) bool { return edges[idx[a]].minX < edges[idx[b]].minX })
}

// forEachNodedSub calls fn with every noded sub-segment of the edge. Cut
// parameters are sorted and deduplicated first.
func (e *edgeRec) forEachNodedSub(fn func(p, q geom.Point)) {
	if len(e.cuts) == 0 {
		fn(e.a, e.b)
		return
	}
	sort.Float64s(e.cuts)
	prev := 0.0
	emit := func(t0, t1 float64) {
		if t1-t0 > 1e-12 {
			fn(geom.Lerp(e.a, e.b, t0), geom.Lerp(e.a, e.b, t1))
		}
	}
	for _, t := range e.cuts {
		if t-prev > 1e-12 {
			emit(prev, t)
			prev = t
		}
	}
	emit(prev, 1)
}

// forEachNodedMidpoint calls fn with the midpoint of every noded
// sub-segment of the edge.
func (e *edgeRec) forEachNodedMidpoint(fn func(mid geom.Point)) {
	e.forEachNodedSub(func(p, q geom.Point) { fn(geom.Midpoint(p, q)) })
}

// NodedSegments returns the boundary segments of a and b, each subdivided
// at every intersection with the other's boundary. The overlay engine
// builds its trapezoid sweep from these.
func NodedSegments(a, b *geom.MultiPolygon) (as, bs [][2]geom.Point) {
	nr := nodeBoundaries(a, b)
	for i := range nr.rEdges {
		nr.rEdges[i].forEachNodedSub(func(p, q geom.Point) {
			as = append(as, [2]geom.Point{p, q})
		})
	}
	for i := range nr.sEdges {
		nr.sEdges[i].forEachNodedSub(func(p, q geom.Point) {
			bs = append(bs, [2]geom.Point{p, q})
		})
	}
	return as, bs
}
