package de9im

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// boxMatrix computes the DE-9IM matrix of two axis-aligned rectangles
// analytically, with pure 1D interval arithmetic — an independent
// reference for the geometric engine, exact on touching/aligned cases.
type iv1 struct{ lo, hi float64 }

func (a iv1) openOverlap(b iv1) float64 {
	lo, hi := a.lo, a.hi
	if b.lo > lo {
		lo = b.lo
	}
	if b.hi < hi {
		hi = b.hi
	}
	return hi - lo
}

func (a iv1) contains(b iv1) bool { return a.lo <= b.lo && b.hi <= a.hi }

func boxMatrix(a, b geom.MBR) Matrix {
	ax, ay := iv1{a.MinX, a.MaxX}, iv1{a.MinY, a.MaxY}
	bx, by := iv1{b.MinX, b.MaxX}, iv1{b.MinY, b.MaxY}

	var m Matrix
	for i := range m {
		m[i] = DimF
	}
	m[EE] = Dim2

	ox, oy := ax.openOverlap(bx), ay.openOverlap(by)
	if ox > 0 && oy > 0 {
		m[II] = Dim2
	}
	if !(bx.contains(ax) && by.contains(ay)) {
		m[IE] = Dim2
	}
	if !(ax.contains(bx) && ay.contains(by)) {
		m[EI] = Dim2
	}

	// Boundary of a box: 4 edges. Classify each edge of one box against
	// the other box's interior/boundary/exterior with interval logic.
	type edge struct {
		fixed float64 // the constant coordinate
		span  iv1     // the varying coordinate range
		vert  bool    // vertical edge (x fixed)
	}
	edgesOf := func(r geom.MBR) []edge {
		return []edge{
			{r.MinY, iv1{r.MinX, r.MaxX}, false}, // bottom
			{r.MaxY, iv1{r.MinX, r.MaxX}, false}, // top
			{r.MinX, iv1{r.MinY, r.MaxY}, true},  // left
			{r.MaxX, iv1{r.MinY, r.MaxY}, true},  // right
		}
	}
	// classify edge e against box (cx, cy): sets dims for the edge's
	// intersection with the box interior, boundary, exterior.
	classify := func(e edge, cx, cy iv1) (inDim, onDim, outDim Dim) {
		fixedIv, spanIv := cy, cx
		if e.vert {
			fixedIv, spanIv = cx, cy
		}
		inDim, onDim, outDim = DimF, DimF, DimF
		fixedInterior := fixedIv.lo < e.fixed && e.fixed < fixedIv.hi
		fixedOnBorder := e.fixed == fixedIv.lo || e.fixed == fixedIv.hi
		ov := e.span.openOverlap(spanIv)
		switch {
		case fixedInterior:
			if ov > 0 {
				inDim = Dim1
			}
			// The edge crosses the box's side lines at points on the
			// boundary, when those points lie in the edge span.
			for _, x := range []float64{spanIv.lo, spanIv.hi} {
				if e.span.lo <= x && x <= e.span.hi {
					onDim = Dim0
				}
			}
			if e.span.lo < spanIv.lo || e.span.hi > spanIv.hi {
				outDim = Dim1
			}
		case fixedOnBorder:
			if ov > 0 {
				onDim = Dim1
			} else {
				// Touching at a single point still contributes to the
				// boundary/boundary entry.
				lo, hi := e.span.lo, e.span.hi
				if lo == spanIv.hi || hi == spanIv.lo ||
					(spanIv.contains(iv1{lo, lo})) || (spanIv.contains(iv1{hi, hi})) {
					if lo <= spanIv.hi && hi >= spanIv.lo {
						onDim = Dim0
					}
				}
			}
			if e.span.lo < spanIv.lo || e.span.hi > spanIv.hi {
				outDim = Dim1
			}
		default:
			outDim = Dim1
		}
		return inDim, onDim, outDim
	}
	max := func(d *Dim, v Dim) {
		if v == DimF {
			return
		}
		if *d == DimF || (*d == Dim0 && v != DimF) {
			*d = v
		}
	}
	for _, e := range edgesOf(a) {
		in, on, out := classify(e, bx, by)
		max(&m[BI], in)
		max(&m[BB], on)
		max(&m[BE], out)
	}
	for _, e := range edgesOf(b) {
		in, on, out := classify(e, ax, ay)
		max(&m[IB], in)
		max(&m[BB], on)
		max(&m[EB], out)
	}
	return m
}

func boxPoly(r geom.MBR) *geom.Polygon {
	return geom.NewPolygon(geom.Ring{
		{X: r.MinX, Y: r.MinY}, {X: r.MaxX, Y: r.MinY},
		{X: r.MaxX, Y: r.MaxY}, {X: r.MinX, Y: r.MaxY},
	})
}

// TestRelateAgainstBoxReference compares the engine with the analytic
// reference over random integer-coordinate rectangles, where exact
// touches and shared edges are common.
func TestRelateAgainstBoxReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	randBox := func() geom.MBR {
		x := float64(rng.Intn(12))
		y := float64(rng.Intn(12))
		return geom.MBR{
			MinX: x, MinY: y,
			MaxX: x + 1 + float64(rng.Intn(8)),
			MaxY: y + 1 + float64(rng.Intn(8)),
		}
	}
	for trial := 0; trial < 4000; trial++ {
		a, b := randBox(), randBox()
		got := RelatePolygons(boxPoly(a), boxPoly(b))
		want := boxMatrix(a, b)
		if got != want {
			t.Fatalf("trial %d:\na=%+v\nb=%+v\nengine   = %s\nanalytic = %s",
				trial, a, b, got, want)
		}
	}
}

// TestBoxReferenceSelfCheck pins the analytic reference on known cases so
// the reference itself is trustworthy.
func TestBoxReferenceSelfCheck(t *testing.T) {
	box := func(x0, y0, x1, y1 float64) geom.MBR {
		return geom.MBR{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1}
	}
	cases := []struct {
		a, b geom.MBR
		want string
	}{
		{box(0, 0, 2, 2), box(5, 5, 7, 7), "FF2FF1212"},
		{box(0, 0, 2, 2), box(0, 0, 2, 2), "2FFF1FFF2"},
		{box(0, 0, 2, 2), box(2, 0, 4, 2), "FF2F11212"},
		{box(0, 0, 2, 2), box(2, 2, 4, 4), "FF2F01212"},
		{box(0, 0, 3, 3), box(2, 2, 5, 5), "212101212"},
		{box(1, 1, 2, 2), box(0, 0, 4, 4), "2FF1FF212"},
		{box(0, 0, 4, 4), box(1, 1, 2, 2), "212FF1FF2"},
		{box(0, 0, 2, 2), box(0, 0, 4, 4), "2FF11F212"},
	}
	for _, c := range cases {
		if got := boxMatrix(c.a, c.b); got.String() != c.want {
			t.Errorf("boxMatrix(%v, %v) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}
