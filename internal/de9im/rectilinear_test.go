package de9im

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// Rectilinear reference: polygons built from unit grid cells have exact
// DE-9IM matrices computable by pure set arithmetic on cells and lattice
// edges. Tracing random cell blobs into polygons and comparing the
// engine against the set-arithmetic reference exercises the nastiest
// degeneracies — long shared edges, vertex-only contacts, holes — with
// exact coordinates.

type cell struct{ x, y int }

type cellSet map[cell]bool

// growBlob grows a connected random cell set of roughly n cells on a
// small grid, rejecting checkerboard pinches (which would make the
// traced boundary touch itself).
func growBlob(rng *rand.Rand, n, side int) cellSet {
	for attempt := 0; attempt < 100; attempt++ {
		s := cellSet{}
		start := cell{rng.Intn(side), rng.Intn(side)}
		s[start] = true
		frontier := []cell{start}
		for len(s) < n && len(frontier) > 0 {
			c := frontier[rng.Intn(len(frontier))]
			dirs := [4]cell{{c.x + 1, c.y}, {c.x - 1, c.y}, {c.x, c.y + 1}, {c.x, c.y - 1}}
			d := dirs[rng.Intn(4)]
			if d.x < 0 || d.y < 0 || d.x >= side || d.y >= side || s[d] {
				continue
			}
			s[d] = true
			frontier = append(frontier, d)
		}
		if !hasPinch(s) {
			return s
		}
	}
	// Fall back to a simple bar, which is always pinch-free.
	s := cellSet{}
	for i := 0; i < n && i < side; i++ {
		s[cell{i, 0}] = true
	}
	return s
}

// hasPinch reports whether two cells of s touch only diagonally at some
// lattice vertex.
func hasPinch(s cellSet) bool {
	for c := range s {
		for _, v := range [4]cell{{c.x, c.y}, {c.x + 1, c.y}, {c.x, c.y + 1}, {c.x + 1, c.y + 1}} {
			a := s[cell{v.x - 1, v.y - 1}]
			b := s[cell{v.x, v.y}]
			cc := s[cell{v.x - 1, v.y}]
			d := s[cell{v.x, v.y - 1}]
			if (a && b && !cc && !d) || (cc && d && !a && !b) {
				return true
			}
		}
	}
	return false
}

// latticeEdge is a unit boundary edge keyed by its lower-left endpoint
// and orientation.
type latticeEdge struct {
	x, y int
	horz bool // true: (x,y)-(x+1,y); false: (x,y)-(x,y+1)
}

// boundaryEdges returns the set of unit edges separating s from its
// complement.
func boundaryEdges(s cellSet) map[latticeEdge]bool {
	out := map[latticeEdge]bool{}
	for c := range s {
		if !s[cell{c.x, c.y - 1}] {
			out[latticeEdge{c.x, c.y, true}] = true
		}
		if !s[cell{c.x, c.y + 1}] {
			out[latticeEdge{c.x, c.y + 1, true}] = true
		}
		if !s[cell{c.x - 1, c.y}] {
			out[latticeEdge{c.x, c.y, false}] = true
		}
		if !s[cell{c.x + 1, c.y}] {
			out[latticeEdge{c.x + 1, c.y, false}] = true
		}
	}
	return out
}

// flanks returns the two cells separated by e.
func (e latticeEdge) flanks() (cell, cell) {
	if e.horz {
		return cell{e.x, e.y - 1}, cell{e.x, e.y}
	}
	return cell{e.x - 1, e.y}, cell{e.x, e.y}
}

// vertices returns the endpoints of e.
func (e latticeEdge) vertices() (cell, cell) {
	if e.horz {
		return cell{e.x, e.y}, cell{e.x + 1, e.y}
	}
	return cell{e.x, e.y}, cell{e.x, e.y + 1}
}

// refMatrix computes the exact DE-9IM matrix of two pinch-free cell sets.
func refMatrix(a, b cellSet) Matrix {
	var m Matrix
	for i := range m {
		m[i] = DimF
	}
	m[EE] = Dim2
	for c := range a {
		if b[c] {
			m[II] = Dim2
		} else {
			m[IE] = Dim2
		}
	}
	for c := range b {
		if !a[c] {
			m[EI] = Dim2
		}
	}
	ea, eb := boundaryEdges(a), boundaryEdges(b)
	sharedVertex := false
	bVerts := map[cell]bool{}
	for e := range eb {
		v1, v2 := e.vertices()
		bVerts[v1], bVerts[v2] = true, true
	}
	for e := range ea {
		f1, f2 := e.flanks()
		if eb[e] {
			m[BB] = Dim1
		} else {
			v1, v2 := e.vertices()
			if bVerts[v1] || bVerts[v2] {
				sharedVertex = true
			}
		}
		switch {
		case b[f1] && b[f2]:
			m[BI] = Dim1
		case !b[f1] && !b[f2]:
			m[BE] = Dim1
		}
	}
	for e := range eb {
		f1, f2 := e.flanks()
		switch {
		case a[f1] && a[f2]:
			m[IB] = Dim1
		case !a[f1] && !a[f2]:
			m[EB] = Dim1
		}
	}
	if m[BB] == DimF && sharedVertex {
		m[BB] = Dim0
	}
	return m
}

// tracePolygon converts a connected, pinch-free cell set into a polygon
// by walking its directed boundary loops (interior kept on the left):
// the counter-clockwise loop is the shell, clockwise loops are holes.
func tracePolygon(t *testing.T, s cellSet) *geom.Polygon {
	t.Helper()
	type vert = cell
	next := map[vert]vert{}
	addEdge := func(from, to vert) {
		if _, dup := next[from]; dup {
			t.Fatalf("pinch vertex at %v", from)
		}
		next[from] = to
	}
	for c := range s {
		if !s[cell{c.x, c.y - 1}] {
			addEdge(vert{c.x, c.y}, vert{c.x + 1, c.y})
		}
		if !s[cell{c.x + 1, c.y}] {
			addEdge(vert{c.x + 1, c.y}, vert{c.x + 1, c.y + 1})
		}
		if !s[cell{c.x, c.y + 1}] {
			addEdge(vert{c.x + 1, c.y + 1}, vert{c.x, c.y + 1})
		}
		if !s[cell{c.x - 1, c.y}] {
			addEdge(vert{c.x, c.y + 1}, vert{c.x, c.y})
		}
	}
	visited := map[vert]bool{}
	var loops []geom.Ring
	for start := range next {
		if visited[start] {
			continue
		}
		var ring geom.Ring
		cur := start
		for {
			visited[cur] = true
			ring = append(ring, geom.Point{X: float64(cur.x), Y: float64(cur.y)})
			cur = next[cur]
			if cur == start {
				break
			}
		}
		loops = append(loops, ring)
	}
	var shell geom.Ring
	var holes []geom.Ring
	for _, l := range loops {
		if l.IsCCW() {
			if shell != nil {
				t.Fatalf("cell set has %d shells; expected a connected set", 2)
			}
			shell = l
		} else {
			holes = append(holes, l)
		}
	}
	if shell == nil {
		t.Fatal("no shell traced")
	}
	return geom.NewPolygon(shell, holes...)
}

// TestTracePolygon sanity-checks the tracer itself.
func TestTracePolygon(t *testing.T) {
	// A 2x2 block.
	s := cellSet{{0, 0}: true, {1, 0}: true, {0, 1}: true, {1, 1}: true}
	p := tracePolygon(t, s)
	if p.Area() != 4 || len(p.Holes) != 0 {
		t.Fatalf("block: area %v, %d holes", p.Area(), len(p.Holes))
	}
	// A 3x3 ring of cells around an empty center: one hole.
	s = cellSet{}
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			if x != 1 || y != 1 {
				s[cell{x, y}] = true
			}
		}
	}
	p = tracePolygon(t, s)
	if p.Area() != 8 || len(p.Holes) != 1 {
		t.Fatalf("ring: area %v, %d holes", p.Area(), len(p.Holes))
	}
	if err := geom.ValidatePolygon(p); err != nil {
		t.Fatalf("traced polygon invalid: %v", err)
	}
}

// TestRelateAgainstRectilinearReference is the adversarial degeneracy
// sweep: random rectilinear blobs share long edge runs, single vertices
// and holes, and the engine must match exact set arithmetic every time.
func TestRelateAgainstRectilinearReference(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	const side = 8
	for trial := 0; trial < 600; trial++ {
		a := growBlob(rng, 3+rng.Intn(20), side)
		b := growBlob(rng, 3+rng.Intn(20), side)
		pa := tracePolygon(t, a)
		pb := tracePolygon(t, b)
		got := RelatePolygons(pa, pb)
		want := refMatrix(a, b)
		if got != want {
			t.Fatalf("trial %d:\nA=%v\nB=%v\nengine    = %s\nreference = %s",
				trial, a, b, got, want)
		}
	}
}

// TestRectilinearRelations spot-checks extracted relations on engineered
// cell sets.
func TestRectilinearRelations(t *testing.T) {
	row := func(x0, x1, y int) cellSet {
		s := cellSet{}
		for x := x0; x < x1; x++ {
			s[cell{x, y}] = true
		}
		return s
	}
	block := func(x0, y0, x1, y1 int) cellSet {
		s := cellSet{}
		for x := x0; x < x1; x++ {
			for y := y0; y < y1; y++ {
				s[cell{x, y}] = true
			}
		}
		return s
	}
	cases := []struct {
		a, b cellSet
		want Relation
	}{
		{row(0, 3, 0), row(3, 6, 0), Meets},    // shared vertical edge
		{row(0, 3, 0), row(0, 3, 1), Meets},    // shared long horizontal run
		{row(0, 3, 0), row(3, 6, 1), Meets},    // corner-only contact
		{row(0, 3, 0), row(4, 6, 0), Disjoint}, // gap
		{block(0, 0, 4, 4), block(1, 1, 3, 3), Contains},
		{block(1, 1, 3, 3), block(0, 0, 4, 4), Inside},
		{block(0, 0, 4, 4), block(0, 0, 2, 2), Covers}, // shares the corner
		{block(0, 0, 2, 2), block(0, 0, 4, 4), CoveredBy},
		{block(0, 0, 3, 3), block(0, 0, 3, 3), Equals},
		{block(0, 0, 3, 3), block(1, 1, 4, 4), Intersects},
	}
	for i, c := range cases {
		pa, pb := tracePolygon(t, c.a), tracePolygon(t, c.b)
		if got := FindRelation(geom.NewMultiPolygon(pa), geom.NewMultiPolygon(pb)); got != c.want {
			t.Errorf("case %d: %v, want %v (matrix %s)", i, got, c.want, RelatePolygons(pa, pb))
		}
	}
}
