package de9im

// Relation is one of the eight topological relations of the paper (Fig. 1a).
// Directional relations read left-to-right for an ordered pair (r, s):
// Inside means "r inside s", Contains means "r contains s", and so on.
type Relation uint8

// The eight topological relations.
const (
	Disjoint Relation = iota
	Intersects
	Meets
	Equals
	Inside
	CoveredBy
	Contains
	Covers
	numRelations
)

// NumRelations is the number of distinct relations.
const NumRelations = int(numRelations)

var relationNames = [...]string{
	Disjoint:   "disjoint",
	Intersects: "intersects",
	Meets:      "meets",
	Equals:     "equals",
	Inside:     "inside",
	CoveredBy:  "covered_by",
	Contains:   "contains",
	Covers:     "covers",
}

func (r Relation) String() string {
	if int(r) < len(relationNames) {
		return relationNames[r]
	}
	return "unknown"
}

// Inverse returns the relation of the swapped pair: if r relates (a, b),
// Inverse relates (b, a).
func (r Relation) Inverse() Relation {
	switch r {
	case Inside:
		return Contains
	case Contains:
		return Inside
	case CoveredBy:
		return Covers
	case Covers:
		return CoveredBy
	default:
		return r
	}
}

// masks is Table 1 of the paper: the DE-9IM masks of each topological
// relation. A relation holds iff any of its masks matches the matrix.
//
// One deviation from the literal table: for area/area pairs the OGC
// within/contains masks are implied by the covered-by/covers masks (a
// polygon covered by another always has intersecting interiors), which
// would collapse inside and covered by into one relation. The paper's
// Fig. 1(a) and Fig. 2 treat inside/contains as the *strict* variants with
// no boundary contact (inside ⊂ covered by, contains ⊂ covers), so the
// inside and contains masks additionally require BB = F.
var masks = map[Relation][]Mask{
	Disjoint: {MustMask("FF*FF****")},
	Intersects: {
		MustMask("T********"), MustMask("*T*******"),
		MustMask("***T*****"), MustMask("****T****"),
	},
	Covers: {
		MustMask("T*****FF*"), MustMask("*T****FF*"),
		MustMask("***T**FF*"), MustMask("****T*FF*"),
	},
	CoveredBy: {
		MustMask("T*F**F***"), MustMask("*TF**F***"),
		MustMask("**FT*F***"), MustMask("**F*TF***"),
	},
	Equals:   {MustMask("T*F**FFF*")},
	Contains: {MustMask("T***F*FF*")},
	Inside:   {MustMask("T*F*FF***")},
	Meets: {
		MustMask("FT*******"), MustMask("F**T*****"), MustMask("F***T****"),
	},
}

// MasksOf returns the DE-9IM masks of a relation (Table 1).
func MasksOf(r Relation) []Mask { return masks[r] }

// Holds reports whether relation rel holds for a pair with matrix m.
func Holds(rel Relation, m Matrix) bool {
	for _, k := range masks[rel] {
		if k.Matches(m) {
			return true
		}
	}
	return false
}

// SpecificToGeneral is the order in which relations are tested to find the
// most specific relation of a pair (Fig. 2's hierarchy): equals is the most
// specific, then proper containments, then boundary-only contact, then the
// generic intersects, and finally disjoint.
var SpecificToGeneral = [...]Relation{
	Equals, Inside, Contains, CoveredBy, Covers, Meets, Intersects, Disjoint,
}

// MostSpecific returns the most specific relation satisfied by matrix m,
// considering only the candidate relations in set (a bitmask built with
// RelationSet). Pass AllRelations to consider all eight.
func MostSpecific(m Matrix, set RelationSet) Relation {
	for _, rel := range SpecificToGeneral {
		if set.Has(rel) && Holds(rel, m) {
			return rel
		}
	}
	// Non-disjoint matrices always match intersects; reaching this point
	// means the candidate set excluded everything that holds, which callers
	// prevent; fall back to the unrestricted answer.
	for _, rel := range SpecificToGeneral {
		if Holds(rel, m) {
			return rel
		}
	}
	return Disjoint
}

// RelationSet is a bitmask of candidate relations.
type RelationSet uint16

// AllRelations contains every relation.
const AllRelations RelationSet = 1<<numRelations - 1

// NewRelationSet builds a set from individual relations.
func NewRelationSet(rels ...Relation) RelationSet {
	var s RelationSet
	for _, r := range rels {
		s |= 1 << r
	}
	return s
}

// Has reports whether the set contains r.
func (s RelationSet) Has(r Relation) bool { return s&(1<<r) != 0 }

// With returns the set extended by r.
func (s RelationSet) With(r Relation) RelationSet { return s | 1<<r }

// Without returns the set with r removed.
func (s RelationSet) Without(r Relation) RelationSet { return s &^ (1 << r) }

// Count returns the number of relations in the set.
func (s RelationSet) Count() int {
	n := 0
	for r := Relation(0); r < numRelations; r++ {
		if s.Has(r) {
			n++
		}
	}
	return n
}

// Relations lists the members of the set in specific-to-general order.
func (s RelationSet) Relations() []Relation {
	out := make([]Relation, 0, s.Count())
	for _, r := range SpecificToGeneral {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}
