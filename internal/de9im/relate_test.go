package de9im

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func sq(x, y, side float64) *geom.Polygon {
	return geom.NewPolygon(geom.Ring{
		{X: x, Y: y}, {X: x + side, Y: y},
		{X: x + side, Y: y + side}, {X: x, Y: y + side},
	})
}

func mp(ps ...*geom.Polygon) *geom.MultiPolygon { return geom.NewMultiPolygon(ps...) }

func TestRelateCanonicalSquares(t *testing.T) {
	cases := []struct {
		name string
		r, s *geom.Polygon
		want string
	}{
		{"disjoint", sq(0, 0, 2), sq(5, 5, 2), "FF2FF1212"},
		{"equal", sq(0, 0, 4), sq(0, 0, 4), "2FFF1FFF2"},
		{"edge meet", sq(0, 0, 2), sq(2, 0, 2), "FF2F11212"},
		{"corner meet", sq(0, 0, 2), sq(2, 2, 2), "FF2F01212"},
		{"partial edge meet", sq(0, 0, 2), sq(2, 1, 2), "FF2F11212"},
		{"overlap", sq(0, 0, 3), sq(2, 2, 3), "212101212"},
		{"inside", sq(1, 1, 2), sq(0, 0, 4), "2FF1FF212"},
		{"contains", sq(0, 0, 4), sq(1, 1, 2), "212FF1FF2"},
		{"covered by (shared edge)", sq(0, 0, 2), sq(0, 0, 4), "2FF11F212"},
		{"covers (shared edge)", sq(0, 0, 4), sq(0, 0, 2), "212F11FF2"},
		{"covered by (shared corner)", sq(0, 0, 2), sq(0, 0, 4), "2FF11F212"},
		{"inside touching MBR only", sq(1, 1, 2), sq(0, 0, 4), "2FF1FF212"},
	}
	for _, c := range cases {
		got := RelatePolygons(c.r, c.s)
		if got.String() != c.want {
			t.Errorf("%s: Relate = %s, want %s", c.name, got, c.want)
		}
	}
}

func TestRelateHoleCases(t *testing.T) {
	// s is a 10x10 square with a 4x4 hole at (3,3).
	annulus := geom.NewPolygon(
		geom.Ring{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}},
		geom.Ring{{X: 3, Y: 3}, {X: 7, Y: 3}, {X: 7, Y: 7}, {X: 3, Y: 7}},
	)

	// r entirely within the hole: disjoint despite nested MBRs.
	inHole := sq(4, 4, 2)
	if got := RelatePolygons(inHole, annulus); got.String() != "FF2FF1212" {
		t.Errorf("in-hole: %s", got)
	}
	if rel := FindRelation(mp(inHole), mp(annulus)); rel != Disjoint {
		t.Errorf("in-hole relation = %v", rel)
	}

	// r fills the hole exactly: meets along the hole ring. Its boundary
	// coincides with s's hole ring, so BE is F while its interior (the open
	// hole) lies in s's exterior.
	fillsHole := sq(3, 3, 4)
	if got := RelatePolygons(fillsHole, annulus); got.String() != "FF2F1F212" {
		t.Errorf("fills-hole: %s", got)
	}
	if rel := FindRelation(mp(fillsHole), mp(annulus)); rel != Meets {
		t.Errorf("fills-hole relation = %v", rel)
	}

	// r is the full 10x10 disk: covers the annulus; the hole ring of s lies
	// in r's interior.
	disk := sq(0, 0, 10)
	got := RelatePolygons(disk, annulus)
	if got.String() != "212F1FFF2" {
		t.Errorf("disk-covers-annulus: %s", got)
	}
	if rel := FindRelation(mp(disk), mp(annulus)); rel != Covers {
		t.Errorf("disk-covers-annulus relation = %v", rel)
	}
	// And the transposed pair is covered by.
	if rel := FindRelation(mp(annulus), mp(disk)); rel != CoveredBy {
		t.Errorf("annulus-vs-disk relation = %v", rel)
	}

	// r inside the solid part of the annulus.
	solidPart := sq(0.5, 0.5, 1.5)
	if rel := FindRelation(mp(solidPart), mp(annulus)); rel != Inside {
		t.Errorf("solid-part relation = %v", rel)
	}

	// r overlapping the hole boundary from inside the hole.
	straddle := sq(4, 4, 5)
	if rel := FindRelation(mp(straddle), mp(annulus)); rel != Intersects {
		t.Errorf("straddle relation = %v", rel)
	}
}

func TestRelateMultiPolygon(t *testing.T) {
	// r has two components: one inside s, one disjoint from s.
	r := mp(sq(1, 1, 1), sq(10, 10, 1))
	s := mp(sq(0, 0, 4))
	got := Relate(r, s)
	// II=2, IB=F, IE=2, BI=1, BB=F, BE=1, EI=2, EB=1, EE=2.
	exp := Matrix{Dim2, DimF, Dim2, Dim1, DimF, Dim1, Dim2, Dim1, Dim2}
	if got != exp {
		t.Errorf("multi: %s, want %s", got, exp)
	}
}

func TestRelateEmptyInputs(t *testing.T) {
	empty := mp()
	full := mp(sq(0, 0, 1))
	if got := Relate(empty, empty).String(); got != "FFFFFFFF2" {
		t.Errorf("empty/empty: %s", got)
	}
	if got := Relate(full, empty).String(); got != "FF2FF1FF2" {
		t.Errorf("full/empty: %s", got)
	}
	if got := Relate(empty, full).String(); got != "FFFFFF212" {
		t.Errorf("empty/full: %s", got)
	}
}

// randBlob mirrors the geom test helper.
func randBlob(rng *rand.Rand, cx, cy, radius float64, n int) geom.Ring {
	angles := make([]float64, n)
	step := 2 * math.Pi / float64(n)
	for i := range angles {
		angles[i] = float64(i)*step + rng.Float64()*step*0.8
	}
	ring := make(geom.Ring, n)
	for i, a := range angles {
		r := radius * (0.4 + 0.6*rng.Float64())
		ring[i] = geom.Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
	}
	return ring
}

// TestRelateTranspose checks Relate(r,s) == Relate(s,r)^T on random pairs.
func TestRelateTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		r := mp(geom.NewPolygon(randBlob(rng, rng.Float64()*4, rng.Float64()*4, 2+rng.Float64()*2, 8+rng.Intn(24))))
		s := mp(geom.NewPolygon(randBlob(rng, rng.Float64()*4, rng.Float64()*4, 2+rng.Float64()*2, 8+rng.Intn(24))))
		m1 := Relate(r, s)
		m2 := Relate(s, r).Transpose()
		if m1 != m2 {
			t.Fatalf("trial %d: %s vs transposed %s", trial, m1, m2)
		}
	}
}

// TestRelateAgainstSampling cross-checks computed matrices against a
// sampling reference: every intersection the sampler finds must be present
// in the computed matrix (the sampler can miss dim-0 contacts, never
// invent them).
func TestRelateAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 120; trial++ {
		rp := geom.NewPolygon(randBlob(rng, 3+rng.Float64()*2, 3+rng.Float64()*2, 1.5+rng.Float64()*2, 8+rng.Intn(20)))
		sp := geom.NewPolygon(randBlob(rng, 3+rng.Float64()*2, 3+rng.Float64()*2, 1.5+rng.Float64()*2, 8+rng.Intn(20)))
		r, s := mp(rp), mp(sp)
		m := Relate(r, s)
		sampled := sampleMatrix(r, s)
		for e := 0; e < 9; e++ {
			if sampled[e].Intersects() && !m[e].Intersects() {
				t.Fatalf("trial %d: entry %d sampled T but computed F\ncomputed=%s sampled=%s",
					trial, e, m, sampled)
			}
		}
		// Area entries are reliably found by the sampler too (open sets):
		// computed T for II/IE/EI should be confirmed unless razor thin.
		_ = sampled
	}
}

// sampleMatrix estimates the DE-9IM matrix by dense area sampling plus
// boundary walking. It under-approximates: it finds only what its samples
// hit.
func sampleMatrix(r, s *geom.MultiPolygon) Matrix {
	var m Matrix
	for i := range m {
		m[i] = DimF
	}
	m[EE] = Dim2
	lr, ls := geom.NewLocator(r), geom.NewLocator(s)
	b := r.Bounds().Expand(s.Bounds())
	const n = 60
	set := func(e int, d Dim) {
		if m[e] == DimF || (m[e] == Dim0 && d != DimF) {
			m[e] = d
		}
	}
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			p := geom.Point{
				X: b.MinX + (b.MaxX-b.MinX)*float64(i)/n,
				Y: b.MinY + (b.MaxY-b.MinY)*float64(j)/n,
			}
			cr, cs := lr.Locate(p), ls.Locate(p)
			if cr == geom.Inside && cs == geom.Inside {
				set(II, Dim2)
			}
			if cr == geom.Inside && cs == geom.Outside {
				set(IE, Dim2)
			}
			if cr == geom.Outside && cs == geom.Inside {
				set(EI, Dim2)
			}
		}
	}
	walk := func(g *geom.MultiPolygon, other *geom.Locator, inE, onE, outE int) {
		g.Edges(func(a, bb geom.Point) {
			steps := 64
			for k := 1; k < steps; k++ {
				p := geom.Lerp(a, bb, float64(k)/float64(steps))
				switch other.Locate(p) {
				case geom.Inside:
					set(inE, Dim1)
				case geom.OnBoundary:
					set(onE, Dim1)
				default:
					set(outE, Dim1)
				}
			}
		})
	}
	walk(r, ls, BI, BB, BE)
	walk(s, lr, IB, BB, EB)
	return m
}

// TestRelateAreaConsistency: computed area entries must agree with dense
// sampling when the sampled evidence is strong (sampler found the entry).
func TestRelateFindRelationScenarios(t *testing.T) {
	// A nested stack: grandparent contains parent contains child.
	child := sq(4, 4, 2)
	parent := sq(2, 2, 6)
	grand := sq(0, 0, 10)
	if rel := FindRelation(mp(child), mp(parent)); rel != Inside {
		t.Errorf("child-parent = %v", rel)
	}
	if rel := FindRelation(mp(grand), mp(child)); rel != Contains {
		t.Errorf("grand-child = %v", rel)
	}
	if rel := FindRelation(mp(child), mp(child)); rel != Equals {
		t.Errorf("self = %v", rel)
	}
	if rel := FindRelation(mp(parent), mp(sq(8.0001, 0, 5))); rel != Disjoint {
		t.Errorf("near-touch = %v", rel)
	}
}

func TestPreparedReuse(t *testing.T) {
	r := Prepare(mp(sq(0, 0, 4)))
	for i := 0; i < 3; i++ {
		// Shifting the unit square right: strictly contained, touching the
		// right edge from inside (covers), then fully disjoint.
		s := Prepare(mp(sq(1, 1, 1).Translate(float64(i)*2, 0)))
		m := RelatePrepared(r, s)
		want := []string{"212FF1FF2", "212F11FF2", "FF2FF1212"}[i]
		if m.String() != want {
			t.Errorf("i=%d: %s, want %s", i, m, want)
		}
	}
}
