package de9im

import "testing"

func mat(s string) Matrix {
	m, err := ParseMatrix(s)
	if err != nil {
		panic(err)
	}
	return m
}

func TestHoldsCanonicalMatrices(t *testing.T) {
	cases := []struct {
		code string
		rels []Relation // relations that must hold
		not  []Relation // relations that must not hold
	}{
		{"FF2FF1212", []Relation{Disjoint}, []Relation{Intersects, Meets, Equals}},
		{"2FFF1FFF2", []Relation{Equals, CoveredBy, Covers, Intersects}, []Relation{Disjoint, Meets, Inside, Contains}},
		{"FF2F11212", []Relation{Meets, Intersects}, []Relation{Disjoint, Equals, Inside}},
		{"FF2F01212", []Relation{Meets, Intersects}, []Relation{Disjoint}},
		{"212101212", []Relation{Intersects}, []Relation{Disjoint, Meets, Equals, Inside, Contains, CoveredBy, Covers}},
		{"2FF1FF212", []Relation{Inside, CoveredBy, Intersects}, []Relation{Contains, Covers, Equals, Meets, Disjoint}},
		{"2FF11F212", []Relation{CoveredBy, Intersects}, []Relation{Inside, Equals, Contains, Disjoint}},
		{"212FF1FF2", []Relation{Contains, Covers, Intersects}, []Relation{Inside, CoveredBy, Equals, Disjoint}},
		{"212F1FFF2", []Relation{Covers, Intersects}, []Relation{Contains, Inside, Equals, Disjoint}},
	}
	for _, c := range cases {
		m := mat(c.code)
		for _, r := range c.rels {
			if !Holds(r, m) {
				t.Errorf("%s should satisfy %v", c.code, r)
			}
		}
		for _, r := range c.not {
			if Holds(r, m) {
				t.Errorf("%s should not satisfy %v", c.code, r)
			}
		}
	}
}

// TestMaskHierarchy verifies Fig. 2's Venn relationships on all matrices
// reachable by the engine: equals implies covered-by and covers; inside
// implies covered-by; contains implies covers; every non-disjoint matrix
// satisfies intersects; meets excludes the containment family.
func TestMaskHierarchy(t *testing.T) {
	dims := []Dim{DimF, Dim0, Dim1, Dim2}
	var m Matrix
	m[EE] = Dim2
	// Enumerate a representative subset: II, IB, IE, BI, BB, BE, EI, EB
	// over {F, 1-or-2}; full 4^8 enumeration is unnecessary because masks
	// only distinguish F vs T.
	for bits := 0; bits < 256; bits++ {
		for e := 0; e < 8; e++ {
			if bits&(1<<e) != 0 {
				m[e] = dims[1+e%3]
			} else {
				m[e] = DimF
			}
		}
		if Holds(Equals, m) && (!Holds(CoveredBy, m) || !Holds(Covers, m)) {
			t.Fatalf("%s: equals must imply covered_by and covers", m)
		}
		if Holds(Inside, m) && !Holds(CoveredBy, m) {
			t.Fatalf("%s: inside must imply covered_by", m)
		}
		if Holds(Contains, m) && !Holds(Covers, m) {
			t.Fatalf("%s: contains must imply covers", m)
		}
		for _, r := range []Relation{Meets, Equals, Inside, Contains, CoveredBy, Covers} {
			if Holds(r, m) && !Holds(Intersects, m) {
				t.Fatalf("%s: %v must imply intersects", m, r)
			}
		}
		if Holds(Meets, m) && (Holds(Inside, m) || Holds(Contains, m) || Holds(Equals, m)) {
			t.Fatalf("%s: meets excludes containment", m)
		}
		if Holds(Disjoint, m) && Holds(Intersects, m) {
			t.Fatalf("%s: disjoint and intersects are exclusive", m)
		}
	}
}

func TestMostSpecific(t *testing.T) {
	cases := []struct {
		code string
		want Relation
	}{
		{"FF2FF1212", Disjoint},
		{"2FFF1FFF2", Equals},
		{"2FF1FF212", Inside},
		{"2FF11F212", CoveredBy},
		{"212FF1FF2", Contains},
		{"212F1FFF2", Covers},
		{"FF2F11212", Meets},
		{"212101212", Intersects},
	}
	for _, c := range cases {
		if got := MostSpecific(mat(c.code), AllRelations); got != c.want {
			t.Errorf("MostSpecific(%s) = %v, want %v", c.code, got, c.want)
		}
	}
}

func TestMostSpecificRestricted(t *testing.T) {
	m := mat("2FF1FF212") // inside
	set := NewRelationSet(CoveredBy, Intersects, Disjoint)
	if got := MostSpecific(m, set); got != CoveredBy {
		t.Errorf("restricted = %v, want covered_by", got)
	}
	// A set excluding everything that holds falls back to the true answer.
	empty := NewRelationSet(Contains)
	if got := MostSpecific(m, empty); got != Inside {
		t.Errorf("fallback = %v, want inside", got)
	}
}

func TestRelationInverse(t *testing.T) {
	pairs := map[Relation]Relation{
		Inside: Contains, Contains: Inside,
		CoveredBy: Covers, Covers: CoveredBy,
		Disjoint: Disjoint, Equals: Equals, Meets: Meets, Intersects: Intersects,
	}
	for r, want := range pairs {
		if got := r.Inverse(); got != want {
			t.Errorf("%v.Inverse() = %v, want %v", r, got, want)
		}
		if r.Inverse().Inverse() != r {
			t.Errorf("%v: inverse not involutive", r)
		}
	}
}

func TestRelationString(t *testing.T) {
	if Disjoint.String() != "disjoint" || CoveredBy.String() != "covered_by" {
		t.Error("relation names wrong")
	}
	if Relation(200).String() != "unknown" {
		t.Error("out-of-range relation should be unknown")
	}
}

func TestRelationSet(t *testing.T) {
	s := NewRelationSet(Meets, Disjoint)
	if !s.Has(Meets) || !s.Has(Disjoint) || s.Has(Equals) {
		t.Error("membership wrong")
	}
	s = s.With(Equals)
	if !s.Has(Equals) || s.Count() != 3 {
		t.Errorf("With/Count wrong: %v", s.Count())
	}
	s = s.Without(Disjoint)
	if s.Has(Disjoint) || s.Count() != 2 {
		t.Error("Without wrong")
	}
	if AllRelations.Count() != NumRelations {
		t.Errorf("AllRelations has %d members", AllRelations.Count())
	}
	rels := NewRelationSet(Intersects, Equals, Meets).Relations()
	if len(rels) != 3 || rels[0] != Equals || rels[1] != Meets || rels[2] != Intersects {
		t.Errorf("Relations order = %v", rels)
	}
}
