package de9im

import "testing"

func TestParseMatrix(t *testing.T) {
	m, err := ParseMatrix("212101212")
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "212101212" {
		t.Errorf("round trip = %q", m.String())
	}
	if _, err := ParseMatrix("short"); err == nil {
		t.Error("short code should fail")
	}
	if _, err := ParseMatrix("21210121X"); err == nil {
		t.Error("bad character should fail")
	}
	if _, err := ParseMatrix("T12101212"); err == nil {
		t.Error("mask characters are not valid matrix entries")
	}
}

func TestParseMask(t *testing.T) {
	k, err := ParseMask("T*F**F***")
	if err != nil {
		t.Fatal(err)
	}
	if k.String() != "T*F**F***" {
		t.Errorf("round trip = %q", k.String())
	}
	if _, err := ParseMask("T*F**F**"); err == nil {
		t.Error("short mask should fail")
	}
	if _, err := ParseMask("T*F**F**Q"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestMaskMatches(t *testing.T) {
	m, _ := ParseMatrix("2FF1FF212")
	cases := []struct {
		mask string
		want bool
	}{
		{"T*F**F***", true}, // inside
		{"*********", true},
		{"2FF1FF212", true},  // exact dims
		{"FF*FF****", false}, // disjoint
		{"T*****FF*", false}, // contains
		{"1********", false}, // wrong specific dim
	}
	for _, c := range cases {
		k := MustMask(c.mask)
		if got := k.Matches(m); got != c.want {
			t.Errorf("mask %s vs %s = %v, want %v", c.mask, m, got, c.want)
		}
	}
}

func TestTranspose(t *testing.T) {
	m, _ := ParseMatrix("212101FF2")
	tr := m.Transpose()
	if tr[II] != m[II] || tr[IB] != m[BI] || tr[IE] != m[EI] ||
		tr[BI] != m[IB] || tr[BB] != m[BB] || tr[BE] != m[EB] ||
		tr[EI] != m[IE] || tr[EB] != m[BE] || tr[EE] != m[EE] {
		t.Errorf("Transpose(%s) = %s", m, tr)
	}
	if m.Transpose().Transpose() != m {
		t.Error("double transpose must be identity")
	}
}

func TestDim(t *testing.T) {
	if DimF.Intersects() {
		t.Error("F must not intersect")
	}
	for _, d := range []Dim{Dim0, Dim1, Dim2} {
		if !d.Intersects() {
			t.Errorf("%c must intersect", d)
		}
	}
}

func TestMustMaskPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMask on bad input should panic")
		}
	}()
	MustMask("bad")
}
