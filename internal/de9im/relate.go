package de9im

import (
	"slices"
	"sync"

	"repro/internal/geom"
)

// Relate computes the DE-9IM matrix of the ordered pair (r, s).
func Relate(r, s *geom.MultiPolygon) Matrix {
	return RelatePrepared(Prepare(r), Prepare(s))
}

// RelatePolygons computes the DE-9IM matrix of two single polygons.
func RelatePolygons(r, s *geom.Polygon) Matrix {
	return Relate(geom.NewMultiPolygon(r), geom.NewMultiPolygon(s))
}

// Prepared wraps a geometry with every pair-independent acceleration
// structure Relate needs: a slab-indexed point locator, the boundary
// edge table with per-edge bounding boxes, a minX-sorted edge index for
// the noding sweep, cached bounds, and lazily computed per-component
// interior points. Preparing once amortizes all of it across the many
// pairs an object participates in; a Prepared is immutable after
// construction and safe for concurrent use (interior points are guarded
// by a sync.Once).
type Prepared struct {
	Geom    *geom.MultiPolygon
	locator *geom.Locator
	bounds  geom.MBR
	edges   []prepEdge // boundary edges in Geom.Edges order
	byMinX  []int32    // edge indices sorted by (minX, index)
	intOnce sync.Once
	intPts  []geom.Point
}

// Prepare builds the locator and edge tables for g.
func Prepare(g *geom.MultiPolygon) *Prepared {
	p := prepareTopology(g)
	p.locator = geom.NewLocator(g)
	return p
}

// prepareTopology builds everything except the locator — enough for
// noding (NodedSegments), which never point-locates.
func prepareTopology(g *geom.MultiPolygon) *Prepared {
	p := &Prepared{Geom: g, bounds: g.Bounds()}
	g.Edges(func(a, b geom.Point) { p.edges = append(p.edges, newPrepEdge(a, b)) })
	p.byMinX = make([]int32, len(p.edges))
	for i := range p.byMinX {
		p.byMinX[i] = int32(i)
	}
	slices.SortFunc(p.byMinX, func(a, b int32) int {
		xa, xb := p.edges[a].minX, p.edges[b].minX
		switch {
		case xa < xb:
			return -1
		case xa > xb:
			return 1
		default:
			return int(a - b)
		}
	})
	return p
}

// interiorPoints computes one interior point per polygon component,
// caching the result. Safe under concurrent callers.
func (p *Prepared) interiorPoints() []geom.Point {
	p.intOnce.Do(func() { p.intPts = geom.InteriorPoints(p.Geom) })
	return p.intPts
}

// probe classifies an interior point of the *other* geometry, nudging the
// probe off numerically-degenerate boundary hits while staying inside own.
func probe(pt geom.Point, other, own *geom.Locator) geom.Location {
	loc := other.Locate(pt)
	if loc != geom.OnBoundary {
		return loc
	}
	const d = 1e-9
	for _, off := range [...]geom.Point{{X: d}, {X: -d}, {Y: d}, {Y: -d}} {
		q := pt.Add(off)
		if own.Locate(q) != geom.Inside {
			continue
		}
		if l := other.Locate(q); l != geom.OnBoundary {
			return l
		}
	}
	return loc
}

// classifyMid folds the location of one noded-segment midpoint into the
// side flags.
func classifyMid(mid geom.Point, loc *geom.Locator, in, on, out *bool) {
	switch loc.Locate(mid) {
	case geom.Inside:
		*in = true
	case geom.OnBoundary:
		*on = true
	default:
		*out = true
	}
}

// classifySide classifies the midpoint of every noded sub-segment of one
// boundary against the other geometry's locator. cuts must be sorted by
// (edge, t); the walk uses a single cursor over the contiguous per-edge
// runs, so it allocates nothing. Early-exits once all three flags are set.
func classifySide(edges []prepEdge, cuts []cut, loc *geom.Locator, in, on, out *bool) {
	c := 0
	for i := range edges {
		if *in && *on && *out {
			return
		}
		lo := c
		for c < len(cuts) && cuts[c].edge == int32(i) {
			c++
		}
		e := &edges[i]
		run := cuts[lo:c]
		if len(run) == 0 {
			classifyMid(geom.Midpoint(e.a, e.b), loc, in, on, out)
			continue
		}
		// Same dedup chain as forEachNodedSub, with the midpoint taken
		// inline instead of through callbacks.
		prev := 0.0
		for _, ct := range run {
			if ct.t-prev > 1e-12 {
				classifySub(e, prev, ct.t, loc, in, on, out)
				prev = ct.t
			}
		}
		classifySub(e, prev, 1, loc, in, on, out)
	}
}

func classifySub(e *prepEdge, t0, t1 float64, loc *geom.Locator, in, on, out *bool) {
	if t1-t0 > 1e-12 {
		mid := geom.Midpoint(geom.Lerp(e.a, e.b, t0), geom.Lerp(e.a, e.b, t1))
		classifyMid(mid, loc, in, on, out)
	}
}

// RelatePrepared computes the DE-9IM matrix from prepared geometries,
// allocating a fresh scratch.
func RelatePrepared(r, s *Prepared) Matrix {
	return RelateScratch(r, s, nil)
}

// RelateScratch computes the DE-9IM matrix from prepared geometries using
// the caller's reusable scratch (nil means allocate one). With a warm
// scratch and warm Prepared values the steady state allocates nothing —
// the zero-alloc guard test pins this.
//
// Derivation: after noding the boundaries against each other, every noded
// boundary segment of one geometry lies entirely in the interior, on the
// boundary, or in the exterior of the other (its interior cannot cross the
// other boundary), so its midpoint classification is exact. Because
// interiors and exteriors are open sets, boundary/interior and
// boundary/exterior intersections are never isolated points, which makes
// the segment flags sufficient for all B-row and B-column entries.
// Area entries (II, IE, EI) follow from the flags plus per-component
// interior-point probes; DESIGN.md §4 sketches the completeness argument.
func RelateScratch(r, s *Prepared, sc *Scratch) Matrix {
	var m Matrix
	for i := range m {
		m[i] = DimF
	}
	m[EE] = Dim2
	if len(r.Geom.Polys) == 0 || len(s.Geom.Polys) == 0 {
		// Degenerate empty inputs: only the non-empty side contributes.
		if len(r.Geom.Polys) != 0 {
			m[IE], m[BE] = Dim2, Dim1
		}
		if len(s.Geom.Polys) != 0 {
			m[EI], m[EB] = Dim2, Dim1
		}
		return m
	}

	if sc == nil {
		sc = new(Scratch)
	}
	anyPoint := sc.node(r, s)

	var rIn, rOn, rOut, sIn, sOn, sOut bool
	classifySide(r.edges, sc.rCuts, s.locator, &rIn, &rOn, &rOut)
	classifySide(s.edges, sc.sCuts, r.locator, &sIn, &sOn, &sOut)

	// Boundary rows/columns.
	if rIn {
		m[BI] = Dim1
	}
	if rOut {
		m[BE] = Dim1
	}
	if sIn {
		m[IB] = Dim1
	}
	if sOut {
		m[EB] = Dim1
	}
	switch {
	case rOn || sOn:
		m[BB] = Dim1
	case anyPoint:
		m[BB] = Dim0
	}

	// Area entries. A boundary segment of one geometry inside the other's
	// interior witnesses area overlap on both sides of that segment.
	if rIn || sIn {
		m[II] = Dim2
	}
	if rOut || sIn {
		m[IE] = Dim2
	}
	if sOut || rIn {
		m[EI] = Dim2
	}

	// Interior-point fallbacks for the undecided open-set entries: needed
	// when one region's components avoid the other's boundary entirely
	// (nesting without contact, identical boundaries, disjointness).
	if m[II] == DimF || m[IE] == DimF {
		for _, pt := range r.interiorPoints() {
			switch probe(pt, s.locator, r.locator) {
			case geom.Inside:
				m[II] = Dim2
			case geom.Outside:
				m[IE] = Dim2
			}
		}
	}
	if m[II] == DimF || m[EI] == DimF {
		for _, pt := range s.interiorPoints() {
			switch probe(pt, r.locator, s.locator) {
			case geom.Inside:
				m[II] = Dim2
			case geom.Outside:
				m[EI] = Dim2
			}
		}
	}
	return m
}

// FindRelation computes the most specific topological relation of (r, s)
// by full refinement: the ST2 baseline's core.
func FindRelation(r, s *geom.MultiPolygon) Relation {
	return MostSpecific(Relate(r, s), AllRelations)
}
