package de9im

import "repro/internal/geom"

// Relate computes the DE-9IM matrix of the ordered pair (r, s).
func Relate(r, s *geom.MultiPolygon) Matrix {
	return RelatePrepared(Prepare(r), Prepare(s))
}

// RelatePolygons computes the DE-9IM matrix of two single polygons.
func RelatePolygons(r, s *geom.Polygon) Matrix {
	return Relate(geom.NewMultiPolygon(r), geom.NewMultiPolygon(s))
}

// Prepared wraps a geometry with the acceleration structures Relate needs:
// a slab-indexed point locator and lazily computed per-component interior
// points. Preparing once is useful when the same object participates in
// many pairs.
type Prepared struct {
	Geom    *geom.MultiPolygon
	locator *geom.Locator
	intPts  []geom.Point
}

// Prepare builds the locator for g.
func Prepare(g *geom.MultiPolygon) *Prepared {
	return &Prepared{Geom: g, locator: geom.NewLocator(g)}
}

// interiorPoints computes one interior point per polygon component, caching
// the result.
func (p *Prepared) interiorPoints() []geom.Point {
	if p.intPts == nil {
		p.intPts = geom.InteriorPoints(p.Geom)
	}
	return p.intPts
}

// probe classifies an interior point of the *other* geometry, nudging the
// probe off numerically-degenerate boundary hits while staying inside own.
func probe(pt geom.Point, other, own *geom.Locator) geom.Location {
	loc := other.Locate(pt)
	if loc != geom.OnBoundary {
		return loc
	}
	const d = 1e-9
	for _, off := range [...]geom.Point{{X: d}, {X: -d}, {Y: d}, {Y: -d}} {
		q := pt.Add(off)
		if own.Locate(q) != geom.Inside {
			continue
		}
		if l := other.Locate(q); l != geom.OnBoundary {
			return l
		}
	}
	return loc
}

// RelatePrepared computes the DE-9IM matrix from prepared geometries.
//
// Derivation: after noding the boundaries against each other, every noded
// boundary segment of one geometry lies entirely in the interior, on the
// boundary, or in the exterior of the other (its interior cannot cross the
// other boundary), so its midpoint classification is exact. Because
// interiors and exteriors are open sets, boundary/interior and
// boundary/exterior intersections are never isolated points, which makes
// the segment flags sufficient for all B-row and B-column entries.
// Area entries (II, IE, EI) follow from the flags plus per-component
// interior-point probes; DESIGN.md §4 sketches the completeness argument.
func RelatePrepared(r, s *Prepared) Matrix {
	var m Matrix
	for i := range m {
		m[i] = DimF
	}
	m[EE] = Dim2
	if len(r.Geom.Polys) == 0 || len(s.Geom.Polys) == 0 {
		// Degenerate empty inputs: only the non-empty side contributes.
		if len(r.Geom.Polys) != 0 {
			m[IE], m[BE] = Dim2, Dim1
		}
		if len(s.Geom.Polys) != 0 {
			m[EI], m[EB] = Dim2, Dim1
		}
		return m
	}

	nr := nodeBoundaries(r.Geom, s.Geom)

	var rIn, rOn, rOut, sIn, sOn, sOut bool
	classify := func(edges []edgeRec, loc *geom.Locator, in, on, out *bool) {
		for i := range edges {
			if *in && *on && *out {
				return
			}
			edges[i].forEachNodedMidpoint(func(mid geom.Point) {
				switch loc.Locate(mid) {
				case geom.Inside:
					*in = true
				case geom.OnBoundary:
					*on = true
				default:
					*out = true
				}
			})
		}
	}
	classify(nr.rEdges, s.locator, &rIn, &rOn, &rOut)
	classify(nr.sEdges, r.locator, &sIn, &sOn, &sOut)

	// Boundary rows/columns.
	if rIn {
		m[BI] = Dim1
	}
	if rOut {
		m[BE] = Dim1
	}
	if sIn {
		m[IB] = Dim1
	}
	if sOut {
		m[EB] = Dim1
	}
	switch {
	case rOn || sOn:
		m[BB] = Dim1
	case nr.anyPoint:
		m[BB] = Dim0
	}

	// Area entries. A boundary segment of one geometry inside the other's
	// interior witnesses area overlap on both sides of that segment.
	if rIn || sIn {
		m[II] = Dim2
	}
	if rOut || sIn {
		m[IE] = Dim2
	}
	if sOut || rIn {
		m[EI] = Dim2
	}

	// Interior-point fallbacks for the undecided open-set entries: needed
	// when one region's components avoid the other's boundary entirely
	// (nesting without contact, identical boundaries, disjointness).
	if m[II] == DimF || m[IE] == DimF {
		for _, pt := range r.interiorPoints() {
			switch probe(pt, s.locator, r.locator) {
			case geom.Inside:
				m[II] = Dim2
			case geom.Outside:
				m[IE] = Dim2
			}
		}
	}
	if m[II] == DimF || m[EI] == DimF {
		for _, pt := range s.interiorPoints() {
			switch probe(pt, r.locator, s.locator) {
			case geom.Inside:
				m[II] = Dim2
			case geom.Outside:
				m[EI] = Dim2
			}
		}
	}
	return m
}

// FindRelation computes the most specific topological relation of (r, s)
// by full refinement: the ST2 baseline's core.
func FindRelation(r, s *geom.MultiPolygon) Relation {
	return MostSpecific(Relate(r, s), AllRelations)
}
