package de9im

import (
	"testing"

	"repro/internal/geom"
)

// conversePairs is a battery of area/area configurations covering every
// MBR case and every named relation (plus the asymmetric ones in both
// directions).
func conversePairs() []struct {
	name string
	a, b *geom.MultiPolygon
} {
	donut := geom.NewPolygon(
		geom.Ring{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}},
		geom.Ring{{X: 3, Y: 3}, {X: 7, Y: 3}, {X: 7, Y: 7}, {X: 3, Y: 7}},
	)
	return []struct {
		name string
		a, b *geom.MultiPolygon
	}{
		{"disjoint", mp(sq(0, 0, 2)), mp(sq(5, 5, 2))},
		{"meets-edge", mp(sq(0, 0, 2)), mp(sq(2, 0, 2))},
		{"meets-corner", mp(sq(0, 0, 2)), mp(sq(2, 2, 2))},
		{"overlap", mp(sq(0, 0, 4)), mp(sq(2, 2, 4))},
		{"equal", mp(sq(1, 1, 3)), mp(sq(1, 1, 3))},
		{"inside", mp(sq(2, 2, 1)), mp(sq(0, 0, 8))},
		{"contains", mp(sq(0, 0, 8)), mp(sq(2, 2, 1))},
		{"covered-by", mp(sq(0, 0, 2)), mp(sq(0, 0, 4))},
		{"covers", mp(sq(0, 0, 4)), mp(sq(0, 0, 2))},
		{"hole-island", mp(donut), mp(sq(4, 4, 2))},
		{"hole-filling", mp(donut), mp(sq(3, 3, 4))},
		{"cross", mp(geom.NewPolygon(geom.Ring{{X: -1, Y: 2}, {X: 6, Y: 2}, {X: 6, Y: 3}, {X: -1, Y: 3}})),
			mp(geom.NewPolygon(geom.Ring{{X: 2, Y: -1}, {X: 3, Y: -1}, {X: 3, Y: 6}, {X: 2, Y: 6}}))},
		{"multi-vs-one", mp(sq(0, 0, 2), sq(6, 0, 2)), mp(sq(1, 1, 6))},
	}
}

// TestConverseSymmetry: swapping the arguments must transpose the
// matrix, and every relation predicate must hold on (A, B) exactly when
// its inverse holds on (B, A) — for every pair in the battery and every
// relation. This is the algebraic converse law of Fig. 1a.
func TestConverseSymmetry(t *testing.T) {
	for _, tc := range conversePairs() {
		t.Run(tc.name, func(t *testing.T) {
			ab := Relate(tc.a, tc.b)
			ba := Relate(tc.b, tc.a)
			if ba.Transpose() != ab {
				t.Fatalf("Relate(B,A) = %s is not the transpose of Relate(A,B) = %s", ba, ab)
			}
			for rel := Relation(0); int(rel) < NumRelations; rel++ {
				fwd := Holds(rel, ab)
				rev := Holds(rel.Inverse(), ba)
				if fwd != rev {
					t.Errorf("Holds(%s, A·B) = %v but Holds(%s, B·A) = %v", rel, fwd, rel.Inverse(), rev)
				}
			}
			mostAB := MostSpecific(ab, AllRelations)
			mostBA := MostSpecific(ba, AllRelations)
			if mostBA != mostAB.Inverse() {
				t.Errorf("MostSpecific(A,B) = %s but MostSpecific(B,A) = %s (want %s)",
					mostAB, mostBA, mostAB.Inverse())
			}
		})
	}
}

// TestTransposeInvolution: transposing twice is the identity, and the
// transpose moves each entry to its mirrored slot.
func TestTransposeInvolution(t *testing.T) {
	m, err := ParseMatrix("012F12F01")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Transpose().Transpose(); got != m {
		t.Fatalf("double transpose %s != %s", got, m)
	}
	tr := m.Transpose()
	swaps := [][2]int{{IB, BI}, {IE, EI}, {BE, EB}}
	for _, s := range swaps {
		if tr[s[0]] != m[s[1]] || tr[s[1]] != m[s[0]] {
			t.Errorf("transpose did not swap entries %d and %d: %s -> %s", s[0], s[1], m, tr)
		}
	}
	for _, d := range []int{II, BB, EE} {
		if tr[d] != m[d] {
			t.Errorf("transpose moved diagonal entry %d: %s -> %s", d, m, tr)
		}
	}
}

// TestInverseInvolution: Inverse is an involution pairing the
// directional relations and fixing the symmetric ones.
func TestInverseInvolution(t *testing.T) {
	for rel := Relation(0); int(rel) < NumRelations; rel++ {
		if got := rel.Inverse().Inverse(); got != rel {
			t.Errorf("%s.Inverse().Inverse() = %s", rel, got)
		}
	}
	pairs := map[Relation]Relation{
		Inside: Contains, CoveredBy: Covers,
		Disjoint: Disjoint, Intersects: Intersects, Meets: Meets, Equals: Equals,
	}
	for a, b := range pairs {
		if a.Inverse() != b {
			t.Errorf("%s.Inverse() = %s, want %s", a, a.Inverse(), b)
		}
	}
}
