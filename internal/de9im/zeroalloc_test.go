package de9im

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestZeroAllocRelateScratch pins steady-state refinement to zero heap
// allocations (wired into `make bench`): with warm Prepared geometries, a
// warm Scratch, and interior points already forced, RelateScratch must
// not allocate — the join loop runs it once per surviving candidate pair.
func TestZeroAllocRelateScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	type pair struct{ r, s *Prepared }
	var pairs []pair
	for i := 0; i < 8; i++ {
		r := mp(geom.NewPolygon(randBlob(rng, 0, 0, 10, 24)))
		s := mp(geom.NewPolygon(randBlob(rng, rng.Float64()*12-6, rng.Float64()*12-6, 8, 20)))
		pairs = append(pairs, pair{Prepare(r), Prepare(s)})
	}
	sc := new(Scratch)
	var sink Matrix
	for _, p := range pairs {
		// Warm up: force interior points and grow the scratch to capacity.
		sink = RelateScratch(p.r, p.s, sc)
		p.r.interiorPoints()
		p.s.interiorPoints()
	}
	for i, p := range pairs {
		allocs := testing.AllocsPerRun(100, func() {
			sink = RelateScratch(p.r, p.s, sc)
		})
		if allocs != 0 {
			t.Errorf("pair %d: RelateScratch allocates %v per run, want 0", i, allocs)
		}
	}
	_ = sink
}
