package router

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/wkt"
)

const (
	gridOrder      = 9 // approximation grid (2^9 cells per side): small and fast
	testRouteOrder = 4 // routing grid: 256 cells over 3 shards
)

// corpus flattens n oracle-generated multipolygon pairs into left/right
// polygon sets and returns a data space containing all of them. The
// oracle generator clusters geometries around the origin, so plenty of
// pairs straddle shard boundaries of any grid over the space.
func corpus(t testing.TB, n int, seed int64) (left, right []*geom.Polygon, space geom.MBR) {
	rng := rand.New(rand.NewSource(seed))
	space = geom.MBR{MinX: 1e18, MinY: 1e18, MaxX: -1e18, MaxY: -1e18}
	grow := func(b geom.MBR) {
		if b.MinX < space.MinX {
			space.MinX = b.MinX
		}
		if b.MinY < space.MinY {
			space.MinY = b.MinY
		}
		if b.MaxX > space.MaxX {
			space.MaxX = b.MaxX
		}
		if b.MaxY > space.MaxY {
			space.MaxY = b.MaxY
		}
	}
	for i := 0; i < n; i++ {
		p := oracle.GeneratePair(rng)
		for _, poly := range p.A.Polys {
			left = append(left, poly)
			grow(poly.Bounds())
		}
		for _, poly := range p.B.Polys {
			right = append(right, poly)
			grow(poly.Bounds())
		}
	}
	space = geom.MBR{MinX: space.MinX - 1, MinY: space.MinY - 1,
		MaxX: space.MaxX + 1, MaxY: space.MaxY + 1}
	return left, right, space
}

// newNode starts one in-process server: a full single-node server when
// asg is nil, a shard otherwise.
func newNode(t testing.TB, space geom.MBR, asg *shard.Assignment,
	left, right []*geom.Polygon, tracer *trace.Tracer) *httptest.Server {
	reg := server.NewRegistry(space, gridOrder)
	if asg != nil {
		reg.SetShard(asg)
	}
	if _, err := reg.Add("left", "l", left); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("right", "r", right); err != nil {
		t.Fatal(err)
	}
	svc := server.New(reg, server.Config{Shard: asg, Tracer: tracer})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return ts
}

// newFleet builds nShards shard servers plus a router over them.
// replicasOf(i) > 1 gives shard i that many identical replicas.
func newFleet(t testing.TB, space geom.MBR, nShards int, left, right []*geom.Polygon,
	replicasOf func(int) int, rcfg Config) (*Router, *httptest.Server, [][]*httptest.Server) {
	plan, err := shard.NewPlan(space, testRouteOrder, nShards)
	if err != nil {
		t.Fatal(err)
	}
	var urls [][]string
	var nodes [][]*httptest.Server
	for i := 0; i < nShards; i++ {
		asg := plan.Assignment(i)
		n := 1
		if replicasOf != nil {
			n = replicasOf(i)
		}
		var shardURLs []string
		var shardNodes []*httptest.Server
		for r := 0; r < n; r++ {
			ts := newNode(t, space, asg, left, right, nil)
			shardURLs = append(shardURLs, ts.URL)
			shardNodes = append(shardNodes, ts)
		}
		urls = append(urls, shardURLs)
		nodes = append(nodes, shardNodes)
	}
	rcfg.Plan = plan
	rcfg.Shards = urls
	if rcfg.Retry == nil {
		// Keep failover fast under test: one attempt per replica, no
		// backoff sleeps, breaker effectively disabled so a shard killed
		// mid-test is re-probed every call.
		rcfg.Retry = &server.RetryPolicy{MaxAttempts: 1, BreakerThreshold: -1}
	}
	rt, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	return rt, rts, nodes
}

func sortPairs(ps []server.JoinPair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].LeftID != ps[j].LeftID {
			return ps[i].LeftID < ps[j].LeftID
		}
		if ps[i].RightID != ps[j].RightID {
			return ps[i].RightID < ps[j].RightID
		}
		return ps[i].Relation < ps[j].Relation
	})
}

func samePairs(t *testing.T, tag string, got, want []server.JoinPair) {
	t.Helper()
	sortPairs(got)
	sortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %+v, want %+v", tag, i, got[i], want[i])
		}
	}
}

// TestScatterGatherJoinMatchesSingleNode is the dedup proof for the
// sharded tier: the router's merged join — counters, relation tallies
// and the full result-pair multiset — must equal a single server
// holding the whole corpus, boundary-straddling geometries included,
// in every query mode.
func TestScatterGatherJoinMatchesSingleNode(t *testing.T) {
	left, right, space := corpus(t, 40, 421)
	single := newNode(t, space, nil, left, right, nil)
	_, rts, nodes := newFleet(t, space, 3, left, right, nil, Config{})

	ctx := context.Background()
	sc := server.NewClient(single.URL)
	rc := server.NewClient(rts.URL)

	// Replication sanity: at least one boundary-straddling object must
	// be held by two shards, or this test is not exercising dedup.
	total := 0
	for _, shardNodes := range nodes {
		ds, err := server.NewClient(shardNodes[0].URL).Datasets(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			total += d.Objects
		}
	}
	if total <= len(left)+len(right) {
		t.Fatalf("fleet holds %d objects, single node %d: no replication — corpus too easy",
			total, len(left)+len(right))
	}

	reqs := []server.JoinRequest{
		{Left: "left", Right: "right", Limit: 100000},
		{Left: "left", Right: "right", Limit: 100000, Predicate: "intersects"},
		{Left: "left", Right: "right", Limit: 100000, Mask: "T********"},
	}
	for _, req := range reqs {
		tag := "find"
		if req.Predicate != "" {
			tag = "pred"
		} else if req.Mask != "" {
			tag = "mask"
		}
		want, err := sc.Join(ctx, req)
		if err != nil {
			t.Fatalf("%s: single: %v", tag, err)
		}
		got, err := rc.Join(ctx, req)
		if err != nil {
			t.Fatalf("%s: routed: %v", tag, err)
		}
		if want.Candidates == 0 {
			t.Fatalf("%s: corpus produced no candidate pairs", tag)
		}
		if got.Partial || len(got.MissingShards) != 0 {
			t.Fatalf("%s: healthy fleet answered partially: %+v", tag, got)
		}
		if got.Candidates != want.Candidates || got.Evaluated != want.Evaluated ||
			got.Refined != want.Refined || got.Holds != want.Holds {
			t.Fatalf("%s: counters: routed %d/%d/%d/%d, single %d/%d/%d/%d", tag,
				got.Candidates, got.Evaluated, got.Refined, got.Holds,
				want.Candidates, want.Evaluated, want.Refined, want.Holds)
		}
		if len(got.Relations) != len(want.Relations) {
			t.Fatalf("%s: relations: routed %v, single %v", tag, got.Relations, want.Relations)
		}
		for rel, n := range want.Relations {
			if got.Relations[rel] != n {
				t.Fatalf("%s: relations[%s]: routed %d, single %d", tag, rel, got.Relations[rel], n)
			}
		}
		samePairs(t, tag, got.Pairs, want.Pairs)
	}
}

// TestScatterGatherRelateMatchesSingleNode: relate probes through the
// router (which fans out only to the shards the probe's MBR can touch)
// must match single-node answers exactly.
func TestScatterGatherRelateMatchesSingleNode(t *testing.T) {
	left, right, space := corpus(t, 30, 97)
	single := newNode(t, space, nil, left, right, nil)
	_, rts, _ := newFleet(t, space, 3, left, right, nil, Config{})

	ctx := context.Background()
	sc := server.NewClient(single.URL)
	rc := server.NewClient(rts.URL)

	probes := left
	if len(probes) > 12 {
		probes = probes[:12]
	}
	for pi, probe := range probes {
		for _, req := range []server.RelateRequest{
			{Dataset: "right", WKT: wkt.MarshalPolygon(probe), Limit: 100000},
			{Dataset: "right", WKT: wkt.MarshalPolygon(probe), Limit: 100000, Predicate: "intersects"},
		} {
			want, err := sc.Relate(ctx, req)
			if err != nil {
				t.Fatalf("probe %d: single: %v", pi, err)
			}
			got, err := rc.Relate(ctx, req)
			if err != nil {
				t.Fatalf("probe %d: routed: %v", pi, err)
			}
			if got.Partial {
				t.Fatalf("probe %d: healthy fleet answered partially", pi)
			}
			if got.Candidates != want.Candidates || got.Evaluated != want.Evaluated ||
				got.Refined != want.Refined {
				t.Fatalf("probe %d: counters: routed %d/%d/%d, single %d/%d/%d", pi,
					got.Candidates, got.Evaluated, got.Refined,
					want.Candidates, want.Evaluated, want.Refined)
			}
			g, w := got.Matches, want.Matches
			sort.Slice(w, func(i, j int) bool { return w[i].ID < w[j].ID })
			if len(g) != len(w) {
				t.Fatalf("probe %d: %d matches, want %d", pi, len(g), len(w))
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("probe %d: match %d = %+v, want %+v", pi, i, g[i], w[i])
				}
			}
		}
	}
}

// TestReplicaFailover: killing one replica of a replicated shard must
// leave answers complete (not partial) — the router fails over to the
// surviving replica.
func TestReplicaFailover(t *testing.T) {
	left, right, space := corpus(t, 20, 7)
	single := newNode(t, space, nil, left, right, nil)
	rt, rts, nodes := newFleet(t, space, 3, left, right,
		func(i int) int {
			if i == 1 {
				return 2
			}
			return 1
		}, Config{})

	ctx := context.Background()
	sc := server.NewClient(single.URL)
	rc := server.NewClient(rts.URL)
	req := server.JoinRequest{Left: "left", Right: "right", Limit: 100000}
	want, err := sc.Join(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	nodes[1][0].Close() // kill one replica of the replicated shard

	// Ask repeatedly so the round-robin start index lands on the dead
	// replica too: every answer must still be complete.
	for i := 0; i < 4; i++ {
		got, err := rc.Join(ctx, req)
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		if got.Partial || len(got.MissingShards) != 0 {
			t.Fatalf("join %d: replicated shard degraded the answer: %+v", i, got)
		}
		if got.Candidates != want.Candidates || got.Evaluated != want.Evaluated {
			t.Fatalf("join %d: counters diverged after failover", i)
		}
		samePairs(t, "failover", got.Pairs, want.Pairs)
	}

	h, err := rc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Fatalf("router health = %q, want degraded (one replica down)", h.Status)
	}
	if len(h.Shards) != 3 || h.Shards[1].Alive != 1 || h.Shards[1].Replicas != 2 ||
		h.Shards[1].Status != "degraded" {
		t.Fatalf("shard health = %+v", h.Shards)
	}
	if v := rt.Metrics().Counter(obs.Name("router_shard_requests_total", "shard", "1", "outcome", "failover")).Value(); v == 0 {
		t.Fatal("failover outcome never counted for shard 1")
	}
}

// TestDeadShardPartial: killing the only replica of a shard must yield
// flagged partial responses — never an error, never a hang — and the
// router's health must report the shard dead.
func TestDeadShardPartial(t *testing.T) {
	left, right, space := corpus(t, 20, 55)
	rt, rts, nodes := newFleet(t, space, 3, left, right, nil, Config{})

	ctx := context.Background()
	rc := server.NewClient(rts.URL)
	req := server.JoinRequest{Left: "left", Right: "right", Limit: 100000}

	// Direct per-shard answers while everything is alive: the partial
	// answer after the kill must equal the sum of the survivors.
	var liveCand [3]int
	for i, shardNodes := range nodes {
		jr, err := server.NewClient(shardNodes[0].URL).Join(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		liveCand[i] = jr.Candidates
	}

	nodes[2][0].Close()

	got, err := rc.Join(ctx, req)
	if err != nil {
		t.Fatalf("dead shard must degrade, not fail: %v", err)
	}
	if !got.Partial || len(got.MissingShards) != 1 || got.MissingShards[0] != 2 {
		t.Fatalf("partial flags = %v %v, want true [2]", got.Partial, got.MissingShards)
	}
	if want := liveCand[0] + liveCand[1]; got.Candidates != want {
		t.Fatalf("partial candidates = %d, want %d (sum of survivors)", got.Candidates, want)
	}

	h, err := rc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Shards[2].Status != "dead" {
		t.Fatalf("health after kill = %q, shard2 %q; want degraded/dead", h.Status, h.Shards[2].Status)
	}
	if v := rt.Metrics().Counter(obs.Name("router_partial_responses_total", "route", "join")).Value(); v == 0 {
		t.Fatal("partial response never counted")
	}
	if v := rt.Metrics().Counter(obs.Name("router_shard_requests_total", "shard", "2", "outcome", "dead")).Value(); v == 0 {
		t.Fatal("dead outcome never counted for shard 2")
	}
}

// TestTracePropagation: a traced router request must show up in the
// shard-side tracer under the SAME trace id (the X-Stj-Trace header
// crossed the RPC), with the shard's root span marked remote.
func TestTracePropagation(t *testing.T) {
	left, right, space := corpus(t, 10, 3)
	rtTracer := trace.New(trace.Config{Sample: 1})
	shardTracer := trace.New(trace.Config{Sample: 1})

	plan, err := shard.NewPlan(space, testRouteOrder, 1)
	if err != nil {
		t.Fatal(err)
	}
	asg := plan.Assignment(0)
	ts := newNode(t, space, asg, left, right, shardTracer)
	rt, err := New(Config{Plan: plan, Shards: [][]string{{ts.URL}}, Tracer: rtTracer})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	rc := server.NewClient(rts.URL)
	if _, err := rc.Join(context.Background(), server.JoinRequest{Left: "left", Right: "right"}); err != nil {
		t.Fatal(err)
	}

	// The shard publishes its trace when its root span ends, which can
	// race the response arriving at the test; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rtTraces, shardTraces := rtTracer.Traces(), shardTracer.Traces()
		if len(rtTraces) > 0 && len(shardTraces) > 0 {
			want := rtTraces[0].ID
			var found bool
			for _, td := range shardTraces {
				if td.ID == want {
					found = true
					if !strings.HasPrefix(td.Root.Name, "http.") {
						t.Fatalf("shard root span = %q", td.Root.Name)
					}
					if td.Root.Attr("remote_parent") != "true" {
						t.Fatal("shard root span not marked remote_parent")
					}
				}
			}
			if found {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no shard trace adopted the router's id (router %d traces, shard %d)",
				len(rtTracer.Traces()), len(shardTracer.Traces()))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterConfigValidation: shard map and plan must agree.
func TestRouterConfigValidation(t *testing.T) {
	space := geom.MBR{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	plan, err := shard.NewPlan(space, testRouteOrder, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Plan: plan, Shards: [][]string{{"http://a"}}}); err == nil {
		t.Error("shard count mismatch must fail")
	}
	if _, err := New(Config{Plan: plan, Shards: [][]string{{"http://a"}, {}}}); err == nil {
		t.Error("empty replica list must fail")
	}
	if _, err := New(Config{Shards: [][]string{{"http://a"}}}); err == nil {
		t.Error("missing plan must fail")
	}
}

// BenchmarkRouterFanout measures the router's scatter-gather overhead:
// a fixed join fanned out over 3 in-process shards, merged, end to end
// over HTTP.
func BenchmarkRouterFanout(b *testing.B) {
	left, right, space := corpus(b, 30, 2026)
	_, rts, _ := newFleet(b, space, 3, left, right, nil, Config{})
	rc := server.NewClient(rts.URL)
	ctx := context.Background()
	req := server.JoinRequest{Left: "left", Right: "right", Limit: 100000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jr, err := rc.Join(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if jr.Partial {
			b.Fatal("partial answer from a healthy fleet")
		}
	}
}
