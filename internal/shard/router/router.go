// Package router is the scatter-gather front-end of the sharded
// serving tier: it owns the shard.Plan, fans every query out to the
// shards whose key ranges the query can touch, and merges the partial
// answers into one response that is an exact multiset match with what a
// single server holding the full datasets would return.
//
// Exactness needs no router-side deduplication: shards replicate
// boundary-straddling objects but evaluate only the candidate pairs
// they own under the PBSM reference-point rule (the shard whose key
// range contains the Hilbert cell of the MBR-intersection's min corner
// answers the pair), so every pair is counted by exactly one shard and
// the per-shard counters — candidates, evaluated, refined, holds, the
// relation tallies — sum to the single-node values.
//
// Failure handling is per replica, then per shard: each shard has N
// replica hosts tried in rotation (round-robin start, per-host circuit
// breakers shared through one resilient client), and only when every
// replica of a shard is unreachable does the router degrade the answer
// — the response is flagged Partial with the missing shard indexes,
// never an error. Request-level errors (bad geometry, unknown dataset)
// propagate verbatim from the first shard that reports one.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Config tunes a Router; zero values select the documented defaults.
type Config struct {
	// Plan is the fleet's partitioning plan; required. Every shard-mode
	// server must have been started with an Assignment from the same
	// plan (same space, route order and shard count).
	Plan *shard.Plan
	// Shards lists the replica base URLs per shard index; must have
	// exactly Plan.NumShards() entries with at least one replica each.
	Shards [][]string
	// Retry overrides the scatter client's retry policy. The default
	// keeps failover snappy: 2 attempts per replica, 25ms base backoff,
	// breaker threshold 3 with a 5s cooldown.
	Retry *server.RetryPolicy
	// HTTPClient overrides the transport (tests inject httptest).
	HTTPClient *http.Client
	// DefaultTimeout / MaxTimeout bound per-query deadlines as in
	// server.Config (defaults 10s / 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultLimit / MaxLimit clamp result sizes (defaults 1000 / 100000).
	DefaultLimit int
	MaxLimit     int
	// Metrics receives the router metric families; a private registry is
	// created when nil.
	Metrics *obs.Registry
	// Tracer, when non-nil, gives every routed request a root span with
	// one child span per shard RPC; the trace id rides the X-Stj-Trace
	// header so shard-side span trees adopt it.
	Tracer *trace.Tracer
	// Logf receives router log lines; the default discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Retry == nil {
		c.Retry = &server.RetryPolicy{
			MaxAttempts:      2,
			BaseDelay:        25 * time.Millisecond,
			MaxDelay:         250 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  5 * time.Second,
		}
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.DefaultLimit <= 0 {
		c.DefaultLimit = 1000
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 100000
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// backend is one shard's replica set. Calls rotate through the replicas
// (round-robin start index) and fail over to the next replica on any
// temporary error; per-host circuit breakers make a dead replica cost
// one fast ErrCircuitOpen instead of a connect timeout on every query.
type backend struct {
	index    int
	replicas []*server.Client
	next     atomic.Uint64
}

// call runs fn against the shard's replicas until one succeeds or all
// have failed with a temporary error. A non-temporary error (the
// request's own fault: 400, 404) aborts immediately — every replica
// would answer it identically. failedOver reports whether the answer
// needed more than the first replica tried.
func (b *backend) call(ctx context.Context, fn func(c *server.Client) error) (failedOver bool, err error) {
	start := int(b.next.Add(1)-1) % len(b.replicas)
	var lastErr error
	for i := 0; i < len(b.replicas); i++ {
		c := b.replicas[(start+i)%len(b.replicas)]
		err := fn(c)
		if err == nil {
			return i > 0, nil
		}
		if ctx.Err() != nil || !shardUnreachable(err) {
			return i > 0, err
		}
		lastErr = err
	}
	return true, lastErr
}

// shardUnreachable reports whether err means "this replica cannot
// answer right now" (fail over / degrade) as opposed to "this request
// is broken" (propagate).
func shardUnreachable(err error) bool {
	return errors.Is(err, server.ErrCircuitOpen) || server.IsTemporary(err)
}

// Router is the scatter-gather HTTP front-end. Create with New, serve
// Handler().
type Router struct {
	cfg    Config
	plan   *shard.Plan
	shards []*backend
	mux    *http.ServeMux
	met    *obs.Registry
	tracer *trace.Tracer
	logf   func(format string, args ...any)

	draining atomic.Bool
	wg       sync.WaitGroup

	fanout *obs.Histogram
}

// New validates the shard map against the plan and builds the router.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Plan == nil {
		return nil, fmt.Errorf("router: config needs a shard plan")
	}
	if len(cfg.Shards) != cfg.Plan.NumShards() {
		return nil, fmt.Errorf("router: plan has %d shards, config lists %d",
			cfg.Plan.NumShards(), len(cfg.Shards))
	}
	base := server.NewResilientClient("")
	base.Retry = cfg.Retry
	if cfg.HTTPClient != nil {
		base.HTTPClient = cfg.HTTPClient
	}
	rt := &Router{
		cfg:    cfg,
		plan:   cfg.Plan,
		mux:    http.NewServeMux(),
		met:    cfg.Metrics,
		tracer: cfg.Tracer,
		logf:   cfg.Logf,
		fanout: cfg.Metrics.Histogram("router_scatter_fanout",
			[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
	}
	for i, urls := range cfg.Shards {
		if len(urls) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", i)
		}
		b := &backend{index: i}
		for _, u := range urls {
			b.replicas = append(b.replicas, base.At(u))
		}
		rt.shards = append(rt.shards, b)
	}
	rt.mux.HandleFunc("POST /v1/relate", rt.route("relate", rt.handleRelate))
	rt.mux.HandleFunc("POST /v1/join", rt.route("join", rt.handleJoin))
	rt.mux.HandleFunc("GET /v1/healthz", rt.route("healthz", rt.handleHealthz))
	rt.mux.HandleFunc("GET /v1/datasets", rt.route("datasets", rt.handleDatasets))
	rt.mux.HandleFunc("GET /v1/metricz", rt.route("metricz", rt.handleMetricz))
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Metrics exposes the router's metrics registry.
func (rt *Router) Metrics() *obs.Registry { return rt.met }

// Plan exposes the partitioning plan the router scatters with.
func (rt *Router) Plan() *shard.Plan { return rt.plan }

// Shutdown starts draining: new requests get 503, and the call blocks
// until in-flight requests finish or ctx expires.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.draining.Store(true)
	done := make(chan struct{})
	go func() { rt.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

type handlerFunc func(ctx context.Context, r *http.Request) (any, error)

// route wraps an endpoint with the router middleware: drain check,
// panic barrier, per-route counters and latency, a trace root span
// (adopting an upstream id when one rides in — routers stack).
func (rt *Router) route(name string, h handlerFunc) http.HandlerFunc {
	lat := rt.met.Histogram(obs.Name("router_request_seconds", "route", name), obs.DurationBuckets)
	codeCtr := func(code int) *obs.Counter {
		return rt.met.Counter(obs.Name("router_requests_total", "route", name, "code", fmt.Sprint(code)))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		span := obs.StartSpan(lat)
		var tctx context.Context
		var rsp *trace.Span
		if pid, ok := trace.ParseID(r.Header.Get(server.TraceHeader)); ok {
			tctx, rsp = rt.tracer.StartRemote(r.Context(), "router."+name, pid)
		} else {
			tctx, rsp = rt.tracer.Start(r.Context(), "router."+name)
		}
		finish := func(code int) {
			codeCtr(code).Inc()
			rsp.SetInt("http_status", int64(code))
			span.End()
			rsp.End()
		}
		wrote := false
		defer func() {
			if rv := recover(); rv != nil {
				rt.logf("router: handler %s panicked: %v", name, rv)
				rt.met.Counter("router_handler_panics_total").Inc()
				if !wrote {
					writeError(w, http.StatusInternalServerError, "internal error")
					finish(http.StatusInternalServerError)
				} else {
					finish(http.StatusOK)
				}
			}
		}()
		if rt.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "router is shutting down")
			finish(http.StatusServiceUnavailable)
			return
		}
		rt.wg.Add(1)
		defer rt.wg.Done()

		payload, err := h(tctx, r)
		code := http.StatusOK
		wrote = true
		if err != nil {
			code = errorCode(err)
			writeError(w, code, err.Error())
		} else {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(payload)
		}
		finish(code)
	}
}

// httpError mirrors the server's handler error convention.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func errf(code int, format string, args ...any) error {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

// errorCode maps a handler error to a status: router-local errors carry
// their code, shard-side APIErrors pass their status through, context
// expiry is a gateway timeout.
func errorCode(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.code
	}
	var api *server.APIError
	if errors.As(err, &api) {
		return api.StatusCode
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadGateway
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

func decodeBody(r *http.Request, into any) error {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 16<<20))
	if err != nil {
		return errf(http.StatusBadRequest, "reading body: %v", err)
	}
	if err := json.Unmarshal(body, into); err != nil {
		return errf(http.StatusBadRequest, "decoding request: %v", err)
	}
	return nil
}

func (rt *Router) requestCtx(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := rt.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > rt.cfg.MaxTimeout {
			d = rt.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(ctx, d)
}

func (rt *Router) clampLimit(limit int) int {
	if limit <= 0 {
		return rt.cfg.DefaultLimit
	}
	if limit > rt.cfg.MaxLimit {
		return rt.cfg.MaxLimit
	}
	return limit
}

// scatterResult is one shard's contribution to a gathered answer.
type scatterResult[T any] struct {
	shard int
	resp  T
	err   error
}

// scatter fans fn out to the given backends concurrently, one child
// span per shard RPC, and gathers every result. Outcome accounting
// lands in router_shard_requests_total{shard,outcome}.
func scatter[T any](ctx context.Context, rt *Router, backends []*backend,
	fn func(ctx context.Context, c *server.Client) (T, error)) []scatterResult[T] {
	rt.fanout.Observe(float64(len(backends)))
	results := make([]scatterResult[T], len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			sctx, sp := trace.StartChild(ctx, "shard."+strconv.Itoa(b.index))
			var resp T
			failedOver, err := b.call(ctx, func(c *server.Client) error {
				var cerr error
				resp, cerr = fn(sctx, c)
				return cerr
			})
			sp.End()
			outcome := "ok"
			switch {
			case err != nil && shardUnreachable(err):
				outcome = "dead"
			case failedOver:
				outcome = "failover"
			}
			rt.met.Counter(obs.Name("router_shard_requests_total",
				"shard", strconv.Itoa(b.index), "outcome", outcome)).Inc()
			results[i] = scatterResult[T]{shard: b.index, resp: resp, err: err}
		}(i, b)
	}
	wg.Wait()
	return results
}

// splitErrors partitions scatter results into live responses, shards to
// degrade over (every replica unreachable), and the first propagatable
// request error. ctx expiry turns unreachable verdicts into the real
// cause — a timed-out caller should see 504, not a partial answer.
func splitErrors[T any](ctx context.Context, results []scatterResult[T]) (live []scatterResult[T], missing []int, err error) {
	for _, res := range results {
		switch {
		case res.err == nil:
			live = append(live, res)
		case shardUnreachable(res.err) && ctx.Err() == nil:
			missing = append(missing, res.shard)
		default:
			if err == nil {
				if ctx.Err() != nil {
					err = ctx.Err()
				} else {
					err = res.err
				}
			}
		}
	}
	sort.Ints(missing)
	return live, missing, err
}

func (rt *Router) notePartial(route string, missing []int) {
	if len(missing) == 0 {
		return
	}
	rt.met.Counter(obs.Name("router_partial_responses_total", "route", route)).Inc()
	rt.logf("router: %s answered partially, shards %v unreachable", route, missing)
}

func (rt *Router) handleJoin(ctx context.Context, r *http.Request) (any, error) {
	var req server.JoinRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	limit := rt.clampLimit(req.Limit)
	req.Limit = limit
	rctx, cancel := rt.requestCtx(ctx, req.TimeoutMS)
	defer cancel()
	start := time.Now()

	// A join touches every shard: each one owns some slice of the
	// candidate-pair keyspace regardless of where the probe sits.
	results := scatter(rctx, rt, rt.shards,
		func(ctx context.Context, c *server.Client) (*server.JoinResponse, error) {
			return c.Join(ctx, req)
		})
	live, missing, err := splitErrors(rctx, results)
	if err != nil {
		return nil, err
	}
	if len(live) == 0 {
		return nil, errf(http.StatusServiceUnavailable, "no shard reachable")
	}

	out := server.JoinResponse{Left: req.Left, Right: req.Right}
	for _, res := range live {
		sr := res.resp
		out.Candidates += sr.Candidates
		out.Evaluated += sr.Evaluated
		out.Refined += sr.Refined
		out.Holds += sr.Holds
		out.Truncated = out.Truncated || sr.Truncated
		for rel, n := range sr.Relations {
			if out.Relations == nil {
				out.Relations = make(map[string]int)
			}
			out.Relations[rel] += n
		}
		out.Pairs = append(out.Pairs, sr.Pairs...)
	}
	// Deterministic merge order: shards finish in any order, and pair
	// order inside a shard is sweep order — sort so equal fleets give
	// byte-equal responses.
	sort.Slice(out.Pairs, func(i, j int) bool {
		if out.Pairs[i].LeftID != out.Pairs[j].LeftID {
			return out.Pairs[i].LeftID < out.Pairs[j].LeftID
		}
		return out.Pairs[i].RightID < out.Pairs[j].RightID
	})
	if len(out.Pairs) > limit {
		out.Pairs = out.Pairs[:limit]
		out.Truncated = true
	}
	out.Partial = len(missing) > 0
	out.MissingShards = missing
	rt.notePartial("join", missing)
	out.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return out, nil
}

func (rt *Router) handleRelate(ctx context.Context, r *http.Request) (any, error) {
	var req server.RelateRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	poly, err := req.Geometry()
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	limit := rt.clampLimit(req.Limit)
	req.Limit = limit
	rctx, cancel := rt.requestCtx(ctx, req.TimeoutMS)
	defer cancel()
	start := time.Now()

	// A relate probe only concerns the shards whose key ranges its MBR
	// can touch — usually one, a few when it straddles a boundary.
	var targets []*backend
	for _, idx := range rt.plan.ShardsFor(poly.Bounds()) {
		targets = append(targets, rt.shards[idx])
	}
	if len(targets) == 0 {
		// Probe outside the data space: nothing can intersect it.
		return server.RelateResponse{Dataset: req.Dataset, Matches: []server.RelateMatch{},
			BatchSize: 1, ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond)}, nil
	}
	results := scatter(rctx, rt, targets,
		func(ctx context.Context, c *server.Client) (*server.RelateResponse, error) {
			return c.Relate(ctx, req)
		})
	live, missing, err := splitErrors(rctx, results)
	if err != nil {
		return nil, err
	}
	if len(live) == 0 {
		return nil, errf(http.StatusServiceUnavailable, "no shard reachable")
	}

	out := server.RelateResponse{Dataset: req.Dataset, Matches: []server.RelateMatch{}, BatchSize: 1}
	for _, res := range live {
		sr := res.resp
		out.Candidates += sr.Candidates
		out.Evaluated += sr.Evaluated
		out.Refined += sr.Refined
		out.Truncated = out.Truncated || sr.Truncated
		if sr.BatchSize > out.BatchSize {
			out.BatchSize = sr.BatchSize
		}
		out.Matches = append(out.Matches, sr.Matches...)
	}
	sort.Slice(out.Matches, func(i, j int) bool { return out.Matches[i].ID < out.Matches[j].ID })
	if len(out.Matches) > limit {
		out.Matches = out.Matches[:limit]
		out.Truncated = true
	}
	out.Partial = len(missing) > 0
	out.MissingShards = missing
	rt.notePartial("relate", missing)
	out.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return out, nil
}

// handleHealthz probes every replica of every shard and aggregates:
// the router is "ok" only when every shard has its full replica set
// alive and healthy, "degraded" otherwise — a router never reports
// hard failure while at least it is up.
func (rt *Router) handleHealthz(ctx context.Context, r *http.Request) (any, error) {
	hctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	shards := make([]server.ShardHealth, len(rt.shards))
	var wg sync.WaitGroup
	for i, b := range rt.shards {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			sh := server.ShardHealth{
				Index:    b.index,
				KeyRange: rt.plan.Ranges()[b.index].String(),
				Replicas: len(b.replicas),
			}
			degradedData := false
			var lastErr error
			for _, c := range b.replicas {
				h, err := c.Health(hctx)
				if err != nil {
					lastErr = err
					continue
				}
				sh.Alive++
				if sh.Alive == 1 {
					sh.Datasets = h.Datasets
				}
				if h.Status != "ok" {
					degradedData = true
				}
			}
			switch {
			case sh.Alive == 0:
				sh.Status = "dead"
				if lastErr != nil {
					sh.Error = lastErr.Error()
				}
			case sh.Alive < sh.Replicas || degradedData:
				sh.Status = "degraded"
			default:
				sh.Status = "ok"
			}
			shards[i] = sh
		}(i, b)
	}
	wg.Wait()
	status := "ok"
	datasets := 0
	for _, sh := range shards {
		if sh.Status != "ok" {
			status = "degraded"
		}
		if sh.Datasets > datasets {
			datasets = sh.Datasets
		}
	}
	if rt.draining.Load() {
		status = "draining"
	}
	return server.HealthResponse{
		Status:   status,
		Build:    BuildInfo(),
		Datasets: datasets,
		Shards:   shards,
	}, nil
}

// BuildInfo is the router's build identity; grid order is not known to
// the router (shards own the approximation grid), so it stays zero.
func BuildInfo() server.BuildInfo {
	return server.BuildInfo{Version: buildinfo.Version, Go: buildinfo.GoVersion()}
}

// handleDatasets merges the shards' dataset listings by name. Object
// and vertex counts are the sums of per-shard holdings: replicated
// boundary objects are counted once per holding shard, so sharded
// totals can exceed the single-node count — the listing describes the
// fleet's footprint, not the logical dataset size.
func (rt *Router) handleDatasets(ctx context.Context, r *http.Request) (any, error) {
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	results := scatter(dctx, rt, rt.shards,
		func(ctx context.Context, c *server.Client) ([]server.DatasetInfo, error) {
			return c.Datasets(ctx)
		})
	live, _, err := splitErrors(dctx, results)
	if err != nil {
		return nil, err
	}
	merged := make(map[string]*server.DatasetInfo)
	for _, res := range live {
		for _, di := range res.resp {
			m, ok := merged[di.Name]
			if !ok {
				c := di
				merged[di.Name] = &c
				continue
			}
			m.Objects += di.Objects
			m.Vertices += di.Vertices
			m.ApproxBytes += di.ApproxBytes
			m.BuildMS += di.BuildMS
			if di.Status != "ok" {
				m.Status = di.Status
			}
		}
	}
	out := make([]server.DatasetInfo, 0, len(merged))
	for _, m := range merged {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (rt *Router) handleMetricz(ctx context.Context, r *http.Request) (any, error) {
	return rt.met.Snapshot(), nil
}
